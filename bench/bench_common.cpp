#include "bench_common.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "mttkrp/registry.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace mdcp::bench {

namespace {
bool g_json_mode = false;

std::vector<std::pair<std::string, DatasetInfo>>& dataset_registry_mut() {
  static std::vector<std::pair<std::string, DatasetInfo>> registry;
  return registry;
}
}  // namespace

void init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) g_json_mode = true;
  }
}

bool json_mode() { return g_json_mode; }

void note(const char* fmt, ...) {
  if (g_json_mode) return;
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
}

double bench_scale() {
  if (const char* env = std::getenv("MDCP_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0) return s;
  }
  return 1.0;
}

void register_dataset(const std::string& name, const CooTensor& tensor) {
  DatasetInfo info;
  double cells = 1;
  for (mdcp::mode_t m = 0; m < tensor.order(); ++m) {
    info.shape.push_back(tensor.dim(m));
    cells *= static_cast<double>(tensor.dim(m));
  }
  info.nnz = tensor.nnz();
  info.density = cells > 0 ? static_cast<double>(tensor.nnz()) / cells : 0;
  auto& registry = dataset_registry_mut();
  for (auto& [existing, slot] : registry) {
    if (existing == name) {
      slot = std::move(info);
      return;
    }
  }
  registry.emplace_back(name, std::move(info));
}

const std::vector<std::pair<std::string, DatasetInfo>>& dataset_registry() {
  return dataset_registry_mut();
}

std::vector<Dataset> standard_datasets() {
  const double s = bench_scale();
  const auto n = [&](double base) { return static_cast<nnz_t>(base * s); };
  std::vector<Dataset> ds;
  ds.push_back({"tags4d",
                generate_zipf({800, 40000, 200000, 60000}, n(300000), 1.1, 101)});
  ds.push_back({"kb3d",
                generate_zipf({200000, 100, 80000}, n(250000), 1.2, 102)});
  ds.push_back({"ratings3d",
                generate_uniform({150000, 6000, 700}, n(300000), 103)});
  ds.push_back({"ehr5d",
                generate_clustered({20000, 4000, 3000, 500, 100}, n(250000),
                                   {.clusters = 256, .spread = 6.0}, 104)});
  ds.push_back({"uniform4d",
                generate_uniform({30000, 30000, 30000, 30000}, n(200000), 105)});
  ds.push_back({"clustered6d",
                generate_clustered({8000, 8000, 8000, 8000, 8000, 8000},
                                   n(200000), {.clusters = 128, .spread = 4.0},
                                   106)});
  for (const auto& d : ds) register_dataset(d.name, d.tensor);
  return ds;
}

std::vector<EngineColumn> engine_columns(bool include_ttv_chain) {
  // Column order follows the registry's registration order. The TTV chain is
  // opt-in (orders of magnitude slower), and the probed auto variant is
  // skipped — its shortlist sweeps would dominate the table's run time.
  std::vector<EngineColumn> cols;
  for (const auto& name : EngineRegistry::instance().names()) {
    if (name == "ttv-chain" && !include_ttv_chain) continue;
    if (name == "auto+probe") continue;
    cols.push_back({name, name});
  }
  return cols;
}

std::unique_ptr<MttkrpEngine> make_column_engine(const EngineColumn& col,
                                                 const CooTensor& tensor,
                                                 index_t rank,
                                                 KernelContext ctx) {
  return make_engine(col.engine, tensor, rank, ctx);
}

double time_mttkrp_sweep(MttkrpEngine& engine, const CooTensor& tensor,
                         const std::vector<Matrix>& factors, int reps) {
  Matrix out;
  // Warm-up sweep (first touch of memoized structures).
  engine.invalidate_all();
  for (mode_t m = 0; m < tensor.order(); ++m) {
    engine.compute(m, factors, out);
    engine.factor_updated(m);
  }
  std::vector<double> times;
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer t;
    for (mode_t m = 0; m < tensor.order(); ++m) {
      engine.compute(m, factors, out);
      engine.factor_updated(m);
    }
    times.push_back(t.seconds());
  }
  return *std::min_element(times.begin(), times.end());
}

TablePrinter::TablePrinter(std::vector<std::string> headers, int width,
                           std::string name)
    : headers_(std::move(headers)), width_(width), name_(std::move(name)) {}

void TablePrinter::add_row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

void TablePrinter::add_meta(const std::string& key, const std::string& value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  meta_.emplace_back(key, value);
}

void TablePrinter::print() const {
  if (g_json_mode) {
    obs::JsonWriter w;
    w.begin_object().kv("table", name_.empty() ? "bench" : name_);
    w.key("headers").begin_array();
    for (const auto& h : headers_) w.value(h);
    w.end_array();
    w.key("rows").begin_array();
    for (const auto& row : rows_) {
      w.begin_array();
      for (const auto& c : row) w.value(c);
      w.end_array();
    }
    w.end_array();
    // Provenance: enough context to compare this table against a run from
    // another machine or scale without consulting the producing binary.
    w.key("meta").begin_object();
    w.kv("bench_scale", bench_scale());
    w.kv("threads", static_cast<std::int64_t>(num_threads()));
    for (const auto& [k, v] : meta_) w.kv(k, v);
    // Parallel-schedule provenance: how many kernel launches ran
    // owner-computes vs privatized-reduction tiles up to this table (process
    // totals from the sched.* metrics; see sched/schedule.hpp).
    w.key("sched").begin_object();
    w.kv("owner_launches",
         static_cast<std::int64_t>(obs::MetricsRegistry::instance()
                                       .counter("sched.owner_launches")
                                       .value()));
    w.kv("privatized_launches",
         static_cast<std::int64_t>(obs::MetricsRegistry::instance()
                                       .counter("sched.privatized_launches")
                                       .value()));
    w.end_object();
    w.key("datasets").begin_object();
    for (const auto& [name, info] : dataset_registry()) {
      w.key(name).begin_object();
      w.key("shape").begin_array();
      for (const index_t d : info.shape) w.value(static_cast<std::int64_t>(d));
      w.end_array();
      w.kv("nnz", static_cast<std::int64_t>(info.nnz));
      w.kv("density", info.density);
      w.end_object();
    }
    w.end_object().end_object().end_object();
    std::printf("%s\n", w.str().c_str());
    return;
  }
  const auto cell = [&](const std::string& s) {
    std::printf("%-*s", width_, s.c_str());
  };
  for (const auto& h : headers_) cell(h);
  std::printf("\n");
  for (std::size_t i = 0; i < headers_.size() * static_cast<std::size_t>(width_);
       ++i)
    std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) {
    for (const auto& c : row) cell(c);
    std::printf("\n");
  }
  for (const auto& [k, v] : meta_)
    std::printf("%s=%s\n", k.c_str(), v.c_str());
  std::printf("\n");
}

std::string fmt_seconds(double s) {
  std::ostringstream os;
  if (s < 1e-3) {
    os.precision(3);
    os << s * 1e6 << "us";
  } else if (s < 1.0) {
    os.precision(4);
    os << s * 1e3 << "ms";
  } else {
    os.precision(4);
    os << s << "s";
  }
  return os.str();
}

std::string fmt_ratio(double r) {
  std::ostringstream os;
  os.precision(3);
  os << r << "x";
  return os.str();
}

std::string fmt_bytes(std::size_t b) {
  std::ostringstream os;
  os.precision(4);
  if (b < (1u << 20)) {
    os << static_cast<double>(b) / 1024.0 << "KiB";
  } else if (b < (1u << 30)) {
    os << static_cast<double>(b) / (1024.0 * 1024.0) << "MiB";
  } else {
    os << static_cast<double>(b) / (1024.0 * 1024.0 * 1024.0) << "GiB";
  }
  return os.str();
}

}  // namespace mdcp::bench
