// Shared infrastructure for the experiment benchmarks.
//
// Each bench binary regenerates one experiment of EXPERIMENTS.md. The suite
// runs on a standard battery of synthetic datasets (see DESIGN.md §4 for the
// substitution rationale) whose shapes/structures mirror the regimes of the
// sparse-CP literature's real datasets:
//
//   tags4d      — 4-mode Zipf (Delicious/Flickr-like tagging data)
//   kb3d        — 3-mode Zipf, one short mode (NELL-like knowledge base)
//   ratings3d   — 3-mode uniform with one long mode (Netflix-like)
//   ehr5d       — 5-mode clustered (CHOA-like EHR phenotyping data)
//   uniform4d   — 4-mode uniform (worst case: no index overlap)
//   clustered6d — 6-mode clustered (higher-order, strong overlap)
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "mdcp.hpp"

namespace mdcp::bench {

struct Dataset {
  std::string name;
  CooTensor tensor;
};

/// Parses shared bench flags. Call first in every bench main:
///   --json   emit tables as JSON objects on stdout (banners are suppressed;
///            use note() for human-only commentary)
/// Unknown flags are ignored so benches can add their own.
void init(int argc, char** argv);

/// True when --json was passed to init().
bool json_mode();

/// printf-style commentary that is dropped in --json mode (so stdout stays
/// machine-parseable).
void note(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Scale factor for dataset sizes (override with MDCP_BENCH_SCALE env var;
/// 1.0 ≈ a minute-scale full suite on one core).
double bench_scale();

/// The standard dataset battery (sizes multiplied by bench_scale()).
/// Every returned dataset is also recorded in the provenance registry (see
/// register_dataset), so --json tables are self-describing.
std::vector<Dataset> standard_datasets();

/// Identity of one benchmark dataset, embedded into --json table objects so
/// BENCH_*.json files can be compared across machines and scales.
struct DatasetInfo {
  shape_t shape;
  nnz_t nnz = 0;
  double density = 0;  ///< nnz / prod(shape)
};

/// Records `tensor` under `name` in the provenance registry. Benches that
/// build datasets outside standard_datasets() should call this so their
/// tables stay self-describing.
void register_dataset(const std::string& name, const CooTensor& tensor);

/// Name → identity for every dataset registered so far (insertion order).
const std::vector<std::pair<std::string, DatasetInfo>>& dataset_registry();

/// One engine per benchmark column, identified by its EngineRegistry name.
/// The column list is derived from the registry, so engines registered at
/// runtime appear in the tables automatically.
struct EngineColumn {
  std::string label;   ///< table header
  std::string engine;  ///< EngineRegistry name
};
std::vector<EngineColumn> engine_columns(bool include_ttv_chain = false);

/// Creates and prepares the column's engine for `tensor` at `rank`.
std::unique_ptr<MttkrpEngine> make_column_engine(const EngineColumn& col,
                                                 const CooTensor& tensor,
                                                 index_t rank,
                                                 KernelContext ctx = {});

/// Minimum wall-time (seconds) over `reps` full MTTKRP sweeps (all N modes)
/// with the CP-ALS invalidation schedule (factor_updated after each mode).
/// Minimum, not median: on a shared host the minimum is the least-noisy
/// estimator of the kernel's intrinsic cost.
double time_mttkrp_sweep(MttkrpEngine& engine, const CooTensor& tensor,
                         const std::vector<Matrix>& factors, int reps = 5);

/// Markdown-ish table printer: fixed-width columns, header + rows. In
/// --json mode, print() instead emits one JSON object
/// {"table":NAME,"headers":[...],"rows":[[...],...]} per table, so the
/// experiment suite is consumable by trajectory tooling.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int width = 14,
                        std::string name = "");
  void add_row(const std::vector<std::string>& cells);
  /// Attaches a provenance key/value pair emitted into the table's --json
  /// meta object (e.g. the microkernel tile widths a sweep selected). Text
  /// mode prints them as a trailing "key=value" line.
  void add_meta(const std::string& key, const std::string& value);
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::pair<std::string, std::string>> meta_;
  int width_;
  std::string name_;
};

std::string fmt_seconds(double s);
std::string fmt_ratio(double r);
std::string fmt_bytes(std::size_t b);

}  // namespace mdcp::bench
