// Experiment F7 — end-to-end CP-ALS: per-iteration time and phase
// dissection (MTTKRP / dense updates / fit), per engine.
//
// Mirrors the "CP-ALS iteration time" tables and the run-time dissection
// figure of the sparse-CP papers. Expected shape: MTTKRP dominates, so the
// end-to-end ranking follows the F1 kernel ranking; dense/fit phases are
// engine-independent noise.
#include <sstream>

#include "bench_common.hpp"
#include "util/parallel.hpp"

int main(int argc, char** argv) {
  using namespace mdcp;
  using namespace mdcp::bench;

  init(argc, argv);
  set_num_threads(1);
  CpAlsOptions opt;
  opt.rank = 16;
  opt.max_iterations = 5;
  opt.tolerance = 0;  // fixed iteration count for fair timing
  opt.seed = 4242;

  note("== F7: CP-ALS per-iteration time (R=%u, %d iters, 1 thread) ==\n\n",
       opt.rank, opt.max_iterations);

  const std::vector<EngineKind> kinds{
      EngineKind::kCoo,       EngineKind::kCsf,      EngineKind::kDTreeFlat,
      EngineKind::kDTreeThreeLevel, EngineKind::kDTreeBdt, EngineKind::kAuto};

  for (const auto& ds : standard_datasets()) {
    note("dataset: %s (%s)\n", ds.name.c_str(), ds.tensor.summary().c_str());
    TablePrinter table({"engine", "iter-total", "mttkrp", "dense", "fit",
                        "symbolic", "numeric", "scratch", "final-fit"},
                       14, "F7/" + ds.name);
    for (EngineKind k : kinds) {
      opt.engine = k;
      const auto result = cp_als(ds.tensor, opt);
      const double iters = result.iterations;
      std::ostringstream fit;
      fit.precision(4);
      fit << result.final_fit();
      // symbolic/numeric/scratch come from the engine's KernelStats: the
      // one-time prepare cost, the summed kernel time (a subset of the
      // mttkrp wall column), and the peak per-thread workspace footprint.
      table.add_row(
          {result.engine_name,
           fmt_seconds((result.mttkrp_seconds + result.dense_seconds +
                        result.fit_seconds) /
                       iters),
           fmt_seconds(result.mttkrp_seconds / iters),
           fmt_seconds(result.dense_seconds / iters),
           fmt_seconds(result.fit_seconds / iters),
           fmt_seconds(result.kernel_stats.symbolic_seconds),
           fmt_seconds(result.kernel_stats.numeric_seconds / iters),
           fmt_bytes(result.kernel_stats.peak_scratch_bytes), fit.str()});
    }
    table.print();
  }
  return 0;
}
