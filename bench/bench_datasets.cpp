// Experiment T1 — dataset statistics table.
//
// Mirrors the "datasets used in the experiments" table of the sparse-CP
// papers: shape, nonzeros, density, and per-mode distinct-index counts for
// every synthetic stand-in dataset (substitution rationale in DESIGN.md §4).
#include <algorithm>
#include <sstream>

#include "bench_common.hpp"
#include "tensor/stats.hpp"

int main(int argc, char** argv) {
  using namespace mdcp;
  using namespace mdcp::bench;

  init(argc, argv);
  note("== T1: dataset statistics (scale=%.2f) ==\n\n", bench_scale());
  TablePrinter table({"dataset", "order", "shape", "nnz", "density",
                      "max-slice-nnz"},
                     18, "T1");
  for (const auto& ds : standard_datasets()) {
    const auto stats = compute_stats(ds.tensor);
    std::string shape;
    for (std::size_t m = 0; m < stats.shape.size(); ++m) {
      if (m) shape += "x";
      shape += std::to_string(stats.shape[m]);
    }
    double max_slice = 0;
    for (double a : stats.avg_slice_nnz) max_slice = std::max(max_slice, a);
    std::ostringstream dens;
    dens.precision(3);
    dens << stats.density;
    table.add_row({ds.name, std::to_string(ds.tensor.order()), shape,
                   std::to_string(stats.nnz), dens.str(),
                   std::to_string(static_cast<long long>(max_slice))});
  }
  table.print();
  return 0;
}
