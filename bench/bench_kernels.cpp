// Microbenchmarks of the individual hot kernels (google-benchmark).
//
// These are not tied to one paper figure; they are the regression guard for
// the primitives every experiment depends on: Gram products, the CSF
// traversal, the dimension-tree numeric TTMV, and the COO kernel.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "util/parallel.hpp"

namespace {

using namespace mdcp;

const CooTensor& shared_tensor() {
  static const CooTensor t =
      generate_zipf({500, 20000, 80000, 30000}, 120000, 1.1, 301);
  return t;
}

std::vector<Matrix> shared_factors(index_t rank) {
  Rng rng(302);
  std::vector<Matrix> f;
  for (mdcp::mode_t m = 0; m < shared_tensor().order(); ++m)
    f.push_back(Matrix::random_uniform(shared_tensor().dim(m), rank, rng));
  return f;
}

void BM_Gram(benchmark::State& state) {
  set_num_threads(1);
  Rng rng(303);
  const Matrix a =
      Matrix::random_normal(static_cast<index_t>(state.range(0)), 16, rng);
  Matrix out;
  for (auto _ : state) {
    gram(a, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 16 * 16 / 2);
}
BENCHMARK(BM_Gram)->Arg(10000)->Arg(100000);

void BM_CooMttkrp(benchmark::State& state) {
  set_num_threads(1);
  const auto rank = static_cast<index_t>(state.range(0));
  const auto factors = shared_factors(rank);
  CooMttkrpEngine engine(shared_tensor());
  Matrix out;
  for (auto _ : state) {
    engine.compute(1, factors, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * shared_tensor().nnz());
}
BENCHMARK(BM_CooMttkrp)->Arg(8)->Arg(32);

void BM_CsfMttkrp(benchmark::State& state) {
  set_num_threads(1);
  const auto rank = static_cast<index_t>(state.range(0));
  const auto factors = shared_factors(rank);
  CsfMttkrpEngine engine(shared_tensor());
  Matrix out;
  for (auto _ : state) {
    engine.compute(1, factors, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * shared_tensor().nnz());
}
BENCHMARK(BM_CsfMttkrp)->Arg(8)->Arg(32);

void BM_DTreeSweep(benchmark::State& state) {
  set_num_threads(1);
  const auto rank = static_cast<index_t>(state.range(0));
  const auto factors = shared_factors(rank);
  auto engine = make_dtree_bdt(shared_tensor());
  Matrix out;
  for (auto _ : state) {
    for (mdcp::mode_t m = 0; m < shared_tensor().order(); ++m) {
      engine->compute(m, factors, out);
      engine->factor_updated(m);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * shared_tensor().nnz() *
                          shared_tensor().order());
}
BENCHMARK(BM_DTreeSweep)->Arg(8)->Arg(32);

void BM_SymbolicBuild(benchmark::State& state) {
  set_num_threads(1);
  std::vector<mdcp::mode_t> order(shared_tensor().order());
  for (mdcp::mode_t m = 0; m < shared_tensor().order(); ++m) order[m] = m;
  const auto spec = TreeSpec::bdt(order);
  for (auto _ : state) {
    DimensionTree tree(shared_tensor(), spec);
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_SymbolicBuild);

void BM_TunerSelect(benchmark::State& state) {
  set_num_threads(1);
  for (auto _ : state) {
    const auto report = select_strategy(shared_tensor(), 16);
    benchmark::DoNotOptimize(report.chosen);
  }
}
BENCHMARK(BM_TunerSelect);

}  // namespace

BENCHMARK_MAIN();
