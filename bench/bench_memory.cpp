// Experiment F5 — memory overhead of the memoized schemes.
//
// For every dataset: the input COO footprint, the CSF baseline's footprint
// (one tree per mode), and for each dimension-tree variant the persistent
// symbolic index memory plus the peak live value-matrix memory observed
// during a full CP-ALS-style sweep. The paper family's claim: the BDT costs
// at most ~⌈log N⌉ live intermediates and its index arrays shrink towards
// the leaves with index overlap, so total overhead stays a small multiple
// of the input.
#include "bench_common.hpp"
#include "util/parallel.hpp"

namespace {

std::size_t coo_bytes(const mdcp::CooTensor& t) {
  return t.nnz() * (t.order() * sizeof(mdcp::index_t) + sizeof(mdcp::real_t));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdcp;
  using namespace mdcp::bench;

  init(argc, argv);
  set_num_threads(1);
  const index_t rank = 16;
  Rng rng(19);

  note("== F5: memory footprint (R=%u); ratios are vs input COO ==\n\n", rank);
  TablePrinter table({"dataset", "coo-input", "csf", "flat-peak", "3lvl-peak",
                      "bdt-peak", "bdt/input"},
                     14, "F5");

  for (const auto& ds : standard_datasets()) {
    const std::size_t input = coo_bytes(ds.tensor);
    std::vector<Matrix> factors;
    for (mdcp::mode_t m = 0; m < ds.tensor.order(); ++m)
      factors.push_back(Matrix::random_uniform(ds.tensor.dim(m), rank, rng));

    CsfMttkrpEngine csf(ds.tensor);

    const auto peak_of = [&](std::unique_ptr<DTreeMttkrpEngine> engine) {
      Matrix out;
      for (mdcp::mode_t m = 0; m < ds.tensor.order(); ++m) {
        engine->compute(m, factors, out);
        engine->factor_updated(m);
      }
      return engine->peak_memory_bytes();
    };
    const std::size_t flat_peak = peak_of(make_dtree_flat(ds.tensor));
    const std::size_t lvl3_peak = peak_of(make_dtree_three_level(ds.tensor));
    const std::size_t bdt_peak = peak_of(make_dtree_bdt(ds.tensor));

    table.add_row({ds.name, fmt_bytes(input), fmt_bytes(csf.memory_bytes()),
                   fmt_bytes(flat_peak), fmt_bytes(lvl3_peak),
                   fmt_bytes(bdt_peak),
                   fmt_ratio(static_cast<double>(bdt_peak) /
                             static_cast<double>(input))});
  }
  table.print();
  note("(peaks include persistent symbolic index arrays + the largest\n"
       " set of simultaneously live memoized value matrices)\n");
  return 0;
}
