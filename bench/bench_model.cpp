// Experiment F6 — model prediction accuracy (the "model-driven" claim).
//
// For every dataset, every candidate strategy is (a) predicted by the
// analytic cost model and (b) actually measured. We report:
//   * the measured time of the strategy the model picked,
//   * the measured time of the true best strategy,
//   * the resulting "regret" ratio (1.0 = model picked the winner), and
//   * the Spearman rank correlation between predicted and measured times.
// The paper family's claim is near-zero regret at a tiny fraction of the
// cost of exhaustive autotuning.
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"
#include "util/parallel.hpp"

namespace {

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  const auto ranks = [&](const std::vector<double>& v) {
    std::vector<std::size_t> idx(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t x, std::size_t y) { return v[x] < v[y]; });
    std::vector<double> r(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
      r[idx[i]] = static_cast<double>(i);
    return r;
  };
  const auto ra = ranks(a);
  const auto rb = ranks(b);
  double d2 = 0;
  for (std::size_t i = 0; i < n; ++i) d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  return 1.0 - 6.0 * d2 / (static_cast<double>(n) *
                           (static_cast<double>(n) * n - 1.0));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdcp;
  using namespace mdcp::bench;

  init(argc, argv);
  set_num_threads(1);
  const index_t rank = 16;
  Rng rng(23);

  note("== F6: cost-model accuracy (R=%u, 1 thread) ==\n\n", rank);
  const auto params = calibrate_cost_model(rank);
  note("calibrated: %.3g s/flop, %.3g s/byte\n\n", params.seconds_per_flop,
       params.seconds_per_byte);

  TablePrinter table({"dataset", "#strat", "picked", "picked-t", "best-t",
                      "regret", "probed-regret", "spearman"},
                     13, "F6");
  TablePrinter mem_table({"dataset", "picked", "mem-pred", "mem-meas",
                          "pred/meas"},
                         14, "F6c");

  for (const auto& ds : standard_datasets()) {
    const auto report = select_strategy(ds.tensor, rank, 0, params);

    std::vector<Matrix> factors;
    for (mdcp::mode_t m = 0; m < ds.tensor.order(); ++m)
      factors.push_back(Matrix::random_uniform(ds.tensor.dim(m), rank, rng));

    std::vector<double> predicted, measured;
    double picked_time = 0, best_time = 1e300;
    std::size_t picked_mem_meas = 0;
    for (std::size_t i = 0; i < report.ranked.size(); ++i) {
      const auto& rs = report.ranked[i];
      // Each strategy gets its own workspace so the measured peak (engine
      // structures + per-thread scratch) is attributable to it alone and
      // directly comparable against the model's memory prediction.
      Workspace ws;
      DTreeMttkrpEngine engine(rs.strategy.spec, rs.strategy.name,
                               KernelContext{&ws, 0, nullptr});
      engine.prepare(ds.tensor, rank);
      const double t = time_mttkrp_sweep(engine, ds.tensor, factors, 2);
      predicted.push_back(rs.prediction.seconds_per_iteration);
      measured.push_back(t);
      if (i == report.chosen) {
        picked_time = t;
        picked_mem_meas = engine.peak_memory_bytes() + ws.peak_bytes();
      }
      best_time = std::min(best_time, t);
    }

    // Hybrid model+probe selection (F6b): shortlist 3, measure, re-pick.
    const auto probed = select_strategy_probed(ds.tensor, rank, 0, params, 3);
    const double probed_time = measured[probed.chosen];

    table.add_row({ds.name, std::to_string(report.ranked.size()),
                   report.winner().strategy.name, fmt_seconds(picked_time),
                   fmt_seconds(best_time),
                   fmt_ratio(picked_time / best_time),
                   fmt_ratio(probed_time / best_time),
                   fmt_ratio(spearman(predicted, measured))});

    const std::size_t mem_pred =
        report.winner().prediction.total_memory_bytes();
    mem_table.add_row({ds.name, report.winner().strategy.name,
                       fmt_bytes(mem_pred), fmt_bytes(picked_mem_meas),
                       fmt_ratio(static_cast<double>(mem_pred) /
                                 static_cast<double>(
                                     std::max<std::size_t>(picked_mem_meas,
                                                           1)))});
  }
  table.print();
  note("(regret 1.0x = the model picked the measured-fastest strategy)\n\n");
  note("== F6c: model memory prediction vs measured peak ==\n\n");
  mem_table.print();
  note("(mem-meas: engine symbolic+value peak plus workspace scratch\n"
       " peak; pred/meas near 1.0x validates the tuner's budget check)\n");
  return 0;
}
