// Experiment F1 — per-dataset MTTKRP sweep time and speedup over the
// SPLATT-style CSF baseline, sequential (1 thread), R = 16.
//
// This is the paper family's headline figure: memoized dimension-tree
// MTTKRP vs the state-of-the-art per-mode CSF kernel. Expected shape:
//   * dtree-bdt ≥ csf on 3-mode tensors (little to memoize),
//   * the gap widens with order and with index overlap (clustered/zipf),
//   * `auto` tracks the best tree variant without being told which.
#include "bench_common.hpp"
#include "util/parallel.hpp"

int main(int argc, char** argv) {
  using namespace mdcp;
  using namespace mdcp::bench;

  init(argc, argv);
  set_num_threads(1);
  const index_t rank = 16;
  Rng rng(7);

  note("== F1: MTTKRP sweep time (R=%u, 1 thread); speedup vs csf ==\n\n",
       rank);
  const auto cols = engine_columns();
  std::vector<std::string> headers{"dataset"};
  for (const auto& c : cols) headers.push_back(c.label);
  TablePrinter table(headers, 15, "F1");

  for (const auto& ds : standard_datasets()) {
    std::vector<Matrix> factors;
    for (mdcp::mode_t m = 0; m < ds.tensor.order(); ++m)
      factors.push_back(Matrix::random_uniform(ds.tensor.dim(m), rank, rng));

    std::vector<double> times;
    for (const auto& col : cols) {
      const auto engine = make_column_engine(col, ds.tensor, rank);
      times.push_back(time_mttkrp_sweep(*engine, ds.tensor, factors));
    }
    double csf_time = 0;
    for (std::size_t c = 0; c < cols.size(); ++c)
      if (cols[c].label == "csf") csf_time = times[c];
    std::vector<std::string> cells{ds.name};
    for (std::size_t c = 0; c < cols.size(); ++c) {
      std::string cell = fmt_seconds(times[c]);
      if (cols[c].label != "csf" && csf_time > 0)
        cell += " (" + fmt_ratio(csf_time / times[c]) + ")";
      cells.push_back(cell);
    }
    table.add_row(cells);
  }
  table.print();
  note("(parenthesized: speedup of the column over csf; >1 is faster)\n");
  return 0;
}
