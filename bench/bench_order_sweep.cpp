// Experiment F3 — speedup vs tensor order.
//
// Synthetic tensors of order N = 3..8 with (approximately) fixed nnz and
// total index space. The baseline's per-iteration work grows ~N² while the
// BDT's grows ~N·log N, so the dtree-bdt/csf speedup must grow with N —
// this is the central scaling claim of the higher-order memoization papers.
// The flat and 3-level trees are included as the ablation axis (no
// memoization / one-level memoization).
#include <cmath>

#include "bench_common.hpp"
#include "util/parallel.hpp"

int main(int argc, char** argv) {
  using namespace mdcp;
  using namespace mdcp::bench;

  init(argc, argv);
  set_num_threads(1);
  const index_t rank = 16;
  const auto nnz = static_cast<nnz_t>(150000 * bench_scale());
  Rng rng(11);

  note("== F3: MTTKRP sweep time vs order (R=%u, nnz~%llu, 1 thread) ==\n\n",
       rank, static_cast<unsigned long long>(nnz));
  const auto cols = engine_columns();
  std::vector<std::string> headers{"order"};
  for (const auto& col : cols) {
    if (col.label != "auto") headers.push_back(col.label);
  }
  headers.push_back("bdt/csf");
  TablePrinter table(headers, 13, "F3");

  for (mdcp::mode_t order = 3; order <= 8; ++order) {
    // Keep the total index space roughly constant across orders.
    const auto dim = static_cast<index_t>(
        std::pow(1e12, 1.0 / static_cast<double>(order)));
    shape_t shape(order, dim);
    const auto t = generate_zipf(shape, nnz, 1.1, 200 + order);
    register_dataset("zipf" + std::to_string(order) + "d", t);

    std::vector<Matrix> factors;
    for (mdcp::mode_t m = 0; m < order; ++m)
      factors.push_back(Matrix::random_uniform(t.dim(m), rank, rng));

    std::vector<std::string> cells{std::to_string(order)};
    double csf_time = 0, bdt_time = 0;
    for (const auto& col : cols) {
      if (col.label == "auto") continue;
      const auto engine = make_column_engine(col, t, rank);
      const double secs = time_mttkrp_sweep(*engine, t, factors);
      if (col.label == "csf") csf_time = secs;
      if (col.label == "dtree-bdt") bdt_time = secs;
      cells.push_back(fmt_seconds(secs));
    }
    cells.push_back(fmt_ratio(csf_time / bdt_time));
    table.add_row(cells);
  }
  table.print();
  note("(bdt/csf: speedup of the full dimension tree over the\n"
       " SPLATT-style baseline — expected to grow with the order)\n");
  return 0;
}
