// Experiment F4 — speedup vs decomposition rank.
//
// R sweeps the microkernel tile boundaries: {1, 7, 8, 15, 16, 17, 32, 33}
// covers the scalar floor (R < 8), each compile-time tile width (8/16/32),
// and the one-past cases that exercise the cascade + remainder path. Both
// engines scale linearly in R for the arithmetic, but the memoized scheme
// amortizes its index traversals over all R columns ("thick" TTMV), so its
// advantage is roughly rank-independent — the expected shape is a flat
// speedup curve with a step at each tile boundary in absolute time.
#include <sstream>

#include "bench_common.hpp"
#include "mttkrp/alto.hpp"
#include "mttkrp/microkernel.hpp"
#include "util/parallel.hpp"

int main(int argc, char** argv) {
  using namespace mdcp;
  using namespace mdcp::bench;

  init(argc, argv);
  set_num_threads(1);
  Rng rng(13);
  const double s = bench_scale();

  std::vector<Dataset> datasets;
  datasets.push_back({"tags4d",
                      generate_zipf({800, 40000, 200000, 60000},
                                    static_cast<nnz_t>(200000 * s), 1.1, 101)});
  datasets.push_back(
      {"clustered6d",
       generate_clustered({8000, 8000, 8000, 8000, 8000, 8000},
                          static_cast<nnz_t>(150000 * s),
                          {.clusters = 128, .spread = 4.0}, 106)});
  for (const auto& ds : datasets) register_dataset(ds.name, ds.tensor);

  const index_t ranks[] = {1, 7, 8, 15, 16, 17, 32, 33};

  note("== F4: MTTKRP sweep time vs rank (1 thread) ==\n\n");
  for (const auto& ds : datasets) {
    TablePrinter table({"rank", "tile", "csf", "alto", "dtree-bdt", "speedup"},
                       14, "F4/" + ds.name);
    std::ostringstream tiles;
    for (index_t rank : ranks) {
      std::vector<Matrix> factors;
      for (mdcp::mode_t m = 0; m < ds.tensor.order(); ++m)
        factors.push_back(Matrix::random_uniform(ds.tensor.dim(m), rank, rng));

      CsfMttkrpEngine csf(ds.tensor);
      const double csf_time = time_mttkrp_sweep(csf, ds.tensor, factors);
      AltoMttkrpEngine alto(ds.tensor);
      const double alto_time = time_mttkrp_sweep(alto, ds.tensor, factors);
      auto bdt = make_dtree_bdt(ds.tensor);
      const double bdt_time = time_mttkrp_sweep(*bdt, ds.tensor, factors);
      // The engine reports the tile its last compute actually dispatched;
      // cross-check against the static selector so the table stays honest.
      const index_t tile = csf.stats().last_tile;
      if (tiles.tellp() > 0) tiles << ",";
      tiles << rank << ":" << tile;
      table.add_row({std::to_string(rank), std::to_string(tile),
                     fmt_seconds(csf_time), fmt_seconds(alto_time),
                     fmt_seconds(bdt_time), fmt_ratio(csf_time / bdt_time)});
    }
    // Selected tile per rank (rank:tile pairs), in the --json meta object.
    table.add_meta("mk_tiles", tiles.str());
    note("dataset: %s (%s)\n", ds.name.c_str(), ds.tensor.summary().c_str());
    table.print();
  }
  return 0;
}
