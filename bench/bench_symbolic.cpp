// Experiment T2 — one-time preprocessing cost vs per-iteration payoff.
//
// The memoized engines pay an up-front symbolic cost (sorting/deduplicating
// every tree node's projections; building CSFs; running the tuner). The
// literature's argument is that this is amortized within a few CP-ALS
// iterations — and entirely across the multiple runs of a rank search or
// restart sweep, which reuse one engine. This table reports, per dataset:
// setup seconds per engine, per-iteration sweep seconds, and the break-even
// iteration count vs the cheapest-setup engine (coo).
#include "bench_common.hpp"
#include "util/parallel.hpp"

int main(int argc, char** argv) {
  using namespace mdcp;
  using namespace mdcp::bench;

  init(argc, argv);
  set_num_threads(1);
  const index_t rank = 16;
  Rng rng(29);

  note("== T2: preprocessing (setup) cost vs per-iteration gain ==\n\n");

  for (const auto& ds : standard_datasets()) {
    std::vector<Matrix> factors;
    for (mdcp::mode_t m = 0; m < ds.tensor.order(); ++m)
      factors.push_back(Matrix::random_uniform(ds.tensor.dim(m), rank, rng));

    TablePrinter table({"engine", "setup", "per-iter", "break-even-iters"}, 18,
                       "T2/" + ds.name);
    double coo_iter = 0;
    double coo_setup = 0;
    for (const auto& col : engine_columns()) {
      WallTimer setup_timer;
      const auto engine = make_column_engine(col, ds.tensor, rank);
      const double setup = setup_timer.seconds();
      const double iter = time_mttkrp_sweep(*engine, ds.tensor, factors, 2);
      if (col.label == "coo") {
        coo_iter = iter;
        coo_setup = setup;
      }
      std::string breakeven = "-";
      if (col.label != "coo" && iter < coo_iter) {
        breakeven = std::to_string(static_cast<long>(
            (setup - coo_setup) / (coo_iter - iter) + 1));
      }
      table.add_row({col.label, fmt_seconds(setup), fmt_seconds(iter),
                     breakeven});
    }
    note("dataset: %s (%s)\n", ds.name.c_str(), ds.tensor.summary().c_str());
    table.print();
  }
  note("(break-even: iterations after which the engine's total time\n"
       " drops below coo's, accounting for its extra setup cost)\n");
  return 0;
}
