// Experiment F2 — shared-memory thread scaling of the MTTKRP engines.
//
// NOTE: this container exposes a single physical core, so thread counts > 1
// are oversubscribed — the numbers demonstrate that the parallel code paths
// run correctly at any thread count, but real multi-core speedups cannot be
// observed here (documented in EXPERIMENTS.md). On real hardware the kernels
// are atomics-free data-parallel loops and scale like SPLATT's.
//
// Three tables:
//   F2            — sweep time per engine per thread count (auto schedule)
//   F2-sched      — the schedule each engine chose per mode (tiles + reason
//                   from KernelStats), showing the heuristic declining to
//                   privatize at 1 thread and switching on skewed modes
//   F2-ownerpriv  — forced owner vs forced privatized sweep times on the
//                   Zipf-skewed tags4d dataset
#include <cmath>

#include "bench_common.hpp"
#include "sched/schedule.hpp"
#include "util/parallel.hpp"

int main(int argc, char** argv) {
  using namespace mdcp;
  using namespace mdcp::bench;

  init(argc, argv);
  const index_t rank = 16;
  Rng rng(17);
  const auto tensor =
      generate_zipf({800, 40000, 200000, 60000},
                    static_cast<nnz_t>(250000 * bench_scale()), 1.1, 101);
  register_dataset("tags4d", tensor);
  std::vector<Matrix> factors;
  for (mdcp::mode_t m = 0; m < tensor.order(); ++m)
    factors.push_back(Matrix::random_uniform(tensor.dim(m), rank, rng));

  note("== F2: thread scaling on tags4d (R=%u) ==\n", rank);
  note("   [host has 1 physical core: >1 thread is oversubscribed]\n\n");

  const std::vector<std::string> engines{"csf", "alto", "dtree-bdt", "coo"};

  // First cells are row keys for bench_diff, so the per-(threads, engine,
  // mode) tables fold those into one "config" column: "t4:csf:m2".
  TablePrinter table({"threads", "csf", "alto", "dtree-bdt", "coo"}, 14, "F2");
  TablePrinter sched_table({"config", "schedule", "tiles", "reason"}, 14,
                           "F2-sched");
  for (int threads : {1, 2, 4}) {
    set_num_threads(threads);
    std::vector<std::string> row{std::to_string(threads)};
    for (const auto& name : engines) {
      const auto engine = make_column_engine({name, name}, tensor, rank);
      row.push_back(fmt_seconds(time_mttkrp_sweep(*engine, tensor, factors)));
      // Chosen schedule per mode: one fresh compute per mode so last_*
      // reflects exactly that mode's launch decision.
      for (mdcp::mode_t m = 0; m < tensor.order(); ++m) {
        Matrix out;
        engine->compute(m, factors, out);
        const KernelStats& s = engine->stats();
        sched_table.add_row(
            {"t" + std::to_string(threads) + ":" + name + ":m" +
                 std::to_string(m),
             s.last_schedule == 255
                 ? "none"
                 : sched::schedule_name(
                       static_cast<sched::Schedule>(s.last_schedule)),
             std::to_string(s.last_tiles), s.last_sched_reason});
      }
    }
    table.add_row(row);
  }
  table.print();

  note("-- schedule chosen per engine x mode (auto heuristic) --\n\n");
  sched_table.print();

  note("-- forced owner vs privatized on the skewed dataset --\n\n");
  TablePrinter forced_table(
      {"config", "owner", "privatized", "owner/priv"}, 14, "F2-ownerpriv");
  for (int threads : {1, 4}) {
    set_num_threads(threads);
    for (const auto& name : engines) {
      KernelContext owner_ctx;
      owner_ctx.sched = ScheduleMode::kOwner;
      const auto owner_engine =
          make_column_engine({name, name}, tensor, rank, owner_ctx);
      const double owner_s =
          time_mttkrp_sweep(*owner_engine, tensor, factors);

      KernelContext priv_ctx;
      priv_ctx.sched = ScheduleMode::kPrivatized;
      const auto priv_engine =
          make_column_engine({name, name}, tensor, rank, priv_ctx);
      const double priv_s = time_mttkrp_sweep(*priv_engine, tensor, factors);

      forced_table.add_row({"t" + std::to_string(threads) + ":" + name,
                            fmt_seconds(owner_s), fmt_seconds(priv_s),
                            fmt_ratio(owner_s / priv_s)});
    }
  }
  set_num_threads(1);
  forced_table.print();
  return 0;
}
