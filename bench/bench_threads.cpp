// Experiment F2 — shared-memory thread scaling of the MTTKRP engines.
//
// NOTE: this container exposes a single physical core, so thread counts > 1
// are oversubscribed — the numbers demonstrate that the parallel code paths
// run correctly at any thread count, but real multi-core speedups cannot be
// observed here (documented in EXPERIMENTS.md). On real hardware the kernels
// are atomics-free data-parallel loops and scale like SPLATT's.
#include <cmath>

#include "bench_common.hpp"
#include "util/parallel.hpp"

int main(int argc, char** argv) {
  using namespace mdcp;
  using namespace mdcp::bench;

  init(argc, argv);
  const index_t rank = 16;
  Rng rng(17);
  const auto tensor =
      generate_zipf({800, 40000, 200000, 60000},
                    static_cast<nnz_t>(250000 * bench_scale()), 1.1, 101);
  register_dataset("tags4d", tensor);
  std::vector<Matrix> factors;
  for (mdcp::mode_t m = 0; m < tensor.order(); ++m)
    factors.push_back(Matrix::random_uniform(tensor.dim(m), rank, rng));

  note("== F2: thread scaling on tags4d (R=%u) ==\n", rank);
  note("   [host has 1 physical core: >1 thread is oversubscribed]\n\n");

  TablePrinter table({"threads", "csf", "dtree-bdt", "coo"}, 14, "F2");
  for (int threads : {1, 2, 4}) {
    set_num_threads(threads);
    CsfMttkrpEngine csf(tensor);
    auto bdt = make_dtree_bdt(tensor);
    CooMttkrpEngine coo(tensor);
    table.add_row({std::to_string(threads),
                   fmt_seconds(time_mttkrp_sweep(csf, tensor, factors)),
                   fmt_seconds(time_mttkrp_sweep(*bdt, tensor, factors)),
                   fmt_seconds(time_mttkrp_sweep(coo, tensor, factors))});
  }
  set_num_threads(1);
  table.print();
  return 0;
}
