// Computational phenotyping on a 5-mode EHR-style tensor
// (patient × diagnosis × medication × procedure × visit-month) — the
// higher-order workload that motivates memoized MTTKRP: at order 5 the
// baseline recomputes every contraction 5 times per iteration.
//
// The example (a) compares engine wall-times on the same decomposition,
// demonstrating the model-driven choice, and (b) prints the extracted
// "phenotypes": the top-loading diagnosis/medication indices per component.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "mdcp.hpp"

namespace {

std::vector<mdcp::index_t> top_loadings(const mdcp::Matrix& factor,
                                        mdcp::index_t component, int k) {
  std::vector<mdcp::index_t> idx(factor.rows());
  for (mdcp::index_t i = 0; i < factor.rows(); ++i) idx[i] = i;
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](mdcp::index_t a, mdcp::index_t b) {
                      return factor(a, component) > factor(b, component);
                    });
  idx.resize(static_cast<std::size_t>(k));
  return idx;
}

}  // namespace

int main() {
  using namespace mdcp;

  // Synthetic EHR: 8k patients, 900 diagnoses, 600 medications, 400
  // procedures, 36 months; clustered so that comorbidity groups exist.
  const shape_t shape{8000, 900, 600, 400, 36};
  const CooTensor ehr = generate_clustered(
      shape, 120000, {.clusters = 40, .spread = 5.0}, 90210);
  std::printf("EHR tensor: %s\n\n", ehr.summary().c_str());

  // (a) Engine comparison on identical work (3 iterations, rank 16). The
  // trajectories are identical across engines; only the time differs.
  CpAlsOptions opt;
  opt.rank = 16;
  opt.max_iterations = 3;
  opt.tolerance = 0;
  std::printf("%-12s %-14s %-12s\n", "engine", "mttkrp/iter", "fit@3");
  for (EngineKind k : {EngineKind::kCsf, EngineKind::kDTreeBdt,
                       EngineKind::kAuto}) {
    opt.engine = k;
    const auto r = cp_als(ehr, opt);
    std::printf("%-12s %-14.4f %-12.5f\n", r.engine_name.c_str(),
                r.mttkrp_seconds / r.iterations,
                static_cast<double>(r.final_fit()));
  }

  // (b) Phenotype extraction with the tuned engine, run to convergence.
  opt.engine = EngineKind::kAuto;
  opt.max_iterations = 20;
  opt.tolerance = 1e-5;
  const auto result = cp_als(ehr, opt);
  std::printf("\nphenotypes (fit %.4f):\n",
              static_cast<double>(result.final_fit()));
  for (index_t comp = 0; comp < 3; ++comp) {
    std::printf("  component %u (weight %.3f):\n", comp,
                static_cast<double>(result.model.weights[comp]));
    const auto dx = top_loadings(result.model.factors[1], comp, 3);
    const auto rx = top_loadings(result.model.factors[2], comp, 3);
    std::printf("    top diagnoses:   %u %u %u\n", dx[0], dx[1], dx[2]);
    std::printf("    top medications: %u %u %u\n", rx[0], rx[1], rx[2]);
  }
  return 0;
}
