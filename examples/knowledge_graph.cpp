// Knowledge-base link prediction on a NELL-style (entity, relation, entity)
// tensor: decompose the observed triples, then verify that the model scores
// held-out true triples above random corrupted ones (a simple AUC probe).
#include <algorithm>
#include <array>
#include <cstdio>

#include "mdcp.hpp"

int main() {
  using namespace mdcp;

  // Synthetic KB: 3k entities, 40 relations, clustered structure (entities
  // participate in communities, as in real knowledge graphs). Kept dense
  // enough per community that rank-24 CP can learn the block structure.
  const shape_t shape{3000, 40, 3000};
  CooTensor triples = generate_clustered(
      shape, 150000, {.clusters = 48, .spread = 6.0}, 777);
  std::printf("knowledge base: %s\n", triples.summary().c_str());

  // Hold out a random 5% of triples for evaluation. (The tensor is sorted
  // after coalescing, so a positional split would remove whole subjects and
  // evaluate on cold-start entities.)
  CooTensor train(shape);
  std::vector<std::array<index_t, 3>> test;
  {
    Rng holdout_rng(31337);
    std::array<index_t, 3> c{};
    for (nnz_t i = 0; i < triples.nnz(); ++i) {
      triples.coords(i, c);
      if (holdout_rng.next_real() < 0.05)
        test.push_back(c);
      else
        train.push_back(c, triples.value(i));
    }
  }

  CpAlsOptions opt;
  opt.rank = 24;
  opt.max_iterations = 20;
  opt.tolerance = 1e-5;
  opt.engine = EngineKind::kAuto;
  const CpAlsResult result = cp_als(train, opt);
  std::printf("decomposed with %s: fit %.4f after %d iterations\n",
              result.engine_name.c_str(),
              static_cast<double>(result.final_fit()), result.iterations);

  // AUC probe: for each held-out triple, corrupt the object entity at random
  // and check whether the true triple outscores the corrupted one.
  Rng rng(4242);
  nnz_t wins = 0, ties = 0;
  for (const auto& c : test) {
    std::array<index_t, 3> corrupt = c;
    corrupt[2] = rng.next_index(shape[2]);
    const real_t st = result.model.value_at(c);
    const real_t sc = result.model.value_at(corrupt);
    if (st > sc)
      ++wins;
    else if (st == sc)
      ++ties;
  }
  const double auc =
      (static_cast<double>(wins) + 0.5 * static_cast<double>(ties)) /
      static_cast<double>(test.size());
  std::printf("held-out triples: %zu, link-prediction AUC vs corrupted "
              "objects: %.3f (0.5 = chance)\n",
              test.size(), auc);
  return 0;
}
