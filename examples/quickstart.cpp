// Quickstart: build a small sparse tensor, run CP-ALS with the model-driven
// engine, and inspect the result.
//
//   $ ./quickstart
//
// Covers the three-call core API: construct a CooTensor, pick CpAlsOptions,
// call cp_als().
#include <cstdio>

#include "mdcp.hpp"

int main() {
  using namespace mdcp;

  // A 4x4x4 tensor describing a toy (user, item, context) interaction cube.
  CooTensor x(shape_t{4, 4, 4});
  const std::vector<std::array<index_t, 3>> coords{
      {0, 0, 0}, {0, 1, 0}, {1, 0, 1}, {1, 1, 1}, {2, 2, 2},
      {2, 3, 2}, {3, 2, 3}, {3, 3, 3}, {0, 2, 1}, {1, 3, 0},
  };
  const std::vector<real_t> vals{5, 4, 3, 5, 4, 5, 2, 4, 1, 2};
  for (std::size_t i = 0; i < coords.size(); ++i)
    x.push_back(coords[i], vals[i]);

  std::printf("input: %s, |X| = %.3f\n", x.summary().c_str(),
              static_cast<double>(x.norm()));

  // Decompose at rank 2. EngineKind::kAuto asks the model-driven tuner to
  // pick the MTTKRP strategy; for a 3-mode toy it will choose a cheap tree.
  CpAlsOptions opt;
  opt.rank = 2;
  opt.max_iterations = 100;
  opt.tolerance = 1e-8;
  opt.engine = EngineKind::kAuto;
  opt.verbose = false;

  const CpAlsResult result = cp_als(x, opt);

  std::printf("engine: %s\n", result.engine_name.c_str());
  std::printf("converged after %d iterations, fit = %.5f\n", result.iterations,
              static_cast<double>(result.final_fit()));

  // The model is lambda-weighted: X ≈ Σ_r λ_r u_r ∘ v_r ∘ w_r.
  for (index_t r = 0; r < result.model.rank(); ++r) {
    std::printf("component %u (weight %.4f): mode-0 loadings [", r,
                static_cast<double>(result.model.weights[r]));
    for (index_t i = 0; i < 4; ++i)
      std::printf("%s%.3f", i ? ", " : "",
                  static_cast<double>(result.model.factors[0](i, r)));
    std::printf("]\n");
  }

  // Point predictions at arbitrary coordinates (including unobserved ones).
  const std::array<index_t, 3> seen{0, 0, 0};
  const std::array<index_t, 3> unseen{0, 3, 0};
  std::printf("predicted X(0,0,0) = %.3f (stored 5.0)\n",
              static_cast<double>(result.model.value_at(seen)));
  std::printf("predicted X(0,3,0) = %.3f (unobserved)\n",
              static_cast<double>(result.model.value_at(unseen)));
  return 0;
}
