// Tag recommendation on a 4-mode (user × resource × tag × week) tensor —
// the Delicious/Flickr-style workload that motivates higher-order sparse CP.
//
// A synthetic tagging history is decomposed at rank 16 with the model-driven
// engine; the resulting factors give a score s(u, r, t, w) =
// Σ_k λ_k U(u,k) R(r,k) T(t,k) W(w,k) used to rank candidate tags for a
// (user, resource) pair.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "mdcp.hpp"

int main() {
  using namespace mdcp;

  // Synthetic tagging log: 60k events over 2k users, 5k resources, 800 tags,
  // 52 weeks, with Zipf-skewed popularity in every mode.
  const shape_t shape{2000, 5000, 800, 52};
  const CooTensor events = generate_zipf(shape, 60000, 1.1, 2024);
  std::printf("tagging history: %s\n", events.summary().c_str());

  CpAlsOptions opt;
  opt.rank = 16;
  opt.max_iterations = 25;
  opt.tolerance = 1e-5;
  opt.engine = EngineKind::kAuto;
  const CpAlsResult result = cp_als(events, opt);
  std::printf("decomposed with %s: fit %.4f after %d iterations "
              "(mttkrp %.3fs, dense %.3fs)\n",
              result.engine_name.c_str(),
              static_cast<double>(result.final_fit()), result.iterations,
              result.mttkrp_seconds, result.dense_seconds);

  // Recommend tags for one observed (user, resource, week) context (the
  // first event in the coalesced log).
  const index_t user = events.index(0, 0);
  const index_t resource = events.index(1, 0);
  const index_t week = events.index(3, 0);

  const auto& m = result.model;
  std::vector<std::pair<real_t, index_t>> scored;
  for (index_t tag = 0; tag < shape[2]; ++tag) {
    real_t s = 0;
    for (index_t k = 0; k < m.rank(); ++k) {
      s += m.weights[k] * m.factors[0](user, k) * m.factors[1](resource, k) *
           m.factors[2](tag, k) * m.factors[3](week, k);
    }
    scored.emplace_back(s, tag);
  }
  std::partial_sort(scored.begin(), scored.begin() + 5, scored.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });

  std::printf("top-5 tags for user %u / resource %u in week %u:\n", user,
              resource, week);
  for (int i = 0; i < 5; ++i)
    std::printf("  tag %4u  score %.4f\n", scored[static_cast<std::size_t>(i)].second,
                static_cast<double>(scored[static_cast<std::size_t>(i)].first));
  return 0;
}
