#include "cpals/cp_mu.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "la/blas.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace mdcp {

namespace {
constexpr real_t kEps = 1e-12;  // denominator guard
}

CpAlsResult cp_mu(const CooTensor& tensor, const CpAlsOptions& options) {
  const auto engine = make_engine(tensor, options.engine, options.rank,
                                  options.memory_budget_bytes);
  return cp_mu(tensor, *engine, options);
}

CpAlsResult cp_mu(const CooTensor& tensor, MttkrpEngine& engine,
                  const CpAlsOptions& options) {
  MDCP_CHECK_MSG(options.rank > 0, "rank must be positive");
  MDCP_CHECK_MSG(options.max_iterations > 0, "need at least one iteration");
  for (real_t v : tensor.values())
    MDCP_CHECK_MSG(v >= 0, "cp_mu requires a nonnegative tensor");

  const mode_t order = tensor.order();
  const index_t rank = options.rank;
  engine.invalidate_all();

  CpAlsResult result;
  result.engine_name = engine.name();

  WallTimer total_timer;
  PhaseTimer mttkrp_t, dense_t, fit_t;

  // Strictly positive initialization keeps the multiplicative iterates
  // well-defined.
  Rng rng(options.seed);
  std::vector<Matrix> factors;
  for (mode_t m = 0; m < order; ++m) {
    Matrix f = Matrix::random_uniform(tensor.dim(m), rank, rng);
    for (std::size_t e = 0; e < f.size(); ++e) f.data()[e] += real_t{0.1};
    factors.push_back(std::move(f));
  }
  std::vector<Matrix> grams(order);
  for (mode_t m = 0; m < order; ++m) gram(factors[m], grams[m]);

  const real_t x_norm = tensor.norm();
  Matrix m_out, h, denom;
  real_t prev_fit = 0;

  const auto all_finite = [](const Matrix& m) {
    for (std::size_t e = 0; e < m.size(); ++e)
      if (!std::isfinite(m.data()[e])) return false;
    return true;
  };
  // Bounded restart mirroring cp_als: re-draw the offending factor (kept
  // strictly positive, as at initialization) and keep sweeping.
  const auto recover_factor = [&](mode_t n, const char* why) {
    ++result.recoveries;
    if (result.recoveries > options.max_recoveries)
      throw numeric_error(std::string("cp-mu: numerical recovery budget "
                                      "exhausted (last cause: ") +
                          why + ")");
    if (options.verbose)
      std::printf("[cp-mu] recovery %d: %s, re-randomizing factor %u\n",
                  result.recoveries, why, static_cast<unsigned>(n));
    Matrix f = Matrix::random_uniform(tensor.dim(n), rank, rng);
    for (std::size_t e = 0; e < f.size(); ++e) f.data()[e] += real_t{0.1};
    factors[n] = std::move(f);
    gram(factors[n], grams[n]);
    engine.factor_updated(n);
  };

  for (int it = 0; it < options.max_iterations; ++it) {
    for (mode_t n = 0; n < order; ++n) {
      mttkrp_t.start();
      engine.compute(n, factors, m_out);
      mttkrp_t.stop();

      dense_t.start();
      h.resize(rank, rank, 1);
      for (mode_t i = 0; i < order; ++i)
        if (i != n) hadamard_inplace(h, grams[i]);
      multiply_into(factors[n], h, denom);
      auto& u = factors[n];
      parallel_for(u.rows(), [&](nnz_t i) {
        auto urow = u.row(static_cast<index_t>(i));
        const auto mrow = m_out.row(static_cast<index_t>(i));
        const auto drow = denom.row(static_cast<index_t>(i));
        for (index_t r = 0; r < rank; ++r) {
          // M is nonnegative here (nonneg tensor × nonneg factors), so the
          // update preserves nonnegativity.
          urow[r] *= mrow[r] / (drow[r] + kEps);
        }
      });
      if (!all_finite(u)) {
        // A poisoned MTTKRP output (or overflow) reached the multiplicative
        // update; the Gram refresh below would spread it to every mode.
        recover_factor(n, "non-finite factor update");
      } else {
        gram(u, grams[n]);
      }
      dense_t.stop();

      engine.factor_updated(n);
    }

    // ⟨X,M⟩ and ‖M‖ from state in hand (λ ≡ 1 here; scale lives in factors).
    fit_t.start();
    real_t inner = 0;
    {
      const auto& u = factors[order - 1];
      for (index_t i = 0; i < u.rows(); ++i) {
        const auto urow = u.row(i);
        const auto mrow = m_out.row(i);
        for (index_t r = 0; r < rank; ++r) inner += urow[r] * mrow[r];
      }
    }
    real_t m_norm_sq = 0;
    {
      Matrix acc(rank, rank, 1);
      for (mode_t i = 0; i < order; ++i) hadamard_inplace(acc, grams[i]);
      for (index_t r = 0; r < rank; ++r)
        for (index_t q = 0; q < rank; ++q) m_norm_sq += acc(r, q);
    }
    real_t fit = fit_from_parts(
        x_norm, inner, std::sqrt(std::max<real_t>(m_norm_sq, 0)));
    fit_t.stop();

    bool recovered_this_iter = false;
    if (!std::isfinite(fit)) {
      recover_factor(static_cast<mode_t>(order - 1), "non-finite fit");
      fit = prev_fit;
      recovered_this_iter = true;
    }

    result.fits.push_back(fit);
    result.iterations = it + 1;
    if (options.verbose)
      std::printf("[cp-mu %s] iter %3d fit %.6f\n", engine.name().c_str(),
                  it + 1, static_cast<double>(fit));
    if (!recovered_this_iter && it > 0 &&
        std::abs(fit - prev_fit) < options.tolerance) {
      result.converged = true;
      prev_fit = fit;
      break;
    }
    prev_fit = fit;
  }

  // Normalize columns into weights for a canonical Kruskal result.
  result.model.factors = std::move(factors);
  result.model.weights.assign(rank, 1);
  std::vector<real_t> lambda(rank, 1);
  for (mode_t m = 0; m < order; ++m) {
    const auto norms = column_normalize(result.model.factors[m]);
    for (index_t r = 0; r < rank; ++r) lambda[r] *= norms[r];
  }
  result.model.weights = std::move(lambda);

  result.mttkrp_seconds = mttkrp_t.total_seconds();
  result.dense_seconds = dense_t.total_seconds();
  result.fit_seconds = fit_t.total_seconds();
  result.total_seconds = total_timer.seconds();
  return result;
}

}  // namespace mdcp
