// Nonnegative CP decomposition via multiplicative updates (Frobenius loss).
//
// The Lee–Seung NMF update generalized to tensors (Welling & Weber):
//
//   U⁽ⁿ⁾ ← U⁽ⁿ⁾ ∘ M⁽ⁿ⁾ ⊘ (U⁽ⁿ⁾ H⁽ⁿ⁾ + ε)
//
// with M⁽ⁿ⁾ the MTTKRP and H⁽ⁿ⁾ = ∘_{i≠n} U⁽ⁱ⁾ᵀU⁽ⁱ⁾. Starting from strictly
// positive factors on a nonnegative tensor, every iterate stays nonnegative
// and the Frobenius objective is non-increasing. Included because the
// paper's memoized-MTTKRP machinery applies verbatim to any algorithm with
// MTTKRP at its core — this is the canonical second consumer.
#pragma once

#include "cpals/cpals.hpp"

namespace mdcp {

/// Runs multiplicative-update nonnegative CP. Requires all tensor values
/// >= 0 (throws otherwise). Returns the same result structure as cp_als;
/// `options.nonnegative` is implied and ignored.
CpAlsResult cp_mu(const CooTensor& tensor, const CpAlsOptions& options);

/// Same, with a caller-provided (reusable) MTTKRP engine.
CpAlsResult cp_mu(const CooTensor& tensor, MttkrpEngine& engine,
                  const CpAlsOptions& options);

}  // namespace mdcp
