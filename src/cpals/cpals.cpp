#include "cpals/cpals.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "model/tuner.hpp"
#include "mttkrp/registry.hpp"
#include "obs/flightrec.hpp"
#include "obs/history.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/timer.hpp"

namespace mdcp {

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kCoo: return "coo";
    case EngineKind::kBlockedCoo: return "bcoo";
    case EngineKind::kTtvChain: return "ttv-chain";
    case EngineKind::kCsf: return "csf";
    case EngineKind::kCsfOne: return "csf1";
    case EngineKind::kDTreeFlat: return "dtree-flat";
    case EngineKind::kDTreeThreeLevel: return "dtree-3lvl";
    case EngineKind::kDTreeBdt: return "dtree-bdt";
    case EngineKind::kAuto: return "auto";
    case EngineKind::kAutoProbed: return "auto+probe";
  }
  return "unknown";
}

namespace {

// Single construction path for both the enum and the string spelling. The
// memory budget rides in through the context, so fixed engines get arena
// enforcement (typed budget_error) and the auto engines additionally plan
// their degradation chain. Engines are created *unprepared*: cp_als prepares
// lazily, which keeps prepare-time degradation events inside the run's
// reporting window.
// Empirical-overlay knobs forwarded from the ALS options into the tuner.
TunerOptions tuner_options_from(const CpAlsOptions& options) {
  TunerOptions t;
  t.use_history = options.use_history && options.history != nullptr;
  t.history = options.history;
  t.trust.min_weight = options.history_min_weight;
  return t;
}

std::unique_ptr<MttkrpEngine> make_named_engine_unprepared(
    const std::string& name, std::size_t memory_budget_bytes,
    const TunerOptions& tuner_options = {}) {
  KernelContext ctx;
  ctx.mem_budget = memory_budget_bytes;
  if (name == "auto" || name == "auto+probe") {
    return std::make_unique<AutoEngine>(name == "auto+probe",
                                        memory_budget_bytes, CostModelParams{},
                                        3, ctx, tuner_options);
  }
  return make_engine(name, ctx);
}

std::unique_ptr<MttkrpEngine> make_named_engine(
    const CooTensor& tensor, const std::string& name, index_t rank,
    std::size_t memory_budget_bytes) {
  auto engine = make_named_engine_unprepared(name, memory_budget_bytes);
  engine->prepare(tensor, rank);
  return engine;
}

}  // namespace

std::unique_ptr<MttkrpEngine> make_engine(const CooTensor& tensor,
                                          EngineKind kind, index_t rank,
                                          std::size_t memory_budget_bytes) {
  return make_named_engine(tensor, engine_kind_name(kind), rank,
                           memory_budget_bytes);
}

CpAlsResult cp_als(const CooTensor& tensor, const CpAlsOptions& options) {
  const std::string name = options.engine_name.empty()
                               ? engine_kind_name(options.engine)
                               : options.engine_name;
  const auto engine = make_named_engine_unprepared(
      name, options.memory_budget_bytes, tuner_options_from(options));
  return cp_als(tensor, *engine, options);
}

CpAlsResult cp_als_best_of(const CooTensor& tensor,
                           const CpAlsOptions& options, int num_starts) {
  MDCP_CHECK_MSG(num_starts > 0, "need at least one start");
  const std::string name = options.engine_name.empty()
                               ? engine_kind_name(options.engine)
                               : options.engine_name;
  const auto engine = make_named_engine_unprepared(
      name, options.memory_budget_bytes, tuner_options_from(options));
  CpAlsResult best;
  for (int s = 0; s < num_starts; ++s) {
    CpAlsOptions opt = options;
    opt.seed = splitmix64(options.seed + static_cast<std::uint64_t>(s));
    CpAlsResult run = cp_als(tensor, *engine, opt);
    if (s == 0 || run.final_fit() > best.final_fit()) best = std::move(run);
  }
  return best;
}

namespace {

// Scoped crash-forensics registrations: the engine's KernelStats and (when
// reporting) the pre-formatted `aborted` summary become reachable from the
// watchdog dump and the signal handlers only while a run is actually in
// flight.
struct CrashScopeGuard {
  bool report_attached = false;
  ~CrashScopeGuard() {
    obs::crash_set_kernel_stats(nullptr);
    if (report_attached) obs::crash_detach_report();
  }
};

void append_kernel_stats(obs::JsonWriter& w, const KernelStats& s) {
  w.key("kernel")
      .begin_object()
      .kv("symbolic_seconds", s.symbolic_seconds)
      .kv("numeric_seconds", s.numeric_seconds)
      .kv("prepare_calls", s.prepare_calls)
      .kv("compute_calls", s.compute_calls)
      .kv("flops", s.flops)
      .kv("peak_scratch_bytes", static_cast<std::uint64_t>(s.peak_scratch_bytes))
      .kv("degradations", s.degradations)
      .end_object();
}

}  // namespace

CpAlsResult cp_als(const CooTensor& tensor, MttkrpEngine& engine,
                   const CpAlsOptions& options) {
  MDCP_CHECK_MSG(options.rank > 0, "rank must be positive");
  MDCP_CHECK_MSG(options.max_iterations > 0, "need at least one iteration");
  const mode_t order = tensor.order();
  const index_t rank = options.rank;

  MDCP_TRACE_SPAN("cpals.run", "rank", static_cast<std::int64_t>(rank));

  // Degradation-event cursor taken before prepare() so chain fallbacks made
  // at prepare time ("predicted-over-budget") are reported with this run.
  const auto* auto_engine = dynamic_cast<const AutoEngine*>(&engine);
  const std::size_t degradations_before =
      auto_engine != nullptr ? auto_engine->degradation_events().size() : 0;

  // Stats snapshot taken before the (possibly lazy) prepare so prepare-time
  // work — symbolic seconds and predicted-over-budget degradations — is
  // attributed to this run.
  const KernelStats stats_before = engine.stats();
  engine.invalidate_all();
  if (!engine.prepared()) engine.prepare(tensor, rank);

  CpAlsResult result;
  result.engine_name = engine.name();
  result.mttkrp_mode_seconds.assign(order, 0.0);

  // --- Liveness + crash forensics for this run. ---------------------------
  // The engine's stats become reachable from crash dumps, and (when
  // reporting) a pre-formatted `aborted` summary is registered so a signal
  // handler can promote the in-flight `.tmp` report into one the history
  // store ingests. Both registrations are scoped to the run by the guard.
  std::atomic<bool> local_cancel{false};
  CrashScopeGuard crash_scope;
  obs::crash_set_kernel_stats(&engine.stats());
  if (options.reporter != nullptr && options.reporter->ok()) {
    const char* plan_src = engine.stats().plan_source;
    obs::JsonWriter w;
    w.begin_object()
        .kv("type", "summary")
        .kv("schema", obs::kReportSchema)
        .kv("engine", result.engine_name)
        .kv("rank", static_cast<std::uint64_t>(rank))
        .kv("plan_source",
            (plan_src != nullptr && plan_src[0] != '\0') ? plan_src : "fixed")
        .kv("iterations", 0)
        .kv("converged", false)
        .kv("cancelled", false)
        .kv("aborted", true)
        .end_object();
    obs::crash_attach_report(options.reporter->tmp_path(),
                             options.reporter->path(), w.str());
    crash_scope.report_attached = true;
  }
  std::unique_ptr<obs::Watchdog> watchdog;
  if (options.watchdog.deadline_seconds > 0) {
    obs::WatchdogOptions wd = options.watchdog;
    if (wd.policy == obs::WatchdogPolicy::kCancel && wd.cancel == nullptr)
      wd.cancel = options.cancel != nullptr ? options.cancel : &local_cancel;
    watchdog = std::make_unique<obs::Watchdog>(wd);
  }
  // Cooperative cancellation: caller flag, watchdog-wired run-local flag, or
  // a flag planted on the engine's KernelContext. Checked between modes and
  // iterations only — kernels never poll mid-compute.
  const auto cancel_requested = [&]() noexcept {
    return (options.cancel != nullptr &&
            options.cancel->load(std::memory_order_relaxed)) ||
           local_cancel.load(std::memory_order_relaxed) ||
           (engine.context().cancel != nullptr &&
            engine.context().cancel->load(std::memory_order_relaxed));
  };

  // Memo counter snapshots for per-iteration hit/miss deltas (global
  // registry counters; zero-delta for non-memoizing engines).
  auto& metrics = obs::MetricsRegistry::instance();
  obs::Counter& memo_hits = metrics.counter("dtree.memo_hits");
  obs::Counter& memo_misses = metrics.counter("dtree.memo_misses");

  // Per-mode MTTKRP latency distributions (one histogram per mode, looked up
  // once — record() inside the loop is lock-free).
  std::vector<obs::Histogram*> mode_latency;
  mode_latency.reserve(order);
  for (mode_t m = 0; m < order; ++m) {
    mode_latency.push_back(&metrics.histogram("cpals.mttkrp_seconds.mode" +
                                              std::to_string(m)));
  }

  WallTimer total_timer;
  PhaseTimer mttkrp_t, dense_t, fit_t;
  std::vector<double> iter_mode_seconds(order, 0.0);

  // Initialize factors Uniform(0,1) and precompute Gram matrices.
  Rng rng(options.seed);
  std::vector<Matrix> factors;
  factors.reserve(order);
  for (mode_t m = 0; m < order; ++m)
    factors.push_back(Matrix::random_uniform(tensor.dim(m), rank, rng));

  std::vector<Matrix> grams(order);
  for (mode_t m = 0; m < order; ++m) gram(factors[m], grams[m]);

  const real_t x_norm = tensor.norm();
  std::vector<real_t> lambda(rank, 1);
  Matrix mttkrp_out;
  Matrix h;
  real_t prev_fit = 0;

  const auto all_finite = [](const Matrix& m) {
    const real_t* d = m.data();
    for (std::size_t e = 0; e < m.size(); ++e)
      if (!std::isfinite(d[e])) return false;
    return true;
  };
  obs::Counter& recoveries_metric = metrics.counter("cpals.recoveries");
  // Bounded restart: re-randomize the offending factor and continue the
  // sweep. Throws numeric_error once the per-run budget is spent — a
  // persistently poisoned input must not loop forever.
  const auto recover_factor = [&](mode_t n, const char* why) {
    ++result.recoveries;
    if (result.recoveries > options.max_recoveries)
      throw numeric_error(std::string("cp-als: numerical recovery budget "
                                      "exhausted (last cause: ") +
                          why + ")");
    MDCP_TRACE_SPAN("cpals.recovery", "mode", static_cast<std::int64_t>(n));
    obs::fr_record(obs::FrEvent::kRecovery, obs::FrPhase::kSolve,
                   static_cast<std::int64_t>(n));
    recoveries_metric.add();
    if (options.verbose)
      std::printf("[cp-als] recovery %d: %s, re-randomizing factor %u\n",
                  result.recoveries, why, static_cast<unsigned>(n));
    factors[n] = Matrix::random_uniform(tensor.dim(n), rank, rng);
    column_normalize(factors[n]);
    std::fill(lambda.begin(), lambda.end(), real_t{1});
    gram(factors[n], grams[n]);
    engine.factor_updated(n);
  };

  bool cancelled = false;
  for (int it = 0; it < options.max_iterations; ++it) {
    MDCP_TRACE_SPAN("cpals.iteration", "iter", static_cast<std::int64_t>(it));
    obs::fr_record(obs::FrEvent::kIteration, obs::FrPhase::kIteration, it);
    obs::fr_beat(obs::FrPhase::kIteration, it);
    if (cancel_requested()) {
      obs::fr_record(obs::FrEvent::kCancel, obs::FrPhase::kIteration, it);
      cancelled = true;
      break;
    }
    if (fault::should_inject(fault::Site::kStall)) {
      obs::fr_record(
          obs::FrEvent::kStall, obs::FrPhase::kIteration,
          static_cast<std::int64_t>(
              fault::FaultPlan::instance().config(fault::Site::kStall)
                  .threshold));
      fault::inject_stall();
    }
    if (fault::should_inject(fault::Site::kSegv)) fault::inject_segv();
    const KernelStats iter_stats_before = engine.stats();
    const std::uint64_t iter_hits_before = memo_hits.value();
    const std::uint64_t iter_misses_before = memo_misses.value();

    for (mode_t n = 0; n < order; ++n) {
      if (n > 0 && cancel_requested()) {
        obs::fr_record(obs::FrEvent::kCancel, obs::FrPhase::kIteration, it,
                       static_cast<std::int64_t>(n));
        cancelled = true;
        break;
      }
      mttkrp_t.start();
      engine.compute(n, factors, mttkrp_out);
      mttkrp_t.stop();
      iter_mode_seconds[n] = mttkrp_t.last_seconds();
      result.mttkrp_mode_seconds[n] += mttkrp_t.last_seconds();
      mode_latency[n]->record(mttkrp_t.last_seconds());

      MDCP_TRACE_SPAN("cpals.solve", "mode", static_cast<std::int64_t>(n));
      obs::fr_beat(obs::FrPhase::kSolve, static_cast<std::int64_t>(n));
      dense_t.start();
      // H^(n) = ∘_{i≠n} Gram_i.
      h.resize(rank, rank, 1);
      for (mode_t i = 0; i < order; ++i) {
        if (i != n) hadamard_inplace(h, grams[i]);
      }
      if (options.ridge > 0) {
        for (index_t d = 0; d < rank; ++d) h(d, d) += options.ridge;
      }
      bool update_ok = true;
      SolveInfo solve_info;
      try {
        factors[n] = solve_normal_equations(h, mttkrp_out, &solve_info);
      } catch (const numeric_error&) {
        // Non-finite Gram matrix: a poisoned upstream factor (or injected
        // kernel NaN) reached H. Regularization cannot repair it — restart
        // the factor instead.
        update_ok = false;
      }
      result.ridge_retries += solve_info.ridge_retries;
      if (solve_info.used_pseudo_inverse) ++result.pseudo_inverse_solves;
      // Guard the update itself: a NaN/Inf row (e.g. a poisoned MTTKRP
      // output pushed through the solve) must not survive into the Gram
      // matrices, where it would contaminate every later mode.
      if (update_ok && !all_finite(factors[n])) update_ok = false;
      if (!update_ok) {
        recover_factor(n, "non-finite factor update");
      } else {
        if (options.nonnegative) {
          // Projected ALS: negative entries are infeasible for count data.
          real_t* data = factors[n].data();
          for (std::size_t e = 0; e < factors[n].size(); ++e)
            if (data[e] < 0) data[e] = 0;
        }
        lambda = column_normalize(factors[n]);
        // Columns that collapsed to zero would poison H; re-randomize them.
        for (index_t r = 0; r < rank; ++r) {
          if (lambda[r] == 0) {
            for (index_t i = 0; i < factors[n].rows(); ++i)
              factors[n](i, r) = rng.next_real();
            auto norms = column_normalize(factors[n]);
            (void)norms;
          }
        }
        gram(factors[n], grams[n]);
      }
      dense_t.stop();

      engine.factor_updated(n);
    }
    if (cancelled) break;

    // Fit from the last sub-iteration's MTTKRP (mode order-1): M^(n) does not
    // depend on U^(n), so it is still consistent with the updated factor.
    // ⟨X,M⟩ = Σ_r λ_r Σ_i U(i,r)·M(i,r); ‖M‖² = λᵀ(∘_n Gram_n)λ — both from
    // state already in hand, no factor copies.
    real_t fit = 0;
    {
      MDCP_TRACE_SPAN("cpals.fit");
      obs::fr_beat(obs::FrPhase::kFit, it);
      fit_t.start();
      real_t inner = 0;
      {
        const auto& u = factors[order - 1];
        for (index_t i = 0; i < u.rows(); ++i) {
          const auto urow = u.row(i);
          const auto mrow = mttkrp_out.row(i);
          for (index_t r = 0; r < rank; ++r)
            inner += lambda[r] * urow[r] * mrow[r];
        }
      }
      real_t m_norm_sq = 0;
      {
        Matrix acc(rank, rank, 1);
        for (mode_t i = 0; i < order; ++i) hadamard_inplace(acc, grams[i]);
        for (index_t r = 0; r < rank; ++r)
          for (index_t q = 0; q < rank; ++q)
            m_norm_sq += lambda[r] * lambda[q] * acc(r, q);
      }
      const real_t m_norm = std::sqrt(std::max<real_t>(m_norm_sq, 0));
      fit = fit_from_parts(x_norm, inner, m_norm);
      fit_t.stop();
    }

    // Fit guard: a non-finite fit means a poisoned value slipped past the
    // per-update checks (it can arrive through the cached MTTKRP output the
    // fit identity reuses). Restart the factor that fed it and report the
    // previous fit so convergence is neither declared nor corrupted.
    bool recovered_this_iter = false;
    if (!std::isfinite(fit)) {
      recover_factor(static_cast<mode_t>(order - 1), "non-finite fit");
      fit = prev_fit;
      recovered_this_iter = true;
    }

    result.fits.push_back(fit);
    result.iterations = it + 1;
    if (options.verbose) {
      std::printf("[cp-als %s] iter %3d fit %.6f\n", engine.name().c_str(),
                  it + 1, static_cast<double>(fit));
    }

    if (options.reporter != nullptr) {
      obs::JsonWriter w;
      w.begin_object()
          .kv("type", "iteration")
          .kv("schema", obs::kReportSchema)
          .kv("iter", it + 1)
          .kv("fit", static_cast<double>(fit))
          .kv("fit_delta", static_cast<double>(fit - prev_fit))
          .kv("mttkrp_seconds", mttkrp_t.total_seconds())
          .kv("dense_seconds", dense_t.total_seconds())
          .kv("fit_seconds", fit_t.total_seconds());
      w.key("mttkrp_mode_seconds").begin_array();
      for (mode_t n = 0; n < order; ++n) w.value(iter_mode_seconds[n]);
      w.end_array();
      w.kv("memo_hits", memo_hits.value() - iter_hits_before)
          .kv("memo_misses", memo_misses.value() - iter_misses_before)
          .kv("recoveries", result.recoveries);
      append_kernel_stats(w, engine.stats().since(iter_stats_before));
      w.end_object();
      options.reporter->write_line(w.str());
    }

    if (!recovered_this_iter && it > 0 &&
        std::abs(fit - prev_fit) < options.tolerance) {
      result.converged = true;
      prev_fit = fit;
      break;
    }
    prev_fit = fit;
  }

  obs::fr_beat(obs::FrPhase::kShutdown);
  if (watchdog != nullptr) {
    watchdog->stop();
    result.watchdog_fired = watchdog->fired();
    result.watchdog_dump_path = watchdog->dump_path();
  }
  result.cancelled = cancelled;

  result.model.weights = std::move(lambda);
  result.model.factors = std::move(factors);
  result.mttkrp_seconds = mttkrp_t.total_seconds();
  result.dense_seconds = dense_t.total_seconds();
  result.fit_seconds = fit_t.total_seconds();
  result.total_seconds = total_timer.seconds();
  // KernelStats::since is a field-wise delta EXCEPT peak_scratch_bytes: a
  // workspace high-water mark cannot be subtracted, so the peak is carried
  // over as-is. With an engine reused across runs this peak may therefore
  // predate this run (it is a process-lifetime bound, not a per-run one).
  result.kernel_stats = engine.stats().since(stats_before);
  result.engine_peak_memory_bytes = engine.peak_memory_bytes();
  // Fixed engines never set KernelStats::plan_source — there was no plan to
  // choose. Spell that "fixed" so report consumers can tell it apart from a
  // model-driven run that predates the field.
  result.plan_source = (result.kernel_stats.plan_source != nullptr &&
                        result.kernel_stats.plan_source[0] != '\0')
                           ? result.kernel_stats.plan_source
                           : "fixed";

  if (auto_engine != nullptr) {
    const auto& prediction = auto_engine->report().winner().prediction;
    result.predicted_seconds_per_iteration = prediction.seconds_per_iteration;
    result.predicted_memory_bytes = prediction.total_memory_bytes();
    // Close the model-accuracy loop: measured counterparts of the tuner's
    // prediction, exported so every auto run doubles as a model-error
    // sample (cf. bench_model).
    if (result.iterations > 0) {
      const double measured =
          result.mttkrp_seconds / static_cast<double>(result.iterations);
      metrics.gauge("tuner.measured_seconds_per_iter").set(measured);
      if (measured > 0) {
        metrics.gauge("tuner.time_error_ratio")
            .set(result.predicted_seconds_per_iteration / measured);
      }
      metrics.gauge("tuner.measured_memory_bytes")
          .set(static_cast<double>(result.engine_peak_memory_bytes));
      if (result.engine_peak_memory_bytes > 0) {
        metrics.gauge("tuner.memory_error_ratio")
            .set(static_cast<double>(result.predicted_memory_bytes) /
                 static_cast<double>(result.engine_peak_memory_bytes));
      }
    }
  }

  if (options.reporter != nullptr && auto_engine != nullptr) {
    // One "degradation" record per engine fallback taken during this run
    // (including prepare-time skips), ahead of the summary so downstream
    // consumers see causes before outcomes.
    const auto& events = auto_engine->degradation_events();
    for (std::size_t i = degradations_before; i < events.size(); ++i) {
      const DegradationEvent& ev = events[i];
      obs::JsonWriter w;
      w.begin_object()
          .kv("type", "degradation")
          .kv("schema", obs::kReportSchema)
          .kv("from", ev.from)
          .kv("to", ev.to)
          .kv("reason", ev.reason)
          .kv("predicted_bytes", static_cast<std::uint64_t>(ev.predicted_bytes))
          .kv("budget_bytes", static_cast<std::uint64_t>(ev.budget_bytes))
          .kv("at_prepare", ev.at_prepare)
          .end_object();
      options.reporter->write_line(w.str());
    }
  }

  if (options.reporter != nullptr) {
    obs::JsonWriter w;
    w.begin_object()
        .kv("type", "summary")
        .kv("schema", obs::kReportSchema)
        .kv("engine", result.engine_name)
        .kv("rank", static_cast<std::uint64_t>(rank))
        .kv("plan_source", result.plan_source)
        .kv("iterations", result.iterations)
        .kv("converged", result.converged)
        .kv("cancelled", result.cancelled)
        .kv("aborted", false)
        .kv("watchdog_fired", result.watchdog_fired)
        .kv("final_fit", static_cast<double>(result.final_fit()))
        .kv("total_seconds", result.total_seconds)
        .kv("mttkrp_seconds", result.mttkrp_seconds)
        .kv("dense_seconds", result.dense_seconds)
        .kv("fit_seconds", result.fit_seconds);
    w.key("mttkrp_mode_seconds").begin_array();
    for (mode_t n = 0; n < order; ++n) w.value(result.mttkrp_mode_seconds[n]);
    w.end_array();
    // Per-mode latency distribution of the process-lifetime histograms
    // (log-bucketed, ~19% quantile error; see obs/metrics.hpp). These span
    // every run in this process, not just this one.
    w.key("mttkrp_mode_quantiles").begin_array();
    for (mode_t n = 0; n < order; ++n) {
      w.begin_object()
          .kv("p50", mode_latency[n]->p50())
          .kv("p95", mode_latency[n]->p95())
          .kv("p99", mode_latency[n]->p99())
          .end_object();
    }
    w.end_array();
    append_kernel_stats(w, result.kernel_stats);
    w.kv("recoveries", result.recoveries)
        .kv("ridge_retries", result.ridge_retries)
        .kv("pseudo_inverse_solves", result.pseudo_inverse_solves);
    w.kv("engine_peak_memory_bytes",
         static_cast<std::uint64_t>(result.engine_peak_memory_bytes))
        .kv("predicted_seconds_per_iteration",
            result.predicted_seconds_per_iteration)
        .kv("predicted_memory_bytes",
            static_cast<std::uint64_t>(result.predicted_memory_bytes))
        .kv("memo_hits_total", memo_hits.value())
        .kv("memo_misses_total", memo_misses.value());
    w.key("workspace_thread_peak_bytes").begin_array();
    const Workspace& ws = engine.workspace();
    for (int tid = 0; tid < Workspace::kMaxThreads; ++tid) {
      const std::size_t bytes = ws.thread_slab_bytes(tid);
      if (bytes == 0) break;  // slabs are claimed densely from tid 0
      w.value(static_cast<std::uint64_t>(bytes));
    }
    w.end_array().end_object();
    options.reporter->write_line(w.str());
  }

  // Feed the outcome back into the history store so repeat runs in this
  // process warm-start without re-reading the report directory. Mirrors the
  // observation the ingester would extract from this run's report.
  if (options.history != nullptr && result.iterations > 0) {
    obs::RunObservation o;
    o.fingerprint = obs::tensor_fingerprint(tensor);
    o.engine_label = result.engine_name;
    o.strategy = obs::strategy_from_engine_label(result.engine_name);
    o.rank = static_cast<std::uint32_t>(rank);
    o.threads = engine.context().threads;
    o.build_id = obs::HistoryStore::current_build_id();
    o.machine_id = obs::HistoryStore::current_machine_id();
    o.iterations = result.iterations;
    const double iters = static_cast<double>(result.iterations);
    o.seconds_per_iteration = result.mttkrp_seconds / iters;
    o.mode_seconds.reserve(order);
    for (mode_t n = 0; n < order; ++n)
      o.mode_seconds.push_back(result.mttkrp_mode_seconds[n] / iters);
    if (o.seconds_per_iteration > 0)
      o.time_error_ratio =
          result.predicted_seconds_per_iteration / o.seconds_per_iteration;
    o.final_fit = static_cast<double>(result.final_fit());
    o.plan_source = result.plan_source;
    options.history->record(std::move(o));
  }
  return result;
}

}  // namespace mdcp
