// CP-ALS: alternating least squares for sparse CP decomposition, with a
// pluggable MTTKRP engine.
//
// The driver implements the standard ALS sweep: for each mode n, compute the
// MTTKRP M^(n), form H^(n) = ∘_{i≠n} U^(i)ᵀU^(i), solve U^(n) = M^(n)·H⁺,
// column-normalize into λ, refresh the Gram matrix, and notify the engine
// that U^(n) changed. Convergence is monitored with the O(I·R) fit identity
// — the dense reconstruction is never formed.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "cpals/kruskal.hpp"
#include "mttkrp/engine.hpp"
#include "obs/watchdog.hpp"
#include "tensor/coo_tensor.hpp"

namespace mdcp {

namespace obs {
class HistoryStore;
class RunReporter;
}  // namespace obs

/// Selectable MTTKRP computation strategies. Each kind maps to an
/// EngineRegistry name (engine_kind_name); new engines registered at runtime
/// are reachable through CpAlsOptions::engine_name without extending this
/// enum.
enum class EngineKind {
  kCoo,             ///< direct COO kernel (no factoring, no memoization)
  kBlockedCoo,      ///< HiCOO-style blocked COO (8-bit local offsets)
  kTtvChain,        ///< column-at-a-time TTV chains (Tensor-Toolbox style)
  kCsf,             ///< SPLATT-style CSF, one tree per mode (state of the art)
  kCsfOne,          ///< SPLATT-style CSF, single tree (memory-efficient)
  kDTreeFlat,       ///< dimension tree, root→leaves (index-compressed only)
  kDTreeThreeLevel, ///< dimension tree, one intermediate level (Phan-style)
  kDTreeBdt,        ///< full balanced binary dimension tree
  kAuto,            ///< model-driven: predict & pick the best strategy
  kAutoProbed,      ///< model shortlist + one measured sweep per candidate
};

const char* engine_kind_name(EngineKind kind);

/// Constructs a prepared engine of the requested kind via the registry.
/// `rank` sizes workspace scratch and drives the model for kAuto;
/// `memory_budget_bytes` is consulted only by kAuto/kAutoProbed (0 budget =
/// unlimited). The tensor must outlive the engine.
std::unique_ptr<MttkrpEngine> make_engine(const CooTensor& tensor,
                                          EngineKind kind, index_t rank = 16,
                                          std::size_t memory_budget_bytes = 0);

struct CpAlsOptions {
  index_t rank = 16;
  int max_iterations = 50;
  real_t tolerance = 1e-5;   ///< stop when |fit − prev_fit| < tolerance
  /// Tikhonov/ridge term added to the normal-equations diagonal
  /// (H + ridge·I). Stabilizes ill-conditioned updates when components
  /// become collinear; 0 disables.
  real_t ridge = 0;
  std::uint64_t seed = 42;   ///< factor initialization seed
  EngineKind engine = EngineKind::kDTreeBdt;
  /// Registry engine name; when non-empty it overrides `engine`. This is how
  /// the CLI and engines registered at runtime are selected.
  std::string engine_name;
  std::size_t memory_budget_bytes = 0;  ///< for kAuto; 0 = unlimited
  /// Projected nonnegative ALS: clamp each factor update at zero before
  /// normalization (multilinear NMF-style decompositions for count data).
  bool nonnegative = false;
  /// Numerical-recovery budget: when a factor update or the fit turns
  /// non-finite (overflow, poisoned kernel output, NaN Gram matrix), the
  /// offending factor is re-randomized from the run's RNG and the sweep
  /// continues. After this many recoveries in one run a typed
  /// mdcp::numeric_error is raised instead. 0 disables recovery (the first
  /// non-finite update throws).
  int max_recoveries = 5;
  bool verbose = false;
  /// Optional JSONL run reporter: when set, cp_als appends one "iteration"
  /// record per ALS iteration (fit, fit delta, per-mode MTTKRP seconds,
  /// phase split, kernel-stats and memo hit/miss deltas) and one "summary"
  /// record at the end. The caller owns the reporter (and typically writes
  /// the provenance header first); see obs/report.hpp.
  obs::RunReporter* reporter = nullptr;
  /// Optional cross-run history store (see obs/history.hpp). When set, the
  /// model-driven engines (auto / auto+probe) consult the measured-best
  /// plan for this tensor before trusting the analytic ranking, and the
  /// run's outcome is recorded back so later runs warm-start. The caller
  /// owns the store.
  obs::HistoryStore* history = nullptr;
  /// Master switch for the empirical overlay (the CLI's --no-history).
  /// Recording the outcome into `history` still happens when off.
  bool use_history = true;
  /// Warm-start threshold: trust-weighted observations a strategy needs
  /// before history may override the model (same build/machine runs weigh
  /// 1 each; see obs::TrustPolicy).
  double history_min_weight = 1.0;
  /// Cooperative cancellation flag (null = never cancelled). Checked between
  /// modes and iterations; when it flips, the run stops cleanly with
  /// result.cancelled = true and a "cancelled":true summary record instead
  /// of a hard abort. Set by `mdcp_cli --timeout-s` and by the watchdog's
  /// cancel policy.
  std::atomic<bool>* cancel = nullptr;
  /// Opt-in stall watchdog for this run (deadline_seconds <= 0 = off, the
  /// default). cp_als starts the monitor thread for the duration of the run;
  /// under the kCancel policy with no explicit `cancel` target it is wired
  /// to a run-local flag automatically. See obs/watchdog.hpp.
  obs::WatchdogOptions watchdog;
};

struct CpAlsResult {
  KruskalTensor model;
  std::vector<real_t> fits;  ///< fit after each iteration
  int iterations = 0;
  bool converged = false;
  std::string engine_name;

  // Per-phase wall-clock dissection (seconds over all iterations).
  double mttkrp_seconds = 0;
  double dense_seconds = 0;  ///< Gram/Hadamard/solve/normalize
  double fit_seconds = 0;
  double total_seconds = 0;
  /// MTTKRP seconds per mode, summed over all iterations (one entry per
  /// tensor mode). Exposes the asymmetric per-mode cost the memoized
  /// engines exploit.
  std::vector<double> mttkrp_mode_seconds;

  // Numerical-recovery telemetry (see CpAlsOptions::max_recoveries and
  // la/cholesky.hpp SolveInfo).
  int recoveries = 0;             ///< factor re-randomizations taken
  int ridge_retries = 0;          ///< escalating-λ Cholesky retries, all solves
  int pseudo_inverse_solves = 0;  ///< solves that fell through to M·H⁺

  /// Engine-side counters for this run only (symbolic/numeric split, flops,
  /// peak workspace scratch) — the delta of the engine's KernelStats. Engine
  /// fallbacks taken under a memory budget appear in
  /// kernel_stats.degradations.
  KernelStats kernel_stats;

  /// Peak auxiliary memory of the engine (index structures + memoized value
  /// matrices, excluding workspace scratch) observed during the run.
  std::size_t engine_peak_memory_bytes = 0;

  // Tuner prediction for the chosen strategy when the engine was
  // model-driven (auto / auto+probe); zeros for fixed engines. The measured
  // counterparts are mttkrp_seconds / iterations and
  // engine_peak_memory_bytes, which makes the paper's model-accuracy
  // experiment reproducible from any ordinary run.
  double predicted_seconds_per_iteration = 0;
  std::size_t predicted_memory_bytes = 0;

  /// How the executed plan was chosen: "model" (analytic ranking),
  /// "history" (measured-best override), or "fixed" (the engine was not
  /// model-driven). Mirrored into the JSONL summary record.
  std::string plan_source;

  /// True when the run stopped at a cooperative-cancellation check (timeout,
  /// watchdog cancel policy, or a caller-set CpAlsOptions::cancel flag). The
  /// factors reflect the last completed update; converged stays false.
  bool cancelled = false;
  /// Watchdog telemetry for this run (meaningful only when
  /// CpAlsOptions::watchdog armed one).
  bool watchdog_fired = false;
  std::string watchdog_dump_path;

  real_t final_fit() const { return fits.empty() ? 0 : fits.back(); }
};

/// Runs CP-ALS with an engine created according to `options.engine_name`
/// (falling back to `options.engine`).
CpAlsResult cp_als(const CooTensor& tensor, const CpAlsOptions& options);

/// Runs CP-ALS with a caller-provided engine (reused across calls — the
/// amortized-symbolic-cost usage pattern). The engine's memoized state is
/// reset at entry.
CpAlsResult cp_als(const CooTensor& tensor, MttkrpEngine& engine,
                   const CpAlsOptions& options);

/// Multi-restart CP-ALS: runs `num_starts` times with distinct
/// initializations derived from options.seed and returns the run with the
/// best final fit. ALS is sensitive to initialization (local minima /
/// swamps); restarts are the standard mitigation, and they reuse one engine
/// so the symbolic preprocessing is paid once.
CpAlsResult cp_als_best_of(const CooTensor& tensor,
                           const CpAlsOptions& options, int num_starts);

}  // namespace mdcp
