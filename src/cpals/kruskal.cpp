#include "cpals/kruskal.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "util/error.hpp"

namespace mdcp {

real_t KruskalTensor::value_at(std::span<const index_t> coords) const {
  MDCP_CHECK(coords.size() == factors.size());
  real_t v = 0;
  for (index_t r = 0; r < rank(); ++r) {
    real_t prod = weights[r];
    for (mode_t m = 0; m < order(); ++m) prod *= factors[m](coords[m], r);
    v += prod;
  }
  return v;
}

real_t KruskalTensor::norm() const {
  // ‖M‖² = Σ_{r,s} λ_r λ_s Π_n ⟨u_r^(n), u_s^(n)⟩ = 1ᵀ (λλᵀ ∘ ∘_n Gram_n) 1.
  const index_t r = rank();
  Matrix acc(r, r, 1);
  for (const auto& f : factors) hadamard_inplace(acc, gram(f));
  real_t s = 0;
  for (index_t i = 0; i < r; ++i)
    for (index_t j = 0; j < r; ++j) s += weights[i] * weights[j] * acc(i, j);
  // Guard round-off: the quadratic form is mathematically nonnegative.
  return std::sqrt(std::max<real_t>(s, 0));
}

void KruskalTensor::validate() const {
  MDCP_CHECK_MSG(!factors.empty(), "Kruskal tensor needs at least one factor");
  for (const auto& f : factors)
    MDCP_CHECK_MSG(f.cols() == rank(), "factor rank mismatch with weights");
}

real_t inner_product(const CooTensor& x, const KruskalTensor& m) {
  MDCP_CHECK(x.order() == m.order());
  real_t s = 0;
  std::vector<index_t> c(x.order());
  for (nnz_t i = 0; i < x.nnz(); ++i) {
    x.coords(i, c);
    s += x.value(i) * m.value_at(c);
  }
  return s;
}

real_t inner_product_from_mttkrp(const KruskalTensor& m,
                                 const Matrix& mttkrp_last, mode_t mode) {
  const auto& u = m.factors[mode];
  MDCP_CHECK(u.rows() == mttkrp_last.rows() && u.cols() == mttkrp_last.cols());
  real_t s = 0;
  for (index_t i = 0; i < u.rows(); ++i) {
    const auto urow = u.row(i);
    const auto mrow = mttkrp_last.row(i);
    for (index_t r = 0; r < u.cols(); ++r)
      s += m.weights[r] * urow[r] * mrow[r];
  }
  return s;
}

real_t fit_from_parts(real_t x_norm, real_t inner, real_t m_norm) {
  const real_t resid_sq =
      std::max<real_t>(x_norm * x_norm - 2 * inner + m_norm * m_norm, 0);
  if (x_norm <= 0) return 0;
  return 1 - std::sqrt(resid_sq) / x_norm;
}

real_t factor_congruence(const KruskalTensor& truth,
                         const KruskalTensor& estimate) {
  MDCP_CHECK(truth.order() == estimate.order());
  MDCP_CHECK(truth.rank() == estimate.rank());
  const index_t rank = truth.rank();
  const mode_t order = truth.order();

  // Per-mode column cosine tables: cos[m](r, s) = |<t_r, e_s>|/(‖t_r‖‖e_s‖).
  std::vector<Matrix> cos(order);
  for (mode_t m = 0; m < order; ++m) {
    const auto& a = truth.factors[m];
    const auto& b = estimate.factors[m];
    MDCP_CHECK(a.rows() == b.rows());
    cos[m].resize(rank, rank, 0);
    std::vector<real_t> an(rank, 0), bn(rank, 0);
    for (index_t i = 0; i < a.rows(); ++i) {
      for (index_t r = 0; r < rank; ++r) {
        an[r] += a(i, r) * a(i, r);
        bn[r] += b(i, r) * b(i, r);
      }
    }
    for (index_t r = 0; r < rank; ++r) {
      for (index_t s = 0; s < rank; ++s) {
        real_t dotp = 0;
        for (index_t i = 0; i < a.rows(); ++i) dotp += a(i, r) * b(i, s);
        const real_t denom = std::sqrt(an[r] * bn[s]);
        cos[m](r, s) = denom > 0 ? std::abs(dotp) / denom : 0;
      }
    }
  }

  // Greedy assignment on the product-of-cosines score.
  std::vector<bool> used(rank, false);
  real_t total = 0;
  for (index_t r = 0; r < rank; ++r) {
    real_t best = -1;
    index_t best_s = 0;
    for (index_t s = 0; s < rank; ++s) {
      if (used[s]) continue;
      real_t score = 1;
      for (mode_t m = 0; m < order; ++m) score *= cos[m](r, s);
      if (score > best) {
        best = score;
        best_s = s;
      }
    }
    used[best_s] = true;
    total += best;
  }
  return total / rank;
}

real_t residual_norm(const CooTensor& x, const KruskalTensor& m) {
  // ‖X−M‖² = ‖X‖² − 2⟨X,M⟩ + ‖M‖², all three pieces exact.
  const real_t xn = x.norm();
  const real_t ip = inner_product(x, m);
  const real_t mn = m.norm();
  return std::sqrt(std::max<real_t>(xn * xn - 2 * ip + mn * mn, 0));
}

}  // namespace mdcp
