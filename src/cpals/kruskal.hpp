// Kruskal tensors: the output format of CP decomposition.
//
// A rank-R Kruskal tensor is λ ∈ R^R plus N factor matrices U^(n) ∈ R^{Iₙ×R};
// it represents Σ_r λ_r · u_r^(1) ∘ ⋯ ∘ u_r^(N). This module also carries the
// standard O(nnz·R + N·R²) fit computation used to monitor ALS convergence
// without ever materializing the dense reconstruction.
#pragma once

#include <span>
#include <vector>

#include "la/matrix.hpp"
#include "tensor/coo_tensor.hpp"
#include "util/types.hpp"

namespace mdcp {

struct KruskalTensor {
  std::vector<real_t> weights;  ///< λ, size R
  std::vector<Matrix> factors;  ///< U^(n), each Iₙ×R

  index_t rank() const noexcept {
    return static_cast<index_t>(weights.size());
  }
  mode_t order() const noexcept { return static_cast<mode_t>(factors.size()); }

  /// Value of the model at one coordinate (O(N·R)).
  real_t value_at(std::span<const index_t> coords) const;

  /// Frobenius norm of the represented tensor, computed from the Gram
  /// matrices in O(N·I·R²) — never materializes the dense tensor.
  real_t norm() const;

  /// Throws mdcp::error on inconsistent ranks/shapes.
  void validate() const;
};

/// ⟨X, M⟩ for sparse X and Kruskal M, evaluated directly over the nonzeros
/// (O(nnz·N·R)). Used by tests; CP-ALS uses the cheaper MTTKRP-based form.
real_t inner_product(const CooTensor& x, const KruskalTensor& m);

/// ⟨X, M⟩ given the final mode's MTTKRP result: Σ_r λ_r Σ_i U(i,r)·M(i,r),
/// where `mttkrp_last` is the MTTKRP of X in `mode` under M's other factors.
real_t inner_product_from_mttkrp(const KruskalTensor& m,
                                 const Matrix& mttkrp_last, mode_t mode);

/// Fit = 1 − ‖X − M‖ / ‖X‖, from precomputed ‖X‖ and ⟨X,M⟩.
real_t fit_from_parts(real_t x_norm, real_t inner, real_t m_norm);

/// Fully evaluates ‖X − M‖ over X's nonzeros *and* M's mass off the nonzeros.
/// Exact and O(nnz·N·R + N·I·R²); used as the test oracle for the fast path.
real_t residual_norm(const CooTensor& x, const KruskalTensor& m);

/// Factor-match score between two Kruskal models of the same shape/rank in
/// [0, 1]: for each component of `truth`, the best-matching unused component
/// of `estimate` is found greedily, scored by the product over modes of the
/// absolute cosine between the factor columns, and the scores are averaged.
/// Handles CP's permutation and sign indeterminacy; 1.0 = exact recovery.
/// The standard "congruence" diagnostic for planted-recovery experiments.
real_t factor_congruence(const KruskalTensor& truth,
                         const KruskalTensor& estimate);

}  // namespace mdcp
