#include "csf/csf_mttkrp.hpp"

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mdcp {

namespace {

// Per-thread traversal state: one length-R accumulator per CSF level,
// carved out of a single workspace slab (acc(l) = slab[l*r, (l+1)*r)).
struct Scratch {
  std::span<real_t> slab;
  index_t r;

  std::span<real_t> acc(mode_t level) const {
    return slab.subspan(static_cast<std::size_t>(level) * r, r);
  }
};

// Accumulates g(fiber f at level l) into s.acc(l):
//   g(leaf entry)  = val · U_leafmode(fid, :)
//   g(inner fiber) = U_levelmode(fid, :) ∘ Σ_children g(child)
void subtree(const CsfTensor& csf, const std::vector<Matrix>& factors,
             mode_t level, nnz_t fiber, index_t r, const Scratch& s) {
  const mode_t leaf = static_cast<mode_t>(csf.order() - 1);
  const auto acc = s.acc(level);
  if (level == leaf) {
    const auto row = factors[csf.mode_order()[leaf]].row(csf.fids(leaf)[fiber]);
    const real_t v = csf.values()[fiber];
    for (index_t k = 0; k < r; ++k) acc[k] = v * row[k];
    return;
  }
  for (index_t k = 0; k < r; ++k) acc[k] = 0;
  const auto ptr = csf.fptr(level);
  for (nnz_t c = ptr[fiber]; c < ptr[fiber + 1]; ++c) {
    subtree(csf, factors, static_cast<mode_t>(level + 1), c, r, s);
    const auto child = s.acc(static_cast<mode_t>(level + 1));
    for (index_t k = 0; k < r; ++k) acc[k] += child[k];
  }
  const auto row = factors[csf.mode_order()[level]].row(csf.fids(level)[fiber]);
  for (index_t k = 0; k < r; ++k) acc[k] *= row[k];
}

}  // namespace

void csf_mttkrp_root(const CsfTensor& csf, const std::vector<Matrix>& factors,
                     Matrix& out, Workspace* ws) {
  MDCP_CHECK_MSG(factors.size() == csf.order(), "one factor per mode required");
  const index_t r = factors[0].cols();
  const mode_t root_mode = csf.mode_order()[0];
  out.resize(csf.shape()[root_mode], r, 0);
  if (ws == nullptr) ws = &default_workspace();

  if (csf.order() == 1) {
    // Degenerate: MTTKRP of a vector is the vector itself.
    for (nnz_t f = 0; f < csf.nnz(); ++f)
      for (index_t k = 0; k < r; ++k) out(csf.fids(0)[f], k) += csf.values()[f];
    return;
  }

  const nnz_t num_roots = csf.num_fibers(0);
  const auto root_ptr = csf.fptr(0);
  const auto root_ids = csf.fids(0);

#pragma omp parallel
  {
    const Scratch s{
        ws->thread_scratch<real_t>(static_cast<std::size_t>(csf.order()) * r),
        r};
#pragma omp for schedule(dynamic, 8)
    for (std::int64_t f = 0; f < static_cast<std::int64_t>(num_roots); ++f) {
      auto orow = out.row(root_ids[static_cast<nnz_t>(f)]);
      for (nnz_t c = root_ptr[static_cast<nnz_t>(f)];
           c < root_ptr[static_cast<nnz_t>(f) + 1]; ++c) {
        subtree(csf, factors, 1, c, r, s);
        const auto child = s.acc(1);
        for (index_t k = 0; k < r; ++k) orow[k] += child[k];
      }
    }
  }
}

CsfMttkrpEngine::CsfMttkrpEngine(KernelContext ctx) : MttkrpEngine(ctx) {}

CsfMttkrpEngine::CsfMttkrpEngine(const CooTensor& tensor, KernelContext ctx)
    : MttkrpEngine(ctx) {
  prepare(tensor);
}

void CsfMttkrpEngine::do_prepare(index_t rank) {
  const CooTensor& t = tensor();
  csfs_.clear();
  csfs_.reserve(t.order());
  for (mode_t m = 0; m < t.order(); ++m) {
    csfs_.push_back(std::make_unique<CsfTensor>(
        t, CsfTensor::default_order(t, m)));
  }
  if (rank > 0)
    workspace().reserve(effective_threads(),
                        static_cast<std::size_t>(t.order()) * rank *
                            sizeof(real_t));
}

void CsfMttkrpEngine::do_compute(mode_t mode,
                                 const std::vector<Matrix>& factors,
                                 Matrix& out) {
  MDCP_CHECK(mode < csfs_.size());
  csf_mttkrp_root(*csfs_[mode], factors, out, ctx_.workspace);
  count_flops(static_cast<std::uint64_t>(csfs_[mode]->nnz()) *
              factors[0].cols() * csfs_[mode]->order());
}

std::size_t CsfMttkrpEngine::memory_bytes() const {
  std::size_t b = 0;
  for (const auto& c : csfs_) b += c->memory_bytes();
  return b;
}

}  // namespace mdcp
