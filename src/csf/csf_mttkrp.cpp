#include "csf/csf_mttkrp.hpp"

#include <algorithm>

#include "mttkrp/microkernel.hpp"
#include "sched/reduce.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mdcp {

namespace {

// Per-thread traversal state: one length-R accumulator per CSF level,
// carved out of a single workspace slab at the padded stride, so every
// acc(l) honors the microkernel's 64-byte alignment contract.
struct Scratch {
  std::span<real_t> slab;
  mk::Kernel mk;

  static std::size_t reals(mode_t order, index_t r) {
    return static_cast<std::size_t>(order) * mk::padded_rank(r);
  }
  real_t* acc(mode_t level) const {
    return mk::assume_aligned(
        slab.data() + static_cast<std::size_t>(level) * mk.padded());
  }
};

// Accumulates g(fiber f at level l) into s.acc(l):
//   g(leaf entry)  = val · U_leafmode(fid, :)
//   g(inner fiber) = U_levelmode(fid, :) ∘ Σ_children g(child)
void subtree(const CsfTensor& csf, const std::vector<Matrix>& factors,
             mode_t level, nnz_t fiber, const Scratch& s) {
  const mode_t leaf = static_cast<mode_t>(csf.order() - 1);
  real_t* acc = s.acc(level);
  if (level == leaf) {
    const auto row = factors[csf.mode_order()[leaf]].row(csf.fids(leaf)[fiber]);
    s.mk.set_scale(acc, row.data(), csf.values()[fiber]);
    return;
  }
  s.mk.fill(acc, 0);
  const auto ptr = csf.fptr(level);
  for (nnz_t c = ptr[fiber]; c < ptr[fiber + 1]; ++c) {
    subtree(csf, factors, static_cast<mode_t>(level + 1), c, s);
    s.mk.accum(acc, s.acc(static_cast<mode_t>(level + 1)));
  }
  const auto row = factors[csf.mode_order()[level]].row(csf.fids(level)[fiber]);
  s.mk.hadamard(acc, row.data());
}

// Maps level-`from` fiber boundaries to leaf (nonzero) positions by
// composing the fptr levels: boundary b at level l becomes fptr(l)[b] at
// level l+1. Turns a boundary list into a subtree-nnz prefix.
void compose_to_leaves(const CsfTensor& csf, mode_t from,
                       std::vector<nnz_t>& bounds) {
  for (mode_t l = from; l + 1 < csf.order(); ++l) {
    const auto ptr = csf.fptr(l);
    for (auto& b : bounds) b = ptr[b];
  }
}

}  // namespace

void csf_mttkrp_root(const CsfTensor& csf, const std::vector<Matrix>& factors,
                     Matrix& out, Workspace* ws) {
  MDCP_CHECK_MSG(factors.size() == csf.order(), "one factor per mode required");
  const index_t r = factors[0].cols();
  const mode_t root_mode = csf.mode_order()[0];
  out.resize(csf.shape()[root_mode], r, 0);
  if (ws == nullptr) ws = &default_workspace();

  const mk::Kernel mk(r);
  if (csf.order() == 1) {
    // Degenerate: MTTKRP of a vector is the vector itself (the nonzero value
    // broadcast over all R columns).
    for (nnz_t f = 0; f < csf.nnz(); ++f)
      mk.add_scalar(out.row(csf.fids(0)[f]).data(), csf.values()[f]);
    return;
  }

  const nnz_t num_roots = csf.num_fibers(0);
  const auto root_ptr = csf.fptr(0);
  const auto root_ids = csf.fids(0);

  // Serial scratch acquisition: growth must not throw inside the region.
  ws->reserve(num_threads(), Scratch::reals(csf.order(), r) * sizeof(real_t));
#pragma omp parallel
  {
    const Scratch s{ws->thread_scratch<real_t>(Scratch::reals(csf.order(), r)),
                    mk};
#pragma omp for schedule(dynamic, 8)
    for (std::int64_t f = 0; f < static_cast<std::int64_t>(num_roots); ++f) {
      auto orow = out.row(root_ids[static_cast<nnz_t>(f)]);
      for (nnz_t c = root_ptr[static_cast<nnz_t>(f)];
           c < root_ptr[static_cast<nnz_t>(f) + 1]; ++c) {
        subtree(csf, factors, 1, c, s);
        mk.accum(orow.data(), s.acc(1));
      }
    }
  }
}

CsfMttkrpEngine::CsfMttkrpEngine(KernelContext ctx) : MttkrpEngine(ctx) {}

CsfMttkrpEngine::CsfMttkrpEngine(const CooTensor& tensor, KernelContext ctx)
    : MttkrpEngine(ctx) {
  prepare(tensor);
}

void CsfMttkrpEngine::do_prepare(index_t rank) {
  const CooTensor& t = tensor();
  csfs_.clear();
  csfs_.reserve(t.order());
  for (mode_t m = 0; m < t.order(); ++m) {
    csfs_.push_back(std::make_unique<CsfTensor>(
        t, CsfTensor::default_order(t, m)));
  }
  // Tile weights per mode: subtree nnz of every root fiber (prefix form)
  // and of every level-1 fiber (the privatized schedule's split unit).
  sched_.assign(t.order(), {});
  for (mode_t m = 0; m < t.order() && t.order() >= 2; ++m) {
    const CsfTensor& csf = *csfs_[m];
    SchedInfo& si = sched_[m];
    const nnz_t roots = csf.num_fibers(0);
    si.root_nnz.resize(roots + 1);
    for (nnz_t f = 0; f <= roots; ++f) si.root_nnz[f] = f;
    compose_to_leaves(csf, 0, si.root_nnz);
    for (nnz_t f = 0; f < roots; ++f)
      si.max_root =
          std::max(si.max_root, si.root_nnz[f + 1] - si.root_nnz[f]);
    const nnz_t lvl1 = csf.num_fibers(1);
    std::vector<nnz_t> b(lvl1 + 1);
    for (nnz_t f = 0; f <= lvl1; ++f) b[f] = f;
    compose_to_leaves(csf, 1, b);
    si.lvl1_nnz.resize(lvl1);
    for (nnz_t f = 0; f < lvl1; ++f) si.lvl1_nnz[f] = b[f + 1] - b[f];
  }
  mk_ = mk::Kernel(rank);
  if (rank > 0)
    workspace().reserve(effective_threads(),
                        Scratch::reals(t.order(), rank) * sizeof(real_t));
}

void CsfMttkrpEngine::do_compute(mode_t mode,
                                 const std::vector<Matrix>& factors,
                                 Matrix& out) {
  MDCP_CHECK(mode < csfs_.size());
  const CsfTensor& csf = *csfs_[mode];
  const index_t r = factors[0].cols();

  if (csf.order() == 1) {
    // Degenerate serial path; nothing to schedule.
    csf_mttkrp_root(csf, factors, out, ctx_.workspace);
    record_schedule({sched::Schedule::kOwner, 1, 0.0, 0, "degenerate-order1"});
    record_tile(mk::select_tile(r));
    count_flops(static_cast<std::uint64_t>(csf.nnz()) * r);
    return;
  }

  MDCP_CHECK_MSG(factors.size() == csf.order(), "one factor per mode required");
  const mode_t root_mode = csf.mode_order()[0];
  out.resize(csf.shape()[root_mode], r, 0);
  Workspace& ws = workspace();
  SchedInfo& si = sched_[mode];
  const nnz_t roots = csf.num_fibers(0);
  const auto root_ptr = csf.fptr(0);
  const auto root_ids = csf.fids(0);

  const sched::WorkShape shape{.total = csf.nnz(),
                               .max_unit = si.max_root,
                               .units = roots,
                               .out_rows = csf.shape()[root_mode],
                               .rank = r,
                               .shared_writes = true};
  const sched::Decision d =
      sched::choose_schedule(shape, effective_threads(), schedule_mode());
  record_schedule(d);
  if (mk_.rank() != r) mk_ = mk::Kernel(r);
  record_tile(mk_.tile());

  // Accumulates level-1 children [root_ptr[f]+begin, root_ptr[f]+end) of
  // root fiber f into `dst` row root_ids[f].
  const auto accumulate = [&](nnz_t f, nnz_t begin, nnz_t end,
                              const Scratch& s, real_t* dst) {
    real_t* drow = dst + static_cast<nnz_t>(root_ids[f]) * r;
    for (nnz_t c = root_ptr[f] + begin; c < root_ptr[f] + end; ++c) {
      subtree(csf, factors, 1, c, s);
      s.mk.accum(drow, s.acc(1));
    }
  };
  const auto root_children = [&](nnz_t f) {
    return root_ptr[f + 1] - root_ptr[f];
  };
  const std::size_t acc_elems = Scratch::reals(csf.order(), r);

  if (d.schedule == sched::Schedule::kOwner) {
    const sched::TilePlan& tp = sched::cached_tiles(
        si.owner, d.tiles,
        [&](int n) { return sched::tile_groups(si.root_nnz, n); });
    // Serial scratch acquisition: growth must not throw inside the region.
    ws.reserve(effective_threads(), acc_elems * sizeof(real_t));
#pragma omp parallel
    {
      const Scratch s{ws.thread_scratch<real_t>(acc_elems), mk_};
#pragma omp for schedule(dynamic, 1)
      for (int tile = 0; tile < tp.tiles(); ++tile) {
        sched::for_each_group_range(
            tp, tile, root_children, [&](nnz_t f, nnz_t begin, nnz_t end) {
              accumulate(f, begin, end, s, out.data());
            });
      }
    }
  } else {
    const sched::TilePlan& tp = sched::cached_tiles(
        si.split, d.tiles, [&](int n) {
          return sched::tile_items_split(si.lvl1_nnz, root_ptr, n);
        });
    const nnz_t out_elems = static_cast<nnz_t>(csf.shape()[root_mode]) * r;
    ws.reserve(effective_threads(), (out_elems + acc_elems) * sizeof(real_t));
    sched::PartialSet parts;
#pragma omp parallel
    {
      const int team = team_size();
      const int tid = thread_id();
      // Traversal accumulators first (padded strides) so every acc(l) and
      // the partial slab behind them stay 64-byte aligned.
      const auto slab = ws.thread_scratch<real_t>(acc_elems + out_elems);
      const Scratch s{slab.first(acc_elems), mk_};
      real_t* partial = slab.data() + acc_elems;
      std::fill(partial, partial + out_elems, real_t{0});
      parts.publish(tid, partial);
      for (int tile = tid; tile < tp.tiles(); tile += team) {
        sched::for_each_group_range(
            tp, tile, root_children, [&](nnz_t f, nnz_t begin, nnz_t end) {
              accumulate(f, begin, end, s, partial);
            });
      }
#pragma omp barrier
      parts.combine_into(out.data(), team, chunk_range(out_elems, team, tid));
    }
    count_flops(sched::reduction_flops(d.tiles, csf.shape()[root_mode], r));
  }
  count_flops(static_cast<std::uint64_t>(csf.nnz()) * r * csf.order());
}

std::size_t CsfMttkrpEngine::memory_bytes() const {
  std::size_t b = 0;
  for (const auto& c : csfs_) b += c->memory_bytes();
  return b;
}

}  // namespace mdcp
