// SPLATT-style MTTKRP on CSF storage.
//
// `csf_mttkrp_root` computes the MTTKRP for the CSF's *root* mode with a
// single bottom-up traversal: each fiber at level l contributes the Hadamard
// product of its subtree's accumulated value with the level-l factor row,
// applied once per fiber instead of once per nonzero (SPLATT's factoring).
//
// `CsfMttkrpEngine` keeps one CSF per mode (SPLATT's ALLMODE configuration)
// so every MTTKRP is a root-mode traversal. This is the state-of-the-art
// baseline the memoized dimension-tree engines are evaluated against: it
// factors work *within* one mode's traversal but recomputes everything
// *across* modes — N full traversals per CP-ALS iteration. Per-thread
// traversal accumulators (one length-R vector per CSF level) come from the
// workspace, hoisted out of the per-root recursion and reused across
// compute() calls.
// Parallelization: the engine runs the schedule picked by
// sched::choose_schedule per mode — owner-computes tiles of whole root
// fibers weighted by subtree nnz (race-free, bitwise deterministic across
// thread counts) or, when one hub root fiber dominates, tiles cutting
// between its level-1 child subtrees with per-thread partial outputs
// combined in fixed thread order.
#pragma once

#include <memory>

#include "csf/csf_tensor.hpp"
#include "mttkrp/engine.hpp"
#include "mttkrp/microkernel.hpp"
#include "sched/partition.hpp"

namespace mdcp {

/// out = MTTKRP in mode csf.mode_order()[0]. out is resized to
/// (dim(root mode) × R). Parallel over root fibers; deterministic. Scratch
/// comes from `ws` (null = the default workspace).
void csf_mttkrp_root(const CsfTensor& csf, const std::vector<Matrix>& factors,
                     Matrix& out, Workspace* ws = nullptr);

class CsfMttkrpEngine final : public MttkrpEngine {
 public:
  explicit CsfMttkrpEngine(KernelContext ctx = {});
  /// Convenience: construct and prepare (builds one CSF rooted at every
  /// mode) in one step.
  explicit CsfMttkrpEngine(const CooTensor& tensor, KernelContext ctx = {});

  std::string name() const override { return "csf"; }
  std::size_t memory_bytes() const override;

  const CsfTensor& csf_for_mode(mode_t mode) const { return *csfs_[mode]; }

 protected:
  void do_prepare(index_t rank) override;
  void do_compute(mode_t mode, const std::vector<Matrix>& factors,
                  Matrix& out) override;

 private:
  struct SchedInfo {
    std::vector<nnz_t> root_nnz;  ///< subtree-nnz prefix per root fiber
    std::vector<nnz_t> lvl1_nnz;  ///< subtree nnz per level-1 fiber
    nnz_t max_root = 0;           ///< heaviest root subtree (skew input)
    sched::CachedPlan owner;      ///< whole-root-fiber tiles
    sched::CachedPlan split;      ///< level-1-subtree-granular tiles
  };

  std::vector<std::unique_ptr<CsfTensor>> csfs_;
  std::vector<SchedInfo> sched_;  // one per mode
  mk::Kernel mk_;                 // rank-blocked dispatcher, set per prepare()
};

}  // namespace mdcp
