#include "csf/csf_one_mttkrp.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mdcp {

namespace {

// Per-thread traversal scratch: one suffix accumulator and one prefix
// buffer per CSF level (avoids per-fiber allocation in the hot recursion).
struct Scratch {
  std::vector<std::vector<real_t>> acc;
  std::vector<std::vector<real_t>> pre;
  Scratch(mode_t order, index_t r)
      : acc(order, std::vector<real_t>(r, 0)),
        pre(order + 1, std::vector<real_t>(r, 1)) {}
};

// Bottom-up subtree sum below `fiber` at `level` (strictly below the output
// level): returns in s.acc[level] the value
//   Σ_{paths below} val · ∘_{k>level_out, k<=N-1, k passed} U rows
// including this fiber's own row. Identical to the root-kernel recursion.
void suffix_below(const CsfTensor& csf, const std::vector<Matrix>& factors,
                  mode_t level, nnz_t fiber, index_t r, Scratch& s) {
  const auto leaf = static_cast<mode_t>(csf.order() - 1);
  auto& acc = s.acc[level];
  if (level == leaf) {
    const auto row = factors[csf.mode_order()[leaf]].row(csf.fids(leaf)[fiber]);
    const real_t v = csf.values()[fiber];
    for (index_t k = 0; k < r; ++k) acc[k] = v * row[k];
    return;
  }
  for (index_t k = 0; k < r; ++k) acc[k] = 0;
  const auto ptr = csf.fptr(level);
  for (nnz_t c = ptr[fiber]; c < ptr[fiber + 1]; ++c) {
    suffix_below(csf, factors, static_cast<mode_t>(level + 1), c, r, s);
    const auto& child = s.acc[level + 1];
    for (index_t k = 0; k < r; ++k) acc[k] += child[k];
  }
  const auto row = factors[csf.mode_order()[level]].row(csf.fids(level)[fiber]);
  for (index_t k = 0; k < r; ++k) acc[k] *= row[k];
}

// Top-down walk from `level` to the output level `out_level`, carrying the
// running prefix product in `prefix`; at out_level, writes
// prefix ∘ suffix(fiber) into fiber_buf(fiber, :).
void descend(const CsfTensor& csf, const std::vector<Matrix>& factors,
             mode_t level, nnz_t fiber, mode_t out_level, index_t r,
             Scratch& s, Matrix& fiber_buf) {
  const auto& prefix = s.pre[level];
  if (level == out_level) {
    auto out = fiber_buf.row(static_cast<index_t>(fiber));
    if (out_level == static_cast<mode_t>(csf.order() - 1)) {
      // Leaf output: suffix is just the nonzero value.
      const real_t v = csf.values()[fiber];
      for (index_t k = 0; k < r; ++k) out[k] = prefix[k] * v;
    } else {
      // Suffix over the subtree below, *excluding* this fiber's own factor
      // row (the output mode's factor never participates in its MTTKRP).
      for (index_t k = 0; k < r; ++k) out[k] = 0;
      const auto ptr = csf.fptr(out_level);
      for (nnz_t c = ptr[fiber]; c < ptr[fiber + 1]; ++c) {
        suffix_below(csf, factors, static_cast<mode_t>(out_level + 1), c, r, s);
        const auto& child = s.acc[out_level + 1];
        for (index_t k = 0; k < r; ++k) out[k] += child[k];
      }
      for (index_t k = 0; k < r; ++k) out[k] *= prefix[k];
    }
    return;
  }
  // Multiply this level's factor row into the next level's prefix buffer.
  const auto row = factors[csf.mode_order()[level]].row(csf.fids(level)[fiber]);
  auto& next = s.pre[level + 1];
  for (index_t k = 0; k < r; ++k) next[k] = prefix[k] * row[k];
  const auto ptr = csf.fptr(level);
  for (nnz_t c = ptr[fiber]; c < ptr[fiber + 1]; ++c)
    descend(csf, factors, static_cast<mode_t>(level + 1), c, out_level, r, s,
            fiber_buf);
}

}  // namespace

CsfOneMttkrpEngine::CsfOneMttkrpEngine(const CooTensor& tensor,
                                       std::vector<mode_t> mode_order) {
  if (mode_order.empty()) {
    mode_order.resize(tensor.order());
    std::iota(mode_order.begin(), mode_order.end(), mode_t{0});
    std::stable_sort(mode_order.begin(), mode_order.end(),
                     [&](mode_t a, mode_t b) {
                       return tensor.dim(a) < tensor.dim(b);
                     });
  }
  csf_ = std::make_unique<CsfTensor>(tensor, std::move(mode_order));

  level_of_mode_.assign(tensor.order(), 0);
  for (mode_t l = 0; l < csf_->order(); ++l)
    level_of_mode_[csf_->mode_order()[l]] = l;

  // Scatter plans: group each level's fibers by their fid so phase 2 can be
  // parallel over output rows without write conflicts.
  plans_.resize(csf_->order());
  for (mode_t l = 0; l < csf_->order(); ++l) {
    ScatterPlan& plan = plans_[l];
    const auto fids = csf_->fids(l);
    plan.perm.resize(fids.size());
    std::iota(plan.perm.begin(), plan.perm.end(), nnz_t{0});
    std::stable_sort(plan.perm.begin(), plan.perm.end(),
                     [&](nnz_t a, nnz_t b) { return fids[a] < fids[b]; });
    for (nnz_t i = 0; i < plan.perm.size(); ++i) {
      const index_t row = fids[plan.perm[i]];
      if (plan.rows.empty() || plan.rows.back() != row) {
        plan.rows.push_back(row);
        plan.row_start.push_back(i);
      }
    }
    plan.row_start.push_back(plan.perm.size());
  }
}

void CsfOneMttkrpEngine::compute(mode_t mode,
                                 const std::vector<Matrix>& factors,
                                 Matrix& out) {
  MDCP_CHECK(mode < level_of_mode_.size());
  const index_t r = factors[0].cols();
  MDCP_CHECK_MSG(factors.size() == csf_->order(), "one factor per mode");
  const auto out_level = level_of_mode_[mode];
  const CsfTensor& csf = *csf_;
  out.resize(csf.shape()[mode], r, 0);

  // Phase 1: per-fiber contributions (parallel over root fibers; each
  // out_level fiber belongs to exactly one root subtree — race-free).
  fiber_buf_.resize(static_cast<index_t>(csf.num_fibers(out_level)), r, 0);
  const nnz_t num_roots = csf.num_fibers(0);
#pragma omp parallel
  {
    Scratch s(csf.order(), r);
#pragma omp for schedule(dynamic, 8)
    for (std::int64_t f = 0; f < static_cast<std::int64_t>(num_roots); ++f) {
      std::fill(s.pre[0].begin(), s.pre[0].end(), real_t{1});
      descend(csf, factors, 0, static_cast<nnz_t>(f), out_level, r, s,
              fiber_buf_);
    }
  }

  // Phase 2: deterministic scatter, parallel over output rows.
  const ScatterPlan& plan = plans_[out_level];
#pragma omp parallel for schedule(dynamic, 64)
  for (std::int64_t g = 0; g < static_cast<std::int64_t>(plan.rows.size());
       ++g) {
    auto orow = out.row(plan.rows[static_cast<std::size_t>(g)]);
    for (nnz_t p = plan.row_start[static_cast<std::size_t>(g)];
         p < plan.row_start[static_cast<std::size_t>(g) + 1]; ++p) {
      const auto frow = fiber_buf_.row(static_cast<index_t>(plan.perm[p]));
      for (index_t k = 0; k < r; ++k) orow[k] += frow[k];
    }
  }
}

std::size_t CsfOneMttkrpEngine::memory_bytes() const {
  std::size_t b = csf_->memory_bytes();
  for (const auto& p : plans_) {
    b += p.perm.size() * sizeof(nnz_t);
    b += p.rows.size() * sizeof(index_t);
    b += p.row_start.size() * sizeof(nnz_t);
  }
  b += fiber_buf_.size() * sizeof(real_t);
  return b;
}

}  // namespace mdcp
