#include "csf/csf_one_mttkrp.hpp"

#include <algorithm>
#include <numeric>

#include "sched/reduce.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mdcp {

namespace {

// Per-thread traversal scratch carved out of one workspace slab: one suffix
// accumulator per CSF level (acc) and one prefix buffer per level+1 (pre).
// Layout: [acc(0..order) | pre(0..order+1)], each at the padded-rank stride
// so every buffer honors the microkernel's 64-byte alignment contract.
struct Scratch {
  std::span<real_t> slab;
  mode_t order;
  mk::Kernel mk;

  static std::size_t reals(mode_t order, index_t r) {
    return (static_cast<std::size_t>(order) * 2 + 1) * mk::padded_rank(r);
  }
  real_t* acc(mode_t level) const {
    return mk::assume_aligned(
        slab.data() + static_cast<std::size_t>(level) * mk.padded());
  }
  real_t* pre(mode_t level) const {
    return mk::assume_aligned(slab.data() +
                              (static_cast<std::size_t>(order) +
                               static_cast<std::size_t>(level)) * mk.padded());
  }
};

// Bottom-up subtree sum below `fiber` at `level` (strictly below the output
// level): returns in s.acc(level) the value
//   Σ_{paths below} val · ∘_{k>level_out, k<=N-1, k passed} U rows
// including this fiber's own row. Identical to the root-kernel recursion.
void suffix_below(const CsfTensor& csf, const std::vector<Matrix>& factors,
                  mode_t level, nnz_t fiber, const Scratch& s) {
  const auto leaf = static_cast<mode_t>(csf.order() - 1);
  real_t* acc = s.acc(level);
  if (level == leaf) {
    const auto row = factors[csf.mode_order()[leaf]].row(csf.fids(leaf)[fiber]);
    s.mk.set_scale(acc, row.data(), csf.values()[fiber]);
    return;
  }
  s.mk.fill(acc, 0);
  const auto ptr = csf.fptr(level);
  for (nnz_t c = ptr[fiber]; c < ptr[fiber + 1]; ++c) {
    suffix_below(csf, factors, static_cast<mode_t>(level + 1), c, s);
    s.mk.accum(acc, s.acc(static_cast<mode_t>(level + 1)));
  }
  const auto row = factors[csf.mode_order()[level]].row(csf.fids(level)[fiber]);
  s.mk.hadamard(acc, row.data());
}

// Top-down walk from `level` to the output level `out_level`, carrying the
// running prefix product in s.pre(level); at out_level, writes
// prefix ∘ suffix(fiber) into fiber_buf(fiber, :).
void descend(const CsfTensor& csf, const std::vector<Matrix>& factors,
             mode_t level, nnz_t fiber, mode_t out_level, const Scratch& s,
             Matrix& fiber_buf) {
  const real_t* prefix = s.pre(level);
  if (level == out_level) {
    real_t* out = fiber_buf.row(static_cast<index_t>(fiber)).data();
    if (out_level == static_cast<mode_t>(csf.order() - 1)) {
      // Leaf output: suffix is just the nonzero value.
      s.mk.set_scale(out, prefix, csf.values()[fiber]);
    } else {
      // Suffix over the subtree below, *excluding* this fiber's own factor
      // row (the output mode's factor never participates in its MTTKRP).
      s.mk.fill(out, 0);
      const auto ptr = csf.fptr(out_level);
      for (nnz_t c = ptr[fiber]; c < ptr[fiber + 1]; ++c) {
        suffix_below(csf, factors, static_cast<mode_t>(out_level + 1), c, s);
        s.mk.accum(out, s.acc(static_cast<mode_t>(out_level + 1)));
      }
      s.mk.hadamard(out, prefix);
    }
    return;
  }
  // Multiply this level's factor row into the next level's prefix buffer.
  const auto row = factors[csf.mode_order()[level]].row(csf.fids(level)[fiber]);
  s.mk.mul(s.pre(static_cast<mode_t>(level + 1)), prefix, row.data());
  const auto ptr = csf.fptr(level);
  for (nnz_t c = ptr[fiber]; c < ptr[fiber + 1]; ++c)
    descend(csf, factors, static_cast<mode_t>(level + 1), c, out_level, s,
            fiber_buf);
}

}  // namespace

CsfOneMttkrpEngine::CsfOneMttkrpEngine(std::vector<mode_t> mode_order,
                                       KernelContext ctx)
    : MttkrpEngine(ctx), requested_order_(std::move(mode_order)) {}

CsfOneMttkrpEngine::CsfOneMttkrpEngine(const CooTensor& tensor,
                                       std::vector<mode_t> mode_order,
                                       KernelContext ctx)
    : MttkrpEngine(ctx), requested_order_(std::move(mode_order)) {
  prepare(tensor);
}

void CsfOneMttkrpEngine::do_prepare(index_t rank) {
  const CooTensor& tensor = this->tensor();
  std::vector<mode_t> mode_order = requested_order_;
  if (mode_order.empty()) {
    mode_order.resize(tensor.order());
    std::iota(mode_order.begin(), mode_order.end(), mode_t{0});
    std::stable_sort(mode_order.begin(), mode_order.end(),
                     [&](mode_t a, mode_t b) {
                       return tensor.dim(a) < tensor.dim(b);
                     });
  }
  csf_ = std::make_unique<CsfTensor>(tensor, std::move(mode_order));

  level_of_mode_.assign(tensor.order(), 0);
  for (mode_t l = 0; l < csf_->order(); ++l)
    level_of_mode_[csf_->mode_order()[l]] = l;

  // Scatter plans: group each level's fibers by their fid so phase 2 can be
  // parallel over output rows without write conflicts.
  plans_.assign(csf_->order(), {});
  for (mode_t l = 0; l < csf_->order(); ++l) {
    ScatterPlan& plan = plans_[l];
    const auto fids = csf_->fids(l);
    plan.perm.resize(fids.size());
    std::iota(plan.perm.begin(), plan.perm.end(), nnz_t{0});
    std::stable_sort(plan.perm.begin(), plan.perm.end(),
                     [&](nnz_t a, nnz_t b) { return fids[a] < fids[b]; });
    for (nnz_t i = 0; i < plan.perm.size(); ++i) {
      const index_t row = fids[plan.perm[i]];
      if (plan.rows.empty() || plan.rows.back() != row) {
        plan.rows.push_back(row);
        plan.row_start.push_back(i);
      }
    }
    plan.row_start.push_back(plan.perm.size());
    for (std::size_t g = 0; g + 1 < plan.row_start.size(); ++g)
      plan.max_group =
          std::max(plan.max_group, plan.row_start[g + 1] - plan.row_start[g]);
  }

  // Phase-1 tile weights: subtree nnz per root fiber, via boundary
  // composition through the fptr levels.
  const nnz_t roots = csf_->num_fibers(0);
  root_nnz_.resize(roots + 1);
  for (nnz_t f = 0; f <= roots; ++f) root_nnz_[f] = f;
  for (mode_t l = 0; l + 1 < csf_->order(); ++l) {
    const auto ptr = csf_->fptr(l);
    for (auto& b : root_nnz_) b = ptr[b];
  }
  root_owner_ = {};

  mk_ = mk::Kernel(rank);
  if (rank > 0)
    workspace().reserve(effective_threads(),
                        Scratch::reals(csf_->order(), rank) * sizeof(real_t));
}

void CsfOneMttkrpEngine::do_compute(mode_t mode,
                                    const std::vector<Matrix>& factors,
                                    Matrix& out) {
  MDCP_CHECK(mode < level_of_mode_.size());
  const index_t r = factors[0].cols();
  MDCP_CHECK_MSG(factors.size() == csf_->order(), "one factor per mode");
  const auto out_level = level_of_mode_[mode];
  const CsfTensor& csf = *csf_;
  out.resize(csf.shape()[mode], r, 0);
  Workspace& ws = workspace();

  // Phase 1: per-fiber contributions over nnz-weighted tiles of whole root
  // subtrees (each out_level fiber belongs to exactly one root subtree, so
  // tiles never share a fiber_buf row — no privatized variant needed).
  fiber_buf_.resize(static_cast<index_t>(csf.num_fibers(out_level)), r, 0);
  const nnz_t num_roots = csf.num_fibers(0);
  const sched::WorkShape phase1{.total = csf.nnz(),
                                .max_unit = 0,
                                .units = num_roots,
                                .out_rows = csf.shape()[mode],
                                .rank = r,
                                .shared_writes = false};
  const sched::Decision d1 =
      sched::choose_schedule(phase1, effective_threads(), schedule_mode());
  record_schedule(d1);
  if (mk_.rank() != r) mk_ = mk::Kernel(r);
  record_tile(mk_.tile());
  const sched::TilePlan& tp1 = sched::cached_tiles(
      root_owner_, d1.tiles,
      [&](int n) { return sched::tile_groups(root_nnz_, n); });
  // Serial scratch acquisition: growth must not throw inside the region.
  ws.reserve(effective_threads(),
             Scratch::reals(csf.order(), r) * sizeof(real_t));
#pragma omp parallel
  {
    const Scratch s{ws.thread_scratch<real_t>(Scratch::reals(csf.order(), r)),
                    csf.order(), mk_};
#pragma omp for schedule(dynamic, 1)
    for (int tile = 0; tile < tp1.tiles(); ++tile) {
      sched::for_each_group_range(
          tp1, tile, [](nnz_t) { return nnz_t{1}; },
          [&](nnz_t f, nnz_t, nnz_t) {
            s.mk.fill(s.pre(0), 1);
            descend(csf, factors, 0, f, out_level, s, fiber_buf_);
          });
    }
  }

  // Phase 2: fiber→row scatter. Owner-computes over whole row groups, or —
  // when one hub row collects most fibers — fiber-granular tiles with
  // per-thread partial outputs combined in fixed thread order.
  ScatterPlan& plan = plans_[out_level];
  const sched::WorkShape phase2{.total = csf.num_fibers(out_level),
                                .max_unit = plan.max_group,
                                .units = plan.rows.size(),
                                .out_rows = csf.shape()[mode],
                                .rank = r,
                                .shared_writes = true};
  const sched::Decision d2 =
      sched::choose_schedule(phase2, effective_threads(), schedule_mode());
  record_schedule(d2);

  // Adds fibers perm[row_start[g]+begin, row_start[g]+end) of row group g
  // into `dst` row rows[g].
  const auto scatter = [&](nnz_t g, nnz_t begin, nnz_t end, real_t* dst) {
    real_t* drow = dst + static_cast<nnz_t>(plan.rows[g]) * r;
    for (nnz_t p = plan.row_start[g] + begin; p < plan.row_start[g] + end;
         ++p) {
      mk_.accum(drow,
                fiber_buf_.row(static_cast<index_t>(plan.perm[p])).data());
    }
  };
  const auto group_size = [&](nnz_t g) {
    return plan.row_start[g + 1] - plan.row_start[g];
  };

  if (d2.schedule == sched::Schedule::kOwner) {
    const sched::TilePlan& tp2 = sched::cached_tiles(
        plan.owner, d2.tiles,
        [&](int n) { return sched::tile_groups(plan.row_start, n); });
#pragma omp parallel for schedule(dynamic, 1)
    for (int tile = 0; tile < tp2.tiles(); ++tile) {
      sched::for_each_group_range(tp2, tile, group_size,
                                  [&](nnz_t g, nnz_t begin, nnz_t end) {
                                    scatter(g, begin, end, out.data());
                                  });
    }
  } else {
    const sched::TilePlan& tp2 = sched::cached_tiles(
        plan.split, d2.tiles,
        [&](int n) { return sched::tile_groups_split(plan.row_start, n); });
    const nnz_t out_elems = static_cast<nnz_t>(csf.shape()[mode]) * r;
    ws.reserve(effective_threads(), out_elems * sizeof(real_t));
    sched::PartialSet parts;
#pragma omp parallel
    {
      const int team = team_size();
      const int tid = thread_id();
      const auto slab = ws.thread_scratch<real_t>(out_elems);
      real_t* partial = slab.data();
      std::fill(partial, partial + out_elems, real_t{0});
      parts.publish(tid, partial);
      for (int tile = tid; tile < tp2.tiles(); tile += team) {
        sched::for_each_group_range(tp2, tile, group_size,
                                    [&](nnz_t g, nnz_t begin, nnz_t end) {
                                      scatter(g, begin, end, partial);
                                    });
      }
#pragma omp barrier
      parts.combine_into(out.data(), team, chunk_range(out_elems, team, tid));
    }
    count_flops(sched::reduction_flops(d2.tiles, csf.shape()[mode], r));
  }
  count_flops(static_cast<std::uint64_t>(csf.nnz()) * r * csf.order());
}

std::size_t CsfOneMttkrpEngine::memory_bytes() const {
  std::size_t b = csf_ ? csf_->memory_bytes() : 0;
  for (const auto& p : plans_) {
    b += p.perm.size() * sizeof(nnz_t);
    b += p.rows.size() * sizeof(index_t);
    b += p.row_start.size() * sizeof(nnz_t);
  }
  b += fiber_buf_.size() * sizeof(real_t);
  return b;
}

}  // namespace mdcp
