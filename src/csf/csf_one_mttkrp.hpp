// MTTKRP for *every* mode from a single CSF — SPLATT's memory-efficient
// configuration (one tree total instead of one per mode).
//
// For an output mode sitting at CSF level ℓ, each level-ℓ fiber f
// contributes  prefix(f) ∘ suffix(f)  to output row fid(f), where
//   prefix(f) = ∘_{k<ℓ} U_{m_k}(ancestor-fid at level k, :)
//   suffix(f) = Σ_{subtree below f} val · ∘_{k>ℓ} U_{m_k}(fid at level k, :)
// (ℓ = 0 degenerates to the root kernel, ℓ = N−1 to the leaf kernel.)
//
// Races on output rows (several fibers can share one fid) are avoided with a
// two-phase plan: phase 1 computes per-fiber contributions in parallel over
// nnz-weighted tiles of whole root subtrees (race-free — each fiber is
// written by exactly one root subtree); phase 2 scatters fibers into rows
// via a precomputed fiber→row grouping, with the schedule picked by
// sched::choose_schedule — owner-computes over whole row groups (bitwise
// deterministic for any thread count) or, when one hub row dominates,
// fiber-granular tiles with per-thread partial outputs combined in fixed
// thread order. Per-thread suffix accumulators, prefix buffers, and any
// partial slab come from the workspace.
#pragma once

#include <memory>
#include <vector>

#include "csf/csf_tensor.hpp"
#include "mttkrp/engine.hpp"
#include "mttkrp/microkernel.hpp"
#include "sched/partition.hpp"

namespace mdcp {

class CsfOneMttkrpEngine final : public MttkrpEngine {
 public:
  /// `mode_order` selects the CSF level order (empty = modes sorted by
  /// increasing dimension, the SPLATT default).
  explicit CsfOneMttkrpEngine(std::vector<mode_t> mode_order = {},
                              KernelContext ctx = {});
  /// Convenience: construct and prepare in one step.
  explicit CsfOneMttkrpEngine(const CooTensor& tensor,
                              std::vector<mode_t> mode_order = {},
                              KernelContext ctx = {});

  std::string name() const override { return "csf1"; }
  std::size_t memory_bytes() const override;

  const CsfTensor& csf() const noexcept { return *csf_; }

 protected:
  void do_prepare(index_t rank) override;
  void do_compute(mode_t mode, const std::vector<Matrix>& factors,
                  Matrix& out) override;

 private:
  struct ScatterPlan {
    // Fibers of one CSF level grouped by their fid: fibers perm[row_start[g]
    // .. row_start[g+1]) all carry index rows[g].
    std::vector<nnz_t> perm;
    std::vector<index_t> rows;
    std::vector<nnz_t> row_start;
    nnz_t max_group = 0;        ///< most fibers sharing one row (skew input)
    sched::CachedPlan owner;    ///< whole-row-group tiles
    sched::CachedPlan split;    ///< fiber-granular tiles (privatized)
  };

  std::vector<mode_t> requested_order_;   // prepare() input (may be empty)
  std::unique_ptr<CsfTensor> csf_;
  std::vector<mode_t> level_of_mode_;     // mode -> CSF level
  std::vector<ScatterPlan> plans_;        // one per CSF level
  std::vector<nnz_t> root_nnz_;           // subtree-nnz prefix per root fiber
  sched::CachedPlan root_owner_;          // phase-1 whole-root tiles
  Matrix fiber_buf_;                      // per-fiber contribution scratch
  mk::Kernel mk_;                         // rank-blocked dispatcher
};

}  // namespace mdcp
