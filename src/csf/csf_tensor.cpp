#include "csf/csf_tensor.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/error.hpp"

namespace mdcp {

CsfTensor::CsfTensor(const CooTensor& tensor, std::vector<mode_t> mode_order)
    : order_(tensor.order()),
      mode_order_(std::move(mode_order)),
      shape_(tensor.shape()) {
  MDCP_CHECK_MSG(mode_order_.size() == order_, "mode order arity mismatch");
  {
    auto sorted = mode_order_;
    std::sort(sorted.begin(), sorted.end());
    for (mode_t m = 0; m < order_; ++m)
      MDCP_CHECK_MSG(sorted[m] == m, "mode order must be a permutation");
  }

  const auto perm = tensor.sorted_permutation(mode_order_);
  const nnz_t n = tensor.nnz();
  fids_.resize(order_);
  fptr_.resize(order_ > 0 ? order_ - 1 : 0);
  vals_.resize(n);

  if (n == 0) return;

  // Walk tuples in sorted order; a fiber opens at level l whenever any index
  // at levels <= l differs from the previous tuple.
  for (nnz_t p = 0; p < n; ++p) {
    const nnz_t i = perm[p];
    mode_t first_diff = 0;
    if (p > 0) {
      first_diff = static_cast<mode_t>(order_);
      for (mode_t l = 0; l < order_; ++l) {
        const mode_t m = mode_order_[l];
        if (tensor.index(m, i) != tensor.index(m, perm[p - 1])) {
          first_diff = l;
          break;
        }
      }
      MDCP_CHECK_MSG(first_diff < order_,
                     "duplicate coordinates: tensor must be coalesced");
    }
    for (mode_t l = first_diff; l < order_; ++l) {
      fids_[l].push_back(tensor.index(mode_order_[l], i));
      if (l < order_ - 1) {
        // Opening a fiber at level l finalizes nothing yet; record the
        // running child count lazily via fptr after the loop. We push a
        // placeholder start equal to the current size of level l+1.
        fptr_[l].push_back(fids_[l + 1].size());
      }
    }
    vals_[p] = tensor.value(i);
  }
  // Close the fptr arrays: entry f holds the start of fiber f's children;
  // append the end sentinel.
  for (std::size_t l = 0; l + 1 < order_; ++l) {
    fptr_[l].push_back(fids_[l + 1].size());
  }
}

std::size_t CsfTensor::memory_bytes() const {
  std::size_t b = vals_.size() * sizeof(real_t);
  for (const auto& f : fids_) b += f.size() * sizeof(index_t);
  for (const auto& p : fptr_) b += p.size() * sizeof(nnz_t);
  return b;
}

std::string CsfTensor::summary() const {
  std::ostringstream os;
  os << "csf(order=[";
  for (std::size_t l = 0; l < order_; ++l) {
    if (l) os << ',';
    os << mode_order_[l];
  }
  os << "], fibers=[";
  for (std::size_t l = 0; l < order_; ++l) {
    if (l) os << ',';
    os << fids_[l].size();
  }
  os << "])";
  return os.str();
}

std::vector<mode_t> CsfTensor::default_order(const CooTensor& tensor,
                                             mode_t root) {
  MDCP_CHECK(root < tensor.order());
  std::vector<mode_t> rest;
  for (mode_t m = 0; m < tensor.order(); ++m)
    if (m != root) rest.push_back(m);
  std::stable_sort(rest.begin(), rest.end(), [&](mode_t a, mode_t b) {
    return tensor.dim(a) < tensor.dim(b);
  });
  std::vector<mode_t> order{root};
  order.insert(order.end(), rest.begin(), rest.end());
  return order;
}

}  // namespace mdcp
