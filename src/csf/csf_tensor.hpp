// Compressed Sparse Fiber (CSF) storage for sparse tensors of arbitrary
// order — the data structure underlying SPLATT.
//
// A CSF is the path-compressed trie of the nonzero coordinates under a mode
// ordering (root mode first). Level l stores one entry per distinct
// length-(l+1) coordinate prefix ("fiber"): its index in mode_order[l]
// (`fids`) and, for non-leaf levels, the range of its children (`fptr`,
// CSR-style). Leaf entries align one-to-one with the nonzero values.
//
// The shared prefixes are what let MTTKRP factor the Hadamard-product work:
// a factor row at level l is applied once per fiber instead of once per
// nonzero.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "tensor/coo_tensor.hpp"
#include "util/types.hpp"

namespace mdcp {

class CsfTensor {
 public:
  /// Builds the CSF of `tensor` under `mode_order` (a permutation of
  /// 0..order-1; mode_order[0] is the root). The tensor should be coalesced;
  /// duplicate coordinates would produce duplicate leaves.
  CsfTensor(const CooTensor& tensor, std::vector<mode_t> mode_order);

  mode_t order() const noexcept { return static_cast<mode_t>(order_); }
  const std::vector<mode_t>& mode_order() const noexcept { return mode_order_; }
  const shape_t& shape() const noexcept { return shape_; }

  /// Number of fibers at CSF level l (level order-1 == nnz).
  nnz_t num_fibers(mode_t level) const { return fids_[level].size(); }
  nnz_t nnz() const { return vals_.size(); }

  std::span<const index_t> fids(mode_t level) const {
    return {fids_[level].data(), fids_[level].size()};
  }
  /// Children of fiber f at level l occupy [fptr(l)[f], fptr(l)[f+1]) at
  /// level l+1. Only defined for l < order-1.
  std::span<const nnz_t> fptr(mode_t level) const {
    return {fptr_[level].data(), fptr_[level].size()};
  }
  std::span<const real_t> values() const { return {vals_.data(), vals_.size()}; }

  std::size_t memory_bytes() const;

  std::string summary() const;

  /// Default SPLATT-like ordering rooted at `root`: remaining modes sorted
  /// by increasing dimension (short modes near the root maximize prefix
  /// sharing).
  static std::vector<mode_t> default_order(const CooTensor& tensor,
                                           mode_t root);

 private:
  std::size_t order_ = 0;
  std::vector<mode_t> mode_order_;
  shape_t shape_;
  std::vector<std::vector<index_t>> fids_;  // [level][fiber]
  std::vector<std::vector<nnz_t>> fptr_;    // [level][fiber+1], levels 0..N-2
  std::vector<real_t> vals_;                // aligned with leaf level
};

}  // namespace mdcp
