#include "dtree/dimension_tree.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "dtree/symbolic.hpp"
#include "util/error.hpp"

namespace mdcp {

TreeSpec TreeSpec::flat(std::span<const mode_t> order) {
  TreeSpec root;
  root.modes.assign(order.begin(), order.end());
  for (mode_t m : order) {
    TreeSpec leaf;
    leaf.modes = {m};
    root.children.push_back(std::move(leaf));
  }
  return root;
}

TreeSpec TreeSpec::three_level(std::span<const mode_t> order, mode_t split) {
  MDCP_CHECK_MSG(split >= 1 && split < order.size(),
                 "three_level split must be in [1, order)");
  const auto make_group = [](std::span<const mode_t> modes) {
    if (modes.size() == 1) {
      TreeSpec leaf;
      leaf.modes = {modes[0]};
      return leaf;
    }
    TreeSpec group = flat(modes);
    return group;
  };
  TreeSpec root;
  root.modes.assign(order.begin(), order.end());
  root.children.push_back(make_group(order.subspan(0, split)));
  root.children.push_back(make_group(order.subspan(split)));
  return root;
}

TreeSpec TreeSpec::bdt(std::span<const mode_t> order) {
  MDCP_CHECK(!order.empty());
  TreeSpec node;
  node.modes.assign(order.begin(), order.end());
  if (order.size() == 1) return node;
  const std::size_t half = (order.size() + 1) / 2;
  node.children.push_back(bdt(order.subspan(0, half)));
  node.children.push_back(bdt(order.subspan(half)));
  return node;
}

namespace {

void validate_rec(const TreeSpec& spec) {
  if (spec.is_leaf()) {
    MDCP_CHECK_MSG(spec.modes.size() == 1,
                   "leaf spec must hold exactly one mode");
    return;
  }
  MDCP_CHECK_MSG(spec.children.size() >= 2,
                 "internal tree node must have >= 2 children");
  // Children's mode sets must partition the parent's.
  std::vector<mode_t> merged;
  for (const auto& c : spec.children) {
    MDCP_CHECK_MSG(!c.modes.empty(), "child spec with empty mode set");
    merged.insert(merged.end(), c.modes.begin(), c.modes.end());
    validate_rec(c);
  }
  auto parent_sorted = spec.modes;
  std::sort(parent_sorted.begin(), parent_sorted.end());
  std::sort(merged.begin(), merged.end());
  MDCP_CHECK_MSG(parent_sorted == merged,
                 "children mode sets must partition the parent's");
}

}  // namespace

void TreeSpec::validate(mode_t order) const {
  auto sorted = modes;
  std::sort(sorted.begin(), sorted.end());
  MDCP_CHECK_MSG(sorted.size() == order, "root spec must cover all modes");
  for (mode_t m = 0; m < order; ++m)
    MDCP_CHECK_MSG(sorted[m] == m, "root spec modes must be 0..order-1");
  validate_rec(*this);
}

std::string TreeSpec::to_string() const {
  std::ostringstream os;
  if (is_leaf()) {
    os << modes[0];
    return os.str();
  }
  os << '(';
  for (std::size_t c = 0; c < children.size(); ++c) {
    if (c) os << ',';
    os << children[c].to_string();
  }
  os << ')';
  return os.str();
}

std::size_t DimensionTree::Node::symbolic_bytes() const {
  std::size_t b = 0;
  for (const auto& a : idx) b += a.size() * sizeof(index_t);
  b += red_ptr.size() * sizeof(nnz_t);
  b += red_ids.size() * sizeof(nnz_t);
  return b;
}

DimensionTree::DimensionTree(const CooTensor& tensor, const TreeSpec& spec)
    : tensor_(&tensor) {
  spec.validate(tensor.order());
  MDCP_CHECK_MSG(tensor.order() >= 2, "dimension trees need order >= 2");

  // Flatten the spec into nodes, BFS so parents precede children.
  struct Item {
    const TreeSpec* spec;
    int parent;
  };
  std::queue<Item> q;
  q.push({&spec, -1});
  leaf_of_mode_.assign(tensor.order(), -1);
  while (!q.empty()) {
    const Item it = q.front();
    q.pop();
    const int id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    Node& n = nodes_.back();
    n.parent = it.parent;
    n.modes = it.spec->modes;
    std::sort(n.modes.begin(), n.modes.end());
    for (mode_t m : n.modes) n.mode_set |= mode_set_t{1} << m;
    if (it.parent >= 0) {
      Node& p = nodes_[static_cast<std::size_t>(it.parent)];
      p.children.push_back(id);
      for (mode_t m : p.modes)
        if (!mode_in(n.mode_set, m)) n.delta.push_back(m);
    }
    if (it.spec->is_leaf()) leaf_of_mode_[n.modes[0]] = id;
    for (const auto& c : it.spec->children) q.push({&c, id});
    bfs_.push_back(id);
  }
  for (mode_t m = 0; m < tensor.order(); ++m)
    MDCP_CHECK_MSG(leaf_of_mode_[m] >= 0, "missing leaf for mode " << m);

  build_symbolic(*this);
}

std::span<const index_t> DimensionTree::node_mode_index(int which,
                                                        mode_t m) const {
  const Node& n = node(which);
  if (n.is_root()) return tensor_->mode_indices(m);
  const auto pos = static_cast<std::size_t>(
      std::find(n.modes.begin(), n.modes.end(), m) - n.modes.begin());
  MDCP_CHECK_MSG(pos < n.modes.size(),
                 "mode " << m << " not in node's mode set");
  return {n.idx[pos].data(), n.idx[pos].size()};
}

nnz_t DimensionTree::node_tuples(int which) const {
  const Node& n = node(which);
  return n.is_root() ? tensor_->nnz() : n.tuples;
}

std::size_t DimensionTree::symbolic_bytes() const {
  std::size_t b = 0;
  for (const auto& n : nodes_) b += n.symbolic_bytes();
  return b;
}

std::size_t DimensionTree::value_bytes() const {
  std::size_t b = 0;
  for (const auto& n : nodes_) b += n.values.size() * sizeof(real_t);
  return b;
}

}  // namespace mdcp
