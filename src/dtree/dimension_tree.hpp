// Dimension trees: the memoization structure for higher-order MTTKRP.
//
// A dimension tree over modes {0..N-1} assigns to every node t a mode set
// μ(t); the root holds all modes, children partition their parent's set, and
// leaf n holds {n}. Node t conceptually stores the input tensor contracted
// (TTV'd) over the modes *not* in μ(t) — a "semi-sparse" tensor whose index
// structure is the projection of the nonzeros onto μ(t) and whose values are
// dense length-R vectors. Leaf n's values are exactly the mode-n MTTKRP.
//
// Tree *shape* is the strategy knob of the model-driven framework:
//   flat        — root → N leaves: no memoization across modes, but one
//                 index-compressed contraction per mode (the "ht-tree2"
//                 configuration; comparable to SPLATT's work).
//   three_level — root → two groups → leaves: halves the root-tensor
//                 traversals (Phan et al.'s scheme generalized to sparse).
//   bdt         — balanced binary tree: O(N log N) TTVs per iteration
//                 instead of O(N²) (the full dimension-tree scheme).
// plus arbitrary custom shapes via TreeSpec.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "sched/partition.hpp"
#include "tensor/coo_tensor.hpp"
#include "util/types.hpp"

namespace mdcp {

/// Declarative description of a dimension-tree shape. Leaves are nodes whose
/// `modes` has a single element and no children.
struct TreeSpec {
  std::vector<mode_t> modes;
  std::vector<TreeSpec> children;

  bool is_leaf() const noexcept { return children.empty(); }

  /// Root with all N leaves directly attached (no intermediates).
  static TreeSpec flat(std::span<const mode_t> order);

  /// Root → two internal group nodes (split after position `split` of
  /// `order`) → leaves. Groups of size 1 collapse into leaves directly.
  static TreeSpec three_level(std::span<const mode_t> order, mode_t split);

  /// Balanced binary dimension tree over `order`.
  static TreeSpec bdt(std::span<const mode_t> order);

  /// Throws if the spec is not a valid dimension tree over `order` modes.
  void validate(mode_t order) const;

  /// Compact human-readable form, e.g. "((0,1),(2,3))".
  std::string to_string() const;
};

/// Materialized dimension tree bound to a tensor: symbolic sparsity of every
/// node (computed once) plus lazily-managed numeric value matrices.
class DimensionTree {
 public:
  struct Node {
    mode_set_t mode_set = 0;        ///< μ(t) as bitmask
    int parent = -1;                ///< -1 for the root
    std::vector<int> children;
    std::vector<mode_t> modes;      ///< μ(t), ascending
    std::vector<mode_t> delta;      ///< μ(parent) \ μ(t): modes contracted
                                    ///< when deriving this node

    // --- symbolic sparsity (root aliases the input tensor; empty here) ---
    nnz_t tuples = 0;                       ///< projected distinct tuples
    std::vector<std::vector<index_t>> idx;  ///< [pos in modes][tuple]
    std::vector<nnz_t> red_ptr;  ///< CSR offsets into red_ids, size tuples+1
    std::vector<nnz_t> red_ids;  ///< contributing parent tuple ids

    // --- numeric state ---
    Matrix values;  ///< tuples × R when materialized
    bool valid = false;

    // --- TTMV tile plans (symbolic, cached against the thread budget) ---
    nnz_t max_red = 0;              ///< heaviest reduction set (skew input)
    sched::CachedPlan owner_tiles;  ///< whole-tuple tiles
    sched::CachedPlan split_tiles;  ///< reduction-entry-granular tiles

    bool is_root() const noexcept { return parent < 0; }
    bool is_leaf() const noexcept { return children.empty(); }
    std::size_t symbolic_bytes() const;
  };

  /// Builds the tree and runs the symbolic TTV pass (projection + sort +
  /// dedup + reduction sets for every node). The tensor must outlive the
  /// tree. The tensor must be coalesced.
  DimensionTree(const CooTensor& tensor, const TreeSpec& spec);

  const CooTensor& tensor() const noexcept { return *tensor_; }
  mode_t order() const noexcept { return tensor_->order(); }

  int root() const noexcept { return 0; }
  int leaf_for_mode(mode_t m) const { return leaf_of_mode_.at(m); }
  int size() const noexcept { return static_cast<int>(nodes_.size()); }

  Node& node(int i) { return nodes_[static_cast<std::size_t>(i)]; }
  const Node& node(int i) const { return nodes_[static_cast<std::size_t>(i)]; }

  /// Nodes in BFS order from the root (parents precede children).
  const std::vector<int>& bfs_order() const noexcept { return bfs_; }

  /// Index array of `which` node for mode m. For the root this aliases the
  /// tensor's coordinate array. m must be in the node's mode set.
  std::span<const index_t> node_mode_index(int which, mode_t m) const;

  /// Number of projected tuples of a node (root: nnz of the tensor).
  nnz_t node_tuples(int which) const;

  /// Bytes of all symbolic structures (index arrays + reduction sets).
  std::size_t symbolic_bytes() const;

  /// Bytes of currently materialized value matrices.
  std::size_t value_bytes() const;

 private:
  friend void build_symbolic(DimensionTree& tree);

  const CooTensor* tensor_;
  std::vector<Node> nodes_;
  std::vector<int> bfs_;
  std::vector<int> leaf_of_mode_;
};

}  // namespace mdcp
