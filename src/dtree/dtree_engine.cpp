#include "dtree/dtree_engine.hpp"

#include <algorithm>
#include <numeric>

#include "dtree/numeric.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mdcp {

DTreeMttkrpEngine::DTreeMttkrpEngine(const CooTensor& tensor,
                                     const TreeSpec& spec,
                                     std::string display_name)
    : spec_(spec), tree_(tensor, spec_), name_(std::move(display_name)) {
  peak_bytes_ = memory_bytes();
}

void DTreeMttkrpEngine::compute(mode_t mode,
                                const std::vector<Matrix>& factors,
                                Matrix& out) {
  const index_t r = check_factors(tree_.tensor(), factors);
  MDCP_CHECK(mode < tree_.order());
  if (r != rank_) {
    // Rank changed since the last call: every cached value matrix has the
    // wrong width.
    invalidate_all_nodes(tree_);
    rank_ = r;
  }

  const int leaf = tree_.leaf_for_mode(mode);
  compute_node_values(tree_, leaf, factors, r);
  peak_bytes_ = std::max(peak_bytes_, memory_bytes());

  // Scatter the leaf tuples into the dense output (rows of unused indices
  // stay zero, matching the MTTKRP of empty slices).
  const auto& ln = tree_.node(leaf);
  out.resize(tree_.tensor().dim(mode), r, 0);
  const auto rows = tree_.node_mode_index(leaf, mode);
  parallel_for(ln.tuples, [&](nnz_t t) {
    const auto src = ln.values.row(static_cast<index_t>(t));
    auto dst = out.row(rows[t]);
    std::copy(src.begin(), src.end(), dst.begin());
  });
}

void DTreeMttkrpEngine::factor_updated(mode_t mode) {
  MDCP_CHECK(mode < tree_.order());
  invalidate_mode(tree_, mode);
}

void DTreeMttkrpEngine::invalidate_all() { invalidate_all_nodes(tree_); }

std::size_t DTreeMttkrpEngine::memory_bytes() const {
  return tree_.symbolic_bytes() + tree_.value_bytes();
}

namespace {
std::vector<mode_t> natural_order(const CooTensor& t) {
  std::vector<mode_t> o(t.order());
  std::iota(o.begin(), o.end(), mode_t{0});
  return o;
}
}  // namespace

std::unique_ptr<DTreeMttkrpEngine> make_dtree_flat(const CooTensor& tensor) {
  return std::make_unique<DTreeMttkrpEngine>(
      tensor, TreeSpec::flat(natural_order(tensor)), "dtree-flat");
}

std::unique_ptr<DTreeMttkrpEngine> make_dtree_three_level(
    const CooTensor& tensor) {
  const auto order = natural_order(tensor);
  return std::make_unique<DTreeMttkrpEngine>(
      tensor,
      TreeSpec::three_level(order, static_cast<mode_t>((order.size() + 1) / 2)),
      "dtree-3lvl");
}

std::unique_ptr<DTreeMttkrpEngine> make_dtree_bdt(const CooTensor& tensor) {
  return std::make_unique<DTreeMttkrpEngine>(
      tensor, TreeSpec::bdt(natural_order(tensor)), "dtree-bdt");
}

}  // namespace mdcp
