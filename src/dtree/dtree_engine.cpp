#include "dtree/dtree_engine.hpp"

#include <algorithm>
#include <numeric>

#include "dtree/numeric.hpp"
#include "mttkrp/microkernel.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mdcp {

DTreeMttkrpEngine::DTreeMttkrpEngine(TreeSpec spec, std::string display_name,
                                     KernelContext ctx)
    : MttkrpEngine(ctx), spec_(std::move(spec)), name_(std::move(display_name)) {}

DTreeMttkrpEngine::DTreeMttkrpEngine(const CooTensor& tensor,
                                     const TreeSpec& spec,
                                     std::string display_name,
                                     KernelContext ctx)
    : MttkrpEngine(ctx), spec_(spec), name_(std::move(display_name)) {
  prepare(tensor);
}

void DTreeMttkrpEngine::do_prepare(index_t rank) {
  tree_ = std::make_unique<DimensionTree>(tensor(), spec_);
  rank_ = 0;
  peak_bytes_ = memory_bytes();
  if (rank > 0)
    workspace().reserve(effective_threads(),
                        mk::padded_rank(rank) * sizeof(real_t));
}

void DTreeMttkrpEngine::do_compute(mode_t mode,
                                   const std::vector<Matrix>& factors,
                                   Matrix& out) {
  DimensionTree& tree = *tree_;
  const index_t r = check_factors(tree.tensor(), factors);
  MDCP_CHECK(mode < tree.order());
  if (r != rank_) {
    // Rank changed since the last call: every cached value matrix has the
    // wrong width.
    invalidate_all_nodes(tree);
    rank_ = r;
  }

  const int leaf = tree.leaf_for_mode(mode);
  record_tile(mk::select_tile(r));
  TtmvSched ts{.threads = effective_threads(), .mode = schedule_mode()};
  count_flops(compute_node_values(tree, leaf, factors, r, workspace(), &ts));
  peak_bytes_ = std::max(peak_bytes_, memory_bytes());

  // Scatter the leaf tuples into the dense output (rows of unused indices
  // stay zero, matching the MTTKRP of empty slices). Pure copy with one
  // writer per row — always owner-computes, not counted as a launch.
  const auto& ln = tree.node(leaf);
  out.resize(tree.tensor().dim(mode), r, 0);
  const auto rows = tree.node_mode_index(leaf, mode);
  parallel_for(ln.tuples, [&](nnz_t t) {
    const auto src = ln.values.row(static_cast<index_t>(t));
    auto dst = out.row(rows[t]);
    std::copy(src.begin(), src.end(), dst.begin());
  });

  if (ts.owner_launches + ts.privatized_launches > 0) {
    // The decision of the leaf's own TTMV (the last launch in the chain)
    // defines last_schedule; intermediate node launches are counted too.
    record_schedule(ts.last, ts.owner_launches, ts.privatized_launches);
  } else {
    // Fully memoized compute (every node served from cache): report the
    // no-op so benches still see a schedule column.
    record_schedule({sched::Schedule::kOwner, 1, 0.0, 0, "memoized"}, 1, 0);
  }
  if (ts.privatized_launches > 0)
    count_flops(sched::reduction_flops(ts.last.tiles,
                                       static_cast<index_t>(ln.tuples), r));
}

void DTreeMttkrpEngine::factor_updated(mode_t mode) {
  if (!tree_) return;
  MDCP_CHECK(mode < tree_->order());
  invalidate_mode(*tree_, mode);
}

void DTreeMttkrpEngine::invalidate_all() {
  if (tree_) invalidate_all_nodes(*tree_);
}

std::size_t DTreeMttkrpEngine::memory_bytes() const {
  if (!tree_) return 0;
  return tree_->symbolic_bytes() + tree_->value_bytes();
}

namespace {
std::vector<mode_t> natural_order(const CooTensor& t) {
  std::vector<mode_t> o(t.order());
  std::iota(o.begin(), o.end(), mode_t{0});
  return o;
}
}  // namespace

std::unique_ptr<DTreeMttkrpEngine> make_dtree_flat(const CooTensor& tensor,
                                                   KernelContext ctx) {
  return std::make_unique<DTreeMttkrpEngine>(
      tensor, TreeSpec::flat(natural_order(tensor)), "dtree-flat", ctx);
}

std::unique_ptr<DTreeMttkrpEngine> make_dtree_three_level(
    const CooTensor& tensor, KernelContext ctx) {
  const auto order = natural_order(tensor);
  return std::make_unique<DTreeMttkrpEngine>(
      tensor,
      TreeSpec::three_level(order, static_cast<mode_t>((order.size() + 1) / 2)),
      "dtree-3lvl", ctx);
}

std::unique_ptr<DTreeMttkrpEngine> make_dtree_bdt(const CooTensor& tensor,
                                                  KernelContext ctx) {
  return std::make_unique<DTreeMttkrpEngine>(
      tensor, TreeSpec::bdt(natural_order(tensor)), "dtree-bdt", ctx);
}

}  // namespace mdcp
