// MTTKRP engine backed by a dimension tree (the memoized scheme).
//
// compute(n) materializes the root→leaf(n) path, reusing any intermediate
// already valid from earlier modes in the CP-ALS sweep. factor_updated(n)
// invalidates exactly the nodes contracted with U^(n) — together these
// reproduce the destroy/compute schedule of the dimension-tree CP-ALS
// algorithm, including its ⌈log N⌉ live-value-matrix memory bound for BDTs.
#pragma once

#include <memory>

#include "dtree/dimension_tree.hpp"
#include "mttkrp/engine.hpp"

namespace mdcp {

class DTreeMttkrpEngine final : public MttkrpEngine {
 public:
  /// The tensor must outlive the engine. `display_name` appears in logs and
  /// benchmark tables ("dtree-bdt", "dtree-flat", ...).
  DTreeMttkrpEngine(const CooTensor& tensor, const TreeSpec& spec,
                    std::string display_name = "dtree");

  void compute(mode_t mode, const std::vector<Matrix>& factors,
               Matrix& out) override;
  void factor_updated(mode_t mode) override;
  void invalidate_all() override;
  std::string name() const override { return name_; }
  std::size_t memory_bytes() const override;
  std::size_t peak_memory_bytes() const override { return peak_bytes_; }

  const DimensionTree& tree() const noexcept { return tree_; }
  const TreeSpec& spec() const noexcept { return spec_; }

 private:
  TreeSpec spec_;
  DimensionTree tree_;
  std::string name_;
  index_t rank_ = 0;  // rank of the last compute(); mismatch resets state
  std::size_t peak_bytes_ = 0;
};

/// Convenience factories for the three canonical shapes, using the natural
/// mode order 0..N-1.
std::unique_ptr<DTreeMttkrpEngine> make_dtree_flat(const CooTensor& tensor);
std::unique_ptr<DTreeMttkrpEngine> make_dtree_three_level(
    const CooTensor& tensor);
std::unique_ptr<DTreeMttkrpEngine> make_dtree_bdt(const CooTensor& tensor);

}  // namespace mdcp
