// MTTKRP engine backed by a dimension tree (the memoized scheme).
//
// compute(n) materializes the root→leaf(n) path, reusing any intermediate
// already valid from earlier modes in the CP-ALS sweep. factor_updated(n)
// invalidates exactly the nodes contracted with U^(n) — together these
// reproduce the destroy/compute schedule of the dimension-tree CP-ALS
// algorithm, including its ⌈log N⌉ live-value-matrix memory bound for BDTs.
//
// The tree itself is symbolic state built in prepare(); per-thread TTMV
// temporaries come from the KernelContext workspace.
#pragma once

#include <memory>

#include "dtree/dimension_tree.hpp"
#include "mttkrp/engine.hpp"

namespace mdcp {

class DTreeMttkrpEngine final : public MttkrpEngine {
 public:
  /// Deferred form: the tree is built by prepare(). `display_name` appears
  /// in logs and benchmark tables ("dtree-bdt", "dtree-flat", ...).
  explicit DTreeMttkrpEngine(TreeSpec spec, std::string display_name = "dtree",
                             KernelContext ctx = {});
  /// Convenience: construct and prepare in one step. The tensor must outlive
  /// the engine.
  DTreeMttkrpEngine(const CooTensor& tensor, const TreeSpec& spec,
                    std::string display_name = "dtree", KernelContext ctx = {});

  void factor_updated(mode_t mode) override;
  void invalidate_all() override;
  std::string name() const override { return name_; }
  std::size_t memory_bytes() const override;
  std::size_t peak_memory_bytes() const override { return peak_bytes_; }

  const DimensionTree& tree() const { return *tree_; }
  const TreeSpec& spec() const noexcept { return spec_; }

 protected:
  void do_prepare(index_t rank) override;
  void do_compute(mode_t mode, const std::vector<Matrix>& factors,
                  Matrix& out) override;

 private:
  TreeSpec spec_;
  std::unique_ptr<DimensionTree> tree_;
  std::string name_;
  index_t rank_ = 0;  // rank of the last compute(); mismatch resets state
  std::size_t peak_bytes_ = 0;
};

/// Convenience factories for the three canonical shapes, using the natural
/// mode order 0..N-1.
std::unique_ptr<DTreeMttkrpEngine> make_dtree_flat(const CooTensor& tensor,
                                                   KernelContext ctx = {});
std::unique_ptr<DTreeMttkrpEngine> make_dtree_three_level(
    const CooTensor& tensor, KernelContext ctx = {});
std::unique_ptr<DTreeMttkrpEngine> make_dtree_bdt(const CooTensor& tensor,
                                                  KernelContext ctx = {});

}  // namespace mdcp
