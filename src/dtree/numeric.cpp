#include "dtree/numeric.hpp"

#include <algorithm>
#include <array>
#include <span>

#include "mttkrp/microkernel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/reduce.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/types.hpp"

namespace mdcp {

namespace {

// Memoization scoreboard: a *hit* is a node requested while its cached
// values are still valid (the memoized reuse the dimension-tree scheme
// exists for); a *miss* is a node that had to be re-evaluated. The root is
// never counted — it aliases the input tensor and is always "valid".
obs::Counter& memo_hits_metric() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("dtree.memo_hits");
  return c;
}
obs::Counter& memo_misses_metric() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("dtree.memo_misses");
  return c;
}
obs::Counter& invalidated_metric() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("dtree.nodes_invalidated");
  return c;
}

// Computes one node's values from its (already materialized) parent.
// Returns the multiply/add count of the pass.
std::uint64_t ttmv_from_parent(DimensionTree& tree, int which,
                               const std::vector<Matrix>& factors,
                               index_t rank, Workspace& ws,
                               TtmvSched* ts) {
  auto& n = tree.node(which);
  const auto& p = tree.node(n.parent);
  const bool parent_is_root = p.is_root();

  n.values.resize(static_cast<index_t>(n.tuples), rank, 0);

  // Resolve the parent's coordinate arrays for the contracted modes and the
  // factor matrices once, outside the hot loop. Fixed-size arrays keep this
  // allocation-free (δ can never exceed the tensor order).
  const std::size_t nd = n.delta.size();
  MDCP_CHECK_MSG(nd <= kMaxOrder, "contraction set exceeds kMaxOrder");
  std::array<std::span<const index_t>, kMaxOrder> didx;
  std::array<const Matrix*, kMaxOrder> dfac;
  for (std::size_t d = 0; d < nd; ++d) {
    didx[d] = tree.node_mode_index(n.parent, n.delta[d]);
    dfac[d] = &factors[n.delta[d]];
  }
  const std::span<const real_t> root_vals =
      parent_is_root ? tree.tensor().values() : std::span<const real_t>{};

  const int threads = ts != nullptr ? ts->threads : num_threads();
  const ScheduleMode smode =
      ts != nullptr ? ts->mode : ScheduleMode::kAuto;
  const sched::WorkShape shape{.total = n.red_ids.size(),
                               .max_unit = n.max_red,
                               .units = n.tuples,
                               .out_rows = static_cast<index_t>(n.tuples),
                               .rank = rank,
                               .shared_writes = true};
  const sched::Decision d = sched::choose_schedule(shape, threads, smode);
  if (ts != nullptr) {
    (d.schedule == sched::Schedule::kPrivatized ? ts->privatized_launches
                                                : ts->owner_launches) += 1;
    ts->last = d;
  }

  const mk::Kernel mk(rank);

  // Accumulates reduction entries [red_ptr[t]+begin, red_ptr[t]+end) of
  // tuple t into `dst` row t. The fused microkernel paths cover the common
  // small contraction sets; wider δ falls back to the Hadamard accumulator
  // `tmp` (slab-origin, 64-byte aligned).
  const auto accumulate = [&](nnz_t t, nnz_t begin, nnz_t end, real_t* tmp,
                              real_t* dst) {
    tmp = mk::assume_aligned(tmp);
    real_t* out = dst + t * rank;
    for (nnz_t jp = n.red_ptr[t] + begin; jp < n.red_ptr[t] + end; ++jp) {
      const nnz_t j = n.red_ids[jp];
      const auto frow = [&](std::size_t dd) {
        return dfac[dd]->row(didx[dd][j]).data();
      };
      if (parent_is_root) {
        const real_t v = root_vals[j];
        if (nd == 1) {
          mk.axpy_accum(out, frow(0), v);
        } else if (nd == 2) {
          mk.fused2_accum(out, frow(0), frow(1), v);
        } else if (nd == 3) {
          mk.fused3_accum(out, frow(0), frow(1), frow(2), v);
        } else {
          mk.fill(tmp, v);
          for (std::size_t dd = 0; dd < nd; ++dd) mk.hadamard(tmp, frow(dd));
          mk.accum(out, tmp);
        }
      } else {
        const real_t* prow = p.values.row(static_cast<index_t>(j)).data();
        if (nd == 1) {
          mk.fused2_accum(out, prow, frow(0), 1);
        } else if (nd == 2) {
          mk.fused3_accum(out, prow, frow(0), frow(1), 1);
        } else {
          mk.copy(tmp, prow);
          for (std::size_t dd = 0; dd < nd; ++dd) mk.hadamard(tmp, frow(dd));
          mk.accum(out, tmp);
        }
      }
    }
  };
  const auto red_size = [&](nnz_t t) {
    return n.red_ptr[t + 1] - n.red_ptr[t];
  };

  if (d.schedule == sched::Schedule::kOwner) {
    const sched::TilePlan& tp = sched::cached_tiles(
        n.owner_tiles, d.tiles,
        [&](int nt) { return sched::tile_groups(n.red_ptr, nt); });
    // Serial scratch acquisition: growth must not throw inside the region.
    ws.reserve(num_threads(), mk.padded() * sizeof(real_t));
#pragma omp parallel
    {
      const auto tmp = ws.thread_scratch<real_t>(mk.padded());
#pragma omp for schedule(dynamic, 1)
      for (int tile = 0; tile < tp.tiles(); ++tile) {
        sched::for_each_group_range(tp, tile, red_size,
                                    [&](nnz_t t, nnz_t begin, nnz_t end) {
                                      accumulate(t, begin, end, tmp.data(),
                                                 n.values.data());
                                    });
      }
    }
  } else {
    const sched::TilePlan& tp = sched::cached_tiles(
        n.split_tiles, d.tiles,
        [&](int nt) { return sched::tile_groups_split(n.red_ptr, nt); });
    const nnz_t out_elems = n.tuples * rank;
    ws.reserve(num_threads(), (mk.padded() + out_elems) * sizeof(real_t));
    sched::PartialSet parts;
#pragma omp parallel
    {
      const int team = team_size();
      const int tid = thread_id();
      // Accumulator first (padded stride) so both it and the partial slab
      // stay 64-byte aligned.
      const auto slab = ws.thread_scratch<real_t>(mk.padded() + out_elems);
      real_t* tmp = slab.data();
      real_t* partial = tmp + mk.padded();
      std::fill(partial, partial + out_elems, real_t{0});
      parts.publish(tid, partial);
      for (int tile = tid; tile < tp.tiles(); tile += team) {
        sched::for_each_group_range(tp, tile, red_size,
                                    [&](nnz_t t, nnz_t begin, nnz_t end) {
                                      accumulate(t, begin, end, tmp, partial);
                                    });
      }
#pragma omp barrier
      parts.combine_into(n.values.data(), team,
                         chunk_range(out_elems, team, tid));
    }
  }
  n.valid = true;
  return static_cast<std::uint64_t>(n.red_ids.size()) * rank * (nd + 1);
}

}  // namespace

std::uint64_t compute_node_values(DimensionTree& tree, int which,
                                  const std::vector<Matrix>& factors,
                                  index_t rank, Workspace& ws,
                                  TtmvSched* ts) {
  auto& n = tree.node(which);
  if (n.is_root()) return 0;  // the root aliases the input tensor
  if (n.valid && n.values.cols() == rank) {
    memo_hits_metric().add();
    return 0;
  }
  memo_misses_metric().add();

  const std::uint64_t above =
      compute_node_values(tree, n.parent, factors, rank, ws, ts);
  std::uint64_t own;
  {
    MDCP_TRACE_SPAN("dtree.node_eval", "node",
                    static_cast<std::int64_t>(which));
    own = ttmv_from_parent(tree, which, factors, rank, ws, ts);
  }
  return above + own;
}

void invalidate_mode(DimensionTree& tree, mode_t mode) {
  for (int i = 0; i < tree.size(); ++i) {
    auto& n = tree.node(i);
    if (n.is_root()) continue;
    if (!mode_in(n.mode_set, mode) && n.valid) {
      n.valid = false;
      n.values.resize(0, 0);
      invalidated_metric().add();
    }
  }
}

void invalidate_all_nodes(DimensionTree& tree) {
  for (int i = 0; i < tree.size(); ++i) {
    auto& n = tree.node(i);
    if (n.valid && !n.is_root()) invalidated_metric().add();
    n.valid = false;
    n.values.resize(0, 0);
  }
}

}  // namespace mdcp
