#include "dtree/numeric.hpp"

#include <vector>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mdcp {

namespace {

// Computes one node's values from its (already materialized) parent.
void ttmv_from_parent(DimensionTree& tree, int which,
                      const std::vector<Matrix>& factors, index_t rank) {
  auto& n = tree.node(which);
  const auto& p = tree.node(n.parent);
  const bool parent_is_root = p.is_root();

  n.values.resize(static_cast<index_t>(n.tuples), rank, 0);

  // Resolve the parent's coordinate arrays for the contracted modes and the
  // factor matrices once, outside the hot loop.
  const std::size_t nd = n.delta.size();
  std::vector<std::span<const index_t>> didx(nd);
  std::vector<const Matrix*> dfac(nd);
  for (std::size_t d = 0; d < nd; ++d) {
    didx[d] = tree.node_mode_index(n.parent, n.delta[d]);
    dfac[d] = &factors[n.delta[d]];
  }
  const std::span<const real_t> root_vals =
      parent_is_root ? tree.tensor().values() : std::span<const real_t>{};

#pragma omp parallel
  {
    std::vector<real_t> tmp(rank);
#pragma omp for schedule(dynamic, 64)
    for (std::int64_t t = 0; t < static_cast<std::int64_t>(n.tuples); ++t) {
      auto out = n.values.row(static_cast<index_t>(t));
      for (nnz_t jp = n.red_ptr[static_cast<nnz_t>(t)];
           jp < n.red_ptr[static_cast<nnz_t>(t) + 1]; ++jp) {
        const nnz_t j = n.red_ids[jp];
        if (parent_is_root) {
          const real_t v = root_vals[j];
          for (index_t k = 0; k < rank; ++k) tmp[k] = v;
        } else {
          const auto prow = p.values.row(static_cast<index_t>(j));
          for (index_t k = 0; k < rank; ++k) tmp[k] = prow[k];
        }
        for (std::size_t d = 0; d < nd; ++d) {
          const auto frow = dfac[d]->row(didx[d][j]);
          for (index_t k = 0; k < rank; ++k) tmp[k] *= frow[k];
        }
        for (index_t k = 0; k < rank; ++k) out[k] += tmp[k];
      }
    }
  }
  n.valid = true;
}

}  // namespace

void compute_node_values(DimensionTree& tree, int which,
                         const std::vector<Matrix>& factors, index_t rank) {
  auto& n = tree.node(which);
  if (n.is_root()) return;  // the root aliases the input tensor
  if (n.valid && n.values.cols() == rank) return;

  compute_node_values(tree, n.parent, factors, rank);
  ttmv_from_parent(tree, which, factors, rank);
}

void invalidate_mode(DimensionTree& tree, mode_t mode) {
  for (int i = 0; i < tree.size(); ++i) {
    auto& n = tree.node(i);
    if (n.is_root()) continue;
    if (!mode_in(n.mode_set, mode) && n.valid) {
      n.valid = false;
      n.values.resize(0, 0);
    }
  }
}

void invalidate_all_nodes(DimensionTree& tree) {
  for (int i = 0; i < tree.size(); ++i) {
    auto& n = tree.node(i);
    n.valid = false;
    n.values.resize(0, 0);
  }
}

}  // namespace mdcp
