#include "dtree/numeric.hpp"

#include <array>
#include <span>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/types.hpp"

namespace mdcp {

namespace {

// Memoization scoreboard: a *hit* is a node requested while its cached
// values are still valid (the memoized reuse the dimension-tree scheme
// exists for); a *miss* is a node that had to be re-evaluated. The root is
// never counted — it aliases the input tensor and is always "valid".
obs::Counter& memo_hits_metric() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("dtree.memo_hits");
  return c;
}
obs::Counter& memo_misses_metric() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("dtree.memo_misses");
  return c;
}
obs::Counter& invalidated_metric() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("dtree.nodes_invalidated");
  return c;
}

// Computes one node's values from its (already materialized) parent.
// Returns the multiply/add count of the pass.
std::uint64_t ttmv_from_parent(DimensionTree& tree, int which,
                               const std::vector<Matrix>& factors,
                               index_t rank, Workspace& ws) {
  auto& n = tree.node(which);
  const auto& p = tree.node(n.parent);
  const bool parent_is_root = p.is_root();

  n.values.resize(static_cast<index_t>(n.tuples), rank, 0);

  // Resolve the parent's coordinate arrays for the contracted modes and the
  // factor matrices once, outside the hot loop. Fixed-size arrays keep this
  // allocation-free (δ can never exceed the tensor order).
  const std::size_t nd = n.delta.size();
  MDCP_CHECK_MSG(nd <= kMaxOrder, "contraction set exceeds kMaxOrder");
  std::array<std::span<const index_t>, kMaxOrder> didx;
  std::array<const Matrix*, kMaxOrder> dfac;
  for (std::size_t d = 0; d < nd; ++d) {
    didx[d] = tree.node_mode_index(n.parent, n.delta[d]);
    dfac[d] = &factors[n.delta[d]];
  }
  const std::span<const real_t> root_vals =
      parent_is_root ? tree.tensor().values() : std::span<const real_t>{};

#pragma omp parallel
  {
    const auto tmp = ws.thread_scratch<real_t>(rank);
#pragma omp for schedule(dynamic, 64)
    for (std::int64_t t = 0; t < static_cast<std::int64_t>(n.tuples); ++t) {
      auto out = n.values.row(static_cast<index_t>(t));
      for (nnz_t jp = n.red_ptr[static_cast<nnz_t>(t)];
           jp < n.red_ptr[static_cast<nnz_t>(t) + 1]; ++jp) {
        const nnz_t j = n.red_ids[jp];
        if (parent_is_root) {
          const real_t v = root_vals[j];
          for (index_t k = 0; k < rank; ++k) tmp[k] = v;
        } else {
          const auto prow = p.values.row(static_cast<index_t>(j));
          for (index_t k = 0; k < rank; ++k) tmp[k] = prow[k];
        }
        for (std::size_t d = 0; d < nd; ++d) {
          const auto frow = dfac[d]->row(didx[d][j]);
          for (index_t k = 0; k < rank; ++k) tmp[k] *= frow[k];
        }
        for (index_t k = 0; k < rank; ++k) out[k] += tmp[k];
      }
    }
  }
  n.valid = true;
  return static_cast<std::uint64_t>(n.red_ids.size()) * rank * (nd + 1);
}

}  // namespace

std::uint64_t compute_node_values(DimensionTree& tree, int which,
                                  const std::vector<Matrix>& factors,
                                  index_t rank, Workspace& ws) {
  auto& n = tree.node(which);
  if (n.is_root()) return 0;  // the root aliases the input tensor
  if (n.valid && n.values.cols() == rank) {
    memo_hits_metric().add();
    return 0;
  }
  memo_misses_metric().add();

  const std::uint64_t above =
      compute_node_values(tree, n.parent, factors, rank, ws);
  std::uint64_t own;
  {
    MDCP_TRACE_SPAN("dtree.node_eval", "node",
                    static_cast<std::int64_t>(which));
    own = ttmv_from_parent(tree, which, factors, rank, ws);
  }
  return above + own;
}

void invalidate_mode(DimensionTree& tree, mode_t mode) {
  for (int i = 0; i < tree.size(); ++i) {
    auto& n = tree.node(i);
    if (n.is_root()) continue;
    if (!mode_in(n.mode_set, mode) && n.valid) {
      n.valid = false;
      n.values.resize(0, 0);
      invalidated_metric().add();
    }
  }
}

void invalidate_all_nodes(DimensionTree& tree) {
  for (int i = 0; i < tree.size(); ++i) {
    auto& n = tree.node(i);
    if (n.valid && !n.is_root()) invalidated_metric().add();
    n.valid = false;
    n.values.resize(0, 0);
  }
}

}  // namespace mdcp
