// Numeric TTMV: materializes the value matrices of dimension-tree nodes.
//
// This is the per-iteration hot path. All R columns of a node are updated in
// one "thick" vectorized pass (the TTMV formulation): for every tuple of the
// node, the contributing parent rows are multiplied by the factor rows of
// the contracted modes (δ) and summed. Each node pass runs the schedule
// picked by sched::choose_schedule — owner-computes over nnz-weighted tiles
// of whole tuples (no atomics, bitwise identical for any thread count) or,
// when one tuple's reduction set dominates, tiles cutting inside reduction
// sets with per-thread partial values combined in fixed thread order.
// Per-thread temporaries (and any partial slab) are drawn from the caller's
// Workspace; no heap allocation happens here beyond the node value matrices
// themselves.
#pragma once

#include <cstdint>
#include <vector>

#include "dtree/dimension_tree.hpp"
#include "la/matrix.hpp"
#include "sched/schedule.hpp"
#include "util/workspace.hpp"

namespace mdcp {

/// Scheduling control + telemetry for a chain of node TTMV launches (one
/// per re-evaluated node). The caller seeds threads/mode and reads back the
/// launch counts and the last launch's decision for its KernelStats.
struct TtmvSched {
  int threads = 1;
  ScheduleMode mode = ScheduleMode::kAuto;
  // Accumulated across launches (an engine compute() may evaluate a chain).
  std::uint64_t owner_launches = 0;
  std::uint64_t privatized_launches = 0;
  sched::Decision last;  ///< decision of the most recent launch
};

/// Ensures node `which` (and, recursively, its ancestors) hold value
/// matrices consistent with `factors`. `rank` is the factor column count.
/// Nodes already marked valid are reused — the memoization. Returns the
/// number of floating-point multiply/add operations actually performed
/// (zero when everything was served from cache). `sched` (optional)
/// controls the parallel schedule and receives launch telemetry; null runs
/// the owner-computes heuristic at the global thread count.
std::uint64_t compute_node_values(DimensionTree& tree, int which,
                                  const std::vector<Matrix>& factors,
                                  index_t rank, Workspace& ws,
                                  TtmvSched* ts = nullptr);

/// Marks invalid (and frees) the value matrix of every node whose tensor was
/// contracted with factor `mode` (i.e. mode ∉ μ(t)). Call whenever factor
/// `mode` changes.
void invalidate_mode(DimensionTree& tree, mode_t mode);

/// Frees all value matrices.
void invalidate_all_nodes(DimensionTree& tree);

}  // namespace mdcp
