// Numeric TTMV: materializes the value matrices of dimension-tree nodes.
//
// This is the per-iteration hot path. All R columns of a node are updated in
// one "thick" vectorized pass (the TTMV formulation): for every tuple of the
// node, the contributing parent rows are multiplied by the factor rows of
// the contracted modes (δ) and summed. Parallel over output tuples — the
// reduction sets make every output independent, so there are no atomics and
// results are bitwise identical for any thread count. Per-thread temporaries
// are drawn from the caller's Workspace; no heap allocation happens here
// beyond the node value matrices themselves.
#pragma once

#include <cstdint>
#include <vector>

#include "dtree/dimension_tree.hpp"
#include "la/matrix.hpp"
#include "util/workspace.hpp"

namespace mdcp {

/// Ensures node `which` (and, recursively, its ancestors) hold value
/// matrices consistent with `factors`. `rank` is the factor column count.
/// Nodes already marked valid are reused — the memoization. Returns the
/// number of floating-point multiply/add operations actually performed
/// (zero when everything was served from cache).
std::uint64_t compute_node_values(DimensionTree& tree, int which,
                                  const std::vector<Matrix>& factors,
                                  index_t rank, Workspace& ws);

/// Marks invalid (and frees) the value matrix of every node whose tensor was
/// contracted with factor `mode` (i.e. mode ∉ μ(t)). Call whenever factor
/// `mode` changes.
void invalidate_mode(DimensionTree& tree, mode_t mode);

/// Frees all value matrices.
void invalidate_all_nodes(DimensionTree& tree);

}  // namespace mdcp
