#include "dtree/symbolic.hpp"

#include <algorithm>
#include <numeric>

#include "dtree/dimension_tree.hpp"
#include "util/error.hpp"

namespace mdcp {

void build_symbolic(DimensionTree& tree) {
  // BFS order guarantees each parent is finalized before its children.
  for (int id : tree.bfs_order()) {
    auto& n = tree.node(id);
    if (n.is_root()) continue;

    const int parent = n.parent;
    const nnz_t pcount = tree.node_tuples(parent);

    // Gather the parent's index arrays for this node's modes once.
    std::vector<std::span<const index_t>> keys;
    keys.reserve(n.modes.size());
    for (mode_t m : n.modes) keys.push_back(tree.node_mode_index(parent, m));

    // Sort parent tuple ids by the projected key.
    std::vector<nnz_t> perm(pcount);
    std::iota(perm.begin(), perm.end(), nnz_t{0});
    std::stable_sort(perm.begin(), perm.end(), [&](nnz_t a, nnz_t b) {
      for (const auto& k : keys) {
        if (k[a] != k[b]) return k[a] < k[b];
      }
      return false;
    });

    const auto same_key = [&](nnz_t a, nnz_t b) {
      for (const auto& k : keys)
        if (k[a] != k[b]) return false;
      return true;
    };

    // Group equal keys: each group becomes one tuple of this node, and the
    // group's members form its reduction set.
    n.idx.assign(n.modes.size(), {});
    n.red_ids = std::move(perm);
    n.red_ptr.clear();
    for (nnz_t p = 0; p < pcount; ++p) {
      if (p == 0 || !same_key(n.red_ids[p], n.red_ids[p - 1])) {
        n.red_ptr.push_back(p);
        for (std::size_t m = 0; m < keys.size(); ++m)
          n.idx[m].push_back(keys[m][n.red_ids[p]]);
      }
    }
    n.red_ptr.push_back(pcount);
    n.tuples = n.red_ptr.size() - 1;
    MDCP_CHECK(n.tuples <= pcount);
    n.max_red = 0;
    for (nnz_t t = 0; t < n.tuples; ++t)
      n.max_red = std::max(n.max_red, n.red_ptr[t + 1] - n.red_ptr[t]);
    n.owner_tiles = {};
    n.split_tiles = {};
  }
}

}  // namespace mdcp
