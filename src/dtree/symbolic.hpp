// Symbolic TTV: one-time computation of every tree node's sparsity.
//
// For each non-root node t, the parent's tuples are projected onto μ(t),
// sorted, and deduplicated. The resulting structures are
//   idx      — the distinct projected tuples (one index array per mode),
//   red_ptr/red_ids — for each tuple of t, the list of parent tuples that
//              contract onto it ("reduction set", CSR layout).
// They stay fixed for the lifetime of the tree and are shared by all R
// columns and all CP-ALS iterations/restarts — the cost is amortized exactly
// as in the dimension-tree literature.
#pragma once

namespace mdcp {

class DimensionTree;

/// Fills the symbolic fields of every node of `tree` (called by the
/// DimensionTree constructor).
void build_symbolic(DimensionTree& tree);

}  // namespace mdcp
