#include "la/blas.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mdcp {

void gram(const Matrix& a, Matrix& out) {
  const index_t n = a.rows();
  const index_t r = a.cols();
  out.resize(r, r, 0);

  // Fixed-size row blocks (independent of the thread count) accumulated in
  // parallel, then reduced in block order: bitwise-deterministic for any
  // number of threads, atomics-free, single scan of the tall matrix.
  constexpr index_t kBlock = 2048;
  const index_t num_blocks = (n + kBlock - 1) / kBlock;
  std::vector<Matrix> partial(num_blocks, Matrix(r, r, 0));
#pragma omp parallel for schedule(static)
  for (std::int64_t b = 0; b < static_cast<std::int64_t>(num_blocks); ++b) {
    Matrix& local = partial[static_cast<std::size_t>(b)];
    const index_t begin = static_cast<index_t>(b) * kBlock;
    const index_t end = std::min<index_t>(begin + kBlock, n);
    for (index_t i = begin; i < end; ++i) {
      const auto row = a.row(i);
      for (index_t j = 0; j < r; ++j) {
        const real_t aj = row[j];
        if (aj == 0) continue;
        real_t* lrow = &local(j, 0);
        for (index_t k = j; k < r; ++k) lrow[k] += aj * row[k];
      }
    }
  }
  for (const auto& p : partial)
    for (index_t j = 0; j < r; ++j)
      for (index_t k = j; k < r; ++k) out(j, k) += p(j, k);
  // Mirror the upper triangle.
  for (index_t j = 0; j < r; ++j)
    for (index_t k = j + 1; k < r; ++k) out(k, j) = out(j, k);
}

Matrix gram(const Matrix& a) {
  Matrix out;
  gram(a, out);
  return out;
}

void multiply_into(const Matrix& a, const Matrix& b, Matrix& c) {
  MDCP_CHECK(a.cols() == b.rows());
  c.resize(a.rows(), b.cols(), 0);
  const index_t bi = b.rows();
  const index_t bj = b.cols();
  parallel_for(a.rows(), [&](nnz_t i) {
    const auto arow = a.row(static_cast<index_t>(i));
    auto crow = c.row(static_cast<index_t>(i));
    for (index_t k = 0; k < bi; ++k) {
      const real_t aik = arow[k];
      if (aik == 0) continue;
      const auto brow = b.row(k);
      for (index_t j = 0; j < bj; ++j) crow[j] += aik * brow[j];
    }
  });
}

Matrix multiply(const Matrix& a, const Matrix& b) {
  Matrix c;
  multiply_into(a, b, c);
  return c;
}

void hadamard_inplace(Matrix& a, const Matrix& b) {
  MDCP_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  real_t* pa = a.data();
  const real_t* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) pa[i] *= pb[i];
}

Matrix hadamard_all(const std::vector<const Matrix*>& ms) {
  MDCP_CHECK_MSG(!ms.empty(), "hadamard_all needs at least one matrix");
  Matrix out = *ms.front();
  for (std::size_t i = 1; i < ms.size(); ++i) hadamard_inplace(out, *ms[i]);
  return out;
}

std::vector<real_t> column_normalize(Matrix& a) {
  const index_t r = a.cols();
  std::vector<real_t> norms(r, 0);
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto row = a.row(i);
    for (index_t j = 0; j < r; ++j) norms[j] += row[j] * row[j];
  }
  for (auto& x : norms) x = std::sqrt(x);
  for (index_t i = 0; i < a.rows(); ++i) {
    auto row = a.row(i);
    for (index_t j = 0; j < r; ++j)
      if (norms[j] > 0) row[j] /= norms[j];
  }
  return norms;
}

real_t dot(const Matrix& a, const Matrix& b) {
  MDCP_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  real_t s = 0;
  const real_t* pa = a.data();
  const real_t* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) s += pa[i] * pb[i];
  return s;
}

}  // namespace mdcp
