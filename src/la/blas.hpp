// Hand-rolled dense kernels sized for CP-ALS: tall-skinny Gram products,
// tiny R×R algebra, Hadamard products, and column normalization.
#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "util/types.hpp"

namespace mdcp {

/// out = A^T A (out is cols×cols, symmetric). Parallel over row blocks.
void gram(const Matrix& a, Matrix& out);

/// Returns A^T A.
Matrix gram(const Matrix& a);

/// C = A * B (dimensions must agree). Straightforward ikj loop; A is
/// typically I×R and B is R×R in CP-ALS.
void multiply_into(const Matrix& a, const Matrix& b, Matrix& c);
Matrix multiply(const Matrix& a, const Matrix& b);

/// a <- a ∘ b (elementwise).
void hadamard_inplace(Matrix& a, const Matrix& b);

/// Elementwise product of a list of same-shape matrices.
Matrix hadamard_all(const std::vector<const Matrix*>& ms);

/// Normalizes each column of `a` to unit 2-norm; returns the norms.
/// Zero columns get norm 0 and are left untouched (caller may reinitialize).
std::vector<real_t> column_normalize(Matrix& a);

/// <a, b> = sum_ij a_ij b_ij.
real_t dot(const Matrix& a, const Matrix& b);

}  // namespace mdcp
