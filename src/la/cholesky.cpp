#include "la/cholesky.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/eigen.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mdcp {

CholeskyStatus cholesky_factor_status(Matrix& a) {
  MDCP_CHECK(a.rows() == a.cols());
  const index_t n = a.rows();
  for (index_t j = 0; j < n; ++j) {
    real_t d = a(j, j);
    for (index_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (!std::isfinite(d)) return CholeskyStatus::kNanInput;
    if (!(d > 0)) return CholeskyStatus::kNotSpd;
    const real_t lj = std::sqrt(d);
    a(j, j) = lj;
    for (index_t i = j + 1; i < n; ++i) {
      real_t s = a(i, j);
      for (index_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / lj;
    }
  }
  return CholeskyStatus::kOk;
}

bool cholesky_factor(Matrix& a) {
  return cholesky_factor_status(a) == CholeskyStatus::kOk;
}

void cholesky_solve_rows(const Matrix& l, Matrix& rhs_rows) {
  MDCP_CHECK(l.rows() == l.cols());
  MDCP_CHECK(rhs_rows.cols() == l.rows());
  const index_t n = l.rows();
  parallel_for(rhs_rows.rows(), [&](nnz_t ri) {
    auto x = rhs_rows.row(static_cast<index_t>(ri));
    // Forward substitution: L y = b.
    for (index_t i = 0; i < n; ++i) {
      real_t s = x[i];
      for (index_t k = 0; k < i; ++k) s -= l(i, k) * x[k];
      x[i] = s / l(i, i);
    }
    // Backward substitution: Lᵀ x = y.
    for (index_t ii = n; ii-- > 0;) {
      real_t s = x[ii];
      for (index_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
      x[ii] = s / l(ii, ii);
    }
  });
}

Matrix solve_normal_equations(const Matrix& h, const Matrix& m,
                              SolveInfo* info) {
  MDCP_CHECK(h.rows() == h.cols());
  MDCP_CHECK(m.cols() == h.rows());
  SolveInfo local;
  SolveInfo& si = info != nullptr ? *info : local;
  si = SolveInfo{};
  const index_t n = h.rows();

  Matrix l = h;
  si.cholesky = cholesky_factor_status(l);
  if (si.cholesky == CholeskyStatus::kOk) {
    Matrix x = m;
    cholesky_solve_rows(l, x);
    return x;
  }
  if (si.cholesky == CholeskyStatus::kNanInput)
    throw numeric_error(
        "normal-equations Gram matrix contains non-finite values");

  // Rank-deficient H: retry with an escalating ridge. λ is seeded relative
  // to the mean diagonal so the perturbation scales with the problem; each
  // failed retry escalates λ by 100×. A zero/negative trace means the ridge
  // cannot restore positive-definiteness at a meaningful scale — go straight
  // to the pseudo-inverse.
  real_t trace = 0;
  for (index_t i = 0; i < n; ++i) trace += h(i, i);
  if (trace > 0) {
    constexpr int kMaxRidgeRetries = 3;
    real_t lambda = (trace / static_cast<real_t>(n)) * 1e-10;
    for (int retry = 1; retry <= kMaxRidgeRetries; ++retry, lambda *= 100) {
      Matrix lr = h;
      for (index_t i = 0; i < n; ++i) lr(i, i) += lambda;
      si.ridge_retries = retry;
      if (cholesky_factor_status(lr) == CholeskyStatus::kOk) {
        si.ridge_lambda = lambda;
        Matrix x = m;
        cholesky_solve_rows(lr, x);
        return x;
      }
    }
  }

  // Last resort: the Moore–Penrose pseudo-inverse.
  si.used_pseudo_inverse = true;
  const Matrix hp = pseudo_inverse(h);
  return multiply(m, hp);
}

}  // namespace mdcp
