#include "la/cholesky.hpp"

#include <cmath>

#include "la/eigen.hpp"
#include "la/blas.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mdcp {

bool cholesky_factor(Matrix& a) {
  MDCP_CHECK(a.rows() == a.cols());
  const index_t n = a.rows();
  for (index_t j = 0; j < n; ++j) {
    real_t d = a(j, j);
    for (index_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (!(d > 0) || !std::isfinite(d)) return false;
    const real_t lj = std::sqrt(d);
    a(j, j) = lj;
    for (index_t i = j + 1; i < n; ++i) {
      real_t s = a(i, j);
      for (index_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / lj;
    }
  }
  return true;
}

void cholesky_solve_rows(const Matrix& l, Matrix& rhs_rows) {
  MDCP_CHECK(l.rows() == l.cols());
  MDCP_CHECK(rhs_rows.cols() == l.rows());
  const index_t n = l.rows();
  parallel_for(rhs_rows.rows(), [&](nnz_t ri) {
    auto x = rhs_rows.row(static_cast<index_t>(ri));
    // Forward substitution: L y = b.
    for (index_t i = 0; i < n; ++i) {
      real_t s = x[i];
      for (index_t k = 0; k < i; ++k) s -= l(i, k) * x[k];
      x[i] = s / l(i, i);
    }
    // Backward substitution: Lᵀ x = y.
    for (index_t ii = n; ii-- > 0;) {
      real_t s = x[ii];
      for (index_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
      x[ii] = s / l(ii, ii);
    }
  });
}

Matrix solve_normal_equations(const Matrix& h, const Matrix& m) {
  MDCP_CHECK(h.rows() == h.cols());
  MDCP_CHECK(m.cols() == h.rows());
  Matrix l = h;
  if (cholesky_factor(l)) {
    Matrix x = m;
    cholesky_solve_rows(l, x);
    return x;
  }
  // Rank-deficient H: use the Moore–Penrose pseudo-inverse.
  const Matrix hp = pseudo_inverse(h);
  return multiply(m, hp);
}

}  // namespace mdcp
