// Symmetric positive-(semi)definite solves for the CP-ALS normal equations.
//
// Each sub-iteration solves U = M · H⁺ where H = ∘_{i≠n} (Uᵢᵀ Uᵢ) is R×R and
// symmetric PSD. We attempt a Cholesky solve first (fast path); if H is
// merely rank-deficient we retry with an escalating ridge λ·I (standard ALS
// practice), then fall back to the Moore–Penrose pseudo-inverse built from a
// Jacobi eigendecomposition. A non-finite H is a distinct, unrecoverable
// condition — no amount of regularization repairs a NaN Gram matrix — so it
// is reported as its own status and solve_normal_equations raises a typed
// mdcp::numeric_error that the CP-ALS recovery path converts into a factor
// restart.
#pragma once

#include "la/matrix.hpp"

namespace mdcp {

/// Outcome of a Cholesky factorization attempt. Distinguishes "H is not SPD"
/// (recoverable: ridge or pseudo-inverse) from "H contains non-finite
/// values" (unrecoverable by regularization: the caller must rebuild its
/// inputs).
enum class CholeskyStatus {
  kOk = 0,
  kNotSpd,    ///< a non-positive (but finite) pivot appeared
  kNanInput,  ///< a pivot evaluated to NaN/Inf — the input is poisoned
};

/// In-place lower Cholesky factorization A = L·Lᵀ (only the lower triangle of
/// the output is meaningful). On a non-kOk status the matrix is left
/// partially factorized and must be discarded.
CholeskyStatus cholesky_factor_status(Matrix& a);

/// Back-compat predicate: cholesky_factor_status(a) == kOk.
bool cholesky_factor(Matrix& a);

/// Solves L·Lᵀ·x = b for each row b of `rhs_rows` (i.e. computes rhs·A⁻¹ for
/// symmetric A given its Cholesky factor L). rhs_rows is I×R, modified
/// in place.
void cholesky_solve_rows(const Matrix& l, Matrix& rhs_rows);

/// How solve_normal_equations obtained its result — consumed by the CP-ALS
/// recovery accounting and the run reporter.
struct SolveInfo {
  CholeskyStatus cholesky = CholeskyStatus::kOk;  ///< first, un-ridged attempt
  int ridge_retries = 0;     ///< escalating-λ retries performed
  double ridge_lambda = 0;   ///< the λ that succeeded (0 = none needed)
  bool used_pseudo_inverse = false;
};

/// Computes X = M · H⁺ robustly: Cholesky when H is SPD, escalating-ridge
/// Cholesky when it is rank-deficient, pseudo-inverse as the last resort.
/// `h` is R×R symmetric, `m` is I×R. Returns X (I×R); fills `*info` (when
/// given) with the path taken. Throws mdcp::numeric_error if `h` is
/// non-finite — see CholeskyStatus::kNanInput.
Matrix solve_normal_equations(const Matrix& h, const Matrix& m,
                              SolveInfo* info = nullptr);

}  // namespace mdcp
