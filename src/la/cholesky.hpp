// Symmetric positive-(semi)definite solves for the CP-ALS normal equations.
//
// Each sub-iteration solves U = M · H⁺ where H = ∘_{i≠n} (Uᵢᵀ Uᵢ) is R×R and
// symmetric PSD. We attempt a Cholesky solve first (fast path); if H is
// numerically rank-deficient we fall back to the Moore–Penrose pseudo-inverse
// built from a Jacobi eigendecomposition — matching the ALS literature.
#pragma once

#include "la/matrix.hpp"

namespace mdcp {

/// In-place lower Cholesky factorization A = L·Lᵀ (only the lower triangle of
/// the output is meaningful). Returns false if a non-positive pivot appears.
bool cholesky_factor(Matrix& a);

/// Solves L·Lᵀ·x = b for each row b of `rhs_rows` (i.e. computes rhs·A⁻¹ for
/// symmetric A given its Cholesky factor L). rhs_rows is I×R, modified
/// in place.
void cholesky_solve_rows(const Matrix& l, Matrix& rhs_rows);

/// Computes X = M · H⁺ robustly: Cholesky when H is SPD, pseudo-inverse
/// otherwise. `h` is R×R symmetric, `m` is I×R. Returns X (I×R).
Matrix solve_normal_equations(const Matrix& h, const Matrix& m);

}  // namespace mdcp
