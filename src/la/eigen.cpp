#include "la/eigen.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mdcp {

void jacobi_eigen_symmetric(const Matrix& a, Matrix& eigenvectors,
                            std::vector<real_t>& eigenvalues, int max_sweeps) {
  MDCP_CHECK(a.rows() == a.cols());
  const index_t n = a.rows();
  Matrix d = a;  // working copy, driven to diagonal form
  eigenvectors.resize(n, n, 0);
  for (index_t i = 0; i < n; ++i) eigenvectors(i, i) = 1;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    real_t off = 0;
    for (index_t p = 0; p < n; ++p)
      for (index_t q = p + 1; q < n; ++q) off += d(p, q) * d(p, q);
    if (off < 1e-30) break;

    for (index_t p = 0; p < n; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        const real_t apq = d(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const real_t theta = (d(q, q) - d(p, p)) / (2 * apq);
        const real_t t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1));
        const real_t c = 1 / std::sqrt(t * t + 1);
        const real_t s = t * c;

        for (index_t k = 0; k < n; ++k) {
          const real_t dkp = d(k, p);
          const real_t dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (index_t k = 0; k < n; ++k) {
          const real_t dpk = d(p, k);
          const real_t dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (index_t k = 0; k < n; ++k) {
          const real_t vkp = eigenvectors(k, p);
          const real_t vkq = eigenvectors(k, q);
          eigenvectors(k, p) = c * vkp - s * vkq;
          eigenvectors(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  eigenvalues.resize(n);
  for (index_t i = 0; i < n; ++i) eigenvalues[i] = d(i, i);
}

Matrix pseudo_inverse(const Matrix& a, real_t rcond) {
  Matrix v;
  std::vector<real_t> w;
  jacobi_eigen_symmetric(a, v, w);

  real_t wmax = 0;
  for (real_t x : w) wmax = std::max(wmax, std::abs(x));
  const real_t cutoff = rcond * wmax;

  const index_t n = a.rows();
  Matrix out(n, n, 0);
  // out = V · diag(w⁺) · Vᵀ
  for (index_t k = 0; k < n; ++k) {
    if (std::abs(w[k]) <= cutoff) continue;
    const real_t inv = 1 / w[k];
    for (index_t i = 0; i < n; ++i) {
      const real_t vik = v(i, k) * inv;
      if (vik == 0) continue;
      for (index_t j = 0; j < n; ++j) out(i, j) += vik * v(j, k);
    }
  }
  return out;
}

}  // namespace mdcp
