// Symmetric eigendecomposition (cyclic Jacobi) and pseudo-inverse for small
// R×R matrices. Only needed on the rank-deficient fallback path of the
// CP-ALS normal equations, so simplicity beats speed here.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace mdcp {

/// Computes A = V · diag(w) · Vᵀ for symmetric A. V's columns are the
/// eigenvectors. Cyclic Jacobi with a fixed sweep budget.
void jacobi_eigen_symmetric(const Matrix& a, Matrix& eigenvectors,
                            std::vector<real_t>& eigenvalues,
                            int max_sweeps = 64);

/// Moore–Penrose pseudo-inverse of a symmetric matrix via its
/// eigendecomposition (eigenvalues below `rcond`·max|w| are treated as zero).
Matrix pseudo_inverse(const Matrix& a, real_t rcond = 1e-12);

}  // namespace mdcp
