#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mdcp {

Matrix::Matrix(index_t rows, index_t cols, real_t fill_value)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, fill_value) {}

void Matrix::fill(real_t v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::resize(index_t rows, index_t cols, real_t fill_value) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(static_cast<std::size_t>(rows) * cols, fill_value);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (index_t i = 0; i < rows_; ++i)
    for (index_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

real_t Matrix::frobenius_norm() const {
  real_t s = 0;
  for (real_t v : data_) s += v * v;
  return std::sqrt(s);
}

real_t Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  MDCP_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  real_t m = 0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  return m;
}

Matrix Matrix::random_uniform(index_t rows, index_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.next_real();
  return m;
}

Matrix Matrix::random_normal(index_t rows, index_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.next_normal();
  return m;
}

}  // namespace mdcp
