// Dense row-major matrix used for CP factor matrices and R×R Gram matrices.
//
// mdcp deliberately carries its own small dense kernels instead of linking a
// BLAS: every dense operation in CP-ALS is either tall-skinny (I × R with
// R ≤ 64) or tiny (R × R), where simple cache-friendly loops are competitive
// and keep the library dependency-free.
//
// Storage is 64-byte aligned (util/aligned.hpp): data() is always a valid
// aligned-load target for the SIMD microkernel layer, and row(i) is aligned
// whenever cols() is a multiple of the vector width (mk::kVectorWidth).
#pragma once

#include <span>
#include <vector>

#include "util/aligned.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace mdcp {

class Matrix {
 public:
  Matrix() = default;
  Matrix(index_t rows, index_t cols, real_t fill_value = 0);

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  real_t& operator()(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }
  real_t operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }

  std::span<real_t> row(index_t i) {
    return {data_.data() + static_cast<std::size_t>(i) * cols_, cols_};
  }
  std::span<const real_t> row(index_t i) const {
    return {data_.data() + static_cast<std::size_t>(i) * cols_, cols_};
  }

  real_t* data() noexcept { return data_.data(); }
  const real_t* data() const noexcept { return data_.data(); }
  std::size_t size() const noexcept { return data_.size(); }

  void fill(real_t v);
  void zero() { fill(0); }

  /// Resizes, discarding contents (all entries set to fill_value).
  void resize(index_t rows, index_t cols, real_t fill_value = 0);

  Matrix transposed() const;

  real_t frobenius_norm() const;

  /// max_ij |a_ij - b_ij|; matrices must be the same shape.
  static real_t max_abs_diff(const Matrix& a, const Matrix& b);

  /// i.i.d. Uniform(0,1) entries.
  static Matrix random_uniform(index_t rows, index_t cols, Rng& rng);

  /// i.i.d. standard normal entries.
  static Matrix random_normal(index_t rows, index_t cols, Rng& rng);

  bool operator==(const Matrix& other) const = default;

  /// Alignment of the storage base pointer.
  static constexpr std::size_t kAlignment = kNumericAlignment;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  aligned_real_vector data_;
};

}  // namespace mdcp
