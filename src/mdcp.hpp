// Umbrella header: the full public API of mdcp.
//
// mdcp is a shared-memory library for sparse CANDECOMP/PARAFAC (CP)
// decomposition of higher-order tensors, built around model-driven selection
// of memoized (dimension-tree) MTTKRP strategies. Typical use:
//
//   #include "mdcp.hpp"
//   mdcp::CooTensor x = mdcp::read_tns_file("data.tns");
//   mdcp::CpAlsOptions opt;
//   opt.rank = 16;
//   opt.engine = mdcp::EngineKind::kAuto;   // model-driven strategy choice
//   auto result = mdcp::cp_als(x, opt);
//   // result.model.{weights,factors}, result.fits, result.*_seconds
#pragma once

#include "cpals/cp_mu.hpp"
#include "cpals/cpals.hpp"
#include "cpals/kruskal.hpp"
#include "csf/csf_mttkrp.hpp"
#include "csf/csf_one_mttkrp.hpp"
#include "csf/csf_tensor.hpp"
#include "dtree/dtree_engine.hpp"
#include "dtree/dimension_tree.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/eigen.hpp"
#include "la/matrix.hpp"
#include "model/cost_model.hpp"
#include "model/sketch.hpp"
#include "model/strategy.hpp"
#include "model/tuner.hpp"
#include "mttkrp/blocked_coo.hpp"
#include "mttkrp/coo_mttkrp.hpp"
#include "mttkrp/engine.hpp"
#include "mttkrp/registry.hpp"
#include "mttkrp/ttv_chain.hpp"
#include "obs/clock.hpp"
#include "obs/flightrec.hpp"
#include "obs/history.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/report.hpp"
#include "obs/roofline.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "tensor/compact.hpp"
#include "tensor/coo_tensor.hpp"
#include "tensor/generator.hpp"
#include "tensor/stats.hpp"
#include "tensor/ttv.hpp"
#include "tensor/tensor_io.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"
#include "util/workspace.hpp"
