#include "model/cost_model.hpp"

#include <algorithm>
#include <bit>
#include <functional>
#include <string>

#include "csf/csf_tensor.hpp"
#include "dtree/dtree_engine.hpp"
#include "mttkrp/microkernel.hpp"
#include "sched/schedule.hpp"
#include "tensor/generator.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace mdcp {

namespace {

mode_set_t spec_mode_set(const TreeSpec& spec) {
  mode_set_t s = 0;
  for (mode_t m : spec.modes) s |= mode_set_t{1} << m;
  return s;
}

}  // namespace

StrategyPrediction predict_strategy(const CooTensor& tensor,
                                    const TreeSpec& spec, index_t rank,
                                    ProjectionCounter& counter,
                                    const CostModelParams& params) {
  spec.validate(tensor.order());
  StrategyPrediction pred;
  const double r = static_cast<double>(rank);
  // Vector-width-aware flop term: the microkernel issues whole SIMD lanes,
  // so an awkward rank (e.g. 17) pays for the next multiple of the vector
  // width. Byte terms keep the true r — memory traffic is not padded.
  const double rv = static_cast<double>(mk::padded_rank(rank));

  // Per-leaf path costs, used for the peak-value-memory bound.
  std::vector<std::size_t> path_value_bytes;

  const std::function<void(const TreeSpec&, mode_set_t, nnz_t, std::size_t)>
      visit = [&](const TreeSpec& node, mode_set_t parent_set,
                  nnz_t parent_tuples, std::size_t path_bytes_above) {
        const mode_set_t ms = spec_mode_set(node);
        const bool is_root = parent_set == 0;
        nnz_t tuples = is_root ? tensor.nnz() : counter.count(ms);
        if (!is_root) tuples = std::min(tuples, parent_tuples);

        std::size_t my_value_bytes = 0;
        if (!is_root) {
          NodeCostEstimate nc;
          nc.mode_set = ms;
          nc.tuples = tuples;
          nc.parent_tuples = parent_tuples;
          nc.delta = mode_count(parent_set & ~ms);
          const double pt = static_cast<double>(parent_tuples);
          nc.flops = pt * rv * (nc.delta + 1);
          nc.bytes = pt * (r * sizeof(real_t)                 // parent row
                           + nc.delta * r * sizeof(real_t)    // factor rows
                           + sizeof(nnz_t))                   // reduction id
                     + static_cast<double>(tuples) * r * sizeof(real_t);
          pred.nodes.push_back(nc);
          pred.flops_per_iteration += nc.flops;
          pred.bytes_per_iteration += nc.bytes;

          // Privatized-reduction envelope: a launch above the work gate may
          // run split tiles at `threads` partials, adding a combine pass
          // (threads × tuples × R adds) and a transient partial-slab
          // footprint. The model lacks per-launch skew, so this is the
          // worst case the scheduler can choose, not a certainty.
          if (params.threads > 1 && parent_tuples >= sched::kMinPrivatizeWork) {
            const double red = static_cast<double>(params.threads) *
                               static_cast<double>(tuples) * r;
            pred.reduction_flops_per_iteration += red;
            pred.flops_per_iteration += red;
            pred.bytes_per_iteration +=
                static_cast<double>(params.threads) *
                static_cast<double>(tuples) * r * sizeof(real_t);
            pred.privatized_partial_bytes = std::max(
                pred.privatized_partial_bytes,
                sched::privatized_partial_bytes(
                    params.threads, static_cast<index_t>(tuples), rank));
          }

          // Persistent symbolic structures of this node.
          pred.symbolic_bytes +=
              static_cast<std::size_t>(tuples) *
                  (node.is_leaf() ? 1 : node.modes.size()) * sizeof(index_t) +
              static_cast<std::size_t>(parent_tuples) * sizeof(nnz_t) +
              (static_cast<std::size_t>(tuples) + 1) * sizeof(nnz_t);
          my_value_bytes =
              static_cast<std::size_t>(tuples) * rank * sizeof(real_t);
        }

        const std::size_t path_bytes = path_bytes_above + my_value_bytes;
        if (node.is_leaf()) {
          path_value_bytes.push_back(path_bytes);
          return;
        }
        for (const auto& c : node.children)
          visit(c, ms, tuples, path_bytes);
      };
  visit(spec, 0, 0, 0);

  pred.peak_value_bytes =
      path_value_bytes.empty()
          ? 0
          : *std::max_element(path_value_bytes.begin(), path_value_bytes.end());
  pred.seconds_per_iteration =
      params.seconds_per_flop * pred.flops_per_iteration +
      params.seconds_per_byte * pred.bytes_per_iteration;
  return pred;
}

namespace {

// Shared pieces of the fallback-engine footprint formulas, mirroring the
// actual container layouts in mttkrp/ and csf/.

// One per-mode scatter plan (coo engine, csf1 non-root modes): a
// permutation, distinct output rows, and a CSR-style row_start.
std::size_t scatter_plan_bytes(nnz_t nnz, nnz_t distinct_rows) {
  return static_cast<std::size_t>(nnz) * sizeof(nnz_t) +
         static_cast<std::size_t>(distinct_rows) * sizeof(index_t) +
         static_cast<std::size_t>(distinct_rows + 1) * sizeof(nnz_t);
}

// Total linearization bits the alto engine's packed key needs (the codec's
// bit budget: ceil(log2(dim)) per mode). Zero-sized modes contribute
// nothing here — the engine itself rejects them at prepare().
index_t alto_key_bits(const CooTensor& t) {
  index_t total = 0;
  for (mode_t m = 0; m < t.order(); ++m)
    if (t.dim(m) > 1)
      total += static_cast<index_t>(std::bit_width(t.dim(m) - 1));
  return total;
}

// One CSF trie rooted at `root`: values, per-level fiber ids, per-non-leaf
// fptr. Level l fiber counts are the distinct counts of the mode-order
// prefixes (nnz upper bound without a counter).
std::size_t csf_tree_bytes(const CooTensor& t, mode_t root,
                           ProjectionCounter* counter) {
  const mode_t order = t.order();
  const std::vector<mode_t> mode_order = CsfTensor::default_order(t, root);
  std::size_t b = static_cast<std::size_t>(t.nnz()) * sizeof(real_t);
  mode_set_t prefix = 0;
  for (mode_t l = 0; l < order; ++l) {
    prefix |= mode_set_t{1} << mode_order[l];
    const nnz_t fibers =
        (l + 1 == order) ? t.nnz()
        : counter != nullptr ? std::min(counter->count(prefix), t.nnz())
                             : t.nnz();
    b += static_cast<std::size_t>(fibers) * sizeof(index_t);
    if (l + 1 < order)
      b += static_cast<std::size_t>(fibers + 1) * sizeof(nnz_t);
  }
  return b;
}

// Worst-case privatized partial-output slabs a launch may claim, charged
// only when the auto heuristic is allowed to pick the privatized schedule
// and the work clears its gate.
std::size_t privatized_envelope_bytes(const CooTensor& t, index_t rank,
                                      int threads, ScheduleMode sched_mode) {
  if (sched_mode == ScheduleMode::kOwner || threads <= 1) return 0;
  if (static_cast<nnz_t>(t.nnz()) * rank < sched::kMinPrivatizeWork) return 0;
  index_t max_dim = 0;
  for (mode_t m = 0; m < t.order(); ++m) max_dim = std::max(max_dim, t.dim(m));
  return sched::privatized_partial_bytes(threads, max_dim, rank);
}

}  // namespace

std::size_t predict_engine_footprint(const CooTensor& tensor,
                                     const std::string& engine, index_t rank,
                                     ProjectionCounter* counter,
                                     const CostModelParams& params,
                                     ScheduleMode sched_mode) {
  const mode_t order = tensor.order();
  const nnz_t nnz = tensor.nnz();
  const int threads = std::max(1, params.threads);
  const auto distinct = [&](mode_t m) -> nnz_t {
    const nnz_t d = counter != nullptr
                        ? counter->count(mode_set_t{1} << m)
                        : std::min<nnz_t>(nnz, tensor.dim(m));
    return std::min(d, nnz);
  };

  std::size_t b = 0;
  if (engine == "coo") {
    for (mode_t m = 0; m < order; ++m)
      b += scatter_plan_bytes(nnz, distinct(m));
    // Owner-computes tile accumulator: one R-row per thread.
    b += static_cast<std::size_t>(threads) * rank * sizeof(real_t);
  } else if (engine == "bcoo") {
    // Block-sorted copy: per-nonzero block-local bytes + value, plus block
    // directory (bounded by nnz).
    b += static_cast<std::size_t>(nnz) *
         (order * sizeof(std::uint8_t) + sizeof(real_t));
    b += static_cast<std::size_t>(nnz) *
         (order * sizeof(index_t) / 4 + sizeof(nnz_t));
  } else if (engine == "alto") {
    // Linearized copy: one packed key per nonzero (8 B on the 64-bit fast
    // path, 16 B when the shape's bit budget exceeds 64) plus the value
    // stream, the mode-0 row grouping, and — transiently — one set of
    // per-partition dense accumulator windows for the output mode, bounded
    // by the distinct rows the mode can have.
    b += static_cast<std::size_t>(nnz) *
         ((alto_key_bits(tensor) <= 64 ? 8 : 16) + sizeof(real_t));
    b += static_cast<std::size_t>(distinct(0)) *
         (sizeof(index_t) + sizeof(nnz_t));
    nnz_t max_rows = 0;
    for (mode_t m = 0; m < order; ++m)
      max_rows = std::max(max_rows, distinct(m));
    b += static_cast<std::size_t>(max_rows) * mk::padded_rank(rank) *
         sizeof(real_t);
    b += static_cast<std::size_t>(threads) * mk::padded_rank(rank) *
         sizeof(real_t);
  } else if (engine == "ttv-chain") {
    // Every worker thread owns a full working copy of the tuples: two index
    // arrays per mode (idx/idx2), two value arrays, and a sort permutation.
    const std::size_t per_thread =
        static_cast<std::size_t>(nnz) *
        (2 * order * sizeof(index_t) + 2 * sizeof(real_t) + sizeof(nnz_t));
    b += static_cast<std::size_t>(threads) * per_thread;
  } else if (engine == "csf") {
    for (mode_t m = 0; m < order; ++m) b += csf_tree_bytes(tensor, m, counter);
    b += static_cast<std::size_t>(threads) * order * rank * sizeof(real_t);
  } else if (engine == "csf1") {
    b += csf_tree_bytes(tensor, 0, counter);
    for (mode_t m = 1; m < order; ++m)
      b += scatter_plan_bytes(nnz, distinct(m));
    // Fiber-buffer reused across non-root modes (one R-vector per live
    // fiber, bounded by nnz).
    b += static_cast<std::size_t>(nnz) * rank * sizeof(real_t) /
         std::max<std::size_t>(1, order);
    b += static_cast<std::size_t>(threads) * order * rank * sizeof(real_t);
  } else {
    MDCP_CHECK_MSG(false, "predict_engine_footprint: unknown fixed engine '"
                              << engine << "'");
  }
  return b + privatized_envelope_bytes(tensor, rank, threads, sched_mode);
}

double predict_engine_seconds(const CooTensor& tensor,
                              const std::string& engine, index_t rank,
                              const CostModelParams& params) {
  const double n = static_cast<double>(tensor.nnz());
  const double r = static_cast<double>(rank);
  // Rank-blocked engines issue whole SIMD lanes, so their flop term uses
  // the padded rank; ttv-chain contracts column-at-a-time (no rank loop)
  // and keeps the true r.
  const double rv = static_cast<double>(mk::padded_rank(rank));
  const double ord = static_cast<double>(tensor.order());
  // Per-sweep (all modes) element work; the relative weights express the
  // well-known ordering coo ≈ bcoo > csf (fiber sharing) ≪ ttv-chain
  // (re-contracts the whole tensor per column).
  double flops = 0;
  if (engine == "coo" || engine == "bcoo") {
    flops = ord * n * rv * ord;
  } else if (engine == "alto") {
    // Same fused per-nonzero kernels as coo, plus the on-the-fly decode
    // (one shift + mask per mode per nonzero) and the partition-window
    // merge, charged as one extra op per mode per nonzero.
    flops = ord * n * (rv * ord + ord);
  } else if (engine == "csf" || engine == "csf1") {
    flops = ord * n * rv * 2;  // fiber sharing amortizes the Hadamard chain
  } else if (engine == "ttv-chain") {
    flops = ord * n * r * ord * 2;  // + per-column collapse sorting costs
  } else {
    MDCP_CHECK_MSG(false, "predict_engine_seconds: unknown fixed engine '"
                              << engine << "'");
  }
  // Per-nonzero index traffic: every engine streams order × 4-byte indices
  // except alto, whose packed key is 8 bytes (16 past the 64-bit budget).
  const double index_bytes =
      engine == "alto" ? (alto_key_bits(tensor) <= 64 ? 8.0 : 16.0)
                       : ord * sizeof(index_t);
  const double bytes =
      ord * n * (index_bytes + sizeof(real_t) + r * sizeof(real_t));
  return params.seconds_per_flop * flops + params.seconds_per_byte * bytes;
}

CostModelParams calibrate_cost_model(index_t rank, std::uint64_t seed) {
  CostModelParams params;
  // Probe: one flat-tree MTTKRP sweep on a small uniform 4-D tensor; fit
  // seconds_per_flop so that predicted == measured, holding the machine-
  // balance ratio between the flop and byte terms fixed.
  const shape_t shape{200, 200, 200, 200};
  const nnz_t probe_nnz = 40000;
  const CooTensor probe = generate_uniform(shape, probe_nnz, seed);
  auto engine = make_dtree_flat(probe);

  Rng rng(seed);
  std::vector<Matrix> factors;
  for (mode_t m = 0; m < probe.order(); ++m)
    factors.push_back(Matrix::random_uniform(probe.dim(m), rank, rng));

  Matrix out;
  engine->compute(0, factors, out);  // warm-up (symbolic already built)
  WallTimer t;
  const int reps = 5;
  for (int rep = 0; rep < reps; ++rep) {
    engine->invalidate_all();
    for (mode_t m = 0; m < probe.order(); ++m)
      engine->compute(m, factors, out);
  }
  const double measured = t.seconds() / reps;

  ProjectionCounter counter(probe);
  std::vector<mode_t> order(probe.order());
  for (mode_t m = 0; m < probe.order(); ++m) order[m] = m;
  const auto pred =
      predict_strategy(probe, TreeSpec::flat(order), rank, counter, params);
  if (pred.seconds_per_iteration > 0 && measured > 0) {
    const double scale = measured / pred.seconds_per_iteration;
    params.seconds_per_flop *= scale;
    params.seconds_per_byte *= scale;
  }
  return params;
}

}  // namespace mdcp
