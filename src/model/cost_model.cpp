#include "model/cost_model.hpp"

#include <algorithm>
#include <functional>

#include "dtree/dtree_engine.hpp"
#include "sched/schedule.hpp"
#include "tensor/generator.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace mdcp {

namespace {

mode_set_t spec_mode_set(const TreeSpec& spec) {
  mode_set_t s = 0;
  for (mode_t m : spec.modes) s |= mode_set_t{1} << m;
  return s;
}

}  // namespace

StrategyPrediction predict_strategy(const CooTensor& tensor,
                                    const TreeSpec& spec, index_t rank,
                                    ProjectionCounter& counter,
                                    const CostModelParams& params) {
  spec.validate(tensor.order());
  StrategyPrediction pred;
  const double r = static_cast<double>(rank);

  // Per-leaf path costs, used for the peak-value-memory bound.
  std::vector<std::size_t> path_value_bytes;

  const std::function<void(const TreeSpec&, mode_set_t, nnz_t, std::size_t)>
      visit = [&](const TreeSpec& node, mode_set_t parent_set,
                  nnz_t parent_tuples, std::size_t path_bytes_above) {
        const mode_set_t ms = spec_mode_set(node);
        const bool is_root = parent_set == 0;
        nnz_t tuples = is_root ? tensor.nnz() : counter.count(ms);
        if (!is_root) tuples = std::min(tuples, parent_tuples);

        std::size_t my_value_bytes = 0;
        if (!is_root) {
          NodeCostEstimate nc;
          nc.mode_set = ms;
          nc.tuples = tuples;
          nc.parent_tuples = parent_tuples;
          nc.delta = mode_count(parent_set & ~ms);
          const double pt = static_cast<double>(parent_tuples);
          nc.flops = pt * r * (nc.delta + 1);
          nc.bytes = pt * (r * sizeof(real_t)                 // parent row
                           + nc.delta * r * sizeof(real_t)    // factor rows
                           + sizeof(nnz_t))                   // reduction id
                     + static_cast<double>(tuples) * r * sizeof(real_t);
          pred.nodes.push_back(nc);
          pred.flops_per_iteration += nc.flops;
          pred.bytes_per_iteration += nc.bytes;

          // Privatized-reduction envelope: a launch above the work gate may
          // run split tiles at `threads` partials, adding a combine pass
          // (threads × tuples × R adds) and a transient partial-slab
          // footprint. The model lacks per-launch skew, so this is the
          // worst case the scheduler can choose, not a certainty.
          if (params.threads > 1 && parent_tuples >= sched::kMinPrivatizeWork) {
            const double red = static_cast<double>(params.threads) *
                               static_cast<double>(tuples) * r;
            pred.reduction_flops_per_iteration += red;
            pred.flops_per_iteration += red;
            pred.bytes_per_iteration +=
                static_cast<double>(params.threads) *
                static_cast<double>(tuples) * r * sizeof(real_t);
            pred.privatized_partial_bytes = std::max(
                pred.privatized_partial_bytes,
                sched::privatized_partial_bytes(
                    params.threads, static_cast<index_t>(tuples), rank));
          }

          // Persistent symbolic structures of this node.
          pred.symbolic_bytes +=
              static_cast<std::size_t>(tuples) *
                  (node.is_leaf() ? 1 : node.modes.size()) * sizeof(index_t) +
              static_cast<std::size_t>(parent_tuples) * sizeof(nnz_t) +
              (static_cast<std::size_t>(tuples) + 1) * sizeof(nnz_t);
          my_value_bytes =
              static_cast<std::size_t>(tuples) * rank * sizeof(real_t);
        }

        const std::size_t path_bytes = path_bytes_above + my_value_bytes;
        if (node.is_leaf()) {
          path_value_bytes.push_back(path_bytes);
          return;
        }
        for (const auto& c : node.children)
          visit(c, ms, tuples, path_bytes);
      };
  visit(spec, 0, 0, 0);

  pred.peak_value_bytes =
      path_value_bytes.empty()
          ? 0
          : *std::max_element(path_value_bytes.begin(), path_value_bytes.end());
  pred.seconds_per_iteration =
      params.seconds_per_flop * pred.flops_per_iteration +
      params.seconds_per_byte * pred.bytes_per_iteration;
  return pred;
}

CostModelParams calibrate_cost_model(index_t rank, std::uint64_t seed) {
  CostModelParams params;
  // Probe: one flat-tree MTTKRP sweep on a small uniform 4-D tensor; fit
  // seconds_per_flop so that predicted == measured, holding the machine-
  // balance ratio between the flop and byte terms fixed.
  const shape_t shape{200, 200, 200, 200};
  const nnz_t probe_nnz = 40000;
  const CooTensor probe = generate_uniform(shape, probe_nnz, seed);
  auto engine = make_dtree_flat(probe);

  Rng rng(seed);
  std::vector<Matrix> factors;
  for (mode_t m = 0; m < probe.order(); ++m)
    factors.push_back(Matrix::random_uniform(probe.dim(m), rank, rng));

  Matrix out;
  engine->compute(0, factors, out);  // warm-up (symbolic already built)
  WallTimer t;
  const int reps = 5;
  for (int rep = 0; rep < reps; ++rep) {
    engine->invalidate_all();
    for (mode_t m = 0; m < probe.order(); ++m)
      engine->compute(m, factors, out);
  }
  const double measured = t.seconds() / reps;

  ProjectionCounter counter(probe);
  std::vector<mode_t> order(probe.order());
  for (mode_t m = 0; m < probe.order(); ++m) order[m] = m;
  const auto pred =
      predict_strategy(probe, TreeSpec::flat(order), rank, counter, params);
  if (pred.seconds_per_iteration > 0 && measured > 0) {
    const double scale = measured / pred.seconds_per_iteration;
    params.seconds_per_flop *= scale;
    params.seconds_per_byte *= scale;
  }
  return params;
}

}  // namespace mdcp
