// Analytic per-iteration cost model for memoization strategies.
//
// Given a candidate tree shape, the model predicts — without building the
// tree — the work and memory of one CP-ALS iteration:
//
//   flops(node)  = |parent tuples| · R · (|δ| + 1)
//                  (each contributing parent tuple costs |δ| Hadamard
//                   row-multiplies plus one accumulate, over R columns)
//   bytes(node)  ≈ reads of the parent rows and factor rows + the reduction
//                  ids + the output write, all per iteration
//   peak memory  = max over root→leaf paths of the value matrices alive at
//                  once (the dimension-tree scheduling bound) + persistent
//                  symbolic index structures.
//
// Node tuple counts come from the ProjectionCounter sketches, so evaluating
// a strategy costs O(nnz) once per *distinct mode subset* across all
// candidates — orders of magnitude cheaper than running each candidate.
// Predicted seconds = α·flops + β·bytes; only the ratio α:β matters for
// ranking strategies, and `calibrate_cost_model` fits α empirically with a
// microprobe if desired.
#pragma once

#include <string>
#include <vector>

#include "dtree/dimension_tree.hpp"
#include "model/sketch.hpp"
#include "tensor/coo_tensor.hpp"
#include "util/workspace.hpp"

namespace mdcp {

struct CostModelParams {
  double seconds_per_flop = 1.5e-9;  ///< effective scalar FMA cost
  double seconds_per_byte = 1.5e-10; ///< effective memory-traffic cost
  /// Thread budget the kernels will run under. Above 1, the model charges
  /// each TTMV pass that clears the privatization work gate
  /// (sched::kMinPrivatizeWork) with the privatized-reduction worst case:
  /// threads × tuples × R combine flops and a threads × tuples × R × 8-byte
  /// partial-slab footprint. 1 (the default) reproduces the serial model.
  int threads = 1;
};

struct NodeCostEstimate {
  mode_set_t mode_set = 0;
  nnz_t tuples = 0;         ///< estimated projected-tuple count
  nnz_t parent_tuples = 0;  ///< estimated tuple count of the parent
  int delta = 0;            ///< modes contracted parent→node
  double flops = 0;
  double bytes = 0;
};

struct StrategyPrediction {
  /// Flop terms are vector-width-aware: the shared microkernel issues whole
  /// SIMD lanes, so ranks are charged at mk::padded_rank(r) (e.g. R=17 costs
  /// 24 lanes per row op). Byte terms use the true rank.
  double flops_per_iteration = 0;
  double bytes_per_iteration = 0;
  double seconds_per_iteration = 0;
  std::size_t symbolic_bytes = 0;    ///< persistent index + reduction memory
  std::size_t peak_value_bytes = 0;  ///< live value matrices (schedule bound)
  /// Combine-pass flops charged for launches that may run the privatized
  /// schedule (already included in flops_per_iteration). 0 at threads = 1.
  double reduction_flops_per_iteration = 0;
  /// Peak per-thread partial-output slab footprint across launches (one
  /// launch's slabs live at a time). 0 at threads = 1.
  std::size_t privatized_partial_bytes = 0;
  std::vector<NodeCostEstimate> nodes;

  std::size_t total_memory_bytes() const {
    return symbolic_bytes + peak_value_bytes + privatized_partial_bytes;
  }
};

/// Predicts one CP-ALS iteration of MTTKRPs under `spec` at rank `rank`.
StrategyPrediction predict_strategy(const CooTensor& tensor,
                                    const TreeSpec& spec, index_t rank,
                                    ProjectionCounter& counter,
                                    const CostModelParams& params = {});

/// Coarse resident-footprint envelope for one of the fixed (non-dimension-
/// tree) engines — the degradation-chain side of the model. Covers the
/// engine's persistent structures (scatter plans, CSF tries, per-thread
/// tuple copies, linearized key streams) plus the worst-case transient the
/// parallel schedule may claim (privatized partial-output slabs, partition
/// accumulator windows). `engine` is a registry name:
/// "coo", "bcoo", "alto", "ttv-chain", "csf", or "csf1". A ProjectionCounter
/// sharpens the CSF/scatter-plan estimates with distinct-prefix counts;
/// without one, per-level fiber counts fall back to the nnz upper bound.
/// `sched_mode` narrows the envelope: pinning owner-computes drops the
/// privatized-slab term, which is how the AutoEngine keeps the last resorts
/// of its chain viable under tight budgets.
std::size_t predict_engine_footprint(
    const CooTensor& tensor, const std::string& engine, index_t rank,
    ProjectionCounter* counter = nullptr, const CostModelParams& params = {},
    ScheduleMode sched_mode = ScheduleMode::kAuto);

/// Coarse per-iteration time prediction for the same fixed engines, on the
/// same α·flops + β·bytes scale as predict_strategy — comparable enough to
/// rank the degradation chain against the dtree candidates. One CP-ALS
/// iteration = one MTTKRP per mode.
double predict_engine_seconds(const CooTensor& tensor,
                              const std::string& engine, index_t rank,
                              const CostModelParams& params = {});

/// Fits `seconds_per_flop` by timing a small synthetic contraction probe on
/// this machine; `seconds_per_byte` keeps the default machine-balance ratio.
CostModelParams calibrate_cost_model(index_t rank = 16,
                                     std::uint64_t seed = 7);

}  // namespace mdcp
