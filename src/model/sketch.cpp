#include "model/sketch.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mdcp {

std::uint64_t projection_hash(const CooTensor& t, nnz_t i, mode_set_t modes,
                              std::uint64_t seed) {
  std::uint64_t h = seed;
  for (mode_t m = 0; m < t.order(); ++m) {
    if (!mode_in(modes, m)) continue;
    h = splitmix64(h ^ (static_cast<std::uint64_t>(t.index(m, i)) |
                        (static_cast<std::uint64_t>(m) << 40)));
  }
  return h;
}

nnz_t exact_distinct_projections(const CooTensor& t, mode_set_t modes) {
  if (t.nnz() == 0) return 0;
  if ((modes & all_modes(t.order())) == 0) return 1;  // scalar projection
  std::vector<std::uint64_t> hashes(t.nnz());
  for (nnz_t i = 0; i < t.nnz(); ++i) hashes[i] = projection_hash(t, i, modes);
  std::sort(hashes.begin(), hashes.end());
  nnz_t distinct = 1;
  for (nnz_t i = 1; i < hashes.size(); ++i)
    distinct += hashes[i] != hashes[i - 1];
  return distinct;
}

nnz_t kmv_distinct_projections(const CooTensor& t, mode_set_t modes,
                               unsigned k, std::uint64_t seed) {
  MDCP_CHECK(k >= 2);
  if (t.nnz() == 0) return 0;
  if ((modes & all_modes(t.order())) == 0) return 1;

  // Ordered set of the k smallest *distinct* hashes seen. Duplicates must be
  // skipped, not inserted — otherwise copies of small hashes crowd out larger
  // distinct values and the estimate collapses.
  std::set<std::uint64_t> mins;
  for (nnz_t i = 0; i < t.nnz(); ++i) {
    const std::uint64_t h = projection_hash(t, i, modes, seed);
    if (mins.size() < k) {
      mins.insert(h);
    } else if (h < *mins.rbegin() && !mins.contains(h)) {
      mins.insert(h);
      mins.erase(std::prev(mins.end()));
    }
  }

  if (mins.size() < k) return static_cast<nnz_t>(mins.size());  // saw them all
  const long double kth = static_cast<long double>(*mins.rbegin());
  MDCP_CHECK(kth > 0);
  const long double est =
      (static_cast<long double>(k) - 1) * 18446744073709551616.0L / kth;
  return static_cast<nnz_t>(std::min<long double>(
      est, static_cast<long double>(t.nnz())));
}

ProjectionCounter::ProjectionCounter(const CooTensor& tensor,
                                     nnz_t exact_threshold, unsigned kmv_k)
    : tensor_(tensor), exact_threshold_(exact_threshold), kmv_k_(kmv_k) {}

nnz_t ProjectionCounter::count(mode_set_t modes) {
  modes &= all_modes(tensor_.order());
  const auto it = cache_.find(modes);
  if (it != cache_.end()) return it->second;
  ++passes_;
  const nnz_t result =
      (tensor_.nnz() <= exact_threshold_)
          ? exact_distinct_projections(tensor_, modes)
          : kmv_distinct_projections(tensor_, modes, kmv_k_);
  cache_.emplace(modes, result);
  return result;
}

}  // namespace mdcp
