// Distinct-count estimation for projected index tuples.
//
// The cost model needs |π_S(nnz(X))| — the number of distinct tuples when
// the nonzeros are projected onto a mode subset S — for every candidate tree
// node. This equals the tuple count of the corresponding memoized
// intermediate, so it determines both the flops and the memory of a
// strategy. Computing it by sorting (as the symbolic pass does) would cost
// as much as building the tree; instead we hash every projected tuple and
// either count distinct hashes exactly (small tensors) or use a k-minimum-
// values (KMV) sketch (large tensors) — a single O(nnz) pass per subset,
// with results cached per subset across all candidate strategies.
#pragma once

#include <unordered_map>

#include "tensor/coo_tensor.hpp"
#include "util/types.hpp"

namespace mdcp {

/// 64-bit hash of the projection of nonzero i onto `modes`.
std::uint64_t projection_hash(const CooTensor& t, nnz_t i, mode_set_t modes,
                              std::uint64_t seed = 0x9e3779b9ULL);

/// Exact distinct-projection count via hashing + sort. (Collisions would
/// undercount with probability ~nnz²/2⁶⁴ — negligible at any realistic size.)
nnz_t exact_distinct_projections(const CooTensor& t, mode_set_t modes);

/// KMV estimate of the distinct-projection count using the k smallest
/// distinct hashes: D ≈ (k−1)·2⁶⁴ / h_(k). Relative error ~1/√k.
nnz_t kmv_distinct_projections(const CooTensor& t, mode_set_t modes,
                               unsigned k = 1024,
                               std::uint64_t seed = 0x9e3779b9ULL);

/// Caching facade: exact below `exact_threshold` nonzeros, KMV above.
/// Results are memoized per mode subset, so enumerating many tree shapes
/// that share nodes (e.g. all BDT orderings) costs one pass per subset.
class ProjectionCounter {
 public:
  explicit ProjectionCounter(const CooTensor& tensor,
                             nnz_t exact_threshold = nnz_t{1} << 21,
                             unsigned kmv_k = 1024);

  /// Estimated (or exact) number of distinct projected tuples onto `modes`.
  nnz_t count(mode_set_t modes);

  /// Number of cache misses so far (test/diagnostic hook).
  std::size_t passes() const noexcept { return passes_; }

 private:
  const CooTensor& tensor_;
  nnz_t exact_threshold_;
  unsigned kmv_k_;
  std::unordered_map<mode_set_t, nnz_t> cache_;
  std::size_t passes_ = 0;
};

}  // namespace mdcp
