#include "model/strategy.hpp"

#include <algorithm>
#include <numeric>
#include <set>

#include "util/error.hpp"

namespace mdcp {

std::vector<std::vector<mode_t>> candidate_mode_orders(
    const CooTensor& tensor) {
  const mode_t order = tensor.order();
  std::vector<mode_t> natural(order);
  std::iota(natural.begin(), natural.end(), mode_t{0});

  auto asc = natural;
  std::stable_sort(asc.begin(), asc.end(), [&](mode_t a, mode_t b) {
    return tensor.dim(a) < tensor.dim(b);
  });
  auto desc = natural;
  std::stable_sort(desc.begin(), desc.end(), [&](mode_t a, mode_t b) {
    return tensor.dim(a) > tensor.dim(b);
  });

  std::vector<std::vector<mode_t>> orders{natural};
  if (asc != natural) orders.push_back(asc);
  if (desc != natural && desc != asc) orders.push_back(desc);
  return orders;
}

TreeSpec greedy_tree(const CooTensor& tensor, ProjectionCounter& counter) {
  const mode_t order = tensor.order();
  MDCP_CHECK(order >= 2);
  struct Group {
    TreeSpec spec;
    mode_set_t set = 0;
  };
  std::vector<Group> groups;
  for (mode_t m = 0; m < order; ++m) {
    Group g;
    g.spec.modes = {m};
    g.set = mode_set_t{1} << m;
    groups.push_back(std::move(g));
  }

  const auto merge = [&](std::size_t i, std::size_t j) {
    Group merged;
    merged.set = groups[i].set | groups[j].set;
    merged.spec.modes = groups[i].spec.modes;
    merged.spec.modes.insert(merged.spec.modes.end(),
                             groups[j].spec.modes.begin(),
                             groups[j].spec.modes.end());
    std::sort(merged.spec.modes.begin(), merged.spec.modes.end());
    merged.spec.children.push_back(std::move(groups[i].spec));
    merged.spec.children.push_back(std::move(groups[j].spec));
    groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(j));
    groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(i));
    groups.push_back(std::move(merged));
  };

  while (groups.size() > 2) {
    std::size_t bi = 0, bj = 1;
    nnz_t best = ~nnz_t{0};
    for (std::size_t i = 0; i < groups.size(); ++i) {
      for (std::size_t j = i + 1; j < groups.size(); ++j) {
        const nnz_t c = counter.count(groups[i].set | groups[j].set);
        if (c < best) {
          best = c;
          bi = i;
          bj = j;
        }
      }
    }
    merge(bi, bj);
  }

  TreeSpec root;
  for (mode_t m = 0; m < order; ++m) root.modes.push_back(m);
  root.children.push_back(std::move(groups[0].spec));
  root.children.push_back(std::move(groups[1].spec));
  return root;
}

std::vector<Strategy> enumerate_strategies(const CooTensor& tensor,
                                           ProjectionCounter* counter) {
  const mode_t order = tensor.order();
  MDCP_CHECK_MSG(order >= 2, "strategies need order >= 2");

  const char* order_tag[] = {"nat", "asc", "desc"};
  const auto orders = candidate_mode_orders(tensor);

  std::vector<Strategy> out;
  std::set<std::string> seen;
  const auto add = [&](TreeSpec spec, std::string strategy_name) {
    const std::string key = spec.to_string();
    if (!seen.insert(key).second) return;
    out.push_back({std::move(spec), std::move(strategy_name)});
  };

  for (std::size_t oi = 0; oi < orders.size(); ++oi) {
    const auto& mo = orders[oi];
    const std::string tag =
        oi < 3 ? order_tag[oi] : ("o" + std::to_string(oi));
    add(TreeSpec::flat(mo), "flat/" + tag);
    if (order >= 3) {
      for (mode_t s = 1; s < order; ++s) {
        add(TreeSpec::three_level(mo, s),
            "3lvl@" + std::to_string(s) + "/" + tag);
      }
    }
    add(TreeSpec::bdt(mo), "bdt/" + tag);
  }
  if (counter != nullptr && order >= 3) {
    add(greedy_tree(tensor, *counter), "greedy");
  }
  return out;
}

}  // namespace mdcp
