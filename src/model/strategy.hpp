// Candidate-strategy enumeration for the model-driven tuner.
//
// A strategy = a tree shape × a mode ordering. The enumeration covers the
// schemes of the sparse-CP literature:
//   * flat            (no memoization across modes; SPLATT-like work)
//   * three-level(s)  (one memoized split at every position s — the
//                      two-group scheme, generalized over split points)
//   * full BDT        (the dimension-tree scheme)
// crossed with mode orderings {natural, dimensions ascending, dimensions
// descending}. Orderings matter because they decide which mode subsets get
// memoized, and real tensors contract very differently across mode subsets.
#pragma once

#include <string>
#include <vector>

#include "dtree/dimension_tree.hpp"
#include "model/sketch.hpp"
#include "tensor/coo_tensor.hpp"

namespace mdcp {

struct Strategy {
  TreeSpec spec;
  std::string name;  ///< e.g. "bdt/asc", "3lvl@2/nat", "flat"
};

/// All candidate strategies for this tensor (deduplicated by spec string).
/// If a ProjectionCounter is supplied, the model-driven *greedy* tree (see
/// greedy_tree) is added to the candidate set.
std::vector<Strategy> enumerate_strategies(const CooTensor& tensor,
                                           ProjectionCounter* counter = nullptr);

/// The three canonical mode orderings.
std::vector<std::vector<mode_t>> candidate_mode_orders(const CooTensor& tensor);

/// Model-driven tree construction: agglomeratively merges the pair of mode
/// groups whose union projection has the fewest distinct tuples (i.e. whose
/// joint contraction collapses the most), producing a binary tree that
/// memoizes the most-collapsing subsets deepest. This searches far beyond
/// the canonical orderings at the cost of O(N³) sketch queries.
TreeSpec greedy_tree(const CooTensor& tensor, ProjectionCounter& counter);

}  // namespace mdcp
