#include "model/tuner.hpp"

#include <algorithm>
#include <new>
#include <sstream>
#include <string_view>

#include "mttkrp/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace mdcp {

namespace {

// Publishes the tuner's decision so a later measured run can be compared
// against the prediction (cp_als fills in the measured side and the error
// ratios; see "tuner.*" gauges in docs/observability.md).
void record_selection(const TunerReport& report) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("tuner.selections").add();
  const auto& win = report.winner();
  reg.gauge("tuner.predicted_seconds_per_iter")
      .set(win.prediction.seconds_per_iteration);
  reg.gauge("tuner.predicted_memory_bytes")
      .set(static_cast<double>(win.prediction.total_memory_bytes()));
}

// The empirical overlay: once the history store holds enough trusted
// measurements of a strategy for this exact (tensor fingerprint, rank),
// prefer the measured winner over the analytic ranking. Only budget-feasible
// candidates are eligible — a measured-fast plan that no longer fits the
// budget must not resurrect itself. Returns true when the override fired.
bool apply_history_overlay(const CooTensor& tensor, index_t rank,
                           TunerReport& report, const TunerOptions& options) {
  if (!options.use_history || options.history == nullptr ||
      options.history->empty())
    return false;
  auto& reg = obs::MetricsRegistry::instance();
  const std::uint64_t fp = obs::tensor_fingerprint(tensor);
  const auto best = options.history->measured_best(
      fp, static_cast<std::uint32_t>(rank), options.trust);
  if (best) {
    for (std::size_t i = 0; i < report.ranked.size(); ++i) {
      if (report.ranked[i].fits_budget &&
          report.ranked[i].strategy.name == best->strategy) {
        MDCP_TRACE_SPAN("tuner.history", "candidate",
                        static_cast<std::int64_t>(i));
        report.chosen = i;
        report.plan_source = "history";
        reg.counter("tuner.history_hits").add();
        reg.gauge("tuner.history_weight").set(best->weight);
        return true;
      }
    }
  }
  reg.counter("tuner.history_misses").add();
  return false;
}

}  // namespace

TunerReport select_strategy(const CooTensor& tensor, index_t rank,
                            std::size_t memory_budget_bytes,
                            const CostModelParams& params,
                            const TunerOptions& options) {
  MDCP_CHECK(rank > 0);
  MDCP_TRACE_SPAN("tuner.select", "rank", static_cast<std::int64_t>(rank));
  ProjectionCounter counter(tensor);
  TunerReport report;
  for (auto& strat : enumerate_strategies(tensor, &counter)) {
    RankedStrategy rs;
    rs.prediction = predict_strategy(tensor, strat.spec, rank, counter, params);
    rs.fits_budget = memory_budget_bytes == 0 ||
                     rs.prediction.total_memory_bytes() <= memory_budget_bytes;
    rs.strategy = std::move(strat);
    report.ranked.push_back(std::move(rs));
  }
  std::stable_sort(report.ranked.begin(), report.ranked.end(),
                   [](const RankedStrategy& a, const RankedStrategy& b) {
                     return a.prediction.seconds_per_iteration <
                            b.prediction.seconds_per_iteration;
                   });

  // First (fastest) strategy that fits the budget; if none fit, fall back to
  // the minimum-memory one.
  report.chosen = report.ranked.size();
  for (std::size_t i = 0; i < report.ranked.size(); ++i) {
    if (report.ranked[i].fits_budget) {
      report.chosen = i;
      break;
    }
  }
  if (report.chosen == report.ranked.size()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < report.ranked.size(); ++i) {
      if (report.ranked[i].prediction.total_memory_bytes() <
          report.ranked[best].prediction.total_memory_bytes())
        best = i;
    }
    report.chosen = best;
  }
  apply_history_overlay(tensor, rank, report, options);
  record_selection(report);
  return report;
}

TunerReport select_strategy_probed(const CooTensor& tensor, index_t rank,
                                   std::size_t memory_budget_bytes,
                                   const CostModelParams& params,
                                   int shortlist, KernelContext ctx,
                                   const TunerOptions& options) {
  MDCP_CHECK(shortlist > 0);
  TunerReport report =
      select_strategy(tensor, rank, memory_budget_bytes, params, options);
  const std::size_t history_choice =
      std::string_view(report.plan_source) == "history" ? report.chosen
                                                        : report.ranked.size();

  // Probe inputs: fixed-seed factors (probe time, not output, depends on
  // them) shared by all candidates.
  Rng rng(0xbeefULL);
  std::vector<Matrix> factors;
  for (mode_t m = 0; m < tensor.order(); ++m)
    factors.push_back(Matrix::random_uniform(tensor.dim(m), rank, rng));

  ctx.stats = nullptr;  // probe sweeps are tuning overhead, not kernel work
  double best_time = -1;
  std::size_t best_idx = report.chosen;
  int probed = 0;
  for (std::size_t i = 0; i < report.ranked.size(); ++i) {
    if (!report.ranked[i].fits_budget) continue;
    // A history override outside the model's shortlist is still probed: the
    // measured winner must defend its title against the shortlist, and the
    // shortlist must beat it on the clock to take the plan back.
    if (probed >= shortlist && i != history_choice) continue;
    ++probed;
    MDCP_TRACE_SPAN("tuner.probe", "candidate",
                    static_cast<std::int64_t>(i));
    try {
      DTreeMttkrpEngine engine(report.ranked[i].strategy.spec,
                               report.ranked[i].strategy.name, ctx);
      engine.prepare(tensor, rank);
      Matrix out;
      // One warm sweep, then the minimum of two timed sweeps (the minimum is
      // the least-noisy estimator of intrinsic cost on a shared host).
      double candidate = -1;
      for (int pass = 0; pass < 3; ++pass) {
        WallTimer t;
        for (mode_t m = 0; m < tensor.order(); ++m) {
          engine.compute(m, factors, out);
          engine.factor_updated(m);
        }
        const double secs = t.seconds();
        if (pass > 0 && (candidate < 0 || secs < candidate)) candidate = secs;
      }
      if (best_time < 0 || candidate < best_time) {
        best_time = candidate;
        best_idx = i;
      }
    } catch (const budget_error&) {
      // The model under-estimated this candidate's scratch: it tripped the
      // arena budget mid-probe. Demote it so selection cannot pick it.
      report.ranked[i].fits_budget = false;
    } catch (const std::bad_alloc&) {
      report.ranked[i].fits_budget = false;
    }
  }
  report.chosen = best_idx;
  if (!report.ranked[report.chosen].fits_budget) {
    // The probed winner (or its fallback) got demoted — re-run the static
    // selection rule over the updated feasibility flags.
    report.chosen = report.ranked.size();
    for (std::size_t i = 0; i < report.ranked.size(); ++i) {
      if (report.ranked[i].fits_budget) {
        report.chosen = i;
        break;
      }
    }
    if (report.chosen == report.ranked.size()) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < report.ranked.size(); ++i) {
        if (report.ranked[i].prediction.total_memory_bytes() <
            report.ranked[best].prediction.total_memory_bytes())
          best = i;
      }
      report.chosen = best;
    }
  }
  // The override only survives if probing kept the history pick on top.
  report.plan_source = report.chosen == history_choice ? "history" : "model";
  record_selection(report);  // re-publish: probing may move the winner
  return report;
}

AutoEngine::AutoEngine(bool probed, std::size_t memory_budget_bytes,
                       CostModelParams params, int shortlist, KernelContext ctx,
                       TunerOptions tuner_options)
    : MttkrpEngine(ctx),
      probed_(probed),
      memory_budget_bytes_(memory_budget_bytes),
      params_(params),
      shortlist_(shortlist),
      tuner_options_(std::move(tuner_options)) {}

void AutoEngine::do_prepare(index_t rank) {
  MDCP_CHECK_MSG(rank > 0,
                 "the auto engine needs a rank hint: prepare(tensor, rank)");
  // A budget may arrive through the constructor or through the context;
  // honor the tighter of the two.
  if (context().mem_budget != 0 &&
      (memory_budget_bytes_ == 0 || context().mem_budget < memory_budget_bytes_))
    memory_budget_bytes_ = context().mem_budget;
  KernelContext inner_ctx = context();
  inner_ctx.stats = nullptr;  // outer NVI already records totals
  inner_ctx.mem_budget = memory_budget_bytes_;
  // Predict under the thread budget the kernels will actually run with, so
  // the privatization memory/flop terms participate in strategy ranking.
  if (params_.threads <= 1) params_.threads = effective_threads();
  report_ = probed_ ? select_strategy_probed(tensor(), rank,
                                             memory_budget_bytes_, params_,
                                             shortlist_, inner_ctx,
                                             tuner_options_)
                    : select_strategy(tensor(), rank, memory_budget_bytes_,
                                      params_, tuner_options_);
  record_plan_source(report_.plan_source);
  const auto& win = report_.winner();
  const char* prefix = probed_ ? "auto+probe:" : "auto:";

  // Plan the degradation chain: the dtree winner first, then (under a
  // budget) the fixed fallbacks in decreasing-speed order. Fallbacks whose
  // privatized-schedule envelope alone blows the budget are retried with
  // owner-computes pinned before being ruled out.
  chain_.clear();
  chain_pos_ = 0;
  ChainEntry head;
  head.engine = "";
  head.label = prefix + win.strategy.name;
  head.predicted_bytes = win.prediction.total_memory_bytes();
  head.fits_budget = win.fits_budget;
  chain_.push_back(std::move(head));

  if (memory_budget_bytes_ != 0) {
    ProjectionCounter counter(tensor());
    for (const char* fallback : {"alto", "ttv-chain", "csf", "coo"}) {
      ChainEntry e;
      e.engine = fallback;
      e.label = std::string(prefix) + fallback;
      e.predicted_bytes = predict_engine_footprint(
          tensor(), fallback, rank, &counter, params_, ScheduleMode::kAuto);
      e.fits_budget = e.predicted_bytes <= memory_budget_bytes_;
      if (!e.fits_budget) {
        const std::size_t owner_bytes = predict_engine_footprint(
            tensor(), fallback, rank, &counter, params_, ScheduleMode::kOwner);
        if (owner_bytes <= memory_budget_bytes_) {
          e.predicted_bytes = owner_bytes;
          e.fits_budget = true;
          e.forced_sched = ScheduleMode::kOwner;
        }
      }
      chain_.push_back(std::move(e));
    }
  }

  // Start at the first level the model predicts in budget, recording every
  // skip. If no level fits, run the last (cheapest) one anyway — the arena
  // budget still backstops it at run time.
  while (chain_pos_ + 1 < chain_.size() && !chain_[chain_pos_].fits_budget) {
    note_degradation(chain_pos_, chain_pos_ + 1, "predicted-over-budget",
                     /*at_prepare=*/true);
    ++chain_pos_;
  }
  build_inner(rank);
}

ScheduleMode AutoEngine::effective_inner_sched() const noexcept {
  // An explicit caller override always wins; otherwise the chain entry may
  // pin owner-computes to keep its footprint inside the budget.
  return context().sched != ScheduleMode::kAuto
             ? context().sched
             : chain_[chain_pos_].forced_sched;
}

void AutoEngine::build_inner(index_t rank) {
  KernelContext inner_ctx = context();
  inner_ctx.stats = nullptr;
  inner_ctx.mem_budget = memory_budget_bytes_;
  for (;;) {
    const ChainEntry& entry = chain_[chain_pos_];
    KernelContext ctx = inner_ctx;
    ctx.sched = effective_inner_sched();
    try {
      if (entry.engine.empty()) {
        const auto& win = report_.winner();
        inner_ = std::make_unique<DTreeMttkrpEngine>(win.strategy.spec,
                                                     entry.label, ctx);
      } else {
        inner_ = make_engine(entry.engine, ctx);
      }
      inner_->prepare(tensor(), rank);
      return;
    } catch (const budget_error&) {
      if (chain_pos_ + 1 >= chain_.size()) throw;
      note_degradation(chain_pos_, chain_pos_ + 1, "budget-exceeded",
                       /*at_prepare=*/false);
      ++chain_pos_;
    } catch (const std::bad_alloc&) {
      if (chain_pos_ + 1 >= chain_.size()) {
        std::ostringstream os;
        os << "allocation failed preparing engine '" << entry.label
           << "' and the degradation chain is exhausted";
        throw budget_error(os.str(), entry.predicted_bytes,
                           memory_budget_bytes_);
      }
      note_degradation(chain_pos_, chain_pos_ + 1, "alloc-failure",
                       /*at_prepare=*/false);
      ++chain_pos_;
    }
  }
}

void AutoEngine::note_degradation(std::size_t from, std::size_t to,
                                  const char* reason, bool at_prepare) {
  MDCP_TRACE_SPAN("engine.degradation", "level",
                  static_cast<std::int64_t>(to));
  DegradationEvent ev;
  ev.from = chain_[from].label;
  ev.to = chain_[to].label;
  ev.reason = reason;
  ev.predicted_bytes = chain_[from].predicted_bytes;
  ev.budget_bytes = memory_budget_bytes_;
  ev.at_prepare = at_prepare;
  degradations_.push_back(std::move(ev));
  record_degradation(reason);
  if (inner_)
    retired_peak_bytes_ =
        std::max(retired_peak_bytes_, inner_->peak_memory_bytes());
}

void AutoEngine::do_compute(mode_t mode, const std::vector<Matrix>& factors,
                            Matrix& out) {
  for (;;) {
    const KernelStats before = inner_->stats();
    inner_->context().sched = effective_inner_sched();  // forward overrides
    try {
      inner_->compute(mode, factors, out);
    } catch (const budget_error&) {
      if (chain_pos_ + 1 >= chain_.size()) throw;
      note_degradation(chain_pos_, chain_pos_ + 1, "budget-exceeded",
                       /*at_prepare=*/false);
      ++chain_pos_;
      build_inner(rank_hint());
      continue;
    } catch (const std::bad_alloc&) {
      if (chain_pos_ + 1 >= chain_.size()) {
        std::ostringstream os;
        os << "allocation failed in engine '" << chain_[chain_pos_].label
           << "' and the degradation chain is exhausted";
        throw budget_error(os.str(), chain_[chain_pos_].predicted_bytes,
                           memory_budget_bytes_);
      }
      note_degradation(chain_pos_, chain_pos_ + 1, "alloc-failure",
                       /*at_prepare=*/false);
      ++chain_pos_;
      build_inner(rank_hint());
      continue;
    }
    const KernelStats& after = inner_->stats();
    count_flops(after.flops - before.flops);
    if (after.last_schedule != 255) {
      // Mirror the inner engine's schedule telemetry into this engine's
      // KernelStats; the inner launches already bumped the global metrics.
      record_schedule({static_cast<sched::Schedule>(after.last_schedule),
                       after.last_tiles, 0.0, 0, after.last_sched_reason},
                      after.owner_launches - before.owner_launches,
                      after.privatized_launches - before.privatized_launches,
                      /*bump_metrics=*/false);
    }
    record_tile(after.last_tile);
    return;
  }
}

void AutoEngine::factor_updated(mode_t mode) {
  if (inner_) inner_->factor_updated(mode);
}

void AutoEngine::invalidate_all() {
  if (inner_) inner_->invalidate_all();
}

std::string AutoEngine::name() const {
  if (inner_) return inner_->name();
  return probed_ ? "auto+probe" : "auto";
}

std::size_t AutoEngine::memory_bytes() const {
  return inner_ ? inner_->memory_bytes() : 0;
}

std::size_t AutoEngine::peak_memory_bytes() const {
  return std::max(retired_peak_bytes_,
                  inner_ ? inner_->peak_memory_bytes() : 0);
}

std::unique_ptr<MttkrpEngine> make_auto_engine(const CooTensor& tensor,
                                               index_t rank,
                                               std::size_t memory_budget_bytes,
                                               const CostModelParams& params) {
  auto engine = std::make_unique<AutoEngine>(/*probed=*/false,
                                             memory_budget_bytes, params, 3);
  engine->prepare(tensor, rank);
  return engine;
}

std::unique_ptr<MttkrpEngine> make_probed_engine(
    const CooTensor& tensor, index_t rank, std::size_t memory_budget_bytes,
    const CostModelParams& params, int shortlist) {
  auto engine = std::make_unique<AutoEngine>(/*probed=*/true,
                                             memory_budget_bytes, params,
                                             shortlist);
  engine->prepare(tensor, rank);
  return engine;
}

}  // namespace mdcp
