#include "model/tuner.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace mdcp {

namespace {

// Publishes the tuner's decision so a later measured run can be compared
// against the prediction (cp_als fills in the measured side and the error
// ratios; see "tuner.*" gauges in docs/observability.md).
void record_selection(const TunerReport& report) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("tuner.selections").add();
  const auto& win = report.winner();
  reg.gauge("tuner.predicted_seconds_per_iter")
      .set(win.prediction.seconds_per_iteration);
  reg.gauge("tuner.predicted_memory_bytes")
      .set(static_cast<double>(win.prediction.total_memory_bytes()));
}

}  // namespace

TunerReport select_strategy(const CooTensor& tensor, index_t rank,
                            std::size_t memory_budget_bytes,
                            const CostModelParams& params) {
  MDCP_CHECK(rank > 0);
  MDCP_TRACE_SPAN("tuner.select", "rank", static_cast<std::int64_t>(rank));
  ProjectionCounter counter(tensor);
  TunerReport report;
  for (auto& strat : enumerate_strategies(tensor, &counter)) {
    RankedStrategy rs;
    rs.prediction = predict_strategy(tensor, strat.spec, rank, counter, params);
    rs.fits_budget = memory_budget_bytes == 0 ||
                     rs.prediction.total_memory_bytes() <= memory_budget_bytes;
    rs.strategy = std::move(strat);
    report.ranked.push_back(std::move(rs));
  }
  std::stable_sort(report.ranked.begin(), report.ranked.end(),
                   [](const RankedStrategy& a, const RankedStrategy& b) {
                     return a.prediction.seconds_per_iteration <
                            b.prediction.seconds_per_iteration;
                   });

  // First (fastest) strategy that fits the budget; if none fit, fall back to
  // the minimum-memory one.
  report.chosen = report.ranked.size();
  for (std::size_t i = 0; i < report.ranked.size(); ++i) {
    if (report.ranked[i].fits_budget) {
      report.chosen = i;
      break;
    }
  }
  if (report.chosen == report.ranked.size()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < report.ranked.size(); ++i) {
      if (report.ranked[i].prediction.total_memory_bytes() <
          report.ranked[best].prediction.total_memory_bytes())
        best = i;
    }
    report.chosen = best;
  }
  record_selection(report);
  return report;
}

TunerReport select_strategy_probed(const CooTensor& tensor, index_t rank,
                                   std::size_t memory_budget_bytes,
                                   const CostModelParams& params,
                                   int shortlist, KernelContext ctx) {
  MDCP_CHECK(shortlist > 0);
  TunerReport report =
      select_strategy(tensor, rank, memory_budget_bytes, params);

  // Probe inputs: fixed-seed factors (probe time, not output, depends on
  // them) shared by all candidates.
  Rng rng(0xbeefULL);
  std::vector<Matrix> factors;
  for (mode_t m = 0; m < tensor.order(); ++m)
    factors.push_back(Matrix::random_uniform(tensor.dim(m), rank, rng));

  ctx.stats = nullptr;  // probe sweeps are tuning overhead, not kernel work
  double best_time = -1;
  std::size_t best_idx = report.chosen;
  int probed = 0;
  for (std::size_t i = 0; i < report.ranked.size() && probed < shortlist;
       ++i) {
    if (!report.ranked[i].fits_budget) continue;
    ++probed;
    MDCP_TRACE_SPAN("tuner.probe", "candidate",
                    static_cast<std::int64_t>(i));
    DTreeMttkrpEngine engine(report.ranked[i].strategy.spec,
                             report.ranked[i].strategy.name, ctx);
    engine.prepare(tensor, rank);
    Matrix out;
    // One warm sweep, then the minimum of two timed sweeps (the minimum is
    // the least-noisy estimator of intrinsic cost on a shared host).
    double candidate = -1;
    for (int pass = 0; pass < 3; ++pass) {
      WallTimer t;
      for (mode_t m = 0; m < tensor.order(); ++m) {
        engine.compute(m, factors, out);
        engine.factor_updated(m);
      }
      const double secs = t.seconds();
      if (pass > 0 && (candidate < 0 || secs < candidate)) candidate = secs;
    }
    if (best_time < 0 || candidate < best_time) {
      best_time = candidate;
      best_idx = i;
    }
  }
  report.chosen = best_idx;
  record_selection(report);  // re-publish: probing may move the winner
  return report;
}

AutoEngine::AutoEngine(bool probed, std::size_t memory_budget_bytes,
                       CostModelParams params, int shortlist, KernelContext ctx)
    : MttkrpEngine(ctx),
      probed_(probed),
      memory_budget_bytes_(memory_budget_bytes),
      params_(params),
      shortlist_(shortlist) {}

void AutoEngine::do_prepare(index_t rank) {
  MDCP_CHECK_MSG(rank > 0,
                 "the auto engine needs a rank hint: prepare(tensor, rank)");
  KernelContext inner_ctx = context();
  inner_ctx.stats = nullptr;  // outer NVI already records totals
  // Predict under the thread budget the kernels will actually run with, so
  // the privatization memory/flop terms participate in strategy ranking.
  if (params_.threads <= 1) params_.threads = effective_threads();
  report_ = probed_ ? select_strategy_probed(tensor(), rank,
                                             memory_budget_bytes_, params_,
                                             shortlist_, inner_ctx)
                    : select_strategy(tensor(), rank, memory_budget_bytes_,
                                      params_);
  const auto& win = report_.winner();
  const std::string label =
      (probed_ ? "auto+probe:" : "auto:") + win.strategy.name;
  inner_ = std::make_unique<DTreeMttkrpEngine>(win.strategy.spec, label,
                                               inner_ctx);
  inner_->prepare(tensor(), rank);
}

void AutoEngine::do_compute(mode_t mode, const std::vector<Matrix>& factors,
                            Matrix& out) {
  const KernelStats before = inner_->stats();
  inner_->context().sched = context().sched;  // forward late overrides
  inner_->compute(mode, factors, out);
  const KernelStats& after = inner_->stats();
  count_flops(after.flops - before.flops);
  if (after.last_schedule != 255) {
    // Mirror the inner engine's schedule telemetry into this engine's
    // KernelStats; the inner launches already bumped the global metrics.
    record_schedule({static_cast<sched::Schedule>(after.last_schedule),
                     after.last_tiles, 0.0, 0, after.last_sched_reason},
                    after.owner_launches - before.owner_launches,
                    after.privatized_launches - before.privatized_launches,
                    /*bump_metrics=*/false);
  }
}

void AutoEngine::factor_updated(mode_t mode) {
  if (inner_) inner_->factor_updated(mode);
}

void AutoEngine::invalidate_all() {
  if (inner_) inner_->invalidate_all();
}

std::string AutoEngine::name() const {
  if (inner_) return inner_->name();
  return probed_ ? "auto+probe" : "auto";
}

std::size_t AutoEngine::memory_bytes() const {
  return inner_ ? inner_->memory_bytes() : 0;
}

std::size_t AutoEngine::peak_memory_bytes() const {
  return inner_ ? inner_->peak_memory_bytes() : 0;
}

std::unique_ptr<MttkrpEngine> make_auto_engine(const CooTensor& tensor,
                                               index_t rank,
                                               std::size_t memory_budget_bytes,
                                               const CostModelParams& params) {
  auto engine = std::make_unique<AutoEngine>(/*probed=*/false,
                                             memory_budget_bytes, params, 3);
  engine->prepare(tensor, rank);
  return engine;
}

std::unique_ptr<MttkrpEngine> make_probed_engine(
    const CooTensor& tensor, index_t rank, std::size_t memory_budget_bytes,
    const CostModelParams& params, int shortlist) {
  auto engine = std::make_unique<AutoEngine>(/*probed=*/true,
                                             memory_budget_bytes, params,
                                             shortlist);
  engine->prepare(tensor, rank);
  return engine;
}

}  // namespace mdcp
