// The model-driven tuner: predict every candidate strategy, pick the best
// under the memory budget, and hand back a ready-to-run engine.
//
// This is the paper's headline loop: instead of autotuning (running every
// scheme and keeping the fastest — N× the cost of the thing being tuned) or
// hard-coding one scheme, the analytic model ranks all candidates from cheap
// sketch statistics and selects the winner up front.
#pragma once

#include <memory>
#include <vector>

#include "dtree/dtree_engine.hpp"
#include "model/cost_model.hpp"
#include "model/strategy.hpp"
#include "mttkrp/engine.hpp"
#include "obs/history.hpp"

namespace mdcp {

struct RankedStrategy {
  Strategy strategy;
  StrategyPrediction prediction;
  bool fits_budget = true;
};

struct TunerReport {
  std::vector<RankedStrategy> ranked;  ///< ascending predicted seconds
  std::size_t chosen = 0;              ///< index into `ranked`
  /// How `chosen` was decided: "model" = analytic ranking (possibly
  /// probe-corrected), "history" = measured-best override from the run
  /// history (see TunerOptions).
  const char* plan_source = "model";

  const RankedStrategy& winner() const { return ranked[chosen]; }
};

/// Empirical-feedback overlay for the tuner. When a history store is
/// attached and use_history is set, select_strategy() consults the
/// measured-best plan for this (tensor fingerprint, rank) and — once that
/// strategy has earned trust.min_weight of trust-weighted observations —
/// prefers it over the analytic ranking (budget feasibility still wins:
/// history never overrides onto an over-budget candidate). The probe path
/// keeps the override only if probing agrees nothing faster was shortlisted.
struct TunerOptions {
  bool use_history = true;               ///< master switch (--no-history)
  const obs::HistoryStore* history = nullptr;  ///< null = overlay disabled
  /// Trust policy for measured_best(); min_weight is the "warm-start after
  /// K observations" knob (same build/machine observations weigh 1 each).
  obs::TrustPolicy trust;
};

/// One fallback taken by the AutoEngine's degradation chain: a predicted or
/// actual allocation exceeded the memory budget, so execution moved to a
/// cheaper engine instead of dying.
struct DegradationEvent {
  std::string from;  ///< engine label degraded away from
  std::string to;    ///< engine label degraded to
  /// "predicted-over-budget" (model, at prepare), "budget-exceeded"
  /// (workspace arena tripped the budget at run time), or "alloc-failure"
  /// (std::bad_alloc — real or injected).
  const char* reason = "";
  std::size_t predicted_bytes = 0;  ///< footprint of the abandoned engine
  std::size_t budget_bytes = 0;     ///< budget in force (0 = unlimited)
  bool at_prepare = false;          ///< true = model-predicted, before any run
};

/// Ranks all candidate strategies for `tensor` at `rank`.
/// `memory_budget_bytes` bounds symbolic + peak value memory (0 = unlimited);
/// if nothing fits, the minimum-memory strategy is chosen and flagged.
TunerReport select_strategy(const CooTensor& tensor, index_t rank,
                            std::size_t memory_budget_bytes = 0,
                            const CostModelParams& params = {},
                            const TunerOptions& options = {});

/// Hybrid model+probe selection: the analytic model shortlists the
/// `shortlist` budget-feasible candidates, one real MTTKRP sweep of each is
/// measured, and the measured winner is chosen. Costs ~`shortlist` sweeps up
/// front (still far below exhaustive autotuning) and removes the residual
/// model error on tensors whose cache behaviour the flop/byte counts miss.
/// Returns the report re-ranked with `chosen` pointing at the probed winner.
/// Probe engines draw scratch from `ctx` (workspace/threads; stats ignored).
TunerReport select_strategy_probed(const CooTensor& tensor, index_t rank,
                                   std::size_t memory_budget_bytes = 0,
                                   const CostModelParams& params = {},
                                   int shortlist = 3, KernelContext ctx = {},
                                   const TunerOptions& options = {});

/// MTTKRP engine whose strategy is chosen by the tuner at prepare() time.
/// prepare(tensor, rank) runs the model (rank > 0 required — the prediction
/// is rank-dependent), optionally probes the shortlist, then builds and
/// prepares the winning dimension-tree engine. name() reports
/// "auto:<strategy>" (or "auto+probe:<strategy>") once prepared.
///
/// Under a memory budget (KernelContext::mem_budget or the constructor
/// argument) the engine also plans a degradation chain: the dtree winner,
/// then the fixed fallbacks alto → ttv-chain → csf → coo, each annotated
/// with its
/// predicted footprint. Levels the model predicts over budget are skipped up
/// front ("predicted-over-budget"); a budget_error or bad_alloc escaping the
/// active level at prepare or compute time advances the chain and retries
/// ("budget-exceeded" / "alloc-failure"). Every fallback is recorded as a
/// DegradationEvent, mirrored into KernelStats.degradations, the
/// "engine.degradations" metric, and a trace span. Only when the last level
/// also fails does a typed mdcp::budget_error escape.
class AutoEngine final : public MttkrpEngine {
 public:
  explicit AutoEngine(bool probed = false, std::size_t memory_budget_bytes = 0,
                      CostModelParams params = {}, int shortlist = 3,
                      KernelContext ctx = {}, TunerOptions tuner_options = {});

  void factor_updated(mode_t mode) override;
  void invalidate_all() override;
  std::string name() const override;
  std::size_t memory_bytes() const override;
  std::size_t peak_memory_bytes() const override;

  /// The tuner's full ranking from the last prepare().
  const TunerReport& report() const { return report_; }

  /// One level of the planned degradation chain.
  struct ChainEntry {
    std::string engine;  ///< registry name; "" = the winning dtree strategy
    std::string label;   ///< display name ("auto:…")
    std::size_t predicted_bytes = 0;  ///< model footprint for this level
    bool fits_budget = true;
    /// Schedule pinned for this level when the privatized envelope alone
    /// would blow the budget (kAuto = no pin).
    ScheduleMode forced_sched = ScheduleMode::kAuto;
  };

  /// The chain planned by the last prepare(): winner first, then in-order
  /// fallbacks (present only when a budget is set).
  const std::vector<ChainEntry>& chain() const noexcept { return chain_; }
  /// Index into chain() of the level currently executing.
  std::size_t chain_position() const noexcept { return chain_pos_; }
  /// Every fallback taken since construction (prepare- and run-time), in
  /// order. Callers that report incrementally should keep their own cursor.
  const std::vector<DegradationEvent>& degradation_events() const noexcept {
    return degradations_;
  }

 protected:
  void do_prepare(index_t rank) override;
  void do_compute(mode_t mode, const std::vector<Matrix>& factors,
                  Matrix& out) override;

 private:
  void build_inner(index_t rank);
  void note_degradation(std::size_t from, std::size_t to, const char* reason,
                        bool at_prepare);
  ScheduleMode effective_inner_sched() const noexcept;

  bool probed_;
  std::size_t memory_budget_bytes_;
  CostModelParams params_;
  int shortlist_;
  TunerOptions tuner_options_;
  TunerReport report_;
  std::vector<ChainEntry> chain_;
  std::size_t chain_pos_ = 0;
  std::vector<DegradationEvent> degradations_;
  std::size_t retired_peak_bytes_ = 0;  ///< peaks of degraded-away engines
  std::unique_ptr<MttkrpEngine> inner_;
};

/// Builds the engine the tuner selected. name() reports
/// "auto:<strategy-name>". The tensor must outlive the engine.
std::unique_ptr<MttkrpEngine> make_auto_engine(
    const CooTensor& tensor, index_t rank,
    std::size_t memory_budget_bytes = 0, const CostModelParams& params = {});

/// Engine built from the probed selection; name() reports
/// "auto+probe:<strategy-name>".
std::unique_ptr<MttkrpEngine> make_probed_engine(
    const CooTensor& tensor, index_t rank,
    std::size_t memory_budget_bytes = 0, const CostModelParams& params = {},
    int shortlist = 3);

}  // namespace mdcp
