// The model-driven tuner: predict every candidate strategy, pick the best
// under the memory budget, and hand back a ready-to-run engine.
//
// This is the paper's headline loop: instead of autotuning (running every
// scheme and keeping the fastest — N× the cost of the thing being tuned) or
// hard-coding one scheme, the analytic model ranks all candidates from cheap
// sketch statistics and selects the winner up front.
#pragma once

#include <memory>
#include <vector>

#include "dtree/dtree_engine.hpp"
#include "model/cost_model.hpp"
#include "model/strategy.hpp"
#include "mttkrp/engine.hpp"

namespace mdcp {

struct RankedStrategy {
  Strategy strategy;
  StrategyPrediction prediction;
  bool fits_budget = true;
};

struct TunerReport {
  std::vector<RankedStrategy> ranked;  ///< ascending predicted seconds
  std::size_t chosen = 0;              ///< index into `ranked`

  const RankedStrategy& winner() const { return ranked[chosen]; }
};

/// Ranks all candidate strategies for `tensor` at `rank`.
/// `memory_budget_bytes` bounds symbolic + peak value memory (0 = unlimited);
/// if nothing fits, the minimum-memory strategy is chosen and flagged.
TunerReport select_strategy(const CooTensor& tensor, index_t rank,
                            std::size_t memory_budget_bytes = 0,
                            const CostModelParams& params = {});

/// Hybrid model+probe selection: the analytic model shortlists the
/// `shortlist` budget-feasible candidates, one real MTTKRP sweep of each is
/// measured, and the measured winner is chosen. Costs ~`shortlist` sweeps up
/// front (still far below exhaustive autotuning) and removes the residual
/// model error on tensors whose cache behaviour the flop/byte counts miss.
/// Returns the report re-ranked with `chosen` pointing at the probed winner.
/// Probe engines draw scratch from `ctx` (workspace/threads; stats ignored).
TunerReport select_strategy_probed(const CooTensor& tensor, index_t rank,
                                   std::size_t memory_budget_bytes = 0,
                                   const CostModelParams& params = {},
                                   int shortlist = 3, KernelContext ctx = {});

/// MTTKRP engine whose strategy is chosen by the tuner at prepare() time.
/// prepare(tensor, rank) runs the model (rank > 0 required — the prediction
/// is rank-dependent), optionally probes the shortlist, then builds and
/// prepares the winning dimension-tree engine. name() reports
/// "auto:<strategy>" (or "auto+probe:<strategy>") once prepared.
class AutoEngine final : public MttkrpEngine {
 public:
  explicit AutoEngine(bool probed = false, std::size_t memory_budget_bytes = 0,
                      CostModelParams params = {}, int shortlist = 3,
                      KernelContext ctx = {});

  void factor_updated(mode_t mode) override;
  void invalidate_all() override;
  std::string name() const override;
  std::size_t memory_bytes() const override;
  std::size_t peak_memory_bytes() const override;

  /// The tuner's full ranking from the last prepare().
  const TunerReport& report() const { return report_; }

 protected:
  void do_prepare(index_t rank) override;
  void do_compute(mode_t mode, const std::vector<Matrix>& factors,
                  Matrix& out) override;

 private:
  bool probed_;
  std::size_t memory_budget_bytes_;
  CostModelParams params_;
  int shortlist_;
  TunerReport report_;
  std::unique_ptr<DTreeMttkrpEngine> inner_;
};

/// Builds the engine the tuner selected. name() reports
/// "auto:<strategy-name>". The tensor must outlive the engine.
std::unique_ptr<MttkrpEngine> make_auto_engine(
    const CooTensor& tensor, index_t rank,
    std::size_t memory_budget_bytes = 0, const CostModelParams& params = {});

/// Engine built from the probed selection; name() reports
/// "auto+probe:<strategy-name>".
std::unique_ptr<MttkrpEngine> make_probed_engine(
    const CooTensor& tensor, index_t rank,
    std::size_t memory_budget_bytes = 0, const CostModelParams& params = {},
    int shortlist = 3);

}  // namespace mdcp
