#include "mttkrp/alto.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <numeric>
#include <type_traits>

#include "sched/reduce.hpp"
#include "util/parallel.hpp"

namespace mdcp {

index_t AltoCodec::bits_for_dim(index_t dim) {
  MDCP_CHECK_MSG(dim > 0, "alto: a zero-sized mode cannot be linearized");
  // Indices span [0, dim): dim = 1 needs no bits, dim = 2^32 - 1 needs 32.
  return static_cast<index_t>(std::bit_width(dim - 1));
}

AltoCodec::AltoCodec(const shape_t& shape) : shape_(shape) {
  bits_.resize(shape.size());
  shift_.resize(shape.size());
  index_t total = 0;
  for (std::size_t m = 0; m < shape.size(); ++m) {
    bits_[m] = bits_for_dim(shape[m]);
    total += bits_[m];
  }
  MDCP_CHECK_MSG(total <= 128, "alto: shape needs "
                                   << total
                                   << " linearization bits, more than the "
                                      "128-bit key can hold");
  total_bits_ = total;
  // Mode 0 sits in the most significant bits so integer key order equals
  // lexicographic tuple order (mode 0 first).
  index_t s = 0;
  for (std::size_t m = shape.size(); m-- > 0;) {
    shift_[m] = s;
    s += bits_[m];
  }
}

std::uint64_t AltoCodec::encode64(std::span<const index_t> coords) const {
  MDCP_CHECK(fits64() && coords.size() == bits_.size());
  std::uint64_t k = 0;
  for (std::size_t m = 0; m < bits_.size(); ++m) {
    // Zero-width fields (size-1 modes) store nothing; skipping them also
    // keeps every executed shift below 64 — a populated field has
    // shift + bits <= 64 with bits >= 1, so shift <= 63 even when the
    // budget lands on exactly 64 bits.
    if (bits_[m] == 0) continue;
    k |= std::uint64_t{coords[m]} << shift_[m];
  }
  return k;
}

AltoKey128 AltoCodec::encode128(std::span<const index_t> coords) const {
  MDCP_CHECK(coords.size() == bits_.size());
  AltoKey128 k;
  for (std::size_t m = 0; m < bits_.size(); ++m) {
    const index_t bits = bits_[m];
    if (bits == 0) continue;
    const index_t s = shift_[m];
    const std::uint64_t v = coords[m];
    if (s >= 64) {
      k.hi |= v << (s - 64);  // s - 64 + bits <= 64, bits >= 1 → shift <= 63
    } else {
      k.lo |= v << s;  // low part; overflowing bits are shifted out
      // Straddling fields have s in [33, 63] (bits <= 32), so 64 - s is in
      // [1, 31] — never a shift by the full word width.
      if (s + bits > 64) k.hi |= v >> (64 - s);
    }
  }
  return k;
}

AltoMttkrpEngine::AltoMttkrpEngine(KernelContext ctx) : MttkrpEngine(ctx) {}

AltoMttkrpEngine::AltoMttkrpEngine(const CooTensor& tensor, KernelContext ctx)
    : MttkrpEngine(ctx) {
  prepare(tensor);
}

template <typename Key>
void AltoMttkrpEngine::encode_and_sort(std::vector<Key>& keys, index_t rank) {
  const CooTensor& t = tensor();
  const mode_t order = t.order();
  const nnz_t n = t.nnz();

  keys.resize(n);
  std::array<index_t, kMaxOrder> c{};
  const std::span<index_t> cs(c.data(), order);
  for (nnz_t i = 0; i < n; ++i) {
    t.coords(i, cs);
    if constexpr (std::is_same_v<Key, std::uint64_t>)
      keys[i] = codec_.encode64(cs);
    else
      keys[i] = codec_.encode128(cs);
  }

  // One sort of the linearized stream replaces the per-mode permutations a
  // plain COO engine keeps. Stable, so duplicate coordinates keep their
  // input order and accumulation stays deterministic.
  std::vector<nnz_t> perm(n);
  std::iota(perm.begin(), perm.end(), nnz_t{0});
  std::stable_sort(perm.begin(), perm.end(),
                   [&](nnz_t a, nnz_t b) { return keys[a] < keys[b]; });
  std::vector<Key> sorted(n);
  vals_.resize(n);
  for (nnz_t i = 0; i < n; ++i) {
    sorted[i] = keys[perm[i]];
    vals_[i] = t.value(perm[i]);
  }
  keys = std::move(sorted);

  parts_ = alto_partition<Key>(codec_, {keys.data(), keys.size()}, rank);
  part_ptr_.assign(parts_.size() + 1, 0);
  max_part_nnz_ = 0;
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    part_ptr_[p + 1] = parts_[p].end;
    max_part_nnz_ = std::max(max_part_nnz_, parts_[p].end - parts_[p].begin);
  }

  // The sorted stream is grouped by the most significant field, so mode 0
  // gets COO-style row groups for free (no extra permutation).
  rows_.clear();
  row_start_.clear();
  max_group_ = 0;
  for (nnz_t i = 0; i < n; ++i) {
    const index_t row = codec_.extract(keys[i], 0);
    if (rows_.empty() || rows_.back() != row) {
      rows_.push_back(row);
      row_start_.push_back(i);
    }
  }
  row_start_.push_back(n);
  for (std::size_t g = 0; g + 1 < row_start_.size(); ++g)
    max_group_ = std::max(max_group_, row_start_[g + 1] - row_start_[g]);
}

void AltoMttkrpEngine::do_prepare(index_t rank) {
  const CooTensor& t = tensor();
  MDCP_CHECK_MSG(t.order() >= 1, "alto: cannot linearize an order-0 tensor");
  codec_ = AltoCodec(t.shape());
  wide_ = !codec_.fits64();
  if (wide_) {
    keys64_.clear();
    keys64_.shrink_to_fit();
    encode_and_sort(keys128_, rank);
  } else {
    keys128_.clear();
    keys128_.shrink_to_fit();
    encode_and_sort(keys64_, rank);
  }
  owner0_ = {};
  split0_ = {};
  ownerp_ = {};
  splitu_ = {};
  mk_ = mk::Kernel(rank);
  if (rank > 0)
    workspace().reserve(effective_threads(), mk_.padded() * sizeof(real_t));
}

void AltoMttkrpEngine::do_compute(mode_t mode,
                                  const std::vector<Matrix>& factors,
                                  Matrix& out) {
  if (wide_)
    compute_impl(keys128_, mode, factors, out);
  else
    compute_impl(keys64_, mode, factors, out);
}

template <typename Key>
void AltoMttkrpEngine::compute_impl(const std::vector<Key>& keys, mode_t mode,
                                    const std::vector<Matrix>& factors,
                                    Matrix& out) {
  const CooTensor& t = tensor();
  const index_t r = check_factors(t, factors);
  MDCP_CHECK(mode < t.order());
  out.resize(t.dim(mode), r, 0);

  const mode_t order = t.order();
  const index_t dim = t.dim(mode);
  Workspace& ws = workspace();
  const nnz_t n = keys.size();

  if (mk_.rank() != r) mk_ = mk::Kernel(r);
  record_tile(mk_.tile());
  const mk::Kernel mk = mk_;
  const index_t padded = mk_.padded();

  // Modes other than the output mode, resolved once so the per-nonzero loop
  // can take the fused order-3/4 microkernel paths without re-scanning.
  std::array<mode_t, kMaxOrder> oth{};
  mode_t no = 0;
  for (mode_t m = 0; m < order; ++m)
    if (m != mode) oth[no++] = m;

  // Accumulates nonzeros [begin, end) of the sorted stream, decoding mode
  // indices from the packed key on the fly. `dst_of(key)` resolves the
  // destination row for one nonzero (the fixed-destination callers bind it
  // to a constant; the scattered-merge caller returns nullptr for rows the
  // calling thread does not own, skipping the flops). `tmp` is a slab-origin
  // Hadamard accumulator (64-byte aligned).
  const auto accumulate = [&](nnz_t begin, nnz_t end, real_t* tmp,
                              auto&& dst_of) {
    tmp = mk::assume_aligned(tmp);
    for (nnz_t i = begin; i < end; ++i) {
      const Key k = keys[i];
      const real_t v = vals_[i];
      real_t* dst = dst_of(k);
      if (dst == nullptr) continue;
      if (no == 2) {
        mk.fused2_accum(dst,
                        factors[oth[0]].row(codec_.extract(k, oth[0])).data(),
                        factors[oth[1]].row(codec_.extract(k, oth[1])).data(),
                        v);
      } else if (no == 3) {
        mk.fused3_accum(dst,
                        factors[oth[0]].row(codec_.extract(k, oth[0])).data(),
                        factors[oth[1]].row(codec_.extract(k, oth[1])).data(),
                        factors[oth[2]].row(codec_.extract(k, oth[2])).data(),
                        v);
      } else if (no == 1) {
        mk.axpy_accum(dst,
                      factors[oth[0]].row(codec_.extract(k, oth[0])).data(),
                      v);
      } else if (no == 0) {
        mk.add_scalar(dst, v);  // degenerate order-1: broadcast-accumulate
      } else {
        mk.fill(tmp, v);
        for (mode_t j = 0; j < no; ++j)
          mk.hadamard(tmp,
                      factors[oth[j]].row(codec_.extract(k, oth[j])).data());
        mk.accum(dst, tmp);
      }
    }
  };

  if (mode == 0) {
    // The stream is already grouped by the output row: same owner /
    // privatized schedules as the COO engine, minus its permutation
    // indirection.
    const auto group_size = [&](nnz_t g) {
      return row_start_[g + 1] - row_start_[g];
    };
    const sched::WorkShape shape{.total = n,
                                 .max_unit = max_group_,
                                 .units = rows_.size(),
                                 .out_rows = dim,
                                 .rank = r,
                                 .shared_writes = true};
    const sched::Decision d =
        sched::choose_schedule(shape, effective_threads(), schedule_mode());
    record_schedule(d);
    if (d.schedule == sched::Schedule::kOwner) {
      const sched::TilePlan& tp = sched::cached_tiles(
          owner0_, d.tiles,
          [&](int nt) { return sched::tile_groups(row_start_, nt); });
      // Scratch is acquired serially, up front: a budget trip or allocation
      // failure inside the parallel region could not propagate.
      ws.reserve(effective_threads(), padded * sizeof(real_t));
#pragma omp parallel
      {
        const auto tmp = ws.thread_scratch<real_t>(padded);
#pragma omp for schedule(dynamic, 1)
        for (int tile = 0; tile < tp.tiles(); ++tile) {
          sched::for_each_group_range(
              tp, tile, group_size, [&](nnz_t g, nnz_t begin, nnz_t end) {
                real_t* dst = out.row(rows_[g]).data();
                accumulate(row_start_[g] + begin, row_start_[g] + end,
                           tmp.data(), [dst](const Key&) { return dst; });
              });
        }
      }
    } else {
      const sched::TilePlan& tp = sched::cached_tiles(
          split0_, d.tiles,
          [&](int nt) { return sched::tile_groups_split(row_start_, nt); });
      const nnz_t out_elems = static_cast<nnz_t>(dim) * r;
      ws.reserve(effective_threads(), (padded + out_elems) * sizeof(real_t));
      sched::PartialSet parts;
#pragma omp parallel
      {
        const int team = team_size();
        const int tid = thread_id();
        // One slab per thread: the Hadamard accumulator first (padded
        // stride keeps the partial slab behind it 64-byte aligned), then
        // the partial output (dim × R).
        const auto slab = ws.thread_scratch<real_t>(padded + out_elems);
        real_t* tmp = slab.data();
        real_t* partial = tmp + padded;
        std::fill(partial, partial + out_elems, real_t{0});
        parts.publish(tid, partial);
        // Static tile→thread assignment: the work each thread accumulates
        // is a function of (team, tid) only, so the fixed-order combine
        // below yields bitwise-identical results run to run.
        for (int tile = tid; tile < tp.tiles(); tile += team) {
          sched::for_each_group_range(
              tp, tile, group_size, [&](nnz_t g, nnz_t begin, nnz_t end) {
                real_t* dst = partial + static_cast<nnz_t>(rows_[g]) * r;
                accumulate(row_start_[g] + begin, row_start_[g] + end, tmp,
                           [dst](const Key&) { return dst; });
              });
        }
#pragma omp barrier
        parts.combine_into(out.data(), team,
                           chunk_range(out_elems, team, tid));
      }
      count_flops(sched::reduction_flops(d.tiles, dim, r));
    }
    count_flops(static_cast<std::uint64_t>(n) * r * order);
    return;
  }

  // Modes > 0: the stream is not grouped by the output row. Schedule over
  // the cache-fitting partitions built at prepare().
  const sched::WorkShape shape{.total = n,
                               .max_unit = max_part_nnz_,
                               .units = parts_.size(),
                               .out_rows = dim,
                               .rank = r,
                               .shared_writes = true};
  const sched::Decision d =
      sched::choose_schedule(shape, effective_threads(), schedule_mode());
  record_schedule(d);

  if (d.schedule == sched::Schedule::kOwner) {
    // ALTO partition path. Tight-range partitions own a private dense
    // accumulator over their [lo, hi] row window; the windows merge into
    // the output in ascending partition order. A partition whose window for
    // this mode would exceed the per-partition budget — a sparse-but-wide
    // interval, where splitting cannot shrink the range — gets no window
    // (acc_off_[p + 1] == acc_off_[p]); its rows merge directly into the
    // output under row ownership below. A global cap bounds the combined
    // window bytes regardless of the partition count. Classification
    // depends only on the partition geometry, never on the thread count,
    // and tiles never split a partition, so the result is bitwise identical
    // across thread counts.
    const std::size_t nparts = parts_.size();
    acc_off_.assign(nparts + 1, 0);
    for (std::size_t p = 0; p < nparts; ++p) {
      const std::size_t window =
          static_cast<std::size_t>(parts_[p].hi[mode] - parts_[p].lo[mode] +
                                   1) *
          padded;
      const bool windowed =
          window * sizeof(real_t) <= kAltoPartitionBudgetBytes &&
          (acc_off_[p] + window) * sizeof(real_t) <= kAltoOwnerWindowCapBytes;
      acc_off_[p + 1] = acc_off_[p] + (windowed ? window : 0);
    }
    const std::size_t acc_total = acc_off_.back();
    const sched::TilePlan& tp = sched::cached_tiles(
        ownerp_, d.tiles,
        [&](int nt) { return sched::tile_groups(part_ptr_, nt); });
    const auto part_size = [&](nnz_t p) {
      return part_ptr_[p + 1] - part_ptr_[p];
    };
    // Scratch is acquired serially, up front: every thread's Hadamard
    // accumulator first, then the calling thread's slab is extended to hold
    // the shared partition windows behind its own tmp region — a budget
    // trip inside the parallel region could not propagate.
    ws.reserve(effective_threads(), padded * sizeof(real_t));
    const auto master = ws.thread_scratch<real_t>(padded + acc_total);
    real_t* const acc = master.data() + padded;
#pragma omp parallel
    {
      real_t* tmp = ws.thread_scratch<real_t>(padded).data();
#pragma omp for schedule(dynamic, 1)
      for (int tile = 0; tile < tp.tiles(); ++tile) {
        sched::for_each_group_range(
            tp, tile, part_size, [&](nnz_t p, nnz_t begin, nnz_t end) {
              if (acc_off_[p + 1] == acc_off_[p]) return;  // scattered
              const AltoPartition& part = parts_[p];
              real_t* base = mk::assume_aligned(acc + acc_off_[p]);
              // Whole-partition tiles: ranges always start at 0, so the
              // window is zeroed exactly once, by the tile that owns it.
              if (begin == 0)
                std::fill(base, base + (acc_off_[p + 1] - acc_off_[p]),
                          real_t{0});
              const index_t lo = part.lo[mode];
              accumulate(part.begin + begin, part.begin + end, tmp,
                         [&](const Key& k) {
                           return base + static_cast<std::size_t>(
                                             codec_.extract(k, mode) - lo) *
                                             padded;
                         });
            });
      }
      // The omp-for barrier above orders every window write before the
      // merge. Each thread owns a disjoint row chunk; every row receives
      // first its windowed contributions, then its scattered ones, each in
      // ascending partition order — a fixed order independent of the team.
      const int team = team_size();
      const int tid = thread_id();
      const Range rows = chunk_range(dim, team, tid);
      for (std::size_t p = 0; p < nparts; ++p) {
        if (acc_off_[p + 1] == acc_off_[p]) continue;  // scattered
        const index_t lo = parts_[p].lo[mode];
        const nnz_t rb = std::max<nnz_t>(rows.begin, lo);
        const nnz_t re = std::min<nnz_t>(
            rows.end, static_cast<nnz_t>(parts_[p].hi[mode]) + 1);
        for (nnz_t row = rb; row < re; ++row)
          mk.accum(out.row(static_cast<index_t>(row)).data(),
                   acc + acc_off_[p] + (row - lo) * padded);
      }
      // Scattered partitions: every thread scans their nonzeros and
      // accumulates only the rows it owns, straight into the output. The
      // decode work is replicated across the team; the flops are not.
      for (std::size_t p = 0; p < nparts; ++p) {
        if (acc_off_[p + 1] != acc_off_[p]) continue;
        accumulate(parts_[p].begin, parts_[p].end, tmp,
                   [&](const Key& k) -> real_t* {
                     const nnz_t row = codec_.extract(k, mode);
                     if (row < rows.begin || row >= rows.end) return nullptr;
                     return out.row(static_cast<index_t>(row)).data();
                   });
      }
    }
    std::uint64_t merge_rows = 0;
    for (std::size_t p = 0; p < nparts; ++p)
      merge_rows += (acc_off_[p + 1] - acc_off_[p]) / std::max<index_t>(
                                                          padded, 1);
    count_flops(merge_rows * r);
  } else {
    // Privatized fallback: per-thread full-output slabs over uniform
    // nonzero tiles, combined in fixed thread order.
    const sched::TilePlan& tp = sched::cached_tiles(
        splitu_, d.tiles, [&](int nt) { return sched::tile_uniform(n, nt); });
    const nnz_t out_elems = static_cast<nnz_t>(dim) * r;
    ws.reserve(effective_threads(), (padded + out_elems) * sizeof(real_t));
    sched::PartialSet parts;
#pragma omp parallel
    {
      const int team = team_size();
      const int tid = thread_id();
      const auto slab = ws.thread_scratch<real_t>(padded + out_elems);
      real_t* tmp = slab.data();
      real_t* partial = tmp + padded;
      std::fill(partial, partial + out_elems, real_t{0});
      parts.publish(tid, partial);
      const auto item_count = [&](nnz_t) { return n; };
      for (int tile = tid; tile < tp.tiles(); tile += team) {
        sched::for_each_group_range(
            tp, tile, item_count, [&](nnz_t, nnz_t begin, nnz_t end) {
              accumulate(begin, end, tmp, [&](const Key& k) {
                return partial +
                       static_cast<nnz_t>(codec_.extract(k, mode)) * r;
              });
            });
      }
#pragma omp barrier
      parts.combine_into(out.data(), team, chunk_range(out_elems, team, tid));
    }
    count_flops(sched::reduction_flops(d.tiles, dim, r));
  }
  count_flops(static_cast<std::uint64_t>(n) * r * order);
}

std::size_t AltoMttkrpEngine::memory_bytes() const {
  std::size_t b = keys64_.size() * sizeof(std::uint64_t) +
                  keys128_.size() * sizeof(AltoKey128) +
                  vals_.size() * sizeof(real_t) +
                  part_ptr_.size() * sizeof(nnz_t) +
                  rows_.size() * sizeof(index_t) +
                  row_start_.size() * sizeof(nnz_t) +
                  acc_off_.size() * sizeof(std::size_t);
  for (const auto& p : parts_)
    b += sizeof(AltoPartition) + 2 * p.lo.size() * sizeof(index_t);
  return b;
}

}  // namespace mdcp
