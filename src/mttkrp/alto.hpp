// ALTO-style linearized MTTKRP engine.
//
// Every nonzero's coordinate tuple is packed into ONE integer key: mode m
// owns a contiguous bit-field of ceil(log2(dim_m)) bits, laid out with mode
// 0 in the most significant position. Integer comparison of keys is then
// exactly lexicographic comparison of coordinate tuples, so a single sort of
// the key stream replaces the per-mode permutations plain COO keeps, and the
// per-nonzero index memory shrinks from order × 4 bytes to 8 (or 16 when the
// shape product needs more than 64 bits).
//
// This is the Adaptive Linearized Tensor Order representation of
// "Accelerating Sparse Tensor Decomposition Using Adaptive Linearized
// Representation" (PAPERS.md, arXiv:2403.06348), in its MTTKRP-engine form:
//
//   * AltoCodec    — the bit-field layout: sizes, shifts, encode/decode with
//                    a 64-bit fast path and a portable 128-bit fallback.
//                    Shapes with a zero-sized mode or needing more than 128
//                    bits are rejected at construction (mdcp::error), and
//                    the field arithmetic never shifts a 64-bit lane by 64 —
//                    the classic shift-by-width UB when the budget lands on
//                    exactly 64 bits (zero-width fields decode to 0 without
//                    touching the key).
//   * alto_partition — a recursive partitioner splitting the sorted key
//                    stream into cache-fitting intervals. Each partition
//                    records tight per-mode index ranges [lo, hi]; splitting
//                    recurses (midpoint by nnz) until the dense-accumulator
//                    footprint Σ_m (hi−lo+1) × padded_rank × 8 fits a cache
//                    budget or the interval is small. Partitions are
//                    disjoint, cover all nonzeros, and are independent of
//                    the thread count.
//   * AltoMttkrpEngine — the engine. Mode 0 reads the stream in place (keys
//                    sorted ⇒ grouped by the most significant field) with
//                    the same owner/privatized schedules as the COO engine.
//                    For every other mode, the owner-computes path gives
//                    each tight-range partition a private dense accumulator
//                    over its [lo, hi] row window and merges the windows
//                    into the output in ascending partition order; wide-
//                    range ("scattered") partitions, whose windows would
//                    dwarf their nonzero count, are instead merged directly
//                    into the output under row ownership — each thread
//                    scans them and accumulates only the rows of its chunk.
//                    Both phases are race-free and bitwise deterministic
//                    across thread counts, because the partition geometry
//                    and the per-row accumulation order never depend on
//                    threads. The
//                    privatized path falls back to per-thread full-output
//                    slabs combined in fixed thread order (sched/reduce.hpp:
//                    bitwise at a fixed count, 1e-12-class drift across
//                    counts). Rank loops route through the shared mdcp::mk
//                    microkernel cascade; all scratch comes from the
//                    Workspace arena, so the memory budget is enforced and a
//                    violation degrades through the tuner chain.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mttkrp/engine.hpp"
#include "mttkrp/microkernel.hpp"
#include "sched/partition.hpp"
#include "util/error.hpp"

namespace mdcp {

/// Portable 128-bit linearization key for shapes whose bit budget exceeds
/// 64. Ordering is numeric (hi first), which — with mode 0 packed most
/// significant — is lexicographic tuple order, same as the 64-bit path.
struct AltoKey128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const AltoKey128&, const AltoKey128&) = default;
  friend bool operator<(const AltoKey128& a, const AltoKey128& b) noexcept {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

/// Bit-field layout of one linearized shape: per-mode field widths and
/// shifts, with encode/extract/decode for both key widths.
class AltoCodec {
 public:
  AltoCodec() = default;

  /// Builds the layout for `shape`. Throws mdcp::error when a mode has size
  /// zero (nothing is encodable and the field arithmetic would be ill-
  /// defined) or when the total bit budget exceeds 128.
  explicit AltoCodec(const shape_t& shape);

  /// Bits needed to store indices [0, dim): ceil(log2(dim)), i.e. 0 for a
  /// size-1 mode. Throws mdcp::error for dim == 0.
  static index_t bits_for_dim(index_t dim);

  mode_t order() const noexcept { return static_cast<mode_t>(bits_.size()); }
  const shape_t& shape() const noexcept { return shape_; }
  index_t mode_bits(mode_t m) const { return bits_.at(m); }
  /// Shift of mode m's field from the least significant bit.
  index_t mode_shift(mode_t m) const { return shift_.at(m); }
  index_t total_bits() const noexcept { return total_bits_; }
  /// True when every key fits the 64-bit fast path (total_bits() <= 64).
  bool fits64() const noexcept { return total_bits_ <= 64; }

  std::uint64_t encode64(std::span<const index_t> coords) const;
  AltoKey128 encode128(std::span<const index_t> coords) const;

  index_t extract(std::uint64_t key, mode_t m) const {
    const index_t bits = bits_[m];
    if (bits == 0) return 0;  // zero-width field: no shift, no mask
    return static_cast<index_t>((key >> shift_[m]) &
                                ((std::uint64_t{1} << bits) - 1));
  }
  index_t extract(AltoKey128 key, mode_t m) const {
    const index_t bits = bits_[m];
    if (bits == 0) return 0;
    const index_t s = shift_[m];
    std::uint64_t v;
    if (s >= 64) {
      v = key.hi >> (s - 64);
    } else {
      v = key.lo >> s;
      // A field straddling the 64-bit seam has s in [33, 63] (fields are at
      // most 32 bits wide), so the complementary shift below is in [1, 31].
      if (s + bits > 64) v |= key.hi << (64 - s);
    }
    return static_cast<index_t>(v & ((std::uint64_t{1} << bits) - 1));
  }

  void decode(std::uint64_t key, std::span<index_t> out) const {
    for (mode_t m = 0; m < order(); ++m) out[m] = extract(key, m);
  }
  void decode(AltoKey128 key, std::span<index_t> out) const {
    for (mode_t m = 0; m < order(); ++m) out[m] = extract(key, m);
  }

 private:
  shape_t shape_;
  std::vector<index_t> bits_;   ///< field width per mode (≤ 32)
  std::vector<index_t> shift_;  ///< field shift from the LSB per mode
  index_t total_bits_ = 0;
};

/// One interval of the sorted linearized stream: nonzeros [begin, end) and
/// the tight (inclusive) per-mode index range they touch.
struct AltoPartition {
  nnz_t begin = 0;
  nnz_t end = 0;
  shape_t lo;  ///< per-mode minimum index present in the interval
  shape_t hi;  ///< per-mode maximum index present in the interval
};

/// Dense-accumulator cache budget one partition may claim (per mode, at the
/// padded rank) before the partitioner splits it further.
inline constexpr std::size_t kAltoPartitionBudgetBytes = std::size_t{1} << 20;

/// Intervals below this nonzero count are never split further, bounding the
/// partition directory and the recursion depth.
inline constexpr nnz_t kAltoMinPartitionNnz = 4096;

/// Ceiling on the combined dense-window bytes the owner-computes path may
/// carve from the arena in one compute(). Partitions past it — and any
/// partition whose own window for the output mode exceeds the per-partition
/// budget (sparse-but-wide intervals, where splitting cannot shrink the
/// range) — take the scattered path instead: their rows merge directly into
/// the output under row ownership, costing no window memory at all.
inline constexpr std::size_t kAltoOwnerWindowCapBytes = std::size_t{64} << 20;

namespace detail {

template <typename Key>
void alto_partition_rec(const AltoCodec& codec, std::span<const Key> keys,
                        nnz_t begin, nnz_t end, index_t padded_rank,
                        std::size_t budget_bytes, nnz_t min_nnz,
                        std::vector<AltoPartition>& out) {
  const mode_t order = codec.order();
  AltoPartition p;
  p.begin = begin;
  p.end = end;
  p.lo.assign(order, 0);
  p.hi.assign(order, 0);
  for (mode_t m = 0; m < order; ++m) {
    p.lo[m] = codec.extract(keys[begin], m);
    p.hi[m] = p.lo[m];
  }
  std::size_t footprint = 0;
  for (nnz_t i = begin + 1; i < end; ++i)
    for (mode_t m = 0; m < order; ++m) {
      const index_t v = codec.extract(keys[i], m);
      if (v < p.lo[m]) p.lo[m] = v;
      if (v > p.hi[m]) p.hi[m] = v;
    }
  for (mode_t m = 0; m < order; ++m)
    footprint += static_cast<std::size_t>(p.hi[m] - p.lo[m] + 1) *
                 padded_rank * sizeof(real_t);
  // Stop on a cache-fitting footprint or at the min-nnz floor. An interval
  // can sit over budget at the floor when its nonzeros are scattered across
  // huge modes — splitting such an interval is counterproductive (both
  // halves keep nearly the full range, multiplying total window area), so
  // the engine's owner path handles wide partitions without dense windows
  // instead (see kAltoOwnerWindowCapBytes).
  if (footprint <= budget_bytes || end - begin <= min_nnz) {
    out.push_back(std::move(p));
    return;
  }
  const nnz_t mid = begin + (end - begin) / 2;
  alto_partition_rec(codec, keys, begin, mid, padded_rank, budget_bytes,
                     min_nnz, out);
  alto_partition_rec(codec, keys, mid, end, padded_rank, budget_bytes,
                     min_nnz, out);
}

}  // namespace detail

/// Splits the sorted key stream into cache-fitting intervals with tight
/// per-mode ranges. The result is disjoint, covers [0, keys.size()), and
/// depends only on the keys and parameters — never on the thread count.
/// `rank` sizes the accumulator footprint estimate (0 = a nominal 16).
template <typename Key>
std::vector<AltoPartition> alto_partition(
    const AltoCodec& codec, std::span<const Key> keys, index_t rank,
    std::size_t budget_bytes = kAltoPartitionBudgetBytes,
    nnz_t min_nnz = kAltoMinPartitionNnz) {
  std::vector<AltoPartition> out;
  if (keys.empty()) return out;
  MDCP_CHECK(budget_bytes > 0 && min_nnz > 0);
  const index_t pr = mk::padded_rank(rank == 0 ? index_t{16} : rank);
  detail::alto_partition_rec(codec, keys, nnz_t{0}, keys.size(), pr,
                             budget_bytes, min_nnz, out);
  return out;
}

class AltoMttkrpEngine final : public MttkrpEngine {
 public:
  explicit AltoMttkrpEngine(KernelContext ctx = {});
  /// Convenience: construct and prepare in one step.
  explicit AltoMttkrpEngine(const CooTensor& tensor, KernelContext ctx = {});

  std::string name() const override { return "alto"; }
  std::size_t memory_bytes() const override;

  const AltoCodec& codec() const noexcept { return codec_; }
  std::span<const AltoPartition> partitions() const noexcept {
    return {parts_.data(), parts_.size()};
  }
  /// True when the shape forced the 128-bit key fallback.
  bool wide_keys() const noexcept { return wide_; }

 protected:
  void do_prepare(index_t rank) override;
  void do_compute(mode_t mode, const std::vector<Matrix>& factors,
                  Matrix& out) override;

 private:
  template <typename Key>
  void encode_and_sort(std::vector<Key>& keys, index_t rank);
  template <typename Key>
  void compute_impl(const std::vector<Key>& keys, mode_t mode,
                    const std::vector<Matrix>& factors, Matrix& out);

  AltoCodec codec_;
  bool wide_ = false;
  std::vector<std::uint64_t> keys64_;  ///< sorted keys (64-bit fast path)
  std::vector<AltoKey128> keys128_;    ///< sorted keys (128-bit fallback)
  std::vector<real_t> vals_;           ///< values in sorted key order
  std::vector<AltoPartition> parts_;
  std::vector<nnz_t> part_ptr_;  ///< cumulative partition nnz, size P+1
  nnz_t max_part_nnz_ = 0;
  // Mode-0 row groups: the sorted stream is grouped by the most significant
  // field, so mode 0 reuses the COO-style grouped schedules in place.
  std::vector<index_t> rows_;
  std::vector<nnz_t> row_start_;
  nnz_t max_group_ = 0;
  std::vector<std::size_t> acc_off_;  ///< partition accumulator offsets
  sched::CachedPlan owner0_;  ///< mode 0, whole row groups
  sched::CachedPlan split0_;  ///< mode 0, privatized split tiles
  sched::CachedPlan ownerp_;  ///< modes > 0, whole partitions
  sched::CachedPlan splitu_;  ///< modes > 0, uniform nnz tiles (privatized)
  mk::Kernel mk_;  ///< rank-blocked dispatcher, set per prepare()
};

}  // namespace mdcp
