#include "mttkrp/blocked_coo.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "sched/reduce.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mdcp {

BlockedCooEngine::BlockedCooEngine(unsigned block_bits, KernelContext ctx)
    : MttkrpEngine(ctx), bits_(block_bits) {
  MDCP_CHECK_MSG(block_bits >= 1 && block_bits <= 8,
                 "block_bits must be in [1, 8] (8-bit local offsets)");
}

BlockedCooEngine::BlockedCooEngine(const CooTensor& tensor,
                                   unsigned block_bits, KernelContext ctx)
    : BlockedCooEngine(block_bits, ctx) {
  prepare(tensor);
}

void BlockedCooEngine::do_prepare(index_t rank) {
  const CooTensor& tensor = this->tensor();
  order_ = tensor.order();
  shape_ = tensor.shape();
  block_base_.clear();
  block_ptr_.clear();
  const nnz_t n = tensor.nnz();

  // Sort nonzeros by block key (the per-mode high bits, lexicographic),
  // breaking ties by the full coordinates for in-block locality.
  std::vector<nnz_t> perm(n);
  std::iota(perm.begin(), perm.end(), nnz_t{0});
  const auto block_of = [&](mode_t m, nnz_t i) {
    return tensor.index(m, i) >> bits_;
  };
  std::stable_sort(perm.begin(), perm.end(), [&](nnz_t a, nnz_t b) {
    for (mode_t m = 0; m < order_; ++m) {
      const index_t ba = block_of(m, a);
      const index_t bb = block_of(m, b);
      if (ba != bb) return ba < bb;
    }
    for (mode_t m = 0; m < order_; ++m) {
      const index_t ia = tensor.index(m, a);
      const index_t ib = tensor.index(m, b);
      if (ia != ib) return ia < ib;
    }
    return false;
  });

  const auto same_block = [&](nnz_t a, nnz_t b) {
    for (mode_t m = 0; m < order_; ++m)
      if (block_of(m, a) != block_of(m, b)) return false;
    return true;
  };

  local_.assign(order_, {});
  for (auto& l : local_) l.resize(n);
  vals_.resize(n);
  for (nnz_t p = 0; p < n; ++p) {
    const nnz_t i = perm[p];
    if (p == 0 || !same_block(i, perm[p - 1])) {
      block_ptr_.push_back(p);
      for (mode_t m = 0; m < order_; ++m)
        block_base_.push_back((tensor.index(m, i) >> bits_) << bits_);
    }
    for (mode_t m = 0; m < order_; ++m) {
      local_[m][p] = static_cast<std::uint8_t>(
          tensor.index(m, i) -
          block_base_[(block_ptr_.size() - 1) * order_ + m]);
    }
    vals_[p] = tensor.value(i);
  }
  block_ptr_.push_back(n);

  // Per-mode scatter plans: group blocks by their mode-m base.
  const nnz_t blocks = num_blocks();
  plans_.assign(order_, {});
  for (mode_t m = 0; m < order_; ++m) {
    ModePlan& plan = plans_[m];
    plan.perm.resize(blocks);
    std::iota(plan.perm.begin(), plan.perm.end(), nnz_t{0});
    std::stable_sort(plan.perm.begin(), plan.perm.end(),
                     [&](nnz_t a, nnz_t b) {
                       return block_base_[a * order_ + m] <
                              block_base_[b * order_ + m];
                     });
    for (nnz_t p = 0; p < blocks; ++p) {
      const index_t base = block_base_[plan.perm[p] * order_ + m];
      if (plan.bases.empty() || plan.bases.back() != base) {
        plan.bases.push_back(base);
        plan.group_start.push_back(p);
      }
    }
    plan.group_start.push_back(blocks);
    // nnz weights for the tile partitioner: per block (in perm order) and
    // cumulative per base group.
    plan.block_nnz.resize(blocks);
    plan.group_nnz.assign(1, 0);
    for (std::size_t g = 0; g + 1 < plan.group_start.size(); ++g) {
      nnz_t w = 0;
      for (nnz_t p = plan.group_start[g]; p < plan.group_start[g + 1]; ++p) {
        plan.block_nnz[p] =
            block_ptr_[plan.perm[p] + 1] - block_ptr_[plan.perm[p]];
        w += plan.block_nnz[p];
      }
      plan.group_nnz.push_back(plan.group_nnz.back() + w);
      plan.max_group = std::max(plan.max_group, w);
    }
  }
  mk_ = mk::Kernel(rank);
  if (rank > 0)
    workspace().reserve(effective_threads(), mk_.padded() * sizeof(real_t));
}

void BlockedCooEngine::do_compute(mode_t mode,
                                  const std::vector<Matrix>& factors,
                                  Matrix& out) {
  MDCP_CHECK_MSG(factors.size() == order_, "one factor per mode required");
  MDCP_CHECK(mode < order_);
  const index_t r = factors[0].cols();
  for (mode_t m = 0; m < order_; ++m) {
    MDCP_CHECK_MSG(factors[m].rows() == shape_[m] && factors[m].cols() == r,
                   "factor shape mismatch in mode " << m);
  }
  out.resize(shape_[mode], r, 0);

  ModePlan& plan = plans_[mode];
  Workspace& ws = workspace();

  const sched::WorkShape shape{.total = vals_.size(),
                               .max_unit = plan.max_group,
                               .units = plan.bases.size(),
                               .out_rows = shape_[mode],
                               .rank = r,
                               .shared_writes = true};
  const sched::Decision d =
      sched::choose_schedule(shape, effective_threads(), schedule_mode());
  record_schedule(d);
  if (mk_.rank() != r) mk_ = mk::Kernel(r);
  record_tile(mk_.tile());
  const mk::Kernel mk = mk_;

  std::array<mode_t, kMaxOrder> oth{};
  mode_t no = 0;
  for (mode_t m = 0; m < order_; ++m)
    if (m != mode) oth[no++] = m;

  // Accumulates blocks perm[group_start[g]+begin, group_start[g]+end) of
  // base group g into `dst` (the output matrix or a private partial slab).
  // `tmp` is a slab-origin Hadamard accumulator (64-byte aligned).
  const auto accumulate = [&](nnz_t g, nnz_t begin, nnz_t end, real_t* tmp,
                              real_t* dst) {
    tmp = mk::assume_aligned(tmp);
    for (nnz_t bp = plan.group_start[g] + begin; bp < plan.group_start[g] + end;
         ++bp) {
      const nnz_t blk = plan.perm[bp];
      const index_t* base = &block_base_[blk * order_];
      for (nnz_t p = block_ptr_[blk]; p < block_ptr_[blk + 1]; ++p) {
        const real_t v = vals_[p];
        real_t* drow =
            dst + static_cast<nnz_t>(base[mode] + local_[mode][p]) * r;
        const auto frow = [&](mode_t j) {
          const mode_t m = oth[j];
          return factors[m].row(base[m] + local_[m][p]).data();
        };
        if (no == 2) {
          mk.fused2_accum(drow, frow(0), frow(1), v);
        } else if (no == 3) {
          mk.fused3_accum(drow, frow(0), frow(1), frow(2), v);
        } else if (no == 1) {
          mk.axpy_accum(drow, frow(0), v);
        } else {
          mk.fill(tmp, v);
          for (mode_t j = 0; j < no; ++j) mk.hadamard(tmp, frow(j));
          mk.accum(drow, tmp);
        }
      }
    }
  };
  const auto group_items = [&](nnz_t g) {
    return plan.group_start[g + 1] - plan.group_start[g];
  };

  if (d.schedule == sched::Schedule::kOwner) {
    const sched::TilePlan& tp = sched::cached_tiles(
        plan.owner, d.tiles,
        [&](int n) { return sched::tile_groups(plan.group_nnz, n); });
    // Serial scratch acquisition: growth must not throw inside the region.
    ws.reserve(effective_threads(), mk_.padded() * sizeof(real_t));
#pragma omp parallel
    {
      const auto tmp = ws.thread_scratch<real_t>(mk_.padded());
#pragma omp for schedule(dynamic, 1)
      for (int tile = 0; tile < tp.tiles(); ++tile) {
        // Whole base groups: each owns output rows [base, base+2^bits).
        sched::for_each_group_range(tp, tile, group_items,
                                    [&](nnz_t g, nnz_t begin, nnz_t end) {
                                      accumulate(g, begin, end, tmp.data(),
                                                 out.data());
                                    });
      }
    }
  } else {
    const sched::TilePlan& tp = sched::cached_tiles(
        plan.split, d.tiles, [&](int n) {
          return sched::tile_items_split(plan.block_nnz, plan.group_start, n);
        });
    const nnz_t out_elems = static_cast<nnz_t>(shape_[mode]) * r;
    ws.reserve(effective_threads(),
               (mk_.padded() + out_elems) * sizeof(real_t));
    sched::PartialSet parts;
#pragma omp parallel
    {
      const int team = team_size();
      const int tid = thread_id();
      // Accumulator first (padded stride) so both it and the partial slab
      // stay 64-byte aligned.
      const auto slab = ws.thread_scratch<real_t>(mk_.padded() + out_elems);
      real_t* tmp = slab.data();
      real_t* partial = tmp + mk_.padded();
      std::fill(partial, partial + out_elems, real_t{0});
      parts.publish(tid, partial);
      for (int tile = tid; tile < tp.tiles(); tile += team) {
        sched::for_each_group_range(tp, tile, group_items,
                                    [&](nnz_t g, nnz_t begin, nnz_t end) {
                                      accumulate(g, begin, end, tmp, partial);
                                    });
      }
#pragma omp barrier
      parts.combine_into(out.data(), team, chunk_range(out_elems, team, tid));
    }
    count_flops(sched::reduction_flops(d.tiles, shape_[mode], r));
  }
  count_flops(static_cast<std::uint64_t>(vals_.size()) * r * order_);
}

std::size_t BlockedCooEngine::memory_bytes() const {
  std::size_t b = block_base_.size() * sizeof(index_t) +
                  block_ptr_.size() * sizeof(nnz_t) +
                  vals_.size() * sizeof(real_t);
  for (const auto& l : local_) b += l.size() * sizeof(std::uint8_t);
  for (const auto& p : plans_) {
    b += p.perm.size() * sizeof(nnz_t) + p.bases.size() * sizeof(index_t) +
         p.group_start.size() * sizeof(nnz_t);
  }
  return b;
}

}  // namespace mdcp
