#include "mttkrp/blocked_coo.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mdcp {

BlockedCooEngine::BlockedCooEngine(unsigned block_bits, KernelContext ctx)
    : MttkrpEngine(ctx), bits_(block_bits) {
  MDCP_CHECK_MSG(block_bits >= 1 && block_bits <= 8,
                 "block_bits must be in [1, 8] (8-bit local offsets)");
}

BlockedCooEngine::BlockedCooEngine(const CooTensor& tensor,
                                   unsigned block_bits, KernelContext ctx)
    : BlockedCooEngine(block_bits, ctx) {
  prepare(tensor);
}

void BlockedCooEngine::do_prepare(index_t rank) {
  const CooTensor& tensor = this->tensor();
  order_ = tensor.order();
  shape_ = tensor.shape();
  block_base_.clear();
  block_ptr_.clear();
  const nnz_t n = tensor.nnz();

  // Sort nonzeros by block key (the per-mode high bits, lexicographic),
  // breaking ties by the full coordinates for in-block locality.
  std::vector<nnz_t> perm(n);
  std::iota(perm.begin(), perm.end(), nnz_t{0});
  const auto block_of = [&](mode_t m, nnz_t i) {
    return tensor.index(m, i) >> bits_;
  };
  std::stable_sort(perm.begin(), perm.end(), [&](nnz_t a, nnz_t b) {
    for (mode_t m = 0; m < order_; ++m) {
      const index_t ba = block_of(m, a);
      const index_t bb = block_of(m, b);
      if (ba != bb) return ba < bb;
    }
    for (mode_t m = 0; m < order_; ++m) {
      const index_t ia = tensor.index(m, a);
      const index_t ib = tensor.index(m, b);
      if (ia != ib) return ia < ib;
    }
    return false;
  });

  const auto same_block = [&](nnz_t a, nnz_t b) {
    for (mode_t m = 0; m < order_; ++m)
      if (block_of(m, a) != block_of(m, b)) return false;
    return true;
  };

  local_.assign(order_, {});
  for (auto& l : local_) l.resize(n);
  vals_.resize(n);
  for (nnz_t p = 0; p < n; ++p) {
    const nnz_t i = perm[p];
    if (p == 0 || !same_block(i, perm[p - 1])) {
      block_ptr_.push_back(p);
      for (mode_t m = 0; m < order_; ++m)
        block_base_.push_back((tensor.index(m, i) >> bits_) << bits_);
    }
    for (mode_t m = 0; m < order_; ++m) {
      local_[m][p] = static_cast<std::uint8_t>(
          tensor.index(m, i) -
          block_base_[(block_ptr_.size() - 1) * order_ + m]);
    }
    vals_[p] = tensor.value(i);
  }
  block_ptr_.push_back(n);

  // Per-mode scatter plans: group blocks by their mode-m base.
  const nnz_t blocks = num_blocks();
  plans_.assign(order_, {});
  for (mode_t m = 0; m < order_; ++m) {
    ModePlan& plan = plans_[m];
    plan.perm.resize(blocks);
    std::iota(plan.perm.begin(), plan.perm.end(), nnz_t{0});
    std::stable_sort(plan.perm.begin(), plan.perm.end(),
                     [&](nnz_t a, nnz_t b) {
                       return block_base_[a * order_ + m] <
                              block_base_[b * order_ + m];
                     });
    for (nnz_t p = 0; p < blocks; ++p) {
      const index_t base = block_base_[plan.perm[p] * order_ + m];
      if (plan.bases.empty() || plan.bases.back() != base) {
        plan.bases.push_back(base);
        plan.group_start.push_back(p);
      }
    }
    plan.group_start.push_back(blocks);
  }
  if (rank > 0)
    workspace().reserve(effective_threads(), rank * sizeof(real_t));
}

void BlockedCooEngine::do_compute(mode_t mode,
                                  const std::vector<Matrix>& factors,
                                  Matrix& out) {
  MDCP_CHECK_MSG(factors.size() == order_, "one factor per mode required");
  MDCP_CHECK(mode < order_);
  const index_t r = factors[0].cols();
  for (mode_t m = 0; m < order_; ++m) {
    MDCP_CHECK_MSG(factors[m].rows() == shape_[m] && factors[m].cols() == r,
                   "factor shape mismatch in mode " << m);
  }
  out.resize(shape_[mode], r, 0);

  const ModePlan& plan = plans_[mode];
  Workspace& ws = workspace();
#pragma omp parallel
  {
    const auto tmp = ws.thread_scratch<real_t>(r);
#pragma omp for schedule(dynamic, 4)
    for (std::int64_t g = 0;
         g < static_cast<std::int64_t>(plan.bases.size()); ++g) {
      // This group owns output rows [base, base + 2^bits): race-free.
      for (nnz_t bp = plan.group_start[static_cast<std::size_t>(g)];
           bp < plan.group_start[static_cast<std::size_t>(g) + 1]; ++bp) {
        const nnz_t blk = plan.perm[bp];
        const index_t* base = &block_base_[blk * order_];
        for (nnz_t p = block_ptr_[blk]; p < block_ptr_[blk + 1]; ++p) {
          const real_t v = vals_[p];
          for (index_t k = 0; k < r; ++k) tmp[k] = v;
          for (mode_t m = 0; m < order_; ++m) {
            if (m == mode) continue;
            const auto frow = factors[m].row(base[m] + local_[m][p]);
            for (index_t k = 0; k < r; ++k) tmp[k] *= frow[k];
          }
          auto orow = out.row(base[mode] + local_[mode][p]);
          for (index_t k = 0; k < r; ++k) orow[k] += tmp[k];
        }
      }
    }
  }
  count_flops(static_cast<std::uint64_t>(vals_.size()) * r * order_);
}

std::size_t BlockedCooEngine::memory_bytes() const {
  std::size_t b = block_base_.size() * sizeof(index_t) +
                  block_ptr_.size() * sizeof(nnz_t) +
                  vals_.size() * sizeof(real_t);
  for (const auto& l : local_) b += l.size() * sizeof(std::uint8_t);
  for (const auto& p : plans_) {
    b += p.perm.size() * sizeof(nnz_t) + p.bases.size() * sizeof(index_t) +
         p.group_start.size() * sizeof(nnz_t);
  }
  return b;
}

}  // namespace mdcp
