// Blocked-COO MTTKRP engine (HiCOO-style).
//
// Nonzeros are grouped into aligned N-dimensional blocks of side 2^b
// (b ≤ 8): each block stores its base coordinates once, and every nonzero
// inside it only stores 8-bit block-local offsets. Compared to plain COO
// this shrinks index memory from N·4 to ~N·1 bytes per nonzero and gives
// the kernel block-level locality: all factor rows touched by one block lie
// within a 2^b-row window per mode.
//
// This is the storage idea of HiCOO (Li et al., SC'18 — the same research
// line as the target paper), implemented here in its MTTKRP-engine form.
//
// Parallelization: for each output mode, blocks are grouped by their
// mode-m base; a group owns the disjoint output row range [base, base+2^b).
// The numeric phase runs the schedule picked by sched::choose_schedule —
// owner-computes tiles of whole base groups (no atomics, fixed accumulation
// order, bitwise deterministic for any thread count) or, when one base
// group dominates, nnz-weighted tiles cutting between blocks with
// per-thread partial outputs combined in fixed thread order. The length-R
// accumulator and any partial slab come from the context workspace.
#pragma once

#include <vector>

#include "mttkrp/engine.hpp"
#include "mttkrp/microkernel.hpp"
#include "sched/partition.hpp"

namespace mdcp {

class BlockedCooEngine final : public MttkrpEngine {
 public:
  /// `block_bits` = log2 of the block side (1..8; 8-bit local offsets).
  explicit BlockedCooEngine(unsigned block_bits = 7, KernelContext ctx = {});
  /// Convenience: construct and prepare in one step.
  explicit BlockedCooEngine(const CooTensor& tensor, unsigned block_bits = 7,
                            KernelContext ctx = {});

  std::string name() const override { return "bcoo"; }
  std::size_t memory_bytes() const override;

  nnz_t num_blocks() const noexcept {
    return block_base_.empty() ? 0 : block_ptr_.size() - 1;
  }
  unsigned block_bits() const noexcept { return bits_; }

 protected:
  void do_prepare(index_t rank) override;
  void do_compute(mode_t mode, const std::vector<Matrix>& factors,
                  Matrix& out) override;

 private:
  struct ModePlan {
    // Blocks grouped by their mode-m base: blocks perm[group_start[g] ..
    // group_start[g+1]) all share base `bases[g]` in mode m.
    std::vector<nnz_t> perm;
    std::vector<index_t> bases;
    std::vector<nnz_t> group_start;
    std::vector<nnz_t> block_nnz;   ///< weight of perm[p]'s block (items)
    std::vector<nnz_t> group_nnz;   ///< cumulative group weight, size g+1
    nnz_t max_group = 0;            ///< heaviest base group (skew input)
    sched::CachedPlan owner;        ///< whole-group tiles
    sched::CachedPlan split;        ///< block-granular tiles (privatized)
  };

  unsigned bits_;
  mode_t order_ = 0;
  shape_t shape_;
  // Block-level storage: bases are [block * order + m].
  std::vector<index_t> block_base_;
  std::vector<nnz_t> block_ptr_;  // nonzero ranges per block (size blocks+1)
  // Nonzero-level storage (sorted by block): local offsets per mode + value.
  std::vector<std::vector<std::uint8_t>> local_;  // [mode][nnz]
  std::vector<real_t> vals_;
  std::vector<ModePlan> plans_;  // one per mode
  mk::Kernel mk_;                // rank-blocked dispatcher, set per prepare()
};

}  // namespace mdcp
