#include "mttkrp/coo_mttkrp.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "sched/reduce.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mdcp {

CooMttkrpEngine::CooMttkrpEngine(KernelContext ctx)
    : MttkrpEngine(ctx) {}

CooMttkrpEngine::CooMttkrpEngine(const CooTensor& tensor, KernelContext ctx)
    : MttkrpEngine(ctx) {
  prepare(tensor);
}

void CooMttkrpEngine::do_prepare(index_t rank) {
  const CooTensor& t = tensor();
  plans_.assign(t.order(), {});
  for (mode_t m = 0; m < t.order(); ++m) {
    ModePlan& plan = plans_[m];
    plan.perm.resize(t.nnz());
    std::iota(plan.perm.begin(), plan.perm.end(), nnz_t{0});
    const auto idx = t.mode_indices(m);
    std::stable_sort(plan.perm.begin(), plan.perm.end(),
                     [&](nnz_t a, nnz_t b) { return idx[a] < idx[b]; });
    for (nnz_t i = 0; i < plan.perm.size(); ++i) {
      const index_t row = idx[plan.perm[i]];
      if (plan.rows.empty() || plan.rows.back() != row) {
        plan.rows.push_back(row);
        plan.row_start.push_back(i);
      }
    }
    plan.row_start.push_back(plan.perm.size());
    for (std::size_t g = 0; g + 1 < plan.row_start.size(); ++g)
      plan.max_group =
          std::max(plan.max_group, plan.row_start[g + 1] - plan.row_start[g]);
  }
  mk_ = mk::Kernel(rank);
  if (rank > 0)
    workspace().reserve(effective_threads(),
                        mk_.padded() * sizeof(real_t));
}

void CooMttkrpEngine::do_compute(mode_t mode,
                                 const std::vector<Matrix>& factors,
                                 Matrix& out) {
  const CooTensor& t = tensor();
  const index_t r = check_factors(t, factors);
  MDCP_CHECK(mode < t.order());
  out.resize(t.dim(mode), r, 0);

  ModePlan& plan = plans_[mode];
  const mode_t order = t.order();
  Workspace& ws = workspace();

  const sched::WorkShape shape{.total = t.nnz(),
                               .max_unit = plan.max_group,
                               .units = plan.rows.size(),
                               .out_rows = t.dim(mode),
                               .rank = r,
                               .shared_writes = true};
  const sched::Decision d =
      sched::choose_schedule(shape, effective_threads(), schedule_mode());
  record_schedule(d);
  if (mk_.rank() != r) mk_ = mk::Kernel(r);
  record_tile(mk_.tile());
  const mk::Kernel mk = mk_;

  // Modes other than the output mode, resolved once so the per-nonzero loop
  // can take the fused order-3/4 microkernel paths without re-scanning.
  std::array<mode_t, kMaxOrder> oth{};
  mode_t no = 0;
  for (mode_t m = 0; m < order; ++m)
    if (m != mode) oth[no++] = m;

  // Accumulates the nonzeros perm[row_start[g]+begin, row_start[g]+end)
  // of row group g into `dst` (the output row or a private partial row).
  // `tmp` is a slab-origin Hadamard accumulator (64-byte aligned).
  const auto accumulate = [&](nnz_t g, nnz_t begin, nnz_t end, real_t* tmp,
                              real_t* dst) {
    tmp = mk::assume_aligned(tmp);
    for (nnz_t p = plan.row_start[g] + begin; p < plan.row_start[g] + end;
         ++p) {
      const nnz_t i = plan.perm[p];
      const real_t v = t.value(i);
      if (no == 2) {
        mk.fused2_accum(dst, factors[oth[0]].row(t.index(oth[0], i)).data(),
                        factors[oth[1]].row(t.index(oth[1], i)).data(), v);
      } else if (no == 3) {
        mk.fused3_accum(dst, factors[oth[0]].row(t.index(oth[0], i)).data(),
                        factors[oth[1]].row(t.index(oth[1], i)).data(),
                        factors[oth[2]].row(t.index(oth[2], i)).data(), v);
      } else if (no == 1) {
        mk.axpy_accum(dst, factors[oth[0]].row(t.index(oth[0], i)).data(), v);
      } else {
        mk.fill(tmp, v);
        for (mode_t j = 0; j < no; ++j)
          mk.hadamard(tmp, factors[oth[j]].row(t.index(oth[j], i)).data());
        mk.accum(dst, tmp);
      }
    }
  };
  const auto group_size = [&](nnz_t g) {
    return plan.row_start[g + 1] - plan.row_start[g];
  };

  if (d.schedule == sched::Schedule::kOwner) {
    const sched::TilePlan& tp = sched::cached_tiles(
        plan.owner, d.tiles,
        [&](int n) { return sched::tile_groups(plan.row_start, n); });
    // Scratch is acquired serially, up front: a budget trip or allocation
    // failure inside the parallel region could not propagate (an exception
    // escaping an OpenMP structured block terminates).
    ws.reserve(effective_threads(), mk_.padded() * sizeof(real_t));
#pragma omp parallel
    {
      const auto tmp = ws.thread_scratch<real_t>(mk_.padded());
#pragma omp for schedule(dynamic, 1)
      for (int tile = 0; tile < tp.tiles(); ++tile) {
        sched::for_each_group_range(
            tp, tile, group_size, [&](nnz_t g, nnz_t begin, nnz_t end) {
              accumulate(g, begin, end, tmp.data(), out.row(plan.rows[g]).data());
            });
      }
    }
  } else {
    const sched::TilePlan& tp = sched::cached_tiles(
        plan.split, d.tiles,
        [&](int n) { return sched::tile_groups_split(plan.row_start, n); });
    const nnz_t out_elems = static_cast<nnz_t>(t.dim(mode)) * r;
    ws.reserve(effective_threads(),
               (mk_.padded() + out_elems) * sizeof(real_t));
    sched::PartialSet parts;
#pragma omp parallel
    {
      const int team = team_size();
      const int tid = thread_id();
      // One slab per thread: the Hadamard accumulator first (padded stride,
      // so both it and the partial slab behind it stay 64-byte aligned),
      // then the partial output (dim × R).
      const auto slab = ws.thread_scratch<real_t>(mk_.padded() + out_elems);
      real_t* tmp = slab.data();
      real_t* partial = tmp + mk_.padded();
      std::fill(partial, partial + out_elems, real_t{0});
      parts.publish(tid, partial);
      // Static tile→thread assignment: the work each thread accumulates is
      // a function of (team, tid) only, so the fixed-order combine below
      // yields bitwise-identical results run to run.
      for (int tile = tid; tile < tp.tiles(); tile += team) {
        sched::for_each_group_range(
            tp, tile, group_size, [&](nnz_t g, nnz_t begin, nnz_t end) {
              accumulate(g, begin, end, tmp,
                         partial + static_cast<nnz_t>(plan.rows[g]) * r);
            });
      }
#pragma omp barrier
      parts.combine_into(out.data(), team, chunk_range(out_elems, team, tid));
    }
    count_flops(sched::reduction_flops(d.tiles, t.dim(mode), r));
  }
  count_flops(static_cast<std::uint64_t>(t.nnz()) * r * order);
}

std::size_t CooMttkrpEngine::memory_bytes() const {
  std::size_t b = 0;
  for (const auto& p : plans_) {
    b += p.perm.size() * sizeof(nnz_t);
    b += p.rows.size() * sizeof(index_t);
    b += p.row_start.size() * sizeof(nnz_t);
  }
  return b;
}

}  // namespace mdcp
