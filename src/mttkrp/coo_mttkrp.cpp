#include "mttkrp/coo_mttkrp.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mdcp {

CooMttkrpEngine::CooMttkrpEngine(KernelContext ctx)
    : MttkrpEngine(ctx) {}

CooMttkrpEngine::CooMttkrpEngine(const CooTensor& tensor, KernelContext ctx)
    : MttkrpEngine(ctx) {
  prepare(tensor);
}

void CooMttkrpEngine::do_prepare(index_t rank) {
  const CooTensor& t = tensor();
  plans_.assign(t.order(), {});
  for (mode_t m = 0; m < t.order(); ++m) {
    ModePlan& plan = plans_[m];
    plan.perm.resize(t.nnz());
    std::iota(plan.perm.begin(), plan.perm.end(), nnz_t{0});
    const auto idx = t.mode_indices(m);
    std::stable_sort(plan.perm.begin(), plan.perm.end(),
                     [&](nnz_t a, nnz_t b) { return idx[a] < idx[b]; });
    for (nnz_t i = 0; i < plan.perm.size(); ++i) {
      const index_t row = idx[plan.perm[i]];
      if (plan.rows.empty() || plan.rows.back() != row) {
        plan.rows.push_back(row);
        plan.row_start.push_back(i);
      }
    }
    plan.row_start.push_back(plan.perm.size());
  }
  if (rank > 0)
    workspace().reserve(effective_threads(), rank * sizeof(real_t));
}

void CooMttkrpEngine::do_compute(mode_t mode,
                                 const std::vector<Matrix>& factors,
                                 Matrix& out) {
  const CooTensor& t = tensor();
  const index_t r = check_factors(t, factors);
  MDCP_CHECK(mode < t.order());
  out.resize(t.dim(mode), r, 0);

  const ModePlan& plan = plans_[mode];
  const mode_t order = t.order();
  Workspace& ws = workspace();

#pragma omp parallel
  {
    const auto tmp = ws.thread_scratch<real_t>(r);
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t g = 0; g < static_cast<std::int64_t>(plan.rows.size());
         ++g) {
      auto orow = out.row(plan.rows[static_cast<std::size_t>(g)]);
      for (nnz_t p = plan.row_start[static_cast<std::size_t>(g)];
           p < plan.row_start[static_cast<std::size_t>(g) + 1]; ++p) {
        const nnz_t i = plan.perm[p];
        const real_t v = t.value(i);
        for (index_t k = 0; k < r; ++k) tmp[k] = v;
        for (mode_t m = 0; m < order; ++m) {
          if (m == mode) continue;
          const auto frow = factors[m].row(t.index(m, i));
          for (index_t k = 0; k < r; ++k) tmp[k] *= frow[k];
        }
        for (index_t k = 0; k < r; ++k) orow[k] += tmp[k];
      }
    }
  }
  count_flops(static_cast<std::uint64_t>(t.nnz()) * r * order);
}

std::size_t CooMttkrpEngine::memory_bytes() const {
  std::size_t b = 0;
  for (const auto& p : plans_) {
    b += p.perm.size() * sizeof(nnz_t);
    b += p.rows.size() * sizeof(index_t);
    b += p.row_start.size() * sizeof(nnz_t);
  }
  return b;
}

}  // namespace mdcp
