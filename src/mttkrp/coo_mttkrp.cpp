#include "mttkrp/coo_mttkrp.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mdcp {

CooMttkrpEngine::CooMttkrpEngine(const CooTensor& tensor) : tensor_(tensor) {
  plans_.resize(tensor.order());
  for (mode_t m = 0; m < tensor.order(); ++m) {
    ModePlan& plan = plans_[m];
    plan.perm.resize(tensor.nnz());
    std::iota(plan.perm.begin(), plan.perm.end(), nnz_t{0});
    const auto idx = tensor.mode_indices(m);
    std::stable_sort(plan.perm.begin(), plan.perm.end(),
                     [&](nnz_t a, nnz_t b) { return idx[a] < idx[b]; });
    for (nnz_t i = 0; i < plan.perm.size(); ++i) {
      const index_t row = idx[plan.perm[i]];
      if (plan.rows.empty() || plan.rows.back() != row) {
        plan.rows.push_back(row);
        plan.row_start.push_back(i);
      }
    }
    plan.row_start.push_back(plan.perm.size());
  }
}

void CooMttkrpEngine::compute(mode_t mode, const std::vector<Matrix>& factors,
                              Matrix& out) {
  const index_t r = check_factors(tensor_, factors);
  MDCP_CHECK(mode < tensor_.order());
  out.resize(tensor_.dim(mode), r, 0);

  const ModePlan& plan = plans_[mode];
  const mode_t order = tensor_.order();

#pragma omp parallel
  {
    std::vector<real_t> tmp(r);
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t g = 0; g < static_cast<std::int64_t>(plan.rows.size());
         ++g) {
      auto orow = out.row(plan.rows[static_cast<std::size_t>(g)]);
      for (nnz_t p = plan.row_start[static_cast<std::size_t>(g)];
           p < plan.row_start[static_cast<std::size_t>(g) + 1]; ++p) {
        const nnz_t i = plan.perm[p];
        const real_t v = tensor_.value(i);
        for (index_t k = 0; k < r; ++k) tmp[k] = v;
        for (mode_t m = 0; m < order; ++m) {
          if (m == mode) continue;
          const auto frow = factors[m].row(tensor_.index(m, i));
          for (index_t k = 0; k < r; ++k) tmp[k] *= frow[k];
        }
        for (index_t k = 0; k < r; ++k) orow[k] += tmp[k];
      }
    }
  }
}

std::size_t CooMttkrpEngine::memory_bytes() const {
  std::size_t b = 0;
  for (const auto& p : plans_) {
    b += p.perm.size() * sizeof(nnz_t);
    b += p.rows.size() * sizeof(index_t);
    b += p.row_start.size() * sizeof(nnz_t);
  }
  return b;
}

}  // namespace mdcp
