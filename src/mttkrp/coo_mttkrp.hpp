// COO-direct MTTKRP engine.
//
// One pass over the nonzeros per output mode: for each nonzero, the value is
// multiplied by the Hadamard product of the N-1 relevant factor rows and
// accumulated into the output row — O(N·nnz·R) per mode, O(N²·nnz·R) per
// CP-ALS iteration. No factoring, no memoization; this is the simplest
// correct parallel kernel and the floor every optimized engine must beat.
//
// Parallelization: prepare() precomputes, per mode, a permutation of the
// nonzeros sorted by that mode's index together with row-group offsets.
// The numeric phase runs the schedule picked by sched::choose_schedule —
// owner-computes tiles of whole row groups (atomics-free, bitwise
// deterministic for any thread count) or, when one hub row dominates,
// balanced tiles that split row groups across threads with per-thread
// partial outputs combined in fixed thread order. Scratch (the length-R
// Hadamard accumulator and any partial-output slab) comes from the context
// workspace.
#pragma once

#include <vector>

#include "mttkrp/engine.hpp"
#include "mttkrp/microkernel.hpp"
#include "sched/partition.hpp"

namespace mdcp {

class CooMttkrpEngine final : public MttkrpEngine {
 public:
  explicit CooMttkrpEngine(KernelContext ctx = {});
  /// Convenience: construct and prepare in one step.
  explicit CooMttkrpEngine(const CooTensor& tensor, KernelContext ctx = {});

  std::string name() const override { return "coo"; }
  std::size_t memory_bytes() const override;

 protected:
  void do_prepare(index_t rank) override;
  void do_compute(mode_t mode, const std::vector<Matrix>& factors,
                  Matrix& out) override;

 private:
  struct ModePlan {
    std::vector<nnz_t> perm;       ///< nonzeros sorted by this mode's index
    std::vector<index_t> rows;     ///< distinct row indices, ascending
    std::vector<nnz_t> row_start;  ///< CSR offsets into perm, size rows+1
    nnz_t max_group = 0;           ///< heaviest row group (skew input)
    sched::CachedPlan owner;       ///< whole-group tiles
    sched::CachedPlan split;       ///< balanced tiles (privatized path)
  };

  std::vector<ModePlan> plans_;  // one per mode
  mk::Kernel mk_;                // rank-blocked dispatcher, set per prepare()
};

}  // namespace mdcp
