#include "mttkrp/engine.hpp"

#include <algorithm>
#include <limits>
#include <string_view>

#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace mdcp {

namespace {

// Registry references resolved once — the NVI wrappers run once per
// prepare()/compute(), so metric updates must stay at relaxed-atomic cost.
obs::Counter& prepare_calls_metric() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("kernel.prepare_calls");
  return c;
}
obs::Counter& compute_calls_metric() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("kernel.compute_calls");
  return c;
}
obs::Counter& flops_metric() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("kernel.flops");
  return c;
}
obs::Gauge& symbolic_seconds_metric() {
  static obs::Gauge& g =
      obs::MetricsRegistry::instance().gauge("kernel.symbolic_seconds");
  return g;
}
obs::Gauge& numeric_seconds_metric() {
  static obs::Gauge& g =
      obs::MetricsRegistry::instance().gauge("kernel.numeric_seconds");
  return g;
}
obs::Gauge& peak_scratch_metric() {
  static obs::Gauge& g =
      obs::MetricsRegistry::instance().gauge("workspace.peak_scratch_bytes");
  return g;
}
obs::Counter& owner_launches_metric() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("sched.owner_launches");
  return c;
}
obs::Counter& privatized_launches_metric() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("sched.privatized_launches");
  return c;
}
obs::Counter& degradations_metric() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("engine.degradations");
  return c;
}

}  // namespace

MttkrpEngine::MttkrpEngine(KernelContext ctx) : ctx_(ctx) {
  if (ctx_.workspace == nullptr) ctx_.workspace = &default_workspace();
}

void MttkrpEngine::prepare(const CooTensor& tensor, index_t rank) {
  tensor_ = &tensor;
  rank_hint_ = rank;
  // The context budget governs this execution: install it on the arena so
  // over-budget scratch growth fails as a typed budget_error instead of an
  // unbounded allocation.
  if (ctx_.mem_budget != 0) ctx_.workspace->set_budget_bytes(ctx_.mem_budget);
  WallTimer timer;
  {
    MDCP_TRACE_SPAN(("prepare:" + name()).c_str(), "rank",
                    static_cast<std::int64_t>(rank));
    obs::fr_record(obs::FrEvent::kPrepareBegin, obs::FrPhase::kPrepare,
                   static_cast<std::int64_t>(rank));
    obs::fr_beat(obs::FrPhase::kPrepare, static_cast<std::int64_t>(rank));
    ThreadScope scope(ctx_.threads);
    do_prepare(rank);
    obs::fr_record(obs::FrEvent::kPrepareEnd, obs::FrPhase::kPrepare);
  }
  // name() may change during do_prepare (the auto engine resolves to its
  // chosen strategy), so the compute-span label is cached afterwards.
  trace_label_ = "mttkrp:" + name();
  const double secs = timer.seconds();
  stats_.symbolic_seconds += secs;
  ++stats_.prepare_calls;
  prepare_calls_metric().add();
  symbolic_seconds_metric().add(secs);
  if (ctx_.stats != nullptr) {
    ctx_.stats->symbolic_seconds += secs;
    ++ctx_.stats->prepare_calls;
  }
}

void MttkrpEngine::compute(mode_t mode, const std::vector<Matrix>& factors,
                           Matrix& out) {
  MDCP_CHECK_MSG(prepared(), "engine " << name()
                                       << ": compute() before prepare()");
  WallTimer timer;
  {
    // PerfRegion doubles as the numeric-phase trace span; with perf enabled
    // it also attaches hardware-counter deltas to the span and to the
    // perf.* metrics (no-ops at two relaxed loads when both are off).
    obs::PerfRegion perf_region(trace_label_.c_str(), "mode",
                                static_cast<std::int64_t>(mode));
    obs::fr_record(obs::FrEvent::kComputeBegin, obs::FrPhase::kCompute,
                   static_cast<std::int64_t>(mode));
    obs::fr_beat(obs::FrPhase::kCompute, static_cast<std::int64_t>(mode));
    // Fault-injection site: deterministic liveness stall so watchdog firing
    // is testable without wall-clock flakiness. The sleeping thread stops
    // beating, which is exactly the signal the watchdog watches for.
    if (fault::should_inject(fault::Site::kStall)) {
      obs::fr_record(
          obs::FrEvent::kStall, obs::FrPhase::kCompute,
          static_cast<std::int64_t>(
              fault::FaultPlan::instance().config(fault::Site::kStall)
                  .threshold));
      fault::inject_stall();
    }
    ThreadScope scope(ctx_.threads);
    do_compute(mode, factors, out);
    obs::fr_record(obs::FrEvent::kComputeEnd, obs::FrPhase::kCompute,
                   static_cast<std::int64_t>(mode));
    obs::fr_beat(obs::FrPhase::kCompute, static_cast<std::int64_t>(mode));
    // Fault-injection site: poison the kernel output with a quiet NaN so the
    // CP-ALS numerical-recovery path can be exercised deterministically.
    // Compiled to nothing without MDCP_ENABLE_FAULTINJECT.
    if (fault::should_inject(fault::Site::kNan) && out.size() > 0)
      out(0, 0) = std::numeric_limits<real_t>::quiet_NaN();
  }
  const double secs = timer.seconds();
  stats_.numeric_seconds += secs;
  ++stats_.compute_calls;
  stats_.peak_scratch_bytes =
      std::max(stats_.peak_scratch_bytes, ctx_.workspace->peak_bytes());
  compute_calls_metric().add();
  numeric_seconds_metric().add(secs);
  peak_scratch_metric().record_max(
      static_cast<double>(ctx_.workspace->peak_bytes()));
  if (ctx_.stats != nullptr) {
    ctx_.stats->numeric_seconds += secs;
    ++ctx_.stats->compute_calls;
    ctx_.stats->peak_scratch_bytes = std::max(ctx_.stats->peak_scratch_bytes,
                                              ctx_.workspace->peak_bytes());
  }
}

const CooTensor& MttkrpEngine::tensor() const {
  MDCP_CHECK_MSG(tensor_ != nullptr, "engine not prepared");
  return *tensor_;
}

void MttkrpEngine::count_flops(std::uint64_t flops) noexcept {
  stats_.flops += flops;
  flops_metric().add(flops);
  if (ctx_.stats != nullptr) ctx_.stats->flops += flops;
}

void MttkrpEngine::record_schedule(const sched::Decision& d) noexcept {
  const bool priv = d.schedule == sched::Schedule::kPrivatized;
  record_schedule(d, priv ? 0 : 1, priv ? 1 : 0);
}

void MttkrpEngine::record_schedule(const sched::Decision& d,
                                   std::uint64_t owner_launches,
                                   std::uint64_t privatized_launches,
                                   bool bump_metrics) noexcept {
  MDCP_TRACE_SPAN(d.schedule == sched::Schedule::kPrivatized
                      ? "sched.privatized"
                      : "sched.owner",
                  "tiles", static_cast<std::int64_t>(d.tiles));
  obs::fr_record(obs::FrEvent::kTileBatch, obs::FrPhase::kCompute,
                 static_cast<std::int64_t>(d.tiles),
                 static_cast<std::int64_t>(d.schedule));
  if (bump_metrics) {
    owner_launches_metric().add(owner_launches);
    privatized_launches_metric().add(privatized_launches);
  }
  const auto update = [&](KernelStats& s) {
    s.owner_launches += owner_launches;
    s.privatized_launches += privatized_launches;
    s.last_schedule = static_cast<std::uint8_t>(d.schedule);
    s.last_tiles = d.tiles;
    s.last_sched_reason = d.reason;
  };
  update(stats_);
  if (ctx_.stats != nullptr) update(*ctx_.stats);
}

void MttkrpEngine::record_tile(index_t tile) noexcept {
  MDCP_TRACE_SPAN("mk.tile", "width", static_cast<std::int64_t>(tile));
  stats_.last_tile = tile;
  if (ctx_.stats != nullptr) ctx_.stats->last_tile = tile;
}

void MttkrpEngine::record_plan_source(const char* source) noexcept {
  MDCP_TRACE_SPAN("tuner.plan_source", "history",
                  static_cast<std::int64_t>(
                      std::string_view(source) == "history" ? 1 : 0));
  stats_.plan_source = source;
  if (ctx_.stats != nullptr) ctx_.stats->plan_source = source;
}

void MttkrpEngine::record_degradation(const char* reason) noexcept {
  obs::fr_record(obs::FrEvent::kDegradation, obs::FrPhase::kCompute);
  ++stats_.degradations;
  stats_.last_degradation_reason = reason;
  degradations_metric().add();
  if (ctx_.stats != nullptr) {
    ++ctx_.stats->degradations;
    ctx_.stats->last_degradation_reason = reason;
  }
}

int MttkrpEngine::effective_threads() const noexcept {
  return ctx_.threads > 0 ? ctx_.threads : num_threads();
}

index_t check_factors(const CooTensor& tensor,
                      const std::vector<Matrix>& factors) {
  MDCP_CHECK_MSG(factors.size() == tensor.order(),
                 "need one factor matrix per mode");
  MDCP_CHECK_MSG(!factors.empty() && factors[0].cols() > 0,
                 "factor matrices must have positive rank");
  const index_t r = factors[0].cols();
  for (mode_t m = 0; m < tensor.order(); ++m) {
    MDCP_CHECK_MSG(factors[m].rows() == tensor.dim(m),
                   "factor " << m << " row count " << factors[m].rows()
                             << " != mode size " << tensor.dim(m));
    MDCP_CHECK_MSG(factors[m].cols() == r, "factor ranks differ across modes");
  }
  return r;
}

void mttkrp_reference(const CooTensor& tensor,
                      const std::vector<Matrix>& factors, mode_t mode,
                      Matrix& out) {
  const index_t r = check_factors(tensor, factors);
  out.resize(tensor.dim(mode), r, 0);
  for (nnz_t i = 0; i < tensor.nnz(); ++i) {
    const index_t row = tensor.index(mode, i);
    for (index_t k = 0; k < r; ++k) {
      real_t prod = tensor.value(i);
      for (mode_t m = 0; m < tensor.order(); ++m) {
        if (m == mode) continue;
        prod *= factors[m](tensor.index(m, i), k);
      }
      out(row, k) += prod;
    }
  }
}

}  // namespace mdcp
