#include "mttkrp/engine.hpp"

#include "util/error.hpp"

namespace mdcp {

index_t check_factors(const CooTensor& tensor,
                      const std::vector<Matrix>& factors) {
  MDCP_CHECK_MSG(factors.size() == tensor.order(),
                 "need one factor matrix per mode");
  MDCP_CHECK_MSG(!factors.empty() && factors[0].cols() > 0,
                 "factor matrices must have positive rank");
  const index_t r = factors[0].cols();
  for (mode_t m = 0; m < tensor.order(); ++m) {
    MDCP_CHECK_MSG(factors[m].rows() == tensor.dim(m),
                   "factor " << m << " row count " << factors[m].rows()
                             << " != mode size " << tensor.dim(m));
    MDCP_CHECK_MSG(factors[m].cols() == r, "factor ranks differ across modes");
  }
  return r;
}

void mttkrp_reference(const CooTensor& tensor,
                      const std::vector<Matrix>& factors, mode_t mode,
                      Matrix& out) {
  const index_t r = check_factors(tensor, factors);
  out.resize(tensor.dim(mode), r, 0);
  for (nnz_t i = 0; i < tensor.nnz(); ++i) {
    const index_t row = tensor.index(mode, i);
    for (index_t k = 0; k < r; ++k) {
      real_t prod = tensor.value(i);
      for (mode_t m = 0; m < tensor.order(); ++m) {
        if (m == mode) continue;
        prod *= factors[m](tensor.index(m, i), k);
      }
      out(row, k) += prod;
    }
  }
}

}  // namespace mdcp
