// Abstract interface for MTTKRP computation engines.
//
// CP-ALS (and the benchmarks) are written against this interface so that the
// COO baseline, the Tensor-Toolbox-style TTV chain, the SPLATT-style CSF
// kernel, and the memoized dimension-tree engines are interchangeable — and
// so the model-driven tuner can swap in whichever strategy it predicts to be
// fastest.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "tensor/coo_tensor.hpp"

namespace mdcp {

class MttkrpEngine {
 public:
  virtual ~MttkrpEngine() = default;

  /// Computes out = MTTKRP(X, {factors}, mode): the matricized tensor in
  /// `mode` times the Khatri–Rao product of all other factors. `out` is
  /// resized to (dim(mode) × R). `factors` must contain one I_m×R matrix per
  /// mode, all with the same column count R.
  virtual void compute(mode_t mode, const std::vector<Matrix>& factors,
                       Matrix& out) = 0;

  /// Notifies the engine that factor matrix `mode` has changed since the
  /// last compute() call. Engines that memoize partial products use this to
  /// invalidate stale intermediates; stateless engines ignore it.
  virtual void factor_updated(mode_t mode) { (void)mode; }

  /// Drops all memoized state (stateless engines: no-op).
  virtual void invalidate_all() {}

  /// Engine identifier for logs and benchmark tables.
  virtual std::string name() const = 0;

  /// Bytes of auxiliary structures currently held (index arrays, memoized
  /// value matrices, CSF fibers, ...), excluding the input tensor itself.
  virtual std::size_t memory_bytes() const { return 0; }

  /// Peak bytes of auxiliary structures observed so far.
  virtual std::size_t peak_memory_bytes() const { return memory_bytes(); }
};

/// Checks that the factor list is consistent with the tensor: one matrix per
/// mode, rows match mode sizes, uniform column count. Returns R.
index_t check_factors(const CooTensor& tensor,
                      const std::vector<Matrix>& factors);

/// Reference MTTKRP: direct quadratic-in-order evaluation straight from the
/// definition, single-threaded. Used as the oracle in tests.
void mttkrp_reference(const CooTensor& tensor,
                      const std::vector<Matrix>& factors, mode_t mode,
                      Matrix& out);

}  // namespace mdcp
