// Abstract interface for MTTKRP computation engines.
//
// CP-ALS (and the benchmarks) are written against this interface so that the
// COO baseline, the Tensor-Toolbox-style TTV chain, the SPLATT-style CSF
// kernel, and the memoized dimension-tree engines are interchangeable — and
// so the model-driven tuner can swap in whichever strategy it predicts to be
// fastest.
//
// Lifecycle: every engine is constructed from a KernelContext (workspace +
// thread budget + optional stats sink), then runs an explicit two-phase
// protocol:
//
//   engine.prepare(tensor, rank);          // symbolic phase: build index
//                                          //   structures, reserve scratch
//   engine.compute(mode, factors, out);    // numeric phase: allocation-free,
//                                          //   scratch from the workspace
//
// The base class wraps both phases (non-virtual interface): it times the
// symbolic and numeric work, applies the context's thread override, and
// tracks the workspace scratch high-water mark, so every engine reports
// uniform KernelStats without touching a timer itself. Subclasses implement
// do_prepare()/do_compute(). The convenience constructors that take a tensor
// call prepare() immediately; either way the tensor must outlive the engine.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "sched/schedule.hpp"
#include "tensor/coo_tensor.hpp"
#include "util/workspace.hpp"

namespace mdcp {

class MttkrpEngine {
 public:
  explicit MttkrpEngine(KernelContext ctx = {});
  virtual ~MttkrpEngine() = default;

  /// Symbolic phase: binds the engine to `tensor` (which must outlive it)
  /// and builds all index structures. `rank` is a hint used to pre-reserve
  /// per-thread scratch and by rank-dependent engines (the tuner); 0 =
  /// unknown, scratch is then sized at the first compute(). May be called
  /// again to re-target the engine at a different tensor.
  void prepare(const CooTensor& tensor, index_t rank = 0);

  /// Numeric phase: out = MTTKRP(X, {factors}, mode) — the matricized
  /// tensor in `mode` times the Khatri–Rao product of all other factors.
  /// `out` is resized to (dim(mode) × R). `factors` must contain one I_m×R
  /// matrix per mode, all with the same column count R. Requires prepare();
  /// draws all scratch from the context workspace (no heap allocation on
  /// the steady-state path).
  void compute(mode_t mode, const std::vector<Matrix>& factors, Matrix& out);

  bool prepared() const noexcept { return tensor_ != nullptr; }

  /// Notifies the engine that factor matrix `mode` has changed since the
  /// last compute() call. Engines that memoize partial products use this to
  /// invalidate stale intermediates; stateless engines ignore it.
  virtual void factor_updated(mode_t mode) { (void)mode; }

  /// Drops all memoized state (stateless engines: no-op).
  virtual void invalidate_all() {}

  /// Engine identifier for logs and benchmark tables.
  virtual std::string name() const = 0;

  /// Bytes of auxiliary structures currently held (index arrays, memoized
  /// value matrices, CSF fibers, ...), excluding the input tensor itself
  /// and the shared workspace.
  virtual std::size_t memory_bytes() const { return 0; }

  /// Peak bytes of auxiliary structures observed so far.
  virtual std::size_t peak_memory_bytes() const { return memory_bytes(); }

  /// Per-engine counters recorded by prepare()/compute().
  const KernelStats& stats() const noexcept { return stats_; }

  KernelContext& context() noexcept { return ctx_; }
  const KernelContext& context() const noexcept { return ctx_; }
  Workspace& workspace() const noexcept { return *ctx_.workspace; }

 protected:
  /// Builds the engine's symbolic structures for tensor() at rank hint
  /// `rank`. Called with the thread override already applied.
  virtual void do_prepare(index_t rank) = 0;

  /// The numeric kernel. Scratch must come from workspace().
  virtual void do_compute(mode_t mode, const std::vector<Matrix>& factors,
                          Matrix& out) = 0;

  /// The tensor bound by prepare(). Throws if not prepared.
  const CooTensor& tensor() const;

  /// Rank hint passed to prepare() (0 = unknown).
  index_t rank_hint() const noexcept { return rank_hint_; }

  /// Records approximate numeric flops into the stats sinks.
  void count_flops(std::uint64_t flops) noexcept;

  /// Records one scheduled parallel launch into the stats sinks, metrics,
  /// and trace (schedule, tile count, heuristic reason). Engines call this
  /// once per launch; the last call of a compute() defines last_schedule.
  void record_schedule(const sched::Decision& d) noexcept;

  /// Bulk form for engines that run a chain of launches before reporting
  /// (the dimension-tree node evaluations): `d` is the last launch's
  /// decision, the counts cover the whole chain. `bump_metrics` = false
  /// mirrors into KernelStats only — for wrapper engines whose inner engine
  /// already recorded the launches into the global metrics registry.
  void record_schedule(const sched::Decision& d, std::uint64_t owner_launches,
                       std::uint64_t privatized_launches,
                       bool bump_metrics = true) noexcept;

  /// Records how the prepared plan was chosen ("model" or "history"; see
  /// obs/history.hpp) into the stats sinks and the tuner.plan_source trace
  /// span. `source` must be a static string.
  void record_plan_source(const char* source) noexcept;

  /// Records one degradation-chain fallback (see model/tuner.hpp) into the
  /// stats sinks and the "engine.degradations" metric. `reason` must be a
  /// static string ("predicted-over-budget", "budget-exceeded",
  /// "alloc-failure").
  void record_degradation(const char* reason) noexcept;

  /// Records the microkernel R-tile width selected for this compute() (see
  /// mttkrp/microkernel.hpp) into the stats sinks and a trace span, so bench
  /// meta and `mdcp_cli profile` can attribute roofline deltas to the tile
  /// actually run. `tile` ∈ {32, 16, 8, 0}.
  void record_tile(index_t tile) noexcept;

  /// Schedule override from the context (kAuto = per-mode heuristic).
  ScheduleMode schedule_mode() const noexcept { return ctx_.sched; }

  /// Threads the next kernel launch will use (the context override, or the
  /// library-wide setting).
  int effective_threads() const noexcept;

  KernelContext ctx_;

 private:
  const CooTensor* tensor_ = nullptr;
  index_t rank_hint_ = 0;
  KernelStats stats_;
  // Span label for the numeric phase ("mttkrp:<name>"), cached at prepare()
  // time so compute() never allocates for tracing.
  std::string trace_label_;
};

/// Checks that the factor list is consistent with the tensor: one matrix per
/// mode, rows match mode sizes, uniform column count. Returns R.
index_t check_factors(const CooTensor& tensor,
                      const std::vector<Matrix>& factors);

/// Reference MTTKRP: direct quadratic-in-order evaluation straight from the
/// definition, single-threaded. Used as the oracle in tests.
void mttkrp_reference(const CooTensor& tensor,
                      const std::vector<Matrix>& factors, mode_t mode,
                      Matrix& out);

}  // namespace mdcp
