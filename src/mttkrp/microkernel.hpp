// Shared SIMD rank-blocked microkernel layer for all MTTKRP engines.
//
// Every engine's per-nonzero inner loop is some composition of the same
// handful of length-R vector primitives: set a Hadamard accumulator, multiply
// factor rows into it, add it into an output row. Before this layer each
// engine hand-rolled those as scalar `for (k < r)` loops; now they all route
// through mk::Kernel, which executes each primitive as a sequence of
// compile-time fixed-width tiles (R-tile ∈ {32, 16, 8}) followed by a
// runtime-width remainder. The fixed trip counts let the compiler fully
// vectorize and unroll under `#pragma omp simd`, and the tile cascade
// (32-tiles, then 16, then 8, then scalar tail) keeps the remainder at most
// 7 lanes for any R.
//
// Alignment contract: the Workspace hands out 64-byte aligned slabs and
// la::Matrix aligns its storage base to 64 bytes (mk::kAlignment). Engines
// lay out their scratch so that every *accumulator* pointer they pass is
// slab-origin or offset by a multiple of padded_rank(r) reals — i.e. still
// 64-byte aligned — and mark it with mk::assume_aligned() at the call site.
// The hint propagates through inlining into the tile loops, so aligned
// vector loads/stores are emitted without a second code path. Factor-row
// pointers are only aligned when R is a multiple of kVectorWidth and are
// passed unannotated.
//
// The dispatcher is selected once per prepare(): mk::Kernel(r) snapshots the
// largest tile ≤ R; engines record kernel.tile() into KernelStats so bench
// tables, trace spans, and `mdcp_cli profile` can attribute roofline deltas
// to the tile actually run. The cost model charges flops at the padded rank
// (tile_efficiency), so engine ranking stays honest at awkward ranks like
// R = 17 where a quarter of every vector is wasted lanes.
//
// This follows the compile-time rank-specialization approach of ALTO
// ("Accelerating Sparse Tensor Decomposition Using Adaptive Linearized
// Representation"): specialize the hot loop for a few ranks, dispatch once,
// never branch per nonzero.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/types.hpp"

namespace mdcp::mk {

/// Alignment (bytes) of workspace slabs and matrix storage: one x86 cache
/// line, one AVX-512 vector.
inline constexpr std::size_t kAlignment = 64;

/// Reals per assumed SIMD vector (64 B of real_t). The efficiency model and
/// padded strides round ranks up to this.
inline constexpr index_t kVectorWidth =
    static_cast<index_t>(kAlignment / sizeof(real_t));

/// Compile-time tile widths, widest first. A kernel runs ⌊r/32⌋ 32-tiles,
/// then a 16- and an 8-tile over what remains, then a scalar tail of < 8.
inline constexpr index_t kTileWidths[] = {32, 16, 8};

/// The R-tile the dispatcher selects for rank r: the widest tile that fits,
/// 0 when r < 8 (pure remainder path).
constexpr index_t select_tile(index_t r) noexcept {
  for (index_t w : kTileWidths)
    if (r >= w) return w;
  return 0;
}

/// r rounded up to the vector width: the lanes a SIMD sweep actually pays
/// for. padded_rank(17) = 24, padded_rank(16) = 16, padded_rank(0) = 0.
constexpr index_t padded_rank(index_t r) noexcept {
  return (r + kVectorWidth - 1) / kVectorWidth * kVectorWidth;
}

/// Useful-lane fraction r / padded_rank(r) ∈ (0, 1]. 1 at tile-multiple
/// ranks; 17/24 ≈ 0.71 at R = 17.
constexpr double tile_efficiency(index_t r) noexcept {
  return r == 0 ? 1.0
                : static_cast<double>(r) / static_cast<double>(padded_rank(r));
}

/// Flop inflation the cost model charges for wasted vector lanes:
/// padded_rank(r) / r = 1 / tile_efficiency(r).
constexpr double flop_scale(index_t r) noexcept {
  return r == 0 ? 1.0
                : static_cast<double>(padded_rank(r)) / static_cast<double>(r);
}

// Padded strides keep slab-carved accumulators on the alignment contract.
static_assert(padded_rank(1) * sizeof(real_t) % kAlignment == 0,
              "padded stride must preserve slab alignment");
static_assert(select_tile(kVectorWidth) == kVectorWidth,
              "smallest tile must equal the vector width");

/// Marks a pointer as kAlignment-aligned at the call site. Engines apply
/// this to slab-origin (or padded-stride offset) scratch pointers only;
/// passing a misaligned pointer through it is undefined behavior, which
/// test_runtime's alignment checks guard against.
inline real_t* assume_aligned(real_t* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<real_t*>(__builtin_assume_aligned(p, kAlignment));
#else
  return p;
#endif
}
inline const real_t* assume_aligned(const real_t* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<const real_t*>(__builtin_assume_aligned(p, kAlignment));
#else
  return p;
#endif
}

#if defined(__GNUC__) || defined(__clang__)
#define MDCP_MK_RESTRICT __restrict__
// The primitives run per nonzero inside recursive traversals; left to its
// own heuristics the compiler keeps the multi-loop dispatch bodies
// out-of-line there, paying a call per vector op. Force them inline so the
// tile switch hoists out of the per-nonzero loops (tile_ is loop-invariant).
#define MDCP_MK_INLINE inline __attribute__((always_inline))
#else
#define MDCP_MK_RESTRICT
#define MDCP_MK_INLINE inline
#endif

namespace detail {

// Fixed-width tile bodies. W is a compile-time constant, so `#pragma omp
// simd` vectorizes the full trip count with no runtime loop overhead; with
// OpenMP off the pragma is ignored and the compiler's auto-vectorizer sees
// the same constant-trip loop.

template <index_t W>
MDCP_MK_INLINE void fill_w(real_t* MDCP_MK_RESTRICT d, real_t v) noexcept {
#pragma omp simd
  for (index_t k = 0; k < W; ++k) d[k] = v;
}

template <index_t W>
MDCP_MK_INLINE void copy_w(real_t* MDCP_MK_RESTRICT d,
                   const real_t* MDCP_MK_RESTRICT s) noexcept {
#pragma omp simd
  for (index_t k = 0; k < W; ++k) d[k] = s[k];
}

template <index_t W>
MDCP_MK_INLINE void add_scalar_w(real_t* MDCP_MK_RESTRICT d, real_t v) noexcept {
#pragma omp simd
  for (index_t k = 0; k < W; ++k) d[k] += v;
}

template <index_t W>
MDCP_MK_INLINE void set_scale_w(real_t* MDCP_MK_RESTRICT d,
                        const real_t* MDCP_MK_RESTRICT s, real_t v) noexcept {
#pragma omp simd
  for (index_t k = 0; k < W; ++k) d[k] = v * s[k];
}

template <index_t W>
MDCP_MK_INLINE void hadamard_w(real_t* MDCP_MK_RESTRICT d,
                       const real_t* MDCP_MK_RESTRICT s) noexcept {
#pragma omp simd
  for (index_t k = 0; k < W; ++k) d[k] *= s[k];
}

template <index_t W>
MDCP_MK_INLINE void mul_w(real_t* MDCP_MK_RESTRICT d, const real_t* MDCP_MK_RESTRICT a,
                  const real_t* MDCP_MK_RESTRICT b) noexcept {
#pragma omp simd
  for (index_t k = 0; k < W; ++k) d[k] = a[k] * b[k];
}

template <index_t W>
MDCP_MK_INLINE void accum_w(real_t* MDCP_MK_RESTRICT d,
                    const real_t* MDCP_MK_RESTRICT s) noexcept {
#pragma omp simd
  for (index_t k = 0; k < W; ++k) d[k] += s[k];
}

template <index_t W>
MDCP_MK_INLINE void axpy_w(real_t* MDCP_MK_RESTRICT d,
                   const real_t* MDCP_MK_RESTRICT s, real_t v) noexcept {
#pragma omp simd
  for (index_t k = 0; k < W; ++k) d[k] += v * s[k];
}

// Fused order-3 hot path: d += v · a∘b, no Hadamard staging buffer.
template <index_t W>
MDCP_MK_INLINE void fused2_w(real_t* MDCP_MK_RESTRICT d,
                     const real_t* MDCP_MK_RESTRICT a,
                     const real_t* MDCP_MK_RESTRICT b, real_t v) noexcept {
#pragma omp simd
  for (index_t k = 0; k < W; ++k) d[k] += v * a[k] * b[k];
}

// Fused order-4 hot path: d += v · a∘b∘c.
template <index_t W>
MDCP_MK_INLINE void fused3_w(real_t* MDCP_MK_RESTRICT d,
                     const real_t* MDCP_MK_RESTRICT a,
                     const real_t* MDCP_MK_RESTRICT b,
                     const real_t* MDCP_MK_RESTRICT c, real_t v) noexcept {
#pragma omp simd
  for (index_t k = 0; k < W; ++k) d[k] += v * a[k] * b[k] * c[k];
}

// Tile-cascade driver: runs BODY over 32/16/8-wide tiles (entered at the
// dispatcher-selected width, falling through to the narrower tiles for the
// remainder) and a scalar simd tail. The switch is per *vector op*, not per
// lane, and the tile parameter is loop-invariant, so the branch predicts
// perfectly in the per-nonzero hot loops.
#define MDCP_MK_DISPATCH(tile, r, TILE_STMT, TAIL_STMT)      \
  do {                                                       \
    index_t k = 0;                                           \
    switch (tile) {                                          \
      case 32:                                               \
        for (; k + 32 <= (r); k += 32) TILE_STMT(32);        \
        [[fallthrough]];                                     \
      case 16:                                               \
        for (; k + 16 <= (r); k += 16) TILE_STMT(16);        \
        [[fallthrough]];                                     \
      case 8:                                                \
        for (; k + 8 <= (r); k += 8) TILE_STMT(8);           \
        break;                                               \
      default:                                               \
        break;                                               \
    }                                                        \
    TAIL_STMT                                                \
  } while (0)

}  // namespace detail

/// Rank-blocked vector kernel, dispatched once per prepare(). All methods
/// operate on length-rank() arrays; pointer arguments documented as
/// accumulators should be passed through mk::assume_aligned() when the
/// engine's layout guarantees slab alignment.
class Kernel {
 public:
  Kernel() = default;
  explicit Kernel(index_t r) noexcept : r_(r), tile_(select_tile(r)) {}

  index_t rank() const noexcept { return r_; }
  /// The selected R-tile width (0 = scalar remainder only, r < 8).
  index_t tile() const noexcept { return tile_; }
  /// Slab stride (in reals) that keeps consecutive length-r accumulators on
  /// the alignment contract.
  index_t padded() const noexcept { return padded_rank(r_); }

  /// d[k] = v
  MDCP_MK_INLINE void fill(real_t* d, real_t v) const noexcept {
#define MDCP_MK_T(W) detail::fill_w<W>(d + k, v)
    MDCP_MK_DISPATCH(tile_, r_, MDCP_MK_T, {
      for (; k < r_; ++k) d[k] = v;
    });
#undef MDCP_MK_T
  }

  /// d[k] += v (degenerate order-1 MTTKRP: broadcast-accumulate)
  MDCP_MK_INLINE void add_scalar(real_t* d, real_t v) const noexcept {
#define MDCP_MK_T(W) detail::add_scalar_w<W>(d + k, v)
    MDCP_MK_DISPATCH(tile_, r_, MDCP_MK_T, {
      for (; k < r_; ++k) d[k] += v;
    });
#undef MDCP_MK_T
  }

  /// d[k] = s[k]
  MDCP_MK_INLINE void copy(real_t* MDCP_MK_RESTRICT d,
            const real_t* MDCP_MK_RESTRICT s) const noexcept {
#define MDCP_MK_T(W) detail::copy_w<W>(d + k, s + k)
    MDCP_MK_DISPATCH(tile_, r_, MDCP_MK_T, {
      for (; k < r_; ++k) d[k] = s[k];
    });
#undef MDCP_MK_T
  }

  /// d[k] = v · s[k]
  MDCP_MK_INLINE void set_scale(real_t* MDCP_MK_RESTRICT d, const real_t* MDCP_MK_RESTRICT s,
                 real_t v) const noexcept {
#define MDCP_MK_T(W) detail::set_scale_w<W>(d + k, s + k, v)
    MDCP_MK_DISPATCH(tile_, r_, MDCP_MK_T, {
      for (; k < r_; ++k) d[k] = v * s[k];
    });
#undef MDCP_MK_T
  }

  /// d[k] *= s[k]
  MDCP_MK_INLINE void hadamard(real_t* MDCP_MK_RESTRICT d,
                const real_t* MDCP_MK_RESTRICT s) const noexcept {
#define MDCP_MK_T(W) detail::hadamard_w<W>(d + k, s + k)
    MDCP_MK_DISPATCH(tile_, r_, MDCP_MK_T, {
      for (; k < r_; ++k) d[k] *= s[k];
    });
#undef MDCP_MK_T
  }

  /// d[k] = a[k] · b[k]
  MDCP_MK_INLINE void mul(real_t* MDCP_MK_RESTRICT d, const real_t* MDCP_MK_RESTRICT a,
           const real_t* MDCP_MK_RESTRICT b) const noexcept {
#define MDCP_MK_T(W) detail::mul_w<W>(d + k, a + k, b + k)
    MDCP_MK_DISPATCH(tile_, r_, MDCP_MK_T, {
      for (; k < r_; ++k) d[k] = a[k] * b[k];
    });
#undef MDCP_MK_T
  }

  /// d[k] += s[k]
  MDCP_MK_INLINE void accum(real_t* MDCP_MK_RESTRICT d,
             const real_t* MDCP_MK_RESTRICT s) const noexcept {
#define MDCP_MK_T(W) detail::accum_w<W>(d + k, s + k)
    MDCP_MK_DISPATCH(tile_, r_, MDCP_MK_T, {
      for (; k < r_; ++k) d[k] += s[k];
    });
#undef MDCP_MK_T
  }

  /// d[k] += v · s[k]
  MDCP_MK_INLINE void axpy_accum(real_t* MDCP_MK_RESTRICT d,
                  const real_t* MDCP_MK_RESTRICT s, real_t v) const noexcept {
#define MDCP_MK_T(W) detail::axpy_w<W>(d + k, s + k, v)
    MDCP_MK_DISPATCH(tile_, r_, MDCP_MK_T, {
      for (; k < r_; ++k) d[k] += v * s[k];
    });
#undef MDCP_MK_T
  }

  /// d[k] += v · a[k] · b[k] — the fused order-3 MTTKRP path (two live
  /// factor rows, no staging accumulator).
  MDCP_MK_INLINE void fused2_accum(real_t* MDCP_MK_RESTRICT d,
                    const real_t* MDCP_MK_RESTRICT a,
                    const real_t* MDCP_MK_RESTRICT b, real_t v) const noexcept {
#define MDCP_MK_T(W) detail::fused2_w<W>(d + k, a + k, b + k, v)
    MDCP_MK_DISPATCH(tile_, r_, MDCP_MK_T, {
      for (; k < r_; ++k) d[k] += v * a[k] * b[k];
    });
#undef MDCP_MK_T
  }

  /// d[k] += v · a[k] · b[k] · c[k] — the fused order-4 MTTKRP path.
  MDCP_MK_INLINE void fused3_accum(real_t* MDCP_MK_RESTRICT d,
                    const real_t* MDCP_MK_RESTRICT a,
                    const real_t* MDCP_MK_RESTRICT b,
                    const real_t* MDCP_MK_RESTRICT c,
                    real_t v) const noexcept {
#define MDCP_MK_T(W) detail::fused3_w<W>(d + k, a + k, b + k, c + k, v)
    MDCP_MK_DISPATCH(tile_, r_, MDCP_MK_T, {
      for (; k < r_; ++k) d[k] += v * a[k] * b[k] * c[k];
    });
#undef MDCP_MK_T
  }

 private:
  index_t r_ = 0;
  index_t tile_ = 0;
};

/// Gather-multiply for the TTV-chain engine: v[i] *= base[idx[i] · stride].
/// Column access into a row-major factor is strided, so this vectorizes as
/// a gather; the value array itself is contiguous.
MDCP_MK_INLINE void gather_scale(real_t* MDCP_MK_RESTRICT v,
                         const index_t* MDCP_MK_RESTRICT idx,
                         const real_t* MDCP_MK_RESTRICT base, index_t stride,
                         nnz_t n) noexcept {
#pragma omp simd
  for (nnz_t i = 0; i < n; ++i)
    v[i] *= base[static_cast<std::size_t>(idx[i]) * stride];
}

#undef MDCP_MK_DISPATCH

}  // namespace mdcp::mk
