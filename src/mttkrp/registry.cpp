#include "mttkrp/registry.hpp"

#include <sstream>
#include <utility>

#include "csf/csf_mttkrp.hpp"
#include "csf/csf_one_mttkrp.hpp"
#include "dtree/dtree_engine.hpp"
#include "model/tuner.hpp"
#include "mttkrp/alto.hpp"
#include "mttkrp/blocked_coo.hpp"
#include "mttkrp/coo_mttkrp.hpp"
#include "mttkrp/ttv_chain.hpp"
#include "util/error.hpp"

namespace mdcp {

namespace {

std::vector<mode_t> natural_order(mode_t order) {
  std::vector<mode_t> o(order);
  for (mode_t m = 0; m < order; ++m) o[m] = m;
  return o;
}

// The dtree shapes need the tensor's order to build their TreeSpec, which is
// only known at prepare() time. This thin adaptor defers spec construction.
template <typename SpecFn>
class DeferredDTreeEngine final : public MttkrpEngine {
 public:
  DeferredDTreeEngine(SpecFn spec_fn, std::string display_name,
                      KernelContext ctx)
      : MttkrpEngine(ctx),
        spec_fn_(std::move(spec_fn)),
        name_(std::move(display_name)) {}

  void factor_updated(mode_t mode) override {
    if (inner_) inner_->factor_updated(mode);
  }
  void invalidate_all() override {
    if (inner_) inner_->invalidate_all();
  }
  std::string name() const override { return name_; }
  std::size_t memory_bytes() const override {
    return inner_ ? inner_->memory_bytes() : 0;
  }
  std::size_t peak_memory_bytes() const override {
    return inner_ ? inner_->peak_memory_bytes() : 0;
  }

 protected:
  void do_prepare(index_t rank) override {
    KernelContext inner_ctx = context();
    inner_ctx.stats = nullptr;  // outer NVI already records totals
    inner_ = std::make_unique<DTreeMttkrpEngine>(spec_fn_(tensor()), name_,
                                                 inner_ctx);
    inner_->prepare(tensor(), rank);
  }
  void do_compute(mode_t mode, const std::vector<Matrix>& factors,
                  Matrix& out) override {
    const KernelStats before = inner_->stats();
    inner_->context().sched = context().sched;  // forward late overrides
    inner_->compute(mode, factors, out);
    const KernelStats& after = inner_->stats();
    count_flops(after.flops - before.flops);
    if (after.last_schedule != 255) {
      // Mirror the inner engine's schedule telemetry; the inner launches
      // already bumped the global sched.* metrics.
      record_schedule({static_cast<sched::Schedule>(after.last_schedule),
                       after.last_tiles, 0.0, 0, after.last_sched_reason},
                      after.owner_launches - before.owner_launches,
                      after.privatized_launches - before.privatized_launches,
                      /*bump_metrics=*/false);
    }
    record_tile(after.last_tile);
  }

 private:
  SpecFn spec_fn_;
  std::string name_;
  std::unique_ptr<DTreeMttkrpEngine> inner_;
};

template <typename SpecFn>
std::unique_ptr<MttkrpEngine> deferred_dtree(SpecFn fn, std::string name,
                                             KernelContext ctx) {
  return std::make_unique<DeferredDTreeEngine<SpecFn>>(std::move(fn),
                                                       std::move(name), ctx);
}

}  // namespace

EngineRegistry::EngineRegistry() {
  register_engine("coo", "element-wise COO with per-mode scatter plans",
                  [](KernelContext ctx) {
                    return std::make_unique<CooMttkrpEngine>(ctx);
                  });
  register_engine("bcoo", "HiCOO-style blocked COO (128^N blocks)",
                  [](KernelContext ctx) {
                    return std::make_unique<BlockedCooEngine>(7u, ctx);
                  });
  register_engine("alto", "ALTO-style linearized packed-index engine",
                  [](KernelContext ctx) {
                    return std::make_unique<AltoMttkrpEngine>(ctx);
                  });
  register_engine("ttv-chain", "column-at-a-time TTV chain (naive baseline)",
                  [](KernelContext ctx) {
                    return std::make_unique<TtvChainEngine>(ctx);
                  });
  register_engine("csf", "SPLATT root-mode kernel, one CSF per mode",
                  [](KernelContext ctx) {
                    return std::make_unique<CsfMttkrpEngine>(ctx);
                  });
  register_engine("csf1", "SPLATT all-modes kernel from a single CSF",
                  [](KernelContext ctx) {
                    return std::make_unique<CsfOneMttkrpEngine>(
                        std::vector<mode_t>{}, ctx);
                  });
  register_engine("dtree-flat", "dimension tree, flat (one level)",
                  [](KernelContext ctx) {
                    return deferred_dtree(
                        [](const CooTensor& t) {
                          return TreeSpec::flat(natural_order(t.order()));
                        },
                        "dtree-flat", ctx);
                  });
  register_engine("dtree-3lvl", "dimension tree, three-level split",
                  [](KernelContext ctx) {
                    return deferred_dtree(
                        [](const CooTensor& t) {
                          const auto order = natural_order(t.order());
                          return TreeSpec::three_level(
                              order,
                              static_cast<mode_t>((order.size() + 1) / 2));
                        },
                        "dtree-3lvl", ctx);
                  });
  register_engine("dtree-bdt", "dimension tree, balanced binary (BDT)",
                  [](KernelContext ctx) {
                    return deferred_dtree(
                        [](const CooTensor& t) {
                          return TreeSpec::bdt(natural_order(t.order()));
                        },
                        "dtree-bdt", ctx);
                  });
  register_engine("auto", "model-driven strategy selection (the tuner)",
                  [](KernelContext ctx) {
                    return std::make_unique<AutoEngine>(/*probed=*/false, 0,
                                                        CostModelParams{}, 3,
                                                        ctx);
                  });
  register_engine("auto+probe", "model shortlist + measured probe selection",
                  [](KernelContext ctx) {
                    return std::make_unique<AutoEngine>(/*probed=*/true, 0,
                                                        CostModelParams{}, 3,
                                                        ctx);
                  });
}

EngineRegistry& EngineRegistry::instance() {
  static EngineRegistry registry;
  return registry;
}

void EngineRegistry::register_engine(std::string name, std::string description,
                                     EngineFactory factory) {
  MDCP_CHECK_MSG(find(name) == nullptr,
                 "engine '" << name << "' already registered");
  MDCP_CHECK(factory != nullptr);
  entries_.push_back(
      {std::move(name), std::move(description), std::move(factory)});
}

const EngineRegistry::Entry* EngineRegistry::find(
    const std::string& name) const {
  for (const auto& e : entries_)
    if (e.name == name) return &e;
  return nullptr;
}

bool EngineRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

std::vector<std::string> EngineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

std::unique_ptr<MttkrpEngine> EngineRegistry::create(const std::string& name,
                                                     KernelContext ctx) const {
  const Entry* e = find(name);
  if (e == nullptr) {
    std::ostringstream os;
    os << "unknown engine '" << name << "'; known engines:";
    for (const auto& entry : entries_) os << ' ' << entry.name;
    throw error(os.str());
  }
  return e->factory(ctx);
}

std::unique_ptr<MttkrpEngine> make_engine(const std::string& name,
                                          KernelContext ctx) {
  return EngineRegistry::instance().create(name, ctx);
}

std::unique_ptr<MttkrpEngine> make_engine(const std::string& name,
                                          const CooTensor& tensor,
                                          index_t rank, KernelContext ctx) {
  auto engine = EngineRegistry::instance().create(name, ctx);
  engine->prepare(tensor, rank);
  return engine;
}

}  // namespace mdcp
