// EngineRegistry: name → MTTKRP engine factory.
//
// Every engine in the library registers here under a stable string name, so
// benchmarks, the CLI, and CP-ALS construct engines by name instead of
// switching over an enum. Factories produce *unprepared* engines bound to a
// KernelContext; callers follow with prepare(tensor, rank) — or use the
// make_engine overload that does both.
//
// Builtin names (registration order):
//   coo, bcoo, alto, ttv-chain, csf, csf1, dtree-flat, dtree-3lvl,
//   dtree-bdt, auto, auto+probe
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mttkrp/engine.hpp"

namespace mdcp {

using EngineFactory =
    std::function<std::unique_ptr<MttkrpEngine>(KernelContext)>;

class EngineRegistry {
 public:
  struct Entry {
    std::string name;
    std::string description;
    EngineFactory factory;
  };

  /// The process-wide registry, with all builtin engines pre-registered.
  static EngineRegistry& instance();

  /// Registers a factory. Throws mdcp::error on a duplicate name.
  void register_engine(std::string name, std::string description,
                       EngineFactory factory);

  bool contains(const std::string& name) const;
  /// All registered names, in registration order.
  std::vector<std::string> names() const;
  const std::vector<Entry>& entries() const noexcept { return entries_; }

  /// Creates an unprepared engine. Throws mdcp::error listing the known
  /// names when `name` is not registered.
  std::unique_ptr<MttkrpEngine> create(const std::string& name,
                                       KernelContext ctx = {}) const;

 private:
  EngineRegistry();
  const Entry* find(const std::string& name) const;

  std::vector<Entry> entries_;
};

/// Creates an unprepared engine by name from the global registry.
std::unique_ptr<MttkrpEngine> make_engine(const std::string& name,
                                          KernelContext ctx = {});

/// Creates an engine by name and prepares it for `tensor` (with `rank` as
/// the scratch-sizing hint; required > 0 for "auto"/"auto+probe").
std::unique_ptr<MttkrpEngine> make_engine(const std::string& name,
                                          const CooTensor& tensor,
                                          index_t rank = 0,
                                          KernelContext ctx = {});

}  // namespace mdcp
