#include "mttkrp/ttv_chain.hpp"

#include <algorithm>
#include <numeric>

#include "mttkrp/microkernel.hpp"
#include "sched/partition.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/workspace.hpp"

namespace mdcp {

TtvChainEngine::TtvChainEngine(KernelContext ctx) : MttkrpEngine(ctx) {}

TtvChainEngine::TtvChainEngine(const CooTensor& tensor, KernelContext ctx)
    : MttkrpEngine(ctx) {
  prepare(tensor);
}

void TtvChainEngine::ColumnWork::load(const CooTensor& tensor) {
  const mode_t order = tensor.order();
  live_modes.resize(order);
  std::iota(live_modes.begin(), live_modes.end(), mode_t{0});
  idx.resize(order);
  idx2.resize(order);
  for (mode_t m = 0; m < order; ++m) {
    const auto src = tensor.mode_indices(m);
    idx[m].assign(src.begin(), src.end());
  }
  vals.assign(tensor.values().begin(), tensor.values().end());
}

// Contracts the live mode at position `pos` against factor(:, column), then
// collapses duplicate remaining tuples by summing. The contracted index
// array is rotated to the dead tail of `idx` (capacity retained) instead of
// erased.
void TtvChainEngine::ColumnWork::ttv(std::size_t pos, const Matrix& factor,
                                     index_t column) {
  mk::gather_scale(vals.data(), idx[pos].data(), factor.data() + column,
                   factor.cols(), size());
  std::rotate(idx.begin() + static_cast<std::ptrdiff_t>(pos),
              idx.begin() + static_cast<std::ptrdiff_t>(pos) + 1, idx.end());
  live_modes.erase(live_modes.begin() + static_cast<std::ptrdiff_t>(pos));
  collapse();
}

void TtvChainEngine::ColumnWork::collapse() {
  const std::size_t live = live_modes.size();
  if (size() <= 1 || live == 0) {
    if (live == 0 && size() > 1) {
      // Fully contracted: single scalar.
      real_t s = 0;
      for (real_t v : vals) s += v;
      vals.assign(1, s);
    }
    return;
  }
  perm.resize(size());
  std::iota(perm.begin(), perm.end(), nnz_t{0});
  std::sort(perm.begin(), perm.end(), [&](nnz_t a, nnz_t b) {
    for (std::size_t m = 0; m < live; ++m) {
      if (idx[m][a] != idx[m][b]) return idx[m][a] < idx[m][b];
    }
    return false;
  });
  const auto same = [&](nnz_t a, nnz_t b) {
    for (std::size_t m = 0; m < live; ++m)
      if (idx[m][a] != idx[m][b]) return false;
    return true;
  };
  for (std::size_t m = 0; m < live; ++m) idx2[m].clear();
  vals2.clear();
  for (nnz_t p = 0; p < size(); ++p) {
    const nnz_t i = perm[p];
    if (p > 0 && same(i, perm[p - 1])) {
      vals2.back() += vals[i];
    } else {
      for (std::size_t m = 0; m < live; ++m) idx2[m].push_back(idx[m][i]);
      vals2.push_back(vals[i]);
    }
  }
  for (std::size_t m = 0; m < live; ++m) idx[m].swap(idx2[m]);
  vals.swap(vals2);
}

std::size_t TtvChainEngine::ColumnWork::capacity_bytes() const {
  std::size_t b = live_modes.capacity() * sizeof(mode_t) +
                  (vals.capacity() + vals2.capacity()) * sizeof(real_t) +
                  perm.capacity() * sizeof(nnz_t);
  for (const auto& a : idx) b += a.capacity() * sizeof(index_t);
  for (const auto& a : idx2) b += a.capacity() * sizeof(index_t);
  return b;
}

void TtvChainEngine::do_prepare(index_t rank) {
  (void)rank;
  // One reusable working tensor per thread id; buffers grow on first use
  // and persist across columns, modes, and compute() calls.
  work_.clear();
  work_.resize(Workspace::kMaxThreads);
}

void TtvChainEngine::do_compute(mode_t mode,
                                const std::vector<Matrix>& factors,
                                Matrix& out) {
  const CooTensor& t = tensor();
  const index_t r = check_factors(t, factors);
  MDCP_CHECK(mode < t.order());
  out.resize(t.dim(mode), r, 0);
  const mode_t order = t.order();

  // Parallelism is over output columns, each of which owns a disjoint slice
  // of `out` — there are no shared writes, so the heuristic always answers
  // owner-computes (a forced privatized request has nothing to privatize).
  const sched::WorkShape shape{.total = t.nnz() * r,
                               .max_unit = t.nnz(),
                               .units = static_cast<nnz_t>(r),
                               .out_rows = t.dim(mode),
                               .rank = r,
                               .shared_writes = false};
  const sched::Decision d =
      sched::choose_schedule(shape, effective_threads(), schedule_mode());
  record_schedule(d);
  // No rank-blocked inner loop here — the chain contracts one column at a
  // time (parallelism is column-wise), so the honest tile report is scalar.
  record_tile(0);
  const sched::TilePlan& tp = sched::cached_tiles(
      tiles_, d.tiles,
      [&](int n) { return sched::tile_uniform(static_cast<nnz_t>(r), n); });

#pragma omp parallel for schedule(dynamic, 1)
  for (int tile = 0; tile < tp.tiles(); ++tile) {
    ColumnWork& w = work_[static_cast<std::size_t>(thread_id())];
    sched::for_each_group_range(
        tp, tile, [&](nnz_t) { return static_cast<nnz_t>(r); },
        [&](nnz_t, nnz_t begin, nnz_t end) {
          for (nnz_t col = begin; col < end; ++col) {
            w.load(t);

            // Contract every mode except the output mode, one TTV at a time.
            for (mode_t m = 0; m < order; ++m) {
              if (m == mode) continue;
              const auto pos = static_cast<std::size_t>(
                  std::find(w.live_modes.begin(), w.live_modes.end(), m) -
                  w.live_modes.begin());
              w.ttv(pos, factors[m], static_cast<index_t>(col));
            }

            // One live mode remains (== `mode`); its tuples are the output
            // column.
            for (nnz_t i = 0; i < w.size(); ++i)
              out(w.idx[0][i], static_cast<index_t>(col)) += w.vals[i];
          }
        });
  }
  count_flops(static_cast<std::uint64_t>(t.nnz()) * r * order);
}

std::size_t TtvChainEngine::memory_bytes() const {
  std::size_t b = 0;
  for (const auto& w : work_) b += w.capacity_bytes();
  return b;
}

}  // namespace mdcp
