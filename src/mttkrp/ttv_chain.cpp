#include "mttkrp/ttv_chain.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mdcp {

namespace {

// Working representation of a partially-contracted sparse tensor with scalar
// values: the live (uncontracted) modes and one index array per live mode.
struct WorkTensor {
  std::vector<mode_t> live_modes;
  std::vector<std::vector<index_t>> idx;  // aligned with live_modes
  std::vector<real_t> vals;

  nnz_t size() const { return vals.size(); }

  // Contracts the live mode at position `pos` against vector entries
  // u[index], then collapses duplicate remaining tuples by summing.
  void ttv(std::size_t pos, const Matrix& factor, index_t column) {
    for (nnz_t i = 0; i < size(); ++i)
      vals[i] *= factor(idx[pos][i], column);
    idx.erase(idx.begin() + static_cast<std::ptrdiff_t>(pos));
    live_modes.erase(live_modes.begin() + static_cast<std::ptrdiff_t>(pos));
    collapse();
  }

  void collapse() {
    if (size() <= 1 || idx.empty()) {
      if (idx.empty() && size() > 1) {
        // Fully contracted: single scalar.
        real_t s = 0;
        for (real_t v : vals) s += v;
        vals.assign(1, s);
      }
      return;
    }
    std::vector<nnz_t> perm(size());
    std::iota(perm.begin(), perm.end(), nnz_t{0});
    std::sort(perm.begin(), perm.end(), [&](nnz_t a, nnz_t b) {
      for (const auto& arr : idx) {
        if (arr[a] != arr[b]) return arr[a] < arr[b];
      }
      return false;
    });
    const auto same = [&](nnz_t a, nnz_t b) {
      for (const auto& arr : idx)
        if (arr[a] != arr[b]) return false;
      return true;
    };
    std::vector<std::vector<index_t>> nidx(idx.size());
    std::vector<real_t> nvals;
    for (nnz_t p = 0; p < size(); ++p) {
      const nnz_t i = perm[p];
      if (p > 0 && same(i, perm[p - 1])) {
        nvals.back() += vals[i];
      } else {
        for (std::size_t m = 0; m < idx.size(); ++m)
          nidx[m].push_back(idx[m][i]);
        nvals.push_back(vals[i]);
      }
    }
    idx = std::move(nidx);
    vals = std::move(nvals);
  }
};

}  // namespace

void TtvChainEngine::compute(mode_t mode, const std::vector<Matrix>& factors,
                             Matrix& out) {
  const index_t r = check_factors(tensor_, factors);
  MDCP_CHECK(mode < tensor_.order());
  out.resize(tensor_.dim(mode), r, 0);
  const mode_t order = tensor_.order();

#pragma omp parallel for schedule(dynamic, 1)
  for (std::int64_t col = 0; col < static_cast<std::int64_t>(r); ++col) {
    WorkTensor w;
    w.live_modes.resize(order);
    std::iota(w.live_modes.begin(), w.live_modes.end(), mode_t{0});
    w.idx.resize(order);
    for (mode_t m = 0; m < order; ++m) {
      const auto src = tensor_.mode_indices(m);
      w.idx[m].assign(src.begin(), src.end());
    }
    w.vals.assign(tensor_.values().begin(), tensor_.values().end());

    // Contract every mode except the output mode, one TTV at a time.
    for (mode_t m = 0; m < order; ++m) {
      if (m == mode) continue;
      const auto pos = static_cast<std::size_t>(
          std::find(w.live_modes.begin(), w.live_modes.end(), m) -
          w.live_modes.begin());
      w.ttv(pos, factors[m], static_cast<index_t>(col));
    }

    // One live mode remains (== `mode`); its tuples are the output column.
    for (nnz_t i = 0; i < w.size(); ++i)
      out(w.idx[0][i], static_cast<index_t>(col)) += w.vals[i];
  }
}

}  // namespace mdcp
