// Tensor-Toolbox-style MTTKRP: column-at-a-time TTV chains.
//
// The r-th output column is computed as X ×₁ u_r^(1) ⋯ ×ₙ₋₁ u_r^(n-1)
// ×ₙ₊₁ u_r^(n+1) ⋯ — i.e. R independent chains of N-1 tensor-times-vector
// multiplies, recomputed from scratch for every mode (R·N·(N-1) TTVs per
// CP-ALS iteration). Each chain *does* shrink its intermediate by collapsing
// duplicate projected indices, which is what historically made this scheme
// viable in MATLAB — but nothing is shared across columns or modes.
//
// Included as the classical baseline: the dimension-tree engines are the
// "memoize across modes + vectorize across columns" upgrade of exactly this
// computation.
#pragma once

#include "mttkrp/engine.hpp"

namespace mdcp {

class TtvChainEngine final : public MttkrpEngine {
 public:
  /// The tensor must outlive the engine.
  explicit TtvChainEngine(const CooTensor& tensor) : tensor_(tensor) {}

  void compute(mode_t mode, const std::vector<Matrix>& factors,
               Matrix& out) override;
  std::string name() const override { return "ttv-chain"; }

 private:
  const CooTensor& tensor_;
};

}  // namespace mdcp
