// Tensor-Toolbox-style MTTKRP: column-at-a-time TTV chains.
//
// The r-th output column is computed as X ×₁ u_r^(1) ⋯ ×ₙ₋₁ u_r^(n-1)
// ×ₙ₊₁ u_r^(n+1) ⋯ — i.e. R independent chains of N-1 tensor-times-vector
// multiplies, recomputed from scratch for every mode (R·N·(N-1) TTVs per
// CP-ALS iteration). Each chain *does* shrink its intermediate by collapsing
// duplicate projected indices, which is what historically made this scheme
// viable in MATLAB — but nothing is shared across columns or modes.
//
// Included as the classical baseline: the dimension-tree engines are the
// "memoize across modes + vectorize across columns" upgrade of exactly this
// computation. The working tensors are per-thread members whose buffers
// persist across columns and compute() calls, so the steady-state numeric
// path reuses capacity instead of reallocating per column.
#pragma once

#include <vector>

#include "mttkrp/engine.hpp"
#include "sched/partition.hpp"

namespace mdcp {

class TtvChainEngine final : public MttkrpEngine {
 public:
  explicit TtvChainEngine(KernelContext ctx = {});
  /// Convenience: construct and prepare in one step.
  explicit TtvChainEngine(const CooTensor& tensor, KernelContext ctx = {});

  std::string name() const override { return "ttv-chain"; }
  std::size_t memory_bytes() const override;

 protected:
  void do_prepare(index_t rank) override;
  void do_compute(mode_t mode, const std::vector<Matrix>& factors,
                  Matrix& out) override;

 private:
  // Working representation of a partially-contracted sparse tensor with
  // scalar values: the live (uncontracted) modes and one index array per
  // live mode. All buffers (including the collapse scratch) retain capacity
  // across chains, so reloading from the input tensor is allocation-free
  // once warm.
  struct ColumnWork {
    std::vector<mode_t> live_modes;
    std::vector<std::vector<index_t>> idx;  // aligned with live_modes
    std::vector<real_t> vals;
    // collapse() scratch (double buffers + sort permutation).
    std::vector<nnz_t> perm;
    std::vector<std::vector<index_t>> idx2;
    std::vector<real_t> vals2;

    nnz_t size() const { return vals.size(); }
    void load(const CooTensor& tensor);
    void ttv(std::size_t pos, const Matrix& factor, index_t column);
    void collapse();
    std::size_t capacity_bytes() const;
  };

  std::vector<ColumnWork> work_;  // one per thread, reused across calls
  sched::CachedPlan tiles_;       // column tiles (always owner-computes)
};

}  // namespace mdcp
