// Single monotonic timebase for all of mdcp's observability.
//
// Every timestamp the library records — tracer span begin/end, WallTimer /
// PhaseTimer readings, and therefore every KernelStats second — derives from
// obs::clock_ns(), so a span's position on the trace timeline and a phase
// timer's accumulated seconds are directly comparable (same epoch, same
// clock, no cross-clock skew).
#pragma once

#include <chrono>
#include <cstdint>

namespace mdcp::obs {

/// Nanoseconds on the process-wide monotonic clock (steady_clock). The
/// epoch is unspecified but fixed for the process lifetime; only differences
/// are meaningful.
inline std::uint64_t clock_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Seconds between two clock_ns() readings.
inline double ns_to_seconds(std::uint64_t begin_ns,
                            std::uint64_t end_ns) noexcept {
  return static_cast<double>(end_ns - begin_ns) * 1e-9;
}

}  // namespace mdcp::obs
