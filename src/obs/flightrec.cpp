#include "obs/flightrec.hpp"

#include <unistd.h>

#include <algorithm>

namespace mdcp::obs {

namespace detail {

void FdWriter::byte_(char c) noexcept {
  if (len_ == sizeof(buf_)) flush();
  buf_[len_++] = c;
}

void FdWriter::str(const char* s) noexcept {
  if (s == nullptr) return;
  for (; *s != '\0'; ++s) byte_(*s);
}

void FdWriter::u64(std::uint64_t v) noexcept {
  char digits[20];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) byte_(digits[--n]);
}

void FdWriter::i64(std::int64_t v) noexcept {
  if (v < 0) {
    byte_('-');
    // Negate via unsigned arithmetic so INT64_MIN does not overflow.
    u64(~static_cast<std::uint64_t>(v) + 1);
  } else {
    u64(static_cast<std::uint64_t>(v));
  }
}

void FdWriter::flush() noexcept {
  std::size_t off = 0;
  while (off < len_) {
    ssize_t w = ::write(fd_, buf_ + off, len_ - off);
    if (w <= 0) break;  // nothing sane to do in a crash path
    off += static_cast<std::size_t>(w);
  }
  len_ = 0;
}

}  // namespace detail

const char* fr_event_name(FrEvent e) noexcept {
  // Static literals: the crash dumper must be able to name events without
  // touching the heap.
  switch (e) {
    case FrEvent::kPhaseEnter: return "phase-enter";
    case FrEvent::kPhaseLeave: return "phase-leave";
    case FrEvent::kIteration: return "iteration";
    case FrEvent::kPrepareBegin: return "prepare-begin";
    case FrEvent::kPrepareEnd: return "prepare-end";
    case FrEvent::kComputeBegin: return "compute-begin";
    case FrEvent::kComputeEnd: return "compute-end";
    case FrEvent::kTileBatch: return "tile-batch";
    case FrEvent::kDegradation: return "degradation";
    case FrEvent::kRecovery: return "recovery";
    case FrEvent::kCancel: return "cancel";
    case FrEvent::kWatchdog: return "watchdog";
    case FrEvent::kStall: return "stall";
  }
  return "unknown";
}

const char* fr_phase_name(FrPhase p) noexcept {
  switch (p) {
    case FrPhase::kNone: return "none";
    case FrPhase::kPrepare: return "prepare";
    case FrPhase::kCompute: return "compute";
    case FrPhase::kSolve: return "solve";
    case FrPhase::kFit: return "fit";
    case FrPhase::kIteration: return "iteration";
    case FrPhase::kParallelFor: return "parallel-for";
    case FrPhase::kShutdown: return "shutdown";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::instance() noexcept {
  // Leaked on purpose: crash handlers may fire during static destruction,
  // and the recorder must outlive every other object in the process.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

std::uint32_t FlightRecorder::thread_slot() noexcept {
  thread_local std::uint32_t slot = UINT32_MAX;
  if (slot == UINT32_MAX) {
    std::uint32_t next = next_slot_.fetch_add(1, std::memory_order_relaxed);
    slot = std::min(next, static_cast<std::uint32_t>(kMaxThreads - 1));
  }
  return slot;
}

void FlightRecorder::record(FrEvent kind, FrPhase phase, std::int64_t a,
                            std::int64_t b) noexcept {
  const std::uint64_t idx = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring_[idx % kRingCapacity];
  slot.seq.store(0, std::memory_order_release);  // mark in-flight
  slot.ts_ns = static_cast<std::uint64_t>(clock_ns());
  slot.tid = thread_slot();
  slot.kind = kind;
  slot.phase = phase;
  slot.a = a;
  slot.b = b;
  slot.seq.store(idx + 1, std::memory_order_release);
}

void FlightRecorder::beat(FrPhase phase, std::int64_t detail) noexcept {
  Heart& h = hearts_[thread_slot()];
  h.last_ns.store(static_cast<std::uint64_t>(clock_ns()),
                  std::memory_order_relaxed);
  h.phase.store(static_cast<std::uint8_t>(phase), std::memory_order_relaxed);
  h.detail.store(detail, std::memory_order_relaxed);
  h.used.store(1, std::memory_order_relaxed);
  h.epoch.fetch_add(1, std::memory_order_release);
  progress_.fetch_add(1, std::memory_order_relaxed);
}

bool FlightRecorder::read_slot_(std::size_t i, FlightEvent& out) const noexcept {
  const Slot& slot = ring_[i];
  const std::uint64_t seq0 = slot.seq.load(std::memory_order_acquire);
  if (seq0 == 0) return false;  // empty or mid-write
  out.seq = seq0;
  out.ts_ns = slot.ts_ns;
  out.tid = slot.tid;
  out.kind = slot.kind;
  out.phase = slot.phase;
  out.a = slot.a;
  out.b = slot.b;
  std::atomic_thread_fence(std::memory_order_acquire);
  const std::uint64_t seq1 = slot.seq.load(std::memory_order_relaxed);
  if (seq1 != seq0) return false;  // torn: overwritten while reading
  if (static_cast<std::uint8_t>(out.kind) >= kFrEventCount) return false;
  if (static_cast<std::uint8_t>(out.phase) >= kFrPhaseCount) return false;
  return true;
}

std::vector<FlightEvent> FlightRecorder::snapshot_events() const {
  std::vector<FlightEvent> out;
  out.reserve(kRingCapacity);
  FlightEvent ev;
  for (std::size_t i = 0; i < kRingCapacity; ++i) {
    if (read_slot_(i, ev)) out.push_back(ev);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

std::vector<HeartbeatSnapshot> FlightRecorder::snapshot_heartbeats() const {
  std::vector<HeartbeatSnapshot> out;
  for (int t = 0; t < kMaxThreads; ++t) {
    const Heart& h = hearts_[t];
    if (h.used.load(std::memory_order_relaxed) == 0) continue;
    HeartbeatSnapshot s;
    s.tid = static_cast<std::uint32_t>(t);
    s.epoch = h.epoch.load(std::memory_order_acquire);
    s.last_ns = h.last_ns.load(std::memory_order_relaxed);
    s.phase = static_cast<FrPhase>(h.phase.load(std::memory_order_relaxed));
    s.detail = h.detail.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

std::size_t FlightRecorder::dump(int fd) const noexcept {
  detail::FdWriter w(fd);
  const std::uint64_t now = static_cast<std::uint64_t>(clock_ns());

  for (int t = 0; t < kMaxThreads; ++t) {
    const Heart& h = hearts_[t];
    if (h.used.load(std::memory_order_relaxed) == 0) continue;
    const std::uint64_t last = h.last_ns.load(std::memory_order_relaxed);
    w.str("{\"type\":\"heartbeat\",\"tid\":");
    w.u64(static_cast<std::uint64_t>(t));
    w.str(",\"epoch\":");
    w.u64(h.epoch.load(std::memory_order_acquire));
    w.str(",\"last_ns\":");
    w.u64(last);
    w.str(",\"age_ns\":");
    w.u64(now > last ? now - last : 0);
    w.str(",\"phase\":\"");
    w.str(fr_phase_name(
        static_cast<FrPhase>(h.phase.load(std::memory_order_relaxed))));
    w.str("\",\"detail\":");
    w.i64(h.detail.load(std::memory_order_relaxed));
    w.str("}\n");
  }

  // Emit events oldest-first. Walking the ring from the current head keeps
  // the output ordered without sorting (an allocation-free requirement);
  // per-slot sequence numbers let the postmortem reader verify order anyway.
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::size_t start =
      head >= kRingCapacity ? static_cast<std::size_t>(head % kRingCapacity)
                            : 0;
  std::size_t torn = 0;
  FlightEvent ev;
  for (std::size_t k = 0; k < kRingCapacity; ++k) {
    const std::size_t i = (start + k) % kRingCapacity;
    if (!read_slot_(i, ev)) {
      const Slot& slot = ring_[i];
      if (slot.seq.load(std::memory_order_relaxed) != 0 ||
          (head >= kRingCapacity || i < head)) {
        ++torn;  // a slot that should have held data but was mid-write
      }
      continue;
    }
    w.str("{\"type\":\"event\",\"seq\":");
    w.u64(ev.seq);
    w.str(",\"ts_ns\":");
    w.u64(ev.ts_ns);
    w.str(",\"tid\":");
    w.u64(ev.tid);
    w.str(",\"kind\":\"");
    w.str(fr_event_name(ev.kind));
    w.str("\",\"phase\":\"");
    w.str(fr_phase_name(ev.phase));
    w.str("\",\"a\":");
    w.i64(ev.a);
    w.str(",\"b\":");
    w.i64(ev.b);
    w.str("}\n");
  }
  w.flush();
  return torn;
}

void FlightRecorder::reset() noexcept {
  for (std::size_t i = 0; i < kRingCapacity; ++i) {
    ring_[i].seq.store(0, std::memory_order_relaxed);
  }
  for (int t = 0; t < kMaxThreads; ++t) {
    hearts_[t].epoch.store(0, std::memory_order_relaxed);
    hearts_[t].last_ns.store(0, std::memory_order_relaxed);
    hearts_[t].phase.store(0, std::memory_order_relaxed);
    hearts_[t].detail.store(0, std::memory_order_relaxed);
    hearts_[t].used.store(0, std::memory_order_relaxed);
  }
  head_.store(0, std::memory_order_relaxed);
  progress_.store(0, std::memory_order_relaxed);
}

}  // namespace mdcp::obs
