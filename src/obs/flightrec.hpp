// Always-on flight recorder: the liveness half of observability.
//
// The span tracer, metrics, and run reports only tell the story of runs that
// finish. The flight recorder exists for the runs that don't: it keeps a
// fixed-size, lock-free ring of compact progress events (phase enter/leave,
// CP-ALS iterations, engine prepare/compute boundaries, scheduler tile
// batches, degradation/recovery events) plus a per-thread *heartbeat* table
// (monotonic epoch, last-beat timestamp, current phase). Both are recorded
// unconditionally — even when the build compiles tracing out — because their
// whole point is to still be there when the process is wedged or dying.
//
// Three consumers:
//   * the Watchdog (obs/watchdog.hpp) polls progress() and fires when no
//     heartbeat advances within its deadline;
//   * crash dumps serialize the ring + heartbeat table through dump(), which
//     is async-signal-safe (pre-sized stack buffers, integer-only
//     formatting, write(2) only — no malloc, no locks);
//   * `mdcp_cli postmortem` renders a dump into per-thread timelines and a
//     likely-stalled-phase verdict.
//
// Concurrency: record() claims a slot with one fetch_add and publishes it
// with a per-slot seqlock (seq=0 while the payload is being written, seq =
// global sequence when complete), so concurrent writers never block and
// readers — including a signal handler interrupting a half-written slot —
// can detect and skip torn entries. beat() is a handful of relaxed stores
// plus one shared relaxed fetch_add; it is cheap enough for parallel-for
// chunk loops.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/clock.hpp"

namespace mdcp::obs {

/// Progress-event kinds recorded into the ring.
enum class FrEvent : std::uint8_t {
  kPhaseEnter = 0,
  kPhaseLeave = 1,
  kIteration = 2,     ///< CP-ALS iteration start (a = iteration)
  kPrepareBegin = 3,  ///< engine symbolic phase (NVI wrapper)
  kPrepareEnd = 4,
  kComputeBegin = 5,  ///< engine numeric phase (a = mode)
  kComputeEnd = 6,
  kTileBatch = 7,     ///< scheduled parallel launch (a = tiles, b = schedule)
  kDegradation = 8,   ///< budget-driven engine fallback
  kRecovery = 9,      ///< CP-ALS numerical recovery (a = mode)
  kCancel = 10,       ///< cooperative cancellation observed
  kWatchdog = 11,     ///< watchdog fired
  kStall = 12,        ///< injected stall fault (a = milliseconds)
};
inline constexpr int kFrEventCount = 13;
const char* fr_event_name(FrEvent e) noexcept;

/// Coarse phase a thread publishes with its heartbeat. Compact by design —
/// the crash dump must explain "where was every thread" with one byte.
enum class FrPhase : std::uint8_t {
  kNone = 0,
  kPrepare = 1,      ///< engine symbolic phase
  kCompute = 2,      ///< engine numeric phase (detail = mode)
  kSolve = 3,        ///< CP-ALS dense solve/normalize (detail = mode)
  kFit = 4,          ///< CP-ALS fit evaluation
  kIteration = 5,    ///< CP-ALS sweep bookkeeping (detail = iteration)
  kParallelFor = 6,  ///< inside a parallel_for chunk loop
  kShutdown = 7,     ///< run teardown / reporting
};
inline constexpr int kFrPhaseCount = 8;
const char* fr_phase_name(FrPhase p) noexcept;

/// One decoded ring entry (snapshot form).
struct FlightEvent {
  std::uint64_t seq = 0;  ///< global order, 1-based
  std::uint64_t ts_ns = 0;
  std::uint32_t tid = 0;  ///< flight-recorder thread slot
  FrEvent kind = FrEvent::kPhaseEnter;
  FrPhase phase = FrPhase::kNone;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

/// One thread's heartbeat state (snapshot form).
struct HeartbeatSnapshot {
  std::uint32_t tid = 0;
  std::uint64_t epoch = 0;    ///< beats so far (monotonic)
  std::uint64_t last_ns = 0;  ///< obs::clock_ns of the latest beat
  FrPhase phase = FrPhase::kNone;
  std::int64_t detail = 0;  ///< phase-specific (mode, iteration, ...)
};

class FlightRecorder {
 public:
  /// Ring capacity in events (fixed at compile time: the recorder must never
  /// allocate after construction). ~48 B/event.
  static constexpr std::size_t kRingCapacity = 4096;
  /// Upper bound on distinct heartbeat threads (matches Workspace's bound;
  /// overflowing threads share the last slot).
  static constexpr int kMaxThreads = 256;

  /// The process-wide recorder. Deliberately leaked so crash handlers may
  /// run during process teardown without touching a destroyed object.
  static FlightRecorder& instance() noexcept;

  /// Records one event. Lock-free and safe from any thread, including
  /// inside OpenMP regions.
  void record(FrEvent kind, FrPhase phase, std::int64_t a = 0,
              std::int64_t b = 0) noexcept;

  /// Publishes a heartbeat for the calling thread: bumps its epoch, stamps
  /// the clock, and sets its current phase. The watchdog treats any beat
  /// from any thread as forward progress.
  void beat(FrPhase phase, std::int64_t detail = 0) noexcept;

  /// The calling thread's heartbeat slot (assigned on first use).
  std::uint32_t thread_slot() noexcept;

  /// Total events ever recorded (>= retained once the ring wraps).
  std::uint64_t events_recorded() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }

  /// Monotonic progress signal: advances on every beat() from any thread.
  std::uint64_t progress() const noexcept {
    return progress_.load(std::memory_order_relaxed);
  }

  /// Oldest-first copy of the retained ring (torn/in-flight slots skipped).
  /// Normal-context only (allocates the result vector).
  std::vector<FlightEvent> snapshot_events() const;

  /// Heartbeat table snapshot (threads that ever beat). Normal-context only.
  std::vector<HeartbeatSnapshot> snapshot_heartbeats() const;

  /// Writes the heartbeat table and the retained events to `fd` as JSONL
  /// ("heartbeat" / "event" lines of the mdcp-crash-dump/1 schema).
  /// Async-signal-safe: stack buffers, integer-only formatting, write(2).
  /// Returns the number of torn slots skipped.
  std::size_t dump(int fd) const noexcept;

  /// Zeroes the ring and every heartbeat epoch (thread-slot assignments are
  /// kept — they are thread_local). Test hook; not thread-safe against
  /// concurrent writers.
  void reset() noexcept;

 private:
  FlightRecorder() = default;

  // Per-slot seqlock: seq == 0 means empty or in-flight; seq == N means the
  // payload is the N-th event (1-based). Writers store 0, fill, then store N
  // with release; readers double-check seq around the payload read.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::uint64_t ts_ns = 0;
    std::uint32_t tid = 0;
    FrEvent kind = FrEvent::kPhaseEnter;
    FrPhase phase = FrPhase::kNone;
    std::int64_t a = 0;
    std::int64_t b = 0;
  };

  struct Heart {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint64_t> last_ns{0};
    std::atomic<std::uint8_t> phase{0};
    std::atomic<std::int64_t> detail{0};
    std::atomic<std::uint8_t> used{0};
  };

  /// Reads slot `i` with the seqlock double-check; false = torn or empty.
  bool read_slot_(std::size_t i, FlightEvent& out) const noexcept;

  Slot ring_[kRingCapacity];
  Heart hearts_[kMaxThreads];
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> progress_{0};
  std::atomic<std::uint32_t> next_slot_{0};
};

/// Terse helpers for instrumentation sites.
inline void fr_record(FrEvent kind, FrPhase phase, std::int64_t a = 0,
                      std::int64_t b = 0) noexcept {
  FlightRecorder::instance().record(kind, phase, a, b);
}
inline void fr_beat(FrPhase phase, std::int64_t detail = 0) noexcept {
  FlightRecorder::instance().beat(phase, detail);
}

/// RAII phase bracket: records enter/leave events and publishes a heartbeat
/// on entry.
class FrPhaseScope {
 public:
  explicit FrPhaseScope(FrPhase phase, std::int64_t detail = 0) noexcept
      : phase_(phase) {
    fr_record(FrEvent::kPhaseEnter, phase, detail);
    fr_beat(phase, detail);
  }
  ~FrPhaseScope() { fr_record(FrEvent::kPhaseLeave, phase_); }
  FrPhaseScope(const FrPhaseScope&) = delete;
  FrPhaseScope& operator=(const FrPhaseScope&) = delete;

 private:
  FrPhase phase_;
};

namespace detail {

/// Buffered fd writer for async-signal-safe JSON lines: fixed stack-owned
/// buffer, write(2) on flush, integer/decimal formatting only. Used by the
/// flight recorder and the crash-dump writer in obs/watchdog.cpp.
class FdWriter {
 public:
  explicit FdWriter(int fd) noexcept : fd_(fd) {}
  ~FdWriter() { flush(); }

  void str(const char* s) noexcept;  ///< raw (caller guarantees JSON-safe)
  void u64(std::uint64_t v) noexcept;
  void i64(std::int64_t v) noexcept;
  void flush() noexcept;

 private:
  void byte_(char c) noexcept;

  int fd_;
  char buf_[512];
  std::size_t len_ = 0;
};

}  // namespace detail

}  // namespace mdcp::obs
