#include "obs/history.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>

#include "obs/json.hpp"
#include "obs/report.hpp"

namespace mdcp::obs {

namespace {

std::uint64_t fnv1a(std::string_view s,
                    std::uint64_t h = 0xcbf29ce484222325ULL) noexcept {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  // Separate fields: hash the delimiter so "ab"+"c" != "a"+"bc".
  h ^= 0x1fu;
  h *= 0x100000001b3ULL;
  return h;
}

std::uint64_t provenance_build_id(const std::string& compiler,
                                  const std::string& flags,
                                  const std::string& build_type) {
  return fnv1a(build_type, fnv1a(flags, fnv1a(compiler)));
}

std::uint64_t provenance_machine_id(const std::string& host,
                                    std::uint64_t hardware_threads) {
  std::uint64_t h = fnv1a(host);
  h = fnv1a(std::to_string(hardware_threads), h);
  return h;
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

std::string strategy_from_engine_label(const std::string& label) {
  for (const char* prefix : {"auto+probe:", "auto:"}) {
    if (label.rfind(prefix, 0) == 0) return label.substr(std::strlen(prefix));
  }
  return label;
}

std::uint64_t HistoryStore::current_build_id() {
  static const std::uint64_t id = [] {
    const BuildInfo& b = BuildInfo::current();
    return provenance_build_id(b.compiler, b.flags, b.build_type);
  }();
  return id;
}

std::uint64_t HistoryStore::current_machine_id() {
  static const std::uint64_t id = provenance_machine_id(
      BuildInfo::current().host, BuildInfo::current().hardware_threads);
  return id;
}

std::optional<RunObservation> HistoryStore::parse_report_file(
    const std::string& path, HistoryIngestStats* stats) {
  HistoryIngestStats local;
  if (stats == nullptr) stats = &local;
  ++stats->files_scanned;

  std::ifstream in(path);
  if (!in.good()) {
    ++stats->files_unparseable;
    return std::nullopt;
  }

  const JsonValue* header = nullptr;
  const JsonValue* summary = nullptr;
  std::vector<JsonValue> records;  // keep parsed lines alive for the pointers
  records.reserve(16);
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    JsonValue v;
    if (!json_parse(line, v) || !v.is_object()) {
      ++stats->files_unparseable;
      return std::nullopt;
    }
    records.push_back(std::move(v));
  }
  for (const JsonValue& v : records) {
    const JsonValue* type = v.find("type", JsonValue::Kind::kString);
    if (type == nullptr) continue;
    if (type->as_string() == "header" && header == nullptr) header = &v;
    if (type->as_string() == "summary") summary = &v;  // last one wins
  }
  if (header == nullptr || summary == nullptr) {
    ++stats->files_incomplete;
    return std::nullopt;
  }

  // Version gate: absent = version 1 (pre-versioned reports are readable);
  // anything newer than this build understands is skipped, not guessed at.
  int version = 1;
  if (const JsonValue* v =
          header->find("report_version", JsonValue::Kind::kNumber))
    version = static_cast<int>(v->as_number());
  if (version < 1 || version > kReportVersion) {
    ++stats->files_unknown_version;
    return std::nullopt;
  }

  RunObservation obs;
  obs.source_file = path;
  if (const JsonValue* fp =
          header->find("fingerprint", JsonValue::Kind::kString))
    obs.fingerprint = std::strtoull(fp->as_string().c_str(), nullptr, 16);
  if (const JsonValue* kt =
          header->find("kernel_threads", JsonValue::Kind::kNumber))
    obs.threads = static_cast<int>(kt->as_number());

  std::string compiler, flags, build_type, host;
  std::uint64_t hardware_threads = 0;
  if (const JsonValue* v = header->find("compiler", JsonValue::Kind::kString))
    compiler = v->as_string();
  if (const JsonValue* v = header->find("flags", JsonValue::Kind::kString))
    flags = v->as_string();
  if (const JsonValue* v =
          header->find("build_type", JsonValue::Kind::kString))
    build_type = v->as_string();
  if (const JsonValue* v = header->find("host", JsonValue::Kind::kString))
    host = v->as_string();
  if (const JsonValue* v =
          header->find("hardware_threads", JsonValue::Kind::kNumber))
    hardware_threads = static_cast<std::uint64_t>(v->as_number());
  obs.build_id = provenance_build_id(compiler, flags, build_type);
  obs.machine_id = provenance_machine_id(host, hardware_threads);

  if (const JsonValue* v = summary->find("engine", JsonValue::Kind::kString))
    obs.engine_label = v->as_string();
  obs.strategy = strategy_from_engine_label(obs.engine_label);
  if (const JsonValue* v = summary->find("rank", JsonValue::Kind::kNumber))
    obs.rank = static_cast<std::uint32_t>(v->as_number());
  if (const JsonValue* v =
          summary->find("iterations", JsonValue::Kind::kNumber))
    obs.iterations = static_cast<int>(v->as_number());
  if (const JsonValue* v =
          summary->find("final_fit", JsonValue::Kind::kNumber))
    obs.final_fit = v->as_number();
  if (const JsonValue* v =
          summary->find("plan_source", JsonValue::Kind::kString))
    obs.plan_source = v->as_string();
  if (const JsonValue* v = summary->find("aborted", JsonValue::Kind::kBool))
    obs.aborted = v->as_bool();

  double mttkrp_seconds = 0;
  if (const JsonValue* v =
          summary->find("mttkrp_seconds", JsonValue::Kind::kNumber))
    mttkrp_seconds = v->as_number();
  if (obs.iterations > 0) {
    const double iters = static_cast<double>(obs.iterations);
    obs.seconds_per_iteration = mttkrp_seconds / iters;
    if (const JsonValue* v =
            summary->find("mttkrp_mode_seconds", JsonValue::Kind::kArray)) {
      obs.mode_seconds.reserve(v->items().size());
      for (const JsonValue& item : v->items())
        obs.mode_seconds.push_back(item.as_number() / iters);
    }
    if (const JsonValue* v = summary->find(
            "predicted_seconds_per_iteration", JsonValue::Kind::kNumber)) {
      if (v->as_number() > 0 && obs.seconds_per_iteration > 0)
        obs.time_error_ratio = v->as_number() / obs.seconds_per_iteration;
    }
  }

  ++stats->files_ingested;
  return obs;
}

bool HistoryStore::ingest_file(const std::string& path,
                               HistoryIngestStats* stats) {
  auto obs = parse_report_file(path, stats);
  if (!obs.has_value()) return false;
  observations_.push_back(std::move(*obs));
  return true;
}

HistoryIngestStats HistoryStore::ingest_dir(
    const std::string& dir, const std::vector<std::string>& exclude) {
  namespace fs = std::filesystem;
  HistoryIngestStats stats;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return stats;

  std::vector<fs::path> excluded;
  excluded.reserve(exclude.size());
  for (const auto& e : exclude)
    excluded.push_back(fs::weakly_canonical(e, ec));

  // Sorted for deterministic observation order (directory order is not).
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().extension() == ".tmp") {
      // A RunReporter stream that never reached close(): the run died and
      // nothing (not even the crash handler) promoted it. Make the loss
      // visible instead of pretending the run never happened.
      ++stats.files_orphaned_tmp;
      continue;
    }
    if (entry.path().extension() != ".jsonl") continue;
    const fs::path canon = fs::weakly_canonical(entry.path(), ec);
    if (std::find(excluded.begin(), excluded.end(), canon) != excluded.end())
      continue;
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& f : files) ingest_file(f.string(), &stats);
  return stats;
}

void HistoryStore::record(RunObservation obs) {
  observations_.push_back(std::move(obs));
}

std::vector<const RunObservation*> HistoryStore::query(
    std::uint64_t fingerprint, std::uint32_t rank,
    const std::string& strategy) const {
  std::vector<const RunObservation*> out;
  for (const RunObservation& obs : observations_) {
    if (obs.fingerprint != fingerprint) continue;
    if (obs.rank != rank && rank != 0) continue;
    if (!strategy.empty() && obs.strategy != strategy) continue;
    out.push_back(&obs);
  }
  return out;
}

double HistoryStore::trust_weight(const RunObservation& obs,
                                  const TrustPolicy& policy) {
  const std::uint64_t build =
      policy.build_id != 0 ? policy.build_id : current_build_id();
  const std::uint64_t machine =
      policy.machine_id != 0 ? policy.machine_id : current_machine_id();
  double w = 1.0;
  if (obs.build_id != build) w *= policy.decay;
  if (obs.machine_id != machine) w *= policy.decay;
  if (policy.threads != 0 && obs.threads != 0 &&
      obs.threads != policy.threads)
    w *= policy.decay;
  return w;
}

std::optional<HistoryStore::BestPlan> HistoryStore::measured_best(
    std::uint64_t fingerprint, std::uint32_t rank,
    const TrustPolicy& policy) const {
  struct Acc {
    double weight = 0, weighted_seconds = 0;
    std::size_t n = 0;
  };
  std::map<std::string, Acc> per_strategy;
  for (const RunObservation* obs : query(fingerprint, rank)) {
    if (obs->seconds_per_iteration <= 0 || obs->strategy.empty()) continue;
    const double w = trust_weight(*obs, policy);
    Acc& acc = per_strategy[obs->strategy];
    acc.weight += w;
    acc.weighted_seconds += w * obs->seconds_per_iteration;
    ++acc.n;
  }
  std::optional<BestPlan> best;
  for (const auto& [strategy, acc] : per_strategy) {
    if (acc.weight < policy.min_weight || acc.weight <= 0) continue;
    const double mean = acc.weighted_seconds / acc.weight;
    if (!best.has_value() || mean < best->seconds_per_iteration)
      best = BestPlan{strategy, mean, acc.weight, acc.n};
  }
  return best;
}

std::vector<HistoryStore::Group> HistoryStore::groups() const {
  struct Key {
    std::uint64_t fingerprint;
    std::string label;
    std::uint32_t rank;
    bool operator<(const Key& o) const {
      if (fingerprint != o.fingerprint) return fingerprint < o.fingerprint;
      if (label != o.label) return label < o.label;
      return rank < o.rank;
    }
  };
  std::map<Key, Group> grouped;
  std::map<Key, std::pair<double, std::size_t>> error_acc;
  for (const RunObservation& obs : observations_) {
    const Key key{obs.fingerprint, obs.engine_label, obs.rank};
    Group& g = grouped[key];
    if (g.runs == 0 && g.aborted_runs == 0) {
      g.fingerprint = obs.fingerprint;
      g.engine_label = obs.engine_label;
      g.rank = obs.rank;
    }
    if (obs.aborted) {
      // Crash-finalized record: count it, but keep its zero timings out of
      // the group's statistics.
      ++g.aborted_runs;
      continue;
    }
    if (g.runs == 0) {
      g.min_seconds_per_iteration = obs.seconds_per_iteration;
      g.max_seconds_per_iteration = obs.seconds_per_iteration;
    }
    ++g.runs;
    g.mean_seconds_per_iteration += obs.seconds_per_iteration;
    g.min_seconds_per_iteration =
        std::min(g.min_seconds_per_iteration, obs.seconds_per_iteration);
    g.max_seconds_per_iteration =
        std::max(g.max_seconds_per_iteration, obs.seconds_per_iteration);
    if (!obs.plan_source.empty()) g.last_plan_source = obs.plan_source;
    if (obs.time_error_ratio > 0) {
      error_acc[key].first += obs.time_error_ratio;
      ++error_acc[key].second;
    }
  }
  std::vector<Group> out;
  out.reserve(grouped.size());
  for (auto& [key, g] : grouped) {
    if (g.runs > 0) g.mean_seconds_per_iteration /= static_cast<double>(g.runs);
    const auto it = error_acc.find(key);
    if (it != error_acc.end() && it->second.second > 0)
      g.mean_time_error_ratio =
          it->second.first / static_cast<double>(it->second.second);
    out.push_back(std::move(g));
  }
  return out;
}

DriftReport detect_drift(const HistoryStore& store, const RunObservation& run,
                         const DriftOptions& options) {
  DriftReport report;
  const auto history = store.query(run.fingerprint, run.rank, run.strategy);
  report.history_runs = history.size();
  if (history.size() < 2) return report;  // no band without a distribution

  // One banded "kernel" per mode, plus the whole-sweep aggregate.
  const std::size_t modes = run.mode_seconds.size();
  const auto band = [&](const std::string& kernel, double measured,
                        std::vector<double> samples) {
    if (samples.size() < 2 || measured < options.min_seconds) return;
    const double median = median_of(samples);
    if (median < options.min_seconds) return;
    std::vector<double> dev;
    dev.reserve(samples.size());
    for (const double s : samples) dev.push_back(std::abs(s - median));
    const double mad = median_of(std::move(dev));
    const double scale =
        std::max({1.4826 * mad, options.rel_floor * median, 1e-12});
    DriftFinding f;
    f.kernel = kernel;
    f.measured = measured;
    f.median = median;
    f.scale = scale;
    f.z = (measured - median) / scale;
    if (f.z > options.sigma) {
      f.status = "regression";
      report.regressed = true;
      report.out_of_band = true;
    } else if (f.z < -options.sigma) {
      f.status = "improved";
      report.out_of_band = true;
    }
    report.findings.push_back(std::move(f));
  };

  for (std::size_t m = 0; m < modes; ++m) {
    std::vector<double> samples;
    for (const RunObservation* obs : history)
      if (m < obs->mode_seconds.size())
        samples.push_back(obs->mode_seconds[m]);
    band("mode" + std::to_string(m), run.mode_seconds[m], std::move(samples));
  }
  {
    std::vector<double> samples;
    for (const RunObservation* obs : history)
      if (obs->seconds_per_iteration > 0)
        samples.push_back(obs->seconds_per_iteration);
    band("mttkrp", run.seconds_per_iteration, std::move(samples));
  }
  return report;
}

}  // namespace mdcp::obs
