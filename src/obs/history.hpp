// Persistent cross-run history: ingest JSONL run reports, index measured
// timings by tensor fingerprint + provenance, and answer the two questions
// the rest of the system asks:
//
//   * tuner feedback — "for this (fingerprint, rank), which strategy was
//     measured fastest, and do we trust those measurements enough to prefer
//     them over the analytic ranking?" (see measured_best / TrustPolicy,
//     consumed by select_strategy via TunerOptions)
//   * drift analytics — "is this run's per-kernel timing inside the robust
//     z-score band of the stored history?" (see detect_drift, consumed by
//     `mdcp_cli drift`)
//
// The store's on-disk format IS the run-report directory: every
// `mdcp_cli decompose --history-dir <d>` appends one `run-*.jsonl` report
// (written crash-safely, see RunReporter), and ingest_dir() re-reads them
// all. There is no secondary database to corrupt or migrate — deleting a
// file forgets that run, and unparseable / unknown-version files are skipped
// and counted, never fatal.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mdcp::obs {

/// One run's worth of measured history, extracted from a report's header +
/// summary records (or recorded in-process by cp_als when
/// CpAlsOptions::history is set).
struct RunObservation {
  std::uint64_t fingerprint = 0;  ///< tensor_fingerprint from the header
  std::string engine_label;       ///< summary "engine", e.g. "auto:bdt/asc"
  /// engine_label with the "auto:" / "auto+probe:" prefix stripped — the
  /// name the tuner's candidate strategies are matched against ("bdt/asc",
  /// "greedy", ...; fixed engines keep their registry name).
  std::string strategy;
  std::uint32_t rank = 0;  ///< 0 when the report predates the rank field
  int threads = 0;         ///< kernel_threads from the header

  // Provenance the trust policy decays on (see TrustPolicy).
  std::uint64_t build_id = 0;    ///< hash of compiler + flags + build type
  std::uint64_t machine_id = 0;  ///< hash of host name + hardware threads

  int iterations = 0;
  double seconds_per_iteration = 0;  ///< MTTKRP seconds / iterations
  /// Per-mode MTTKRP seconds per iteration (the "per-kernel timings" the
  /// drift detector bands). Empty when the summary lacked the array.
  std::vector<double> mode_seconds;
  double time_error_ratio = 0;  ///< tuner predicted/measured (0 = unknown)
  double final_fit = 0;
  std::string plan_source;  ///< "model" | "history" | "fixed" ("" = unknown)
  std::string source_file;  ///< report path ("" = recorded in-process)
  /// True when the summary record was written by the crash handler
  /// ("aborted":true): the run died mid-flight. Counted per group but never
  /// fed into timing statistics (iterations is 0 on such records).
  bool aborted = false;
};

/// Ingest bookkeeping. Skips are counted, never thrown: a poisoned file in a
/// shared history directory must not take down every later run.
struct HistoryIngestStats {
  std::size_t files_scanned = 0;
  std::size_t files_ingested = 0;
  std::size_t files_unparseable = 0;      ///< bad JSON / truncated mid-record
  std::size_t files_unknown_version = 0;  ///< report_version > kReportVersion
  std::size_t files_incomplete = 0;       ///< missing header or summary
  /// `*.tmp` leftovers from runs that died before RunReporter::close() could
  /// rename them (and before any crash handler promoted them). They carry no
  /// summary and are never ingested, but they are evidence of crashed runs —
  /// surfaced here (and by `mdcp_cli history`) instead of silently skipped.
  std::size_t files_orphaned_tmp = 0;
};

/// How much a stored observation is believed when consulted for planning.
/// Each provenance axis that differs from the current process (build,
/// machine, thread count) multiplies the observation's weight by `decay`, so
/// history survives a rebuild or a new host but has to be re-earned there.
struct TrustPolicy {
  std::uint64_t build_id = 0;    ///< 0 = current_build_id()
  std::uint64_t machine_id = 0;  ///< 0 = current_machine_id()
  int threads = 0;               ///< 0 = any (thread axis not decayed)
  double decay = 0.25;           ///< weight multiplier per mismatched axis
  /// Minimum summed weight before a strategy's measurements may override
  /// the analytic model — the "warm-start after K observations" knob
  /// (same-provenance observations weigh 1 each).
  double min_weight = 1.0;
};

/// Robust z-score banding for drift detection. The scale is
/// max(1.4826·MAD, rel_floor·median): the MAD term adapts to genuinely
/// noisy kernels, the relative floor keeps near-deterministic histories
/// (MAD ≈ 0) from flagging ordinary scheduling jitter.
struct DriftOptions {
  double sigma = 3.5;       ///< |z| beyond this is out of band
  double rel_floor = 0.12;  ///< minimum scale as a fraction of the median
  /// Kernels faster than this are skipped entirely (sub-fixed-cost timings
  /// are all noise).
  double min_seconds = 1e-6;
};

struct DriftFinding {
  std::string kernel;   ///< "mode0", "mode1", ..., or "mttkrp"
  double measured = 0;  ///< this run's seconds (per iteration)
  double median = 0;    ///< history median
  double scale = 0;     ///< robust scale the z-score used
  double z = 0;         ///< signed robust z-score
  /// "regression" (slow side, gates the exit status), "improved" (fast
  /// side, informational), or "ok".
  const char* status = "ok";
};

struct DriftReport {
  std::vector<DriftFinding> findings;  ///< one per banded kernel
  std::size_t history_runs = 0;        ///< comparable observations found
  bool regressed = false;              ///< any slow-side finding
  bool out_of_band = false;            ///< any finding on either side
};

class HistoryStore {
 public:
  /// Provenance of the running process, for TrustPolicy and for stamping
  /// in-process observations. Stable for the process lifetime.
  static std::uint64_t current_build_id();
  static std::uint64_t current_machine_id();

  /// Parses one JSONL run report into an observation. Returns nullopt (and
  /// bumps the matching `stats` skip counter) for unreadable, unparseable,
  /// future-version, or header/summary-less files.
  static std::optional<RunObservation> parse_report_file(
      const std::string& path, HistoryIngestStats* stats = nullptr);

  /// Ingests one report file; false if it was skipped.
  bool ingest_file(const std::string& path,
                   HistoryIngestStats* stats = nullptr);

  /// Ingests every "*.jsonl" in `dir` (non-recursive; "*.tmp" crash
  /// leftovers and files named in `exclude` are ignored). A missing
  /// directory ingests nothing and is not an error.
  HistoryIngestStats ingest_dir(const std::string& dir,
                                const std::vector<std::string>& exclude = {});

  /// Appends an in-process observation (cp_als records each run's outcome
  /// here so repeat runs inside one process warm-start without re-reading
  /// the directory).
  void record(RunObservation obs);

  std::size_t size() const noexcept { return observations_.size(); }
  bool empty() const noexcept { return observations_.empty(); }
  const std::vector<RunObservation>& observations() const noexcept {
    return observations_;
  }

  /// Observations matching (fingerprint, rank, strategy). rank 0 / empty
  /// strategy match any; rank-0 *observations* only match rank-0 queries
  /// (an unknown-rank measurement must not inform a rank-specific plan).
  std::vector<const RunObservation*> query(std::uint64_t fingerprint,
                                           std::uint32_t rank = 0,
                                           const std::string& strategy = {})
      const;

  /// The measured-best plan for (fingerprint, rank) under `policy`: per
  /// strategy, observations are trust-weighted and averaged; strategies
  /// whose summed weight is below policy.min_weight are not yet trusted.
  /// Returns nullopt when no strategy qualifies.
  struct BestPlan {
    std::string strategy;
    double seconds_per_iteration = 0;  ///< trust-weighted mean
    double weight = 0;                 ///< summed trust weight
    std::size_t observations = 0;      ///< raw observation count
  };
  std::optional<BestPlan> measured_best(std::uint64_t fingerprint,
                                        std::uint32_t rank,
                                        const TrustPolicy& policy = {}) const;

  /// Trust weight of one observation under `policy` (exposed for tests and
  /// the `history` subcommand).
  static double trust_weight(const RunObservation& obs,
                             const TrustPolicy& policy);

  /// Aggregate view for `mdcp_cli history`: one row per
  /// (fingerprint, engine label, rank).
  struct Group {
    std::uint64_t fingerprint = 0;
    std::string engine_label;
    std::uint32_t rank = 0;
    std::size_t runs = 0;          ///< completed runs (timing stats below)
    std::size_t aborted_runs = 0;  ///< crash-finalized runs (no timings)
    double mean_seconds_per_iteration = 0;
    double min_seconds_per_iteration = 0;
    double max_seconds_per_iteration = 0;
    double mean_time_error_ratio = 0;  ///< over runs that reported one
    std::string last_plan_source;
  };
  std::vector<Group> groups() const;

 private:
  std::vector<RunObservation> observations_;
};

/// Bands `run`'s per-kernel timings against the store's observations with
/// the same (fingerprint, rank, strategy). With fewer than 2 comparable
/// observations the report is empty (history_runs tells the caller why).
DriftReport detect_drift(const HistoryStore& store, const RunObservation& run,
                         const DriftOptions& options = {});

/// Strips the "auto:" / "auto+probe:" prefix an AutoEngine bakes into its
/// resolved name, yielding the strategy name history keys on.
std::string strategy_from_engine_label(const std::string& label);

}  // namespace mdcp::obs
