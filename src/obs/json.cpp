#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mdcp::obs {

void json_escape(std::string_view s, std::string& out) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void JsonWriter::prefix_value_() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (stack_.back().has_items) out_ += ',';
    stack_.back().has_items = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  prefix_value_();
  out_ += '{';
  stack_.push_back({'o', false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prefix_value_();
  out_ += '[';
  stack_.push_back({'a', false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!stack_.empty()) {
    if (stack_.back().has_items) out_ += ',';
    stack_.back().has_items = true;
  }
  out_ += '"';
  json_escape(k, out_);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  prefix_value_();
  out_ += '"';
  json_escape(v, out_);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  prefix_value_();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prefix_value_();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prefix_value_();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prefix_value_();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  prefix_value_();
  out_ += "null";
  return *this;
}

void JsonWriter::clear() {
  out_.clear();
  stack_.clear();
  after_key_ = false;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue* JsonValue::find(std::string_view key,
                                 Kind kind) const noexcept {
  const JsonValue* v = find(key);
  return (v != nullptr && v->kind() == kind) ? v : nullptr;
}

void JsonValue::write(JsonWriter& w) const {
  switch (kind_) {
    case Kind::kNull:
      w.null();
      break;
    case Kind::kBool:
      w.value(bool_);
      break;
    case Kind::kNumber:
      w.value(number_);
      break;
    case Kind::kString:
      w.value(string_);
      break;
    case Kind::kArray:
      w.begin_array();
      for (const auto& item : items_) item.write(w);
      w.end_array();
      break;
    case Kind::kObject:
      w.begin_object();
      for (const auto& [k, v] : members_) {
        w.key(k);
        v.write(w);
      }
      w.end_object();
      break;
  }
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::make_object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

namespace {

// Recursive-descent JSON reader. Depth is bounded to keep adversarial inputs
// (a bench binary gone wrong) from exhausting the stack.
class JsonParser {
 public:
  JsonParser(std::string_view text, std::string* error)
      : s_(text), error_(error) {}

  bool run(JsonValue& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const char* msg) {
    if (error_ != nullptr)
      *error_ = "offset " + std::to_string(pos_) + ": " + msg;
    return false;
  }

  char peek() const noexcept { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  bool eat(char c) noexcept {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  void skip_ws() noexcept {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    switch (peek()) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue::make_string(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = JsonValue::make_bool(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        out = JsonValue::make_null();
        return true;
      default:
        return parse_number(out);
    }
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p)
      if (!eat(*p)) return fail("bad literal");
    return true;
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out = JsonValue::make_object();
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':' in object");
      skip_ws();
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.mutable_members().emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    out = JsonValue::make_array();
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.mutable_items().push_back(std::move(v));
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return fail("expected string");
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = peek();
            unsigned d;
            if (h >= '0' && h <= '9') d = static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') d = static_cast<unsigned>(h - 'a') + 10;
            else if (h >= 'A' && h <= 'F') d = static_cast<unsigned>(h - 'A') + 10;
            else return fail("bad \\u escape");
            cp = cp * 16 + d;
            ++pos_;
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences; good enough for telemetry).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          }
          break;
        }
        default:
          return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    eat('-');
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (eat('.'))
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(s_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("bad number");
    out = JsonValue::make_number(v);
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue& out, std::string* error) {
  return JsonParser(text, error).run(out);
}

}  // namespace mdcp::obs
