#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace mdcp::obs {

void json_escape(std::string_view s, std::string& out) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void JsonWriter::prefix_value_() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (stack_.back().has_items) out_ += ',';
    stack_.back().has_items = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  prefix_value_();
  out_ += '{';
  stack_.push_back({'o', false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prefix_value_();
  out_ += '[';
  stack_.push_back({'a', false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!stack_.empty()) {
    if (stack_.back().has_items) out_ += ',';
    stack_.back().has_items = true;
  }
  out_ += '"';
  json_escape(k, out_);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  prefix_value_();
  out_ += '"';
  json_escape(v, out_);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  prefix_value_();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prefix_value_();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prefix_value_();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prefix_value_();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  prefix_value_();
  out_ += "null";
  return *this;
}

void JsonWriter::clear() {
  out_.clear();
  stack_.clear();
  after_key_ = false;
}

}  // namespace mdcp::obs
