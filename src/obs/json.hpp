// Minimal JSON writer + parser shared by the tracer, the metrics registry,
// the run reporter, and the benchmark-telemetry tools.
//
// No external JSON dependency: the writer appends to an internal string and
// tracks the container stack so commas and colons land in the right places.
// Usage:
//
//   JsonWriter w;
//   w.begin_object().kv("fit", 0.93).key("shape").begin_array();
//   for (auto d : shape) w.value(std::uint64_t{d});
//   w.end_array().end_object();
//   os << w.str();
//
// Non-finite doubles serialize as null (JSON has no NaN/Inf).
//
// The parser (json_parse) builds a JsonValue DOM; it exists so bench_runner
// and bench_diff can consume the --json output of the bench binaries without
// pulling in an external dependency. It accepts strict JSON only.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mdcp::obs {

/// Appends the JSON string-escape of `s` (no surrounding quotes) to `out`.
void json_escape(std::string_view s, std::string& out);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value (or container).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& null();

  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// The serialized document so far. Valid JSON once all containers are
  /// closed.
  const std::string& str() const noexcept { return out_; }
  void clear();

 private:
  void prefix_value_();

  std::string out_;
  // One frame per open container: 'o' / 'a', plus whether it has items.
  struct Frame {
    char kind;
    bool has_items;
  };
  std::vector<Frame> stack_;
  bool after_key_ = false;
};

/// Parsed JSON value. Objects preserve member insertion order (bench tables
/// are diffed in emission order). All numbers are stored as double — the
/// telemetry schemas never exceed 2^53, so this loses nothing.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }

  bool as_bool(bool def = false) const noexcept {
    return kind_ == Kind::kBool ? bool_ : def;
  }
  double as_number(double def = 0) const noexcept {
    return kind_ == Kind::kNumber ? number_ : def;
  }
  const std::string& as_string() const noexcept { return string_; }
  const std::vector<JsonValue>& items() const noexcept { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members()
      const noexcept {
    return members_;
  }

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const noexcept;
  /// find() that also requires the member to be of `kind`.
  const JsonValue* find(std::string_view key, Kind kind) const noexcept;

  /// Re-serializes this value through JsonWriter (used to embed parsed bench
  /// tables verbatim inside an aggregate document).
  void write(JsonWriter& w) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array();
  static JsonValue make_object();

  std::vector<JsonValue>& mutable_items() noexcept { return items_; }
  std::vector<std::pair<std::string, JsonValue>>& mutable_members() noexcept {
    return members_;
  }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses exactly one JSON document. Returns false (and fills `error`, if
/// given, with "offset N: message") on malformed input; `out` is then
/// unspecified.
bool json_parse(std::string_view text, JsonValue& out,
                std::string* error = nullptr);

}  // namespace mdcp::obs
