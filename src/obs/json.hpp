// Minimal streaming JSON writer shared by the tracer, the metrics registry,
// and the run reporter.
//
// No external JSON dependency: the writer appends to an internal string and
// tracks the container stack so commas and colons land in the right places.
// Usage:
//
//   JsonWriter w;
//   w.begin_object().kv("fit", 0.93).key("shape").begin_array();
//   for (auto d : shape) w.value(std::uint64_t{d});
//   w.end_array().end_object();
//   os << w.str();
//
// Non-finite doubles serialize as null (JSON has no NaN/Inf).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mdcp::obs {

/// Appends the JSON string-escape of `s` (no surrounding quotes) to `out`.
void json_escape(std::string_view s, std::string& out);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value (or container).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& null();

  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// The serialized document so far. Valid JSON once all containers are
  /// closed.
  const std::string& str() const noexcept { return out_; }
  void clear();

 private:
  void prefix_value_();

  std::string out_;
  // One frame per open container: 'o' / 'a', plus whether it has items.
  struct Frame {
    char kind;
    bool has_items;
  };
  std::vector<Frame> stack_;
  bool after_key_ = false;
};

}  // namespace mdcp::obs
