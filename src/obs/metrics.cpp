#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "obs/json.hpp"

namespace mdcp::obs {

namespace {

// lock-free add for std::atomic<double> (no fetch_add for FP pre-C++20 on
// all targets; CAS loop is the portable spelling).
void atomic_add(std::atomic<double>& a, double x) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double x) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (x < cur &&
         !a.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double x) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < x &&
         !a.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::bucket_index(double x) noexcept {
  if (!(x > 0) || !std::isfinite(x)) return x > 0 ? kBucketCount - 1 : 0;
  // log2(x) * buckets-per-octave, rebased so kMinExponent maps to bucket 0.
  const double pos =
      (std::log2(x) - kMinExponent) * static_cast<double>(kBucketsPerOctave);
  const int b = static_cast<int>(std::floor(pos));
  return std::clamp(b, 0, kBucketCount - 1);
}

double Histogram::bucket_mid(int b) noexcept {
  const double lo_exp =
      kMinExponent + static_cast<double>(b) / kBucketsPerOctave;
  // Geometric midpoint of [2^lo_exp, 2^(lo_exp + 1/4)).
  return std::exp2(lo_exp + 0.5 / kBucketsPerOctave);
}

void Histogram::record(double x) noexcept {
  if (std::isnan(x)) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, x);
  atomic_min(min_, x);
  atomic_max(max_, x);
  buckets_[static_cast<std::size_t>(bucket_index(x))].fetch_add(
      1, std::memory_order_relaxed);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based.
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBucketCount; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
    if (seen >= target && seen > 0) {
      return std::clamp(bucket_mid(b), min(), max());
    }
  }
  return max();
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<MetricsRegistry::HistogramSnapshot> MetricsRegistry::histograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.push_back({name, h->count(), h->sum(), h->min(), h->max(), h->p50(),
                   h->p95(), h->p99()});
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters()) w.kv(name, value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : gauges()) w.kv(name, value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& h : histograms()) {
    w.key(h.name).begin_object().kv("count", h.count).kv("sum", h.sum);
    // min/max are +-inf on an empty histogram; JsonWriter turns those into
    // null, which is the wanted "no samples" spelling.
    w.kv("min", h.min).kv("max", h.max).kv("p50", h.p50).kv("p95", h.p95)
        .kv("p99", h.p99);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream os(path);
  if (!os.good()) return false;
  os << to_json() << '\n';
  return os.good();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : counters_) entry.second->reset();
  for (auto& entry : gauges_) entry.second->reset();
  for (auto& entry : histograms_) entry.second->reset();
}

}  // namespace mdcp::obs
