#include "obs/metrics.hpp"

#include <fstream>

#include "obs/json.hpp"

namespace mdcp::obs {

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters()) w.kv(name, value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : gauges()) w.kv(name, value);
  w.end_object();
  w.end_object();
  return w.str();
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream os(path);
  if (!os.good()) return false;
  os << to_json() << '\n';
  return os.good();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : counters_) entry.second->reset();
  for (auto& entry : gauges_) entry.second->reset();
}

}  // namespace mdcp::obs
