// Named counters and gauges with JSON export.
//
// The registry is the library's shared scoreboard: dimension-tree memo hits
// vs. re-evaluations, engine call/flop totals, tuner predicted-vs-measured
// error, workspace peaks. Metric objects are created on first lookup and
// live for the process lifetime, so hot paths cache the reference once:
//
//   static obs::Counter& hits =
//       obs::MetricsRegistry::instance().counter("dtree.memo_hits");
//   hits.add();
//
// Counter/Gauge updates are lock-free relaxed atomics — safe from any
// thread, including inside OpenMP regions. Lookup takes a mutex (do it
// outside hot loops). reset() zeroes values but never invalidates
// references.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mdcp::obs {

/// Monotonic event count (resettable).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written / accumulated / max-tracked double value.
class Gauge {
 public:
  void set(double x) noexcept { v_.store(x, std::memory_order_relaxed); }
  void add(double x) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
    }
  }
  void record_max(double x) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (cur < x &&
           !v_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0); }

 private:
  std::atomic<double> v_{0};
};

/// Positive-value distribution with fixed log-bucketing: 4 buckets per
/// octave (bucket edges grow by 2^(1/4) ≈ 1.19, so quantile estimates carry
/// at most ~19% relative error) over ~[6e-11, 7e8]. record() is lock-free
/// relaxed atomics, safe from any thread including OpenMP regions; quantile
/// readers see a consistent-enough view for telemetry (no snapshot
/// isolation). Non-positive and non-finite values clamp into the edge
/// buckets.
class Histogram {
 public:
  static constexpr int kBucketsPerOctave = 4;
  static constexpr int kOctaves = 64;       ///< exponents [-34, 30)
  static constexpr int kMinExponent = -34;  ///< 2^-34 ≈ 5.8e-11
  static constexpr int kBucketCount = kBucketsPerOctave * kOctaves;

  void record(double x) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// +inf / -inf when empty (so min()<=max() iff non-empty).
  double min() const noexcept { return min_.load(std::memory_order_relaxed); }
  double max() const noexcept { return max_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// Approximate quantile (q in [0,1]) from the bucket counts: the geometric
  /// midpoint of the bucket holding the q-th sample, clamped to the observed
  /// min/max. Returns 0 for an empty histogram.
  double quantile(double q) const noexcept;
  double p50() const noexcept { return quantile(0.50); }
  double p95() const noexcept { return quantile(0.95); }
  double p99() const noexcept { return quantile(0.99); }

  void reset() noexcept;

  /// Bucket index for value x (exposed for tests).
  static int bucket_index(double x) noexcept;
  /// Geometric midpoint of bucket `b` (exposed for tests).
  static double bucket_mid(int b) noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Finds or creates the named metric. The returned reference is stable for
  /// the process lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Name-sorted value snapshots.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  /// Histogram summary snapshot (one per registered histogram).
  struct HistogramSnapshot {
    std::string name;
    std::uint64_t count;
    double sum, min, max, p50, p95, p99;
  };
  std::vector<HistogramSnapshot> histograms() const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}}, names sorted.
  std::string to_json() const;
  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write_json(const std::string& path) const;

  /// Zeroes every metric (references stay valid).
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mdcp::obs
