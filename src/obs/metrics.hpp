// Named counters and gauges with JSON export.
//
// The registry is the library's shared scoreboard: dimension-tree memo hits
// vs. re-evaluations, engine call/flop totals, tuner predicted-vs-measured
// error, workspace peaks. Metric objects are created on first lookup and
// live for the process lifetime, so hot paths cache the reference once:
//
//   static obs::Counter& hits =
//       obs::MetricsRegistry::instance().counter("dtree.memo_hits");
//   hits.add();
//
// Counter/Gauge updates are lock-free relaxed atomics — safe from any
// thread, including inside OpenMP regions. Lookup takes a mutex (do it
// outside hot loops). reset() zeroes values but never invalidates
// references.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mdcp::obs {

/// Monotonic event count (resettable).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written / accumulated / max-tracked double value.
class Gauge {
 public:
  void set(double x) noexcept { v_.store(x, std::memory_order_relaxed); }
  void add(double x) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
    }
  }
  void record_max(double x) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (cur < x &&
           !v_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0); }

 private:
  std::atomic<double> v_{0};
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Finds or creates the named metric. The returned reference is stable for
  /// the process lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);

  /// Name-sorted value snapshots.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;

  /// {"counters":{...},"gauges":{...}}, names sorted.
  std::string to_json() const;
  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write_json(const std::string& path) const;

  /// Zeroes every metric (references stay valid).
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

}  // namespace mdcp::obs
