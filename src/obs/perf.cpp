#include "obs/perf.hpp"

#include <cstring>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace mdcp::obs {

const char* perf_counter_name(PerfCounterId id) noexcept {
  switch (id) {
    case PerfCounterId::kCycles: return "cycles";
    case PerfCounterId::kInstructions: return "instructions";
    case PerfCounterId::kLlcLoads: return "llc_loads";
    case PerfCounterId::kLlcMisses: return "llc_misses";
    case PerfCounterId::kBranchMisses: return "branch_misses";
    case PerfCounterId::kStalledCycles: return "stalled_cycles";
    case PerfCounterId::kTaskClockNs: return "task_clock_ns";
    case PerfCounterId::kPageFaults: return "page_faults";
  }
  return "unknown";
}

PerfValues PerfValues::since(const PerfValues& begin) const noexcept {
  PerfValues d;
  d.valid_mask = valid_mask & begin.valid_mask;
  for (std::size_t i = 0; i < kPerfCounterCount; ++i) {
    if (((d.valid_mask >> i) & 1u) == 0) continue;
    // Multiplex scaling can make a later reading infinitesimally smaller;
    // clamp instead of wrapping to ~2^64.
    d.value[i] = value[i] >= begin.value[i] ? value[i] - begin.value[i] : 0;
  }
  return d;
}

void PerfAccumulator::add(const PerfValues& delta) noexcept {
  for (std::size_t i = 0; i < kPerfCounterCount; ++i) {
    if (((delta.valid_mask >> i) & 1u) == 0) continue;
    sum_[i].fetch_add(delta.value[i], std::memory_order_relaxed);
  }
  mask_.fetch_or(delta.valid_mask, std::memory_order_relaxed);
}

PerfValues PerfAccumulator::values() const noexcept {
  PerfValues v;
  v.valid_mask = mask_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kPerfCounterCount; ++i)
    v.value[i] = sum_[i].load(std::memory_order_relaxed);
  return v;
}

void PerfAccumulator::reset() noexcept {
  for (auto& s : sum_) s.store(0, std::memory_order_relaxed);
  mask_.store(0, std::memory_order_relaxed);
}

#if defined(__linux__)

namespace {

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

// Slot order == PerfCounterId order.
constexpr EventSpec kEventSpecs[kPerfCounterCount] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16)},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS},
};

int open_event(const EventSpec& spec, bool inherit, bool exclude_kernel) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = spec.type;
  attr.size = sizeof(attr);
  attr.config = spec.config;
  attr.disabled = 0;
  attr.inherit = inherit ? 1 : 0;
  attr.exclude_kernel = exclude_kernel ? 1 : 0;
  attr.exclude_hv = 1;
  // time_enabled/time_running let readers rescale multiplexed counters.
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      ::syscall(__NR_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                /*group_fd=*/-1, /*flags=*/0UL));
}

}  // namespace

PerfEventSet::PerfEventSet(bool inherit_children) {
  fds_.fill(-1);
  for (std::size_t i = 0; i < kPerfCounterCount; ++i) {
    int fd = open_event(kEventSpecs[i], inherit_children,
                        /*exclude_kernel=*/false);
    if (fd < 0) {
      // perf_event_paranoid >= 2 forbids kernel-inclusive counting for
      // unprivileged users; user-space-only counting may still be allowed.
      fd = open_event(kEventSpecs[i], inherit_children,
                      /*exclude_kernel=*/true);
    }
    if (fd >= 0) {
      fds_[i] = fd;
      open_mask_ |= static_cast<std::uint16_t>(1u << i);
    }
  }
}

PerfEventSet::~PerfEventSet() {
  for (const int fd : fds_)
    if (fd >= 0) ::close(fd);
}

PerfValues PerfEventSet::read_values() const noexcept {
  PerfValues out;
  for (std::size_t i = 0; i < kPerfCounterCount; ++i) {
    if (fds_[i] < 0) continue;
    std::uint64_t buf[3] = {0, 0, 0};  // value, time_enabled, time_running
    const ssize_t n = ::read(fds_[i], buf, sizeof(buf));
    if (n != static_cast<ssize_t>(sizeof(buf))) continue;
    std::uint64_t v = buf[0];
    if (buf[2] != 0 && buf[2] < buf[1]) {
      // Counter was multiplexed off-PMU part of the time: extrapolate.
      const double scale =
          static_cast<double>(buf[1]) / static_cast<double>(buf[2]);
      v = static_cast<std::uint64_t>(static_cast<double>(v) * scale);
    }
    out.value[i] = v;
    out.valid_mask |= static_cast<std::uint16_t>(1u << i);
  }
  return out;
}

#else  // !__linux__

PerfEventSet::PerfEventSet(bool inherit_children) {
  (void)inherit_children;
  fds_.fill(-1);
}

PerfEventSet::~PerfEventSet() = default;

PerfValues PerfEventSet::read_values() const noexcept { return {}; }

#endif  // __linux__

Perf& Perf::instance() {
  static Perf perf;
  return perf;
}

bool Perf::counters_supported() {
  static const bool supported = [] {
    const PerfEventSet probe(/*inherit_children=*/false);
    return probe.any();
  }();
  return supported;
}

void Perf::set_enabled(bool on) {
  if (on) {
    std::lock_guard<std::mutex> lock(mu_);
    if (process_set_ == nullptr && counters_supported())
      process_set_ = std::make_unique<PerfEventSet>(/*inherit_children=*/true);
  }
  enabled_.store(on, std::memory_order_relaxed);
}

PerfEventSet* Perf::process_set() noexcept {
  if (!enabled()) return nullptr;
  // process_set_ is written once under mu_ (in set_enabled) before enabled_
  // flips true, so this unlocked read is safe.
  PerfEventSet* set = process_set_.get();
  return (set != nullptr && set->any()) ? set : nullptr;
}

PerfEventSet* Perf::thread_set() {
  if (!enabled() || !counters_supported()) return nullptr;
  thread_local std::unique_ptr<PerfEventSet> set;
  if (set == nullptr)
    set = std::make_unique<PerfEventSet>(/*inherit_children=*/false);
  return set->any() ? set.get() : nullptr;
}

std::uint16_t Perf::available_mask() noexcept {
  const PerfEventSet* set = process_set();
  return set != nullptr ? set->open_mask() : 0;
}

namespace {

// One global counter per PerfCounterId; resolved lazily, cached forever.
Counter& perf_metric(std::size_t i) {
  static std::array<Counter*, kPerfCounterCount> cache{};
  static std::mutex mu;
  Counter* c = cache[i];
  if (c == nullptr) {
    std::lock_guard<std::mutex> lock(mu);
    if (cache[i] == nullptr) {
      cache[i] = &MetricsRegistry::instance().counter(
          std::string("perf.") +
          perf_counter_name(static_cast<PerfCounterId>(i)));
    }
    c = cache[i];
  }
  return *c;
}

}  // namespace

PerfRegion::PerfRegion(const char* name, const char* arg_name,
                       std::int64_t arg_value, Scope scope,
                       PerfAccumulator* sink) noexcept {
  auto& perf = Perf::instance();
  const bool counting = perf.enabled();
#if MDCP_ENABLE_TRACING
  trace_active_ = Tracer::instance().enabled();
#endif
  if (!counting && !trace_active_) return;
  std::strncpy(name_, name, sizeof(name_) - 1);
  name_[sizeof(name_) - 1] = '\0';
  arg_name_ = arg_name;
  arg_value_ = arg_value;
  if (counting) {
    set_ = scope == Scope::kProcess ? perf.process_set() : perf.thread_set();
    sink_ = sink;
    if (set_ != nullptr) begin_values_ = set_->read_values();
  }
  begin_ns_ = clock_ns();
}

PerfRegion::~PerfRegion() {
  if (set_ == nullptr && !trace_active_) return;
  const std::uint64_t end_ns = clock_ns();
  PerfValues delta;
  if (set_ != nullptr) {
    delta = set_->read_values().since(begin_values_);
    for (std::size_t i = 0; i < kPerfCounterCount; ++i) {
      if ((delta.valid_mask >> i) & 1u) perf_metric(i).add(delta.value[i]);
    }
    if (sink_ != nullptr) sink_->add(delta);
  }
  if (trace_active_) {
    TraceEvent ev{};
    // name_ is the same capacity and already NUL-terminated.
    std::memcpy(ev.name, name_, sizeof(ev.name));
    ev.ts_ns = begin_ns_;
    ev.dur_ns = end_ns - begin_ns_;
    ev.arg_name = arg_name_;
    ev.arg_value = arg_value_;
    ev.perf_mask = delta.valid_mask;
    for (std::size_t i = 0; i < kPerfCounterCount; ++i)
      ev.perf[i] = delta.value[i];
    Tracer::instance().record_event(ev);
  }
}

}  // namespace mdcp::obs
