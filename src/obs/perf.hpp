// Hardware performance counters via perf_event_open, with graceful decay.
//
// The paper argues from a *cost model* (flops and bytes); this module
// supplies the measured side: cycles, instructions, LLC traffic, branch
// misses, stalls, plus two software events (task clock, page faults) that
// survive on PMU-less VMs. Everything degrades per counter: each event is
// opened individually, whatever the kernel refuses (perf_event_paranoid,
// missing PMU, non-Linux build) is simply absent from the validity mask, and
// the run continues with those counters reported as unavailable/null.
//
// Layers:
//   * PerfEventSet  — RAII fd bundle for one measuring scope. Opened with
//     inherit=1 it also aggregates threads spawned *after* it (open it
//     before the OpenMP pool comes up to capture worker threads).
//   * Perf          — process-wide switchboard: runtime on/off, a lazily
//     opened inherited "process set", and thread-local non-inherited sets
//     for per-thread aggregation inside OpenMP regions.
//   * PerfRegion    — RAII scope. At destruction the counter deltas are
//     (a) attached to a trace span (Chrome "args", visible in Perfetto),
//     (b) accumulated into the metrics registry (`perf.<counter>`), and
//     (c) optionally added to a caller-supplied PerfAccumulator.
//
// Cost: one relaxed atomic load per region when perf is disabled (the
// default); when enabled, one read() syscall per open counter at region
// entry and exit. Multiplexed counters are scaled by time_enabled /
// time_running, so deltas stay comparable when the PMU is oversubscribed.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "obs/trace.hpp"

namespace mdcp::obs {

/// Fixed counter vocabulary. Order is the slot order in TraceEvent::perf
/// and in every mask in this module.
enum class PerfCounterId : std::uint8_t {
  kCycles = 0,
  kInstructions,
  kLlcLoads,
  kLlcMisses,
  kBranchMisses,
  kStalledCycles,
  kTaskClockNs,
  kPageFaults,
};

inline constexpr std::size_t kPerfCounterCount = 8;
static_assert(kPerfCounterCount <= TraceEvent::kPerfSlots,
              "TraceEvent::kPerfSlots must cover every PerfCounterId");

/// Stable short name ("cycles", "llc_misses", ...), used in JSON exports
/// and Chrome trace args.
const char* perf_counter_name(PerfCounterId id) noexcept;

/// One snapshot or delta of the counter vector. A slot is meaningful iff
/// its bit is set in `valid_mask`.
struct PerfValues {
  std::array<std::uint64_t, kPerfCounterCount> value{};
  std::uint16_t valid_mask = 0;

  bool valid(PerfCounterId id) const noexcept {
    return ((valid_mask >> static_cast<unsigned>(id)) & 1u) != 0;
  }
  std::uint64_t get(PerfCounterId id, std::uint64_t def = 0) const noexcept {
    return valid(id) ? value[static_cast<std::size_t>(id)] : def;
  }
  bool any() const noexcept { return valid_mask != 0; }

  /// Field-wise difference (this - begin) over the common valid mask.
  PerfValues since(const PerfValues& begin) const noexcept;
};

/// Thread-safe delta accumulator for per-thread aggregation: every OpenMP
/// worker can add its own PerfRegion deltas concurrently.
class PerfAccumulator {
 public:
  void add(const PerfValues& delta) noexcept;
  PerfValues values() const noexcept;
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kPerfCounterCount> sum_{};
  std::atomic<std::uint16_t> mask_{0};
};

/// RAII bundle of perf_event fds for the opening thread. Each counter is
/// opened independently; ask open_mask() what actually materialized.
class PerfEventSet {
 public:
  /// `inherit_children`: also count threads created by the opening thread
  /// *after* construction (used for the process-scope set).
  explicit PerfEventSet(bool inherit_children);
  ~PerfEventSet();
  PerfEventSet(const PerfEventSet&) = delete;
  PerfEventSet& operator=(const PerfEventSet&) = delete;

  /// Bit i set = counter i was opened successfully.
  std::uint16_t open_mask() const noexcept { return open_mask_; }
  bool any() const noexcept { return open_mask_ != 0; }

  /// Reads every open counter (scaled for multiplexing). Slots that fail to
  /// read are dropped from the result's valid mask.
  PerfValues read_values() const noexcept;

 private:
  std::array<int, kPerfCounterCount> fds_;
  std::uint16_t open_mask_ = 0;
};

/// Process-wide perf switchboard.
class Perf {
 public:
  static Perf& instance();

  /// True when at least one counter can be opened on this system. Probed
  /// once per process; never throws.
  static bool counters_supported();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Enables/disables region recording. Enabling opens the process set from
  /// the calling thread — call it early (before the OpenMP pool spins up)
  /// so worker threads are inherited into the aggregate counts.
  void set_enabled(bool on);

  /// The inherited, process-scope set (nullptr when disabled or when no
  /// counter could be opened).
  PerfEventSet* process_set() noexcept;

  /// The calling thread's non-inherited set for Scope::kThread regions
  /// (nullptr when disabled or unavailable). Lazily opened per thread.
  PerfEventSet* thread_set();

  /// open_mask() of the process set; 0 when disabled/unavailable.
  std::uint16_t available_mask() noexcept;

 private:
  Perf() = default;

  std::atomic<bool> enabled_{false};
  std::mutex mu_;  // guards process_set_ creation
  std::unique_ptr<PerfEventSet> process_set_;
};

/// RAII measuring scope; see file comment for where the deltas land. The
/// span side obeys the tracer exactly like MDCP_TRACE_SPAN (and is compiled
/// out with MDCP_ENABLE_TRACING=0); the counter side obeys Perf::enabled().
class PerfRegion {
 public:
  enum class Scope : std::uint8_t {
    kProcess,  ///< inherited process set: all threads, read from anywhere
    kThread,   ///< the calling thread's own set (OpenMP per-thread use)
  };

  explicit PerfRegion(const char* name, const char* arg_name = nullptr,
                      std::int64_t arg_value = 0,
                      Scope scope = Scope::kProcess,
                      PerfAccumulator* sink = nullptr) noexcept;
  ~PerfRegion();
  PerfRegion(const PerfRegion&) = delete;
  PerfRegion& operator=(const PerfRegion&) = delete;

 private:
  char name_[TraceEvent::kNameCapacity];
  const char* arg_name_ = nullptr;
  std::int64_t arg_value_ = 0;
  std::uint64_t begin_ns_ = 0;
  PerfValues begin_values_;
  const PerfEventSet* set_ = nullptr;  // non-null only when counting
  PerfAccumulator* sink_ = nullptr;
  bool trace_active_ = false;
};

}  // namespace mdcp::obs
