#include "obs/report.hpp"

#include <cstdio>
#include <cstring>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "obs/json.hpp"
#include "obs/trace.hpp"  // MDCP_ENABLE_TRACING

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mdcp::obs {

const BuildInfo& BuildInfo::current() {
  static const BuildInfo info = [] {
    BuildInfo b;
#if defined(__clang__)
    b.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    b.compiler = std::string("gcc ") + __VERSION__;
#else
    b.compiler = "unknown";
#endif
#ifdef MDCP_BUILD_FLAGS
    b.flags = MDCP_BUILD_FLAGS;
#endif
#ifdef MDCP_BUILD_TYPE
    b.build_type = MDCP_BUILD_TYPE;
#endif
#ifdef _OPENMP
    b.openmp = true;
    b.openmp_version = _OPENMP;
#endif
    b.tracing = MDCP_ENABLE_TRACING != 0;
    b.hardware_threads = std::thread::hardware_concurrency();
    b.host = "unknown-host";
#if defined(__unix__) || defined(__APPLE__)
    char host_buf[256] = {0};
    if (::gethostname(host_buf, sizeof(host_buf) - 1) == 0 &&
        host_buf[0] != '\0')
      b.host = host_buf;
#endif
    return b;
  }();
  return info;
}

std::uint64_t tensor_fingerprint(const CooTensor& tensor) {
  // FNV-1a, 64-bit.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  };
  mix(tensor.order());
  for (mode_t m = 0; m < tensor.order(); ++m) mix(tensor.dim(m));
  mix(tensor.nnz());
  for (mode_t m = 0; m < tensor.order(); ++m) {
    for (const index_t idx : tensor.mode_indices(m)) mix(idx);
  }
  for (const real_t v : tensor.values()) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(real_t));
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
  return h;
}

RunReporter::RunReporter(const std::string& path)
    : path_(path), tmp_path_(path + ".tmp"), os_(tmp_path_) {}

RunReporter::~RunReporter() { close(); }

bool RunReporter::close() {
  if (closed_) return true;
  closed_ = true;
  if (!os_.is_open()) return false;
  os_.flush();
  const bool good = os_.good();
  os_.close();
  if (!good) {
    std::remove(tmp_path_.c_str());  // never promote a bad partial file
    return false;
  }
  return std::rename(tmp_path_.c_str(), path_.c_str()) == 0;
}

void RunReporter::write_line(const std::string& json) {
  if (closed_ || !os_.good()) return;
  os_ << json << '\n';
  os_.flush();
}

void RunReporter::write_header(const CooTensor& tensor,
                               const std::string& command,
                               int kernel_threads) {
  const BuildInfo& b = BuildInfo::current();
  JsonWriter w;
  w.begin_object()
      .kv("type", "header")
      .kv("schema", kReportSchema)
      .kv("report_version", kReportVersion)
      .kv("command", command)
      .kv("host", b.host)
      .kv("compiler", b.compiler)
      .kv("flags", b.flags)
      .kv("build_type", b.build_type)
      .kv("openmp", b.openmp)
      .kv("openmp_version", b.openmp_version)
      .kv("tracing_compiled", b.tracing)
      .kv("hardware_threads", b.hardware_threads)
      .kv("kernel_threads", kernel_threads)
      .kv("order", static_cast<std::uint64_t>(tensor.order()));
  w.key("shape").begin_array();
  for (mode_t m = 0; m < tensor.order(); ++m)
    w.value(static_cast<std::uint64_t>(tensor.dim(m)));
  w.end_array();
  w.kv("nnz", tensor.nnz());
  char fp[32];
  std::snprintf(fp, sizeof(fp), "0x%016llx",
                static_cast<unsigned long long>(tensor_fingerprint(tensor)));
  w.kv("fingerprint", fp).end_object();
  write_line(w.str());
}

}  // namespace mdcp::obs
