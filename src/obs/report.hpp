// Machine-readable run reporting (JSONL) with build provenance.
//
// A run report is a stream of newline-delimited JSON records:
//
//   {"type":"header", ...}      build + dataset provenance (who/what/where)
//   {"type":"iteration", ...}   one record per CP-ALS iteration (written by
//                               cp_als when CpAlsOptions::reporter is set)
//   {"type":"summary", ...}     end-of-run totals, tuner prediction error,
//                               per-thread workspace peaks
//
// Every record carries "schema":"mdcp-run-report/1" so downstream tooling
// can detect format drift. The header pins the run to a reproducible state:
// compiler + flags + build type, OpenMP and tracing configuration, thread
// counts, and the dataset's shape/nnz plus a content fingerprint.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "tensor/coo_tensor.hpp"

namespace mdcp::obs {

/// Schema tag stamped on every report record.
inline constexpr const char* kReportSchema = "mdcp-run-report/1";

/// Report format version, stamped into the provenance header as
/// "report_version". Bump when the record layout changes in a way consumers
/// (the history store) must know about; the history ingester skips files
/// newer than the version it was built with. Version 1 = pre-versioned
/// reports (no report_version / host / rank / plan_source fields).
inline constexpr int kReportVersion = 2;

/// Compile-time / process-wide provenance, resolved once.
struct BuildInfo {
  std::string compiler;    ///< e.g. "gcc 13.2.0"
  std::string flags;       ///< CMAKE_CXX_FLAGS + build-type flags
  std::string build_type;  ///< e.g. "Release"
  bool openmp = false;
  int openmp_version = 0;  ///< _OPENMP date macro, 0 without OpenMP
  bool tracing = false;    ///< MDCP_ENABLE_TRACING compiled in
  unsigned hardware_threads = 0;
  std::string host;        ///< gethostname() ("unknown-host" if unavailable)

  static const BuildInfo& current();
};

/// FNV-1a content hash over shape, coordinates, and values. Stable across
/// runs for identical tensors; used to pin a report to its dataset.
std::uint64_t tensor_fingerprint(const CooTensor& tensor);

/// Writes JSONL records crash-safely: all lines go to `<path>.tmp` (flushed
/// per line) and the file is atomically renamed to `path` on close(). A run
/// killed mid-write therefore never leaves a truncated report at `path` to
/// poison the history store — only a `.tmp` leftover, which ingestion
/// ignores. The destructor closes implicitly; call close() explicitly to
/// check for rename failure.
class RunReporter {
 public:
  explicit RunReporter(const std::string& path);
  ~RunReporter();
  RunReporter(const RunReporter&) = delete;
  RunReporter& operator=(const RunReporter&) = delete;

  /// False if the output file could not be opened.
  bool ok() const noexcept { return os_.good(); }

  /// Writes one pre-serialized JSON object as a line.
  void write_line(const std::string& json);

  /// Writes the provenance header: BuildInfo + `command` + dataset identity.
  void write_header(const CooTensor& tensor, const std::string& command,
                    int kernel_threads);

  /// Finishes the report: flushes and renames `<path>.tmp` → `path`. False
  /// if the stream went bad or the rename failed. Idempotent.
  bool close();

  /// The final (post-rename) report path.
  const std::string& path() const noexcept { return path_; }

  /// The in-flight `<path>.tmp` the lines are streamed to before close().
  /// Exposed so crash forensics (obs/watchdog.hpp) can pre-open it and
  /// promote it with an `aborted` summary if the process dies mid-run.
  const std::string& tmp_path() const noexcept { return tmp_path_; }

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream os_;
  bool closed_ = false;
};

}  // namespace mdcp::obs
