#include "obs/roofline.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <vector>

#include "obs/clock.hpp"
#include "util/parallel.hpp"

namespace mdcp::obs {

namespace {

// 16 independent multiply-add chains: enough instruction-level parallelism
// to saturate the FPU pipes whether the compiler emits scalar, SSE2, or
// (with -march flags) FMA code. Returns flops performed; writes the
// accumulator sum through `sink` so the loop cannot be dead-code-eliminated.
std::uint64_t fma_burst(std::uint64_t iters, double* sink) {
  constexpr int kChains = 16;
  double acc[kChains];
  for (int c = 0; c < kChains; ++c)
    acc[c] = 1.0 + 1e-9 * static_cast<double>(c);
  const double mul = 1.0 + 1e-12;
  const double add = 1e-12;
  for (std::uint64_t i = 0; i < iters; ++i) {
    for (int c = 0; c < kChains; ++c) acc[c] = acc[c] * mul + add;
  }
  double total = 0;
  for (int c = 0; c < kChains; ++c) total += acc[c];
  *sink = total;
  return iters * kChains * 2;  // one multiply + one add per chain-iteration
}

double measure_fma_gflops(double seconds_budget) {
  const int threads = std::max(num_threads(), 1);
  std::vector<double> sinks(static_cast<std::size_t>(threads) * 64, 0);
  // Warm-up sizing burst: find an iteration count worth ~1/8 of the budget,
  // then run repetitions and keep the best rate.
  std::uint64_t iters = 1 << 16;
  double best = 0;
  const std::uint64_t deadline =
      clock_ns() + static_cast<std::uint64_t>(seconds_budget * 1e9);
  // Loop until a non-zero rate lands (guaranteed progress even if a loaded
  // machine pushes a single pass past the deadline), then until the budget
  // runs out.
  while (best == 0.0 || clock_ns() < deadline) {
    std::atomic<std::uint64_t> flops{0};
    const std::uint64_t t0 = clock_ns();
    parallel_for_chunked(static_cast<nnz_t>(threads),
                         [&](int tid, Range range) {
                           std::uint64_t local = 0;
                           for (nnz_t r = range.begin; r < range.end; ++r)
                             local += fma_burst(
                                 iters,
                                 &sinks[static_cast<std::size_t>(tid) * 64]);
                           flops.fetch_add(local,
                                           std::memory_order_relaxed);
                         });
    const double secs = ns_to_seconds(t0, clock_ns());
    if (secs > 0) {
      best = std::max(best,
                      static_cast<double>(flops.load()) / secs * 1e-9);
    }
    // Grow the burst until one repetition is long enough to time reliably.
    if (secs < seconds_budget / 8) iters *= 2;
  }
  return best;
}

double measure_triad_gbps(double seconds_budget) {
  // 3 x 16 MiB: far beyond any LLC this library targets, so the passes
  // stream from DRAM.
  constexpr std::size_t kElems = 2u << 20;
  std::vector<double> a(kElems, 0.0), b(kElems, 1.0), c(kElems, 2.0);
  const double scalar = 3.0;
  double best = 0;
  const std::uint64_t deadline =
      clock_ns() + static_cast<std::uint64_t>(seconds_budget * 1e9);
  // First pass doubles as the page-faulting warm-up; never counts.
  bool warmed = false;
  do {
    const std::uint64_t t0 = clock_ns();
    parallel_for_chunked(static_cast<nnz_t>(kElems), [&](int, Range range) {
      for (nnz_t i = range.begin; i < range.end; ++i)
        a[i] = b[i] + scalar * c[i];
    });
    const double secs = ns_to_seconds(t0, clock_ns());
    // STREAM accounting: 2 reads + 1 write per element.
    const double bytes = 3.0 * sizeof(double) * static_cast<double>(kElems);
    if (warmed && secs > 0) best = std::max(best, bytes / secs * 1e-9);
    warmed = true;
    // A loaded machine can burn the whole budget on the warm-up pass;
    // always take at least one measured pass so the ceiling is never 0.
  } while (best == 0.0 || clock_ns() < deadline);
  return best;
}

}  // namespace

RooflineCeilings calibrate_roofline(double seconds_budget) {
  if (seconds_budget <= 0) seconds_budget = 0.3;
  RooflineCeilings ceilings;
  ceilings.threads = std::max(num_threads(), 1);
  const std::uint64_t t0 = clock_ns();
  ceilings.fma_gflops = measure_fma_gflops(seconds_budget / 2);
  ceilings.triad_gbps = measure_triad_gbps(seconds_budget / 2);
  ceilings.calibration_seconds = ns_to_seconds(t0, clock_ns());
  return ceilings;
}

RooflineAttribution attribute_roofline(const RooflineSample& sample,
                                       const RooflineCeilings& ceilings) {
  RooflineAttribution a;
  if (sample.seconds > 0) a.gflops = sample.flops / sample.seconds * 1e-9;
  if (ceilings.fma_gflops > 0)
    a.pct_compute = 100.0 * a.gflops / ceilings.fma_gflops;
  if (sample.bytes >= 0) {
    a.has_bytes = true;
    if (sample.seconds > 0) a.gbps = sample.bytes / sample.seconds * 1e-9;
    if (ceilings.triad_gbps > 0)
      a.pct_bandwidth = 100.0 * a.gbps / ceilings.triad_gbps;
    a.intensity = sample.bytes > 0 ? sample.flops / sample.bytes : 0;
    a.memory_bound = a.intensity < ceilings.ridge_intensity();
  }
  return a;
}

}  // namespace mdcp::obs
