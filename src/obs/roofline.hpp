// Roofline ceilings and per-kernel attribution.
//
// Two tiny calibration kernels establish what *this build on this machine*
// can do: a register-parallel multiply-add loop for the compute ceiling and
// a STREAM-style triad for the memory-bandwidth ceiling. Both are compiled
// with the library's own flags, so the ceilings are the honest upper bounds
// for mdcp kernels (not the datasheet peak of the chip).
//
// Attribution combines a kernel's measured seconds, its model/metric flop
// count, and perf-counter-derived bytes (LLC misses x cache line) into
// achieved GFLOP/s, arithmetic intensity, and %-of-ceiling — the roofline
// coordinates that say *why* an engine is slow (memory-bound vs
// compute-bound). Bytes are optional: without LLC counters the bandwidth
// side is reported as unknown rather than guessed.
#pragma once

#include <cstdint>

namespace mdcp::obs {

/// Bytes moved per LLC miss (one cache line on every supported target).
inline constexpr double kCacheLineBytes = 64.0;

/// Machine ceilings measured by calibrate_roofline().
struct RooflineCeilings {
  double fma_gflops = 0;   ///< compute ceiling (multiply-add loop)
  double triad_gbps = 0;   ///< bandwidth ceiling (STREAM triad), GB/s
  int threads = 0;         ///< thread count the calibration ran with
  double calibration_seconds = 0;  ///< wall time spent calibrating

  /// Machine balance: flops per byte at the roofline ridge point.
  double ridge_intensity() const noexcept {
    return triad_gbps > 0 ? fma_gflops / triad_gbps : 0;
  }
};

/// Measures both ceilings with the library's current thread setting.
/// `seconds_budget` bounds the total calibration wall time (split between
/// the two kernels; the best repetition wins, so a short budget only costs
/// precision, not correctness).
RooflineCeilings calibrate_roofline(double seconds_budget = 0.3);

/// One measured kernel execution.
struct RooflineSample {
  double seconds = 0;
  double flops = 0;
  double bytes = -1;  ///< < 0 = unknown (LLC counters unavailable)
};

/// Roofline coordinates for one sample against the machine ceilings.
struct RooflineAttribution {
  double gflops = 0;          ///< achieved compute rate
  double pct_compute = 0;     ///< gflops / ceiling, in percent
  bool has_bytes = false;     ///< bandwidth-side fields below are valid
  double gbps = 0;            ///< achieved memory traffic rate
  double pct_bandwidth = 0;   ///< gbps / ceiling, in percent
  double intensity = 0;       ///< flops / byte
  bool memory_bound = false;  ///< intensity below the ridge point
};

RooflineAttribution attribute_roofline(const RooflineSample& sample,
                                       const RooflineCeilings& ceilings);

}  // namespace mdcp::obs
