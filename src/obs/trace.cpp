#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <limits>

#include "obs/json.hpp"
#include "obs/perf.hpp"
#include "util/parallel.hpp"

namespace mdcp::obs {

TraceRing::TraceRing(std::size_t capacity, std::uint32_t tid)
    : ring_(std::max<std::size_t>(capacity, 1)), tid_(tid) {}

std::vector<TraceEvent> TraceRing::events() const {
  std::vector<TraceEvent> out;
  const std::uint64_t n = kept();
  out.reserve(static_cast<std::size_t>(n));
  // Oldest retained event sits at pushed_ - n (mod capacity).
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(
        ring_[static_cast<std::size_t>((pushed_ - n + i) % ring_.size())]);
  }
  return out;
}

void TraceRing::set_capacity(std::size_t capacity) {
  ring_.assign(std::max<std::size_t>(capacity, 1), TraceEvent{});
  pushed_ = 0;
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

TraceRing& Tracer::local_ring_() {
  thread_local TraceRing* ring = nullptr;
  if (ring == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    rings_.push_back(std::make_unique<TraceRing>(
        ring_capacity_, static_cast<std::uint32_t>(rings_.size())));
    ring = rings_.back().get();
    // Default track label: the first thread to record is almost always the
    // driver; OpenMP workers are labelled by their team index so Perfetto
    // shows "omp-3" instead of a bare thread id.
    if (ring->tid() == 0) {
      ring->set_name("main");
    } else if (team_size() > 1) {
      ring->set_name("omp-" + std::to_string(thread_id()));
    }
  }
  return *ring;
}

void Tracer::record(const char* name, std::uint64_t ts_ns,
                    std::uint64_t dur_ns, const char* arg_name,
                    std::int64_t arg_value) noexcept {
  TraceEvent ev{};
  std::strncpy(ev.name, name, sizeof(ev.name) - 1);
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.arg_name = arg_name;
  ev.arg_value = arg_value;
  record_event(ev);
}

void Tracer::record_event(TraceEvent& ev) noexcept {
  TraceRing& ring = local_ring_();
  ev.tid = ring.tid();
  ring.push(ev);
}

void Tracer::set_process_name(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  process_name_ = std::move(name);
}

std::string Tracer::process_name() const {
  std::lock_guard<std::mutex> lock(mu_);
  return process_name_;
}

void Tracer::set_current_thread_name(std::string name) {
  local_ring_().set_name(std::move(name));
}

void Tracer::set_ring_capacity(std::size_t events_per_thread) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = std::max<std::size_t>(events_per_thread, 1);
  for (auto& ring : rings_) ring->set_capacity(ring_capacity_);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& ring : rings_) ring->clear();
}

std::uint64_t Tracer::retained_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& ring : rings_) n += ring->kept();
  return n;
}

std::uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& ring : rings_) n += ring->dropped();
  return n;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  for (const auto& ring : rings_) {
    auto evs = ring->events();
    out.insert(out.end(), evs.begin(), evs.end());
  }
  return out;
}

std::string Tracer::to_chrome_json() const {
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;
  std::vector<std::string> thread_names;
  std::string process_name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    process_name = process_name_;
    for (const auto& ring : rings_) {
      dropped += ring->dropped();
      thread_names.push_back(ring->name());
      auto evs = ring->events();
      events.insert(events.end(), evs.begin(), evs.end());
    }
  }
  // Rebase to the earliest event so Perfetto's timeline starts near zero.
  std::uint64_t base = std::numeric_limits<std::uint64_t>::max();
  for (const auto& ev : events) base = std::min(base, ev.ts_ns);
  if (events.empty()) base = 0;

  JsonWriter w;
  w.begin_object().key("traceEvents").begin_array();
  w.begin_object()
      .kv("ph", "M")
      .kv("name", "process_name")
      .kv("pid", 1)
      .kv("tid", 0)
      .key("args")
      .begin_object()
      .kv("name", process_name)
      .end_object()
      .end_object();
  for (std::size_t t = 0; t < thread_names.size(); ++t) {
    w.begin_object()
        .kv("ph", "M")
        .kv("name", "thread_name")
        .kv("pid", 1)
        .kv("tid", static_cast<std::uint64_t>(t))
        .key("args")
        .begin_object()
        .kv("name", thread_names[t].empty()
                        ? "mdcp-thread-" + std::to_string(t)
                        : thread_names[t])
        .end_object()
        .end_object();
  }
  for (const auto& ev : events) {
    w.begin_object()
        .kv("name", std::string_view(ev.name))
        .kv("cat", "mdcp")
        .kv("ph", "X")
        .kv("ts", static_cast<double>(ev.ts_ns - base) * 1e-3)   // microseconds
        .kv("dur", static_cast<double>(ev.dur_ns) * 1e-3)
        .kv("pid", 1)
        .kv("tid", static_cast<std::uint64_t>(ev.tid));
    if (ev.arg_name != nullptr || ev.perf_mask != 0) {
      w.key("args").begin_object();
      if (ev.arg_name != nullptr) w.kv(ev.arg_name, ev.arg_value);
      for (std::size_t i = 0; i < TraceEvent::kPerfSlots; ++i) {
        if ((ev.perf_mask >> i) & 1u)
          w.kv(perf_counter_name(static_cast<PerfCounterId>(i)), ev.perf[i]);
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.key("otherData")
      .begin_object()
      .kv("dropped_events", dropped)
      .kv("clock", "steady_ns")
      .end_object();
  w.kv("displayTimeUnit", "ms").end_object();
  return w.str();
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream os(path);
  if (!os.good()) return false;
  os << to_chrome_json() << '\n';
  return os.good();
}

}  // namespace mdcp::obs
