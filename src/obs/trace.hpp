// Low-overhead span tracer with Chrome trace-event JSON export.
//
// Instrumentation sites wrap a scope in MDCP_TRACE_SPAN("name") (optionally
// with one integer argument: MDCP_TRACE_SPAN("cpals.mode", "mode", n)). Each
// completed span is pushed into a fixed-capacity *thread-local ring buffer*
// — no locks, no allocation on the hot path; when a ring overflows, the
// oldest events are overwritten (the newest survive) and the drop is
// counted. Tracer::write_chrome_json() serializes every thread's ring as
// Chrome trace-event JSON, loadable in Perfetto (https://ui.perfetto.dev)
// or chrome://tracing.
//
// Cost model:
//   * MDCP_ENABLE_TRACING=0 (CMake option OFF): the macro expands to
//     nothing — zero code, zero data, zero argument evaluation.
//   * compiled in but disabled (the default at runtime): one relaxed
//     atomic load per span site.
//   * enabled: two clock reads plus one bounded memcpy into the ring.
//
// Mutating calls (set_enabled, set_ring_capacity, clear) and exports must
// run outside traced parallel regions: ring pushes are single-writer
// (thread-local) and intentionally unsynchronized with the exporter.
#pragma once

#ifndef MDCP_ENABLE_TRACING
#define MDCP_ENABLE_TRACING 1
#endif

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.hpp"

namespace mdcp::obs {

/// One completed span. POD so ring storage is a flat array.
///
/// Spans recorded through a PerfRegion additionally carry hardware-counter
/// deltas: `perf[i]` is valid iff bit i of `perf_mask` is set (slot order is
/// obs::PerfCounterId). They are exported into the Chrome trace "args"
/// object, so Perfetto shows cycles/misses per span.
struct TraceEvent {
  static constexpr std::size_t kNameCapacity = 48;
  /// Must cover obs::kPerfCounterCount (static_assert in perf.hpp).
  static constexpr std::size_t kPerfSlots = 8;

  char name[kNameCapacity];     ///< NUL-terminated, truncated if longer
  std::uint64_t ts_ns;          ///< begin timestamp (obs::clock_ns)
  std::uint64_t dur_ns;         ///< duration
  std::uint32_t tid;            ///< tracer-assigned thread index
  const char* arg_name;         ///< static-storage literal or nullptr
  std::int64_t arg_value;
  std::uint64_t perf[kPerfSlots];  ///< counter deltas (see perf_mask)
  std::uint16_t perf_mask;         ///< bit i set = perf[i] is valid
};

/// Fixed-capacity single-writer ring of TraceEvents. Overflow overwrites the
/// oldest entry and bumps the drop count (`pushed() - kept()`).
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity, std::uint32_t tid);

  void push(const TraceEvent& ev) noexcept {
    ring_[static_cast<std::size_t>(pushed_ % ring_.size())] = ev;
    ++pushed_;
  }

  std::uint64_t pushed() const noexcept { return pushed_; }
  std::uint64_t kept() const noexcept {
    return pushed_ < ring_.size() ? pushed_ : ring_.size();
  }
  std::uint64_t dropped() const noexcept { return pushed_ - kept(); }
  std::uint32_t tid() const noexcept { return tid_; }

  /// Human-readable name exported as Chrome thread_name metadata (empty =
  /// the tracer's default "mdcp-thread-N" label).
  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Oldest-first copy of the retained events.
  std::vector<TraceEvent> events() const;

  void clear() noexcept { pushed_ = 0; }
  void set_capacity(std::size_t capacity);

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t pushed_ = 0;
  std::uint32_t tid_ = 0;
  std::string name_;
};

/// Process-wide tracer: owns one TraceRing per thread that ever recorded a
/// span, plus the runtime on/off switch.
class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1 << 14;  // per thread

  static Tracer& instance();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Resizes every existing ring and sets the capacity for rings created
  /// later. Call while disabled; retained events are discarded.
  void set_ring_capacity(std::size_t events_per_thread);

  /// Discards all retained events and drop counts (rings stay allocated).
  void clear();

  /// Events currently retained / total dropped, summed over all rings.
  std::uint64_t retained_events() const;
  std::uint64_t dropped_events() const;

  /// All retained events (per-ring oldest-first order, rings concatenated).
  std::vector<TraceEvent> snapshot() const;

  /// Chrome trace-event JSON of the current contents. Timestamps are
  /// rebased to the earliest retained event.
  std::string to_chrome_json() const;

  /// Writes to_chrome_json() to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

  /// Records one completed span into the calling thread's ring.
  void record(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns,
              const char* arg_name, std::int64_t arg_value) noexcept;

  /// Records a fully-populated event (perf payload included) into the
  /// calling thread's ring; `ev.tid` is overwritten with the ring's id.
  void record_event(TraceEvent& ev) noexcept;

  /// Names the process track in the Chrome export (default "mdcp"). Call
  /// from application startup, outside traced parallel regions.
  void set_process_name(std::string name);
  std::string process_name() const;

  /// Names the calling thread's track in the Chrome export (e.g. "main",
  /// "omp-3"). Creates the thread's ring if it does not exist yet.
  void set_current_thread_name(std::string name);

 private:
  Tracer() = default;
  TraceRing& local_ring_();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards rings_ + process_name_
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::size_t ring_capacity_ = kDefaultRingCapacity;
  std::string process_name_ = "mdcp";
};

/// RAII span: captures the begin timestamp at construction (if the tracer is
/// enabled) and records the completed event at scope exit. The name is
/// copied, so temporaries are fine; `arg_name` must be a string literal (it
/// is stored by pointer).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* arg_name = nullptr,
                     std::int64_t arg_value = 0) noexcept {
    if (!Tracer::instance().enabled()) return;
    active_ = true;
    std::strncpy(name_, name, sizeof(name_) - 1);
    name_[sizeof(name_) - 1] = '\0';
    arg_name_ = arg_name;
    arg_value_ = arg_value;
    begin_ns_ = clock_ns();
  }
  explicit TraceSpan(const std::string& name, const char* arg_name = nullptr,
                     std::int64_t arg_value = 0) noexcept
      : TraceSpan(name.c_str(), arg_name, arg_value) {}

  ~TraceSpan() {
    if (!active_) return;
    const std::uint64_t end = clock_ns();
    Tracer::instance().record(name_, begin_ns_, end - begin_ns_, arg_name_,
                              arg_value_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  char name_[TraceEvent::kNameCapacity];
  const char* arg_name_ = nullptr;
  std::int64_t arg_value_ = 0;
  std::uint64_t begin_ns_ = 0;
  bool active_ = false;
};

}  // namespace mdcp::obs

#if MDCP_ENABLE_TRACING
#define MDCP_TRACE_CONCAT_IMPL_(a, b) a##b
#define MDCP_TRACE_CONCAT_(a, b) MDCP_TRACE_CONCAT_IMPL_(a, b)
/// Traces the enclosing scope. Args: name [, arg_name, integer arg_value].
#define MDCP_TRACE_SPAN(...)                                       \
  ::mdcp::obs::TraceSpan MDCP_TRACE_CONCAT_(mdcp_trace_span_,      \
                                            __LINE__) {            \
    __VA_ARGS__                                                    \
  }
#else
#define MDCP_TRACE_SPAN(...) \
  do {                       \
  } while (false)
#endif
