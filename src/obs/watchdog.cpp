#include "obs/watchdog.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "obs/clock.hpp"
#include "obs/flightrec.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace mdcp::obs {

namespace {

// ---------------------------------------------------------------------------
// Crash-handler globals. Everything the signal handler touches lives here,
// is constant-initialized (no dynamic-init ordering), and is written only
// from normal context (install/attach) — the handler only reads it, plus the
// one-shot flags. No heap pointers: the handler path must never free or
// allocate.
// ---------------------------------------------------------------------------

constexpr int kCrashSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGABRT};
constexpr int kCrashSignalCount = 4;
constexpr std::size_t kMaxCrashCounters = 128;
constexpr std::size_t kCounterNameCap = 96;

struct CrashGlobals {
  std::atomic<bool> installed{false};
  std::atomic<bool> dumped{false};      ///< some path already wrote a dump
  std::atomic<int> in_handler{0};       ///< re-entrancy / multi-signal guard
  std::atomic<int> dump_fd{-1};         ///< pre-opened crash-dump file
  char dump_path[512] = {};
  struct sigaction old_actions[kCrashSignalCount] = {};

  // Pre-formatted provenance fragment (no leading/trailing comma/braces),
  // e.g. `"host":"ci-3","compiler":"gcc 13.2.0","build_type":"Release"`.
  std::atomic<bool> provenance_ready{false};
  char provenance[768] = {};

  // In-flight run report to finalize on crash.
  std::atomic<int> report_fd{-1};  ///< O_APPEND fd onto the `.tmp` file
  char report_tmp[512] = {};
  char report_final[512] = {};
  char aborted_line[1024] = {};
  std::size_t aborted_line_len = 0;

  // Counter snapshot taken in normal context so the handler can report
  // metric values without the registry mutex. Counter references are stable
  // for the process lifetime (metrics.hpp contract).
  std::atomic<int> counter_count{0};
  struct NamedCounter {
    char name[kCounterNameCap];
    const Counter* counter;
  } counters[kMaxCrashCounters] = {};

  std::atomic<const KernelStats*> kernel_stats{nullptr};
};

CrashGlobals g_crash;

void copy_str(char* dst, std::size_t cap, const std::string& src) noexcept {
  const std::size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

/// Builds the provenance fragment once (normal context: allocates freely,
/// then memcpys into the static buffer the handler reads).
void ensure_provenance() {
  if (g_crash.provenance_ready.load(std::memory_order_acquire)) return;
  const BuildInfo& info = BuildInfo::current();
  std::string frag = "\"host\":\"";
  json_escape(info.host, frag);
  frag += "\",\"compiler\":\"";
  json_escape(info.compiler, frag);
  frag += "\",\"build_type\":\"";
  json_escape(info.build_type, frag);
  frag += "\",\"threads\":" + std::to_string(info.hardware_threads);
  copy_str(g_crash.provenance, sizeof(g_crash.provenance), frag);
  g_crash.provenance_ready.store(true, std::memory_order_release);
}

/// Re-snapshots counter names + addresses (normal context: takes the
/// registry mutex via counter()).
void refresh_counter_snapshot() {
  MetricsRegistry& reg = MetricsRegistry::instance();
  const auto named = reg.counters();
  int n = 0;
  for (const auto& [name, value] : named) {
    (void)value;
    if (n == static_cast<int>(kMaxCrashCounters)) break;
    copy_str(g_crash.counters[n].name, kCounterNameCap, name);
    g_crash.counters[n].counter = &reg.counter(name);
    ++n;
  }
  g_crash.counter_count.store(n, std::memory_order_release);
}

/// Appends the pre-formatted aborted summary record to the report `.tmp`
/// and promotes it to its final name. Async-signal-safe (write/fsync/
/// rename/close only). One-shot: the fd is claimed with an exchange.
void finalize_report_in_handler() noexcept {
  const int rfd = g_crash.report_fd.exchange(-1, std::memory_order_acq_rel);
  if (rfd < 0) return;
  std::size_t off = 0;
  while (off < g_crash.aborted_line_len) {
    const ssize_t w =
        ::write(rfd, g_crash.aborted_line + off, g_crash.aborted_line_len - off);
    if (w <= 0) break;
    off += static_cast<std::size_t>(w);
  }
  ::fsync(rfd);
  ::close(rfd);
  ::rename(g_crash.report_tmp, g_crash.report_final);
}

extern "C" void mdcp_crash_signal_handler(int sig) {
  // First signal in wins; a second (or a fault inside the handler itself)
  // falls through straight to the re-raise.
  if (g_crash.in_handler.exchange(1, std::memory_order_acq_rel) == 0) {
    const int fd = g_crash.dump_fd.load(std::memory_order_acquire);
    if (fd >= 0 && !g_crash.dumped.exchange(true, std::memory_order_acq_rel)) {
      const std::size_t torn = write_crash_dump_core(fd, "signal", sig);
      write_crash_dump_end(fd, torn);
      ::fsync(fd);
    }
    finalize_report_in_handler();
  }
  // Restore the default disposition and re-raise so the process still dies
  // with the original signal (exit status, core dumps, wait status intact).
  struct sigaction dfl;
  std::memset(&dfl, 0, sizeof(dfl));
  dfl.sa_handler = SIG_DFL;
  ::sigaction(sig, &dfl, nullptr);
  ::raise(sig);
}

}  // namespace

// ---------------------------------------------------------------------------
// Dump writing.
// ---------------------------------------------------------------------------

std::size_t write_crash_dump_core(int fd, const char* cause,
                                  int sig) noexcept {
  {
    detail::FdWriter w(fd);
    w.str("{\"type\":\"crash\",\"schema\":\"");
    w.str(kCrashDumpSchema);
    w.str("\",\"cause\":\"");
    w.str(cause);
    w.str("\",\"signal\":");
    w.i64(sig);
    w.str(",\"now_ns\":");
    w.u64(clock_ns());
    w.str(",\"pid\":");
    w.i64(static_cast<std::int64_t>(::getpid()));
    if (g_crash.provenance_ready.load(std::memory_order_acquire)) {
      w.str(",");
      w.str(g_crash.provenance);
    }
    w.str("}\n");
  }  // flush before the recorder writes with its own buffer

  const std::size_t torn = FlightRecorder::instance().dump(fd);

  detail::FdWriter w(fd);
  if (const KernelStats* s =
          g_crash.kernel_stats.load(std::memory_order_acquire)) {
    w.str("{\"type\":\"kernel_stats\",\"symbolic_us\":");
    w.i64(static_cast<std::int64_t>(s->symbolic_seconds * 1e6));
    w.str(",\"numeric_us\":");
    w.i64(static_cast<std::int64_t>(s->numeric_seconds * 1e6));
    w.str(",\"prepare_calls\":");
    w.u64(s->prepare_calls);
    w.str(",\"compute_calls\":");
    w.u64(s->compute_calls);
    w.str(",\"flops\":");
    w.u64(s->flops);
    w.str(",\"peak_scratch_bytes\":");
    w.u64(s->peak_scratch_bytes);
    w.str(",\"degradations\":");
    w.u64(s->degradations);
    w.str(",\"last_tiles\":");
    w.i64(s->last_tiles);
    w.str(",\"last_tile\":");
    w.u64(s->last_tile);
    // Static strings by the KernelStats contract — safe in a handler.
    w.str(",\"last_sched_reason\":\"");
    w.str(s->last_sched_reason);
    w.str("\",\"last_degradation_reason\":\"");
    w.str(s->last_degradation_reason);
    w.str("\",\"plan_source\":\"");
    w.str(s->plan_source);
    w.str("\"}\n");
  }

  const int n = g_crash.counter_count.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    w.str("{\"type\":\"counter\",\"name\":\"");
    w.str(g_crash.counters[i].name);
    w.str("\",\"value\":");
    w.u64(g_crash.counters[i].counter->value());
    w.str("}\n");
  }
  w.flush();
  return torn;
}

void write_crash_dump_end(int fd, std::size_t torn) noexcept {
  detail::FdWriter w(fd);
  w.str("{\"type\":\"end\",\"events_recorded\":");
  w.u64(FlightRecorder::instance().events_recorded());
  w.str(",\"torn\":");
  w.u64(torn);
  w.str("}\n");
}

std::string write_crash_dump_file(const std::string& dir, const char* cause,
                                  int sig) {
  ensure_provenance();
  refresh_counter_snapshot();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best-effort
  const std::string path = dir + "/crash-" + std::to_string(clock_ns()) +
                           "-" + std::to_string(::getpid()) + ".json";
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return "";
  const std::size_t torn = write_crash_dump_core(fd, cause, sig);
  // Full registry snapshot (mutex-taking — normal context only).
  const std::string metrics =
      "{\"type\":\"metrics\",\"data\":" + MetricsRegistry::instance().to_json() +
      "}\n";
  std::size_t off = 0;
  while (off < metrics.size()) {
    const ssize_t w = ::write(fd, metrics.data() + off, metrics.size() - off);
    if (w <= 0) break;
    off += static_cast<std::size_t>(w);
  }
  write_crash_dump_end(fd, torn);
  ::close(fd);
  return path;
}

// ---------------------------------------------------------------------------
// Handler registration.
// ---------------------------------------------------------------------------

bool crash_handlers_install(const std::string& dir) {
  ensure_provenance();
  refresh_counter_snapshot();

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/crash-" + std::to_string(clock_ns()) +
                           "-" + std::to_string(::getpid()) + ".json";
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;

  // Replace any previously pre-opened (never-written) dump.
  const int old_fd = g_crash.dump_fd.exchange(fd, std::memory_order_acq_rel);
  if (old_fd >= 0 && !g_crash.dumped.load(std::memory_order_acquire)) {
    ::close(old_fd);
    ::unlink(g_crash.dump_path);
  }
  copy_str(g_crash.dump_path, sizeof(g_crash.dump_path), path);

  if (!g_crash.installed.exchange(true, std::memory_order_acq_rel)) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = mdcp_crash_signal_handler;
    sigemptyset(&sa.sa_mask);
    for (int i = 0; i < kCrashSignalCount; ++i) {
      ::sigaction(kCrashSignals[i], &sa, &g_crash.old_actions[i]);
    }
  }
  return true;
}

void crash_handlers_uninstall() noexcept {
  if (g_crash.installed.exchange(false, std::memory_order_acq_rel)) {
    for (int i = 0; i < kCrashSignalCount; ++i) {
      ::sigaction(kCrashSignals[i], &g_crash.old_actions[i], nullptr);
    }
  }
  const int fd = g_crash.dump_fd.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::close(fd);
    if (!g_crash.dumped.load(std::memory_order_acquire)) {
      ::unlink(g_crash.dump_path);  // clean exit: no empty dump left behind
    }
  }
  crash_detach_report();
}

std::string crash_dump_path() {
  return g_crash.dump_fd.load(std::memory_order_acquire) >= 0 ||
                 g_crash.dumped.load(std::memory_order_acquire)
             ? std::string(g_crash.dump_path)
             : std::string();
}

bool crash_dump_written() noexcept {
  return g_crash.dumped.load(std::memory_order_acquire);
}

void crash_set_kernel_stats(const KernelStats* stats) noexcept {
  g_crash.kernel_stats.store(stats, std::memory_order_release);
}

void crash_attach_report(const std::string& tmp_path,
                         const std::string& final_path,
                         const std::string& aborted_summary_line) {
  crash_detach_report();
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) return;
  copy_str(g_crash.report_tmp, sizeof(g_crash.report_tmp), tmp_path);
  copy_str(g_crash.report_final, sizeof(g_crash.report_final), final_path);
  std::string line = aborted_summary_line;
  if (line.empty() || line.back() != '\n') line += '\n';
  copy_str(g_crash.aborted_line, sizeof(g_crash.aborted_line), line);
  g_crash.aborted_line_len =
      std::min(line.size(), sizeof(g_crash.aborted_line) - 1);
  g_crash.report_fd.store(fd, std::memory_order_release);
}

void crash_detach_report() noexcept {
  const int fd = g_crash.report_fd.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

// ---------------------------------------------------------------------------
// Watchdog.
// ---------------------------------------------------------------------------

const char* watchdog_policy_name(WatchdogPolicy p) noexcept {
  switch (p) {
    case WatchdogPolicy::kReport: return "report";
    case WatchdogPolicy::kCancel: return "cancel";
    case WatchdogPolicy::kAbort: return "abort";
  }
  return "unknown";
}

bool watchdog_policy_from_name(const std::string& name, WatchdogPolicy& out) {
  if (name == "report") {
    out = WatchdogPolicy::kReport;
  } else if (name == "cancel") {
    out = WatchdogPolicy::kCancel;
  } else if (name == "abort") {
    out = WatchdogPolicy::kAbort;
  } else {
    return false;
  }
  return true;
}

Watchdog::Watchdog(WatchdogOptions options) : options_(std::move(options)) {
  if (options_.deadline_seconds > 0) {
    // Snapshot provenance/counters now so the fire path needs no lazy init.
    ensure_provenance();
    thread_ = std::thread([this] { run_(); });
  }
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::stop() noexcept {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::run_() {
  FlightRecorder& fr = FlightRecorder::instance();
  std::uint64_t last_progress = fr.progress();
  std::uint64_t last_change_ns = clock_ns();
  const auto deadline_ns =
      static_cast<std::uint64_t>(options_.deadline_seconds * 1e9);
  const double poll_s =
      options_.poll_seconds > 0
          ? options_.poll_seconds
          : std::clamp(options_.deadline_seconds / 4.0, 0.01, 1.0);

  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lk, std::chrono::duration<double>(poll_s),
                 [this] { return stop_requested_; });
    if (stop_requested_) return;
    const std::uint64_t p = fr.progress();
    const std::uint64_t now = clock_ns();
    if (p != last_progress) {
      last_progress = p;
      last_change_ns = now;
      continue;
    }
    if (now - last_change_ns < deadline_ns) continue;

    // Fired: dump outside the lock (file I/O + registry mutex), once.
    lk.unlock();
    const std::uint64_t quiet_ms = (now - last_change_ns) / 1000000;
    fr.record(FrEvent::kWatchdog, FrPhase::kNone,
              static_cast<std::int64_t>(quiet_ms));
    static Counter& fired_counter =
        MetricsRegistry::instance().counter("watchdog.fired");
    fired_counter.add();
    dump_path_ =
        write_crash_dump_file(options_.dump_dir.empty() ? "." : options_.dump_dir,
                              "watchdog", 0);
    fired_.store(true, std::memory_order_release);
    switch (options_.policy) {
      case WatchdogPolicy::kReport:
        break;
      case WatchdogPolicy::kCancel:
        if (options_.cancel != nullptr) {
          options_.cancel->store(true, std::memory_order_release);
        }
        break;
      case WatchdogPolicy::kAbort:
        // The SIGABRT handler (if installed) skips its own dump — ours is
        // already on disk — but still finalizes the run report.
        g_crash.dumped.store(true, std::memory_order_release);
        std::abort();
    }
    return;  // one-shot
  }
}

// ---------------------------------------------------------------------------
// CancelTimer.
// ---------------------------------------------------------------------------

CancelTimer::CancelTimer(double seconds, std::atomic<bool>* flag)
    : flag_(flag) {
  if (seconds > 0 && flag_ != nullptr) {
    thread_ = std::thread([this, seconds] {
      std::unique_lock<std::mutex> lk(mu_);
      if (cv_.wait_for(lk, std::chrono::duration<double>(seconds),
                       [this] { return stop_requested_; })) {
        return;  // cancelled the timer itself
      }
      flag_->store(true, std::memory_order_release);
    });
  }
}

CancelTimer::~CancelTimer() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

// ---------------------------------------------------------------------------
// Postmortem analysis.
// ---------------------------------------------------------------------------

bool analyze_crash_dump(const std::string& path, CrashDumpAnalysis& out,
                        std::string* error) {
  out = CrashDumpAnalysis{};
  std::ifstream is(path);
  if (!is) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }

  bool has_header = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    JsonValue v;
    if (!json_parse(line, v, nullptr)) {
      // A crash can truncate the final line mid-write; count, keep going.
      ++out.truncated_lines;
      continue;
    }
    const JsonValue* type = v.find("type", JsonValue::Kind::kString);
    if (type == nullptr) {
      ++out.truncated_lines;
      continue;
    }
    const std::string& t = type->as_string();
    if (t == "crash") {
      has_header = true;
      if (const auto* c = v.find("cause", JsonValue::Kind::kString)) {
        out.cause = c->as_string();
      }
      if (const auto* s = v.find("signal", JsonValue::Kind::kNumber)) {
        out.signal = static_cast<int>(s->as_number());
      }
      if (const auto* n = v.find("now_ns", JsonValue::Kind::kNumber)) {
        out.now_ns = static_cast<std::uint64_t>(n->as_number());
      }
      if (const auto* p = v.find("pid", JsonValue::Kind::kNumber)) {
        out.pid = static_cast<std::int64_t>(p->as_number());
      }
      if (const auto* h = v.find("host", JsonValue::Kind::kString)) {
        out.host = h->as_string();
      }
    } else if (t == "heartbeat") {
      CrashThreadState ts;
      if (const auto* f = v.find("tid", JsonValue::Kind::kNumber)) {
        ts.tid = static_cast<std::uint32_t>(f->as_number());
      }
      if (const auto* f = v.find("epoch", JsonValue::Kind::kNumber)) {
        ts.epoch = static_cast<std::uint64_t>(f->as_number());
      }
      if (const auto* f = v.find("last_ns", JsonValue::Kind::kNumber)) {
        ts.last_ns = static_cast<std::uint64_t>(f->as_number());
      }
      if (const auto* f = v.find("age_ns", JsonValue::Kind::kNumber)) {
        ts.age_ns = static_cast<std::uint64_t>(f->as_number());
      }
      if (const auto* f = v.find("phase", JsonValue::Kind::kString)) {
        ts.phase = f->as_string();
      }
      if (const auto* f = v.find("detail", JsonValue::Kind::kNumber)) {
        ts.detail = static_cast<std::int64_t>(f->as_number());
      }
      out.threads.push_back(std::move(ts));
    } else if (t == "event") {
      CrashEvent ev;
      if (const auto* f = v.find("seq", JsonValue::Kind::kNumber)) {
        ev.seq = static_cast<std::uint64_t>(f->as_number());
      }
      if (const auto* f = v.find("ts_ns", JsonValue::Kind::kNumber)) {
        ev.ts_ns = static_cast<std::uint64_t>(f->as_number());
      }
      if (const auto* f = v.find("tid", JsonValue::Kind::kNumber)) {
        ev.tid = static_cast<std::uint32_t>(f->as_number());
      }
      if (const auto* f = v.find("kind", JsonValue::Kind::kString)) {
        ev.kind = f->as_string();
      }
      if (const auto* f = v.find("phase", JsonValue::Kind::kString)) {
        ev.phase = f->as_string();
      }
      if (const auto* f = v.find("a", JsonValue::Kind::kNumber)) {
        ev.a = static_cast<std::int64_t>(f->as_number());
      }
      if (const auto* f = v.find("b", JsonValue::Kind::kNumber)) {
        ev.b = static_cast<std::int64_t>(f->as_number());
      }
      out.events.push_back(std::move(ev));
    } else if (t == "kernel_stats") {
      out.has_kernel_stats = true;
      if (const auto* f = v.find("compute_calls", JsonValue::Kind::kNumber)) {
        out.compute_calls = static_cast<std::uint64_t>(f->as_number());
      }
      if (const auto* f = v.find("degradations", JsonValue::Kind::kNumber)) {
        out.degradations = static_cast<std::uint64_t>(f->as_number());
      }
    } else if (t == "counter") {
      const auto* name = v.find("name", JsonValue::Kind::kString);
      const auto* value = v.find("value", JsonValue::Kind::kNumber);
      if (name != nullptr && value != nullptr) {
        out.counters.emplace_back(
            name->as_string(), static_cast<std::uint64_t>(value->as_number()));
      }
    } else if (t == "end") {
      out.complete = true;
    }
    // "metrics" and unknown types: tolerated, schema may grow.
  }

  if (!has_header) {
    if (error != nullptr) {
      *error = path + ": no mdcp-crash-dump crash header line";
    }
    return false;
  }

  std::sort(out.threads.begin(), out.threads.end(),
            [](const CrashThreadState& x, const CrashThreadState& y) {
              return x.tid < y.tid;
            });
  std::sort(out.events.begin(), out.events.end(),
            [](const CrashEvent& x, const CrashEvent& y) {
              return x.seq < y.seq;
            });

  // Verdict: the run went quiet while the *most recently active* thread was
  // in its published phase — idle threads carry stale (older) heartbeats, so
  // the minimum age points at the thread that stalled or crashed.
  const CrashThreadState* freshest = nullptr;
  for (const CrashThreadState& ts : out.threads) {
    if (freshest == nullptr || ts.age_ns < freshest->age_ns) freshest = &ts;
  }
  if (freshest != nullptr) {
    out.has_verdict = true;
    out.verdict_tid = freshest->tid;
    out.verdict_phase = freshest->phase;
    out.verdict_detail = freshest->detail;
    out.verdict_age_ns = freshest->age_ns;
  }
  return true;
}

}  // namespace mdcp::obs
