// Stall watchdog and crash forensics on top of the flight recorder.
//
// Three layers, all feeding the same `mdcp-crash-dump/1` JSONL format:
//
//   * Watchdog — an opt-in monitor thread that polls
//     FlightRecorder::progress() and fires when no heartbeat (from any
//     thread) advances within its deadline. On firing it writes a
//     `crash-<ns>-<pid>.json` dump (flight recorder + metrics snapshot +
//     the registered KernelStats) and escalates per policy: report (keep
//     running), cancel (set the cooperative cancel flag), or abort.
//
//   * Crash handlers — process-wide SIGSEGV/SIGBUS/SIGFPE/SIGABRT handlers
//     that write the same dump through an fd pre-opened at install time,
//     then finalize the in-flight JSONL run report with a pre-formatted
//     `aborted` summary record (append + atomic rename), so
//     history::ingest_dir counts the dead run instead of skipping a `.tmp`
//     orphan. The handler path is async-signal-safe: no malloc, no locks,
//     integer-only formatting — enforced by the handler-path audit test in
//     tests/test_flightrec.cpp.
//
//   * analyze_crash_dump — the parsing/verdict core of `mdcp_cli
//     postmortem`: per-thread phase + heartbeat age, the retained event
//     tail, and a likely-stalled-phase verdict (the thread whose heartbeat
//     is oldest). Tolerates truncated dumps — a crash can lose tail lines.
//
// Dump schema (one JSON object per line):
//   {"type":"crash", "schema":"mdcp-crash-dump/1", "cause":"watchdog"|
//    "signal"|..., "signal":N, "now_ns":..., "pid":..., <provenance>}
//   {"type":"heartbeat", "tid":..,"epoch":..,"last_ns":..,"age_ns":..,
//    "phase":"..","detail":..}            one per thread that ever beat
//   {"type":"event", "seq":..,"ts_ns":..,"tid":..,"kind":"..",
//    "phase":"..","a":..,"b":..}          oldest-first ring contents
//   {"type":"kernel_stats", ...}          registered engine stats, if any
//   {"type":"counter","name":"..","value":..}  registered metric counters
//   {"type":"metrics","data":{...}}       full registry (watchdog path only)
//   {"type":"end","events_recorded":..,"torn":..}  presence = not truncated
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/workspace.hpp"

namespace mdcp::obs {

/// Crash-dump schema tag (first line of every dump).
inline constexpr const char* kCrashDumpSchema = "mdcp-crash-dump/1";

/// What the watchdog does when it fires.
enum class WatchdogPolicy : std::uint8_t {
  kReport = 0,  ///< write the dump, keep running
  kCancel = 1,  ///< write the dump, set the cooperative cancel flag
  kAbort = 2,   ///< write the dump, abort() (SIGABRT handler finalizes)
};
const char* watchdog_policy_name(WatchdogPolicy p) noexcept;
/// Parses "report"/"cancel"/"abort"; false on anything else.
bool watchdog_policy_from_name(const std::string& name, WatchdogPolicy& out);

struct WatchdogOptions {
  /// Fire when no heartbeat advances for this long. <= 0 disables the
  /// watchdog entirely (the default).
  double deadline_seconds = 0;
  /// Poll cadence; <= 0 picks deadline/4 clamped to [10 ms, 1 s].
  double poll_seconds = 0;
  WatchdogPolicy policy = WatchdogPolicy::kReport;
  /// Directory receiving `crash-<ns>-<pid>.json` on fire.
  std::string dump_dir = ".";
  /// Cancel flag set under kCancel policy. When null, cp_als wires this to
  /// its own run-local flag.
  std::atomic<bool>* cancel = nullptr;
};

/// Liveness monitor. Starts its thread in the constructor (when the
/// deadline is positive) and joins it in stop()/the destructor. Fires at
/// most once per instance.
class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions options);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void stop() noexcept;
  bool fired() const noexcept { return fired_.load(std::memory_order_acquire); }
  /// Path of the dump written on fire ("" before/without firing). Stable
  /// once fired() is true.
  const std::string& dump_path() const noexcept { return dump_path_; }

 private:
  void run_();

  WatchdogOptions options_;
  std::string dump_path_;
  std::atomic<bool> fired_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

/// Wall-clock cooperative timeout (`mdcp_cli --timeout-s`): sets `*flag`
/// after `seconds`. Joined by the destructor.
class CancelTimer {
 public:
  CancelTimer(double seconds, std::atomic<bool>* flag);
  ~CancelTimer();
  CancelTimer(const CancelTimer&) = delete;
  CancelTimer& operator=(const CancelTimer&) = delete;

 private:
  std::atomic<bool>* flag_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// Crash-dump writing.
// ---------------------------------------------------------------------------

/// Writes the signal-safe portion of a dump to `fd`: crash header line,
/// heartbeats, events, registered KernelStats, registered counters. Callable
/// from a signal handler. `cause` must be a static string. Returns the
/// number of torn ring slots skipped (for the end line).
std::size_t write_crash_dump_core(int fd, const char* cause,
                                  int sig) noexcept;

/// Writes the `{"type":"end",...}` terminator line. Signal-safe.
void write_crash_dump_end(int fd, std::size_t torn) noexcept;

/// Normal-context convenience: creates `<dir>/crash-<ns>-<pid>.json`, writes
/// core + full metrics snapshot + end, returns the path ("" on I/O failure).
std::string write_crash_dump_file(const std::string& dir, const char* cause,
                                  int sig);

// ---------------------------------------------------------------------------
// Crash-handler registration (process-wide static state; the handler cannot
// receive arguments).
// ---------------------------------------------------------------------------

/// Installs handlers for SIGSEGV/SIGBUS/SIGFPE/SIGABRT, pre-opens the dump
/// file in `dir`, pre-formats the provenance header, and snapshots metric
/// counter addresses so the handler can dump them without the registry
/// mutex. Returns false if the dump file cannot be created. Reinstalling
/// replaces the pre-opened dump.
bool crash_handlers_install(const std::string& dir);

/// Restores the previous signal dispositions. Removes the pre-opened dump
/// file when no crash ever wrote to it.
void crash_handlers_uninstall() noexcept;

/// Path of the pre-opened dump file ("" when not installed).
std::string crash_dump_path();

/// True once any path (handler or watchdog via mark) wrote a dump.
bool crash_dump_written() noexcept;

/// Registers the engine stats the next dump should snapshot (nullptr to
/// clear). The pointee must outlive the registration.
void crash_set_kernel_stats(const KernelStats* stats) noexcept;

/// Registers the in-flight run report for crash finalization: the handler
/// appends `aborted_summary_line` (a complete JSON summary record with
/// "aborted":true) to `tmp_path` through a pre-opened O_APPEND fd and
/// renames it to `final_path`, promoting the orphan `.tmp` into a report the
/// history store will ingest. Call detach on clean completion.
void crash_attach_report(const std::string& tmp_path,
                         const std::string& final_path,
                         const std::string& aborted_summary_line);
void crash_detach_report() noexcept;

// ---------------------------------------------------------------------------
// Postmortem analysis (`mdcp_cli postmortem`).
// ---------------------------------------------------------------------------

struct CrashThreadState {
  std::uint32_t tid = 0;
  std::uint64_t epoch = 0;
  std::uint64_t last_ns = 0;
  std::uint64_t age_ns = 0;
  std::string phase;
  std::int64_t detail = 0;
};

struct CrashEvent {
  std::uint64_t seq = 0;
  std::uint64_t ts_ns = 0;
  std::uint32_t tid = 0;
  std::string kind;
  std::string phase;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

struct CrashDumpAnalysis {
  // Header.
  std::string cause;  ///< "watchdog", "signal", test causes
  int signal = 0;
  std::uint64_t now_ns = 0;  ///< dump-time clock (age_ns reference)
  std::int64_t pid = 0;
  std::string host;

  std::vector<CrashThreadState> threads;  ///< sorted by tid
  std::vector<CrashEvent> events;         ///< oldest-first
  /// {"name",value} counter lines, in dump order.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  bool has_kernel_stats = false;
  std::uint64_t compute_calls = 0;
  std::uint64_t degradations = 0;

  /// True when the `{"type":"end"}` terminator was present — i.e. the dump
  /// was not cut off mid-write.
  bool complete = false;
  std::size_t truncated_lines = 0;  ///< unparseable (torn) trailing lines

  // Verdict: the thread with the oldest heartbeat, and the phase it was in.
  bool has_verdict = false;
  std::uint32_t verdict_tid = 0;
  std::string verdict_phase;
  std::int64_t verdict_detail = 0;
  std::uint64_t verdict_age_ns = 0;
};

/// Parses a crash dump. Returns false (with `error` set) only when the file
/// cannot be read or contains no valid crash header line; truncated or
/// partially torn dumps still analyze (complete=false, truncated_lines>0).
bool analyze_crash_dump(const std::string& path, CrashDumpAnalysis& out,
                        std::string* error = nullptr);

}  // namespace mdcp::obs
