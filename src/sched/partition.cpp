#include "sched/partition.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace mdcp::sched {

namespace {

nnz_t num_groups(std::span<const nnz_t> group_ptr) {
  MDCP_CHECK_MSG(!group_ptr.empty(), "group prefix must have size groups+1");
  return group_ptr.size() - 1;
}

}  // namespace

TilePlan tile_groups(std::span<const nnz_t> group_ptr, int max_tiles) {
  const nnz_t groups = num_groups(group_ptr);
  const nnz_t total = group_ptr[groups] - group_ptr[0];
  if (max_tiles < 1) max_tiles = 1;

  TilePlan plan;
  plan.splits_groups = false;
  plan.bounds.push_back({0, 0});
  const nnz_t target =
      total == 0 ? 0 : (total + static_cast<nnz_t>(max_tiles) - 1) /
                           static_cast<nnz_t>(max_tiles);
  nnz_t acc = 0;
  for (nnz_t g = 0; g < groups; ++g) {
    acc += group_ptr[g + 1] - group_ptr[g];
    // Close the tile once it reaches its share — after the group that tips
    // it over, so the bound is target + max-group-weight.
    if (target > 0 && acc >= target && g + 1 < groups &&
        plan.tiles() < max_tiles - 1) {
      plan.bounds.push_back({g + 1, 0});
      acc = 0;
    }
  }
  plan.bounds.push_back({groups, 0});
  return plan;
}

TilePlan tile_groups_split(std::span<const nnz_t> group_ptr, int tiles) {
  const nnz_t groups = num_groups(group_ptr);
  const nnz_t base = group_ptr[0];
  const nnz_t total = group_ptr[groups] - base;
  if (tiles < 1) tiles = 1;

  TilePlan plan;
  plan.splits_groups = true;
  plan.bounds.push_back({0, 0});
  for (int t = 1; t < tiles; ++t) {
    const nnz_t pos =
        base + total / static_cast<nnz_t>(tiles) * static_cast<nnz_t>(t) +
        total % static_cast<nnz_t>(tiles) * static_cast<nnz_t>(t) /
            static_cast<nnz_t>(tiles);
    // Last group whose start is <= pos; empty groups at pos collapse onto
    // the following non-empty one, keeping bounds canonical.
    const auto it = std::upper_bound(group_ptr.begin(), group_ptr.end(), pos);
    const nnz_t g = static_cast<nnz_t>(it - group_ptr.begin()) - 1;
    plan.bounds.push_back({g, pos - group_ptr[g]});
  }
  plan.bounds.push_back({groups, 0});
  return plan;
}

TilePlan tile_items_split(std::span<const nnz_t> item_weights,
                          std::span<const nnz_t> item_group_ptr, int tiles) {
  const nnz_t groups = num_groups(item_group_ptr);
  const nnz_t items = item_weights.size();
  MDCP_CHECK_MSG(item_group_ptr[groups] - item_group_ptr[0] == items,
                 "item/group prefix mismatch");
  const nnz_t total =
      std::accumulate(item_weights.begin(), item_weights.end(), nnz_t{0});
  if (tiles < 1) tiles = 1;

  TilePlan plan;
  plan.splits_groups = true;
  plan.bounds.push_back({0, 0});
  const nnz_t target =
      total == 0
          ? 0
          : (total + static_cast<nnz_t>(tiles) - 1) / static_cast<nnz_t>(tiles);
  nnz_t acc = 0;
  nnz_t g = 0;
  for (nnz_t i = 0; i < items; ++i) {
    acc += item_weights[i];
    if (target > 0 && acc >= target && i + 1 < items &&
        plan.tiles() < tiles - 1) {
      const nnz_t next = item_group_ptr[0] + i + 1;
      while (g < groups && item_group_ptr[g + 1] <= next) ++g;
      plan.bounds.push_back(g == groups
                                ? TileBound{groups, 0}
                                : TileBound{g, next - item_group_ptr[g]});
      acc = 0;
    }
  }
  plan.bounds.push_back({groups, 0});
  return plan;
}

TilePlan tile_uniform(nnz_t n, int tiles) {
  const nnz_t ptr[2] = {0, n};
  return tile_groups_split(std::span<const nnz_t>(ptr, 2), tiles);
}

}  // namespace mdcp::sched
