// nnz-weighted tile partitioner for MTTKRP parallel schedules.
//
// Every engine's per-mode work decomposes into *groups* that own one output
// row (COO row groups, CSF root fibers, dimension-tree tuples) made of
// smaller *units* of work (nonzeros, blocks, child subtrees). The
// partitioner cuts that work into load-balanced tiles two ways:
//
//   tile_groups        — tiles are runs of whole groups (owner-computes:
//                        each output row stays inside one tile, so
//                        accumulation is race-free). Greedy by weight; the
//                        heaviest tile is bounded by target + max group.
//   tile_groups_split /
//   tile_items_split / — tiles may cut *inside* a group (a hub fiber is
//   tile_uniform         spread across tiles), which balances power-law
//                        work exactly but shares output rows between tiles
//                        — callers must pair these with the privatized
//                        reduction in sched/reduce.hpp.
//
// A TilePlan is a sorted list of (group, offset) boundaries; offsets are in
// whatever unit the builder was given (weight units, item indices). Plans
// are built once per (mode, thread-count) and cached by the engines — tile
// construction is O(groups) and allocation happens only on the first
// compute() of a configuration.
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace mdcp::sched {

/// One tile boundary: the position just before `offset` within `group`.
/// Canonical form: offset < size(group), or (num_groups, 0) at the end.
struct TileBound {
  nnz_t group = 0;
  nnz_t offset = 0;

  friend bool operator==(const TileBound&, const TileBound&) = default;
};

struct TilePlan {
  std::vector<TileBound> bounds;  ///< size tiles()+1, non-decreasing
  bool splits_groups = false;     ///< true → pair with privatized reduction

  int tiles() const noexcept {
    return bounds.empty() ? 0 : static_cast<int>(bounds.size()) - 1;
  }
};

/// Owner-computes tiles: runs of whole groups, greedily packed to
/// ceil(total/max_tiles) weight. `group_ptr` is the cumulative weight prefix
/// (size groups+1, e.g. a CSR row_start array). Never splits a group, so the
/// heaviest tile weighs at most target + max-group-weight. Produces at most
/// `max_tiles` tiles (fewer when there are fewer groups or weight is 0).
TilePlan tile_groups(std::span<const nnz_t> group_ptr, int max_tiles);

/// Balanced tiles cutting anywhere in weight space: tile t covers the
/// global weight range [total*t/tiles, total*(t+1)/tiles), mapped back to
/// (group, intra-group offset). Offsets are in weight units; groups whose
/// weight straddles a cut are split across tiles.
TilePlan tile_groups_split(std::span<const nnz_t> group_ptr, int tiles);

/// Balanced tiles cutting between weighted *items* (never inside one).
/// Items are grouped contiguously: group g owns items
/// [item_group_ptr[g], item_group_ptr[g+1]); bound offsets are item indices
/// relative to the group start. The heaviest tile weighs at most
/// target + max-item-weight.
TilePlan tile_items_split(std::span<const nnz_t> item_weights,
                          std::span<const nnz_t> item_group_ptr, int tiles);

/// Balanced tiles over `n` unit-weight items in a single group (columns,
/// copy elements): bound offsets are item indices.
TilePlan tile_uniform(nnz_t n, int tiles);

/// Invokes fn(group, begin, end) for every (possibly partial) group range
/// covered by tile `tile`, in group order. `size(g)` must return the
/// group's extent in the same units as the plan's offsets; for tile_groups
/// plans (which never split) it simply defines the full range handed to fn.
template <typename SizeFn, typename Fn>
void for_each_group_range(const TilePlan& plan, int tile, SizeFn&& size,
                          Fn&& fn) {
  TileBound b = plan.bounds[static_cast<std::size_t>(tile)];
  const TileBound e = plan.bounds[static_cast<std::size_t>(tile) + 1];
  for (; b.group < e.group; b = {b.group + 1, 0}) {
    const nnz_t sz = size(b.group);
    if (b.offset < sz) fn(b.group, b.offset, sz);
  }
  if (b.group == e.group && b.offset < e.offset)
    fn(b.group, b.offset, e.offset);
}

/// Tile plan cached against the tile count it was built for (the only input
/// that varies between compute() calls of one mode). Engines keep one per
/// (mode, schedule) and rebuild only when the thread budget changes.
struct CachedPlan {
  int tiles = -1;
  TilePlan plan;
};

template <typename BuildFn>
const TilePlan& cached_tiles(CachedPlan& cache, int tiles, BuildFn&& build) {
  if (cache.tiles != tiles) {
    cache.plan = build(tiles);
    cache.tiles = tiles;
  }
  return cache.plan;
}

}  // namespace mdcp::sched
