// Deterministic combine step for privatized-reduction schedules.
//
// Each thread of a privatized launch accumulates into a private slab
// (Workspace scratch) and publishes its pointer into a PartialSet. After a
// barrier, the threads jointly reduce: every thread owns a disjoint
// contiguous chunk of the output and adds the partials over that chunk in
// ascending thread order t = 0..team-1. The fixed combine order makes
// repeated runs at the same thread count bitwise identical (floating-point
// addition is not associative, so the order must not depend on scheduling
// races); across different thread counts results drift within the usual
// reassociation tolerance, as documented in docs/architecture.md.
#pragma once

#include "util/parallel.hpp"
#include "util/types.hpp"
#include "util/workspace.hpp"

namespace mdcp::sched {

/// Pointer board for per-thread partial output slabs. Stack-allocate one
/// outside the parallel region; threads publish before the barrier and read
/// any slot after it (the barrier orders publish before combine).
struct PartialSet {
  real_t* slabs[Workspace::kMaxThreads] = {};

  void publish(int tid, real_t* slab) noexcept { slabs[tid] = slab; }

  /// Adds all published partials onto `out[range]` in thread order. Call
  /// from every team member with its own disjoint chunk of [0, n).
  void combine_into(real_t* out, int team, Range range) const noexcept {
    for (int t = 0; t < team; ++t) {
      const real_t* part = slabs[t];
      for (nnz_t i = range.begin; i < range.end; ++i) out[i] += part[i];
    }
  }
};

}  // namespace mdcp::sched
