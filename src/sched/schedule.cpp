#include "sched/schedule.hpp"

#include <algorithm>

namespace mdcp::sched {

const char* schedule_name(Schedule s) noexcept {
  return s == Schedule::kPrivatized ? "privatized" : "owner";
}

std::size_t privatized_partial_bytes(int threads, index_t rows,
                                     index_t rank) noexcept {
  return static_cast<std::size_t>(threads) * static_cast<std::size_t>(rows) *
         static_cast<std::size_t>(rank) * sizeof(real_t);
}

std::uint64_t reduction_flops(int threads, index_t rows,
                              index_t rank) noexcept {
  return static_cast<std::uint64_t>(threads) *
         static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(rank);
}

int owner_tile_count(nnz_t units, int threads) noexcept {
  const nnz_t want = static_cast<nnz_t>(threads) *
                     static_cast<nnz_t>(kOwnerTilesPerThread);
  return static_cast<int>(std::max<nnz_t>(1, std::min(want, units)));
}

Decision choose_schedule(const WorkShape& shape, int threads,
                         ScheduleMode mode) noexcept {
  Decision d;
  d.skew = shape.total > 0 ? static_cast<double>(shape.max_unit) *
                                 static_cast<double>(threads) /
                                 static_cast<double>(shape.total)
                           : 0.0;

  const auto owner = [&](const char* why) {
    d.schedule = Schedule::kOwner;
    d.tiles = owner_tile_count(shape.units, threads);
    d.partial_bytes = 0;
    d.reason = why;
    return d;
  };
  const auto privatized = [&](const char* why) {
    d.schedule = Schedule::kPrivatized;
    d.tiles = std::max(1, threads);
    d.partial_bytes =
        privatized_partial_bytes(threads, shape.out_rows, shape.rank);
    d.reason = why;
    return d;
  };

  // Order matters: structural impossibility first, explicit overrides next,
  // then the profitability cascade.
  if (!shape.shared_writes) return owner("no-shared-writes");
  if (mode == ScheduleMode::kOwner) return owner("forced-owner");
  if (mode == ScheduleMode::kPrivatized) return privatized("forced-privatized");
  if (threads <= 1) return owner("single-thread");
  if (shape.total < kMinPrivatizeWork) return owner("small-work");
  // skew <= 1: even the heaviest indivisible group fits inside one thread's
  // fair share, so owner-computes already balances.
  if (d.skew <= 1.0) return owner("balanced");
  if (privatized_partial_bytes(threads, shape.out_rows, shape.rank) >
      kMaxPartialBytes)
    return owner("partials-too-large");
  // Reduction pass (threads × rows × rank adds) must be amortized by the
  // main kernel (~total × rank flops): require total >= threads × rows.
  if (shape.total < static_cast<nnz_t>(threads) *
                        static_cast<nnz_t>(shape.out_rows))
    return owner("reduction-dominates");
  return privatized("skewed");
}

}  // namespace mdcp::sched
