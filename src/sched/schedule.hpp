// Per-mode parallel-schedule selection for MTTKRP kernels.
//
// Two schedules exist (see sched/partition.hpp for the tile geometry):
//
//   kOwner      — whole-group tiles; each output row is written by exactly
//                 one tile, so accumulation is race-free and results are
//                 bitwise identical across thread counts. A hub group
//                 (power-law fiber) serializes its tile.
//   kPrivatized — balanced split tiles; every thread accumulates into a
//                 private output slab and the slabs are combined in fixed
//                 thread order (sched/reduce.hpp). Perfectly load-balanced
//                 but costs threads × out_rows × rank extra memory and a
//                 reduction pass; bitwise deterministic only at a fixed
//                 thread count.
//
// choose_schedule() picks between them from a WorkShape — the same numbers
// the cost model sees (total work, heaviest indivisible unit, output size).
// The caller's KernelContext::sched forces either schedule for benchmarking
// and strategy-layer control; forcing kPrivatized on a kernel with no
// shared writes stays owner (there is nothing to privatize). Every launch
// records its Decision into KernelStats so benches can report the schedule
// chosen per mode.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/types.hpp"
#include "util/workspace.hpp"

namespace mdcp::sched {

enum class Schedule : std::uint8_t { kOwner = 0, kPrivatized = 1 };

const char* schedule_name(Schedule s) noexcept;

/// Minimum total work (weight units ~ nnz) before privatization is worth a
/// reduction pass. Also keeps the auto heuristic owner-computes on the small
/// tensors used by the determinism tests.
inline constexpr nnz_t kMinPrivatizeWork = 32768;

/// Cap on the per-launch partial-slab footprint (threads × rows × rank × 8).
inline constexpr std::size_t kMaxPartialBytes = std::size_t{256} << 20;

/// Owner-computes over-decomposition factor: more tiles than threads so
/// dynamic assignment can smooth moderate imbalance without splitting groups.
inline constexpr int kOwnerTilesPerThread = 8;

/// Shape of one mode's work, in whatever weight unit the engine tiles by.
struct WorkShape {
  nnz_t total = 0;     ///< total weight (typically nnz touched)
  nnz_t max_unit = 0;  ///< heaviest group that owner-computes cannot split
  nnz_t units = 0;     ///< number of groups (output rows / root fibers)
  index_t out_rows = 0;
  index_t rank = 0;
  /// False when tiles never write the same output element (scatter copies,
  /// independent columns) — privatization is then pointless and the
  /// heuristic always answers kOwner.
  bool shared_writes = true;
};

struct Decision {
  Schedule schedule = Schedule::kOwner;
  int tiles = 1;
  double skew = 0;  ///< max_unit × threads / total (1 = perfectly balanced)
  std::size_t partial_bytes = 0;  ///< privatized slab footprint (0 for owner)
  const char* reason = "";        ///< static string for stats/bench tables
};

/// Bytes of per-thread partial output slabs a privatized launch allocates.
std::size_t privatized_partial_bytes(int threads, index_t rows,
                                     index_t rank) noexcept;

/// Extra flops the privatized combine pass performs (adds across partials).
std::uint64_t reduction_flops(int threads, index_t rows,
                              index_t rank) noexcept;

/// Tile budget for an owner-computes launch (over-decomposed, capped by the
/// number of groups).
int owner_tile_count(nnz_t units, int threads) noexcept;

/// Picks the schedule for one mode. `mode` is the caller-side override from
/// KernelContext (kAuto = heuristic).
Decision choose_schedule(const WorkShape& shape, int threads,
                         ScheduleMode mode = ScheduleMode::kAuto) noexcept;

}  // namespace mdcp::sched
