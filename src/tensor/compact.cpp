#include "tensor/compact.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mdcp {

CompactedTensor compact(const CooTensor& tensor) {
  const mode_t order = tensor.order();
  CompactedTensor out;
  out.old_index.resize(order);

  // Per mode: sorted unique used indices + dense old→new lookup.
  std::vector<std::vector<index_t>> remap(order);
  shape_t new_shape(order);
  for (mode_t m = 0; m < order; ++m) {
    auto& used = out.old_index[m];
    const auto idx = tensor.mode_indices(m);
    used.assign(idx.begin(), idx.end());
    std::sort(used.begin(), used.end());
    used.erase(std::unique(used.begin(), used.end()), used.end());
    MDCP_CHECK_MSG(!used.empty(), "cannot compact an empty tensor");
    new_shape[m] = static_cast<index_t>(used.size());

    remap[m].assign(tensor.dim(m), kInvalidIndex);
    for (index_t n = 0; n < used.size(); ++n) remap[m][used[n]] = n;
  }

  CooTensor compacted(new_shape);
  compacted.reserve(tensor.nnz());
  std::vector<index_t> c(order);
  for (nnz_t i = 0; i < tensor.nnz(); ++i) {
    for (mode_t m = 0; m < order; ++m) c[m] = remap[m][tensor.index(m, i)];
    compacted.push_back(c, tensor.value(i));
  }
  out.tensor = std::move(compacted);
  return out;
}

}  // namespace mdcp
