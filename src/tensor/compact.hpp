// Index compaction: relabels each mode so that only *used* indices remain.
//
// Real sparse tensors routinely have empty slices (unused ids in some mode).
// Empty slices waste factor-matrix rows (memory + dense-update time) and the
// dimension-tree theory assumes they were removed in preprocessing. The
// mapping is retained so factor rows can be reported in the original id
// space afterwards.
#pragma once

#include <vector>

#include "tensor/coo_tensor.hpp"

namespace mdcp {

struct CompactedTensor {
  CooTensor tensor;  ///< same nonzeros, indices renumbered 0..used-1 per mode
  /// old_index[m][new] = the original index in mode m; each is sorted
  /// ascending, with size == compacted dim(m).
  std::vector<std::vector<index_t>> old_index;

  /// Maps a compacted mode-m index back to the original id.
  index_t original(mode_t mode, index_t compacted) const {
    return old_index[mode][compacted];
  }
};

/// Removes empty slices in every mode. Value order is preserved.
CompactedTensor compact(const CooTensor& tensor);

}  // namespace mdcp
