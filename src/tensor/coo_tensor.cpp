#include "tensor/coo_tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <unordered_set>

#include "util/error.hpp"

namespace mdcp {

CooTensor::CooTensor(shape_t shape) : shape_(std::move(shape)) {
  MDCP_CHECK_MSG(!shape_.empty(), "tensor must have at least one mode");
  MDCP_CHECK_MSG(shape_.size() <= kMaxOrder, "tensor order exceeds kMaxOrder");
  for (index_t d : shape_) MDCP_CHECK_MSG(d > 0, "mode sizes must be positive");
  idx_.resize(shape_.size());
}

double CooTensor::logical_size() const noexcept {
  double p = 1;
  for (index_t d : shape_) p *= static_cast<double>(d);
  return p;
}

void CooTensor::reserve(nnz_t n) {
  for (auto& a : idx_) a.reserve(n);
  vals_.reserve(n);
}

void CooTensor::push_back(std::span<const index_t> coords, real_t value) {
  MDCP_CHECK_MSG(coords.size() == shape_.size(),
                 "coordinate arity mismatch: got " << coords.size()
                                                   << ", expected "
                                                   << shape_.size());
  for (mode_t m = 0; m < order(); ++m) {
    MDCP_CHECK_MSG(coords[m] < shape_[m], "index " << coords[m]
                                                   << " out of range in mode "
                                                   << m);
    idx_[m].push_back(coords[m]);
  }
  vals_.push_back(value);
}

void CooTensor::coords(nnz_t i, std::span<index_t> out) const {
  MDCP_CHECK(out.size() >= shape_.size());
  for (mode_t m = 0; m < order(); ++m) out[m] = idx_[m][i];
}

bool CooTensor::tuple_less(nnz_t a, nnz_t b,
                           std::span<const mode_t> mode_order) const {
  for (mode_t m : mode_order) {
    const index_t ia = idx_[m][a];
    const index_t ib = idx_[m][b];
    if (ia != ib) return ia < ib;
  }
  return false;
}

std::vector<nnz_t> CooTensor::sorted_permutation(
    std::span<const mode_t> mode_order) const {
  std::vector<nnz_t> perm(nnz());
  std::iota(perm.begin(), perm.end(), nnz_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](nnz_t a, nnz_t b) {
    return tuple_less(a, b, mode_order);
  });
  return perm;
}

void CooTensor::apply_permutation(std::span<const nnz_t> perm) {
  MDCP_CHECK(perm.size() == nnz());
  std::vector<real_t> new_vals(nnz());
  for (nnz_t i = 0; i < nnz(); ++i) new_vals[i] = vals_[perm[i]];
  vals_ = std::move(new_vals);
  std::vector<index_t> buf(nnz());
  for (auto& arr : idx_) {
    for (nnz_t i = 0; i < nnz(); ++i) buf[i] = arr[perm[i]];
    arr.swap(buf);
  }
}

void CooTensor::sort_by_modes(std::span<const mode_t> mode_order) {
  const auto perm = sorted_permutation(mode_order);
  apply_permutation(perm);
}

void CooTensor::coalesce() {
  if (nnz() == 0) return;
  std::vector<mode_t> natural(order());
  std::iota(natural.begin(), natural.end(), mode_t{0});
  sort_by_modes(natural);

  const auto same_coords = [&](nnz_t a, nnz_t b) {
    for (mode_t m = 0; m < order(); ++m)
      if (idx_[m][a] != idx_[m][b]) return false;
    return true;
  };

  nnz_t w = 0;  // write cursor
  for (nnz_t r = 1; r < nnz(); ++r) {
    if (same_coords(w, r)) {
      vals_[w] += vals_[r];
    } else {
      ++w;
      for (mode_t m = 0; m < order(); ++m) idx_[m][w] = idx_[m][r];
      vals_[w] = vals_[r];
    }
  }
  const nnz_t new_size = w + 1;
  for (auto& arr : idx_) arr.resize(new_size);
  vals_.resize(new_size);
}

void CooTensor::prune(real_t tol) {
  nnz_t w = 0;
  for (nnz_t r = 0; r < nnz(); ++r) {
    if (std::abs(vals_[r]) > tol) {
      if (w != r) {
        for (mode_t m = 0; m < order(); ++m) idx_[m][w] = idx_[m][r];
        vals_[w] = vals_[r];
      }
      ++w;
    }
  }
  for (auto& arr : idx_) arr.resize(w);
  vals_.resize(w);
}

real_t CooTensor::norm() const {
  real_t s = 0;
  for (real_t v : vals_) s += v * v;
  return std::sqrt(s);
}

index_t CooTensor::distinct_in_mode(mode_t m) const {
  MDCP_CHECK(m < order());
  std::vector<index_t> seen(idx_[m]);
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  return static_cast<index_t>(seen.size());
}

void CooTensor::validate() const {
  MDCP_CHECK(idx_.size() == shape_.size());
  for (mode_t m = 0; m < order(); ++m) {
    MDCP_CHECK_MSG(idx_[m].size() == vals_.size(),
                   "ragged index arrays in mode " << m);
    for (index_t v : idx_[m])
      MDCP_CHECK_MSG(v < shape_[m],
                     "index " << v << " out of range in mode " << m);
  }
}

std::string CooTensor::summary() const {
  std::ostringstream os;
  os << order() << "-mode ";
  for (mode_t m = 0; m < order(); ++m) {
    if (m) os << 'x';
    os << shape_[m];
  }
  os << ", nnz=" << nnz();
  return os.str();
}

bool CooTensor::operator==(const CooTensor& other) const {
  return shape_ == other.shape_ && idx_ == other.idx_ && vals_ == other.vals_;
}

}  // namespace mdcp
