// Coordinate-format (COO) sparse tensor.
//
// This is the canonical interchange representation in mdcp: generators and
// I/O produce it, and the CSF / dimension-tree engines are constructed from
// it. Indices are stored structure-of-arrays (one contiguous array per mode)
// so per-mode scans and projections touch minimal memory.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace mdcp {

class CooTensor {
 public:
  CooTensor() = default;

  /// Empty tensor with the given mode sizes.
  explicit CooTensor(shape_t shape);

  mode_t order() const noexcept { return static_cast<mode_t>(shape_.size()); }
  nnz_t nnz() const noexcept { return vals_.size(); }
  const shape_t& shape() const noexcept { return shape_; }
  index_t dim(mode_t m) const { return shape_.at(m); }

  /// Total number of positions (product of mode sizes), as a double because
  /// it overflows integers for large tensors. Used for density reporting.
  double logical_size() const noexcept;

  void reserve(nnz_t n);

  /// Appends one nonzero. `coords` must have exactly `order()` entries.
  void push_back(std::span<const index_t> coords, real_t value);

  index_t index(mode_t m, nnz_t i) const { return idx_[m][i]; }
  real_t value(nnz_t i) const { return vals_[i]; }
  real_t& value(nnz_t i) { return vals_[i]; }

  std::span<const index_t> mode_indices(mode_t m) const {
    return {idx_[m].data(), idx_[m].size()};
  }
  std::span<const real_t> values() const { return {vals_.data(), vals_.size()}; }
  std::span<real_t> values() { return {vals_.data(), vals_.size()}; }

  /// Writes the coordinates of nonzero i into `out` (size >= order()).
  void coords(nnz_t i, std::span<index_t> out) const;

  /// Lexicographic comparison of two nonzeros under a mode priority order.
  bool tuple_less(nnz_t a, nnz_t b, std::span<const mode_t> mode_order) const;

  /// Returns a permutation that sorts nonzeros lexicographically by the given
  /// mode priority order (stable).
  std::vector<nnz_t> sorted_permutation(std::span<const mode_t> mode_order) const;

  /// Reorders nonzeros in place according to `perm` (perm[i] = old position
  /// of the element that moves to position i).
  void apply_permutation(std::span<const nnz_t> perm);

  /// Sorts nonzeros lexicographically by the given mode priority order.
  void sort_by_modes(std::span<const mode_t> mode_order);

  /// Sorts by modes 0..N-1 and merges duplicate coordinates by summing their
  /// values. Zero-valued results are kept (callers may prune explicitly).
  void coalesce();

  /// Removes nonzeros with |value| <= tol.
  void prune(real_t tol = 0);

  /// Frobenius norm.
  real_t norm() const;

  /// Number of distinct indices appearing in mode m.
  index_t distinct_in_mode(mode_t m) const;

  /// Throws mdcp::error if any index is out of range or arrays are ragged.
  void validate() const;

  /// Human-readable one-line summary ("3-mode 100x100x100, nnz=5000").
  std::string summary() const;

  bool operator==(const CooTensor& other) const;

 private:
  shape_t shape_;
  std::vector<std::vector<index_t>> idx_;  // [mode][nonzero]
  std::vector<real_t> vals_;
};

}  // namespace mdcp
