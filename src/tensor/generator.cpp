#include "tensor/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mdcp {

namespace {

// Draws coordinates with `draw(m)` until ~nnz_target distinct tuples exist.
template <typename DrawFn>
CooTensor fill_tensor(const shape_t& shape, nnz_t nnz_target, Rng& rng,
                      DrawFn&& draw) {
  CooTensor t(shape);
  t.reserve(nnz_target);
  const auto order = static_cast<mode_t>(shape.size());
  std::vector<index_t> c(order);
  for (nnz_t i = 0; i < nnz_target; ++i) {
    for (mode_t m = 0; m < order; ++m) c[m] = draw(m);
    t.push_back(c, rng.next_real() + real_t{0.05});
  }
  t.coalesce();
  return t;
}

}  // namespace

CooTensor generate_uniform(const shape_t& shape, nnz_t nnz_target,
                           std::uint64_t seed) {
  Rng rng(seed);
  return fill_tensor(shape, nnz_target, rng,
                     [&](mode_t m) { return rng.next_index(shape[m]); });
}

CooTensor generate_zipf(const shape_t& shape, nnz_t nnz_target,
                        double exponent, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ZipfSampler> samplers;
  samplers.reserve(shape.size());
  for (index_t d : shape) samplers.emplace_back(d, exponent);
  // Scramble the Zipf ranks so "popular" indices are scattered across the
  // index space rather than packed at 0 (matches anonymized real datasets).
  std::vector<std::vector<index_t>> scramble(shape.size());
  for (std::size_t m = 0; m < shape.size(); ++m) {
    auto& s = scramble[m];
    s.resize(shape[m]);
    for (index_t i = 0; i < shape[m]; ++i) s[i] = i;
    for (index_t i = shape[m]; i-- > 1;)
      std::swap(s[i], s[rng.next_index(i + 1)]);
  }
  return fill_tensor(shape, nnz_target, rng, [&](mode_t m) {
    return scramble[m][samplers[m].sample(rng)];
  });
}

CooTensor generate_clustered(const shape_t& shape, nnz_t nnz_target,
                             const ClusteredOptions& opt, std::uint64_t seed) {
  MDCP_CHECK_MSG(opt.clusters > 0, "need at least one cluster");
  Rng rng(seed);
  const auto order = static_cast<mode_t>(shape.size());
  std::vector<std::vector<index_t>> centers(opt.clusters);
  for (index_t c = 0; c < opt.clusters; ++c) {
    centers[c].resize(order);
    for (mode_t m = 0; m < order; ++m)
      centers[c][m] = rng.next_index(shape[m]);
  }
  // Geometric offsets around the chosen center.
  const double p = 1.0 / (1.0 + opt.spread);
  const auto geometric = [&]() -> index_t {
    const double u = rng.next_real();
    const double g = std::floor(std::log1p(-u) / std::log1p(-p));
    return static_cast<index_t>(std::min(g, 64.0));
  };
  index_t current = 0;
  mode_t mode_cursor = 0;
  return fill_tensor(shape, nnz_target, rng, [&](mode_t m) {
    if (m == 0) current = rng.next_index(opt.clusters);
    mode_cursor = m;
    const index_t base = centers[current][mode_cursor];
    const index_t off = geometric();
    const index_t idx = (rng.next_u64() & 1) ? base + off
                                             : (base >= off ? base - off : 0);
    return std::min<index_t>(idx, shape[m] - 1);
  });
}

PlantedTensor generate_planted(const shape_t& shape, index_t rank,
                               nnz_t nnz_target, real_t noise,
                               std::uint64_t seed) {
  MDCP_CHECK(rank > 0);
  Rng rng(seed);
  PlantedTensor out;
  out.weights.resize(rank);
  for (auto& w : out.weights) w = 0.5 + rng.next_real();
  out.factors.reserve(shape.size());
  for (index_t d : shape) {
    Matrix f = Matrix::random_uniform(d, rank, rng);
    // Keep entries bounded away from zero so sampled values carry signal.
    for (index_t i = 0; i < d; ++i)
      for (index_t r = 0; r < rank; ++r) f(i, r) = 0.1 + 0.9 * f(i, r);
    out.factors.push_back(std::move(f));
  }

  const auto order = static_cast<mode_t>(shape.size());
  CooTensor t(shape);
  t.reserve(nnz_target);
  std::vector<index_t> c(order);
  for (nnz_t i = 0; i < nnz_target; ++i) {
    for (mode_t m = 0; m < order; ++m) c[m] = rng.next_index(shape[m]);
    real_t v = 0;
    for (index_t r = 0; r < rank; ++r) {
      real_t prod = out.weights[r];
      for (mode_t m = 0; m < order; ++m) prod *= out.factors[m](c[m], r);
      v += prod;
    }
    v += noise * rng.next_normal();
    t.push_back(c, v);
  }
  t.coalesce();
  out.tensor = std::move(t);
  return out;
}

PlantedTensor generate_planted_dense(const shape_t& shape, index_t rank,
                                     real_t noise, std::uint64_t seed) {
  double positions = 1;
  for (index_t d : shape) positions *= static_cast<double>(d);
  MDCP_CHECK_MSG(positions <= 1e7,
                 "generate_planted_dense is for small grids (got "
                     << positions << " positions)");

  Rng rng(seed);
  PlantedTensor out;
  out.weights.resize(rank);
  for (auto& w : out.weights) w = 0.5 + rng.next_real();
  // Signed Gaussian factors: components are near-orthogonal in expectation,
  // so ALS recovers them quickly (all-positive factors are nearly collinear
  // and push ALS into its well-known "swamp" regime).
  for (index_t d : shape)
    out.factors.push_back(Matrix::random_normal(d, rank, rng));

  const auto order = static_cast<mode_t>(shape.size());
  CooTensor t(shape);
  t.reserve(static_cast<nnz_t>(positions));
  std::vector<index_t> c(order, 0);
  // Odometer over every grid position.
  while (true) {
    real_t v = 0;
    for (index_t r = 0; r < rank; ++r) {
      real_t prod = out.weights[r];
      for (mode_t m = 0; m < order; ++m) prod *= out.factors[m](c[m], r);
      v += prod;
    }
    v += noise * rng.next_normal();
    t.push_back(c, v);
    mode_t m = 0;
    for (; m < order; ++m) {
      if (++c[m] < shape[m]) break;
      c[m] = 0;
    }
    if (m == order) break;
  }
  out.tensor = std::move(t);
  return out;
}

}  // namespace mdcp
