// Synthetic sparse tensor generators.
//
// These stand in for the real-world datasets used by the sparse-CP
// literature (FROSTT-style tag/knowledge-base/EHR tensors), which are not
// redistributable here. Each generator targets a distinct structural regime
// that matters to memoized MTTKRP performance:
//
//  * uniform    — i.i.d. coordinates; essentially no index overlap after
//                 contraction (worst case for memoization gains).
//  * zipf       — per-mode Zipf-distributed coordinates; hub-dominated
//                 structure typical of web/tagging data; strong overlap.
//  * clustered  — nonzeros drawn around a small set of cluster centers with
//                 geometric spread; controls overlap directly (the mechanism
//                 behind the paper family's super-logarithmic speedups).
//  * planted    — sparse sample of a ground-truth rank-R Kruskal tensor plus
//                 noise; lets convergence tests verify factor recovery.
#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "tensor/coo_tensor.hpp"
#include "util/rng.hpp"

namespace mdcp {

/// i.i.d. uniform coordinates, Uniform(0,1) values; duplicates coalesced so
/// the result may contain slightly fewer than `nnz` entries.
CooTensor generate_uniform(const shape_t& shape, nnz_t nnz_target,
                           std::uint64_t seed);

/// Zipf(exponent)-skewed coordinates in every mode.
CooTensor generate_zipf(const shape_t& shape, nnz_t nnz_target,
                        double exponent, std::uint64_t seed);

struct ClusteredOptions {
  index_t clusters = 64;   ///< number of cluster centers
  double spread = 8.0;     ///< mean geometric offset from the center per mode
};

/// Cluster-structured coordinates: high index overlap under contraction.
CooTensor generate_clustered(const shape_t& shape, nnz_t nnz_target,
                             const ClusteredOptions& opt, std::uint64_t seed);

struct PlantedTensor {
  CooTensor tensor;             ///< noisy sparse sample of the model
  std::vector<Matrix> factors;  ///< ground-truth factors (nonnegative)
  std::vector<real_t> weights;  ///< ground-truth component weights
};

/// Samples `nnz` positions uniformly and fills them with the value of a
/// random nonnegative rank-`rank` Kruskal model at that position, plus
/// Gaussian noise of the given relative magnitude.
///
/// NOTE: the *masked* tensor is not itself low-rank — sparse CP-ALS treats
/// unstored positions as true zeros. Use this as a realistic workload, and
/// `generate_planted_dense` when a recoverable ground truth is needed.
PlantedTensor generate_planted(const shape_t& shape, index_t rank,
                               nnz_t nnz_target, real_t noise,
                               std::uint64_t seed);

/// Evaluates a random rank-`rank` Kruskal model at *every* position of a
/// small grid (prod(shape) entries — keep it modest). The result is exactly
/// rank-`rank` (plus noise), so CP-ALS at the same rank can drive the fit
/// to ~1. Used by convergence/recovery tests and examples.
PlantedTensor generate_planted_dense(const shape_t& shape, index_t rank,
                                     real_t noise, std::uint64_t seed);

}  // namespace mdcp
