#include "tensor/stats.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/error.hpp"

namespace mdcp {

std::string TensorStats::to_string() const {
  std::ostringstream os;
  os << "shape=";
  for (std::size_t m = 0; m < shape.size(); ++m) {
    if (m) os << 'x';
    os << shape[m];
  }
  os << " nnz=" << nnz << " density=" << density << " distinct=[";
  for (std::size_t m = 0; m < distinct_per_mode.size(); ++m) {
    if (m) os << ',';
    os << distinct_per_mode[m];
  }
  os << ']';
  return os.str();
}

TensorStats compute_stats(const CooTensor& t) {
  TensorStats s;
  s.shape = t.shape();
  s.nnz = t.nnz();
  s.density = t.logical_size() > 0
                  ? static_cast<double>(t.nnz()) / t.logical_size()
                  : 0;
  s.distinct_per_mode.resize(t.order());
  s.avg_slice_nnz.resize(t.order());
  for (mode_t m = 0; m < t.order(); ++m) {
    s.distinct_per_mode[m] = t.distinct_in_mode(m);
    s.avg_slice_nnz[m] =
        s.distinct_per_mode[m] > 0
            ? static_cast<double>(t.nnz()) / s.distinct_per_mode[m]
            : 0;
  }
  return s;
}

nnz_t distinct_projection_count(const CooTensor& t, mode_set_t modes) {
  std::vector<mode_t> mlist;
  for (mode_t m = 0; m < t.order(); ++m)
    if (mode_in(modes, m)) mlist.push_back(m);
  if (mlist.empty()) return t.nnz() > 0 ? 1 : 0;

  auto perm = t.sorted_permutation(mlist);
  nnz_t count = t.nnz() > 0 ? 1 : 0;
  for (nnz_t i = 1; i < perm.size(); ++i) {
    for (mode_t m : mlist) {
      if (t.index(m, perm[i]) != t.index(m, perm[i - 1])) {
        ++count;
        break;
      }
    }
  }
  return count;
}

std::vector<nnz_t> prefix_fiber_counts(const CooTensor& t,
                                       std::span<const mode_t> mode_order) {
  MDCP_CHECK(mode_order.size() == t.order());
  auto perm = t.sorted_permutation(mode_order);
  std::vector<nnz_t> fibers(t.order(), 0);
  if (t.nnz() == 0) return fibers;
  for (mode_t l = 0; l < t.order(); ++l) fibers[l] = 1;
  for (nnz_t i = 1; i < perm.size(); ++i) {
    // Find the first level at which this tuple differs from its predecessor;
    // it opens a new fiber at that level and at every deeper level.
    mode_t first_diff = t.order();
    for (mode_t l = 0; l < t.order(); ++l) {
      const mode_t m = mode_order[l];
      if (t.index(m, perm[i]) != t.index(m, perm[i - 1])) {
        first_diff = l;
        break;
      }
    }
    for (mode_t l = first_diff; l < t.order(); ++l) ++fibers[l];
  }
  return fibers;
}

}  // namespace mdcp
