// Structural statistics of a sparse tensor.
//
// These feed three consumers: the dataset table (experiment T1), the CSF
// mode-ordering heuristic, and the model-driven tuner's cost model (which
// needs distinct-projection counts to predict memoized intermediate sizes).
#pragma once

#include <string>
#include <vector>

#include "tensor/coo_tensor.hpp"
#include "util/types.hpp"

namespace mdcp {

struct TensorStats {
  shape_t shape;
  nnz_t nnz = 0;
  double density = 0;  ///< nnz / prod(shape)
  std::vector<index_t> distinct_per_mode;  ///< used indices per mode
  /// Average nonzeros per used slice in each mode (nnz / distinct).
  std::vector<double> avg_slice_nnz;

  std::string to_string() const;
};

TensorStats compute_stats(const CooTensor& t);

/// Number of distinct projected tuples when the tensor's nonzeros are
/// restricted to the modes in `modes` (bitmask). This is exactly the number
/// of "kept" nonzeros of the dimension-tree node with mode set `modes`, i.e.
/// the size of the memoized intermediate.
nnz_t distinct_projection_count(const CooTensor& t, mode_set_t modes);

/// Fiber counts for a CSF mode ordering: fibers[l] = number of distinct
/// length-(l+1) prefixes of the coordinates reordered by `mode_order`.
/// fibers.back() == nnz (all tuples distinct after coalescing).
std::vector<nnz_t> prefix_fiber_counts(const CooTensor& t,
                                       std::span<const mode_t> mode_order);

}  // namespace mdcp
