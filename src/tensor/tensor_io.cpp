#include "tensor/tensor_io.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "util/error.hpp"
#include "util/faultinject.hpp"

namespace mdcp {

namespace {

struct ParsedLine {
  std::vector<index_t> coords;
  real_t value = 0;
};

[[noreturn]] void fail_line(std::size_t line_no, const std::string& what,
                            const std::string& line) {
  std::ostringstream os;
  os << ".tns line " << line_no << ": " << what << " in \"" << line << "\"";
  throw parse_error(os.str(), line_no);
}

// Field-checked parse of "i1 i2 ... iN v". Returns false for blank/comment
// lines; throws a line-numbered parse_error on malformed content. Unlike a
// stream-extraction loop, this validates every token end-to-end: trailing
// garbage, fractional or overflowing indices, and non-numeric values are all
// errors instead of silent truncation.
bool parse_line(const std::string& line, std::size_t line_no,
                ParsedLine& out) {
  const char* p = line.c_str();
  const auto skip_ws = [&p] {
    while (*p == ' ' || *p == '\t' || *p == '\r') ++p;
  };
  skip_ws();
  if (*p == '\0' || *p == '#') return false;

  struct Token {
    const char* begin;
    const char* end;
  };
  std::vector<Token> tokens;
  while (*p != '\0') {
    const char* start = p;
    while (*p != '\0' && *p != ' ' && *p != '\t' && *p != '\r') ++p;
    tokens.push_back({start, p});
    skip_ws();
  }
  if (tokens.size() < 2)
    fail_line(line_no, "truncated record (needs >=1 index + value)", line);

  out.coords.clear();
  constexpr unsigned long long kMaxIndex =
      static_cast<unsigned long long>(std::numeric_limits<index_t>::max());
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(tok.begin, &end, 10);
    if (end != tok.end || end == tok.begin)
      fail_line(line_no, "non-integer index token", line);
    // v itself must fit index_t (not just v-1): the inferred shape stores
    // max(index)+1, which must not wrap.
    if (errno == ERANGE || v < 1 || static_cast<unsigned long long>(v) > kMaxIndex)
      fail_line(line_no, "index out of range (must be 1-based and fit "
                         "the 32-bit index type)",
                line);
    out.coords.push_back(static_cast<index_t>(v - 1));
  }

  const Token& vtok = tokens.back();
  errno = 0;
  char* vend = nullptr;
  const double value = std::strtod(vtok.begin, &vend);
  if (vend != vtok.end || vend == vtok.begin)
    fail_line(line_no, "non-numeric value token", line);
  if (!std::isfinite(value))
    fail_line(line_no, "non-finite value", line);
  out.value = static_cast<real_t>(value);
  return true;
}

}  // namespace

CooTensor read_tns(std::istream& in, const shape_t& shape_hint,
                   const TnsReadOptions& opts, TnsReadStats* stats) {
  TnsReadStats local;
  TnsReadStats& st = stats != nullptr ? *stats : local;
  st = TnsReadStats{};

  std::vector<ParsedLine> lines;
  std::string line;
  ParsedLine parsed;
  std::size_t arity = 0;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    st.lines_read = line_no;
    // Fault-injection site: simulate a short read (io.lines=N) by ending the
    // stream after N lines; downstream sees an ordinary shorter tensor.
    if (fault::should_inject(fault::Site::kIo, line_no)) {
      st.truncated = true;
      break;
    }
    bool is_record = false;
    try {
      is_record = parse_line(line, line_no, parsed);
    } catch (const parse_error&) {
      if (opts.strict) throw;
      ++st.skipped_malformed;
      continue;
    }
    if (!is_record) continue;
    if (arity == 0) {
      arity = parsed.coords.size();
    } else if (parsed.coords.size() != arity) {
      if (opts.strict) {
        std::ostringstream os;
        os << ".tns line " << line_no << ": record has "
           << parsed.coords.size() << " indices, expected " << arity;
        throw parse_error(os.str(), line_no);
      }
      ++st.skipped_malformed;
      continue;
    }
    if (!shape_hint.empty()) {
      if (shape_hint.size() != parsed.coords.size())
        fail_line(line_no, "record arity does not match the shape hint", line);
      for (std::size_t m = 0; m < parsed.coords.size(); ++m) {
        if (parsed.coords[m] >= shape_hint[m])
          fail_line(line_no, "index exceeds the shape hint", line);
      }
    }
    lines.push_back(parsed);
  }
  if (arity == 0) throw parse_error(".tns stream contains no nonzeros");
  st.records = lines.size();

  shape_t shape = shape_hint;
  if (shape.empty()) {
    shape.assign(arity, 0);
    for (const auto& l : lines)
      for (std::size_t m = 0; m < arity; ++m)
        shape[m] = std::max(shape[m], l.coords[m] + 1);
  } else {
    MDCP_CHECK_MSG(shape.size() == arity, "shape hint arity mismatch");
  }

  CooTensor t(shape);
  t.reserve(lines.size());
  for (const auto& l : lines) t.push_back(l.coords, l.value);
  return t;
}

CooTensor read_tns_file(const std::string& path, const shape_t& shape_hint,
                        const TnsReadOptions& opts, TnsReadStats* stats) {
  std::ifstream f(path);
  MDCP_CHECK_MSG(f.good(), "cannot open tensor file: " << path);
  return read_tns(f, shape_hint, opts, stats);
}

void write_tns(std::ostream& out, const CooTensor& tensor) {
  out.precision(17);
  for (nnz_t i = 0; i < tensor.nnz(); ++i) {
    for (mode_t m = 0; m < tensor.order(); ++m)
      out << (tensor.index(m, i) + 1) << ' ';
    out << tensor.value(i) << '\n';
  }
}

void write_tns_file(const std::string& path, const CooTensor& tensor) {
  std::ofstream f(path);
  MDCP_CHECK_MSG(f.good(), "cannot open tensor file for writing: " << path);
  write_tns(f, tensor);
}

}  // namespace mdcp
