#include "tensor/tensor_io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace mdcp {

namespace {

struct ParsedLine {
  std::vector<index_t> coords;
  real_t value = 0;
};

// Parses "i1 i2 ... iN v"; returns false for blank/comment lines.
bool parse_line(const std::string& line, ParsedLine& out) {
  std::size_t pos = line.find_first_not_of(" \t\r");
  if (pos == std::string::npos || line[pos] == '#') return false;
  std::istringstream is(line);
  out.coords.clear();
  std::vector<double> fields;
  double x;
  while (is >> x) fields.push_back(x);
  MDCP_CHECK_MSG(fields.size() >= 2,
                 "malformed .tns line (needs >=1 index + value): " << line);
  for (std::size_t i = 0; i + 1 < fields.size(); ++i) {
    MDCP_CHECK_MSG(fields[i] >= 1, "1-based .tns index must be >= 1");
    out.coords.push_back(static_cast<index_t>(fields[i]) - 1);
  }
  out.value = static_cast<real_t>(fields.back());
  return true;
}

}  // namespace

CooTensor read_tns(std::istream& in, const shape_t& shape_hint) {
  std::vector<ParsedLine> lines;
  std::string line;
  ParsedLine parsed;
  std::size_t arity = 0;
  while (std::getline(in, line)) {
    if (!parse_line(line, parsed)) continue;
    if (arity == 0) {
      arity = parsed.coords.size();
    } else {
      MDCP_CHECK_MSG(parsed.coords.size() == arity,
                     "inconsistent arity in .tns stream");
    }
    lines.push_back(parsed);
  }
  MDCP_CHECK_MSG(arity > 0, ".tns stream contains no nonzeros");

  shape_t shape = shape_hint;
  if (shape.empty()) {
    shape.assign(arity, 0);
    for (const auto& l : lines)
      for (std::size_t m = 0; m < arity; ++m)
        shape[m] = std::max(shape[m], l.coords[m] + 1);
  } else {
    MDCP_CHECK_MSG(shape.size() == arity, "shape hint arity mismatch");
  }

  CooTensor t(shape);
  t.reserve(lines.size());
  for (const auto& l : lines) t.push_back(l.coords, l.value);
  return t;
}

CooTensor read_tns_file(const std::string& path, const shape_t& shape_hint) {
  std::ifstream f(path);
  MDCP_CHECK_MSG(f.good(), "cannot open tensor file: " << path);
  return read_tns(f, shape_hint);
}

void write_tns(std::ostream& out, const CooTensor& tensor) {
  out.precision(17);
  for (nnz_t i = 0; i < tensor.nnz(); ++i) {
    for (mode_t m = 0; m < tensor.order(); ++m)
      out << (tensor.index(m, i) + 1) << ' ';
    out << tensor.value(i) << '\n';
  }
}

void write_tns_file(const std::string& path, const CooTensor& tensor) {
  std::ofstream f(path);
  MDCP_CHECK_MSG(f.good(), "cannot open tensor file for writing: " << path);
  write_tns(f, tensor);
}

}  // namespace mdcp
