// Text I/O for sparse tensors in the FROSTT `.tns` format:
// one nonzero per line, 1-based indices followed by the value, plus optional
// `#`-comment lines. This is the de-facto interchange format of the sparse
// tensor community (SPLATT, ParTI, FROSTT all read it).
#pragma once

#include <iosfwd>
#include <string>

#include "tensor/coo_tensor.hpp"

namespace mdcp {

/// Reads a .tns stream. The shape is inferred as the per-mode maximum index
/// unless `shape_hint` is nonempty (then indices are validated against it).
CooTensor read_tns(std::istream& in, const shape_t& shape_hint = {});

/// Reads a .tns file from disk.
CooTensor read_tns_file(const std::string& path, const shape_t& shape_hint = {});

/// Writes the tensor in .tns format (1-based indices).
void write_tns(std::ostream& out, const CooTensor& tensor);

void write_tns_file(const std::string& path, const CooTensor& tensor);

}  // namespace mdcp
