// Text I/O for sparse tensors in the FROSTT `.tns` format:
// one nonzero per line, 1-based indices followed by the value, plus optional
// `#`-comment lines. This is the de-facto interchange format of the sparse
// tensor community (SPLATT, ParTI, FROSTT all read it).
//
// Parsing is field-checked: non-numeric tokens, non-integral or out-of-range
// indices (anything that does not fit index_t), inconsistent arity, and
// truncated records raise a line-numbered mdcp::parse_error in strict mode
// (the default). Non-strict mode skips malformed lines and counts them in
// TnsReadStats instead — for salvaging partially corrupt dumps.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "tensor/coo_tensor.hpp"

namespace mdcp {

struct TnsReadOptions {
  /// Strict (default): malformed lines raise mdcp::parse_error carrying the
  /// 1-based line number. Non-strict: malformed lines are skipped and
  /// counted in TnsReadStats::skipped_malformed.
  bool strict = true;
};

/// Per-read accounting, filled when the caller passes a TnsReadStats*.
struct TnsReadStats {
  std::size_t lines_read = 0;         ///< lines consumed (records + comments)
  std::size_t records = 0;            ///< nonzero records accepted
  std::size_t skipped_malformed = 0;  ///< lines dropped (non-strict only)
  /// True when the stream ended early via the fault-injection short-read
  /// site (io.lines=N); downstream code sees an ordinary shorter tensor.
  bool truncated = false;
};

/// Reads a .tns stream. The shape is inferred as the per-mode maximum index
/// unless `shape_hint` is nonempty (then indices are validated against it).
CooTensor read_tns(std::istream& in, const shape_t& shape_hint = {},
                   const TnsReadOptions& opts = {},
                   TnsReadStats* stats = nullptr);

/// Reads a .tns file from disk.
CooTensor read_tns_file(const std::string& path, const shape_t& shape_hint = {},
                        const TnsReadOptions& opts = {},
                        TnsReadStats* stats = nullptr);

/// Writes the tensor in .tns format (1-based indices).
void write_tns(std::ostream& out, const CooTensor& tensor);

void write_tns_file(const std::string& path, const CooTensor& tensor);

}  // namespace mdcp
