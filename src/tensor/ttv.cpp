#include "tensor/ttv.hpp"

#include <algorithm>
#include <numeric>

#include "mttkrp/microkernel.hpp"
#include "util/error.hpp"

namespace mdcp {

namespace {

// Sorted permutation of X's nonzeros by the modes in `keep` (ascending ids).
std::vector<nnz_t> projection_permutation(const CooTensor& x,
                                          const std::vector<mode_t>& keep) {
  std::vector<nnz_t> perm(x.nnz());
  std::iota(perm.begin(), perm.end(), nnz_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](nnz_t a, nnz_t b) {
    for (mode_t m : keep) {
      const index_t ia = x.index(m, a);
      const index_t ib = x.index(m, b);
      if (ia != ib) return ia < ib;
    }
    return false;
  });
  return perm;
}

bool same_projection(const CooTensor& x, const std::vector<mode_t>& keep,
                     nnz_t a, nnz_t b) {
  for (mode_t m : keep)
    if (x.index(m, a) != x.index(m, b)) return false;
  return true;
}

}  // namespace

CooTensor ttv(const CooTensor& x, mode_t mode, std::span<const real_t> v) {
  MDCP_CHECK(mode < x.order());
  MDCP_CHECK_MSG(v.size() == x.dim(mode), "TTV vector length mismatch");

  std::vector<mode_t> keep;
  for (mode_t m = 0; m < x.order(); ++m)
    if (m != mode) keep.push_back(m);

  shape_t out_shape = x.shape();
  out_shape[mode] = 1;
  CooTensor out(out_shape);
  if (x.nnz() == 0) return out;

  const auto perm = projection_permutation(x, keep);
  std::vector<index_t> c(x.order());
  real_t acc = 0;
  for (nnz_t p = 0; p < perm.size(); ++p) {
    const nnz_t i = perm[p];
    acc += x.value(i) * v[x.index(mode, i)];
    const bool group_end =
        (p + 1 == perm.size()) || !same_projection(x, keep, i, perm[p + 1]);
    if (group_end) {
      for (mode_t m = 0; m < x.order(); ++m)
        c[m] = (m == mode) ? 0 : x.index(m, i);
      out.push_back(c, acc);
      acc = 0;
    }
  }
  return out;
}

SemiSparseTensor ttm(const CooTensor& x, mode_t mode, const Matrix& u) {
  MDCP_CHECK(mode < x.order());
  MDCP_CHECK_MSG(u.rows() == x.dim(mode), "TTM matrix row count mismatch");
  const index_t r = u.cols();

  SemiSparseTensor z;
  for (mode_t m = 0; m < x.order(); ++m)
    if (m != mode) z.modes.push_back(m);
  z.idx.resize(z.modes.size());
  if (x.nnz() == 0) {
    z.values.resize(0, r);
    return z;
  }

  const auto perm = projection_permutation(x, z.modes);

  // First pass: count groups to size the value matrix.
  nnz_t groups = 1;
  for (nnz_t p = 1; p < perm.size(); ++p)
    groups += !same_projection(x, z.modes, perm[p], perm[p - 1]);
  z.values.resize(static_cast<index_t>(groups), r, 0);
  for (auto& arr : z.idx) arr.reserve(groups);

  const mk::Kernel mk(r);
  nnz_t g = 0;
  for (nnz_t p = 0; p < perm.size(); ++p) {
    const nnz_t i = perm[p];
    if (p > 0 && !same_projection(x, z.modes, i, perm[p - 1])) ++g;
    if (p == 0 || g == z.idx[0].size()) {
      // New group: record its projected coordinates.
      for (std::size_t mp = 0; mp < z.modes.size(); ++mp)
        z.idx[mp].push_back(x.index(z.modes[mp], i));
    }
    mk.axpy_accum(z.values.row(static_cast<index_t>(g)).data(),
                  u.row(x.index(mode, i)).data(), x.value(i));
  }
  return z;
}

}  // namespace mdcp
