// Standalone sparse tensor contractions: tensor-times-vector (TTV) and
// tensor-times-matrix returning a semi-sparse tensor (TTM).
//
// These are the primitive operations the memoized engines fuse internally;
// they are exposed publicly because downstream users of a sparse-tensor
// library expect them (Tensor-Toolbox-style composition, ad-hoc analyses,
// debugging memoized intermediates).
#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "tensor/coo_tensor.hpp"

namespace mdcp {

/// Y = X ×ₘ v: contracts mode m against the vector (size dim(m)). The result
/// keeps X's other modes with mode m's size collapsed to 1 (index 0), and
/// duplicate surviving tuples are summed. Tuples whose contracted value is
/// exactly zero are retained (callers may prune()).
CooTensor ttv(const CooTensor& x, mode_t mode, std::span<const real_t> v);

/// Semi-sparse tensor: the projection of a sparse tensor onto a subset of
/// modes, with a dense length-R value vector per surviving tuple. This is
/// the "partially contracted" object memoized by the dimension-tree engine,
/// exposed as a first-class value.
struct SemiSparseTensor {
  std::vector<mode_t> modes;               ///< surviving modes, ascending
  std::vector<std::vector<index_t>> idx;   ///< [pos in modes][tuple]
  Matrix values;                           ///< tuples × R

  nnz_t tuples() const noexcept { return values.rows(); }
};

/// Z = X ×ₘ Uᵀ in the Khatri–Rao sense: for each column r of U (dim(m)×R),
/// contracts mode m against U(:,r); all R results share the projected
/// sparsity and are stored as one semi-sparse tensor. Equivalent to one
/// dimension-tree TTMV step.
SemiSparseTensor ttm(const CooTensor& x, mode_t mode, const Matrix& u);

/// Full-precision check helper: the value of Z at a given projected tuple
/// position (by linear tuple id) for column r.
inline real_t semi_sparse_value(const SemiSparseTensor& z, nnz_t tuple,
                                index_t r) {
  return z.values(static_cast<index_t>(tuple), r);
}

}  // namespace mdcp
