// Over-aligned heap allocation for numeric containers.
//
// The SIMD microkernel layer (mttkrp/microkernel.hpp) assumes its
// accumulator pointers sit on 64-byte boundaries. Workspace slabs already
// guarantee that; this allocator extends the guarantee to la::Matrix row
// storage (and any other std::vector of reals on the numeric path), so the
// base pointer of every factor matrix, output matrix, and partial slab is a
// valid aligned-load target.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

#include "util/types.hpp"

namespace mdcp {

/// Alignment (bytes) shared by workspace slabs, matrix storage, and the
/// microkernel's assume_aligned contract: one x86 cache line / AVX-512
/// vector.
inline constexpr std::size_t kNumericAlignment = 64;

/// Minimal C++17-style allocator that over-aligns every allocation.
template <typename T, std::size_t Alignment = kNumericAlignment>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T), "alignment below the type's own");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment not a power of 2");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  constexpr AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// Value storage for dense numeric containers on the microkernel path.
using aligned_real_vector = std::vector<real_t, AlignedAllocator<real_t>>;

}  // namespace mdcp
