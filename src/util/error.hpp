// Error-reporting helpers: fail fast with a precise message instead of UB.
#pragma once

#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mdcp {

/// Exception thrown by all mdcp precondition violations.
class error : public std::runtime_error {
 public:
  explicit error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A memory-budget violation: an allocation (workspace slab growth, engine
/// structure) would push the footprint past the configured budget. Carries
/// the numbers so callers — the AutoEngine degradation chain in particular —
/// can react without parsing the message.
class budget_error : public error {
 public:
  budget_error(const std::string& what_arg, std::size_t requested,
               std::size_t budget)
      : error(what_arg), requested_bytes(requested), budget_bytes(budget) {}

  std::size_t requested_bytes = 0;  ///< footprint the allocation needed
  std::size_t budget_bytes = 0;     ///< configured limit it violated
};

/// A malformed input stream (tensor files, specs). Carries the 1-based line
/// number of the offending record (0 when not line-addressable).
class parse_error : public error {
 public:
  explicit parse_error(const std::string& what_arg, std::size_t line_no = 0)
      : error(what_arg), line(line_no) {}

  std::size_t line = 0;
};

/// An unrecoverable numerical fault: CP-ALS exhausted its bounded recovery
/// budget (NaN/Inf kept reappearing) and refuses to return garbage.
class numeric_error : public error {
 public:
  explicit numeric_error(const std::string& what_arg) : error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "mdcp check failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw error(os.str());
}
}  // namespace detail

}  // namespace mdcp

/// Precondition check that is always on (not assert): tensor code dies loudly
/// on malformed input rather than corrupting memory.
#define MDCP_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::mdcp::detail::throw_check_failure(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define MDCP_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream mdcp_os_;                                           \
      mdcp_os_ << msg;                                                       \
      ::mdcp::detail::throw_check_failure(#cond, __FILE__, __LINE__,         \
                                          mdcp_os_.str());                   \
    }                                                                        \
  } while (0)
