// Error-reporting helpers: fail fast with a precise message instead of UB.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mdcp {

/// Exception thrown by all mdcp precondition violations.
class error : public std::runtime_error {
 public:
  explicit error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "mdcp check failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw error(os.str());
}
}  // namespace detail

}  // namespace mdcp

/// Precondition check that is always on (not assert): tensor code dies loudly
/// on malformed input rather than corrupting memory.
#define MDCP_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::mdcp::detail::throw_check_failure(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define MDCP_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream mdcp_os_;                                           \
      mdcp_os_ << msg;                                                       \
      ::mdcp::detail::throw_check_failure(#cond, __FILE__, __LINE__,         \
                                          mdcp_os_.str());                   \
    }                                                                        \
  } while (0)
