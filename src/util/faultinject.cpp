#include "util/faultinject.hpp"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <thread>

#include "util/error.hpp"

namespace mdcp::fault {

const char* site_name(Site s) noexcept {
  switch (s) {
    case Site::kAlloc: return "alloc";
    case Site::kNan: return "nan";
    case Site::kIo: return "io";
    case Site::kStall: return "stall";
    case Site::kSegv: return "segv";
  }
  return "?";
}

namespace {

Site site_from_name(const std::string& name) {
  for (int i = 0; i < kSiteCount; ++i) {
    const Site s = static_cast<Site>(i);
    if (name == site_name(s)) return s;
  }
  throw error("fault spec names unknown site '" + name +
              "' (known: alloc, nan, io, stall, segv)");
}

std::uint64_t parse_u64(const std::string& tok, const std::string& clause) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0')
    throw error("fault spec clause '" + clause + "' has a non-numeric value");
  return static_cast<std::uint64_t>(v);
}

}  // namespace

FaultPlan& FaultPlan::instance() {
  static FaultPlan plan;  // non-copyable (atomic counters): arm in place
  static const bool env_armed = [] {
#if MDCP_ENABLE_FAULTINJECT
    if (const char* spec = std::getenv("MDCP_FAULTINJECT");
        spec != nullptr && spec[0] != '\0') {
      plan.parse_spec(spec);
    }
#endif
    return true;
  }();
  (void)env_armed;
  return plan;
}

void FaultPlan::arm(Site site, const SiteConfig& cfg) noexcept {
  SiteState& st = sites_[static_cast<int>(site)];
  st.cfg = cfg;
  st.visits.store(0, std::memory_order_relaxed);
  st.injected.store(0, std::memory_order_relaxed);
  const std::uint32_t bit = 1u << static_cast<int>(site);
  if (cfg.armed())
    armed_sites_.fetch_or(bit, std::memory_order_relaxed);
  else
    armed_sites_.fetch_and(~bit, std::memory_order_relaxed);
}

void FaultPlan::parse_spec(const std::string& spec) {
  // Accumulate per-site configs first so "nan.nth=2;nan.limit=1" composes,
  // then arm in one shot per touched site (resetting its counters).
  SiteConfig cfgs[kSiteCount];
  bool touched[kSiteCount] = {};
  for (int i = 0; i < kSiteCount; ++i) cfgs[i] = config(static_cast<Site>(i));

  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;

    const std::size_t dot = clause.find('.');
    const std::size_t eq = clause.find('=');
    if (dot == std::string::npos || eq == std::string::npos || eq < dot)
      throw error("fault spec clause '" + clause +
                  "' is not of the form site.key=value");
    const Site site = site_from_name(clause.substr(0, dot));
    const std::string key = clause.substr(dot + 1, eq - dot - 1);
    const std::uint64_t value = parse_u64(clause.substr(eq + 1), clause);

    SiteConfig& cfg = cfgs[static_cast<int>(site)];
    if (key == "nth") {
      cfg.nth = value;
    } else if (key == "every") {
      cfg.every = value;
    } else if (key == "limit") {
      cfg.limit = value;
    } else if (key == "bytes" || key == "lines" || key == "ms") {
      cfg.threshold = value;
    } else {
      throw error("fault spec clause '" + clause + "' has unknown key '" +
                  key + "' (known: nth, every, limit, bytes, lines, ms)");
    }
    touched[static_cast<int>(site)] = true;
  }
  for (int i = 0; i < kSiteCount; ++i)
    if (touched[i]) arm(static_cast<Site>(i), cfgs[i]);
}

void FaultPlan::reset() noexcept {
  for (int i = 0; i < kSiteCount; ++i) arm(static_cast<Site>(i), SiteConfig{});
}

bool FaultPlan::should_inject(Site site, std::uint64_t measure) noexcept {
  SiteState& st = sites_[static_cast<int>(site)];
  const SiteConfig& cfg = st.cfg;
  if (!cfg.armed()) return false;

  const std::uint64_t visit =
      st.visits.fetch_add(1, std::memory_order_relaxed) + 1;

  bool fire = false;
  if (cfg.nth != 0) {
    if (visit == cfg.nth) {
      fire = true;
    } else if (cfg.every != 0 && visit > cfg.nth &&
               (visit - cfg.nth) % cfg.every == 0) {
      fire = true;
    }
  }
  if (!fire && cfg.threshold != 0 && measure > cfg.threshold) fire = true;
  if (!fire) return false;

  if (cfg.limit != 0) {
    // Claim an injection slot; back off once the budget is exhausted.
    std::uint64_t used = st.injected.load(std::memory_order_relaxed);
    do {
      if (used >= cfg.limit) return false;
    } while (!st.injected.compare_exchange_weak(used, used + 1,
                                                std::memory_order_relaxed));
    return true;
  }
  st.injected.fetch_add(1, std::memory_order_relaxed);
  return true;
}

SiteConfig FaultPlan::config(Site site) const noexcept {
  return sites_[static_cast<int>(site)].cfg;
}

std::uint64_t FaultPlan::visits(Site site) const noexcept {
  return sites_[static_cast<int>(site)].visits.load(std::memory_order_relaxed);
}

std::uint64_t FaultPlan::injected(Site site) const noexcept {
  return sites_[static_cast<int>(site)].injected.load(
      std::memory_order_relaxed);
}

std::uint64_t FaultPlan::injected_total() const noexcept {
  std::uint64_t n = 0;
  for (int i = 0; i < kSiteCount; ++i) n += injected(static_cast<Site>(i));
  return n;
}

void inject_stall() noexcept {
  std::uint64_t ms = FaultPlan::instance().config(Site::kStall).threshold;
  if (ms == 0) ms = 1000;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void inject_segv() noexcept {
  // raise() instead of a wild store: same handler path, no UB the optimizer
  // may reorder away.
  std::raise(SIGSEGV);
  std::abort();  // unreachable unless SIGSEGV is blocked
}

}  // namespace mdcp::fault
