// Deterministic fault-injection harness for robustness testing.
//
// Production code is sprinkled with *injection sites* — the workspace
// allocator, the kernel-output path, the tensor reader — that consult a
// process-wide FaultPlan before doing their real work. A plan arms a site
// with a deterministic trigger (fire on the nth visit, fire past a byte
// threshold, fire every k visits after that) so a ctest run can replay the
// exact same failure schedule every time. Plans come from the
// MDCP_FAULTINJECT environment variable or from the programmatic API.
//
// The whole harness is compiled behind MDCP_ENABLE_FAULTINJECT. When the
// flag is off (the default), `armed()` is a constexpr false and every
// `should_inject` call folds away — production binaries carry zero cost and
// zero behavior change. The FaultPlan class itself stays declared either
// way so tests can reference it under #if without shims.
//
// Spec grammar (environment variable MDCP_FAULTINJECT or parse_spec()):
//
//   spec    := clause (';' clause)*
//   clause  := site '.' key '=' value
//   site    := 'alloc' | 'nan' | 'io' | 'stall' | 'segv'
//   key     := 'nth'    fire on the nth visit to the site (1-based)
//            | 'every'  after the first firing, fire on every k-th visit
//            | 'limit'  stop injecting after this many faults (0 = unlimited)
//            | 'bytes'  alloc only: fail any growth past this total footprint
//            | 'lines'  io only: truncate the stream after this many lines
//            | 'ms'     stall only: sleep duration in milliseconds
//
//   MDCP_FAULTINJECT="alloc.nth=3"            fail the 3rd workspace growth
//   MDCP_FAULTINJECT="alloc.bytes=1048576"    fail growth past 1 MiB total
//   MDCP_FAULTINJECT="nan.nth=2;nan.limit=1"  poison the 2nd kernel output
//   MDCP_FAULTINJECT="io.lines=10"            short-read after 10 tns lines
//   MDCP_FAULTINJECT="stall.nth=2;stall.ms=2000"  sleep 2 s at the 2nd
//                                             engine-compute/ALS-iteration
//                                             visit (watchdog testing)
//   MDCP_FAULTINJECT="segv.nth=5"             raise SIGSEGV on the 5th visit
//                                             (crash-forensics testing)
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#ifndef MDCP_ENABLE_FAULTINJECT
#define MDCP_ENABLE_FAULTINJECT 0
#endif

namespace mdcp::fault {

/// Injection sites compiled into the library.
enum class Site : int {
  kAlloc = 0,  ///< Workspace slab growth (throws std::bad_alloc when fired)
  kNan = 1,    ///< MTTKRP kernel output (poisons out(0,0) with a quiet NaN)
  kIo = 2,     ///< .tns reader (truncates the stream mid-record)
  kStall = 3,  ///< engine-compute / ALS-iteration liveness stall (sleeps)
  kSegv = 4,   ///< deliberate SIGSEGV (exercises the crash handlers)
};
inline constexpr int kSiteCount = 5;

/// Stable spec/site spelling ("alloc", "nan", "io", "stall", "segv").
const char* site_name(Site s) noexcept;

/// Deterministic trigger for one site. All-zero = disarmed.
struct SiteConfig {
  std::uint64_t nth = 0;    ///< fire on this visit number (1-based); 0 = off
  std::uint64_t every = 0;  ///< re-fire period after the first hit; 0 = once
  std::uint64_t limit = 0;  ///< max injections (0 = unlimited)
  /// kAlloc: fail any growth that would push the workspace total past this
  /// many bytes. kIo: truncate after this many input lines. kStall: sleep
  /// duration in milliseconds (does not trigger by itself — pair with nth).
  /// Unused for kNan/kSegv.
  std::uint64_t threshold = 0;

  bool armed() const noexcept { return nth != 0 || threshold != 0; }
};

/// Process-wide fault schedule with per-site visit/injection accounting.
/// should_inject() is safe from any thread (atomic counters); configuration
/// calls are meant for test setup, outside parallel regions.
class FaultPlan {
 public:
  /// The global plan. On first access, arms itself from the MDCP_FAULTINJECT
  /// environment variable (no-op when unset or when the harness is compiled
  /// out).
  static FaultPlan& instance();

  FaultPlan() = default;

  /// Arms `site` with `cfg`, resetting its counters.
  void arm(Site site, const SiteConfig& cfg) noexcept;

  /// Parses the spec grammar above and arms the named sites. Throws
  /// mdcp::error on a malformed spec.
  void parse_spec(const std::string& spec);

  /// Disarms every site and zeroes all counters.
  void reset() noexcept;

  /// Visit `site` and decide whether the scheduled fault fires now.
  /// `measure` feeds the site's threshold trigger: the prospective total
  /// footprint for kAlloc, the line number for kIo; pass 0 when the site has
  /// no threshold semantics. Always false when the harness is compiled out
  /// or the site is disarmed.
  bool should_inject(Site site, std::uint64_t measure = 0) noexcept;

  /// True if any site is armed (cheap: one relaxed load).
  bool armed() const noexcept {
    return armed_sites_.load(std::memory_order_relaxed) != 0;
  }

  SiteConfig config(Site site) const noexcept;
  std::uint64_t visits(Site site) const noexcept;
  std::uint64_t injected(Site site) const noexcept;
  /// Total injections across all sites.
  std::uint64_t injected_total() const noexcept;

 private:
  struct SiteState {
    SiteConfig cfg;
    std::atomic<std::uint64_t> visits{0};
    std::atomic<std::uint64_t> injected{0};
  };

  SiteState sites_[kSiteCount];
  std::atomic<std::uint32_t> armed_sites_{0};
};

#if MDCP_ENABLE_FAULTINJECT

/// Hot-path gate used by the injection sites: one relaxed load when nothing
/// is armed.
inline bool should_inject(Site site, std::uint64_t measure = 0) noexcept {
  FaultPlan& p = FaultPlan::instance();
  if (!p.armed()) return false;
  return p.should_inject(site, measure);
}
inline constexpr bool enabled() noexcept { return true; }

#else

/// Compiled out: constexpr false, so `if (fault::should_inject(...))`
/// branches fold away entirely.
inline constexpr bool should_inject(Site, std::uint64_t = 0) noexcept {
  return false;
}
inline constexpr bool enabled() noexcept { return false; }

#endif  // MDCP_ENABLE_FAULTINJECT

/// Executes a fired kStall fault: sleeps for the site's `ms` threshold
/// (default 1000 ms when unset). Call only after should_inject(kStall)
/// returned true.
void inject_stall() noexcept;

/// Executes a fired kSegv fault: raises SIGSEGV so the installed crash
/// handlers run exactly as they would for a real wild pointer.
[[noreturn]] void inject_segv() noexcept;

}  // namespace mdcp::fault
