#include "util/parallel.hpp"

#include <omp.h>

namespace mdcp {

namespace {
int g_thread_override = 0;  // 0 = use OpenMP default
}

int num_threads() noexcept {
  return g_thread_override > 0 ? g_thread_override : omp_get_max_threads();
}

void set_num_threads(int n) noexcept {
  g_thread_override = n;
  if (n > 0) omp_set_num_threads(n);
}

int thread_id() noexcept { return omp_get_thread_num(); }

int team_size() noexcept { return omp_get_num_threads(); }

ThreadScope::ThreadScope(int n) noexcept {
  if (n > 0) {
    saved_omp_ = omp_get_max_threads();
    saved_override_ = g_thread_override;
    g_thread_override = n;
    omp_set_num_threads(n);
  }
}

ThreadScope::~ThreadScope() {
  if (saved_omp_ > 0) {
    g_thread_override = saved_override_;
    omp_set_num_threads(saved_omp_);
  }
}

Range chunk_range(nnz_t n, int parts, int p) noexcept {
  if (parts <= 0) return {0, n};
  const nnz_t base = n / static_cast<nnz_t>(parts);
  const nnz_t rem = n % static_cast<nnz_t>(parts);
  const auto pu = static_cast<nnz_t>(p);
  const nnz_t begin = pu * base + (pu < rem ? pu : rem);
  const nnz_t len = base + (pu < rem ? 1 : 0);
  return {begin, begin + len};
}

}  // namespace mdcp
