// Thin OpenMP facade.
//
// Central place for thread-count control so benchmarks can sweep thread
// counts without touching environment variables, and so the library still
// compiles (serially) if OpenMP were ever unavailable.
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/flightrec.hpp"
#include "util/types.hpp"

namespace mdcp {

/// Heartbeat cadence inside parallel loops: each worker publishes a
/// flight-recorder beat every 2^k iterations (mask test, so the steady-state
/// cost per iteration is one AND + one predictable branch). Coarse on
/// purpose — the watchdog deadlines are hundreds of milliseconds and up.
inline constexpr nnz_t kHeartbeatStride = 1024;

/// Number of threads mdcp kernels will use (defaults to OpenMP's default).
int num_threads() noexcept;

/// Override the number of threads used by all subsequent mdcp kernels.
void set_num_threads(int n) noexcept;

/// Index of the calling thread inside an mdcp parallel region (0 outside).
int thread_id() noexcept;

/// Size of the current parallel team (1 outside a parallel region).
int team_size() noexcept;

/// RAII thread-count override: constructs with `n > 0` to switch the OpenMP
/// thread count for the enclosed scope and restore the previous setting on
/// destruction; `n <= 0` is a no-op. Used by KernelContext::threads so one
/// engine can run with its own thread budget without disturbing the global
/// setting.
class ThreadScope {
 public:
  explicit ThreadScope(int n) noexcept;
  ~ThreadScope();
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  int saved_omp_ = 0;       // 0 = nothing to restore
  int saved_override_ = 0;  // previous library-wide override
};

/// Splits [0, n) into `parts` contiguous chunks and returns chunk `p` as
/// [begin, end). Chunks differ in size by at most one element.
struct Range {
  nnz_t begin;
  nnz_t end;

  nnz_t size() const noexcept { return end - begin; }
};
Range chunk_range(nnz_t n, int parts, int p) noexcept;

/// Runs fn(i) for i in [0, n) with OpenMP static scheduling.
template <typename Fn>
void parallel_for(nnz_t n, Fn&& fn) {
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    if ((static_cast<nnz_t>(i) & (kHeartbeatStride - 1)) == 0) {
      obs::fr_beat(obs::FrPhase::kParallelFor, i);
    }
    fn(static_cast<nnz_t>(i));
  }
}

/// Runs fn(i) with dynamic scheduling in contiguous chunks of `grain`
/// iterations (irregular per-iteration work, e.g. reduction sets of wildly
/// varying size).
template <typename Fn>
void parallel_for_dynamic(nnz_t n, Fn&& fn, nnz_t grain = 64) {
  const auto chunk = static_cast<std::int64_t>(grain == 0 ? 1 : grain);
#pragma omp parallel for schedule(dynamic, chunk)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    if ((static_cast<nnz_t>(i) & (kHeartbeatStride - 1)) == 0) {
      obs::fr_beat(obs::FrPhase::kParallelFor, i);
    }
    fn(static_cast<nnz_t>(i));
  }
}

/// Runs fn(tid, range) once per team member with a contiguous static
/// partition of [0, n): thread `tid` owns `range` exclusively. This is the
/// shape kernels use to pair a per-thread Workspace slab with a fixed slice
/// of the iteration space instead of allocating scratch inside the loop.
template <typename Fn>
void parallel_for_chunked(nnz_t n, Fn&& fn) {
#pragma omp parallel
  {
    const int parts = team_size();
    const int tid = thread_id();
    obs::fr_beat(obs::FrPhase::kParallelFor, tid);
    fn(tid, chunk_range(n, parts, tid));
  }
}

}  // namespace mdcp
