// Thin OpenMP facade.
//
// Central place for thread-count control so benchmarks can sweep thread
// counts without touching environment variables, and so the library still
// compiles (serially) if OpenMP were ever unavailable.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/types.hpp"

namespace mdcp {

/// Number of threads mdcp kernels will use (defaults to OpenMP's default).
int num_threads() noexcept;

/// Override the number of threads used by all subsequent mdcp kernels.
void set_num_threads(int n) noexcept;

/// Index of the calling thread inside an mdcp parallel region (0 outside).
int thread_id() noexcept;

/// Splits [0, n) into `parts` contiguous chunks and returns chunk `p` as
/// [begin, end). Chunks differ in size by at most one element.
struct Range {
  nnz_t begin;
  nnz_t end;
};
Range chunk_range(nnz_t n, int parts, int p) noexcept;

/// Runs fn(i) for i in [0, n) with OpenMP static scheduling.
template <typename Fn>
void parallel_for(nnz_t n, Fn&& fn) {
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    fn(static_cast<nnz_t>(i));
  }
}

/// Runs fn(i) with dynamic scheduling (irregular per-iteration work, e.g.
/// reduction sets of wildly varying size).
template <typename Fn>
void parallel_for_dynamic(nnz_t n, Fn&& fn, nnz_t grain = 64) {
#pragma omp parallel for schedule(dynamic, 64)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    fn(static_cast<nnz_t>(i));
  }
  (void)grain;
}

}  // namespace mdcp
