#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mdcp {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    sm = splitmix64(sm);
    s = sm;
  }
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

real_t Rng::next_normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  real_t u1 = next_real();
  while (u1 <= 0) u1 = next_real();
  const real_t u2 = next_real();
  const real_t mag = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_normal_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

ZipfSampler::ZipfSampler(index_t n, double exponent) : n_(n) {
  MDCP_CHECK_MSG(n > 0, "Zipf universe must be nonempty");
  MDCP_CHECK_MSG(exponent >= 0, "Zipf exponent must be nonnegative");
  cdf_.resize(n);
  double acc = 0;
  for (index_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i) + 1.0, exponent);
    cdf_[i] = acc;
  }
  const double inv = 1.0 / acc;
  for (auto& c : cdf_) c *= inv;
  cdf_.back() = 1.0;  // guard against round-off
}

index_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_real();
  // Binary search for the first cdf entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u)
      lo = mid + 1;
    else
      hi = mid;
  }
  return static_cast<index_t>(lo);
}

}  // namespace mdcp
