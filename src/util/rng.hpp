// Deterministic, fast pseudo-random number generation.
//
// Every stochastic component of mdcp (synthetic tensor generators, factor
// initialization, sampling sketches) draws from these generators with an
// explicit seed, so all experiments are bitwise reproducible.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace mdcp {

/// SplitMix64: used to seed xoshiro and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** — high-quality 64-bit generator (Blackman & Vigna).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  /// Raw 64 random bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  real_t next_real() noexcept {
    return static_cast<real_t>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform index in [0, bound).
  index_t next_index(index_t bound) noexcept {
    return static_cast<index_t>(next_below(bound));
  }

  /// Standard normal via Box–Muller (caches the second deviate).
  real_t next_normal() noexcept;

 private:
  std::uint64_t s_[4];
  real_t cached_normal_ = 0;
  bool has_cached_normal_ = false;
};

/// Draws from a Zipf(s) distribution over {0, .., n-1} using inverse-CDF on a
/// precomputed table. Used to synthesize realistically skewed tensor modes.
class ZipfSampler {
 public:
  ZipfSampler(index_t n, double exponent);

  index_t sample(Rng& rng) const;
  index_t universe() const noexcept { return n_; }

 private:
  index_t n_;
  std::vector<double> cdf_;
};

}  // namespace mdcp
