// Small helpers over std::span used across kernels.
#pragma once

#include <numeric>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace mdcp {

/// Exclusive prefix sum: out[i] = sum of in[0..i). out has size in.size()+1
/// with out.back() == total. Used to build CSR-style offset arrays.
template <typename T>
std::vector<T> exclusive_scan_with_total(std::span<const T> in) {
  std::vector<T> out(in.size() + 1);
  T acc{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc += in[i];
  }
  out[in.size()] = acc;
  return out;
}

/// Identity permutation [0, n).
inline std::vector<nnz_t> identity_permutation(nnz_t n) {
  std::vector<nnz_t> p(n);
  std::iota(p.begin(), p.end(), nnz_t{0});
  return p;
}

}  // namespace mdcp
