// Wall-clock timing utilities for benchmarks and CP-ALS phase dissection.
//
// Both timers read obs::clock_ns() — the same monotonic timebase the span
// tracer stamps events with — so KernelStats/PhaseTimer seconds line up
// exactly with span positions on an exported trace timeline.
#pragma once

#include <cstdint>

#include "obs/clock.hpp"

namespace mdcp {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept { reset(); }

  void reset() noexcept { start_ns_ = obs::clock_ns(); }

  /// Timestamp of construction / the last reset(), on the tracer timebase.
  std::uint64_t start_ns() const noexcept { return start_ns_; }

  /// Nanoseconds elapsed since construction or the last reset().
  std::uint64_t elapsed_ns() const noexcept {
    return obs::clock_ns() - start_ns_;
  }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

  double millis() const noexcept { return seconds() * 1e3; }

 private:
  std::uint64_t start_ns_ = 0;
};

/// Accumulates time across repeated start/stop intervals; used to dissect a
/// CP-ALS iteration into MTTKRP / dense-update / fit phases.
class PhaseTimer {
 public:
  void start() noexcept { t_.reset(); }
  void stop() noexcept {
    last_ = t_.seconds();
    total_ += last_;
    ++count_;
  }
  double total_seconds() const noexcept { return total_; }
  /// Duration of the most recent start()/stop() interval.
  double last_seconds() const noexcept { return last_; }
  std::uint64_t count() const noexcept { return count_; }
  void clear() noexcept {
    total_ = 0;
    last_ = 0;
    count_ = 0;
  }

 private:
  WallTimer t_;
  double total_ = 0;
  double last_ = 0;
  std::uint64_t count_ = 0;
};

}  // namespace mdcp
