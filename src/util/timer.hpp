// Wall-clock timing utilities for benchmarks and CP-ALS phase dissection.
#pragma once

#include <chrono>
#include <cstdint>

namespace mdcp {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept { reset(); }

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time across repeated start/stop intervals; used to dissect a
/// CP-ALS iteration into MTTKRP / dense-update / fit phases.
class PhaseTimer {
 public:
  void start() noexcept { t_.reset(); }
  void stop() noexcept {
    total_ += t_.seconds();
    ++count_;
  }
  double total_seconds() const noexcept { return total_; }
  std::uint64_t count() const noexcept { return count_; }
  void clear() noexcept {
    total_ = 0;
    count_ = 0;
  }

 private:
  WallTimer t_;
  double total_ = 0;
  std::uint64_t count_ = 0;
};

}  // namespace mdcp
