// Core scalar and index types shared by every mdcp module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace mdcp {

/// Floating-point type used for all tensor values and factor matrices.
using real_t = double;

/// Index type for coordinates within a single tensor mode.
/// 32 bits covers mode sizes up to ~4.29e9, which exceeds every published
/// sparse-tensor dataset while halving index-array memory traffic.
using index_t = std::uint32_t;

/// Type for counting nonzeros / tuple positions (may exceed 2^32).
using nnz_t = std::uint64_t;

/// Mode identifier (tensor order N is small, <= 64 in practice).
using mode_t = std::uint16_t;

/// Sentinel for "no index".
inline constexpr index_t kInvalidIndex = std::numeric_limits<index_t>::max();

/// Maximum supported tensor order. A compile-time bound lets hot kernels use
/// small fixed-size stack buffers instead of heap allocation per tuple.
inline constexpr mode_t kMaxOrder = 16;

/// A set of modes represented as a bitmask (order <= kMaxOrder <= 16 bits
/// fits easily in 32). Bit n set means mode n belongs to the set.
using mode_set_t = std::uint32_t;

/// Convenience: bitmask with the low `n` bits set (all modes of an order-n
/// tensor).
constexpr mode_set_t all_modes(mode_t n) noexcept {
  return (n >= 32) ? ~mode_set_t{0} : ((mode_set_t{1} << n) - 1u);
}

constexpr bool mode_in(mode_set_t set, mode_t m) noexcept {
  return (set >> m) & 1u;
}

constexpr int mode_count(mode_set_t set) noexcept {
  return __builtin_popcount(set);
}

/// Shape of a tensor: size of each mode.
using shape_t = std::vector<index_t>;

}  // namespace mdcp
