#include "util/workspace.hpp"

#include <algorithm>
#include <new>
#include <sstream>

#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/parallel.hpp"

namespace mdcp {

Workspace::~Workspace() { release(); }

std::span<std::byte> Workspace::thread_scratch_bytes(std::size_t bytes) {
  if (bytes == 0) return {};
  const int tid = thread_id();
  MDCP_CHECK_MSG(tid >= 0 && tid < kMaxThreads,
                 "thread id " << tid << " exceeds workspace capacity");
  Slab& slab = slabs_[tid];
  if (slab.capacity < bytes) grow(slab, bytes);
  return {slab.data, bytes};
}

void Workspace::grow(Slab& slab, std::size_t bytes) {
  // Geometric growth, rounded up to the alignment, so a sequence of
  // increasing requests costs O(log max) allocations total.
  std::size_t cap = std::max(bytes, slab.capacity * 2);
  cap = (cap + kAlignment - 1) / kAlignment * kAlignment;
  const std::size_t budget = budget_bytes_.load(std::memory_order_relaxed);
  const std::size_t prospective =
      total_bytes_.load(std::memory_order_relaxed) + (cap - slab.capacity);
  if (budget != 0 && prospective > budget) {
    // Geometric over-growth must not trip a budget the exact request fits
    // in: retry with the tight size before giving up.
    cap = (bytes + kAlignment - 1) / kAlignment * kAlignment;
    const std::size_t tight =
        total_bytes_.load(std::memory_order_relaxed) + (cap - slab.capacity);
    if (tight > budget) {
      std::ostringstream os;
      os << "workspace memory budget exceeded: slab growth to " << cap
         << " B would raise the arena total to " << tight << " B (budget "
         << budget << " B)";
      throw budget_error(os.str(), tight, budget);
    }
  }
  if (fault::should_inject(fault::Site::kAlloc, prospective))
    throw std::bad_alloc{};
  auto* fresh = static_cast<std::byte*>(
      ::operator new(cap, std::align_val_t{kAlignment}));
  if (slab.data != nullptr)
    ::operator delete(slab.data, std::align_val_t{kAlignment});
  const std::size_t delta = cap - slab.capacity;
  slab.data = fresh;
  slab.capacity = cap;
  const std::size_t total =
      total_bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
  std::size_t prev = peak_bytes_.load(std::memory_order_relaxed);
  while (prev < total && !peak_bytes_.compare_exchange_weak(
                             prev, total, std::memory_order_relaxed)) {
  }
}

void Workspace::reserve(int threads, std::size_t bytes_per_thread) {
  if (bytes_per_thread == 0) return;
  MDCP_CHECK_MSG(threads >= 0 && threads <= kMaxThreads,
                 "cannot reserve " << threads << " workspace slabs");
  for (int t = 0; t < threads; ++t) {
    if (slabs_[t].capacity < bytes_per_thread)
      grow(slabs_[t], bytes_per_thread);
  }
}

void Workspace::release() noexcept {
  for (Slab& slab : slabs_) {
    if (slab.data != nullptr)
      ::operator delete(slab.data, std::align_val_t{kAlignment});
    slab.data = nullptr;
    slab.capacity = 0;
  }
  total_bytes_.store(0, std::memory_order_relaxed);
}

Workspace& default_workspace() {
  static Workspace ws;
  return ws;
}

}  // namespace mdcp
