// Kernel execution runtime: per-thread scratch arenas and shared counters.
//
// Every MTTKRP engine draws its per-thread numeric scratch from a Workspace
// instead of allocating inside hot loops. A Workspace owns one slab per
// thread id; `thread_scratch(n)` returns the calling thread's slab (grown
// geometrically, 64-byte aligned, reused across calls), so after the first
// compute() of a given size the numeric path performs no heap allocation.
//
// KernelContext bundles the workspace with a thread-count override and an
// optional shared KernelStats sink; it is the single injection point the
// engine registry, the tuner, and the benchmarks use to control where
// kernels get their scratch and where their counters go.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "util/aligned.hpp"

namespace mdcp {

class Workspace {
 public:
  /// Slab alignment (one x86 cache line / AVX-512 vector). Matches the
  /// matrix-storage alignment so the microkernel's assume_aligned contract
  /// holds for every slab-origin accumulator pointer.
  static constexpr std::size_t kAlignment = kNumericAlignment;
  static_assert(kAlignment % sizeof(real_t) == 0 &&
                    (kAlignment & (kAlignment - 1)) == 0,
                "slab stride must be a power-of-two multiple of real_t");
  /// Upper bound on concurrently served thread ids.
  static constexpr int kMaxThreads = 256;

  Workspace() = default;
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Returns the calling thread's scratch slab, at least `bytes` large.
  /// Grows the slab if needed (geometric, so amortized allocation-free);
  /// contents are uninitialized. Safe to call concurrently from different
  /// threads — each thread id owns a distinct slab.
  std::span<std::byte> thread_scratch_bytes(std::size_t bytes);

  /// Typed view of the calling thread's slab: `count` elements of T.
  template <typename T>
  std::span<T> thread_scratch(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T> &&
                      std::is_trivially_default_constructible_v<T>,
                  "workspace scratch holds raw POD data only");
    static_assert(alignof(T) <= kAlignment, "over-aligned scratch type");
    auto raw = thread_scratch_bytes(count * sizeof(T));
    return {reinterpret_cast<T*>(raw.data()), count};
  }

  /// Pre-grows the slabs of thread ids [0, threads) to `bytes_per_thread`
  /// so the first compute() call is already allocation-free. Must be called
  /// outside parallel regions (it touches other threads' slabs).
  void reserve(int threads, std::size_t bytes_per_thread);

  /// Caps the total bytes this arena may hold across all slabs (0 =
  /// unlimited, the default). A growth that would push allocated_bytes()
  /// past the budget throws mdcp::budget_error *before* allocating, leaving
  /// the arena unchanged — callers (the AutoEngine degradation chain) can
  /// catch it and fall back to a cheaper engine. Set outside parallel
  /// regions.
  void set_budget_bytes(std::size_t bytes) noexcept {
    budget_bytes_.store(bytes, std::memory_order_relaxed);
  }
  std::size_t budget_bytes() const noexcept {
    return budget_bytes_.load(std::memory_order_relaxed);
  }

  /// Bytes currently allocated across all slabs.
  std::size_t allocated_bytes() const noexcept {
    return total_bytes_.load(std::memory_order_relaxed);
  }

  /// Largest allocated_bytes() observed since construction / reset_peak().
  std::size_t peak_bytes() const noexcept {
    return peak_bytes_.load(std::memory_order_relaxed);
  }

  /// Resets the high-water mark to the current allocation (used to attribute
  /// scratch peaks to one engine when a workspace is shared).
  void reset_peak() noexcept {
    peak_bytes_.store(allocated_bytes(), std::memory_order_relaxed);
  }

  /// Capacity of thread `tid`'s slab in bytes. Slabs only grow, so this is
  /// that thread's scratch high-water mark since construction (or the last
  /// release()). Read outside parallel regions — slab growth is not
  /// synchronized with this accessor.
  std::size_t thread_slab_bytes(int tid) const noexcept {
    return (tid >= 0 && tid < kMaxThreads) ? slabs_[tid].capacity : 0;
  }

  /// Frees every slab. Outstanding spans are invalidated; must be called
  /// outside parallel regions.
  void release() noexcept;

 private:
  struct Slab {
    std::byte* data = nullptr;
    std::size_t capacity = 0;
  };

  void grow(Slab& slab, std::size_t bytes);

  Slab slabs_[kMaxThreads];
  std::atomic<std::size_t> total_bytes_{0};
  std::atomic<std::size_t> peak_bytes_{0};
  std::atomic<std::size_t> budget_bytes_{0};
};

/// Process-wide default arena used when a KernelContext names no workspace.
Workspace& default_workspace();

/// Caller-side override for the parallel schedule of MTTKRP kernels.
/// kAuto lets each engine's heuristic pick per mode (skew × threads ×
/// output size; see sched/schedule.hpp); the forced modes pin one schedule
/// for benchmarking, testing, and strategy-layer control. Kernels whose
/// outputs are never shared between tiles (pure scatter copies, independent
/// columns) ignore a kPrivatized request — there is nothing to privatize.
enum class ScheduleMode : std::uint8_t {
  kAuto = 0,
  kOwner = 1,       ///< owner-computes: whole-group tiles, race-free
  kPrivatized = 2,  ///< split tiles + per-thread partial outputs
};

/// Uniform per-engine counters recorded by the MttkrpEngine base class:
/// wall-clock split into the symbolic (prepare) and numeric (compute)
/// phases, call counts, approximate numeric flops, and the scratch
/// high-water mark of the engine's workspace.
struct KernelStats {
  double symbolic_seconds = 0;
  double numeric_seconds = 0;
  std::uint64_t prepare_calls = 0;
  std::uint64_t compute_calls = 0;
  std::uint64_t flops = 0;  ///< approximate; engines report mul+add counts
  std::size_t peak_scratch_bytes = 0;

  // Parallel-schedule telemetry (see sched/schedule.hpp). A "launch" is one
  // scheduled parallel kernel region; engines with multiple phases (or
  // memoized node chains) may launch several times per compute().
  std::uint64_t owner_launches = 0;
  std::uint64_t privatized_launches = 0;
  /// sched::Schedule of the most recent launch (255 = none yet).
  std::uint8_t last_schedule = 255;
  int last_tiles = 0;
  /// Static string naming why the last schedule was chosen ("skewed",
  /// "single-thread", "forced-owner", ...).
  const char* last_sched_reason = "";

  // Microkernel telemetry (see mttkrp/microkernel.hpp): the R-tile width the
  // rank-blocked dispatcher selected for the most recent compute() (32, 16,
  // or 8; 0 = scalar remainder only, i.e. R < 8 or no rank-blocked loop).
  std::uint32_t last_tile = 0;

  // Plan-provenance telemetry: how the last prepared plan was chosen.
  // "model" = analytic cost-model ranking, "history" = measured-best
  // override from the run-history store (see obs/history.hpp), "" = the
  // engine is not model-driven (fixed engines never set it).
  const char* plan_source = "";

  // Fault-tolerance telemetry: engine fallbacks taken by the degradation
  // chain when a predicted or actual allocation exceeded the memory budget
  // (see model/tuner.hpp).
  std::uint64_t degradations = 0;
  /// Static string naming why the last degradation fired
  /// ("predicted-over-budget", "budget-exceeded", "alloc-failure"; "" =
  /// none).
  const char* last_degradation_reason = "";

  /// Field-wise delta against an earlier snapshot of the same stats object
  /// (peaks are carried over, not subtracted). Used to attribute one CP-ALS
  /// run's share of a long-lived engine's counters.
  KernelStats since(const KernelStats& baseline) const noexcept {
    KernelStats d;
    d.symbolic_seconds = symbolic_seconds - baseline.symbolic_seconds;
    d.numeric_seconds = numeric_seconds - baseline.numeric_seconds;
    d.prepare_calls = prepare_calls - baseline.prepare_calls;
    d.compute_calls = compute_calls - baseline.compute_calls;
    d.flops = flops - baseline.flops;
    d.peak_scratch_bytes = peak_scratch_bytes;
    d.owner_launches = owner_launches - baseline.owner_launches;
    d.privatized_launches = privatized_launches - baseline.privatized_launches;
    d.last_schedule = last_schedule;
    d.last_tiles = last_tiles;
    d.last_sched_reason = last_sched_reason;
    d.last_tile = last_tile;
    d.plan_source = plan_source;
    d.degradations = degradations - baseline.degradations;
    d.last_degradation_reason = last_degradation_reason;
    return d;
  }
};

/// Execution context injected into every engine: where scratch comes from,
/// how many threads kernels may use, and (optionally) where counters are
/// mirrored. Copyable by design — engines hold it by value.
struct KernelContext {
  Workspace* workspace = nullptr;  ///< null = default_workspace()
  int threads = 0;                 ///< 0 = the library-wide thread setting
  KernelStats* stats = nullptr;    ///< optional shared sink (e.g. per bench)
  /// Parallel-schedule override consulted by every engine's numeric phase
  /// (kAuto = per-mode heuristic). The strategy layer and benchmarks use
  /// this to pin owner-computes or privatized-reduction execution.
  ScheduleMode sched = ScheduleMode::kAuto;
  /// Memory budget in bytes for this execution (0 = unlimited). prepare()
  /// installs it as the workspace arena budget (over-budget scratch growth
  /// throws mdcp::budget_error), the cost model skips strategies predicted
  /// to exceed it, and the AutoEngine walks its degradation chain
  /// (dtree → alto → ttv-chain → csf → coo) on a predicted or actual
  /// violation.
  std::size_t mem_budget = 0;
  /// Cooperative cancellation flag (null = never cancelled). Checked by the
  /// CP-ALS driver between modes and iterations; set by the watchdog's
  /// `cancel` policy and by `mdcp_cli --timeout-s`. Kernels never poll it
  /// mid-compute — cancellation lands at the next mode boundary.
  const std::atomic<bool>* cancel = nullptr;
};

}  // namespace mdcp
