// Differential-testing oracle: naive dense-materialization MTTKRP.
//
// The oracle deliberately shares no code path with the library kernels.
// The sparse tensor is scattered into a dense array first — which also
// defines the semantics for duplicate coordinates (they sum) — and the
// MTTKRP is then evaluated position by position with long-double
// accumulation, so the reference is more accurate than any engine under
// test. Cost is O(prod(shape) × rank) per mode: use only on the tiny
// tensors of the differential suite.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "la/matrix.hpp"
#include "tensor/coo_tensor.hpp"

namespace mdcp::testing {

inline Matrix oracle_mttkrp(const CooTensor& t,
                            const std::vector<Matrix>& factors, mode_t mode) {
  std::size_t total = 1;
  for (mode_t m = 0; m < t.order(); ++m)
    total *= static_cast<std::size_t>(t.dim(m));

  // Materialize: duplicate coordinates fold here, exactly as every engine
  // must fold them.
  std::vector<long double> dense(total, 0.0L);
  std::vector<index_t> c(t.order());
  for (nnz_t i = 0; i < t.nnz(); ++i) {
    t.coords(i, c);
    std::size_t pos = 0;
    for (mode_t m = 0; m < t.order(); ++m)
      pos = pos * static_cast<std::size_t>(t.dim(m)) + c[m];
    dense[pos] += static_cast<long double>(t.value(i));
  }

  const index_t r = factors[0].cols();
  std::vector<long double> acc(
      static_cast<std::size_t>(t.dim(mode)) * static_cast<std::size_t>(r),
      0.0L);
  std::vector<index_t> p(t.order(), 0);
  for (std::size_t lin = 0; lin < total; ++lin) {
    const long double v = dense[lin];
    if (v != 0.0L) {
      std::size_t rem = lin;
      for (mode_t m = t.order(); m-- > 0;) {
        p[m] = static_cast<index_t>(rem % t.dim(m));
        rem /= t.dim(m);
      }
      for (index_t k = 0; k < r; ++k) {
        long double prod = v;
        for (mode_t m = 0; m < t.order(); ++m)
          if (m != mode)
            prod *= static_cast<long double>(factors[m](p[m], k));
        acc[static_cast<std::size_t>(p[mode]) * r + k] += prod;
      }
    }
  }

  Matrix out;
  out.resize(t.dim(mode), r, 0);
  for (index_t i = 0; i < t.dim(mode); ++i)
    for (index_t k = 0; k < r; ++k)
      out(i, k) =
          static_cast<real_t>(acc[static_cast<std::size_t>(i) * r + k]);
  return out;
}

/// Largest |oracle - got| entry, scaled by max(1, ||oracle||_inf) so the
/// bound is relative for large values and absolute near zero.
inline double max_scaled_error(const Matrix& oracle, const Matrix& got) {
  if (oracle.rows() != got.rows() || oracle.cols() != got.cols())
    return std::numeric_limits<double>::infinity();
  double scale = 1.0, err = 0.0;
  for (index_t i = 0; i < oracle.rows(); ++i)
    for (index_t k = 0; k < oracle.cols(); ++k)
      scale = std::max(scale, std::abs(static_cast<double>(oracle(i, k))));
  for (index_t i = 0; i < oracle.rows(); ++i)
    for (index_t k = 0; k < oracle.cols(); ++k)
      err = std::max(err, std::abs(static_cast<double>(oracle(i, k)) -
                                   static_cast<double>(got(i, k))));
  return err / scale;
}

}  // namespace mdcp::testing
