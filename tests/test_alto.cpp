// Property tests for the ALTO linearization codec, the recursive stream
// partitioner, and the alto MTTKRP engine (mttkrp/alto.hpp).
//
// The codec is the correctness keystone of the engine: if encode/decode
// round-trips and key order equals lexicographic tuple order, the engine is
// "COO with one integer per nonzero". The tests here pin exactly those two
// properties over randomized shapes (orders 1–6, dims including 1 and
// non-powers-of-two), the bit-budget boundaries (exactly 64 bits, the
// 128-bit fallback, exactly 128 bits, over 128), and the shift-by-width
// hazard cases (zero-width fields above a full 64-bit budget, indices
// occupying the 64th bit). The partitioner tests check the structural
// invariants every compute path relies on: intervals disjoint and covering,
// per-mode ranges tight, and sparse-but-wide intervals stopping at the
// min-nnz floor (the engine's scattered owner path, not further splitting,
// handles their over-budget windows).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "mttkrp/alto.hpp"
#include "mttkrp/microkernel.hpp"
#include "oracle.hpp"
#include "tensor/generator.hpp"
#include "test_helpers.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/workspace.hpp"

namespace mdcp {
namespace {

using mdcp::testing::max_scaled_error;
using mdcp::testing::random_factors;

constexpr std::uint64_t kSuiteSeed = 0xa170ULL;

// Dim pool stressing the field-width arithmetic: size-1 modes (zero-width
// fields), non-powers-of-two, exact powers of two, and one-past-a-power.
const index_t kDimPool[] = {1, 2, 3, 5, 7, 9, 16, 17, 100, 1000, 4096, 65537};

shape_t random_shape(mode_t order, Rng& rng) {
  shape_t shape(order);
  for (auto& d : shape)
    d = kDimPool[rng.next_below(std::size(kDimPool))];
  return shape;
}

std::vector<index_t> random_coords(const shape_t& shape, Rng& rng) {
  std::vector<index_t> c(shape.size());
  for (std::size_t m = 0; m < shape.size(); ++m)
    c[m] = rng.next_index(shape[m]);
  return c;
}

// ---------------------------------------------------------------- codec ---

TEST(AltoCodec, BitsForDim) {
  EXPECT_EQ(AltoCodec::bits_for_dim(1), 0u);
  EXPECT_EQ(AltoCodec::bits_for_dim(2), 1u);
  EXPECT_EQ(AltoCodec::bits_for_dim(3), 2u);
  EXPECT_EQ(AltoCodec::bits_for_dim(4), 2u);
  EXPECT_EQ(AltoCodec::bits_for_dim(5), 3u);
  EXPECT_EQ(AltoCodec::bits_for_dim(65536), 16u);
  EXPECT_EQ(AltoCodec::bits_for_dim(65537), 17u);
  EXPECT_EQ(AltoCodec::bits_for_dim(4294967295u), 32u);
  EXPECT_THROW(AltoCodec::bits_for_dim(0), error);
}

TEST(AltoCodec, RoundTripRandomShapes) {
  Rng shape_rng(kSuiteSeed);
  for (mode_t order = 1; order <= 6; ++order) {
    for (int rep = 0; rep < 20; ++rep) {
      const shape_t shape = random_shape(order, shape_rng);
      const AltoCodec codec(shape);
      SCOPED_TRACE(::testing::Message()
                   << "order=" << static_cast<int>(order) << " rep=" << rep
                   << " bits=" << codec.total_bits());
      index_t total = 0;
      for (mode_t m = 0; m < order; ++m) {
        EXPECT_EQ(codec.mode_bits(m), AltoCodec::bits_for_dim(shape[m]));
        total += codec.mode_bits(m);
      }
      EXPECT_EQ(codec.total_bits(), total);
      EXPECT_EQ(codec.fits64(), total <= 64u);

      Rng rng(splitmix64(kSuiteSeed + rep * 97 + order));
      std::vector<index_t> decoded(order);
      for (int i = 0; i < 50; ++i) {
        const auto coords = random_coords(shape, rng);
        const AltoKey128 wide = codec.encode128(coords);
        codec.decode(wide, decoded);
        EXPECT_EQ(decoded, coords);
        if (codec.fits64()) {
          // The fast path must agree with the 128-bit path on narrow shapes.
          const std::uint64_t key = codec.encode64(coords);
          codec.decode(key, decoded);
          EXPECT_EQ(decoded, coords);
          EXPECT_EQ(wide.hi, 0u);
          EXPECT_EQ(wide.lo, key);
        }
      }
      // Boundary tuples: all-zeros and all-max.
      std::vector<index_t> zeros(order, 0), maxed(order);
      for (mode_t m = 0; m < order; ++m) maxed[m] = shape[m] - 1;
      const AltoKey128 zero_key = codec.encode128(zeros);
      EXPECT_EQ(zero_key.hi, 0u);
      EXPECT_EQ(zero_key.lo, 0u);
      if (codec.fits64()) EXPECT_EQ(codec.encode64(zeros), 0u);
      codec.decode(codec.encode128(maxed), decoded);
      EXPECT_EQ(decoded, maxed);
    }
  }
}

TEST(AltoCodec, ExactSixtyFourBitBudgetUsesFastPath) {
  // 4 × 16 bits = exactly 64: the fast path must hold, and the top field's
  // maximal index must populate the 64th bit without shifting by the width.
  const shape_t shape{65536, 65536, 65536, 65536};
  const AltoCodec codec(shape);
  EXPECT_EQ(codec.total_bits(), 64u);
  EXPECT_TRUE(codec.fits64());
  const std::vector<index_t> maxed{65535, 65535, 65535, 65535};
  const std::uint64_t key = codec.encode64(maxed);
  EXPECT_EQ(key, ~std::uint64_t{0});
  std::vector<index_t> decoded(4);
  codec.decode(key, decoded);
  EXPECT_EQ(decoded, maxed);
}

TEST(AltoCodec, FullWidthDimsOccupySixtyFourthBit) {
  // Two full 32-bit fields: the mode-0 index lands in bits [32, 64) — its
  // top bit is the 64th. This is the shift-by-width UB regression case.
  const shape_t shape{4294967295u, 4294967295u};
  const AltoCodec codec(shape);
  EXPECT_EQ(codec.total_bits(), 64u);
  EXPECT_TRUE(codec.fits64());
  const std::vector<index_t> coords{4294967294u, 123456789u};
  const std::uint64_t key = codec.encode64(coords);
  EXPECT_EQ(key >> 63, 1u);  // the 64th bit is in use
  std::vector<index_t> decoded(2);
  codec.decode(key, decoded);
  EXPECT_EQ(decoded, coords);
}

TEST(AltoCodec, ZeroWidthFieldAboveFullBudgetDecodesToZero) {
  // A size-1 mode stacked on top of a full 64-bit budget gives that field a
  // shift of exactly 64 — extract must return 0 without performing the
  // shift (the other UB regression case).
  const shape_t shape{1, 4294967295u, 4294967295u};
  const AltoCodec codec(shape);
  EXPECT_EQ(codec.total_bits(), 64u);
  EXPECT_EQ(codec.mode_bits(0), 0u);
  EXPECT_EQ(codec.mode_shift(0), 64u);
  const std::vector<index_t> coords{0, 4294967294u, 4294967293u};
  const std::uint64_t key = codec.encode64(coords);
  std::vector<index_t> decoded(3);
  codec.decode(key, decoded);
  EXPECT_EQ(decoded, coords);
  EXPECT_EQ(codec.extract(key, mode_t{0}), 0u);
}

TEST(AltoCodec, WideFallbackEngagesPastSixtyFourBits) {
  // 65 bits: one past the fast-path budget. Fields straddle the 64-bit
  // seam, so this also exercises the two-word extract.
  const shape_t shape{4294967295u, 4294967295u, 2};
  const AltoCodec codec(shape);
  EXPECT_EQ(codec.total_bits(), 65u);
  EXPECT_FALSE(codec.fits64());
  Rng rng(kSuiteSeed);
  std::vector<index_t> decoded(3);
  for (int i = 0; i < 200; ++i) {
    const auto coords = random_coords(shape, rng);
    codec.decode(codec.encode128(coords), decoded);
    EXPECT_EQ(decoded, coords);
  }
}

TEST(AltoCodec, ExactOneHundredTwentyEightBitBudget) {
  const shape_t shape{4294967295u, 4294967295u, 4294967295u, 4294967295u};
  const AltoCodec codec(shape);
  EXPECT_EQ(codec.total_bits(), 128u);
  const std::vector<index_t> maxed(4, 4294967294u);
  std::vector<index_t> decoded(4);
  codec.decode(codec.encode128(maxed), decoded);
  EXPECT_EQ(decoded, maxed);
  Rng rng(kSuiteSeed + 1);
  for (int i = 0; i < 200; ++i) {
    const auto coords = random_coords(shape, rng);
    codec.decode(codec.encode128(coords), decoded);
    EXPECT_EQ(decoded, coords);
  }
}

TEST(AltoCodec, RejectsZeroSizedModeAndOverwideShapes) {
  EXPECT_THROW(AltoCodec(shape_t{4, 0, 5}), error);
  EXPECT_THROW(AltoCodec(shape_t{0}), error);
  // 4 × 32 + 2 = 130 bits: past the 128-bit fallback.
  EXPECT_THROW(AltoCodec(shape_t{4294967295u, 4294967295u, 4294967295u,
                                 4294967295u, 3}),
               error);
}

TEST(AltoCodec, KeyOrderEqualsLexicographicTupleOrder) {
  Rng shape_rng(kSuiteSeed + 7);
  for (mode_t order = 1; order <= 6; ++order) {
    const shape_t shape = random_shape(order, shape_rng);
    const AltoCodec codec(shape);
    Rng rng(splitmix64(kSuiteSeed + order));
    std::vector<std::vector<index_t>> tuples;
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 200; ++i) {
      tuples.push_back(random_coords(shape, rng));
      keys.push_back(codec.encode64(tuples.back()));
    }
    for (int i = 0; i < 200; ++i)
      for (int j = i + 1; j < 200; ++j) {
        const bool lex = std::lexicographical_compare(
            tuples[i].begin(), tuples[i].end(), tuples[j].begin(),
            tuples[j].end());
        EXPECT_EQ(keys[i] < keys[j], lex)
            << "order=" << static_cast<int>(order) << " i=" << i
            << " j=" << j;
        EXPECT_EQ(keys[i] == keys[j], tuples[i] == tuples[j]);
      }
  }
}

TEST(AltoCodec, KeySortMatchesCooLexicographicSort) {
  // Sorting nonzeros by their packed key must give exactly the permutation
  // CooTensor::sorted_permutation produces for the natural mode order —
  // including ties (duplicate coordinates), since both sorts are stable.
  const shape_t shape{9, 8, 7};
  CooTensor t(shape);
  Rng rng(kSuiteSeed + 11);
  std::vector<index_t> c(3);
  for (int i = 0; i < 300; ++i) {
    for (std::size_t m = 0; m < 3; ++m)
      c[m] = rng.next_index(shape[m]) / 2 * 2 % shape[m];  // force ties
    t.push_back(c, rng.next_real());
  }
  const AltoCodec codec(shape);
  std::vector<std::uint64_t> keys(t.nnz());
  for (nnz_t i = 0; i < t.nnz(); ++i) {
    t.coords(i, c);
    keys[i] = codec.encode64(c);
  }
  std::vector<nnz_t> by_key(t.nnz());
  std::iota(by_key.begin(), by_key.end(), nnz_t{0});
  std::stable_sort(by_key.begin(), by_key.end(),
                   [&](nnz_t a, nnz_t b) { return keys[a] < keys[b]; });

  std::vector<mode_t> natural{0, 1, 2};
  EXPECT_EQ(by_key, t.sorted_permutation(natural));
}

// ---------------------------------------------------------- partitioner ---

void check_partition_invariants(const AltoCodec& codec,
                                std::span<const std::uint64_t> keys,
                                const std::vector<AltoPartition>& parts) {
  ASSERT_FALSE(parts.empty());
  EXPECT_EQ(parts.front().begin, 0u);
  EXPECT_EQ(parts.back().end, keys.size());
  for (std::size_t p = 0; p < parts.size(); ++p) {
    SCOPED_TRACE(::testing::Message() << "partition " << p);
    EXPECT_LT(parts[p].begin, parts[p].end);  // nonempty
    if (p + 1 < parts.size())
      EXPECT_EQ(parts[p].end, parts[p + 1].begin);  // disjoint and covering
    ASSERT_EQ(parts[p].lo.size(), codec.order());
    ASSERT_EQ(parts[p].hi.size(), codec.order());
    // Tightness: lo/hi must equal the exact min/max present.
    for (mode_t m = 0; m < codec.order(); ++m) {
      index_t lo = codec.extract(keys[parts[p].begin], m);
      index_t hi = lo;
      for (nnz_t i = parts[p].begin + 1; i < parts[p].end; ++i) {
        const index_t v = codec.extract(keys[i], m);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      EXPECT_EQ(parts[p].lo[m], lo);
      EXPECT_EQ(parts[p].hi[m], hi);
    }
  }
}

std::vector<std::uint64_t> sorted_keys(const CooTensor& t,
                                       const AltoCodec& codec) {
  std::vector<std::uint64_t> keys(t.nnz());
  std::vector<index_t> c(t.order());
  for (nnz_t i = 0; i < t.nnz(); ++i) {
    t.coords(i, c);
    keys[i] = codec.encode64(c);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(AltoPartitioner, InvariantsOnSkewedStream) {
  const shape_t shape{60, 50, 40};
  const CooTensor t = generate_zipf(shape, 20000, 1.4, kSuiteSeed);
  const AltoCodec codec(shape);
  const auto keys = sorted_keys(t, codec);
  // A tiny budget forces deep splitting; a small floor lets it happen.
  const auto parts = alto_partition<std::uint64_t>(
      codec, keys, 16, /*budget_bytes=*/4096, /*min_nnz=*/64);
  EXPECT_GT(parts.size(), 1u);
  check_partition_invariants(codec, keys, parts);
}

TEST(AltoPartitioner, SingleIntervalWhenBudgetIsAmple) {
  const shape_t shape{12, 10, 8};
  const CooTensor t = generate_uniform(shape, 500, kSuiteSeed + 1);
  const AltoCodec codec(shape);
  const auto keys = sorted_keys(t, codec);
  const auto parts = alto_partition<std::uint64_t>(codec, keys, 16);
  ASSERT_EQ(parts.size(), 1u);
  check_partition_invariants(codec, keys, parts);
}

TEST(AltoPartitioner, EmptyStreamYieldsNoPartitions) {
  const AltoCodec codec(shape_t{8, 8});
  EXPECT_TRUE(
      alto_partition<std::uint64_t>(codec, {}, 16).empty());
}

TEST(AltoPartitioner, SparseButWideIntervalsStopAtTheFloor) {
  // A few nonzeros scattered across huge modes: splitting cannot shrink the
  // ranges (both halves keep nearly the full span), so the partitioner must
  // stop at the min-nnz floor instead of exploding into near-singleton
  // partitions whose combined window area dwarfs the nonzero count. The
  // compute path handles such over-budget partitions without dense windows
  // (see the ScatteredOwnerPath engine tests).
  const shape_t shape{1u << 17, 1u << 17};
  CooTensor t(shape);
  Rng rng(kSuiteSeed + 3);
  std::vector<index_t> c(2);
  for (int i = 0; i < 64; ++i) {
    for (auto& v : c) v = rng.next_index(shape[0]);
    t.push_back(c, rng.next_real() + 0.5);
  }
  t.coalesce();
  const AltoCodec codec(shape);
  const auto keys = sorted_keys(t, codec);
  const auto parts = alto_partition<std::uint64_t>(codec, keys, 16);
  check_partition_invariants(codec, keys, parts);
  // 64 scattered nonzeros sit below the 4096-nnz floor: one partition.
  EXPECT_EQ(parts.size(), 1u);
}

// --------------------------------------------------------------- engine ---

void expect_matches_reference(const CooTensor& t, index_t rank,
                              std::uint64_t seed) {
  const auto factors = random_factors(t, rank, seed);
  AltoMttkrpEngine engine(t);
  Matrix out, ref;
  for (mode_t m = 0; m < t.order(); ++m) {
    SCOPED_TRACE(::testing::Message() << "mode " << static_cast<int>(m));
    engine.compute(m, factors, out);
    mttkrp_reference(t, factors, m, ref);
    EXPECT_LT(max_scaled_error(ref, out), 1e-10);
  }
}

TEST(AltoEngine, MatchesReferenceWithSizeOneModes) {
  // Zero-width fields interleaved with populated ones, orders 1–5.
  expect_matches_reference(mdcp::testing::small_tensor(1, 64, 48, kSuiteSeed),
                           7, kSuiteSeed + 1);
  expect_matches_reference(
      generate_uniform(shape_t{3, 1, 5, 1, 4}, 40, kSuiteSeed + 2), 9,
      kSuiteSeed + 3);
  expect_matches_reference(generate_uniform(shape_t{1, 1, 1}, 1, kSuiteSeed),
                           5, kSuiteSeed + 4);
}

TEST(AltoEngine, WideKeysMatchReference) {
  // 6 × 11 bits = 66: the 128-bit fallback runs the same engine paths.
  const shape_t shape(6, 2048);
  const CooTensor t = generate_uniform(shape, 1500, kSuiteSeed + 5);
  AltoMttkrpEngine engine(t);
  EXPECT_TRUE(engine.wide_keys());
  EXPECT_FALSE(engine.codec().fits64());
  expect_matches_reference(t, 17, kSuiteSeed + 6);
}

TEST(AltoEngine, ExactSixtyFourBitShapeMatchesReference) {
  // 4 × 16-bit modes: the full-budget fast path end to end, top indices
  // populating the 64th bit.
  const shape_t shape(4, 65536);
  CooTensor t(shape);
  Rng rng(kSuiteSeed + 8);
  std::vector<index_t> c(4);
  for (int i = 0; i < 200; ++i) {
    // Bias toward the extremes so maximal indices actually occur.
    for (auto& v : c)
      v = rng.next_below(2) ? 65535 - rng.next_index(8) : rng.next_index(8);
    t.push_back(c, rng.next_real() + 0.25);
  }
  t.coalesce();
  AltoMttkrpEngine engine(t);
  EXPECT_FALSE(engine.wide_keys());
  EXPECT_EQ(engine.codec().total_bits(), 64u);
  expect_matches_reference(t, 8, kSuiteSeed + 9);
}

TEST(AltoEngine, SparseWideTensorMatchesReference) {
  // The hard-cap partitioning case, end to end through the engine.
  const shape_t shape{1u << 17, 1u << 17};
  CooTensor t(shape);
  Rng rng(kSuiteSeed + 10);
  std::vector<index_t> c(2);
  for (int i = 0; i < 64; ++i) {
    for (auto& v : c) v = rng.next_index(shape[0]);
    t.push_back(c, rng.next_real() + 0.5);
  }
  t.coalesce();
  expect_matches_reference(t, 4, kSuiteSeed + 11);
}

TEST(AltoEngine, RejectsZeroSizedMode) {
  // CooTensor itself refuses zero-sized modes, so the engine can never see
  // one through the public path; the codec guard is the backstop for any
  // future caller that feeds it a raw shape.
  EXPECT_THROW((CooTensor{shape_t{4, 0, 5}}), error);
  EXPECT_THROW(AltoCodec(shape_t{4, 0, 5}), error);
}

TEST(AltoEngine, EmptyTensorYieldsZeroOutput) {
  const CooTensor t{shape_t{6, 5, 4}};
  const auto factors = random_factors(t, 7, kSuiteSeed);
  AltoMttkrpEngine engine(t);
  EXPECT_TRUE(engine.partitions().empty());
  Matrix out;
  for (mode_t m = 0; m < 3; ++m) {
    engine.compute(m, factors, out);
    for (index_t i = 0; i < out.rows(); ++i)
      for (index_t j = 0; j < out.cols(); ++j)
        EXPECT_EQ(out(i, j), 0.0);
  }
}

TEST(AltoEngine, PartitionPathBitwiseAcrossThreadCounts) {
  // The partition-window owner path must be bitwise identical across
  // thread counts: partitions are thread-independent and the merge order is
  // fixed. (The registry-driven determinism suite covers this too; this is
  // the focused regression with enough nnz to build several partitions.)
  // Dims large enough that the full accumulator window footprint
  // ((4096+3000+5000) × padded_rank × 8 ≈ 1.5 MiB) exceeds the 1 MiB
  // partition budget, forcing at least one recursive split.
  const CooTensor t =
      generate_zipf(shape_t{4096, 3000, 5000}, 30000, 1.3, kSuiteSeed + 12);
  const auto factors = random_factors(t, 16, kSuiteSeed + 13);
  struct ThreadRestore {
    ~ThreadRestore() { set_num_threads(1); }
  } restore;

  KernelContext ctx;
  ctx.sched = ScheduleMode::kOwner;
  std::vector<Matrix> baseline;
  for (int threads : {1, 2, 4}) {
    set_num_threads(threads);
    ctx.threads = threads;
    AltoMttkrpEngine engine(ctx);
    engine.prepare(t, 16);
    EXPECT_GT(engine.partitions().size(), 1u);
    for (mode_t m = 0; m < t.order(); ++m) {
      Matrix out;
      engine.compute(m, factors, out);
      if (threads == 1) {
        baseline.push_back(std::move(out));
        continue;
      }
      SCOPED_TRACE(::testing::Message()
                   << "threads=" << threads << " mode=" << static_cast<int>(m));
      ASSERT_EQ(out.rows(), baseline[m].rows());
      for (index_t i = 0; i < out.rows(); ++i)
        for (index_t j = 0; j < out.cols(); ++j)
          EXPECT_EQ(out(i, j), baseline[m](i, j));
    }
  }
}

TEST(AltoEngine, ScatteredOwnerPathMatchesReferenceAndStaysBounded) {
  // Regression for the dense-window blowup: nonzeros scattered across huge
  // modes leave every partition's per-mode range near the full dimension,
  // so dense accumulator windows would claim orders of magnitude more
  // memory (and zero/merge traffic) than the nonzero count justifies. The
  // owner path must route such partitions through the scattered direct
  // merge, keep the arena bounded, and still match the reference.
  const CooTensor t = generate_zipf(shape_t{500, 20000, 80000, 30000}, 20000,
                                    1.1, kSuiteSeed + 20);
  const index_t rank = 16;
  const auto factors = random_factors(t, rank, kSuiteSeed + 21);
  KernelContext ctx;
  ctx.sched = ScheduleMode::kOwner;
  Workspace ws;
  ctx.workspace = &ws;
  AltoMttkrpEngine engine(ctx);
  engine.prepare(t, rank);
  Matrix out, ref;
  for (mode_t m = 0; m < t.order(); ++m) {
    SCOPED_TRACE(::testing::Message() << "mode " << static_cast<int>(m));
    engine.compute(m, factors, out);
    mttkrp_reference(t, factors, m, ref);
    EXPECT_LT(max_scaled_error(ref, out), 1e-10);
  }
  // The windowed path alone would want Σ_p span_p × padded × 8 ≈ hundreds
  // of MB here; the scattered classification must keep scratch far below
  // the global window cap.
  EXPECT_LT(ws.peak_bytes(), kAltoOwnerWindowCapBytes);
}

TEST(AltoEngine, ScatteredOwnerPathBitwiseAcrossThreadCounts) {
  // The scattered direct merge assigns each output row to exactly one
  // thread and walks partitions in ascending order, so forced owner-computes
  // stays bitwise identical across thread counts even with no windows.
  const CooTensor t = generate_zipf(shape_t{300, 40000, 60000}, 25000, 1.1,
                                    kSuiteSeed + 22);
  const auto factors = random_factors(t, 16, kSuiteSeed + 23);
  struct ThreadRestore {
    ~ThreadRestore() { set_num_threads(1); }
  } restore;

  KernelContext ctx;
  ctx.sched = ScheduleMode::kOwner;
  std::vector<Matrix> baseline;
  for (int threads : {1, 2, 4}) {
    set_num_threads(threads);
    ctx.threads = threads;
    AltoMttkrpEngine engine(ctx);
    engine.prepare(t, 16);
    for (mode_t m = 0; m < t.order(); ++m) {
      Matrix out;
      engine.compute(m, factors, out);
      if (threads == 1) {
        baseline.push_back(std::move(out));
        continue;
      }
      SCOPED_TRACE(::testing::Message()
                   << "threads=" << threads << " mode=" << static_cast<int>(m));
      ASSERT_EQ(out.rows(), baseline[m].rows());
      for (index_t i = 0; i < out.rows(); ++i)
        for (index_t j = 0; j < out.cols(); ++j)
          EXPECT_EQ(out(i, j), baseline[m](i, j));
    }
  }
}

}  // namespace
}  // namespace mdcp
