#include <gtest/gtest.h>

#include <array>

#include "mttkrp/blocked_coo.hpp"
#include "mttkrp/coo_mttkrp.hpp"
#include "tensor/generator.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace mdcp {
namespace {

using mdcp::testing::random_factors;

TEST(BlockedCoo, MatchesReferenceEveryMode) {
  const auto t = generate_zipf(shape_t{300, 400, 500, 600}, 3000, 1.1, 81);
  BlockedCooEngine engine(t);
  const auto factors = random_factors(t, 6, 82);
  Matrix got, want;
  for (mode_t m = 0; m < t.order(); ++m) {
    engine.compute(m, factors, got);
    mttkrp_reference(t, factors, m, want);
    EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-9) << "mode " << m;
  }
}

class BlockedCooBits : public ::testing::TestWithParam<unsigned> {};

TEST_P(BlockedCooBits, ExactAtEveryBlockSize) {
  const auto t = generate_clustered(shape_t{200, 200, 200}, 1500,
                                    {.clusters = 8, .spread = 3.0}, 83);
  BlockedCooEngine engine(t, GetParam());
  EXPECT_EQ(engine.block_bits(), GetParam());
  const auto factors = random_factors(t, 4, 84);
  Matrix got, want;
  engine.compute(1, factors, got);
  mttkrp_reference(t, factors, 1, want);
  EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(BlockBits, BlockedCooBits,
                         ::testing::Values(1u, 3u, 5u, 7u, 8u));

TEST(BlockedCoo, RejectsInvalidBlockBits) {
  const auto t = generate_uniform(shape_t{10, 10}, 30, 85);
  EXPECT_THROW(BlockedCooEngine(t, 0), error);
  EXPECT_THROW(BlockedCooEngine(t, 9), error);
}

TEST(BlockedCoo, BlockCountBounds) {
  // Clustered data packs into far fewer blocks than nonzeros.
  const auto t = generate_clustered(shape_t{4000, 4000, 4000}, 8000,
                                    {.clusters = 16, .spread = 2.0}, 87);
  BlockedCooEngine engine(t, 7);
  EXPECT_GE(engine.num_blocks(), 16u);
  EXPECT_LT(engine.num_blocks(), t.nnz() / 4);
}

TEST(BlockedCoo, IndexMemorySmallerThanCooPlans) {
  const auto t = generate_clustered(shape_t{5000, 5000, 5000, 5000}, 20000,
                                    {.clusters = 32, .spread = 3.0}, 89);
  BlockedCooEngine bcoo(t);
  CooMttkrpEngine coo(t);
  EXPECT_LT(bcoo.memory_bytes(), coo.memory_bytes());
}

TEST(BlockedCoo, SmallDimsSingleBlockDegenerate) {
  // Tensor smaller than one block in every mode: one block, pure-local
  // offsets — the degenerate case must still be exact.
  const auto t = generate_uniform(shape_t{8, 8, 8}, 60, 91);
  BlockedCooEngine engine(t, 8);
  EXPECT_EQ(engine.num_blocks(), 1u);
  const auto factors = random_factors(t, 3, 92);
  Matrix got, want;
  engine.compute(2, factors, got);
  mttkrp_reference(t, factors, 2, want);
  EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-12);
}

TEST(BlockedCoo, BoundaryIndicesAtBlockEdges) {
  // Indices exactly at multiples of the block side exercise the base/local
  // split arithmetic.
  CooTensor t(shape_t{512, 512, 512});
  for (index_t i : {0u, 127u, 128u, 255u, 256u, 511u}) {
    t.push_back(std::array<index_t, 3>{i, 511u - i, (i * 2) % 512}, 1.0 + i);
  }
  t.coalesce();
  BlockedCooEngine engine(t, 7);
  const auto factors = random_factors(t, 4, 93);
  Matrix got, want;
  for (mode_t m = 0; m < 3; ++m) {
    engine.compute(m, factors, got);
    mttkrp_reference(t, factors, m, want);
    EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-12) << "mode " << m;
  }
}

}  // namespace
}  // namespace mdcp
