#include <gtest/gtest.h>

#include <array>

#include "tensor/compact.hpp"
#include "tensor/generator.hpp"
#include "util/error.hpp"

namespace mdcp {
namespace {

TEST(Compact, RemovesEmptySlices) {
  CooTensor t(shape_t{10, 10});
  t.push_back(std::array<index_t, 2>{2, 9}, 1.0);
  t.push_back(std::array<index_t, 2>{7, 0}, 2.0);
  const auto c = compact(t);
  EXPECT_EQ(c.tensor.dim(0), 2u);
  EXPECT_EQ(c.tensor.dim(1), 2u);
  EXPECT_EQ(c.tensor.nnz(), 2u);
  // Nonzero order preserved; values intact.
  EXPECT_DOUBLE_EQ(c.tensor.value(0), 1.0);
  EXPECT_DOUBLE_EQ(c.tensor.value(1), 2.0);
}

TEST(Compact, MappingRoundTrips) {
  CooTensor t(shape_t{100, 50, 20});
  t.push_back(std::array<index_t, 3>{42, 13, 19}, 1.0);
  t.push_back(std::array<index_t, 3>{99, 13, 0}, 2.0);
  const auto c = compact(t);
  std::array<index_t, 3> nc{};
  for (nnz_t i = 0; i < c.tensor.nnz(); ++i) {
    c.tensor.coords(i, nc);
    for (mode_t m = 0; m < 3; ++m) {
      EXPECT_EQ(c.original(m, nc[m]), t.index(m, i)) << "mode " << m;
    }
  }
}

TEST(Compact, NoopWhenAllIndicesUsed) {
  CooTensor t(shape_t{2, 2});
  t.push_back(std::array<index_t, 2>{0, 0}, 1.0);
  t.push_back(std::array<index_t, 2>{1, 1}, 2.0);
  const auto c = compact(t);
  EXPECT_EQ(c.tensor, t);
}

TEST(Compact, PreservesNormAndNnz) {
  const auto t = generate_zipf(shape_t{5000, 5000, 5000}, 2000, 1.4, 91);
  const auto c = compact(t);
  EXPECT_EQ(c.tensor.nnz(), t.nnz());
  EXPECT_DOUBLE_EQ(c.tensor.norm(), t.norm());
  for (mode_t m = 0; m < 3; ++m)
    EXPECT_EQ(c.tensor.dim(m), t.distinct_in_mode(m));
  c.tensor.validate();
}

TEST(Compact, OldIndexSortedAscending) {
  const auto t = generate_uniform(shape_t{300, 300}, 150, 93);
  const auto c = compact(t);
  for (mode_t m = 0; m < 2; ++m) {
    for (std::size_t i = 1; i < c.old_index[m].size(); ++i)
      EXPECT_LT(c.old_index[m][i - 1], c.old_index[m][i]);
  }
}

TEST(Compact, EmptyTensorThrows) {
  CooTensor t(shape_t{4, 4});
  EXPECT_THROW(compact(t), error);
}

}  // namespace
}  // namespace mdcp
