#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "tensor/coo_tensor.hpp"
#include "util/error.hpp"

namespace mdcp {
namespace {

CooTensor make_example() {
  // 3x4x2 tensor with 4 nonzeros.
  CooTensor t(shape_t{3, 4, 2});
  t.push_back(std::array<index_t, 3>{0, 1, 0}, 1.0);
  t.push_back(std::array<index_t, 3>{2, 3, 1}, 2.0);
  t.push_back(std::array<index_t, 3>{1, 0, 0}, -3.0);
  t.push_back(std::array<index_t, 3>{2, 1, 1}, 0.5);
  return t;
}

TEST(CooTensor, BasicAccessors) {
  const auto t = make_example();
  EXPECT_EQ(t.order(), 3);
  EXPECT_EQ(t.nnz(), 4u);
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t.dim(1), 4u);
  EXPECT_EQ(t.dim(2), 2u);
  EXPECT_DOUBLE_EQ(t.logical_size(), 24.0);
  EXPECT_EQ(t.index(0, 1), 2u);
  EXPECT_DOUBLE_EQ(t.value(2), -3.0);
}

TEST(CooTensor, CoordsRoundTrip) {
  const auto t = make_example();
  std::array<index_t, 3> c{};
  t.coords(1, c);
  EXPECT_EQ(c[0], 2u);
  EXPECT_EQ(c[1], 3u);
  EXPECT_EQ(c[2], 1u);
}

TEST(CooTensor, PushRejectsOutOfRange) {
  CooTensor t(shape_t{2, 2});
  EXPECT_THROW(t.push_back(std::array<index_t, 2>{2, 0}, 1.0), error);
  EXPECT_THROW(t.push_back(std::array<index_t, 1>{0}, 1.0), error);
}

TEST(CooTensor, RejectsEmptyShape) { EXPECT_THROW(CooTensor(shape_t{}), error); }

TEST(CooTensor, RejectsZeroDim) {
  EXPECT_THROW(CooTensor(shape_t{3, 0}), error);
}

TEST(CooTensor, SortByModesLexicographic) {
  auto t = make_example();
  const std::array<mode_t, 3> order{0, 1, 2};
  t.sort_by_modes(order);
  for (nnz_t i = 1; i < t.nnz(); ++i) {
    EXPECT_FALSE(t.tuple_less(i, i - 1, order));
  }
  // First tuple should be (0,1,0).
  EXPECT_EQ(t.index(0, 0), 0u);
  EXPECT_EQ(t.index(1, 0), 1u);
}

TEST(CooTensor, SortBySecondaryModeOrder) {
  auto t = make_example();
  const std::array<mode_t, 3> order{2, 0, 1};
  t.sort_by_modes(order);
  for (nnz_t i = 1; i < t.nnz(); ++i)
    EXPECT_FALSE(t.tuple_less(i, i - 1, order));
  EXPECT_EQ(t.index(2, 0), 0u);  // mode-2 index dominates
}

TEST(CooTensor, CoalesceMergesDuplicates) {
  CooTensor t(shape_t{2, 2});
  t.push_back(std::array<index_t, 2>{0, 1}, 1.0);
  t.push_back(std::array<index_t, 2>{1, 0}, 2.0);
  t.push_back(std::array<index_t, 2>{0, 1}, 3.0);
  t.coalesce();
  EXPECT_EQ(t.nnz(), 2u);
  // Sorted: (0,1)=4, (1,0)=2.
  EXPECT_DOUBLE_EQ(t.value(0), 4.0);
  EXPECT_DOUBLE_EQ(t.value(1), 2.0);
}

TEST(CooTensor, CoalesceEmptyIsNoop) {
  CooTensor t(shape_t{2, 2});
  t.coalesce();
  EXPECT_EQ(t.nnz(), 0u);
}

TEST(CooTensor, PruneDropsSmallValues) {
  CooTensor t(shape_t{4});
  t.push_back(std::array<index_t, 1>{0}, 1.0);
  t.push_back(std::array<index_t, 1>{1}, 0.0);
  t.push_back(std::array<index_t, 1>{2}, -2.0);
  t.push_back(std::array<index_t, 1>{3}, 1e-12);
  t.prune(1e-9);
  EXPECT_EQ(t.nnz(), 2u);
  EXPECT_DOUBLE_EQ(t.value(0), 1.0);
  EXPECT_DOUBLE_EQ(t.value(1), -2.0);
}

TEST(CooTensor, NormMatchesDefinition) {
  const auto t = make_example();
  EXPECT_DOUBLE_EQ(t.norm(), std::sqrt(1.0 + 4.0 + 9.0 + 0.25));
}

TEST(CooTensor, DistinctInMode) {
  const auto t = make_example();
  EXPECT_EQ(t.distinct_in_mode(0), 3u);  // {0,1,2}
  EXPECT_EQ(t.distinct_in_mode(1), 3u);  // {0,1,3}
  EXPECT_EQ(t.distinct_in_mode(2), 2u);  // {0,1}
}

TEST(CooTensor, ApplyPermutationReorders) {
  auto t = make_example();
  const std::vector<nnz_t> perm{3, 2, 1, 0};
  t.apply_permutation(perm);
  EXPECT_DOUBLE_EQ(t.value(0), 0.5);
  EXPECT_DOUBLE_EQ(t.value(3), 1.0);
  EXPECT_EQ(t.index(0, 0), 2u);
}

TEST(CooTensor, ValidatePassesOnGoodTensor) {
  EXPECT_NO_THROW(make_example().validate());
}

TEST(CooTensor, SummaryMentionsShapeAndNnz) {
  const auto s = make_example().summary();
  EXPECT_NE(s.find("3x4x2"), std::string::npos);
  EXPECT_NE(s.find("nnz=4"), std::string::npos);
}

TEST(CooTensor, EqualityComparesEverything) {
  const auto a = make_example();
  auto b = make_example();
  EXPECT_EQ(a, b);
  b.value(0) += 1;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace mdcp
