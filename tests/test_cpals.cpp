#include <gtest/gtest.h>

#include <cmath>

#include "cpals/cp_mu.hpp"
#include "cpals/cpals.hpp"
#include "tensor/generator.hpp"
#include "test_helpers.hpp"

namespace mdcp {
namespace {

using mdcp::testing::exact_engine_kinds;
using mdcp::testing::kind_label;

TEST(CpAls, RecoversPlantedLowRankTensor) {
  // Noiseless rank-3 data on a fully observed grid: ALS should fit it almost
  // perfectly. (A sparsely *sampled* low-rank model is not itself low-rank —
  // unstored entries are true zeros to sparse CP-ALS.)
  const auto planted = generate_planted_dense(shape_t{12, 14, 16}, 3, 0.0, 1);
  CpAlsOptions opt;
  opt.rank = 3;
  opt.max_iterations = 60;
  opt.tolerance = 1e-9;
  opt.engine = EngineKind::kDTreeBdt;
  // Multiple restarts: single-init ALS can land in a local minimum.
  const auto result = cp_als_best_of(planted.tensor, opt, 3);
  EXPECT_GT(result.final_fit(), 0.98) << "iterations " << result.iterations;
}

TEST(CpAls, BestOfPicksBestRestart) {
  const auto planted = generate_planted_dense(shape_t{10, 10, 10}, 2, 0.0, 3);
  CpAlsOptions opt;
  opt.rank = 2;
  opt.max_iterations = 40;
  opt.tolerance = 1e-9;
  const auto single = cp_als(planted.tensor, opt);
  const auto multi = cp_als_best_of(planted.tensor, opt, 4);
  EXPECT_GE(multi.final_fit(), single.final_fit() - 1e-9);
}

TEST(CpAls, FitNonDecreasingUpToTolerance) {
  const auto t = generate_zipf(shape_t{25, 30, 35, 40}, 3000, 1.1, 3);
  CpAlsOptions opt;
  opt.rank = 8;
  opt.max_iterations = 15;
  opt.tolerance = 0;  // run all iterations
  const auto result = cp_als(t, opt);
  ASSERT_EQ(result.iterations, 15);
  for (std::size_t i = 1; i < result.fits.size(); ++i) {
    EXPECT_GE(result.fits[i], result.fits[i - 1] - 1e-8)
        << "iteration " << i;
  }
}

TEST(CpAls, ConvergesAndStopsEarly) {
  const auto planted = generate_planted_dense(shape_t{10, 12, 14}, 2, 0.0, 5);
  CpAlsOptions opt;
  opt.rank = 2;
  opt.max_iterations = 200;
  opt.tolerance = 1e-7;
  const auto result = cp_als(planted.tensor, opt);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 200);
}

TEST(CpAls, AllEnginesProduceIdenticalTrajectories) {
  // Every engine computes the exact same MTTKRP, and the driver is otherwise
  // deterministic, so the per-iteration fits must agree to round-off.
  const auto t = generate_uniform(shape_t{15, 18, 21, 24}, 1200, 7);
  CpAlsOptions opt;
  opt.rank = 5;
  opt.max_iterations = 8;
  opt.tolerance = 0;
  opt.seed = 99;

  std::vector<real_t> reference_fits;
  for (EngineKind k : exact_engine_kinds()) {
    opt.engine = k;
    const auto result = cp_als(t, opt);
    ASSERT_EQ(result.fits.size(), 8u) << kind_label(k);
    if (reference_fits.empty()) {
      reference_fits = result.fits;
    } else {
      for (std::size_t i = 0; i < reference_fits.size(); ++i) {
        EXPECT_NEAR(result.fits[i], reference_fits[i], 1e-8)
            << kind_label(k) << " iteration " << i;
      }
    }
  }
}

TEST(CpAls, AutoEngineMatchesExplicitTrajectory) {
  const auto t = generate_clustered(shape_t{40, 40, 40, 40}, 2000,
                                    {.clusters = 8, .spread = 3.0}, 9);
  CpAlsOptions opt;
  opt.rank = 4;
  opt.max_iterations = 6;
  opt.tolerance = 0;
  opt.engine = EngineKind::kDTreeBdt;
  const auto expect = cp_als(t, opt);
  opt.engine = EngineKind::kAuto;
  const auto got = cp_als(t, opt);
  ASSERT_EQ(got.fits.size(), expect.fits.size());
  for (std::size_t i = 0; i < got.fits.size(); ++i)
    EXPECT_NEAR(got.fits[i], expect.fits[i], 1e-8);
  EXPECT_EQ(got.engine_name.rfind("auto:", 0), 0u);
}

TEST(CpAls, FitMatchesExactResidual) {
  // The fast fit identity must agree with the exact residual computation.
  const auto t = generate_uniform(shape_t{12, 14, 16}, 600, 11);
  CpAlsOptions opt;
  opt.rank = 4;
  opt.max_iterations = 5;
  opt.tolerance = 0;
  const auto result = cp_als(t, opt);
  const real_t exact_fit = 1 - residual_norm(t, result.model) / t.norm();
  EXPECT_NEAR(result.final_fit(), exact_fit, 1e-8);
}

TEST(CpAls, ReusedEngineGivesSameResult) {
  // The amortization pattern: one engine, several CP-ALS runs (e.g. rank
  // search / multiple restarts). State must be fully reset between runs.
  const auto t = generate_uniform(shape_t{15, 15, 15, 15}, 800, 13);
  auto engine = make_engine(t, EngineKind::kDTreeBdt, 4);
  CpAlsOptions opt;
  opt.rank = 4;
  opt.max_iterations = 5;
  opt.tolerance = 0;
  const auto first = cp_als(t, *engine, opt);
  const auto second = cp_als(t, *engine, opt);
  ASSERT_EQ(first.fits.size(), second.fits.size());
  for (std::size_t i = 0; i < first.fits.size(); ++i)
    EXPECT_DOUBLE_EQ(first.fits[i], second.fits[i]);
}

TEST(CpAls, DifferentSeedsDifferentInits) {
  const auto t = generate_uniform(shape_t{15, 15, 15}, 500, 17);
  CpAlsOptions opt;
  opt.rank = 3;
  opt.max_iterations = 1;
  opt.tolerance = 0;
  opt.seed = 1;
  const auto a = cp_als(t, opt);
  opt.seed = 2;
  const auto b = cp_als(t, opt);
  EXPECT_NE(a.fits[0], b.fits[0]);
}

TEST(CpAls, TimingDissectionPopulated) {
  const auto t = generate_uniform(shape_t{20, 20, 20}, 1000, 19);
  CpAlsOptions opt;
  opt.rank = 6;
  opt.max_iterations = 3;
  opt.tolerance = 0;
  const auto result = cp_als(t, opt);
  EXPECT_GT(result.mttkrp_seconds, 0.0);
  EXPECT_GT(result.dense_seconds, 0.0);
  EXPECT_GT(result.fit_seconds, 0.0);
  EXPECT_GE(result.total_seconds, result.mttkrp_seconds);
}

TEST(CpAls, ModelShapesMatchInput) {
  const auto t = generate_uniform(shape_t{9, 11, 13}, 300, 23);
  CpAlsOptions opt;
  opt.rank = 5;
  opt.max_iterations = 2;
  const auto result = cp_als(t, opt);
  ASSERT_EQ(result.model.order(), 3);
  EXPECT_EQ(result.model.rank(), 5u);
  for (mode_t m = 0; m < 3; ++m) {
    EXPECT_EQ(result.model.factors[m].rows(), t.dim(m));
    EXPECT_EQ(result.model.factors[m].cols(), 5u);
  }
  result.model.validate();
}

TEST(CpAls, FactorColumnsAreUnitNorm) {
  const auto t = generate_uniform(shape_t{10, 12, 14}, 400, 29);
  CpAlsOptions opt;
  opt.rank = 4;
  opt.max_iterations = 3;
  const auto result = cp_als(t, opt);
  // The last-updated factor (mode N-1) is explicitly normalized.
  const auto& u = result.model.factors[2];
  for (index_t r = 0; r < 4; ++r) {
    real_t norm = 0;
    for (index_t i = 0; i < u.rows(); ++i) norm += u(i, r) * u(i, r);
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-10);
  }
}

TEST(CpAls, InvalidOptionsThrow) {
  const auto t = generate_uniform(shape_t{5, 5}, 20, 31);
  CpAlsOptions opt;
  opt.rank = 0;
  EXPECT_THROW(cp_als(t, opt), error);
  opt.rank = 2;
  opt.max_iterations = 0;
  EXPECT_THROW(cp_als(t, opt), error);
}

TEST(CpAls, HigherOrderSmoke) {
  const auto planted =
      generate_planted_dense(shape_t{4, 4, 4, 4, 4, 4}, 2, 0.0, 37);
  CpAlsOptions opt;
  opt.rank = 2;
  opt.max_iterations = 40;
  opt.tolerance = 1e-8;
  opt.engine = EngineKind::kDTreeBdt;
  const auto result = cp_als_best_of(planted.tensor, opt, 3);
  EXPECT_GT(result.final_fit(), 0.95);
}

TEST(CpAls, NonnegativeFactorsStayNonnegative) {
  // Count-like data (all values positive): projected ALS must produce
  // entrywise nonnegative factors and still fit reasonably.
  const auto t = generate_zipf(shape_t{30, 35, 40}, 2500, 1.2, 41);
  CpAlsOptions opt;
  opt.rank = 6;
  opt.max_iterations = 12;
  opt.tolerance = 0;
  opt.nonnegative = true;
  const auto result = cp_als(t, opt);
  for (mode_t m = 0; m < 3; ++m) {
    const auto& f = result.model.factors[m];
    for (index_t i = 0; i < f.rows(); ++i)
      for (index_t r = 0; r < f.cols(); ++r)
        EXPECT_GE(f(i, r), 0.0) << "mode " << m;
  }
  for (real_t w : result.model.weights) EXPECT_GE(w, 0.0);
  EXPECT_GT(result.final_fit(), 0.0);
}

TEST(CpAls, NonnegativeFitNotWildlyWorse) {
  const auto planted = generate_planted_dense(shape_t{8, 8, 8}, 2, 0.0, 43);
  // Make the planted data nonnegative by flipping the sign structure: use
  // absolute values so a nonnegative model is feasible-ish.
  CooTensor t = planted.tensor;
  for (nnz_t i = 0; i < t.nnz(); ++i) t.value(i) = std::abs(t.value(i));
  CpAlsOptions opt;
  opt.rank = 4;
  opt.max_iterations = 30;
  opt.tolerance = 1e-7;
  opt.nonnegative = true;
  const auto nn = cp_als(t, opt);
  EXPECT_GT(nn.final_fit(), 0.3);
}

TEST(CpAls, RidgeStabilizesRankDeficientFit) {
  // Rank-1 data at rank 4 makes H singular without regularization; with a
  // ridge the Cholesky fast path always succeeds and the fit stays high.
  const auto planted = generate_planted_dense(shape_t{8, 8, 8}, 1, 0.0, 61);
  CpAlsOptions opt;
  opt.rank = 4;
  opt.max_iterations = 20;
  opt.tolerance = 0;
  opt.ridge = 1e-8;
  const auto result = cp_als(planted.tensor, opt);
  for (real_t f : result.fits) EXPECT_TRUE(std::isfinite(f));
  EXPECT_GT(result.final_fit(), 0.99);
}

TEST(CpAls, ZeroRidgeMatchesDefault) {
  const auto t = generate_uniform(shape_t{10, 12, 14}, 400, 63);
  CpAlsOptions opt;
  opt.rank = 3;
  opt.max_iterations = 4;
  opt.tolerance = 0;
  const auto a = cp_als(t, opt);
  opt.ridge = 0;
  const auto b = cp_als(t, opt);
  for (std::size_t i = 0; i < a.fits.size(); ++i)
    EXPECT_DOUBLE_EQ(a.fits[i], b.fits[i]);
}

TEST(CpMu, RejectsNegativeData) {
  CooTensor t(shape_t{3, 3});
  t.push_back(std::array<index_t, 2>{0, 0}, -1.0);
  CpAlsOptions opt;
  opt.rank = 2;
  EXPECT_THROW(cp_mu(t, opt), error);
}

TEST(CpMu, FactorsNonnegativeAndFitImproves) {
  const auto t = generate_zipf(shape_t{25, 30, 35}, 2000, 1.2, 45);
  CpAlsOptions opt;
  opt.rank = 5;
  opt.max_iterations = 25;
  opt.tolerance = 0;
  const auto result = cp_mu(t, opt);
  for (mode_t m = 0; m < 3; ++m) {
    const auto& f = result.model.factors[m];
    for (index_t i = 0; i < f.rows(); ++i)
      for (index_t r = 0; r < f.cols(); ++r) EXPECT_GE(f(i, r), 0.0);
  }
  // Multiplicative updates are monotone in the objective: fit never drops.
  for (std::size_t i = 1; i < result.fits.size(); ++i)
    EXPECT_GE(result.fits[i], result.fits[i - 1] - 1e-8);
  EXPECT_GT(result.final_fit(), result.fits.front());
}

TEST(CpMu, RecoversNonnegativePlantedModel) {
  // Nonnegative planted data: generate_planted uses nonnegative factors.
  const auto planted = generate_planted(shape_t{12, 12, 12}, 2, 100000, 0.0, 47);
  // With nnz_target >= positions the sample is effectively dense.
  CpAlsOptions opt;
  opt.rank = 2;
  opt.max_iterations = 150;
  opt.tolerance = 1e-9;
  const auto result = cp_mu(planted.tensor, opt);
  // Multiplicative updates converge slowly near all-positive (collinear)
  // planted factors; 0.8 after 150 iterations is the expected regime.
  EXPECT_GT(result.final_fit(), 0.8);
}

TEST(CpMu, WorksWithAllEngines) {
  const auto t = generate_uniform(shape_t{10, 12, 14, 16}, 500, 49);
  CpAlsOptions opt;
  opt.rank = 3;
  opt.max_iterations = 4;
  opt.tolerance = 0;
  std::vector<real_t> reference;
  for (EngineKind k : mdcp::testing::exact_engine_kinds()) {
    opt.engine = k;
    const auto r = cp_mu(t, opt);
    if (reference.empty()) {
      reference = r.fits;
    } else {
      for (std::size_t i = 0; i < reference.size(); ++i)
        EXPECT_NEAR(r.fits[i], reference[i], 1e-8) << kind_label(k);
    }
  }
}

TEST(CpAls, CongruenceDiagnosticOnRecovery) {
  const auto planted = generate_planted_dense(shape_t{12, 14, 16}, 3, 0.0, 7);
  CpAlsOptions opt;
  opt.rank = 3;
  opt.max_iterations = 80;
  opt.tolerance = 1e-10;
  const auto result = cp_als_best_of(planted.tensor, opt, 3);
  KruskalTensor truth{planted.weights, planted.factors};
  EXPECT_GT(factor_congruence(truth, result.model), 0.95)
      << "fit was " << result.final_fit();
}

}  // namespace
}  // namespace mdcp
