#include <gtest/gtest.h>

#include <array>
#include <numeric>

#include "csf/csf_mttkrp.hpp"
#include "csf/csf_tensor.hpp"
#include "mttkrp/engine.hpp"
#include "tensor/generator.hpp"
#include "tensor/stats.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace mdcp {
namespace {

using mdcp::testing::random_factors;

CooTensor hand_tensor() {
  // 2x2x2: nonzeros (0,0,0) (0,0,1) (0,1,0) (1,1,1).
  CooTensor t(shape_t{2, 2, 2});
  t.push_back(std::array<index_t, 3>{0, 0, 0}, 1.0);
  t.push_back(std::array<index_t, 3>{0, 0, 1}, 2.0);
  t.push_back(std::array<index_t, 3>{0, 1, 0}, 3.0);
  t.push_back(std::array<index_t, 3>{1, 1, 1}, 4.0);
  return t;
}

TEST(CsfTensor, HandExampleStructure) {
  const auto t = hand_tensor();
  const CsfTensor csf(t, {0, 1, 2});
  // Root fibers: indices 0 and 1 in mode 0.
  ASSERT_EQ(csf.num_fibers(0), 2u);
  EXPECT_EQ(csf.fids(0)[0], 0u);
  EXPECT_EQ(csf.fids(0)[1], 1u);
  // Level 1: slices (0,0),(0,1),(1,1) → 3 fibers.
  ASSERT_EQ(csf.num_fibers(1), 3u);
  EXPECT_EQ(csf.fids(1)[0], 0u);
  EXPECT_EQ(csf.fids(1)[1], 1u);
  EXPECT_EQ(csf.fids(1)[2], 1u);
  // Leaves: 4 nonzeros.
  ASSERT_EQ(csf.num_fibers(2), 4u);
  EXPECT_EQ(csf.nnz(), 4u);
  // Root fptr: slice 0 owns fibers [0,2), slice 1 owns [2,3).
  EXPECT_EQ(csf.fptr(0)[0], 0u);
  EXPECT_EQ(csf.fptr(0)[1], 2u);
  EXPECT_EQ(csf.fptr(0)[2], 3u);
  // Level-1 fptr: (0,0)→2 leaves, (0,1)→1, (1,1)→1.
  EXPECT_EQ(csf.fptr(1)[1] - csf.fptr(1)[0], 2u);
  EXPECT_EQ(csf.fptr(1)[2] - csf.fptr(1)[1], 1u);
  EXPECT_EQ(csf.fptr(1)[3] - csf.fptr(1)[2], 1u);
  // Values follow the sorted tuple order.
  EXPECT_DOUBLE_EQ(csf.values()[0], 1.0);
  EXPECT_DOUBLE_EQ(csf.values()[3], 4.0);
}

TEST(CsfTensor, FiberCountsMatchPrefixStatistics) {
  const auto t = generate_zipf(shape_t{80, 60, 40, 20}, 4000, 1.1, 17);
  const std::vector<mode_t> order{3, 1, 0, 2};
  const CsfTensor csf(t, order);
  const auto fibers = prefix_fiber_counts(t, order);
  for (mode_t l = 0; l < t.order(); ++l)
    EXPECT_EQ(csf.num_fibers(l), fibers[l]) << "level " << l;
}

TEST(CsfTensor, RejectsNonPermutationOrder) {
  const auto t = hand_tensor();
  EXPECT_THROW(CsfTensor(t, {0, 0, 2}), error);
  EXPECT_THROW(CsfTensor(t, {0, 1}), error);
}

TEST(CsfTensor, RejectsDuplicateCoordinates) {
  CooTensor t(shape_t{2, 2});
  t.push_back(std::array<index_t, 2>{0, 0}, 1.0);
  t.push_back(std::array<index_t, 2>{0, 0}, 2.0);
  EXPECT_THROW(CsfTensor(t, {0, 1}), error);
}

TEST(CsfTensor, DefaultOrderRootFirstThenAscendingDims) {
  const auto t = generate_uniform(shape_t{100, 10, 50}, 200, 3);
  const auto order = CsfTensor::default_order(t, 2);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);  // dim 10 before dim 100
  EXPECT_EQ(order[2], 0);
}

TEST(CsfTensor, MemoryBytesPositiveAndSane) {
  const auto t = generate_uniform(shape_t{50, 50, 50}, 1000, 5);
  const CsfTensor csf(t, {0, 1, 2});
  EXPECT_GT(csf.memory_bytes(), t.nnz() * sizeof(real_t));
  EXPECT_NE(csf.summary().find("csf"), std::string::npos);
}

TEST(CsfMttkrp, RootModeMatchesReference) {
  const auto t = generate_uniform(shape_t{30, 40, 50}, 2000, 7);
  const auto factors = random_factors(t, 8, 99);
  for (mode_t root = 0; root < 3; ++root) {
    const CsfTensor csf(t, CsfTensor::default_order(t, root));
    Matrix got, want;
    csf_mttkrp_root(csf, factors, got);
    mttkrp_reference(t, factors, root, want);
    EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-9) << "root " << root;
  }
}

TEST(CsfMttkrp, EngineAllModes) {
  const auto t = generate_zipf(shape_t{20, 30, 40, 50}, 3000, 1.0, 11);
  CsfMttkrpEngine engine(t);
  const auto factors = random_factors(t, 6, 42);
  for (mode_t m = 0; m < t.order(); ++m) {
    Matrix got, want;
    engine.compute(m, factors, got);
    mttkrp_reference(t, factors, m, want);
    EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-9) << "mode " << m;
  }
  EXPECT_EQ(engine.name(), "csf");
  EXPECT_GT(engine.memory_bytes(), 0u);
}

TEST(CsfMttkrp, Order2Works) {
  const auto t = generate_uniform(shape_t{25, 35}, 300, 13);
  CsfMttkrpEngine engine(t);
  const auto factors = random_factors(t, 4, 5);
  Matrix got, want;
  engine.compute(1, factors, got);
  mttkrp_reference(t, factors, 1, want);
  EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-10);
}

}  // namespace
}  // namespace mdcp
