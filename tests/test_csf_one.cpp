#include <gtest/gtest.h>

#include <array>

#include "csf/csf_one_mttkrp.hpp"
#include "tensor/generator.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace mdcp {
namespace {

using mdcp::testing::random_factors;

TEST(CsfOne, MatchesReferenceEveryModeAndLevel) {
  // Explicit natural mode order so all three kernel cases are exercised:
  // root (level 0), internal (levels 1..N-2), leaf (level N-1).
  const auto t = generate_zipf(shape_t{25, 30, 35, 40}, 1500, 1.1, 71);
  CsfOneMttkrpEngine engine(t, {0, 1, 2, 3});
  const auto factors = random_factors(t, 6, 72);
  Matrix got, want;
  for (mode_t m = 0; m < t.order(); ++m) {
    engine.compute(m, factors, got);
    mttkrp_reference(t, factors, m, want);
    EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-9) << "mode " << m;
  }
}

TEST(CsfOne, DefaultOrderSortsByDimension) {
  const auto t = generate_uniform(shape_t{500, 20, 100}, 400, 73);
  const CsfOneMttkrpEngine engine(t);
  EXPECT_EQ(engine.csf().mode_order(), (std::vector<mode_t>{1, 2, 0}));
}

TEST(CsfOne, HandExampleRootAndLeaf) {
  // 2x2 matrix as a degenerate tensor: MTTKRP in mode 0 is X·U1, in mode 1
  // is Xᵀ·U0.
  CooTensor t(shape_t{2, 2});
  t.push_back(std::array<index_t, 2>{0, 0}, 1.0);
  t.push_back(std::array<index_t, 2>{0, 1}, 2.0);
  t.push_back(std::array<index_t, 2>{1, 1}, 3.0);
  CsfOneMttkrpEngine engine(t, {0, 1});
  std::vector<Matrix> factors{Matrix(2, 1), Matrix(2, 1)};
  factors[0](0, 0) = 5;
  factors[0](1, 0) = 7;
  factors[1](0, 0) = 11;
  factors[1](1, 0) = 13;
  Matrix out;
  engine.compute(0, factors, out);  // root kernel
  EXPECT_DOUBLE_EQ(out(0, 0), 1 * 11 + 2 * 13);
  EXPECT_DOUBLE_EQ(out(1, 0), 3 * 13);
  engine.compute(1, factors, out);  // leaf kernel
  EXPECT_DOUBLE_EQ(out(0, 0), 1 * 5);
  EXPECT_DOUBLE_EQ(out(1, 0), 2 * 5 + 3 * 7);
}

TEST(CsfOne, SharedOutputRowsAccumulate) {
  // Two different root slices contribute to the SAME middle-mode index —
  // the collision case the two-phase scatter exists for.
  CooTensor t(shape_t{2, 1, 2});
  t.push_back(std::array<index_t, 3>{0, 0, 0}, 1.0);
  t.push_back(std::array<index_t, 3>{1, 0, 1}, 2.0);
  CsfOneMttkrpEngine engine(t, {0, 1, 2});
  const auto factors = random_factors(t, 3, 75);
  Matrix got, want;
  engine.compute(1, factors, got);
  mttkrp_reference(t, factors, 1, want);
  EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-12);
}

TEST(CsfOne, MemorySmallerThanAllModeCsf) {
  const auto t = generate_zipf(shape_t{60, 70, 80, 90}, 4000, 1.0, 77);
  const CsfOneMttkrpEngine one(t);
  const CsfMttkrpEngine all(t);
  EXPECT_LT(one.memory_bytes(), all.memory_bytes());
}

TEST(CsfOne, BitwiseDeterministicAcrossThreads) {
  const auto t = generate_clustered(shape_t{50, 50, 50, 50}, 2500,
                                    {.clusters = 8, .spread = 3.0}, 79);
  const auto factors = random_factors(t, 8, 80);
  std::vector<Matrix> results;
  for (int threads : {1, 3}) {
    set_num_threads(threads);
    CsfOneMttkrpEngine engine(t);
    Matrix out;
    engine.compute(1, factors, out);
    results.push_back(std::move(out));
  }
  set_num_threads(1);
  EXPECT_TRUE(results[0] == results[1]);
}

}  // namespace
}  // namespace mdcp
