// Bitwise determinism across thread counts: all parallel kernels accumulate
// per output element in a fixed order, so results must be *identical* (not
// just close) for any number of threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cpals/cpals.hpp"
#include "la/blas.hpp"
#include "mttkrp/registry.hpp"
#include "tensor/generator.hpp"
#include "test_helpers.hpp"
#include "util/parallel.hpp"

namespace mdcp {
namespace {

using mdcp::testing::random_factors;

class ThreadRestore {
 public:
  ~ThreadRestore() { set_num_threads(1); }
};

// The suites below enumerate EngineRegistry::names(), so an engine that
// silently unregisters would drop out of coverage without failing anything.
// Pin the engines whose determinism story these tests were written to lock
// down — in particular the linearized "alto" engine, whose partition-window
// merge order is the whole reason it can promise bitwise owner-mode results.
TEST(Determinism, RegistryListsBitwiseCriticalEngines) {
  const auto names = EngineRegistry::instance().names();
  for (const char* expected : {"coo", "bcoo", "alto", "csf", "dtree-bdt"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "engine \"" << expected
        << "\" missing from the registry-driven determinism matrix";
  }
}

TEST(Determinism, MttkrpBitwiseAcrossThreadCounts) {
  ThreadRestore restore;
  const auto t = generate_zipf(shape_t{30, 35, 40, 45}, 3000, 1.1, 61);
  const auto factors = random_factors(t, 8, 62);

  // Every registered engine must produce bit-identical output regardless of
  // thread count. "auto+probe" is excluded: its strategy choice depends on
  // measured probe timings, which can legitimately differ across thread
  // counts (each chosen strategy is itself deterministic — that is covered
  // by the dtree names below; plain "auto" picks from the analytic model
  // only, so it stays in).
  for (const auto& name : EngineRegistry::instance().names()) {
    if (name == "auto+probe") continue;
    std::vector<Matrix> results;
    for (int threads : {1, 2, 4}) {
      set_num_threads(threads);
      const auto engine = make_engine(name, t, 8);
      Matrix out;
      engine->compute(2, factors, out);
      results.push_back(std::move(out));
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[0] == results[i], true)
          << name << ": thread count changed the bits";
    }
  }
}

// Forced owner-computes keeps the cross-thread-count bitwise guarantee even
// on tensors where the auto heuristic would choose privatized tiles.
TEST(Determinism, ForcedOwnerBitwiseAcrossThreadCounts) {
  ThreadRestore restore;
  const auto t = generate_zipf(shape_t{40, 36, 32}, 4000, 1.3, 71);
  const auto factors = random_factors(t, 8, 72);
  for (const auto& name : EngineRegistry::instance().names()) {
    if (name == "auto+probe") continue;
    KernelContext ctx;
    ctx.sched = ScheduleMode::kOwner;
    std::vector<Matrix> results;
    for (int threads : {1, 2, 4}) {
      set_num_threads(threads);
      const auto engine = make_engine(name, t, 8, ctx);
      Matrix out;
      engine->compute(1, factors, out);
      results.push_back(std::move(out));
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[0] == results[i], true)
          << name << ": forced owner changed bits across thread counts";
    }
  }
}

// The privatized schedule combines per-thread partials in fixed thread
// order, so at a *fixed* thread count repeated runs must be bitwise
// identical; across different thread counts the accumulation order changes
// and only closeness is guaranteed.
TEST(Determinism, PrivatizedBitwiseAtFixedThreadCount) {
  ThreadRestore restore;
  const auto t = generate_zipf(shape_t{40, 36, 32, 28}, 5000, 1.2, 73);
  const auto factors = random_factors(t, 8, 74);
  KernelContext ctx;
  ctx.sched = ScheduleMode::kPrivatized;
  for (const auto& name : EngineRegistry::instance().names()) {
    if (name == "auto+probe") continue;
    set_num_threads(4);
    std::vector<Matrix> runs;
    for (int rep = 0; rep < 3; ++rep) {
      const auto engine = make_engine(name, t, 8, ctx);
      Matrix out;
      engine->compute(2, factors, out);
      runs.push_back(std::move(out));
    }
    for (std::size_t i = 1; i < runs.size(); ++i) {
      EXPECT_EQ(runs[0] == runs[i], true)
          << name << ": privatized run-to-run bits differ at 4 threads";
    }
  }
}

TEST(Determinism, PrivatizedDriftAcrossThreadCountsWithinTolerance) {
  ThreadRestore restore;
  const auto t = generate_zipf(shape_t{40, 36, 32, 28}, 5000, 1.2, 75);
  const auto factors = random_factors(t, 8, 76);
  KernelContext ctx;
  ctx.sched = ScheduleMode::kPrivatized;
  for (const auto& name : EngineRegistry::instance().names()) {
    if (name == "auto+probe") continue;
    set_num_threads(1);
    const auto e1 = make_engine(name, t, 8, ctx);
    Matrix out1;
    e1->compute(0, factors, out1);
    set_num_threads(4);
    const auto e4 = make_engine(name, t, 8, ctx);
    Matrix out4;
    e4->compute(0, factors, out4);
    ASSERT_EQ(out1.rows(), out4.rows());
    ASSERT_EQ(out1.cols(), out4.cols());
    double scale = 1.0, err = 0.0;
    for (index_t i = 0; i < out1.rows(); ++i) {
      for (index_t k = 0; k < out1.cols(); ++k) {
        scale = std::max(scale, std::abs(static_cast<double>(out1(i, k))));
        err = std::max(err, std::abs(static_cast<double>(out1(i, k)) -
                                     static_cast<double>(out4(i, k))));
      }
    }
    EXPECT_LT(err / scale, 1e-12)
        << name << ": 1-vs-4-thread privatized drift too large";
  }
}

TEST(Determinism, GramBitwiseAcrossThreadCounts) {
  ThreadRestore restore;
  Rng rng(63);
  const Matrix a = Matrix::random_normal(997, 16, rng);
  set_num_threads(1);
  const Matrix g1 = gram(a);
  set_num_threads(4);
  const Matrix g4 = gram(a);
  EXPECT_TRUE(g1 == g4);
}

TEST(Determinism, CpAlsBitwiseAcrossThreadCounts) {
  ThreadRestore restore;
  const auto t = generate_uniform(shape_t{18, 20, 22}, 900, 67);
  CpAlsOptions opt;
  opt.rank = 4;
  opt.max_iterations = 4;
  opt.tolerance = 0;
  opt.engine = EngineKind::kDTreeBdt;

  set_num_threads(1);
  const auto r1 = cp_als(t, opt);
  set_num_threads(4);
  const auto r4 = cp_als(t, opt);
  ASSERT_EQ(r1.fits.size(), r4.fits.size());
  for (std::size_t i = 0; i < r1.fits.size(); ++i)
    EXPECT_EQ(r1.fits[i], r4.fits[i]) << "iteration " << i;
  for (mode_t m = 0; m < 3; ++m)
    EXPECT_TRUE(r1.model.factors[m] == r4.model.factors[m]) << "mode " << m;
}

}  // namespace
}  // namespace mdcp
