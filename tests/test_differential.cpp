// Differential suite: every registered engine × every mode × every schedule
// against the dense-materialization oracle (tests/oracle.hpp), across tensor
// orders 1–6, structural patterns (uniform, skewed, duplicate coordinates,
// empty slices), and ranks {1, 7, 16}. Runs with 4 threads so both the
// owner-computes and the privatized-reduction paths execute in parallel.
//
// Every tensor is generated from a seed derived with splitmix64 and logged
// via SCOPED_TRACE, so a failure names the exact configuration to replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "mttkrp/registry.hpp"
#include "oracle.hpp"
#include "tensor/generator.hpp"
#include "test_helpers.hpp"
#include "util/parallel.hpp"

namespace mdcp {
namespace {

using mdcp::testing::max_scaled_error;
using mdcp::testing::oracle_mttkrp;
using mdcp::testing::random_factors;

constexpr double kTol = 1e-10;
constexpr std::uint64_t kSuiteSeed = 0xd1ffULL;

enum class Pattern { kUniform, kSkewed, kDuplicates, kEmptySlices };

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kUniform: return "uniform";
    case Pattern::kSkewed: return "skewed";
    case Pattern::kDuplicates: return "duplicates";
    case Pattern::kEmptySlices: return "empty-slices";
  }
  return "?";
}

// Coordinates drawn from a small pool, so most positions receive several
// raw entries. The library contract requires coalesced input (CSF asserts
// it), so the duplicates are folded by coalesce() here — the oracle folds
// its own copy independently during dense materialization, which makes the
// summed values themselves part of the differential check.
CooTensor make_duplicates(const shape_t& shape, nnz_t nnz,
                          std::uint64_t seed) {
  Rng rng(seed);
  const nnz_t pool = std::max<nnz_t>(nnz / 4, 1);
  std::vector<std::vector<index_t>> coords(pool);
  for (auto& c : coords)
    for (index_t d : shape) c.push_back(rng.next_index(d));
  CooTensor t(shape);
  for (nnz_t i = 0; i < nnz; ++i)
    t.push_back(coords[rng.next_below(pool)], rng.next_real() - 0.5);
  t.coalesce();
  return t;
}

// Only even indices appear in every mode: half of each mode's slices are
// empty, so output rows with no contributing nonzero must come back zero.
CooTensor make_empty_slices(const shape_t& shape, nnz_t nnz,
                            std::uint64_t seed) {
  Rng rng(seed);
  CooTensor t(shape);
  std::vector<index_t> c(shape.size());
  for (nnz_t i = 0; i < nnz; ++i) {
    for (std::size_t m = 0; m < shape.size(); ++m) {
      const index_t half = (shape[m] + 1) / 2;
      c[m] = 2 * rng.next_index(half) % shape[m];
    }
    t.push_back(c, rng.next_real() + 0.25);
  }
  t.coalesce();
  return t;
}

CooTensor make_pattern(Pattern p, const shape_t& shape, nnz_t nnz,
                       std::uint64_t seed) {
  switch (p) {
    case Pattern::kUniform: return generate_uniform(shape, nnz, seed);
    case Pattern::kSkewed: return generate_zipf(shape, nnz, 1.4, seed);
    case Pattern::kDuplicates: return make_duplicates(shape, nnz, seed);
    case Pattern::kEmptySlices: return make_empty_slices(shape, nnz, seed);
  }
  return CooTensor{};
}

bool engine_supports(const std::string& name, mode_t order) {
  if (order >= 2) return true;
  // Dimension trees (and the auto engines built on them) contract down to
  // at least one mode and need order >= 2.
  return name.rfind("dtree", 0) != 0 && name.rfind("auto", 0) != 0;
}

struct ThreadRestore {
  ~ThreadRestore() { set_num_threads(1); }
};

void run_order(mode_t order, const shape_t& shape, nnz_t nnz) {
  ThreadRestore restore;
  set_num_threads(4);
  const auto names = EngineRegistry::instance().names();

  for (Pattern pattern : {Pattern::kUniform, Pattern::kSkewed,
                          Pattern::kDuplicates, Pattern::kEmptySlices}) {
    const std::uint64_t seed =
        splitmix64(kSuiteSeed ^ (static_cast<std::uint64_t>(order) << 8) ^
                   static_cast<std::uint64_t>(pattern));
    SCOPED_TRACE(::testing::Message()
                 << "pattern=" << pattern_name(pattern) << " order="
                 << static_cast<int>(order) << " seed=" << seed);
    const CooTensor t = make_pattern(pattern, shape, nnz, seed);
    ASSERT_GT(t.nnz(), 0u);

    // Ranks bracket every microkernel tile-cascade case: scalar tail only
    // (1, 7), 8-tile + tail (15), exact 16-tile (16), 16-tile + tail (17).
    for (index_t rank : {index_t{1}, index_t{7}, index_t{15}, index_t{16},
                         index_t{17}}) {
      const auto factors = random_factors(t, rank, splitmix64(seed + rank));
      std::vector<Matrix> oracle;
      for (mode_t m = 0; m < order; ++m)
        oracle.push_back(oracle_mttkrp(t, factors, m));

      for (const auto& name : names) {
        if (!engine_supports(name, order)) continue;
        for (ScheduleMode sm : {ScheduleMode::kAuto, ScheduleMode::kOwner,
                                ScheduleMode::kPrivatized}) {
          SCOPED_TRACE(::testing::Message()
                       << "engine=" << name << " rank=" << rank << " sched="
                       << static_cast<int>(sm));
          KernelContext ctx;
          ctx.threads = 4;
          ctx.sched = sm;
          const auto engine = make_engine(name, t, rank, ctx);
          for (mode_t m = 0; m < order; ++m) {
            Matrix out;
            engine->compute(m, factors, out);
            EXPECT_LT(max_scaled_error(oracle[m], out), kTol)
                << "mode " << static_cast<int>(m);
          }
        }
      }
    }
  }
}

// Registry-completeness guard: the matrix above enumerates
// EngineRegistry::names() dynamically, so the only way a registered engine
// can escape coverage is an engine_supports() skip. Pin the skip list to the
// known contraction-based family, require every other engine to run at every
// order, and require the engines the suite was written against (including
// the linearized "alto" engine) to actually be registered — if one is
// renamed or dropped, this fails instead of silently shrinking the matrix.
TEST(Differential, MatrixCoversEveryRegisteredEngine) {
  const auto names = EngineRegistry::instance().names();
  for (const char* expected :
       {"coo", "bcoo", "alto", "ttv-chain", "csf", "csf1", "dtree-flat",
        "dtree-3lvl", "dtree-bdt", "auto", "auto+probe"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "engine \"" << expected << "\" missing from the registry";
  }
  const CooTensor probe = generate_uniform(shape_t{6, 5, 4}, 40, kSuiteSeed);
  for (const auto& name : names) {
    SCOPED_TRACE(::testing::Message() << "engine=" << name);
    for (mode_t order = 2; order <= 6; ++order)
      EXPECT_TRUE(engine_supports(name, order));
    if (!engine_supports(name, 1)) {
      EXPECT_TRUE(name.rfind("dtree", 0) == 0 || name.rfind("auto", 0) == 0)
          << "only contraction-based engines may skip order 1";
    }
    // Every registered factory must produce a working engine for the matrix.
    const auto engine = make_engine(name, probe, 4, {});
    ASSERT_NE(engine, nullptr);
    EXPECT_FALSE(engine->name().empty());
  }
}

TEST(Differential, Order1) { run_order(1, shape_t{64}, 48); }
TEST(Differential, Order2) { run_order(2, shape_t{16, 12}, 80); }
TEST(Differential, Order3) { run_order(3, shape_t{9, 8, 7}, 120); }
TEST(Differential, Order4) { run_order(4, shape_t{7, 6, 5, 4}, 150); }
TEST(Differential, Order5) { run_order(5, shape_t{5, 5, 4, 3, 3}, 150); }
TEST(Differential, Order6) { run_order(6, shape_t{4, 3, 3, 3, 2, 2}, 120); }

}  // namespace
}  // namespace mdcp
