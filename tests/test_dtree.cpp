#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <numeric>

#include "dtree/dimension_tree.hpp"
#include "dtree/dtree_engine.hpp"
#include "dtree/numeric.hpp"
#include "tensor/generator.hpp"
#include "tensor/stats.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace mdcp {
namespace {

using mdcp::testing::random_factors;

std::vector<mode_t> natural(mode_t n) {
  std::vector<mode_t> o(n);
  for (mode_t m = 0; m < n; ++m) o[m] = m;
  return o;
}

TEST(TreeSpec, FlatShape) {
  const auto spec = TreeSpec::flat(natural(4));
  EXPECT_EQ(spec.children.size(), 4u);
  for (const auto& c : spec.children) EXPECT_TRUE(c.is_leaf());
  EXPECT_NO_THROW(spec.validate(4));
  EXPECT_EQ(spec.to_string(), "(0,1,2,3)");
}

TEST(TreeSpec, ThreeLevelShape) {
  const auto spec = TreeSpec::three_level(natural(4), 2);
  ASSERT_EQ(spec.children.size(), 2u);
  EXPECT_EQ(spec.children[0].modes, (std::vector<mode_t>{0, 1}));
  EXPECT_EQ(spec.children[1].modes, (std::vector<mode_t>{2, 3}));
  EXPECT_NO_THROW(spec.validate(4));
}

TEST(TreeSpec, ThreeLevelSingletonGroupCollapses) {
  const auto spec = TreeSpec::three_level(natural(3), 1);
  ASSERT_EQ(spec.children.size(), 2u);
  EXPECT_TRUE(spec.children[0].is_leaf());
  EXPECT_FALSE(spec.children[1].is_leaf());
  EXPECT_NO_THROW(spec.validate(3));
}

TEST(TreeSpec, BdtIsBalancedBinary) {
  const auto spec = TreeSpec::bdt(natural(8));
  EXPECT_NO_THROW(spec.validate(8));
  // Every internal node has exactly two children.
  std::function<void(const TreeSpec&)> walk = [&](const TreeSpec& n) {
    if (n.is_leaf()) return;
    EXPECT_EQ(n.children.size(), 2u);
    for (const auto& c : n.children) walk(c);
  };
  walk(spec);
  EXPECT_EQ(spec.to_string(), "(((0,1),(2,3)),((4,5),(6,7)))");
}

TEST(TreeSpec, ValidateRejectsBadPartitions) {
  TreeSpec bad;
  bad.modes = {0, 1, 2};
  TreeSpec c1;
  c1.modes = {0, 1};
  c1.children = {TreeSpec{{0}, {}}, TreeSpec{{1}, {}}};
  TreeSpec c2;
  c2.modes = {1};  // overlaps c1 — not a partition
  bad.children = {c1, c2};
  EXPECT_THROW(bad.validate(3), error);
}

TEST(TreeSpec, ValidateRejectsWrongRootCover) {
  const auto spec = TreeSpec::bdt(natural(3));
  EXPECT_THROW(spec.validate(4), error);
}

TEST(DimensionTree, NodeMetadata) {
  const auto t = generate_uniform(shape_t{10, 12, 14, 16}, 500, 3);
  const DimensionTree tree(t, TreeSpec::bdt(natural(4)));
  // Nodes: root, {0,1}, {2,3}, and 4 leaves.
  EXPECT_EQ(tree.size(), 7);
  const auto& root = tree.node(tree.root());
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.mode_set, 0b1111u);
  EXPECT_EQ(root.children.size(), 2u);

  for (mode_t m = 0; m < 4; ++m) {
    const auto& leaf = tree.node(tree.leaf_for_mode(m));
    EXPECT_TRUE(leaf.is_leaf());
    EXPECT_EQ(leaf.mode_set, mode_set_t{1} << m);
  }
}

TEST(DimensionTree, DeltaIsParentMinusChild) {
  const auto t = generate_uniform(shape_t{10, 12, 14, 16}, 500, 3);
  const DimensionTree tree(t, TreeSpec::bdt(natural(4)));
  const auto& left = tree.node(tree.node(tree.root()).children[0]);
  EXPECT_EQ(left.mode_set, 0b0011u);
  EXPECT_EQ(left.delta, (std::vector<mode_t>{2, 3}));
}

TEST(DimensionTree, SymbolicTupleCountsMatchProjections) {
  const auto t = generate_clustered(shape_t{300, 300, 300, 300}, 3000,
                                    {.clusters = 8, .spread = 3.0}, 5);
  const DimensionTree tree(t, TreeSpec::bdt(natural(4)));
  for (int i = 0; i < tree.size(); ++i) {
    const auto& n = tree.node(i);
    if (n.is_root()) continue;
    EXPECT_EQ(n.tuples, distinct_projection_count(t, n.mode_set))
        << "node " << i;
  }
}

TEST(DimensionTree, ReductionSetsPartitionParent) {
  const auto t = generate_uniform(shape_t{20, 20, 20, 20}, 800, 7);
  const DimensionTree tree(t, TreeSpec::bdt(natural(4)));
  for (int i = 0; i < tree.size(); ++i) {
    const auto& n = tree.node(i);
    if (n.is_root()) continue;
    const nnz_t parent_tuples = tree.node_tuples(n.parent);
    // red_ids is a permutation of the parent's tuple ids.
    EXPECT_EQ(n.red_ids.size(), parent_tuples);
    std::vector<bool> seen(parent_tuples, false);
    for (nnz_t id : n.red_ids) {
      ASSERT_LT(id, parent_tuples);
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
    }
    EXPECT_EQ(n.red_ptr.front(), 0u);
    EXPECT_EQ(n.red_ptr.back(), parent_tuples);
  }
}

TEST(DimensionTree, IndexArraysSortedAndInRange) {
  const auto t = generate_zipf(shape_t{40, 50, 60}, 1500, 1.3, 9);
  const DimensionTree tree(t, TreeSpec::bdt(natural(3)));
  for (int i = 0; i < tree.size(); ++i) {
    const auto& n = tree.node(i);
    if (n.is_root()) continue;
    for (std::size_t mp = 0; mp < n.modes.size(); ++mp) {
      const auto span = tree.node_mode_index(i, n.modes[mp]);
      for (index_t v : span) EXPECT_LT(v, t.dim(n.modes[mp]));
    }
    // Tuples are lexicographically sorted (strictly increasing).
    for (nnz_t u = 1; u < n.tuples; ++u) {
      bool greater = false, equal = true;
      for (const auto& arr : n.idx) {
        if (!equal) break;
        if (arr[u] != arr[u - 1]) {
          greater = arr[u] > arr[u - 1];
          equal = false;
        }
      }
      EXPECT_TRUE(!equal && greater) << "node " << i << " tuple " << u;
    }
  }
}

TEST(DimensionTree, RequiresOrderTwoPlus) {
  CooTensor t(shape_t{5});
  t.push_back(std::array<index_t, 1>{2}, 1.0);
  TreeSpec leaf;
  leaf.modes = {0};
  EXPECT_THROW(DimensionTree(t, leaf), error);
}

TEST(DTreeEngine, MatchesReferenceAllShapes) {
  const auto t = generate_zipf(shape_t{15, 25, 35, 45, 55}, 2500, 1.0, 21);
  const auto factors = random_factors(t, 7, 77);
  for (auto make : {&make_dtree_flat, &make_dtree_three_level, &make_dtree_bdt}) {
    auto engine = make(t, {});
    for (mode_t m = 0; m < t.order(); ++m) {
      Matrix got, want;
      engine->compute(m, factors, got);
      mttkrp_reference(t, factors, m, want);
      EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-9)
          << engine->name() << " mode " << m;
    }
  }
}

TEST(DTreeEngine, MemoizationBoundOnLiveValueMatrices) {
  // After each sub-iteration of a sweep, at most ceil(log2 N) value matrices
  // may be alive for a BDT (the dimension-tree memory theorem).
  const auto t = generate_uniform(shape_t{12, 12, 12, 12, 12, 12, 12, 12},
                                  3000, 31);
  auto engine = make_dtree_bdt(t);
  const auto factors = random_factors(t, 4, 8);
  Matrix out;
  const int bound = static_cast<int>(std::ceil(std::log2(8)));
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (mode_t m = 0; m < t.order(); ++m) {
      engine->compute(m, factors, out);
      engine->factor_updated(m);
      int live = 0;
      for (int i = 0; i < engine->tree().size(); ++i)
        live += engine->tree().node(i).valid;
      EXPECT_LE(live, bound) << "after mode " << m;
    }
  }
}

TEST(DTreeEngine, FactorUpdatedInvalidatesCorrectly) {
  // Simulated ALS: mutate factors between computes; memoized results must
  // still match a from-scratch reference at every step.
  const auto t = generate_uniform(shape_t{18, 20, 22, 24}, 900, 41);
  auto engine = make_dtree_bdt(t);
  auto factors = random_factors(t, 5, 15);
  Rng rng(1234);
  Matrix got, want;
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (mode_t m = 0; m < t.order(); ++m) {
      engine->compute(m, factors, got);
      mttkrp_reference(t, factors, m, want);
      ASSERT_LT(Matrix::max_abs_diff(got, want), 1e-9)
          << "sweep " << sweep << " mode " << m;
      // "Update" factor m as ALS would.
      factors[m] = Matrix::random_uniform(t.dim(m), 5, rng);
      engine->factor_updated(m);
    }
  }
}

TEST(DTreeEngine, StaleResultsWithoutInvalidationDiffer) {
  // Deliberately omit factor_updated: the engine is expected to serve the
  // memoized (now stale) intermediates. This documents the contract.
  const auto t = generate_uniform(shape_t{10, 10, 10, 10}, 400, 47);
  auto engine = make_dtree_bdt(t);
  auto factors = random_factors(t, 3, 5);
  Matrix first, second;
  engine->compute(0, factors, first);
  Rng rng(5);
  factors[3] = Matrix::random_uniform(t.dim(3), 3, rng);
  engine->compute(0, factors, second);  // no factor_updated(3)!
  EXPECT_LT(Matrix::max_abs_diff(first, second), 1e-12)
      << "engine should have reused the memoized result";
  engine->factor_updated(3);
  engine->compute(0, factors, second);
  EXPECT_GT(Matrix::max_abs_diff(first, second), 1e-6)
      << "after invalidation the fresh factors must be used";
}

TEST(DTreeEngine, RankChangeResetsState) {
  const auto t = generate_uniform(shape_t{10, 12, 14}, 300, 53);
  auto engine = make_dtree_bdt(t);
  Matrix got, want;
  const auto f5 = random_factors(t, 5, 1);
  engine->compute(0, f5, got);
  EXPECT_EQ(got.cols(), 5u);
  const auto f9 = random_factors(t, 9, 2);
  engine->compute(1, f9, got);
  mttkrp_reference(t, f9, 1, want);
  EXPECT_EQ(got.cols(), 9u);
  EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-9);
}

TEST(DTreeEngine, MemoryReporting) {
  const auto t = generate_uniform(shape_t{30, 30, 30, 30}, 2000, 59);
  auto engine = make_dtree_bdt(t);
  const std::size_t symbolic_only = engine->memory_bytes();
  EXPECT_GT(symbolic_only, 0u);
  const auto factors = random_factors(t, 8, 3);
  Matrix out;
  engine->compute(0, factors, out);
  EXPECT_GT(engine->memory_bytes(), symbolic_only);
  EXPECT_GE(engine->peak_memory_bytes(), engine->memory_bytes());
  engine->invalidate_all();
  EXPECT_EQ(engine->memory_bytes(), symbolic_only);
}

TEST(DTreeEngine, EmptySlicesGiveZeroRows) {
  // Mode-0 index 1 is never used; its MTTKRP row must be zero.
  CooTensor t(shape_t{3, 2, 2});
  t.push_back(std::array<index_t, 3>{0, 0, 0}, 1.0);
  t.push_back(std::array<index_t, 3>{2, 1, 1}, 2.0);
  auto engine = make_dtree_bdt(t);
  const auto factors = random_factors(t, 4, 9);
  Matrix out;
  engine->compute(0, factors, out);
  for (index_t k = 0; k < 4; ++k) EXPECT_DOUBLE_EQ(out(1, k), 0.0);
}

// --- Property test: arbitrary random tree shapes are exact ---------------
//
// Generates random valid dimension trees (random recursive partitions with
// 2..4 children per node, shuffled mode orders) and checks the engine
// against the brute-force reference. This covers shapes none of the
// canonical constructors produce (unbalanced, mixed-arity).
namespace {

TreeSpec random_spec(std::vector<mode_t> modes, Rng& rng) {
  TreeSpec node;
  node.modes = modes;
  if (modes.size() == 1) return node;
  // Shuffle, then split into k groups.
  for (std::size_t i = modes.size(); i-- > 1;)
    std::swap(modes[i], modes[rng.next_below(i + 1)]);
  const std::size_t k =
      std::min<std::size_t>(modes.size(), 2 + rng.next_below(3));
  std::vector<std::vector<mode_t>> groups(k);
  for (std::size_t i = 0; i < modes.size(); ++i)
    groups[i % k].push_back(modes[i]);
  for (auto& g : groups) node.children.push_back(random_spec(std::move(g), rng));
  return node;
}

class RandomTreeShapes : public ::testing::TestWithParam<int> {};

TEST_P(RandomTreeShapes, EngineMatchesReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const auto order = static_cast<mode_t>(3 + rng.next_below(4));  // 3..6
  shape_t shape;
  for (mode_t m = 0; m < order; ++m)
    shape.push_back(static_cast<index_t>(8 + rng.next_below(30)));
  const auto t = generate_zipf(shape, 500, 1.0, 9000u + GetParam());

  std::vector<mode_t> modes(order);
  std::iota(modes.begin(), modes.end(), mode_t{0});
  const TreeSpec spec = random_spec(modes, rng);
  ASSERT_NO_THROW(spec.validate(order)) << spec.to_string();

  DTreeMttkrpEngine engine(t, spec, "random");
  auto factors = random_factors(t, 4, 77u + GetParam());
  Matrix got, want;
  Rng frng(31u + GetParam());
  // Two ALS-like sweeps with factor updates in between.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (mode_t m = 0; m < order; ++m) {
      engine.compute(m, factors, got);
      mttkrp_reference(t, factors, m, want);
      ASSERT_LT(Matrix::max_abs_diff(got, want), 1e-9)
          << spec.to_string() << " sweep " << sweep << " mode " << m;
      factors[m] = Matrix::random_uniform(t.dim(m), 4, frng);
      engine.factor_updated(m);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeShapes, ::testing::Range(0, 12));

}  // namespace

}  // namespace
}  // namespace mdcp
