// Cross-cutting edge cases and failure-injection tests: degenerate shapes,
// extreme sparsity, malformed specs, and boundary parameter values across
// all modules.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "test_helpers.hpp"

namespace mdcp {
namespace {

using mdcp::testing::exact_engine_kinds;
using mdcp::testing::random_factors;

// --- degenerate tensor shapes --------------------------------------------

TEST(EdgeCases, SizeOneModes) {
  // Modes of size 1 are legal and common after slicing.
  CooTensor t(shape_t{1, 5, 1, 7});
  t.push_back(std::array<index_t, 4>{0, 2, 0, 3}, 1.5);
  t.push_back(std::array<index_t, 4>{0, 4, 0, 6}, -2.5);
  const auto factors = random_factors(t, 3, 1);
  for (EngineKind k : exact_engine_kinds()) {
    const auto engine = make_engine(t, k, 3);
    Matrix got, want;
    for (mode_t m = 0; m < 4; ++m) {
      engine->compute(m, factors, got);
      mttkrp_reference(t, factors, m, want);
      EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-12)
          << engine_kind_name(k) << " mode " << m;
    }
  }
}

TEST(EdgeCases, FullyDenseTensor) {
  // Every position occupied: maximal fiber sharing everywhere.
  CooTensor t(shape_t{3, 3, 3});
  std::array<index_t, 3> c{};
  Rng rng(2);
  for (c[0] = 0; c[0] < 3; ++c[0])
    for (c[1] = 0; c[1] < 3; ++c[1])
      for (c[2] = 0; c[2] < 3; ++c[2]) t.push_back(c, rng.next_real());
  const auto factors = random_factors(t, 4, 3);
  for (EngineKind k : exact_engine_kinds()) {
    const auto engine = make_engine(t, k, 4);
    Matrix got, want;
    engine->compute(1, factors, got);
    mttkrp_reference(t, factors, 1, want);
    EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-12) << engine_kind_name(k);
  }
}

TEST(EdgeCases, DiagonalTensor) {
  // Hyper-diagonal: zero index overlap under any projection except single
  // modes — the worst case for memoization, still must be exact.
  CooTensor t(shape_t{20, 20, 20, 20});
  for (index_t i = 0; i < 20; ++i)
    t.push_back(std::array<index_t, 4>{i, i, i, i}, static_cast<real_t>(i + 1));
  const auto factors = random_factors(t, 5, 4);
  for (EngineKind k : exact_engine_kinds()) {
    const auto engine = make_engine(t, k, 5);
    Matrix got, want;
    for (mode_t m = 0; m < 4; ++m) {
      engine->compute(m, factors, got);
      mttkrp_reference(t, factors, m, want);
      EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-10) << engine_kind_name(k);
    }
  }
}

TEST(EdgeCases, SingleSliceRepeated) {
  // All nonzeros share the same index in mode 0 (one gigantic slice).
  CooTensor t(shape_t{10, 15, 15});
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    t.push_back(std::array<index_t, 3>{7, rng.next_index(15),
                                       rng.next_index(15)},
                rng.next_real());
  }
  t.coalesce();
  const auto factors = random_factors(t, 3, 6);
  for (EngineKind k : exact_engine_kinds()) {
    const auto engine = make_engine(t, k, 3);
    Matrix got, want;
    engine->compute(0, factors, got);
    mttkrp_reference(t, factors, 0, want);
    EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-10) << engine_kind_name(k);
    // All non-7 rows must be zero.
    for (index_t i = 0; i < 10; ++i) {
      if (i == 7) continue;
      for (index_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(got(i, r), 0.0);
    }
  }
}

// --- huge-rank and rank-1 boundaries --------------------------------------

TEST(EdgeCases, LargeRankStillExact) {
  const auto t = generate_uniform(shape_t{12, 13, 14}, 200, 7);
  const index_t rank = 128;
  const auto factors = random_factors(t, rank, 8);
  const auto engine = make_engine(t, EngineKind::kDTreeBdt, rank);
  Matrix got, want;
  engine->compute(2, factors, got);
  mttkrp_reference(t, factors, 2, want);
  EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-8);
}

// --- numerical pathologies -------------------------------------------------

TEST(EdgeCases, HugeAndTinyValues) {
  CooTensor t(shape_t{4, 4, 4});
  t.push_back(std::array<index_t, 3>{0, 0, 0}, 1e12);
  t.push_back(std::array<index_t, 3>{1, 1, 1}, 1e-12);
  t.push_back(std::array<index_t, 3>{2, 2, 2}, -1e12);
  const auto factors = random_factors(t, 2, 9);
  for (EngineKind k : exact_engine_kinds()) {
    const auto engine = make_engine(t, k, 2);
    Matrix got, want;
    engine->compute(0, factors, got);
    mttkrp_reference(t, factors, 0, want);
    EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-2) << engine_kind_name(k);
    for (std::size_t e = 0; e < got.size(); ++e)
      EXPECT_TRUE(std::isfinite(got.data()[e]));
  }
}

TEST(EdgeCases, CpAlsOnRankDeficientData) {
  // Rank-1 data decomposed at rank 4: H^(n) becomes singular as columns
  // align; the pseudo-inverse fallback must keep iterations finite.
  const auto planted = generate_planted_dense(shape_t{8, 8, 8}, 1, 0.0, 11);
  CpAlsOptions opt;
  opt.rank = 4;
  opt.max_iterations = 25;
  opt.tolerance = 0;
  const auto result = cp_als(planted.tensor, opt);
  for (real_t f : result.fits) EXPECT_TRUE(std::isfinite(f));
  EXPECT_GT(result.final_fit(), 0.99);  // rank-4 ⊇ rank-1
}

// --- spec/validation failure injection -------------------------------------

TEST(EdgeCases, TreeSpecSingleChildRejected) {
  TreeSpec bad;
  bad.modes = {0, 1};
  TreeSpec only;
  only.modes = {0, 1};
  only.children = {TreeSpec{{0}, {}}, TreeSpec{{1}, {}}};
  bad.children.push_back(only);
  EXPECT_THROW(bad.validate(2), error);
}

TEST(EdgeCases, TreeSpecLeafWithManyModesRejected) {
  TreeSpec bad;
  bad.modes = {0, 1};  // "leaf" (no children) with two modes
  EXPECT_THROW(bad.validate(2), error);
}

TEST(EdgeCases, TunerRejectsZeroRank) {
  const auto t = generate_uniform(shape_t{5, 5, 5}, 20, 13);
  EXPECT_THROW(select_strategy(t, 0), error);
}

TEST(EdgeCases, CsfOneRejectsWrongFactorCount) {
  const auto t = generate_uniform(shape_t{5, 5, 5}, 20, 15);
  CsfOneMttkrpEngine engine(t);
  std::vector<Matrix> two_factors{Matrix(5, 2), Matrix(5, 2)};
  Matrix out;
  EXPECT_THROW(engine.compute(0, two_factors, out), error);
}

// --- cross-module integration ----------------------------------------------

TEST(EdgeCases, CompactThenDecompose) {
  // Tensor with massive empty-slice waste: compact, decompose, map back.
  CooTensor t(shape_t{100000, 100000, 100000});
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    t.push_back(std::array<index_t, 3>{rng.next_index(50) * 2000,
                                       rng.next_index(50) * 2000,
                                       rng.next_index(50) * 2000},
                rng.next_real() + 0.1);
  }
  t.coalesce();
  const auto c = compact(t);
  EXPECT_LE(c.tensor.dim(0), 50u);

  CpAlsOptions opt;
  opt.rank = 3;
  opt.max_iterations = 5;
  opt.tolerance = 0;
  const auto result = cp_als(c.tensor, opt);
  EXPECT_EQ(result.model.factors[0].rows(), c.tensor.dim(0));
  // Row k of the compact factor corresponds to original index old_index[0][k].
  EXPECT_LT(c.original(0, 0), 100000u);
}

TEST(EdgeCases, TtvChainAgainstDTreeOnSameTensor) {
  // Two completely independent formulations must agree on a tensor with
  // repeated values and mixed signs.
  CooTensor t(shape_t{6, 7, 8, 9});
  Rng rng(19);
  for (int i = 0; i < 120; ++i) {
    t.push_back(
        std::array<index_t, 4>{rng.next_index(6), rng.next_index(7),
                               rng.next_index(8), rng.next_index(9)},
        (i % 2 ? 1.0 : -1.0) * (1 + (i % 5)));
  }
  t.coalesce();
  const auto factors = random_factors(t, 4, 20);
  TtvChainEngine chain(t);
  auto bdt = make_dtree_bdt(t);
  Matrix a, b;
  for (mode_t m = 0; m < 4; ++m) {
    chain.compute(m, factors, a);
    bdt->compute(m, factors, b);
    EXPECT_LT(Matrix::max_abs_diff(a, b), 1e-10) << "mode " << m;
  }
}

}  // namespace
}  // namespace mdcp
