// Robustness tests: the fault-injection harness, the corrupt-input corpus,
// memory-budget degradation chains, and CP-ALS numerical recovery.
//
// The injected-fault tests (allocation failure, NaN poisoning, IO short
// reads) require the library to be built with -DMDCP_ENABLE_FAULTINJECT=ON;
// without it they GTEST_SKIP. The FaultPlan spec parser, the corrupt corpus,
// and the budget-degradation tests run in every configuration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <sstream>
#include <string>

#include "cpals/cpals.hpp"
#include "model/cost_model.hpp"
#include "model/tuner.hpp"
#include "mttkrp/registry.hpp"
#include "tensor/generator.hpp"
#include "tensor/tensor_io.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/workspace.hpp"

#ifndef MDCP_TEST_DATA_DIR
#define MDCP_TEST_DATA_DIR "tests/data"
#endif

namespace mdcp {
namespace {

std::string corrupt(const char* name) {
  return std::string(MDCP_TEST_DATA_DIR) + "/corrupt/" + name;
}

// ---------------------------------------------------------------------------
// FaultPlan spec grammar and deterministic triggers (compiled-in regardless
// of MDCP_ENABLE_FAULTINJECT — only the production gates fold away).
// ---------------------------------------------------------------------------

TEST(FaultSpec, ParsesComposedClauses) {
  fault::FaultPlan p;
  p.parse_spec("alloc.nth=3;alloc.bytes=1048576;nan.nth=2;nan.limit=1;"
               "io.lines=10");
  EXPECT_EQ(p.config(fault::Site::kAlloc).nth, 3u);
  EXPECT_EQ(p.config(fault::Site::kAlloc).threshold, 1048576u);
  EXPECT_EQ(p.config(fault::Site::kNan).nth, 2u);
  EXPECT_EQ(p.config(fault::Site::kNan).limit, 1u);
  EXPECT_EQ(p.config(fault::Site::kIo).threshold, 10u);
  EXPECT_TRUE(p.armed());
  p.reset();
  EXPECT_FALSE(p.armed());
  EXPECT_EQ(p.config(fault::Site::kAlloc).nth, 0u);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  fault::FaultPlan p;
  EXPECT_THROW(p.parse_spec("bogus"), error);
  EXPECT_THROW(p.parse_spec("zzz.nth=1"), error);
  EXPECT_THROW(p.parse_spec("alloc.wat=1"), error);
  EXPECT_THROW(p.parse_spec("alloc.nth=abc"), error);
  EXPECT_FALSE(p.armed());
}

TEST(FaultSpec, NthEveryLimitTriggerDeterministically) {
  fault::FaultPlan p;
  fault::SiteConfig cfg;
  cfg.nth = 3;
  cfg.every = 2;
  cfg.limit = 2;
  p.arm(fault::Site::kNan, cfg);
  // Visits 1..8: fires on 3 and 5, then the limit caps it.
  std::string fired;
  for (int v = 1; v <= 8; ++v)
    fired += p.should_inject(fault::Site::kNan) ? '1' : '0';
  EXPECT_EQ(fired, "00101000");
  EXPECT_EQ(p.visits(fault::Site::kNan), 8u);
  EXPECT_EQ(p.injected(fault::Site::kNan), 2u);
}

TEST(FaultSpec, ByteThresholdTrigger) {
  fault::FaultPlan p;
  fault::SiteConfig cfg;
  cfg.threshold = 1000;
  p.arm(fault::Site::kAlloc, cfg);
  EXPECT_FALSE(p.should_inject(fault::Site::kAlloc, 1000));
  EXPECT_TRUE(p.should_inject(fault::Site::kAlloc, 1001));
}

// ---------------------------------------------------------------------------
// Corrupt-input corpus: strict mode fails with the offending line number,
// non-strict skips the record and counts it.
// ---------------------------------------------------------------------------

struct CorruptCase {
  const char* file;
  std::size_t bad_line;       ///< expected parse_error::line in strict mode
  std::size_t good_records;   ///< surviving records in non-strict mode
};

class CorruptCorpus : public ::testing::TestWithParam<CorruptCase> {};

TEST_P(CorruptCorpus, StrictThrowsWithLineNumber) {
  const CorruptCase& c = GetParam();
  try {
    read_tns_file(corrupt(c.file));
    FAIL() << c.file << ": strict read of corrupt input did not throw";
  } catch (const parse_error& e) {
    EXPECT_EQ(e.line, c.bad_line) << c.file << ": " << e.what();
  }
}

TEST_P(CorruptCorpus, NonStrictSkipsAndCounts) {
  const CorruptCase& c = GetParam();
  TnsReadOptions opts;
  opts.strict = false;
  TnsReadStats st;
  const CooTensor t = read_tns_file(corrupt(c.file), {}, opts, &st);
  EXPECT_EQ(st.records, c.good_records) << c.file;
  EXPECT_GE(st.skipped_malformed, 1u) << c.file;
  EXPECT_EQ(t.nnz(), c.good_records) << c.file;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CorruptCorpus,
    ::testing::Values(CorruptCase{"nonnumeric_value.tns", 3, 2},
                      CorruptCase{"nonnumeric_index.tns", 2, 1},
                      CorruptCase{"fractional_index.tns", 3, 1},
                      CorruptCase{"index_overflow.tns", 2, 1},
                      CorruptCase{"negative_index.tns", 4, 2},
                      CorruptCase{"zero_index.tns", 2, 1},
                      CorruptCase{"wrong_arity.tns", 4, 3},
                      CorruptCase{"truncated_record.tns", 4, 2}),
    [](const ::testing::TestParamInfo<CorruptCase>& info) {
      std::string n = info.param.file;
      return n.substr(0, n.find('.'));
    });

TEST(CorruptCorpusSpecial, NoRecordsThrowsEvenNonStrict) {
  TnsReadOptions opts;
  opts.strict = false;
  EXPECT_THROW(read_tns_file(corrupt("no_records.tns"), {}, opts), parse_error);
}

// ---------------------------------------------------------------------------
// Memory-budget degradation chain (model-driven, no fault injection needed).
// ---------------------------------------------------------------------------

CooTensor degradation_tensor() {
  return generate_zipf({40, 50, 60}, 15000, 1.1, 7);
}

TEST(DegradationChain, UnbudgetedChainIsJustTheWinner) {
  const CooTensor t = degradation_tensor();
  AutoEngine engine;
  engine.prepare(t, 8);
  ASSERT_EQ(engine.chain().size(), 1u);
  EXPECT_TRUE(engine.chain()[0].engine.empty());  // the dtree winner
  EXPECT_TRUE(engine.degradation_events().empty());
  EXPECT_EQ(engine.chain_position(), 0u);
}

// Smallest predicted footprint across every dtree strategy: budgets below
// this force the chain onto the fixed fallbacks (the tuner would otherwise
// just pick a cheaper dtree strategy that fits, with no degradation).
std::size_t min_dtree_footprint(const TunerReport& report) {
  std::size_t fp = std::numeric_limits<std::size_t>::max();
  for (const RankedStrategy& rs : report.ranked)
    fp = std::min(fp, rs.prediction.total_memory_bytes());
  return fp;
}

TEST(DegradationChain, PicksFirstLevelTheModelSaysFits) {
  const CooTensor t = degradation_tensor();
  const index_t rank = 8;

  AutoEngine probe;
  probe.prepare(t, rank);
  const std::size_t dtree_floor = min_dtree_footprint(probe.report());
  ASSERT_GT(dtree_floor, 1u);

  for (const std::size_t budget :
       {dtree_floor - 1, dtree_floor / 4, std::size_t{1}}) {
    if (budget == 0) continue;
    KernelContext ctx;
    ctx.mem_budget = budget;
    AutoEngine engine(false, 0, CostModelParams{}, 3, ctx);
    try {
      engine.prepare(t, rank);
    } catch (const budget_error&) {
      // The whole chain was over budget AND the last resort still tripped
      // the arena — plausible only for the absurd 1-byte budget.
      EXPECT_EQ(budget, 1u);
      continue;
    }
    const auto& chain = engine.chain();
    ASSERT_GE(chain.size(), 2u) << "budget set but no fallbacks planned";
    const std::size_t pos = engine.chain_position();
    // Every skipped level was predicted over budget; the selected level is
    // the first that fits (or the terminal last resort).
    for (std::size_t i = 0; i < pos; ++i)
      EXPECT_FALSE(chain[i].fits_budget) << "level " << i << " skipped "
                                            "although the model said it fits";
    if (pos + 1 < chain.size())
      EXPECT_TRUE(chain[pos].fits_budget);
    EXPECT_GT(pos, 0u) << "budget " << budget << " below the cheapest dtree "
                       << "footprint but no fallback was taken";
    // Prepare-time skips are all recorded as model-predicted degradations.
    ASSERT_EQ(engine.degradation_events().size(), pos);
    for (const DegradationEvent& ev : engine.degradation_events()) {
      EXPECT_STREQ(ev.reason, "predicted-over-budget");
      EXPECT_TRUE(ev.at_prepare);
      EXPECT_EQ(ev.budget_bytes, budget);
    }
    // The degraded engine still answers MTTKRPs (the terminal level may
    // legitimately trip the arena at run time on the tiny budgets).
    Rng rng(3);
    std::vector<Matrix> factors;
    for (mode_t m = 0; m < t.order(); ++m)
      factors.push_back(Matrix::random_uniform(t.dim(m), rank, rng));
    Matrix out;
    try {
      engine.compute(0, factors, out);
      EXPECT_EQ(out.rows(), t.dim(0));
      EXPECT_EQ(out.cols(), rank);
    } catch (const budget_error&) {
      EXPECT_EQ(engine.chain_position(), chain.size() - 1)
          << "arena tripped but the chain was not exhausted";
    }
  }
}

// The planned fallback order is part of the robustness contract: the
// linearized engine sits directly behind the dtree winner, ahead of the
// contraction and trie fallbacks, and the terminal last resort stays "coo".
TEST(DegradationChain, PlannedFallbacksFollowDocumentedOrder) {
  const CooTensor t = degradation_tensor();
  const index_t rank = 8;

  AutoEngine probe;
  probe.prepare(t, rank);
  const std::size_t dtree_floor = min_dtree_footprint(probe.report());
  ASSERT_GT(dtree_floor, 1u);

  KernelContext ctx;
  ctx.mem_budget = dtree_floor - 1;
  AutoEngine engine(false, 0, CostModelParams{}, 3, ctx);
  engine.prepare(t, rank);
  const auto& chain = engine.chain();
  ASSERT_EQ(chain.size(), 5u);
  EXPECT_TRUE(chain[0].engine.empty());  // the dtree winner
  EXPECT_EQ(chain[1].engine, "alto");
  EXPECT_EQ(chain[2].engine, "ttv-chain");
  EXPECT_EQ(chain[3].engine, "csf");
  EXPECT_EQ(chain[4].engine, "coo");

  // On this tensor the budget that evicts the dtree winner still admits the
  // alto level, so the chain must stop there — and the degraded engine's
  // MTTKRP must agree with an unbudgeted reference engine.
  ASSERT_TRUE(chain[1].fits_budget)
      << "degradation tensor too large for the alto level; retune the test";
  EXPECT_EQ(engine.chain_position(), 1u);

  Rng rng(5);
  std::vector<Matrix> factors;
  for (mode_t m = 0; m < t.order(); ++m)
    factors.push_back(Matrix::random_uniform(t.dim(m), rank, rng));
  const auto reference = make_engine("coo", t, rank);
  for (mode_t m = 0; m < t.order(); ++m) {
    Matrix out, ref;
    engine.compute(m, factors, out);
    reference->compute(m, factors, ref);
    ASSERT_EQ(out.rows(), ref.rows());
    ASSERT_EQ(out.cols(), ref.cols());
    double scale = 1.0, err = 0.0;
    for (index_t i = 0; i < out.rows(); ++i) {
      for (index_t k = 0; k < out.cols(); ++k) {
        scale = std::max(scale, std::abs(static_cast<double>(ref(i, k))));
        err = std::max(err, std::abs(static_cast<double>(out(i, k)) -
                                     static_cast<double>(ref(i, k))));
      }
    }
    EXPECT_LT(err / scale, 1e-10) << "mode " << static_cast<int>(m);
  }
}

TEST(DegradationChain, BudgetedFitMatchesUnbudgeted) {
  const CooTensor t = degradation_tensor();

  CpAlsOptions opt;
  opt.rank = 6;
  opt.max_iterations = 6;
  opt.tolerance = 0;  // fixed iteration count for an apples-to-apples fit
  opt.seed = 42;
  opt.engine_name = "auto";
  const CpAlsResult base = cp_als(t, opt);
  EXPECT_EQ(base.kernel_stats.degradations, 0u);

  // A budget just below the cheapest dtree strategy's predicted footprint
  // forces the chain onto the fixed fallbacks while staying loose enough for
  // their (owner-pinnable) scratch to fit.
  AutoEngine probe;
  probe.prepare(t, opt.rank);
  const std::size_t dtree_floor = min_dtree_footprint(probe.report());
  ASSERT_GT(dtree_floor, 1u);

  opt.memory_budget_bytes = dtree_floor - 1;
  const CpAlsResult degraded = cp_als(t, opt);
  EXPECT_GT(degraded.kernel_stats.degradations, 0u);
  ASSERT_TRUE(std::isfinite(degraded.final_fit()));
  EXPECT_NEAR(static_cast<double>(degraded.final_fit()),
              static_cast<double>(base.final_fit()), 1e-10);
}

// ---------------------------------------------------------------------------
// Injected faults (require -DMDCP_ENABLE_FAULTINJECT=ON).
// ---------------------------------------------------------------------------

class InjectedFaults : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::enabled())
      GTEST_SKIP() << "built without MDCP_ENABLE_FAULTINJECT";
    fault::FaultPlan::instance().reset();
  }
  void TearDown() override { fault::FaultPlan::instance().reset(); }
};

TEST_F(InjectedFaults, AllocFailureSweepNeverEscapesUntyped) {
  const CooTensor t = degradation_tensor();
  CpAlsOptions opt;
  opt.rank = 6;
  opt.max_iterations = 3;
  opt.tolerance = 0;
  opt.engine_name = "auto";

  int completed = 0;
  int typed_failures = 0;
  int runs_with_degradation = 0;
  for (int nth = 1; nth <= 10; ++nth) {
    // Fresh arena per run: the injection site lives in slab growth, and a
    // previously grown (shared) workspace would never grow again.
    Workspace ws;
    KernelContext ctx;
    ctx.workspace = &ws;
    // A generous budget keeps the full fallback chain planned, so an
    // injected bad_alloc has somewhere to degrade to.
    ctx.mem_budget = std::size_t{1} << 32;
    AutoEngine engine(false, 0, CostModelParams{}, 3, ctx);
    fault::FaultPlan::instance().parse_spec("alloc.nth=" +
                                            std::to_string(nth));
    try {
      const CpAlsResult r = cp_als(t, engine, opt);
      ++completed;
      EXPECT_TRUE(std::isfinite(r.final_fit())) << "alloc.nth=" << nth;
      if (r.kernel_stats.degradations > 0) ++runs_with_degradation;
    } catch (const mdcp::error&) {
      // Typed failure is an acceptable outcome (chain exhausted); anything
      // else — std::bad_alloc in particular — fails the test as an uncaught
      // exception.
      ++typed_failures;
    }
    fault::FaultPlan::instance().reset();
  }
  EXPECT_EQ(completed + typed_failures, 10);
  EXPECT_GT(completed, 0) << "no injection schedule survived";
  EXPECT_GT(runs_with_degradation, 0)
      << "no injected allocation failure was absorbed by the chain";
}

TEST_F(InjectedFaults, NanPoisonTriggersRecoveryAndConverges) {
  const CooTensor t = degradation_tensor();
  CpAlsOptions opt;
  opt.rank = 6;
  opt.max_iterations = 10;
  opt.tolerance = 0;
  opt.engine_name = "coo";
  fault::FaultPlan::instance().parse_spec("nan.nth=2;nan.limit=1");

  const CpAlsResult r = cp_als(t, opt);
  EXPECT_GE(r.recoveries, 1);
  ASSERT_FALSE(r.fits.empty());
  EXPECT_TRUE(std::isfinite(r.final_fit()));
  // One poisoned kernel output must not wreck the decomposition: the
  // re-randomized factor re-converges to a sane fit.
  EXPECT_GT(r.final_fit(), 0);
}

TEST_F(InjectedFaults, RecoveryBudgetExhaustionIsTyped) {
  const CooTensor t = degradation_tensor();
  CpAlsOptions opt;
  opt.rank = 6;
  opt.max_iterations = 20;
  opt.tolerance = 0;
  opt.engine_name = "coo";
  opt.max_recoveries = 2;
  // Poison every single kernel output: recovery cannot keep up.
  fault::FaultPlan::instance().parse_spec("nan.nth=1;nan.every=1");
  EXPECT_THROW(cp_als(t, opt), numeric_error);
}

TEST_F(InjectedFaults, IoShortReadTruncatesDeterministically) {
  fault::FaultPlan::instance().parse_spec("io.lines=2");
  std::istringstream in("1 1 1 1.0\n2 2 2 2.0\n3 3 3 3.0\n4 4 4 4.0\n");
  TnsReadStats st;
  const CooTensor t = read_tns(in, {}, {}, &st);
  EXPECT_TRUE(st.truncated);
  EXPECT_EQ(st.records, 2u);
  EXPECT_EQ(t.nnz(), 2u);
}

}  // namespace
}  // namespace mdcp
