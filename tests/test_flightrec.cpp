// Flight recorder, stall watchdog, and crash-forensics tests.
//
// Covers the liveness layer end to end: lock-free ring overflow under
// concurrent writers, heartbeat epoch monotonicity, watchdog firing (and
// not firing) semantics, the mdcp-crash-dump/1 schema, postmortem analysis
// of golden and truncated dumps, cooperative cancellation through cp_als,
// a fork-based SIGSEGV death test of the signal handlers, and an audit
// that the handler-path dump writer performs zero heap allocations.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "cpals/cpals.hpp"
#include "obs/flightrec.hpp"
#include "obs/history.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/watchdog.hpp"
#include "tensor/generator.hpp"
#include "util/faultinject.hpp"

#ifndef MDCP_TEST_DATA_DIR
#define MDCP_TEST_DATA_DIR "tests/data"
#endif

// ---------------------------------------------------------------------------
// Heap-allocation audit instrumentation. The global operator new is replaced
// for this whole test binary; allocations are only *counted* while a test
// arms the audit flag around a handler-path call.
// ---------------------------------------------------------------------------

namespace {
std::atomic<bool> g_audit_allocations{false};
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t n) {
  if (g_audit_allocations.load(std::memory_order_relaxed))
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace mdcp {
namespace {

std::string crash_fixture(const char* name) {
  return std::string(MDCP_TEST_DATA_DIR) + "/crash/" + name;
}

std::string temp_dir(const char* tag) {
  static std::atomic<int> counter{0};
  std::string d = ::testing::TempDir() + "mdcp-" + tag + "-" +
                  std::to_string(counter.fetch_add(1));
  std::error_code ec;
  std::filesystem::create_directories(d, ec);
  return d;
}

std::string find_crash_dump(const std::string& dir) {
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("crash-", 0) == 0) return e.path().string();
  }
  return {};
}

// ---------------------------------------------------------------------------
// Flight recorder core.
// ---------------------------------------------------------------------------

TEST(FlightRecorder, RingOverflowWithConcurrentWriters) {
  auto& fr = obs::FlightRecorder::instance();
  fr.reset();
  const std::uint64_t base = fr.events_recorded();

  constexpr int kThreads = 4;
  constexpr int kPerThread =
      static_cast<int>(obs::FlightRecorder::kRingCapacity);  // 4x overflow
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i)
        obs::fr_record(obs::FrEvent::kIteration, obs::FrPhase::kIteration, i,
                       t);
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(fr.events_recorded() - base,
            static_cast<std::uint64_t>(kThreads) * kPerThread);

  const auto events = fr.snapshot_events();
  ASSERT_FALSE(events.empty());
  EXPECT_LE(events.size(), obs::FlightRecorder::kRingCapacity);
  // Oldest-first, strictly increasing global sequence, no duplicates.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  // Only the newest ring-capacity events can be retained.
  const std::uint64_t total = fr.events_recorded();
  for (const auto& e : events)
    EXPECT_GT(e.seq + obs::FlightRecorder::kRingCapacity, total);
}

TEST(FlightRecorder, HeartbeatEpochsAreMonotonic) {
  auto& fr = obs::FlightRecorder::instance();
  fr.reset();
  const std::uint32_t tid = fr.thread_slot();

  std::uint64_t prev_epoch = 0;
  std::uint64_t prev_progress = fr.progress();
  for (int i = 1; i <= 64; ++i) {
    fr.beat(obs::FrPhase::kCompute, i);
    const auto hearts = fr.snapshot_heartbeats();
    const auto it = std::find_if(
        hearts.begin(), hearts.end(),
        [&](const obs::HeartbeatSnapshot& h) { return h.tid == tid; });
    ASSERT_NE(it, hearts.end());
    EXPECT_GT(it->epoch, prev_epoch);
    EXPECT_EQ(it->phase, obs::FrPhase::kCompute);
    EXPECT_EQ(it->detail, i);
    prev_epoch = it->epoch;
    EXPECT_GT(fr.progress(), prev_progress);
    prev_progress = fr.progress();
  }
}

// ---------------------------------------------------------------------------
// Watchdog.
// ---------------------------------------------------------------------------

TEST(Watchdog, FiresOnQuietRunAndSetsCancelFlag) {
  obs::FlightRecorder::instance().reset();
  const std::string dir = temp_dir("wd-fire");
  std::atomic<bool> cancel{false};

  obs::WatchdogOptions wd;
  wd.deadline_seconds = 0.15;
  wd.poll_seconds = 0.02;
  wd.policy = obs::WatchdogPolicy::kCancel;
  wd.dump_dir = dir;
  wd.cancel = &cancel;
  obs::Watchdog dog(wd);

  // Nobody beats: the watchdog must fire within a few deadlines.
  for (int i = 0; i < 200 && !dog.fired(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  dog.stop();
  ASSERT_TRUE(dog.fired());
  EXPECT_TRUE(cancel.load());
  ASSERT_FALSE(dog.dump_path().empty());

  obs::CrashDumpAnalysis a;
  std::string err;
  ASSERT_TRUE(obs::analyze_crash_dump(dog.dump_path(), a, &err)) << err;
  EXPECT_EQ(a.cause, "watchdog");
  EXPECT_TRUE(a.complete);
}

TEST(Watchdog, DoesNotFireWhileHeartbeatsAdvance) {
  obs::FlightRecorder::instance().reset();
  const std::string dir = temp_dir("wd-quiet");

  obs::WatchdogOptions wd;
  wd.deadline_seconds = 0.2;
  wd.poll_seconds = 0.02;
  wd.dump_dir = dir;
  obs::Watchdog dog(wd);

  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(600);
  while (std::chrono::steady_clock::now() < until) {
    obs::fr_beat(obs::FrPhase::kIteration, 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  dog.stop();
  EXPECT_FALSE(dog.fired());
  EXPECT_TRUE(find_crash_dump(dir).empty());
}

TEST(Watchdog, PolicyNamesRoundTrip) {
  for (const auto p :
       {obs::WatchdogPolicy::kReport, obs::WatchdogPolicy::kCancel,
        obs::WatchdogPolicy::kAbort}) {
    obs::WatchdogPolicy parsed = obs::WatchdogPolicy::kReport;
    ASSERT_TRUE(
        obs::watchdog_policy_from_name(obs::watchdog_policy_name(p), parsed));
    EXPECT_EQ(parsed, p);
  }
  obs::WatchdogPolicy parsed = obs::WatchdogPolicy::kReport;
  EXPECT_FALSE(obs::watchdog_policy_from_name("bogus", parsed));
}

// ---------------------------------------------------------------------------
// Dump schema + postmortem analysis.
// ---------------------------------------------------------------------------

TEST(CrashDump, EveryLineIsValidJsonAndSchemaTagged) {
  auto& fr = obs::FlightRecorder::instance();
  fr.reset();
  obs::fr_record(obs::FrEvent::kIteration, obs::FrPhase::kIteration, 1);
  obs::fr_beat(obs::FrPhase::kCompute, 2);

  const std::string dir = temp_dir("dump-schema");
  const std::string path = obs::write_crash_dump_file(dir, "test", 0);
  ASSERT_FALSE(path.empty());

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string line;
  std::vector<std::string> types;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty());
    obs::JsonValue v;
    std::string err;
    ASSERT_TRUE(obs::json_parse(line, v, &err)) << line << ": " << err;
    const auto* t = v.find("type", obs::JsonValue::Kind::kString);
    ASSERT_NE(t, nullptr) << line;
    types.push_back(t->as_string());
    if (types.back() == "crash") {
      const auto* schema = v.find("schema", obs::JsonValue::Kind::kString);
      ASSERT_NE(schema, nullptr);
      EXPECT_EQ(schema->as_string(), obs::kCrashDumpSchema);
    }
  }
  ASSERT_FALSE(types.empty());
  EXPECT_EQ(types.front(), "crash");
  EXPECT_EQ(types.back(), "end");
  EXPECT_NE(std::find(types.begin(), types.end(), "heartbeat"), types.end());
  EXPECT_NE(std::find(types.begin(), types.end(), "event"), types.end());
}

TEST(Postmortem, GoldenWatchdogDumpYieldsVerdict) {
  obs::CrashDumpAnalysis a;
  std::string err;
  ASSERT_TRUE(obs::analyze_crash_dump(crash_fixture("watchdog-golden.json"),
                                      a, &err))
      << err;
  EXPECT_EQ(a.cause, "watchdog");
  EXPECT_EQ(a.signal, 0);
  EXPECT_EQ(a.pid, 1234);
  EXPECT_EQ(a.host, "golden-host");
  EXPECT_TRUE(a.complete);
  EXPECT_EQ(a.truncated_lines, 0u);

  ASSERT_EQ(a.threads.size(), 2u);
  EXPECT_EQ(a.threads[0].tid, 0u);
  EXPECT_EQ(a.threads[0].phase, "compute");
  EXPECT_EQ(a.threads[0].age_ns, 100000000u);
  EXPECT_EQ(a.threads[1].phase, "parallel-for");

  ASSERT_EQ(a.events.size(), 3u);
  EXPECT_EQ(a.events[0].kind, "iteration");
  EXPECT_EQ(a.events[2].kind, "tile-batch");
  EXPECT_EQ(a.events[2].b, 2);

  EXPECT_TRUE(a.has_kernel_stats);
  EXPECT_EQ(a.compute_calls, 9u);
  EXPECT_EQ(a.degradations, 1u);
  ASSERT_EQ(a.counters.size(), 1u);
  EXPECT_EQ(a.counters[0].first, "watchdog.fired");

  // tid 0 beat most recently (smallest age): the stall is attributed to its
  // phase, not to the long-idle worker.
  ASSERT_TRUE(a.has_verdict);
  EXPECT_EQ(a.verdict_tid, 0u);
  EXPECT_EQ(a.verdict_phase, "compute");
  EXPECT_EQ(a.verdict_detail, 1);
  EXPECT_EQ(a.verdict_age_ns, 100000000u);
}

TEST(Postmortem, TruncatedDumpStillAnalyzes) {
  obs::CrashDumpAnalysis a;
  std::string err;
  ASSERT_TRUE(obs::analyze_crash_dump(crash_fixture("truncated-golden.json"),
                                      a, &err))
      << err;
  EXPECT_EQ(a.cause, "signal");
  EXPECT_EQ(a.signal, 11);
  EXPECT_FALSE(a.complete);          // no {"type":"end"} terminator
  EXPECT_EQ(a.truncated_lines, 1u);  // the cut-off trailing event line
  ASSERT_EQ(a.threads.size(), 1u);
  ASSERT_TRUE(a.has_verdict);
  EXPECT_EQ(a.verdict_phase, "solve");
}

TEST(Postmortem, GeneratedDumpTruncatedMidFileStillAnalyzes) {
  auto& fr = obs::FlightRecorder::instance();
  fr.reset();
  for (int i = 0; i < 32; ++i)
    obs::fr_record(obs::FrEvent::kIteration, obs::FrPhase::kIteration, i);
  obs::fr_beat(obs::FrPhase::kIteration, 31);

  const std::string dir = temp_dir("dump-trunc");
  const std::string path = obs::write_crash_dump_file(dir, "test", 0);
  ASSERT_FALSE(path.empty());
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full * 3 / 5);

  obs::CrashDumpAnalysis a;
  std::string err;
  ASSERT_TRUE(obs::analyze_crash_dump(path, a, &err)) << err;
  EXPECT_FALSE(a.complete);
}

TEST(Postmortem, RejectsFileWithoutCrashHeader) {
  const std::string dir = temp_dir("no-header");
  const std::string path = dir + "/not-a-dump.json";
  std::ofstream(path) << "{\"type\":\"event\",\"seq\":1}\n";
  obs::CrashDumpAnalysis a;
  std::string err;
  EXPECT_FALSE(obs::analyze_crash_dump(path, a, &err));
  EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------------
// Cooperative cancellation through cp_als.
// ---------------------------------------------------------------------------

TEST(Cancel, PreSetFlagStopsBeforeFirstIteration) {
  const CooTensor t = generate_uniform({12, 13, 14}, 300, 7);
  std::atomic<bool> cancel{true};
  CpAlsOptions opt;
  opt.rank = 3;
  opt.max_iterations = 20;
  opt.engine = EngineKind::kCoo;
  opt.cancel = &cancel;
  const CpAlsResult r = cp_als(t, opt);
  EXPECT_TRUE(r.cancelled);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Cancel, SummaryRecordsCancelledTrue) {
  const CooTensor t = generate_uniform({12, 13, 14}, 300, 7);
  const std::string dir = temp_dir("cancel-report");
  const std::string report = dir + "/run.jsonl";
  std::atomic<bool> cancel{true};
  {
    obs::RunReporter reporter(report);
    ASSERT_TRUE(reporter.ok());
    reporter.write_header(t, "test", 1);
    CpAlsOptions opt;
    opt.rank = 3;
    opt.max_iterations = 20;
    opt.engine = EngineKind::kCoo;
    opt.cancel = &cancel;
    opt.reporter = &reporter;
    const CpAlsResult r = cp_als(t, opt);
    EXPECT_TRUE(r.cancelled);
    ASSERT_TRUE(reporter.close());
  }
  std::ifstream is(report);
  std::string line, last;
  while (std::getline(is, line))
    if (!line.empty()) last = line;
  obs::JsonValue v;
  ASSERT_TRUE(obs::json_parse(last, v, nullptr)) << last;
  const auto* cancelled = v.find("cancelled", obs::JsonValue::Kind::kBool);
  ASSERT_NE(cancelled, nullptr);
  EXPECT_TRUE(cancelled->as_bool());
  const auto* aborted = v.find("aborted", obs::JsonValue::Kind::kBool);
  ASSERT_NE(aborted, nullptr);
  EXPECT_FALSE(aborted->as_bool());
}

TEST(Cancel, TimerFlipsFlag) {
  std::atomic<bool> flag{false};
  {
    obs::CancelTimer timer(0.05, &flag);
    for (int i = 0; i < 100 && !flag.load(); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(flag.load());
}

// ---------------------------------------------------------------------------
// Handler-path allocation audit: the signal-safe dump core must not touch
// the heap. The faultinject alloc site is armed so any workspace growth on
// the path would additionally throw (it must never be reached).
// ---------------------------------------------------------------------------

TEST(CrashHandlers, DumpCorePerformsZeroHeapAllocations) {
#if !defined(__unix__) && !defined(__APPLE__)
  GTEST_SKIP() << "POSIX-only";
#else
  auto& fr = obs::FlightRecorder::instance();
  fr.reset();
  for (int i = 0; i < 100; ++i)
    obs::fr_record(obs::FrEvent::kComputeBegin, obs::FrPhase::kCompute, i);
  obs::fr_beat(obs::FrPhase::kCompute, 0);

  // Install once so the counter snapshot (taken under the registry mutex in
  // normal context) is populated — the handler path then reads it lock-free.
  const std::string dir = temp_dir("audit");
  ASSERT_TRUE(obs::crash_handlers_install(dir));
  KernelStats stats;
  stats.compute_calls = 7;
  obs::crash_set_kernel_stats(&stats);

  const std::string out = dir + "/audit-dump.json";
  const int fd = ::open(out.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);

#if MDCP_ENABLE_FAULTINJECT
  fault::FaultPlan::instance().parse_spec("alloc.nth=1");
#endif
  g_allocation_count.store(0);
  g_audit_allocations.store(true);
  const std::size_t torn = obs::write_crash_dump_core(fd, "audit", 0);
  obs::write_crash_dump_end(fd, torn);
  g_audit_allocations.store(false);
#if MDCP_ENABLE_FAULTINJECT
  fault::FaultPlan::instance().reset();
#endif
  ::close(fd);
  obs::crash_set_kernel_stats(nullptr);
  obs::crash_handlers_uninstall();

  EXPECT_EQ(g_allocation_count.load(), 0u)
      << "crash-handler dump path allocated on the heap";

  obs::CrashDumpAnalysis a;
  std::string err;
  ASSERT_TRUE(obs::analyze_crash_dump(out, a, &err)) << err;
  EXPECT_TRUE(a.complete);
  EXPECT_TRUE(a.has_kernel_stats);
  EXPECT_EQ(a.compute_calls, 7u);
#endif
}

// ---------------------------------------------------------------------------
// Fork-based death test: an injected SIGSEGV must leave a parseable dump
// and promote the in-flight report with an `aborted` summary record.
// ---------------------------------------------------------------------------

TEST(CrashHandlers, SigsegvLeavesDumpAndAbortedReport) {
#if !defined(__unix__) && !defined(__APPLE__)
  GTEST_SKIP() << "POSIX-only";
#else
  const std::string dir = temp_dir("death");
  const std::string report = dir + "/run-death.jsonl";

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: set up a run-in-flight and die. Only _exit on failure paths —
    // gtest must not double-report from the forked process.
    obs::FlightRecorder::instance().reset();
    obs::fr_record(obs::FrEvent::kIteration, obs::FrPhase::kIteration, 5);
    obs::fr_beat(obs::FrPhase::kCompute, 1);
    if (!obs::crash_handlers_install(dir)) ::_exit(10);
    {
      std::ofstream os(report + ".tmp");
      os << "{\"type\":\"header\",\"schema\":\"mdcp-run-report/1\","
            "\"report_version\":2,\"tensor_fingerprint\":1,"
            "\"kernel_threads\":1}\n";
    }
    obs::crash_attach_report(
        report + ".tmp", report,
        "{\"type\":\"summary\",\"schema\":\"mdcp-run-report/1\","
        "\"engine\":\"test\",\"rank\":3,\"iterations\":0,"
        "\"converged\":false,\"aborted\":true}");
    ::raise(SIGSEGV);
    ::_exit(11);  // unreachable: the handler re-raises with SIG_DFL
  }

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited with " << status;
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  // The dump is parseable and attributes the crash.
  const std::string dump = find_crash_dump(dir);
  ASSERT_FALSE(dump.empty());
  obs::CrashDumpAnalysis a;
  std::string err;
  ASSERT_TRUE(obs::analyze_crash_dump(dump, a, &err)) << err;
  EXPECT_EQ(a.cause, "signal");
  EXPECT_EQ(a.signal, SIGSEGV);
  EXPECT_TRUE(a.complete);
  ASSERT_TRUE(a.has_verdict);
  EXPECT_EQ(a.verdict_phase, "compute");

  // The .tmp report was promoted with the aborted summary appended...
  EXPECT_FALSE(std::filesystem::exists(report + ".tmp"));
  ASSERT_TRUE(std::filesystem::exists(report));

  // ...and the history store ingests it as an aborted observation instead of
  // skipping an orphan.
  obs::HistoryStore store;
  obs::HistoryIngestStats st = store.ingest_dir(dir);
  EXPECT_EQ(st.files_ingested, 1u);
  EXPECT_EQ(st.files_orphaned_tmp, 0u);
  ASSERT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.observations()[0].aborted);
  const auto groups = store.groups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].runs, 0u);
  EXPECT_EQ(groups[0].aborted_runs, 1u);
#endif
}

// ---------------------------------------------------------------------------
// Stall / segv fault-injection sites (spec grammar only; firing them needs
// MDCP_ENABLE_FAULTINJECT and is exercised by the CI crash-smoke job).
// ---------------------------------------------------------------------------

TEST(FaultSites, StallAndSegvSpecsParse) {
  fault::FaultPlan p;
  p.parse_spec("stall.nth=2;stall.ms=2000;segv.nth=5");
  EXPECT_EQ(p.config(fault::Site::kStall).nth, 2u);
  EXPECT_EQ(p.config(fault::Site::kStall).threshold, 2000u);
  EXPECT_EQ(p.config(fault::Site::kSegv).nth, 5u);
  EXPECT_TRUE(p.armed());
  EXPECT_STREQ(fault::site_name(fault::Site::kStall), "stall");
  EXPECT_STREQ(fault::site_name(fault::Site::kSegv), "segv");
}

#if MDCP_ENABLE_FAULTINJECT
TEST(FaultSites, InjectedStallTripsWatchdog) {
  const CooTensor t = generate_uniform({12, 13, 14}, 300, 7);
  obs::FlightRecorder::instance().reset();
  const std::string dir = temp_dir("stall-wd");
  // Stall 1.2 s at the second liveness site against a 0.2 s deadline.
  fault::FaultPlan::instance().parse_spec("stall.nth=2;stall.ms=1200");

  CpAlsOptions opt;
  opt.rank = 3;
  opt.max_iterations = 10;
  opt.engine = EngineKind::kCoo;
  opt.watchdog.deadline_seconds = 0.2;
  opt.watchdog.poll_seconds = 0.02;
  opt.watchdog.policy = obs::WatchdogPolicy::kCancel;
  opt.watchdog.dump_dir = dir;
  const CpAlsResult r = cp_als(t, opt);
  fault::FaultPlan::instance().reset();

  EXPECT_TRUE(r.watchdog_fired);
  EXPECT_TRUE(r.cancelled);
  ASSERT_FALSE(r.watchdog_dump_path.empty());
  obs::CrashDumpAnalysis a;
  std::string err;
  ASSERT_TRUE(obs::analyze_crash_dump(r.watchdog_dump_path, a, &err)) << err;
  EXPECT_EQ(a.cause, "watchdog");
  ASSERT_TRUE(a.has_verdict);
}
#endif  // MDCP_ENABLE_FAULTINJECT

}  // namespace
}  // namespace mdcp
