#include <gtest/gtest.h>

#include <cmath>

#include "cpals/kruskal.hpp"
#include "tensor/generator.hpp"
#include "tensor/stats.hpp"
#include "util/error.hpp"

namespace mdcp {
namespace {

TEST(Generator, UniformRespectsShapeAndNnz) {
  const shape_t shape{50, 60, 70};
  const auto t = generate_uniform(shape, 2000, 1);
  t.validate();
  EXPECT_EQ(t.shape(), shape);
  EXPECT_LE(t.nnz(), 2000u);
  EXPECT_GT(t.nnz(), 1900u);  // few collisions at this density
}

TEST(Generator, UniformDeterministicBySeed) {
  const shape_t shape{20, 20, 20};
  EXPECT_EQ(generate_uniform(shape, 500, 7), generate_uniform(shape, 500, 7));
  EXPECT_FALSE(generate_uniform(shape, 500, 7) ==
               generate_uniform(shape, 500, 8));
}

TEST(Generator, UniformValuesPositive) {
  const auto t = generate_uniform(shape_t{30, 30}, 400, 3);
  for (nnz_t i = 0; i < t.nnz(); ++i) EXPECT_GT(t.value(i), 0.0);
}

TEST(Generator, ZipfSkewsIndexUsage) {
  const shape_t shape{1000, 1000, 1000};
  const auto zipf = generate_zipf(shape, 20000, 1.5, 5);
  const auto unif = generate_uniform(shape, 20000, 5);
  zipf.validate();
  // Skewed draws reuse few indices; uniform draws cover many.
  EXPECT_LT(zipf.distinct_in_mode(0), unif.distinct_in_mode(0) * 7 / 10);
}

TEST(Generator, ClusteredIncreasesProjectionOverlap) {
  const shape_t shape{2000, 2000, 2000, 2000};
  const auto clustered =
      generate_clustered(shape, 20000, {.clusters = 16, .spread = 4.0}, 11);
  const auto uniform = generate_uniform(shape, 20000, 11);
  clustered.validate();
  // Projecting onto modes {0,1} collapses far more tuples for the clustered
  // tensor — the index-overlap property that drives memoization gains.
  const auto c01 = distinct_projection_count(clustered, 0b0011);
  const auto u01 = distinct_projection_count(uniform, 0b0011);
  EXPECT_LT(c01, u01 / 2);
}

TEST(Generator, ClusteredRejectsZeroClusters) {
  EXPECT_THROW(
      generate_clustered(shape_t{10, 10}, 100, {.clusters = 0}, 1), error);
}

TEST(Generator, PlantedProducesGroundTruth) {
  const auto planted = generate_planted(shape_t{40, 50, 60}, 4, 3000, 0.0, 21);
  planted.tensor.validate();
  EXPECT_EQ(planted.factors.size(), 3u);
  EXPECT_EQ(planted.weights.size(), 4u);
  EXPECT_EQ(planted.factors[0].rows(), 40u);
  EXPECT_EQ(planted.factors[0].cols(), 4u);

  // Noiseless: every stored value equals the Kruskal model exactly.
  KruskalTensor model{planted.weights, planted.factors};
  std::vector<index_t> c(3);
  for (nnz_t i = 0; i < std::min<nnz_t>(planted.tensor.nnz(), 100); ++i) {
    planted.tensor.coords(i, c);
    EXPECT_NEAR(planted.tensor.value(i), model.value_at(c), 1e-12);
  }
}

TEST(Generator, PlantedNoisePerturbsValues) {
  const auto clean = generate_planted(shape_t{30, 30, 30}, 3, 1000, 0.0, 33);
  const auto noisy = generate_planted(shape_t{30, 30, 30}, 3, 1000, 0.5, 33);
  // Same seed → same coordinates; values must differ due to noise.
  ASSERT_EQ(clean.tensor.nnz(), noisy.tensor.nnz());
  real_t diff = 0;
  for (nnz_t i = 0; i < clean.tensor.nnz(); ++i)
    diff += std::abs(clean.tensor.value(i) - noisy.tensor.value(i));
  EXPECT_GT(diff, 1.0);
}

TEST(Generator, HigherOrderShapes) {
  const shape_t shape{10, 12, 14, 16, 18, 20};
  const auto t = generate_uniform(shape, 5000, 2);
  t.validate();
  EXPECT_EQ(t.order(), 6);
}

}  // namespace
}  // namespace mdcp
