// Shared fixtures/utilities for the mdcp test suite.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mdcp.hpp"

namespace mdcp::testing {

/// Random factor matrices matching `tensor` with the given rank.
inline std::vector<Matrix> random_factors(const CooTensor& tensor,
                                          index_t rank, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> f;
  f.reserve(tensor.order());
  for (mode_t m = 0; m < tensor.order(); ++m)
    f.push_back(Matrix::random_uniform(tensor.dim(m), rank, rng));
  return f;
}

/// Small dense-ish tensor for brute-force comparisons.
inline CooTensor small_tensor(mode_t order, index_t dim, nnz_t nnz,
                              std::uint64_t seed) {
  shape_t shape(order, dim);
  return generate_uniform(shape, nnz, seed);
}

/// All engine kinds that are exact MTTKRPs (everything except kAuto, which
/// is itself one of the dtree engines under the hood and is tested
/// separately).
inline std::vector<EngineKind> exact_engine_kinds() {
  return {EngineKind::kCoo,           EngineKind::kBlockedCoo,
          EngineKind::kTtvChain,      EngineKind::kCsf,
          EngineKind::kCsfOne,        EngineKind::kDTreeFlat,
          EngineKind::kDTreeThreeLevel, EngineKind::kDTreeBdt};
}

/// Label-friendly name for parameterized tests.
inline std::string kind_label(EngineKind k) {
  std::string s = engine_kind_name(k);
  for (auto& c : s)
    if (c == '-') c = '_';
  return s;
}

}  // namespace mdcp::testing
