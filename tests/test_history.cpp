// Tests for the cross-run history layer: golden-fixture ingest (including
// the skip counters for truncated / future-version / incomplete reports),
// crash-safe report promotion, a real cp_als round-trip through
// parse_report_file, trust-weight decay, the measured-best tuner override
// (fires after K trusted observations, not before, and never across a
// provenance break), and robust-z drift banding.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cpals/cpals.hpp"
#include "model/tuner.hpp"
#include "obs/history.hpp"
#include "obs/report.hpp"
#include "tensor/generator.hpp"

namespace mdcp {
namespace {

std::string fixture_dir() {
  return std::string(MDCP_TEST_DATA_DIR) + "/history";
}

TEST(HistoryIngest, FixtureDirCountsEverySkipKind) {
  obs::HistoryStore store;
  const obs::HistoryIngestStats stats = store.ingest_dir(fixture_dir());
  EXPECT_EQ(stats.files_scanned, 5u);
  EXPECT_EQ(stats.files_ingested, 2u);
  EXPECT_EQ(stats.files_unparseable, 1u);
  EXPECT_EQ(stats.files_unknown_version, 1u);
  EXPECT_EQ(stats.files_incomplete, 1u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(HistoryIngest, MissingDirectoryIngestsNothing) {
  obs::HistoryStore store;
  const auto stats = store.ingest_dir(fixture_dir() + "/does-not-exist");
  EXPECT_EQ(stats.files_scanned, 0u);
  EXPECT_TRUE(store.empty());
}

TEST(HistoryIngest, OrphanedTmpReportsAreCountedNotIngested) {
  // A `<path>.tmp` leftover is a run that died before RunReporter::close()
  // (and before any crash handler promoted it) — evidence of a crash the
  // skip counters must surface instead of silently ignoring.
  const std::string dir = ::testing::TempDir() + "/mdcp_orphan_tmp";
  std::filesystem::create_directories(dir);
  {
    std::ofstream os(dir + "/run-123.jsonl.tmp");
    os << "{\"type\":\"header\",\"schema\":\"mdcp-run-report/1\"}\n";
  }
  obs::HistoryStore store;
  const auto stats = store.ingest_dir(dir);
  EXPECT_EQ(stats.files_orphaned_tmp, 1u);
  EXPECT_EQ(stats.files_ingested, 0u);
  EXPECT_EQ(stats.files_scanned, 0u);  // never entered the .jsonl scan
  EXPECT_TRUE(store.empty());
  std::filesystem::remove_all(dir);
}

TEST(HistoryIngest, GoldenV2FieldsRoundTrip) {
  obs::HistoryIngestStats stats;
  const auto obs =
      obs::HistoryStore::parse_report_file(fixture_dir() + "/golden_v2.jsonl",
                                           &stats);
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->fingerprint, 0xdeadbeefULL);
  EXPECT_EQ(obs->engine_label, "auto:greedy");
  EXPECT_EQ(obs->strategy, "greedy");
  EXPECT_EQ(obs->rank, 8u);
  EXPECT_EQ(obs->threads, 4);
  EXPECT_EQ(obs->iterations, 4);
  // Summary totals are normalized per iteration (0.4 s over 4 sweeps).
  EXPECT_DOUBLE_EQ(obs->seconds_per_iteration, 0.1);
  ASSERT_EQ(obs->mode_seconds.size(), 3u);
  EXPECT_DOUBLE_EQ(obs->mode_seconds[0], 0.05);
  EXPECT_DOUBLE_EQ(obs->mode_seconds[2], 0.02);
  // predicted 0.09 vs measured 0.1 per iteration.
  EXPECT_NEAR(obs->time_error_ratio, 0.9, 1e-12);
  EXPECT_EQ(obs->plan_source, "model");
  EXPECT_DOUBLE_EQ(obs->final_fit, 0.125);
  EXPECT_EQ(stats.files_ingested, 1u);
}

TEST(HistoryIngest, PreVersionedReportParsesAsVersionOne) {
  const auto obs =
      obs::HistoryStore::parse_report_file(fixture_dir() + "/golden_v1.jsonl");
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->engine_label, "csf");
  EXPECT_EQ(obs->strategy, "csf");  // fixed engines keep their name
  EXPECT_EQ(obs->rank, 0u);         // v1 reports predate the rank field
  EXPECT_DOUBLE_EQ(obs->seconds_per_iteration, 0.25);
  EXPECT_TRUE(obs->plan_source.empty());
}

TEST(HistoryIngest, SkippedFilesBumpTheRightCounter) {
  obs::HistoryIngestStats stats;
  EXPECT_FALSE(obs::HistoryStore::parse_report_file(
      fixture_dir() + "/future_version.jsonl", &stats));
  EXPECT_EQ(stats.files_unknown_version, 1u);
  EXPECT_FALSE(obs::HistoryStore::parse_report_file(
      fixture_dir() + "/truncated.jsonl", &stats));
  EXPECT_EQ(stats.files_unparseable, 1u);
  EXPECT_FALSE(obs::HistoryStore::parse_report_file(
      fixture_dir() + "/incomplete.jsonl", &stats));
  EXPECT_EQ(stats.files_incomplete, 1u);
}

TEST(HistoryQuery, RankZeroObservationsOnlyMatchRankZeroQueries) {
  obs::HistoryStore store;
  store.ingest_dir(fixture_dir());  // one rank-8 and one rank-0 observation
  EXPECT_EQ(store.query(0xdeadbeefULL).size(), 2u);  // rank 0 = match any
  EXPECT_EQ(store.query(0xdeadbeefULL, 8).size(), 1u);
  EXPECT_EQ(store.query(0xdeadbeefULL, 8, "greedy").size(), 1u);
  EXPECT_EQ(store.query(0xdeadbeefULL, 8, "csf").size(), 0u);
  EXPECT_EQ(store.query(0x1234ULL).size(), 0u);  // unknown tensor
}

TEST(StrategyFromEngineLabel, StripsAutoPrefixes) {
  EXPECT_EQ(obs::strategy_from_engine_label("auto:bdt/asc"), "bdt/asc");
  EXPECT_EQ(obs::strategy_from_engine_label("auto+probe:greedy"), "greedy");
  EXPECT_EQ(obs::strategy_from_engine_label("csf"), "csf");
  EXPECT_EQ(obs::strategy_from_engine_label(""), "");
}

TEST(Report, CloseRenamesTmpIntoPlace) {
  namespace fs = std::filesystem;
  const std::string path = ::testing::TempDir() + "/mdcp_atomic_report.jsonl";
  fs::remove(path);
  fs::remove(path + ".tmp");
  const auto tensor = generate_uniform({8, 9, 10}, 120, 3);
  {
    obs::RunReporter reporter(path);
    ASSERT_TRUE(reporter.ok());
    reporter.write_header(tensor, "test_history atomic", 1);
    // Until close(), only the crash-leftover tmp file exists: a reader (or
    // ingest_dir, which only scans *.jsonl) never sees a half-written report.
    EXPECT_TRUE(fs::exists(path + ".tmp"));
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(reporter.close());
  }
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

// A real cp_als run with reporter + history attached must produce a report
// parse_report_file can round-trip, and must record the same observation
// in-process.
TEST(HistoryRoundTrip, CpAlsReportMatchesInProcessObservation) {
  const std::string path = ::testing::TempDir() + "/mdcp_history_rt.jsonl";
  const auto tensor = generate_uniform({20, 24, 28}, 800, 17);

  obs::HistoryStore store;
  CpAlsOptions opt;
  opt.rank = 6;
  opt.max_iterations = 3;
  opt.tolerance = 0;
  opt.seed = 5;
  opt.engine = EngineKind::kAuto;
  opt.history = &store;
  {
    obs::RunReporter reporter(path);
    ASSERT_TRUE(reporter.ok());
    reporter.write_header(tensor, "test_history round-trip", 1);
    opt.reporter = &reporter;
    const auto result = cp_als(tensor, opt);
    EXPECT_EQ(result.iterations, 3);
    // Empty store at selection time: the tuner had nothing to consult.
    EXPECT_EQ(result.plan_source, "model");
    ASSERT_TRUE(reporter.close());

    ASSERT_EQ(store.size(), 1u);
    const obs::RunObservation& rec = store.observations()[0];
    const auto parsed = obs::HistoryStore::parse_report_file(path);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->fingerprint, obs::tensor_fingerprint(tensor));
    EXPECT_EQ(parsed->fingerprint, rec.fingerprint);
    EXPECT_EQ(parsed->engine_label, result.engine_name);
    EXPECT_EQ(parsed->strategy, rec.strategy);
    EXPECT_EQ(parsed->rank, 6u);
    EXPECT_EQ(parsed->iterations, 3);
    EXPECT_EQ(parsed->plan_source, "model");
    EXPECT_NEAR(parsed->seconds_per_iteration, rec.seconds_per_iteration,
                1e-9);
    EXPECT_EQ(parsed->mode_seconds.size(),
              static_cast<std::size_t>(tensor.order()));
    // The report was written by this build on this machine.
    EXPECT_EQ(parsed->build_id, obs::HistoryStore::current_build_id());
    EXPECT_EQ(parsed->machine_id, obs::HistoryStore::current_machine_id());
  }
}

TEST(Trust, WeightDecaysPerMismatchedProvenanceAxis) {
  obs::TrustPolicy policy;
  policy.build_id = 11;
  policy.machine_id = 22;
  policy.threads = 0;  // thread axis not enforced

  obs::RunObservation o;
  o.build_id = 11;
  o.machine_id = 22;
  o.threads = 8;
  EXPECT_DOUBLE_EQ(obs::HistoryStore::trust_weight(o, policy), 1.0);

  o.build_id = 99;  // rebuilt
  EXPECT_DOUBLE_EQ(obs::HistoryStore::trust_weight(o, policy), 0.25);

  o.machine_id = 99;  // rebuilt AND moved host
  EXPECT_DOUBLE_EQ(obs::HistoryStore::trust_weight(o, policy), 0.0625);

  policy.threads = 4;  // now the thread axis is enforced too
  EXPECT_DOUBLE_EQ(obs::HistoryStore::trust_weight(o, policy),
                   0.25 * 0.25 * 0.25);
  o.threads = 4;
  EXPECT_DOUBLE_EQ(obs::HistoryStore::trust_weight(o, policy), 0.0625);
}

obs::RunObservation make_obs(std::uint64_t fingerprint,
                             const std::string& strategy, std::uint32_t rank,
                             double spi) {
  obs::RunObservation o;
  o.fingerprint = fingerprint;
  o.engine_label = "auto:" + strategy;
  o.strategy = strategy;
  o.rank = rank;
  o.build_id = obs::HistoryStore::current_build_id();
  o.machine_id = obs::HistoryStore::current_machine_id();
  o.iterations = 1;
  o.seconds_per_iteration = spi;
  o.plan_source = "model";
  return o;
}

TEST(Trust, MeasuredBestNeedsMinWeightAndPicksFastest) {
  const std::uint64_t fp = 0xabcULL;
  obs::HistoryStore store;
  obs::TrustPolicy policy;
  policy.min_weight = 2.0;

  store.record(make_obs(fp, "slow", 4, 0.5));
  store.record(make_obs(fp, "slow", 4, 0.5));
  store.record(make_obs(fp, "fast", 4, 0.1));
  // "fast" is quicker but has only weight 1 < 2: not yet trusted; "slow"
  // qualifies, so it is the best *trusted* plan.
  auto best = store.measured_best(fp, 4, policy);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->strategy, "slow");

  store.record(make_obs(fp, "fast", 4, 0.2));
  best = store.measured_best(fp, 4, policy);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->strategy, "fast");
  EXPECT_DOUBLE_EQ(best->seconds_per_iteration, 0.15);  // weighted mean
  EXPECT_DOUBLE_EQ(best->weight, 2.0);
  EXPECT_EQ(best->observations, 2u);

  // Wrong rank / wrong tensor: nothing qualifies.
  EXPECT_FALSE(store.measured_best(fp, 5, policy).has_value());
  EXPECT_FALSE(store.measured_best(0x999ULL, 4, policy).has_value());
}

// The tuner-facing behavior the whole layer exists for: after K trusted
// observations of a strategy, select_strategy prefers the measured plan and
// says so via plan_source — and does NOT before K, nor across a provenance
// break, nor when the overlay is switched off.
class TunerOverlay : public ::testing::Test {
 protected:
  void SetUp() override {
    tensor_ = generate_uniform({24, 26, 28}, 900, 21);
    fp_ = obs::tensor_fingerprint(tensor_);
    const TunerReport base = select_strategy(tensor_, kRank);
    ASSERT_GE(base.ranked.size(), 2u);
    EXPECT_STREQ(base.plan_source, "model");
    model_choice_ = base.winner().strategy.name;
    // Pick a budget-feasible candidate the model did NOT choose, so an
    // override is observable.
    for (std::size_t i = 0; i < base.ranked.size(); ++i) {
      if (i != base.chosen && base.ranked[i].fits_budget) {
        alt_choice_ = base.ranked[i].strategy.name;
        break;
      }
    }
    ASSERT_FALSE(alt_choice_.empty());
  }

  static constexpr index_t kRank = 8;
  CooTensor tensor_;
  std::uint64_t fp_ = 0;
  std::string model_choice_;
  std::string alt_choice_;
};

TEST_F(TunerOverlay, OverridesAfterKObservationsNotBefore) {
  obs::HistoryStore store;
  TunerOptions topt;
  topt.history = &store;
  topt.trust.min_weight = 2.0;  // warm-start after K = 2 runs

  store.record(make_obs(fp_, alt_choice_, kRank, 1e-5));
  TunerReport report = select_strategy(tensor_, kRank, 0, {}, topt);
  EXPECT_STREQ(report.plan_source, "model");
  EXPECT_EQ(report.winner().strategy.name, model_choice_);

  store.record(make_obs(fp_, alt_choice_, kRank, 1e-5));
  report = select_strategy(tensor_, kRank, 0, {}, topt);
  EXPECT_STREQ(report.plan_source, "history");
  EXPECT_EQ(report.winner().strategy.name, alt_choice_);
}

TEST_F(TunerOverlay, DisabledOverlayAndEmptyStoreStayOnModel) {
  obs::HistoryStore store;
  TunerOptions topt;
  topt.history = &store;
  topt.trust.min_weight = 1.0;

  // Empty store: nothing to consult.
  TunerReport report = select_strategy(tensor_, kRank, 0, {}, topt);
  EXPECT_STREQ(report.plan_source, "model");

  store.record(make_obs(fp_, alt_choice_, kRank, 1e-5));
  store.record(make_obs(fp_, alt_choice_, kRank, 1e-5));
  topt.use_history = false;  // the --no-history switch
  report = select_strategy(tensor_, kRank, 0, {}, topt);
  EXPECT_STREQ(report.plan_source, "model");
  EXPECT_EQ(report.winner().strategy.name, model_choice_);
}

TEST_F(TunerOverlay, ProvenanceBreakDecaysTrustBelowThreshold) {
  obs::HistoryStore store;
  // Two observations from a different build: weight 2 × 0.25 = 0.5 < 1.
  for (int i = 0; i < 2; ++i) {
    obs::RunObservation o = make_obs(fp_, alt_choice_, kRank, 1e-5);
    o.build_id ^= 0x1;
    store.record(std::move(o));
  }
  TunerOptions topt;
  topt.history = &store;
  topt.trust.min_weight = 1.0;
  TunerReport report = select_strategy(tensor_, kRank, 0, {}, topt);
  EXPECT_STREQ(report.plan_source, "model");
  EXPECT_EQ(report.winner().strategy.name, model_choice_);

  // Two more from THIS build re-earn the trust.
  store.record(make_obs(fp_, alt_choice_, kRank, 1e-5));
  report = select_strategy(tensor_, kRank, 0, {}, topt);
  EXPECT_STREQ(report.plan_source, "history");
  EXPECT_EQ(report.winner().strategy.name, alt_choice_);
}

obs::RunObservation make_drift_obs(double spi, double jitter) {
  obs::RunObservation o = make_obs(0xd41f7ULL, "bdt", 8, spi * (1 + jitter));
  o.mode_seconds = {0.5 * o.seconds_per_iteration,
                    0.3 * o.seconds_per_iteration,
                    0.2 * o.seconds_per_iteration};
  return o;
}

class Drift : public ::testing::Test {
 protected:
  void SetUp() override {
    // Four clean runs with ±2% scheduling jitter.
    for (const double j : {-0.02, -0.01, 0.01, 0.02})
      store_.record(make_drift_obs(0.1, j));
  }
  obs::HistoryStore store_;
};

TEST_F(Drift, FlagsInjectedThreeTimesSlowdownOnEveryKernel) {
  const obs::DriftReport dr =
      obs::detect_drift(store_, make_drift_obs(0.3, 0.0));
  EXPECT_EQ(dr.history_runs, 4u);
  EXPECT_TRUE(dr.regressed);
  EXPECT_TRUE(dr.out_of_band);
  ASSERT_EQ(dr.findings.size(), 4u);  // mode0..2 + mttkrp
  for (const auto& f : dr.findings) {
    EXPECT_STREQ(f.status, "regression") << f.kernel;
    EXPECT_GT(f.z, 3.5) << f.kernel;
    EXPECT_NEAR(f.measured / f.median, 3.0, 0.1) << f.kernel;
  }
}

TEST_F(Drift, QuietAcrossTheNoiseBand) {
  // A fifth clean run inside the jitter band must not alarm.
  const obs::DriftReport dr =
      obs::detect_drift(store_, make_drift_obs(0.1, 0.015));
  EXPECT_FALSE(dr.regressed);
  EXPECT_FALSE(dr.out_of_band);
  for (const auto& f : dr.findings) EXPECT_STREQ(f.status, "ok") << f.kernel;
}

TEST_F(Drift, ImprovementIsOutOfBandButNotARegression) {
  const obs::DriftReport dr =
      obs::detect_drift(store_, make_drift_obs(0.02, 0.0));
  EXPECT_FALSE(dr.regressed);
  EXPECT_TRUE(dr.out_of_band);
  bool improved = false;
  for (const auto& f : dr.findings)
    if (std::string(f.status) == "improved") improved = true;
  EXPECT_TRUE(improved);
}

TEST_F(Drift, InsufficientHistoryReportsWhyAndStaysEmpty) {
  obs::HistoryStore sparse;
  sparse.record(make_drift_obs(0.1, 0.0));
  const obs::DriftReport dr =
      obs::detect_drift(sparse, make_drift_obs(0.3, 0.0));
  EXPECT_EQ(dr.history_runs, 1u);
  EXPECT_TRUE(dr.findings.empty());
  EXPECT_FALSE(dr.regressed);

  // Different strategy / rank / tensor are not comparable either.
  const obs::DriftReport other =
      obs::detect_drift(store_, make_obs(0xd41f7ULL, "csf", 8, 0.3));
  EXPECT_EQ(other.history_runs, 0u);
  EXPECT_TRUE(other.findings.empty());
}

}  // namespace
}  // namespace mdcp
