#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "cpals/kruskal.hpp"
#include "la/blas.hpp"
#include "tensor/generator.hpp"
#include "test_helpers.hpp"

namespace mdcp {
namespace {

using mdcp::testing::random_factors;

KruskalTensor make_model(const shape_t& shape, index_t rank,
                         std::uint64_t seed) {
  Rng rng(seed);
  KruskalTensor m;
  m.weights.resize(rank);
  for (auto& w : m.weights) w = 0.5 + rng.next_real();
  for (index_t d : shape) m.factors.push_back(Matrix::random_uniform(d, rank, rng));
  return m;
}

// Dense brute-force evaluation of the full model tensor.
real_t dense_norm(const KruskalTensor& m, const shape_t& shape) {
  std::vector<index_t> c(shape.size(), 0);
  real_t s = 0;
  // Odometer over all positions (shapes kept tiny in these tests).
  while (true) {
    const real_t v = m.value_at(c);
    s += v * v;
    std::size_t d = 0;
    for (; d < shape.size(); ++d) {
      if (++c[d] < shape[d]) break;
      c[d] = 0;
    }
    if (d == shape.size()) break;
  }
  return std::sqrt(s);
}

TEST(Kruskal, ValueAtMatchesDefinition) {
  const shape_t shape{3, 4, 5};
  const auto m = make_model(shape, 2, 1);
  const std::array<index_t, 3> c{1, 2, 3};
  real_t expect = 0;
  for (index_t r = 0; r < 2; ++r)
    expect += m.weights[r] * m.factors[0](1, r) * m.factors[1](2, r) *
              m.factors[2](3, r);
  EXPECT_NEAR(m.value_at(c), expect, 1e-14);
}

TEST(Kruskal, NormMatchesDenseBruteForce) {
  const shape_t shape{4, 3, 5};
  const auto m = make_model(shape, 3, 7);
  EXPECT_NEAR(m.norm(), dense_norm(m, shape), 1e-9);
}

TEST(Kruskal, NormHigherOrder) {
  const shape_t shape{3, 3, 3, 3, 3};
  const auto m = make_model(shape, 2, 9);
  EXPECT_NEAR(m.norm(), dense_norm(m, shape), 1e-9);
}

TEST(Kruskal, ValidateCatchesRankMismatch) {
  auto m = make_model(shape_t{3, 4}, 2, 11);
  m.weights.push_back(1.0);
  EXPECT_THROW(m.validate(), error);
}

TEST(Kruskal, InnerProductConsistency) {
  const auto t = generate_uniform(shape_t{8, 9, 10}, 200, 13);
  const auto m = make_model(t.shape(), 3, 15);
  // ⟨X,M⟩ via direct evaluation vs via the MTTKRP identity.
  Matrix mttkrp_last;
  mttkrp_reference(t, m.factors, 2, mttkrp_last);
  const real_t direct = inner_product(t, m);
  const real_t via_mttkrp = inner_product_from_mttkrp(m, mttkrp_last, 2);
  EXPECT_NEAR(direct, via_mttkrp, 1e-9 * std::abs(direct));
}

TEST(Kruskal, FitFromPartsIdentities) {
  // Perfect model: residual 0 → fit 1.
  EXPECT_NEAR(fit_from_parts(2.0, 4.0, 2.0), 1.0, 1e-14);
  // Zero model: fit 0.
  EXPECT_NEAR(fit_from_parts(3.0, 0.0, 0.0), 0.0, 1e-14);
  // Degenerate x.
  EXPECT_DOUBLE_EQ(fit_from_parts(0.0, 0.0, 0.0), 0.0);
}

TEST(Kruskal, ResidualNormZeroForExactModel) {
  // Build a tensor that *is* a Kruskal model sampled on every position of a
  // tiny dense grid.
  const shape_t shape{3, 3, 3};
  const auto m = make_model(shape, 2, 17);
  CooTensor t(shape);
  std::array<index_t, 3> c{};
  for (c[0] = 0; c[0] < 3; ++c[0])
    for (c[1] = 0; c[1] < 3; ++c[1])
      for (c[2] = 0; c[2] < 3; ++c[2]) t.push_back(c, m.value_at(c));
  EXPECT_NEAR(residual_norm(t, m), 0.0, 1e-5);
}

TEST(Kruskal, ResidualNormDetectsError) {
  const shape_t shape{3, 3};
  const auto m = make_model(shape, 2, 19);
  CooTensor t(shape);
  std::array<index_t, 2> c{};
  for (c[0] = 0; c[0] < 3; ++c[0])
    for (c[1] = 0; c[1] < 3; ++c[1]) t.push_back(c, m.value_at(c));
  t.value(0) += 2.0;
  EXPECT_NEAR(residual_norm(t, m), 2.0, 1e-9);
}

TEST(Congruence, IdenticalModelsScoreOne) {
  const auto m = make_model(shape_t{10, 12, 14}, 3, 21);
  EXPECT_NEAR(factor_congruence(m, m), 1.0, 1e-12);
}

TEST(Congruence, PermutationInvariant) {
  const auto m = make_model(shape_t{10, 12}, 3, 23);
  KruskalTensor permuted = m;
  // Swap components 0 and 2 in every factor.
  for (auto& f : permuted.factors) {
    for (index_t i = 0; i < f.rows(); ++i) std::swap(f(i, 0), f(i, 2));
  }
  std::swap(permuted.weights[0], permuted.weights[2]);
  EXPECT_NEAR(factor_congruence(m, permuted), 1.0, 1e-12);
}

TEST(Congruence, SignInvariant) {
  const auto m = make_model(shape_t{10, 12, 14}, 2, 25);
  KruskalTensor flipped = m;
  for (index_t i = 0; i < flipped.factors[0].rows(); ++i)
    flipped.factors[0](i, 1) = -flipped.factors[0](i, 1);
  EXPECT_NEAR(factor_congruence(m, flipped), 1.0, 1e-12);
}

TEST(Congruence, RandomModelsScoreLow) {
  const auto a = make_model(shape_t{50, 50, 50}, 4, 27);
  const auto b = make_model(shape_t{50, 50, 50}, 4, 28);
  // Uniform(0.?) columns are positively correlated, but the product over 3
  // modes of non-matching cosines stays clearly below a true match.
  EXPECT_LT(factor_congruence(a, b), 0.995);
}

}  // namespace
}  // namespace mdcp
