#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/eigen.hpp"
#include "la/matrix.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mdcp {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(3, 2, 1.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 1.5);
  m(1, 0) = -4;
  EXPECT_DOUBLE_EQ(m(1, 0), -4.0);
  EXPECT_DOUBLE_EQ(m.row(1)[0], -4.0);
}

TEST(Matrix, FillAndZero) {
  Matrix m(2, 2, 3);
  m.zero();
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 0.0);
  m.fill(2);
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 4.0);
}

TEST(Matrix, Transposed) {
  Matrix m(2, 3);
  for (index_t i = 0; i < 2; ++i)
    for (index_t j = 0; j < 3; ++j) m(i, j) = static_cast<real_t>(i * 3 + j);
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (index_t i = 0; i < 2; ++i)
    for (index_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(t(j, i), m(i, j));
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a(2, 2, 1), b(2, 2, 1);
  b(1, 1) = 4;
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, b), 3.0);
}

TEST(Matrix, RandomDeterministic) {
  Rng r1(5), r2(5);
  EXPECT_EQ(Matrix::random_uniform(4, 3, r1), Matrix::random_uniform(4, 3, r2));
}

TEST(Blas, GramMatchesBruteForce) {
  Rng rng(3);
  const Matrix a = Matrix::random_normal(37, 5, rng);
  const Matrix g = gram(a);
  for (index_t i = 0; i < 5; ++i) {
    for (index_t j = 0; j < 5; ++j) {
      real_t expect = 0;
      for (index_t k = 0; k < 37; ++k) expect += a(k, i) * a(k, j);
      EXPECT_NEAR(g(i, j), expect, 1e-10);
    }
  }
}

TEST(Blas, GramIsSymmetric) {
  Rng rng(4);
  const Matrix g = gram(Matrix::random_normal(20, 6, rng));
  for (index_t i = 0; i < 6; ++i)
    for (index_t j = 0; j < 6; ++j) EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
}

TEST(Blas, MultiplyMatchesBruteForce) {
  Rng rng(6);
  const Matrix a = Matrix::random_normal(7, 4, rng);
  const Matrix b = Matrix::random_normal(4, 5, rng);
  const Matrix c = multiply(a, b);
  for (index_t i = 0; i < 7; ++i) {
    for (index_t j = 0; j < 5; ++j) {
      real_t expect = 0;
      for (index_t k = 0; k < 4; ++k) expect += a(i, k) * b(k, j);
      EXPECT_NEAR(c(i, j), expect, 1e-12);
    }
  }
}

TEST(Blas, MultiplyShapeMismatchThrows) {
  const Matrix a(2, 3), b(2, 3);
  Matrix c;
  EXPECT_THROW(multiply_into(a, b, c), error);
}

TEST(Blas, HadamardInPlace) {
  Matrix a(2, 2, 3), b(2, 2, 2);
  hadamard_inplace(a, b);
  EXPECT_DOUBLE_EQ(a(0, 0), 6.0);
}

TEST(Blas, HadamardAll) {
  const Matrix a(2, 2, 2), b(2, 2, 3), c(2, 2, 5);
  const Matrix h = hadamard_all({&a, &b, &c});
  EXPECT_DOUBLE_EQ(h(1, 1), 30.0);
}

TEST(Blas, ColumnNormalize) {
  Matrix m(2, 2);
  m(0, 0) = 3;
  m(1, 0) = 4;
  m(0, 1) = 0;
  m(1, 1) = 0;
  const auto norms = column_normalize(m);
  EXPECT_DOUBLE_EQ(norms[0], 5.0);
  EXPECT_DOUBLE_EQ(norms[1], 0.0);  // zero column untouched
  EXPECT_DOUBLE_EQ(m(0, 0), 0.6);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.8);
}

TEST(Blas, Dot) {
  Matrix a(2, 2, 2), b(2, 2, 3);
  EXPECT_DOUBLE_EQ(dot(a, b), 24.0);
}

TEST(Cholesky, FactorAndSolveSpd) {
  // A = Bᵀ B + I is SPD.
  Rng rng(8);
  const Matrix b = Matrix::random_normal(10, 4, rng);
  Matrix a = gram(b);
  for (index_t i = 0; i < 4; ++i) a(i, i) += 1;

  const Matrix a_copy = a;
  ASSERT_TRUE(cholesky_factor(a));

  // Solve X·A = M for a random M and verify residual.
  const Matrix m = Matrix::random_normal(6, 4, rng);
  Matrix x = m;
  cholesky_solve_rows(a, x);
  const Matrix recon = multiply(x, a_copy);
  EXPECT_LT(Matrix::max_abs_diff(recon, m), 1e-9);
}

TEST(Cholesky, FactorFailsOnIndefinite) {
  Matrix a(2, 2, 0);
  a(0, 0) = 1;
  a(1, 1) = -1;
  EXPECT_FALSE(cholesky_factor(a));
}

TEST(Eigen, DiagonalizesKnownMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;  // eigenvalues 1 and 3
  Matrix v;
  std::vector<real_t> w;
  jacobi_eigen_symmetric(a, v, w);
  std::sort(w.begin(), w.end());
  EXPECT_NEAR(w[0], 1.0, 1e-10);
  EXPECT_NEAR(w[1], 3.0, 1e-10);
}

TEST(Eigen, ReconstructsFromEigenpairs) {
  Rng rng(10);
  const Matrix b = Matrix::random_normal(8, 5, rng);
  const Matrix a = gram(b);
  Matrix v;
  std::vector<real_t> w;
  jacobi_eigen_symmetric(a, v, w);
  // A == V diag(w) Vᵀ.
  Matrix recon(5, 5, 0);
  for (index_t k = 0; k < 5; ++k)
    for (index_t i = 0; i < 5; ++i)
      for (index_t j = 0; j < 5; ++j)
        recon(i, j) += v(i, k) * w[k] * v(j, k);
  EXPECT_LT(Matrix::max_abs_diff(recon, a), 1e-8);
}

TEST(Eigen, PseudoInverseOfSingularMatrix) {
  // Rank-1 symmetric matrix: A = u uᵀ with u = (1, 2)ᵀ.
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  const Matrix ap = pseudo_inverse(a);
  // A · A⁺ · A == A characterizes the Moore–Penrose inverse here.
  const Matrix prod = multiply(multiply(a, ap), a);
  EXPECT_LT(Matrix::max_abs_diff(prod, a), 1e-9);
}

TEST(Cholesky, NormalEquationsSolveSpdPath) {
  Rng rng(12);
  const Matrix b = Matrix::random_normal(20, 4, rng);
  Matrix h = gram(b);
  for (index_t i = 0; i < 4; ++i) h(i, i) += 0.5;
  const Matrix m = Matrix::random_normal(9, 4, rng);
  const Matrix x = solve_normal_equations(h, m);
  EXPECT_LT(Matrix::max_abs_diff(multiply(x, h), m), 1e-9);
}

TEST(Cholesky, NormalEquationsSingularFallback) {
  // H singular (rank 1): solution must satisfy X·H·H⁺ = M·H⁺·H ... we verify
  // the weaker Moore–Penrose property X = M·H⁺ minimizes ‖X·H − M‖ by
  // checking the normal-equation residual is orthogonal to range(H).
  Matrix h(2, 2);
  h(0, 0) = 1;
  h(0, 1) = 1;
  h(1, 0) = 1;
  h(1, 1) = 1;
  Matrix m(3, 2, 1.0);
  const Matrix x = solve_normal_equations(h, m);
  // For this H and M, M·H⁺ = [[0.5, 0.5], ...] and X·H = M exactly.
  EXPECT_LT(Matrix::max_abs_diff(multiply(x, h), m), 1e-9);
}

}  // namespace
}  // namespace mdcp
