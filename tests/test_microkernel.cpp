// Unit tests for the shared SIMD rank-blocked microkernel layer
// (mttkrp/microkernel.hpp): every primitive against a scalar reference for
// ranks spanning all tile-cascade cases, plus the static tile-selection and
// cost-scaling helpers the model layer depends on.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mttkrp/microkernel.hpp"
#include "util/aligned.hpp"

namespace mdcp {
namespace {

// Deterministic non-trivial fill values (no RNG needed: we check exact
// equality against the scalar reference, not statistics).
real_t val(index_t i, int salt) {
  return 0.25 * static_cast<real_t>((i * 7 + salt * 13) % 31) - 3.0;
}

class MicrokernelTest : public ::testing::TestWithParam<index_t> {};

// Ranks covering: zero, scalar-only tail (<8), each tile width, tile+tail
// mixes, cascade boundaries (15/16/17, 31/32/33), and a 32+8+tail case.
INSTANTIATE_TEST_SUITE_P(Ranks, MicrokernelTest,
                         ::testing::Values(0, 1, 3, 7, 8, 9, 15, 16, 17, 24,
                                           31, 32, 33, 40, 43));

TEST_P(MicrokernelTest, PrimitivesMatchScalarReference) {
  const index_t r = GetParam();
  const mk::Kernel mk(r);
  ASSERT_EQ(mk.rank(), r);

  // One guard lane past r in every destination: primitives must never write
  // beyond rank() even though the slab stride is padded.
  const index_t n = r + 1;
  aligned_real_vector d(n), ref(n), a(n), b(n), c(n);
  const real_t v = 1.75;
  for (index_t k = 0; k < n; ++k) {
    a[k] = val(k, 1);
    b[k] = val(k, 2);
    c[k] = val(k, 3);
  }
  const auto reset = [&] {
    for (index_t k = 0; k < n; ++k) d[k] = ref[k] = val(k, 4);
  };
  const auto expect_equal = [&](const char* what) {
    for (index_t k = 0; k < n; ++k)
      ASSERT_EQ(d[k], ref[k]) << what << " lane " << k << " rank " << r;
  };

  reset();
  mk.fill(d.data(), v);
  for (index_t k = 0; k < r; ++k) ref[k] = v;
  expect_equal("fill");

  reset();
  mk.add_scalar(d.data(), v);
  for (index_t k = 0; k < r; ++k) ref[k] += v;
  expect_equal("add_scalar");

  reset();
  mk.copy(d.data(), a.data());
  for (index_t k = 0; k < r; ++k) ref[k] = a[k];
  expect_equal("copy");

  reset();
  mk.set_scale(d.data(), a.data(), v);
  for (index_t k = 0; k < r; ++k) ref[k] = v * a[k];
  expect_equal("set_scale");

  reset();
  mk.hadamard(d.data(), a.data());
  for (index_t k = 0; k < r; ++k) ref[k] *= a[k];
  expect_equal("hadamard");

  reset();
  mk.mul(d.data(), a.data(), b.data());
  for (index_t k = 0; k < r; ++k) ref[k] = a[k] * b[k];
  expect_equal("mul");

  reset();
  mk.accum(d.data(), a.data());
  for (index_t k = 0; k < r; ++k) ref[k] += a[k];
  expect_equal("accum");

  reset();
  mk.axpy_accum(d.data(), a.data(), v);
  for (index_t k = 0; k < r; ++k) ref[k] += v * a[k];
  expect_equal("axpy_accum");

  reset();
  mk.fused2_accum(d.data(), a.data(), b.data(), v);
  for (index_t k = 0; k < r; ++k) ref[k] += v * a[k] * b[k];
  expect_equal("fused2_accum");

  reset();
  mk.fused3_accum(d.data(), a.data(), b.data(), c.data(), v);
  for (index_t k = 0; k < r; ++k) ref[k] += v * a[k] * b[k] * c[k];
  expect_equal("fused3_accum");
}

TEST_P(MicrokernelTest, FusedPathsMatchStagedComposition) {
  // The fused order-3/4 paths must be bitwise identical to the staged
  // fill/hadamard/accum composition they replace: v is multiplied first in
  // both (fill(tmp, v) then hadamards == v * a * b left-to-right), so the
  // differential oracle sees no drift when an engine switches to fused.
  const index_t r = GetParam();
  const mk::Kernel mk(r);
  aligned_real_vector fused(r), staged(r), tmp(mk.padded()), a(r), b(r), cc(r);
  const real_t v = -0.375;
  for (index_t k = 0; k < r; ++k) {
    a[k] = val(k, 5);
    b[k] = val(k, 6);
    cc[k] = val(k, 7);
    fused[k] = staged[k] = val(k, 8);
  }

  mk.fused2_accum(fused.data(), a.data(), b.data(), v);
  mk.fill(tmp.data(), v);
  mk.hadamard(tmp.data(), a.data());
  mk.hadamard(tmp.data(), b.data());
  mk.accum(staged.data(), tmp.data());
  for (index_t k = 0; k < r; ++k) ASSERT_EQ(fused[k], staged[k]) << k;

  mk.fused3_accum(fused.data(), a.data(), b.data(), cc.data(), v);
  mk.fill(tmp.data(), v);
  mk.hadamard(tmp.data(), a.data());
  mk.hadamard(tmp.data(), b.data());
  mk.hadamard(tmp.data(), cc.data());
  mk.accum(staged.data(), tmp.data());
  for (index_t k = 0; k < r; ++k) ASSERT_EQ(fused[k], staged[k]) << k;
}

TEST(Microkernel, TileSelection) {
  EXPECT_EQ(mk::select_tile(0), 0u);
  EXPECT_EQ(mk::select_tile(1), 0u);
  EXPECT_EQ(mk::select_tile(7), 0u);
  EXPECT_EQ(mk::select_tile(8), 8u);
  EXPECT_EQ(mk::select_tile(15), 8u);
  EXPECT_EQ(mk::select_tile(16), 16u);
  EXPECT_EQ(mk::select_tile(17), 16u);
  EXPECT_EQ(mk::select_tile(31), 16u);
  EXPECT_EQ(mk::select_tile(32), 32u);
  EXPECT_EQ(mk::select_tile(33), 32u);
  EXPECT_EQ(mk::select_tile(1000), 32u);

  EXPECT_EQ(mk::Kernel(17).tile(), 16u);
  EXPECT_EQ(mk::Kernel().tile(), 0u);
  EXPECT_EQ(mk::Kernel().rank(), 0u);
}

TEST(Microkernel, PaddedRankAndCostScaling) {
  EXPECT_EQ(mk::padded_rank(0), 0u);
  EXPECT_EQ(mk::padded_rank(1), mk::kVectorWidth);
  EXPECT_EQ(mk::padded_rank(8), 8u);
  EXPECT_EQ(mk::padded_rank(17), 24u);
  EXPECT_EQ(mk::padded_rank(32), 32u);
  // Padded strides preserve slab alignment for consecutive accumulators.
  for (index_t r : {1u, 7u, 9u, 17u, 33u})
    EXPECT_EQ(mk::padded_rank(r) * sizeof(real_t) % mk::kAlignment, 0u) << r;

  EXPECT_DOUBLE_EQ(mk::tile_efficiency(16), 1.0);
  EXPECT_DOUBLE_EQ(mk::tile_efficiency(17), 17.0 / 24.0);
  EXPECT_DOUBLE_EQ(mk::flop_scale(17), 24.0 / 17.0);
  EXPECT_DOUBLE_EQ(mk::flop_scale(17) * mk::tile_efficiency(17), 1.0);
  EXPECT_DOUBLE_EQ(mk::flop_scale(0), 1.0);
}

TEST(Microkernel, GatherScale) {
  // v[i] *= base[idx[i] * stride] — column access into a row-major matrix.
  const index_t stride = 5;
  const index_t rows = 7;
  std::vector<real_t> base(rows * stride);
  for (index_t i = 0; i < base.size(); ++i) base[i] = val(i, 9);
  std::vector<index_t> idx = {3, 0, 6, 6, 1};
  std::vector<real_t> v(idx.size()), ref(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) v[i] = ref[i] = val(i, 10);

  mk::gather_scale(v.data(), idx.data(), base.data() + 2, stride, v.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    ref[i] *= base[idx[i] * stride + 2];
    EXPECT_EQ(v[i], ref[i]) << i;
  }
}

TEST(Microkernel, AlignedAllocatorContract) {
  // The buffers used throughout this test file rely on aligned_real_vector
  // actually honoring kNumericAlignment.
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    aligned_real_vector buf(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                  kNumericAlignment,
              0u)
        << n;
  }
  static_assert(mk::kAlignment == kNumericAlignment,
                "microkernel and allocator alignment must agree");
}

}  // namespace
}  // namespace mdcp
