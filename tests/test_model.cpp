#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "model/cost_model.hpp"
#include "model/sketch.hpp"
#include "model/strategy.hpp"
#include "model/tuner.hpp"
#include "mttkrp/engine.hpp"
#include "tensor/generator.hpp"
#include "tensor/stats.hpp"
#include "test_helpers.hpp"

namespace mdcp {
namespace {

using mdcp::testing::random_factors;

TEST(Sketch, ProjectionHashDeterministic) {
  const auto t = generate_uniform(shape_t{20, 20, 20}, 200, 1);
  EXPECT_EQ(projection_hash(t, 5, 0b011), projection_hash(t, 5, 0b011));
  EXPECT_NE(projection_hash(t, 5, 0b011), projection_hash(t, 5, 0b101));
}

TEST(Sketch, ExactMatchesSortBasedCount) {
  const auto t = generate_zipf(shape_t{50, 60, 70, 80}, 3000, 1.2, 3);
  for (mode_set_t s : {0b0001u, 0b0011u, 0b0110u, 0b1111u, 0b1010u}) {
    EXPECT_EQ(exact_distinct_projections(t, s),
              distinct_projection_count(t, s))
        << "subset " << s;
  }
}

TEST(Sketch, ExactHandlesEmptyAndFullSets) {
  const auto t = generate_uniform(shape_t{10, 10}, 50, 5);
  EXPECT_EQ(exact_distinct_projections(t, 0), 1u);
  EXPECT_EQ(exact_distinct_projections(t, 0b11), t.nnz());
}

TEST(Sketch, KmvSmallUniverseIsExact) {
  // Fewer distinct values than k → KMV returns the exact count.
  const auto t = generate_uniform(shape_t{30, 1000, 1000}, 5000, 7);
  const nnz_t exact = exact_distinct_projections(t, 0b001);
  EXPECT_EQ(kmv_distinct_projections(t, 0b001, 1024), exact);
}

TEST(Sketch, KmvAccurateOnLargeUniverse) {
  const auto t = generate_uniform(shape_t{500, 500, 500}, 60000, 11);
  for (mode_set_t s : {0b011u, 0b111u}) {
    const auto exact = static_cast<double>(exact_distinct_projections(t, s));
    const auto est =
        static_cast<double>(kmv_distinct_projections(t, s, 1024));
    EXPECT_NEAR(est / exact, 1.0, 0.15) << "subset " << s;
  }
}

TEST(Sketch, ProjectionCounterCachesPasses) {
  const auto t = generate_uniform(shape_t{40, 40, 40}, 1000, 13);
  ProjectionCounter counter(t);
  const auto a = counter.count(0b011);
  const auto b = counter.count(0b011);
  EXPECT_EQ(a, b);
  EXPECT_EQ(counter.passes(), 1u);
  counter.count(0b110);
  EXPECT_EQ(counter.passes(), 2u);
}

TEST(CostModel, BdtNeedsFewerFlopsThanFlatAtHighOrder) {
  const auto t = generate_uniform(shape_t{40, 40, 40, 40, 40, 40, 40, 40},
                                  20000, 17);
  ProjectionCounter counter(t);
  std::vector<mode_t> order(8);
  for (mode_t m = 0; m < 8; ++m) order[m] = m;
  const auto flat =
      predict_strategy(t, TreeSpec::flat(order), 16, counter);
  const auto bdt = predict_strategy(t, TreeSpec::bdt(order), 16, counter);
  // Flat touches the full tensor N times; the BDT only twice. At order 8 the
  // predicted flop gap must be large.
  EXPECT_LT(bdt.flops_per_iteration, flat.flops_per_iteration / 1.8);
}

TEST(CostModel, PredictedTuplesMatchSymbolicTree) {
  const auto t = generate_clustered(shape_t{200, 200, 200, 200}, 4000,
                                    {.clusters = 10, .spread = 4.0}, 19);
  ProjectionCounter counter(t);
  std::vector<mode_t> order{0, 1, 2, 3};
  const auto spec = TreeSpec::bdt(order);
  const auto pred = predict_strategy(t, spec, 8, counter);
  const DimensionTree tree(t, spec);
  // Every predicted node count equals the symbolic truth (counter is exact
  // at this size).
  for (const auto& nc : pred.nodes) {
    bool found = false;
    for (int i = 0; i < tree.size(); ++i) {
      const auto& n = tree.node(i);
      if (!n.is_root() && n.mode_set == nc.mode_set) {
        EXPECT_EQ(nc.tuples, n.tuples) << "mode set " << nc.mode_set;
        found = true;
      }
    }
    EXPECT_TRUE(found) << "mode set " << nc.mode_set;
  }
}

TEST(CostModel, PeakValueMemoryTracksMeasuredPeak) {
  const auto t = generate_uniform(shape_t{60, 60, 60, 60}, 3000, 23);
  ProjectionCounter counter(t);
  std::vector<mode_t> order{0, 1, 2, 3};
  const auto spec = TreeSpec::bdt(order);
  const index_t rank = 8;
  const auto pred = predict_strategy(t, spec, rank, counter);

  DTreeMttkrpEngine engine(t, spec);
  const auto factors = random_factors(t, rank, 3);
  Matrix out;
  std::size_t measured_peak_values = 0;
  for (mode_t m = 0; m < 4; ++m) {
    engine.compute(m, factors, out);
    std::size_t live = 0;
    for (int i = 0; i < engine.tree().size(); ++i)
      live += engine.tree().node(i).values.size() * sizeof(real_t);
    measured_peak_values = std::max(measured_peak_values, live);
    engine.factor_updated(m);
  }
  // The model's path bound is an upper estimate of the post-update live set;
  // transient mid-compute peaks can exceed it, but never by more than the
  // whole-tree total.
  EXPECT_GE(pred.peak_value_bytes, measured_peak_values / 4);
  EXPECT_GT(pred.peak_value_bytes, 0u);
}

TEST(Strategies, EnumerationCoversCanonicalShapes) {
  // Order 5: the BDT shape is distinct from every 3-level shape (at
  // order 4 they coincide and deduplicate).
  const auto t = generate_uniform(shape_t{30, 40, 50, 60, 70}, 500, 29);
  const auto strategies = enumerate_strategies(t);
  EXPECT_GE(strategies.size(), 5u);
  bool has_flat = false, has_bdt = false, has_3lvl = false;
  for (const auto& s : strategies) {
    if (s.name.rfind("flat", 0) == 0) has_flat = true;
    if (s.name.rfind("bdt", 0) == 0) has_bdt = true;
    if (s.name.rfind("3lvl", 0) == 0) has_3lvl = true;
    EXPECT_NO_THROW(s.spec.validate(t.order()));
  }
  EXPECT_TRUE(has_flat);
  EXPECT_TRUE(has_bdt);
  EXPECT_TRUE(has_3lvl);
}

TEST(Strategies, DeduplicatesIdenticalSpecs) {
  // All mode dims equal → asc/desc orders equal natural → no duplicates.
  const auto t = generate_uniform(shape_t{20, 20, 20}, 200, 31);
  const auto strategies = enumerate_strategies(t);
  std::vector<std::string> keys;
  for (const auto& s : strategies) keys.push_back(s.spec.to_string());
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(Tuner, RanksAscendingByPredictedTime) {
  const auto t = generate_zipf(shape_t{80, 80, 80, 80, 80}, 4000, 1.1, 37);
  const auto report = select_strategy(t, 16);
  ASSERT_FALSE(report.ranked.empty());
  for (std::size_t i = 1; i < report.ranked.size(); ++i) {
    EXPECT_LE(report.ranked[i - 1].prediction.seconds_per_iteration,
              report.ranked[i].prediction.seconds_per_iteration);
  }
  EXPECT_EQ(report.chosen, 0u);  // unlimited budget → fastest wins
}

TEST(Tuner, MemoryBudgetForcesCheaperStrategy) {
  const auto t = generate_uniform(shape_t{100, 100, 100, 100, 100}, 8000, 41);
  const auto unlimited = select_strategy(t, 32);
  const auto& win = unlimited.winner();
  // A budget below the winner's footprint must move the choice.
  const std::size_t tight = win.prediction.total_memory_bytes() / 2;
  const auto limited = select_strategy(t, 32, tight);
  if (limited.winner().fits_budget) {
    // The budgeted winner honors the cap and differs from the unrestricted
    // winner (whose footprint exceeds the cap by construction).
    EXPECT_LE(limited.winner().prediction.total_memory_bytes(), tight);
    EXPECT_NE(limited.winner().strategy.spec.to_string(),
              win.strategy.spec.to_string());
  } else {
    // Nothing fit: fallback must be the minimum-memory strategy.
    for (const auto& rs : limited.ranked) {
      EXPECT_GE(rs.prediction.total_memory_bytes(),
                limited.winner().prediction.total_memory_bytes());
    }
  }
}

TEST(Tuner, AutoEnginePrefersMemoizationOnHighOrder) {
  // Order-6 tensor: any sane cost model should pick a memoizing tree, not
  // the flat strategy.
  const auto t = generate_uniform(shape_t{30, 30, 30, 30, 30, 30}, 5000, 43);
  const auto report = select_strategy(t, 16);
  EXPECT_EQ(report.winner().strategy.name.rfind("flat", 0), std::string::npos)
      << "winner was " << report.winner().strategy.name;
}

TEST(Tuner, CalibratedModelStillRanksSanely) {
  const auto params = calibrate_cost_model(8);
  EXPECT_GT(params.seconds_per_flop, 0.0);
  EXPECT_GT(params.seconds_per_byte, 0.0);
  const auto t = generate_uniform(shape_t{40, 40, 40, 40, 40, 40}, 3000, 47);
  const auto report = select_strategy(t, 16, 0, params);
  EXPECT_FALSE(report.ranked.empty());
}

TEST(GreedyTree, ProducesValidSpec) {
  const auto t = generate_clustered(shape_t{100, 100, 100, 100, 100}, 3000,
                                    {.clusters = 12, .spread = 4.0}, 51);
  ProjectionCounter counter(t);
  const auto spec = greedy_tree(t, counter);
  EXPECT_NO_THROW(spec.validate(t.order()));
  EXPECT_EQ(spec.children.size(), 2u);
}

TEST(GreedyTree, PairsCorrelatedModes) {
  // Modes 0 and 1 are perfectly correlated (always equal); greedy must merge
  // them first, so {0,1} appears as a subtree.
  CooTensor t(shape_t{50, 50, 50, 50});
  Rng rng(53);
  std::vector<index_t> c(4);
  for (int i = 0; i < 500; ++i) {
    c[0] = rng.next_index(50);
    c[1] = c[0];
    c[2] = rng.next_index(50);
    c[3] = rng.next_index(50);
    t.push_back(c, 1.0);
  }
  t.coalesce();
  ProjectionCounter counter(t);
  const auto spec = greedy_tree(t, counter);
  EXPECT_NE(spec.to_string().find("(0,1)"), std::string::npos)
      << spec.to_string();
}

TEST(GreedyTree, IncludedInTunerEnumeration) {
  const auto t = generate_clustered(shape_t{200, 200, 200, 200}, 2000,
                                    {.clusters = 8, .spread = 3.0}, 55);
  ProjectionCounter counter(t);
  const auto strategies = enumerate_strategies(t, &counter);
  bool has_greedy = false;
  for (const auto& s : strategies)
    if (s.name == "greedy") has_greedy = true;
  // Greedy may coincide with a canonical spec (then deduplicated), but on a
  // clustered tensor with asymmetric collapse it is normally distinct.
  const auto no_counter = enumerate_strategies(t);
  EXPECT_GE(strategies.size(), no_counter.size());
  (void)has_greedy;
}

TEST(ProbedTuner, PicksBudgetFeasibleMeasuredWinner) {
  const auto t = generate_zipf(shape_t{60, 60, 60, 60}, 2500, 1.1, 57);
  const auto report = select_strategy_probed(t, 8, 0, {}, 3);
  ASSERT_LT(report.chosen, report.ranked.size());
  EXPECT_TRUE(report.winner().fits_budget);
  // The probed winner must come from the model's top-3 shortlist.
  EXPECT_LT(report.chosen, 3u);
}

TEST(ProbedTuner, EngineIsExact) {
  const auto t = generate_uniform(shape_t{30, 35, 40, 45}, 1500, 59);
  const auto factors = random_factors(t, 5, 60);
  const auto engine = make_probed_engine(t, 5);
  EXPECT_EQ(engine->name().rfind("auto+probe:", 0), 0u) << engine->name();
  Matrix got, want;
  for (mode_t m = 0; m < t.order(); ++m) {
    engine->compute(m, factors, got);
    mttkrp_reference(t, factors, m, want);
    EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-9) << "mode " << m;
  }
}

}  // namespace
}  // namespace mdcp
