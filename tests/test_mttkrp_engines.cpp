// Cross-engine equivalence: every MTTKRP engine must agree with the
// brute-force reference on every mode, for tensors spanning orders 2..6,
// several sparsity structures, and several ranks. This is the core
// correctness property of the library.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <tuple>

#include "cpals/cpals.hpp"
#include "mttkrp/engine.hpp"
#include "tensor/generator.hpp"
#include "test_helpers.hpp"

namespace mdcp {
namespace {

using mdcp::testing::exact_engine_kinds;
using mdcp::testing::kind_label;
using mdcp::testing::random_factors;

enum class Structure { kUniform, kZipf, kClustered };

const char* structure_name(Structure s) {
  switch (s) {
    case Structure::kUniform: return "uniform";
    case Structure::kZipf: return "zipf";
    case Structure::kClustered: return "clustered";
  }
  return "?";
}

CooTensor make_structured(Structure s, const shape_t& shape, nnz_t nnz,
                          std::uint64_t seed) {
  switch (s) {
    case Structure::kUniform: return generate_uniform(shape, nnz, seed);
    case Structure::kZipf: return generate_zipf(shape, nnz, 1.2, seed);
    case Structure::kClustered:
      return generate_clustered(shape, nnz, {.clusters = 8, .spread = 3.0},
                                seed);
  }
  return CooTensor(shape);
}

using Param = std::tuple<EngineKind, mode_t /*order*/, Structure>;

class EngineEquivalence : public ::testing::TestWithParam<Param> {};

TEST_P(EngineEquivalence, MatchesReferenceEveryMode) {
  const auto [kind, order, structure] = GetParam();
  shape_t shape;
  for (mode_t m = 0; m < order; ++m)
    shape.push_back(static_cast<index_t>(11 + 7 * m));
  const auto t = make_structured(structure, shape, 600, 1000 + order);
  const index_t rank = 6;
  const auto factors = random_factors(t, rank, 12345);
  const auto engine = make_engine(t, kind, rank);

  Matrix got, want;
  for (mode_t m = 0; m < order; ++m) {
    engine->compute(m, factors, got);
    mttkrp_reference(t, factors, m, want);
    ASSERT_EQ(got.rows(), t.dim(m));
    ASSERT_EQ(got.cols(), rank);
    EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-9)
        << engine->name() << " order " << order << " mode " << m;
  }
}

std::vector<Param> all_params() {
  std::vector<Param> p;
  for (EngineKind k : exact_engine_kinds()) {
    for (mode_t order : {2, 3, 4, 5, 6}) {
      for (Structure s :
           {Structure::kUniform, Structure::kZipf, Structure::kClustered}) {
        p.emplace_back(k, order, s);
      }
    }
  }
  return p;
}

std::string param_label(const ::testing::TestParamInfo<Param>& info) {
  return kind_label(std::get<0>(info.param)) + "_order" +
         std::to_string(std::get<1>(info.param)) + "_" +
         structure_name(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllEnginesOrdersStructures, EngineEquivalence,
                         ::testing::ValuesIn(all_params()), param_label);

class EngineRankSweep
    : public ::testing::TestWithParam<std::tuple<EngineKind, index_t>> {};

TEST_P(EngineRankSweep, MatchesReferenceAcrossRanks) {
  const auto [kind, rank] = GetParam();
  const auto t = generate_zipf(shape_t{14, 18, 22, 26}, 700, 1.1, 777);
  const auto factors = random_factors(t, rank, 4242);
  const auto engine = make_engine(t, kind, rank);
  Matrix got, want;
  for (mode_t m = 0; m < t.order(); ++m) {
    engine->compute(m, factors, got);
    mttkrp_reference(t, factors, m, want);
    EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-9)
        << engine->name() << " rank " << rank << " mode " << m;
  }
}

std::string rank_label(
    const ::testing::TestParamInfo<std::tuple<EngineKind, index_t>>& info) {
  return kind_label(std::get<0>(info.param)) + "_rank" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Ranks, EngineRankSweep,
    ::testing::Combine(::testing::ValuesIn(exact_engine_kinds()),
                       ::testing::Values(index_t{1}, index_t{2}, index_t{7},
                                         index_t{17})),
    rank_label);

TEST(EngineEdgeCases, SingleNonzero) {
  CooTensor t(shape_t{4, 5, 6});
  t.push_back(std::array<index_t, 3>{1, 2, 3}, 2.5);
  const auto factors = random_factors(t, 3, 5);
  for (EngineKind k : exact_engine_kinds()) {
    const auto engine = make_engine(t, k, 3);
    Matrix got, want;
    for (mode_t m = 0; m < 3; ++m) {
      engine->compute(m, factors, got);
      mttkrp_reference(t, factors, m, want);
      EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-12) << engine->name();
    }
  }
}

TEST(EngineEdgeCases, NegativeAndZeroValues) {
  CooTensor t(shape_t{3, 3, 3});
  t.push_back(std::array<index_t, 3>{0, 0, 0}, -1.5);
  t.push_back(std::array<index_t, 3>{1, 1, 1}, 0.0);
  t.push_back(std::array<index_t, 3>{2, 2, 2}, 3.0);
  const auto factors = random_factors(t, 4, 6);
  for (EngineKind k : exact_engine_kinds()) {
    const auto engine = make_engine(t, k, 4);
    Matrix got, want;
    engine->compute(1, factors, got);
    mttkrp_reference(t, factors, 1, want);
    EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-12) << engine->name();
  }
}

TEST(EngineEdgeCases, FactorValidationErrors) {
  const auto t = generate_uniform(shape_t{5, 6, 7}, 40, 8);
  auto factors = random_factors(t, 3, 7);
  const auto engine = make_engine(t, EngineKind::kCoo, 3);
  Matrix out;

  auto wrong_count = factors;
  wrong_count.pop_back();
  EXPECT_THROW(engine->compute(0, wrong_count, out), error);

  auto wrong_rows = factors;
  wrong_rows[1] = Matrix(99, 3);
  EXPECT_THROW(engine->compute(0, wrong_rows, out), error);

  auto wrong_rank = factors;
  wrong_rank[2] = Matrix(7, 5);
  EXPECT_THROW(engine->compute(0, wrong_rank, out), error);
}

TEST(EngineEdgeCases, AutoEngineIsExact) {
  const auto t = generate_clustered(shape_t{50, 60, 70, 80}, 1500,
                                    {.clusters = 6, .spread = 2.0}, 99);
  const auto factors = random_factors(t, 5, 31);
  const auto engine = make_engine(t, EngineKind::kAuto, 5);
  EXPECT_EQ(engine->name().rfind("auto:", 0), 0u) << engine->name();
  Matrix got, want;
  for (mode_t m = 0; m < t.order(); ++m) {
    engine->compute(m, factors, got);
    mttkrp_reference(t, factors, m, want);
    EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-9) << "mode " << m;
  }
}

}  // namespace
}  // namespace mdcp
