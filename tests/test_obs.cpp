// Tests for the observability subsystem: JSON writer correctness, trace-ring
// overflow semantics, tracer export validity under concurrent span recording,
// metrics-registry thread safety, and the run-report JSONL golden schema.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "cpals/cpals.hpp"
#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/report.hpp"
#include "obs/roofline.hpp"
#include "obs/trace.hpp"
#include "tensor/generator.hpp"
#include "util/parallel.hpp"

namespace mdcp {
namespace {

// Minimal recursive-descent JSON checker — intentionally independent of
// JsonWriter so the two can't share a bug. Accepts exactly one JSON value.
class JsonChecker {
 public:
  static bool valid(const std::string& s) {
    JsonChecker c(s);
    c.ws();
    if (!c.value()) return false;
    c.ws();
    return c.i_ == s.size();
  }

 private:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++i_;
    return true;
  }
  void ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_])))
      ++i_;
  }

  bool value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p; ++p)
      if (!eat(*p)) return false;
    return true;
  }

  bool object() {
    if (!eat('{')) return false;
    ws();
    if (eat('}')) return true;
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (!eat(':')) return false;
      ws();
      if (!value()) return false;
      ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {
    if (!eat('[')) return false;
    ws();
    if (eat(']')) return true;
    while (true) {
      ws();
      if (!value()) return false;
      ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool string() {
    if (!eat('"')) return false;
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (c == '"') {
        ++i_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++i_;
        const char e = peek();
        if (e == 'u') {
          ++i_;
          for (int k = 0; k < 4; ++k)
            if (!std::isxdigit(static_cast<unsigned char>(peek())))
              return false;
            else
              ++i_;
          continue;
        }
        if (std::string("\"\\/bfnrt").find(e) == std::string::npos)
          return false;
        ++i_;
        continue;
      }
      ++i_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = i_;
    eat('-');
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++i_;
    if (eat('.'))
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++i_;
    if (peek() == 'e' || peek() == 'E') {
      ++i_;
      if (peek() == '+' || peek() == '-') ++i_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++i_;
    }
    return i_ > start && std::isdigit(static_cast<unsigned char>(s_[i_ - 1]));
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

TEST(JsonChecker, SanityOnHandWrittenCases) {
  EXPECT_TRUE(JsonChecker::valid(R"({"a":[1,2.5,-3e4],"b":"x\ny","c":null})"));
  EXPECT_TRUE(JsonChecker::valid("[]"));
  EXPECT_FALSE(JsonChecker::valid(R"({"a":1,})"));
  EXPECT_FALSE(JsonChecker::valid(R"({"a" 1})"));
  EXPECT_FALSE(JsonChecker::valid("[1,2"));
  EXPECT_FALSE(JsonChecker::valid("{\"a\":\"\x01\"}"));
}

TEST(JsonWriter, EscapesAndNestsCorrectly) {
  obs::JsonWriter w;
  w.begin_object()
      .kv("plain", "x")
      .kv("quote\"back\\slash", "tab\tnewline\ncr\r")
      .kv("ctrl", std::string("\x01\x1f"))
      .kv("int", -7)
      .kv("u64", std::uint64_t{18446744073709551615ULL})
      .kv("flag", true);
  w.key("arr").begin_array().value(1).value("two").end_array();
  w.key("obj").begin_object().kv("k", 2.5).end_object();
  w.end_object();
  const std::string s = w.str();
  EXPECT_TRUE(JsonChecker::valid(s)) << s;
  EXPECT_NE(s.find(R"("quote\"back\\slash":"tab\tnewline\ncr\r")"),
            std::string::npos)
      << s;
  EXPECT_NE(s.find(R"("ctrl":"\u0001\u001f")"), std::string::npos) << s;
  EXPECT_NE(s.find("18446744073709551615"), std::string::npos) << s;
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter w;
  w.begin_object()
      .kv("nan", std::nan(""))
      .kv("inf", std::numeric_limits<double>::infinity())
      .kv("ok", 1.5)
      .end_object();
  const std::string s = w.str();
  EXPECT_TRUE(JsonChecker::valid(s)) << s;
  EXPECT_NE(s.find(R"("nan":null)"), std::string::npos) << s;
  EXPECT_NE(s.find(R"("inf":null)"), std::string::npos) << s;
}

TEST(Clock, IsMonotonic) {
  std::uint64_t prev = obs::clock_ns();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = obs::clock_ns();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

obs::TraceEvent make_event(int i) {
  obs::TraceEvent ev{};
  std::snprintf(ev.name, sizeof(ev.name), "ev%d", i);
  ev.ts_ns = static_cast<std::uint64_t>(i);
  ev.dur_ns = 1;
  return ev;
}

TEST(TraceRing, OverflowKeepsNewestAndCountsDrops) {
  obs::TraceRing ring(4, /*tid=*/0);
  for (int i = 0; i < 10; ++i) ring.push(make_event(i));
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.kept(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first of the newest four: 6, 7, 8, 9.
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(std::string(events[k].name), "ev" + std::to_string(6 + k));
    EXPECT_EQ(events[k].ts_ns, static_cast<std::uint64_t>(6 + k));
  }
}

TEST(TraceRing, NoOverflowKeepsEverythingInOrder) {
  obs::TraceRing ring(8, 1);
  for (int i = 0; i < 5; ++i) ring.push(make_event(i));
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 5u);
  for (int k = 0; k < 5; ++k)
    EXPECT_EQ(events[k].ts_ns, static_cast<std::uint64_t>(k));
}

// The tracer is a process-wide singleton; each test re-arms it from a clean
// slate and disables it again so tests stay order-independent.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& t = obs::Tracer::instance();
    t.set_enabled(false);
    t.set_ring_capacity(obs::Tracer::kDefaultRingCapacity);
    t.clear();
  }
  void TearDown() override {
    auto& t = obs::Tracer::instance();
    t.set_enabled(false);
    t.clear();
    t.set_ring_capacity(obs::Tracer::kDefaultRingCapacity);
  }
};

TEST_F(TracerTest, DisabledRecordsNothing) {
  { MDCP_TRACE_SPAN("should.not.appear"); }
  EXPECT_EQ(obs::Tracer::instance().retained_events(), 0u);
}

#if MDCP_ENABLE_TRACING

TEST_F(TracerTest, SpansRecordNamesArgsAndDurations) {
  auto& tracer = obs::Tracer::instance();
  tracer.set_enabled(true);
  {
    MDCP_TRACE_SPAN("outer", "mode", 3);
    { MDCP_TRACE_SPAN("inner"); }
  }
  tracer.set_enabled(false);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first, so it lands in the ring first.
  EXPECT_EQ(std::string(events[0].name), "inner");
  EXPECT_EQ(std::string(events[1].name), "outer");
  EXPECT_STREQ(events[1].arg_name, "mode");
  EXPECT_EQ(events[1].arg_value, 3);
  EXPECT_GE(events[1].dur_ns, events[0].dur_ns);  // outer encloses inner
}

TEST_F(TracerTest, RingOverflowSurvivesAndReportsDrops) {
  auto& tracer = obs::Tracer::instance();
  tracer.set_ring_capacity(16);
  tracer.set_enabled(true);
  for (int i = 0; i < 100; ++i) {
    MDCP_TRACE_SPAN("span", "i", i);
  }
  tracer.set_enabled(false);
  EXPECT_EQ(tracer.retained_events(), 16u);
  EXPECT_EQ(tracer.dropped_events(), 84u);
  // The newest spans survive.
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 16u);
  for (std::size_t k = 0; k < events.size(); ++k)
    EXPECT_EQ(events[k].arg_value, static_cast<std::int64_t>(84 + k));
  // The export is still valid JSON and mentions the drops.
  const std::string json = tracer.to_chrome_json();
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("dropped_events"), std::string::npos);
}

TEST_F(TracerTest, ConcurrentSpansExportValidChromeJson) {
  auto& tracer = obs::Tracer::instance();
  tracer.set_enabled(true);
  constexpr nnz_t kSpans = 2000;
  parallel_for(kSpans, [](nnz_t i) {
    MDCP_TRACE_SPAN("parallel.work", "i", static_cast<std::int64_t>(i));
  });
  tracer.set_enabled(false);
  EXPECT_EQ(tracer.retained_events() + tracer.dropped_events(), kSpans);
  const std::string json = tracer.to_chrome_json();
  EXPECT_TRUE(JsonChecker::valid(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("parallel.work"), std::string::npos);
}

#else  // MDCP_ENABLE_TRACING == 0

TEST_F(TracerTest, CompiledOutMacroRecordsNothingAndSkipsArgEvaluation) {
  auto& tracer = obs::Tracer::instance();
  tracer.set_enabled(true);
  int evaluations = 0;
  { MDCP_TRACE_SPAN("compiled.out", "i", ++evaluations); }
  tracer.set_enabled(false);
  EXPECT_EQ(evaluations, 0);  // the macro must not evaluate its arguments
  EXPECT_EQ(tracer.retained_events(), 0u);
  // The (empty) export is still valid Chrome trace JSON.
  EXPECT_TRUE(JsonChecker::valid(tracer.to_chrome_json()));
}

#endif  // MDCP_ENABLE_TRACING

TEST(Metrics, CountersAreRaceFreeUnderConcurrentAdds) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& c = reg.counter("test.race_counter");
  obs::Gauge& g = reg.gauge("test.race_gauge_max");
  c.reset();
  g.reset();
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        c.add();
        g.record_max(static_cast<double>(t * kAddsPerThread + i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(g.value(), static_cast<double>(kThreads * kAddsPerThread - 1));
}

TEST(Metrics, LookupIsStableAndResetKeepsReferences) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& a = reg.counter("test.stable");
  a.add(41);
  obs::Counter& b = reg.counter("test.stable");
  EXPECT_EQ(&a, &b);
  b.add();
  EXPECT_EQ(a.value(), 42u);
  reg.reset();
  EXPECT_EQ(a.value(), 0u);
  a.add(7);
  EXPECT_EQ(reg.counter("test.stable").value(), 7u);
}

TEST(Metrics, JsonExportIsValid) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("test.json_counter").add(3);
  reg.gauge("test.json_gauge").set(2.5);
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\":3"), std::string::npos) << json;
}

TEST(HistogramMetric, BucketsQuantilesAndMoments) {
  obs::Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Log-bucketing at 4 buckets/octave bounds quantile error to ~19%.
  EXPECT_NEAR(h.p50(), 50.0, 50.0 * 0.20);
  EXPECT_NEAR(h.p95(), 95.0, 95.0 * 0.20);
  EXPECT_NEAR(h.p99(), 99.0, 99.0 * 0.20);
  EXPECT_GE(h.p99(), h.p95());
  EXPECT_GE(h.p95(), h.p50());
  // Quantiles never escape the observed range.
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_LE(h.quantile(1.0), h.max());
}

TEST(HistogramMetric, P99SeparatesTailFromBody) {
  // 98 fast samples and 2 slow outliers: p95 stays in the body while p99
  // must land in the tail — the case the p99 column exists for.
  obs::Histogram h;
  for (int i = 0; i < 98; ++i) h.record(0.001);
  h.record(1.0);
  h.record(1.0);
  EXPECT_NEAR(h.p95(), 0.001, 0.001 * 0.20);
  EXPECT_NEAR(h.p99(), 1.0, 1.0 * 0.20);
  EXPECT_GT(h.p99(), h.p95() * 100);
}

TEST(HistogramMetric, ResetAndDegenerateCases) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty histogram
  h.record(3.5);
  EXPECT_NEAR(h.quantile(0.5), 3.5, 3.5 * 0.20);
  h.record(0.0);  // non-positive values clamp into the bottom bucket
  h.record(-1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(HistogramMetric, ConcurrentRecordLosesNothing) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Histogram& h = reg.histogram("test.race_histogram");
  h.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 1; i <= kPerThread; ++i)
        h.record(static_cast<double>(i));
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(kPerThread));
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
}

TEST(HistogramMetric, RegistryExportAndReset) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Histogram& h = reg.histogram("test.json_histogram");
  h.reset();
  h.record(0.001);
  h.record(0.002);
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json_histogram\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
  reg.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(&reg.histogram("test.json_histogram"), &h);  // stable reference
}

TEST(JsonParse, RoundTripsWriterOutput) {
  obs::JsonWriter w;
  w.begin_object().kv("s", "a\"b\\c\n").kv("n", -2.5).kv("b", true);
  w.key("arr").begin_array().value(1).null().value("x").end_array();
  w.key("obj").begin_object().kv("k", std::uint64_t{7}).end_object();
  w.end_object();

  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::json_parse(w.str(), v, &err)) << err;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("s")->as_string(), "a\"b\\c\n");
  EXPECT_DOUBLE_EQ(v.find("n")->as_number(), -2.5);
  EXPECT_TRUE(v.find("b")->as_bool());
  const obs::JsonValue* arr = v.find("arr", obs::JsonValue::Kind::kArray);
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->items().size(), 3u);
  EXPECT_TRUE(arr->items()[1].is_null());
  EXPECT_EQ(v.find("obj")->find("k")->as_number(), 7.0);
  // Member insertion order is preserved (bench tables diff in emission
  // order).
  EXPECT_EQ(v.members()[0].first, "s");
  EXPECT_EQ(v.members().back().first, "obj");

  // Re-serializing the parsed DOM yields valid JSON that parses identically.
  obs::JsonWriter w2;
  v.write(w2);
  obs::JsonValue v2;
  ASSERT_TRUE(obs::json_parse(w2.str(), v2, &err)) << err;
  EXPECT_EQ(v2.find("s")->as_string(), "a\"b\\c\n");
}

TEST(JsonParse, RejectsMalformedInput) {
  obs::JsonValue v;
  std::string err;
  EXPECT_FALSE(obs::json_parse("{\"a\":1,}", v, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(obs::json_parse("[1,2", v));
  EXPECT_FALSE(obs::json_parse("", v));
  EXPECT_FALSE(obs::json_parse("{} extra", v));
  EXPECT_FALSE(obs::json_parse("{\"a\" 1}", v));
  // Depth bomb must be rejected, not crash.
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(obs::json_parse(deep, v));
}

// --- perf counters: the fallback path must be exercised everywhere ---
//
// These tests cannot assume a PMU (CI containers typically have
// perf_event_paranoid >= 2 and no hardware events); they assert the
// *contract*: regions always complete, masks stay consistent, and
// unavailable counters are absent rather than zero/garbage.

TEST(Perf, DisabledRegionIsANoOp) {
  obs::Perf::instance().set_enabled(false);
  const std::uint64_t before =
      obs::MetricsRegistry::instance().counter("perf.task_clock_ns").value();
  { obs::PerfRegion region("test.disabled"); }
  EXPECT_EQ(
      obs::MetricsRegistry::instance().counter("perf.task_clock_ns").value(),
      before);
}

TEST(Perf, AvailabilityMaskIsConsistent) {
  auto& perf = obs::Perf::instance();
  perf.set_enabled(false);
  EXPECT_EQ(perf.available_mask(), 0u);  // disabled => nothing available
  perf.set_enabled(true);
  const std::uint16_t mask = perf.available_mask();
  if (!obs::Perf::counters_supported()) {
    EXPECT_EQ(mask, 0u);
    EXPECT_EQ(perf.process_set(), nullptr);
  } else {
    EXPECT_NE(mask, 0u);
    ASSERT_NE(perf.process_set(), nullptr);
    // Every read slot must be a subset of the open slots.
    const obs::PerfValues v = perf.process_set()->read_values();
    EXPECT_EQ(v.valid_mask & ~mask, 0u);
  }
  perf.set_enabled(false);
}

TEST(Perf, RegionCompletesWhetherOrNotCountersExist) {
  auto& perf = obs::Perf::instance();
  perf.set_enabled(true);
  {
    obs::PerfRegion region("test.enabled", "i", 1);
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + static_cast<double>(i);
  }
  perf.set_enabled(false);
  // If any counter exists, the region must have added to its perf.* metric;
  // if none exists, it must have added nothing (and not crashed).
  SUCCEED();
}

TEST(Perf, ValuesSinceClampsAndMasks) {
  obs::PerfValues a, b;
  a.valid_mask = 0b011;
  a.value[0] = 100;
  a.value[1] = 50;
  b.valid_mask = 0b110;
  b.value[1] = 70;
  b.value[2] = 9;
  const obs::PerfValues d = b.since(a);
  EXPECT_EQ(d.valid_mask, 0b010);  // intersection of the masks
  EXPECT_EQ(d.get(obs::PerfCounterId::kInstructions), 20u);
  EXPECT_EQ(d.get(obs::PerfCounterId::kCycles, 777), 777u);  // invalid slot
  // A smaller later reading (multiplex rescaling jitter) clamps to zero.
  const obs::PerfValues r = a.since(b);
  EXPECT_EQ(r.get(obs::PerfCounterId::kInstructions, 777), 0u);
}

TEST(Perf, AccumulatorAggregatesAcrossThreads) {
  obs::PerfAccumulator acc;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        obs::PerfValues d;
        d.valid_mask = 0b1;
        d.value[0] = 2;
        acc.add(d);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(acc.values().get(obs::PerfCounterId::kCycles),
            static_cast<std::uint64_t>(kThreads) * 1000 * 2);
  acc.reset();
  EXPECT_FALSE(acc.values().any());
}

TEST(Roofline, AttributionMath) {
  obs::RooflineCeilings c;
  c.fma_gflops = 10.0;
  c.triad_gbps = 20.0;
  c.threads = 1;
  EXPECT_DOUBLE_EQ(c.ridge_intensity(), 0.5);

  obs::RooflineSample s;
  s.seconds = 1.0;
  s.flops = 2e9;       // 2 GFLOP/s achieved
  s.bytes = 8e9;       // 8 GB/s achieved
  const auto a = obs::attribute_roofline(s, c);
  EXPECT_TRUE(a.has_bytes);
  EXPECT_DOUBLE_EQ(a.gflops, 2.0);
  EXPECT_DOUBLE_EQ(a.pct_compute, 20.0);
  EXPECT_DOUBLE_EQ(a.gbps, 8.0);
  EXPECT_DOUBLE_EQ(a.pct_bandwidth, 40.0);
  EXPECT_DOUBLE_EQ(a.intensity, 0.25);
  EXPECT_TRUE(a.memory_bound);  // 0.25 < ridge 0.5

  s.bytes = -1;  // LLC counters unavailable
  const auto b = obs::attribute_roofline(s, c);
  EXPECT_FALSE(b.has_bytes);
  EXPECT_DOUBLE_EQ(b.gflops, 2.0);
}

TEST(Roofline, CalibrationProducesPositiveCeilings) {
  const auto c = obs::calibrate_roofline(/*seconds_budget=*/0.05);
  EXPECT_GT(c.fma_gflops, 0.0);
  EXPECT_GT(c.triad_gbps, 0.0);
  EXPECT_GT(c.ridge_intensity(), 0.0);
  EXPECT_GE(c.threads, 1);
}

#if MDCP_ENABLE_TRACING

TEST_F(TracerTest, ExportCarriesProcessAndThreadNames) {
  auto& tracer = obs::Tracer::instance();
  tracer.set_process_name("mdcp-test");
  tracer.set_current_thread_name("unit-test-main");
  tracer.set_enabled(true);
  { MDCP_TRACE_SPAN("named.span"); }
  tracer.set_enabled(false);
  const std::string json = tracer.to_chrome_json();
  EXPECT_TRUE(JsonChecker::valid(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos) << json;
  EXPECT_NE(json.find("mdcp-test"), std::string::npos) << json;
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos) << json;
  EXPECT_NE(json.find("unit-test-main"), std::string::npos) << json;
  tracer.set_process_name("mdcp");
}

TEST_F(TracerTest, PerfRegionSpansCarryCounterArgsWhenAvailable) {
  auto& tracer = obs::Tracer::instance();
  auto& perf = obs::Perf::instance();
  tracer.set_enabled(true);
  perf.set_enabled(true);
  { obs::PerfRegion region("perf.span", "mode", 2); }
  perf.set_enabled(false);
  tracer.set_enabled(false);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name), "perf.span");
  EXPECT_EQ(events[0].arg_value, 2);
  const std::string json = tracer.to_chrome_json();
  EXPECT_TRUE(JsonChecker::valid(json)) << json.substr(0, 400);
  if (obs::Perf::counters_supported()) {
    // At least one counter delta must appear as a span arg.
    EXPECT_NE(events[0].perf_mask, 0u);
  } else {
    EXPECT_EQ(events[0].perf_mask, 0u);
  }
}

#endif  // MDCP_ENABLE_TRACING

TEST(Report, TensorFingerprintIsContentSensitive) {
  const auto a = generate_uniform({10, 12, 14}, 200, 5);
  const auto b = generate_uniform({10, 12, 14}, 200, 5);
  const auto c = generate_uniform({10, 12, 14}, 200, 6);
  EXPECT_EQ(obs::tensor_fingerprint(a), obs::tensor_fingerprint(b));
  EXPECT_NE(obs::tensor_fingerprint(a), obs::tensor_fingerprint(c));
}

// Golden-schema check: a real cp_als run with a reporter attached must emit
// a header, one record per iteration, and a summary — every line valid JSON
// with the documented required keys.
TEST(Report, RunReportMatchesGoldenSchema) {
  const std::string path = ::testing::TempDir() + "/mdcp_test_report.jsonl";
  const auto tensor = generate_uniform({20, 24, 28, 16}, 600, 11);

  CpAlsOptions opt;
  opt.rank = 4;
  opt.max_iterations = 3;
  opt.tolerance = 0;  // fixed iteration count
  opt.seed = 99;
  opt.engine = EngineKind::kDTreeBdt;
  {
    obs::RunReporter reporter(path);
    ASSERT_TRUE(reporter.ok());
    reporter.write_header(tensor, "test_obs golden", 1);
    opt.reporter = &reporter;
    const auto result = cp_als(tensor, opt);
    EXPECT_EQ(result.iterations, 3);
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) lines.push_back(line);
  ASSERT_EQ(lines.size(), 5u);  // header + 3 iterations + summary

  const auto has_keys = [](const std::string& line,
                           const std::vector<std::string>& keys) {
    for (const auto& k : keys)
      if (line.find("\"" + k + "\"") == std::string::npos) return false;
    return true;
  };
  for (const auto& line : lines) {
    EXPECT_TRUE(JsonChecker::valid(line)) << line;
    EXPECT_NE(line.find("\"schema\":\"mdcp-run-report/1\""),
              std::string::npos)
        << line;
  }
  EXPECT_TRUE(has_keys(lines[0], {"type", "command", "compiler", "build_type",
                                  "order", "shape", "nnz", "fingerprint",
                                  "kernel_threads", "report_version", "host"}))
      << lines[0];
  EXPECT_NE(lines[0].find("\"type\":\"header\""), std::string::npos);
  for (int it = 1; it <= 3; ++it) {
    EXPECT_TRUE(has_keys(
        lines[static_cast<std::size_t>(it)],
        {"iter", "fit", "fit_delta", "mttkrp_seconds", "dense_seconds",
         "fit_seconds", "mttkrp_mode_seconds", "memo_hits", "memo_misses",
         "kernel"}))
        << lines[static_cast<std::size_t>(it)];
    EXPECT_NE(lines[static_cast<std::size_t>(it)].find("\"type\":\"iteration\""),
              std::string::npos);
    EXPECT_NE(lines[static_cast<std::size_t>(it)].find(
                  "\"iter\":" + std::to_string(it)),
              std::string::npos);
  }
  EXPECT_TRUE(has_keys(lines[4],
                       {"engine", "rank", "plan_source", "iterations",
                        "converged", "final_fit", "total_seconds",
                        "mttkrp_seconds", "mttkrp_mode_quantiles",
                        "engine_peak_memory_bytes", "memo_hits_total",
                        "memo_misses_total", "workspace_thread_peak_bytes"}))
      << lines[4];
  // Quantile objects carry the p50/p95/p99 trio per mode.
  EXPECT_NE(lines[4].find("\"p99\""), std::string::npos) << lines[4];
  // A fixed engine is not model-driven.
  EXPECT_NE(lines[4].find("\"plan_source\":\"fixed\""), std::string::npos)
      << lines[4];
  EXPECT_NE(lines[4].find("\"type\":\"summary\""), std::string::npos);
}

}  // namespace
}  // namespace mdcp
