// Parameterized property sweeps across module boundaries: exhaustive CSF
// mode orders, KMV accuracy vs sketch size, SPD solves across dimensions,
// and MTTKRP linearity/scaling identities.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "test_helpers.hpp"

namespace mdcp {
namespace {

using mdcp::testing::random_factors;

// --- all 24 CSF mode orders of a 4-mode tensor -----------------------------

class AllCsfOrders : public ::testing::TestWithParam<int> {};

std::vector<mode_t> nth_permutation(mode_t order, int n) {
  std::vector<mode_t> p(order);
  std::iota(p.begin(), p.end(), mode_t{0});
  for (int i = 0; i < n; ++i) std::next_permutation(p.begin(), p.end());
  return p;
}

TEST_P(AllCsfOrders, StructureAndRootKernel) {
  const auto t = generate_zipf(shape_t{12, 14, 16, 18}, 400, 1.0, 2100);
  const auto order = nth_permutation(4, GetParam());
  const CsfTensor csf(t, order);

  // Fiber counts are monotone with depth and end at nnz.
  for (mode_t l = 1; l < 4; ++l)
    EXPECT_LE(csf.num_fibers(l - 1), csf.num_fibers(l));
  EXPECT_EQ(csf.num_fibers(3), t.nnz());

  // fptr arrays are monotone and consistent with the next level.
  for (mode_t l = 0; l < 3; ++l) {
    const auto ptr = csf.fptr(l);
    ASSERT_EQ(ptr.size(), csf.num_fibers(l) + 1);
    EXPECT_EQ(ptr.front(), 0u);
    EXPECT_EQ(ptr.back(), csf.num_fibers(l + 1));
    for (std::size_t i = 1; i < ptr.size(); ++i)
      EXPECT_LT(ptr[i - 1], ptr[i]);  // every fiber has >= 1 child
  }

  // Root-mode MTTKRP under this ordering is exact.
  const auto factors = random_factors(t, 3, 2200u + GetParam());
  Matrix got, want;
  csf_mttkrp_root(csf, factors, got);
  mttkrp_reference(t, factors, order[0], want);
  EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-10);

  // And the single-CSF engine is exact for every mode under this ordering.
  CsfOneMttkrpEngine one(t, order);
  for (mode_t m = 0; m < 4; ++m) {
    one.compute(m, factors, got);
    mttkrp_reference(t, factors, m, want);
    EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-10) << "mode " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Permutations, AllCsfOrders, ::testing::Range(0, 24));

// --- KMV accuracy scales as ~1/sqrt(k) -------------------------------------

class KmvAccuracy : public ::testing::TestWithParam<unsigned> {};

TEST_P(KmvAccuracy, WithinTheoreticalBand) {
  const unsigned k = GetParam();
  const auto t = generate_uniform(shape_t{400, 400, 400}, 50000, 2300);
  const auto exact =
      static_cast<double>(exact_distinct_projections(t, 0b011));
  const auto est =
      static_cast<double>(kmv_distinct_projections(t, 0b011, k));
  // KMV standard error is ~1/sqrt(k-2); allow 5 sigma.
  const double band = 5.0 / std::sqrt(static_cast<double>(k));
  EXPECT_NEAR(est / exact, 1.0, band) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(SketchSizes, KmvAccuracy,
                         ::testing::Values(64u, 256u, 1024u, 4096u));

// --- SPD solves across sizes ------------------------------------------------

class CholeskySizes : public ::testing::TestWithParam<index_t> {};

TEST_P(CholeskySizes, SolveResidualTiny) {
  const index_t n = GetParam();
  Rng rng(2400u + n);
  const Matrix b = Matrix::random_normal(n + 5, n, rng);
  Matrix h = gram(b);
  for (index_t i = 0; i < n; ++i) h(i, i) += 1;
  const Matrix m = Matrix::random_normal(7, n, rng);
  const Matrix x = solve_normal_equations(h, m);
  EXPECT_LT(Matrix::max_abs_diff(multiply(x, h), m), 1e-7) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizes,
                         ::testing::Values(index_t{1}, index_t{2}, index_t{8},
                                           index_t{32}, index_t{64}));

// --- algebraic identities of MTTKRP ----------------------------------------

TEST(MttkrpIdentities, LinearInTensorValues) {
  // MTTKRP(aX + bY) == a·MTTKRP(X) + b·MTTKRP(Y) for tensors on the same
  // sparsity pattern.
  const auto x = generate_uniform(shape_t{10, 12, 14}, 300, 2500);
  CooTensor y = x;
  Rng rng(2501);
  for (nnz_t i = 0; i < y.nnz(); ++i) y.value(i) = rng.next_real();
  CooTensor combo = x;
  for (nnz_t i = 0; i < combo.nnz(); ++i)
    combo.value(i) = 2 * x.value(i) - 3 * y.value(i);

  const auto factors = random_factors(x, 4, 2502);
  Matrix mx, my, mc;
  mttkrp_reference(x, factors, 1, mx);
  mttkrp_reference(y, factors, 1, my);
  mttkrp_reference(combo, factors, 1, mc);
  for (index_t i = 0; i < mc.rows(); ++i)
    for (index_t r = 0; r < mc.cols(); ++r)
      EXPECT_NEAR(mc(i, r), 2 * mx(i, r) - 3 * my(i, r), 1e-10);
}

TEST(MttkrpIdentities, ScalingAFactorScalesOutput) {
  // Scaling factor U^(j) (j ≠ output mode) by c scales the MTTKRP by c.
  const auto t = generate_uniform(shape_t{8, 9, 10, 11}, 200, 2600);
  auto factors = random_factors(t, 3, 2601);
  const auto engine = make_engine(t, EngineKind::kDTreeBdt, 3);
  Matrix base, scaled;
  engine->compute(0, factors, base);
  for (std::size_t e = 0; e < factors[2].size(); ++e)
    factors[2].data()[e] *= 4.0;
  engine->factor_updated(2);
  engine->compute(0, factors, scaled);
  for (index_t i = 0; i < base.rows(); ++i)
    for (index_t r = 0; r < base.cols(); ++r)
      EXPECT_NEAR(scaled(i, r), 4.0 * base(i, r), 1e-9);
}

TEST(MttkrpIdentities, SumOverOutputEqualsFullContraction) {
  // Σᵢ M⁽⁰⁾(i, r) = X ×₀ 1 ×₁ u_r ... — check against a TTV chain with an
  // all-ones vector in the output mode.
  const auto t = generate_uniform(shape_t{7, 8, 9}, 150, 2700);
  const auto factors = random_factors(t, 2, 2701);
  Matrix m;
  mttkrp_reference(t, factors, 0, m);
  for (index_t r = 0; r < 2; ++r) {
    real_t column_sum = 0;
    for (index_t i = 0; i < m.rows(); ++i) column_sum += m(i, r);
    // Direct full contraction.
    real_t expect = 0;
    for (nnz_t i = 0; i < t.nnz(); ++i) {
      expect += t.value(i) * factors[1](t.index(1, i), r) *
                factors[2](t.index(2, i), r);
    }
    EXPECT_NEAR(column_sum, expect, 1e-10);
  }
}

}  // namespace
}  // namespace mdcp
