// Tests for the kernel execution runtime: the engine registry, the
// prepare()/compute() lifecycle, KernelStats recording, workspace injection,
// and the cross-engine memoization-invalidation contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "mttkrp/microkernel.hpp"
#include "mttkrp/registry.hpp"
#include "tensor/generator.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/workspace.hpp"

namespace mdcp {
namespace {

using mdcp::testing::random_factors;

TEST(Registry, BuiltinNamesInCanonicalOrder) {
  const std::vector<std::string> expect{
      "coo",        "bcoo",       "alto",       "ttv-chain", "csf",
      "csf1",       "dtree-flat", "dtree-3lvl", "dtree-bdt", "auto",
      "auto+probe"};
  EXPECT_EQ(EngineRegistry::instance().names(), expect);
  for (const auto& name : expect)
    EXPECT_TRUE(EngineRegistry::instance().contains(name)) << name;
  EXPECT_FALSE(EngineRegistry::instance().contains("no-such-engine"));
}

TEST(Registry, UnknownNameThrowsListingKnownEngines) {
  try {
    (void)make_engine("splattzilla");
    FAIL() << "expected throw";
  } catch (const error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("splattzilla"), std::string::npos);
    EXPECT_NE(what.find("dtree-bdt"), std::string::npos);
  }
}

TEST(Registry, DuplicateRegistrationThrows) {
  EXPECT_THROW(EngineRegistry::instance().register_engine(
                   "coo", "dup", [](KernelContext ctx) {
                     return make_engine("csf", ctx);
                   }),
               error);
}

TEST(Registry, CreatedEnginesReportTheirName) {
  for (const auto& name : EngineRegistry::instance().names()) {
    const auto engine = make_engine(name);
    ASSERT_NE(engine, nullptr) << name;
    EXPECT_FALSE(engine->prepared()) << name;
    if (name != "auto" && name != "auto+probe")  // auto names its strategy
      EXPECT_EQ(engine->name(), name);
  }
}

TEST(Runtime, ComputeBeforePrepareThrows) {
  const auto t = testing::small_tensor(3, 10, 60, 301);
  const auto factors = random_factors(t, 4, 302);
  for (const auto& name : EngineRegistry::instance().names()) {
    const auto engine = make_engine(name);
    Matrix out;
    EXPECT_THROW(engine->compute(0, factors, out), error) << name;
  }
}

TEST(Runtime, EveryRegistryEngineMatchesReference) {
  const auto t = generate_zipf(shape_t{12, 18, 24, 30}, 900, 1.1, 303);
  const auto factors = random_factors(t, 5, 304);
  for (const auto& name : EngineRegistry::instance().names()) {
    const auto engine = make_engine(name, t, 5);
    EXPECT_TRUE(engine->prepared()) << name;
    for (mode_t m = 0; m < t.order(); ++m) {
      Matrix got, want;
      engine->compute(m, factors, got);
      mttkrp_reference(t, factors, m, want);
      EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-9)
          << name << " mode " << m;
    }
  }
}

TEST(Runtime, RePrepareRetargetsEngine) {
  const auto t1 = testing::small_tensor(3, 12, 100, 305);
  const auto t2 = generate_zipf(shape_t{8, 14, 20, 26}, 400, 1.0, 306);
  for (const auto& name : EngineRegistry::instance().names()) {
    const auto engine = make_engine(name, t1, 4);
    const auto f1 = random_factors(t1, 4, 307);
    Matrix out;
    engine->compute(0, f1, out);
    // Retarget at a tensor of a different order and recompute.
    engine->prepare(t2, 4);
    engine->invalidate_all();
    const auto f2 = random_factors(t2, 4, 308);
    Matrix got, want;
    engine->compute(1, f2, got);
    mttkrp_reference(t2, f2, 1, want);
    EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-9) << name;
  }
}

TEST(Runtime, StatsRecordPhasesAndFlops) {
  const auto t = testing::small_tensor(4, 15, 500, 309);
  const auto factors = random_factors(t, 6, 310);
  KernelStats sink;
  Workspace ws;
  const auto engine =
      make_engine("csf", t, 6, KernelContext{&ws, 0, &sink});
  EXPECT_EQ(engine->stats().prepare_calls, 1u);
  EXPECT_EQ(engine->stats().compute_calls, 0u);
  Matrix out;
  engine->compute(0, factors, out);
  engine->compute(1, factors, out);
  const KernelStats& s = engine->stats();
  EXPECT_EQ(s.prepare_calls, 1u);
  EXPECT_EQ(s.compute_calls, 2u);
  EXPECT_GE(s.symbolic_seconds, 0.0);
  EXPECT_GT(s.numeric_seconds, 0.0);
  EXPECT_GT(s.flops, 0u);
  // The CSF kernel needs order×R reals per thread, so scratch was used.
  EXPECT_GT(s.peak_scratch_bytes, 0u);
  EXPECT_GT(ws.peak_bytes(), 0u);
  // The shared sink mirrors the engine-local counters.
  EXPECT_EQ(sink.prepare_calls, s.prepare_calls);
  EXPECT_EQ(sink.compute_calls, s.compute_calls);
  EXPECT_EQ(sink.flops, s.flops);
}

TEST(Runtime, InjectedWorkspaceIsUsedForScratch) {
  const auto t = testing::small_tensor(3, 20, 400, 311);
  const auto factors = random_factors(t, 8, 312);
  Workspace ws;
  EXPECT_EQ(ws.allocated_bytes(), 0u);
  const auto engine = make_engine("coo", t, 8, KernelContext{&ws, 0, nullptr});
  // The rank hint lets prepare() pre-reserve the per-thread scratch...
  EXPECT_GT(ws.allocated_bytes(), 0u);
  const std::size_t after_prepare = ws.allocated_bytes();
  Matrix out;
  engine->compute(0, factors, out);
  // ...so compute() performs no further workspace growth.
  EXPECT_EQ(ws.allocated_bytes(), after_prepare);
}

TEST(Runtime, MidSweepFactorUpdateInvalidatesMemoizedState) {
  // The cross-engine memoization contract: after updating one factor and
  // calling factor_updated(m), every engine must produce the same result as
  // the stateless reference — stale memoized intermediates that still embed
  // the old factor would break this.
  const auto t = generate_zipf(shape_t{10, 14, 18, 22, 26}, 800, 1.1, 313);
  auto factors = random_factors(t, 5, 314);

  for (const auto& name : EngineRegistry::instance().names()) {
    const auto engine = make_engine(name, t, 5);
    Matrix out;
    // Warm the memoization with a partial sweep.
    engine->compute(0, factors, out);
    engine->compute(1, factors, out);
    // Mid-sequence single-factor update, as CP-ALS does after each solve.
    Rng rng(315);
    factors[1] = Matrix::random_uniform(t.dim(1), 5, rng);
    engine->factor_updated(1);
    for (mode_t m = 0; m < t.order(); ++m) {
      if (m == 1) continue;  // MTTKRP in mode 1 does not read factor 1
      Matrix got, want;
      engine->compute(m, factors, got);
      mttkrp_reference(t, factors, m, want);
      EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-9)
          << name << " stale after factor_updated(1), mode " << m;
    }
    // Restore shared factors for the next engine.
    factors = random_factors(t, 5, 314);
  }
}

TEST(Runtime, InvalidateAllReleasesValueMatrices) {
  // The dtree engines hold materialized node value matrices after a
  // compute(); invalidate_all() must actually free them (memory_bytes drops
  // back to the symbolic-only footprint), not merely mark them stale.
  const auto t = generate_zipf(shape_t{15, 20, 25, 30}, 1200, 1.1, 316);
  const auto factors = random_factors(t, 8, 317);
  for (const std::string name : {"dtree-flat", "dtree-3lvl", "dtree-bdt"}) {
    const auto engine = make_engine(name, t, 8);
    const std::size_t symbolic_only = engine->memory_bytes();
    Matrix out;
    engine->compute(0, factors, out);
    const std::size_t with_values = engine->memory_bytes();
    EXPECT_GT(with_values, symbolic_only) << name;
    engine->invalidate_all();
    EXPECT_EQ(engine->memory_bytes(), symbolic_only) << name;
    EXPECT_GE(engine->peak_memory_bytes(), with_values) << name;
  }
}

TEST(Runtime, WorkspaceSlabsHonorMicrokernelAlignment) {
  // The microkernel's assume_aligned contract: every thread's slab base must
  // be 64-byte aligned for any slab size and any thread count, including
  // after growth reallocations.
  const auto aligned = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) % mk::kAlignment == 0;
  };
  static_assert(Workspace::kAlignment % mk::kAlignment == 0,
                "workspace slabs must satisfy the microkernel contract");
  Workspace ws;
  for (const std::size_t reals : {1u, 3u, 17u, 100u, 4099u}) {
    ws.reserve(4, reals * sizeof(real_t));
    struct ThreadRestore {
      ~ThreadRestore() { set_num_threads(1); }
    } restore;
    set_num_threads(4);
#pragma omp parallel
    {
      const auto slab = ws.thread_scratch<real_t>(reals);
#pragma omp critical
      {
        EXPECT_TRUE(aligned(slab.data())) << "size " << reals;
        EXPECT_GE(slab.size(), reals);
      }
    }
  }
}

TEST(Runtime, MatrixStorageHonorsMicrokernelAlignment) {
  // la::Matrix base storage is 64-byte aligned (rows additionally so when
  // cols is a multiple of the vector width — the padded-rank layouts the
  // engines carve scratch with).
  static_assert(Matrix::kAlignment % mk::kAlignment == 0,
                "matrix storage must satisfy the microkernel contract");
  const auto aligned = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) % mk::kAlignment == 0;
  };
  Rng rng(404);
  for (const index_t cols : {1u, 7u, 8u, 17u, 32u}) {
    Matrix m = Matrix::random_uniform(13, cols, rng);
    EXPECT_TRUE(aligned(m.data())) << cols;
    if (cols % mk::kVectorWidth == 0) {
      for (index_t i = 0; i < m.rows(); ++i)
        ASSERT_TRUE(aligned(m.row(i).data())) << cols << " row " << i;
    }
    // Growth through resize must preserve the base alignment.
    m.resize(257, cols, 0);
    EXPECT_TRUE(aligned(m.data())) << cols << " after resize";
  }
}

TEST(Runtime, EnginesRecordMicrokernelTile) {
  // Every rank-blocked engine reports the tile its last compute dispatched;
  // ttv-chain truthfully reports 0 (its parallelism is column-wise, there is
  // no rank-blocked inner loop). The auto engine mirrors its inner choice.
  const auto t = testing::small_tensor(3, 10, 80, 401);
  for (const auto rank : {index_t{7}, index_t{16}, index_t{33}}) {
    const auto factors = random_factors(t, rank, 402 + rank);
    for (const auto& name : EngineRegistry::instance().names()) {
      if (name == "auto+probe") continue;  // probing benchmarks itself
      const auto engine = make_engine(name, t, rank);
      Matrix out;
      engine->compute(0, factors, out);
      const std::uint32_t expect =
          name == "ttv-chain" ? 0u : mk::select_tile(rank);
      EXPECT_EQ(engine->stats().last_tile, expect)
          << name << " rank " << rank;
    }
  }
}

TEST(Runtime, AutoEngineRequiresRankHint) {
  const auto t = testing::small_tensor(3, 10, 80, 318);
  const auto engine = make_engine("auto");
  EXPECT_THROW(engine->prepare(t), error);
  EXPECT_THROW(engine->prepare(t, 0), error);
  engine->prepare(t, 4);
  EXPECT_TRUE(engine->prepared());
  // Once prepared, the name reports the chosen strategy.
  EXPECT_EQ(engine->name().rfind("auto:", 0), 0u) << engine->name();
}

}  // namespace
}  // namespace mdcp
