// Property tests for the tile partitioner (sched/partition.hpp) and the
// schedule heuristic (sched/schedule.hpp).
//
// Partitioner invariants, for every builder and random weight profile:
//   * cover     — the tiles' group ranges are disjoint, contiguous, and
//                 together cover every weight unit / item exactly once;
//   * canonical — bounds are non-decreasing and offsets stay inside their
//                 group (or the terminal (groups, 0));
//   * balance   — the heaviest tile is bounded by target + the heaviest
//                 unit the builder is not allowed to split.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "sched/partition.hpp"
#include "sched/schedule.hpp"
#include "util/rng.hpp"

namespace mdcp::sched {
namespace {

std::vector<nnz_t> prefix_from_weights(const std::vector<nnz_t>& w) {
  std::vector<nnz_t> ptr(w.size() + 1, 0);
  std::partial_sum(w.begin(), w.end(), ptr.begin() + 1);
  return ptr;
}

// Walks every tile and asserts the (group, begin, end) ranges are contiguous
// and cover [0, size(g)) of every group exactly once. Returns the weight of
// each tile (end - begin summed), which for weight-space plans is the tile's
// load directly.
std::vector<nnz_t> check_cover(const TilePlan& plan,
                               const std::vector<nnz_t>& sizes) {
  EXPECT_GE(plan.tiles(), 1);
  std::vector<nnz_t> next(sizes.size(), 0);
  std::vector<nnz_t> tile_weight(static_cast<std::size_t>(plan.tiles()), 0);
  nnz_t last_group = 0;
  for (int t = 0; t < plan.tiles(); ++t) {
    EXPECT_LE(plan.bounds[t].group, plan.bounds[t + 1].group);
    for_each_group_range(
        plan, t, [&](nnz_t g) { return sizes[g]; },
        [&](nnz_t g, nnz_t b, nnz_t e) {
          ASSERT_LT(g, sizes.size());
          EXPECT_GE(g, last_group);
          last_group = g;
          EXPECT_EQ(b, next[g]) << "tile " << t << " group " << g
                                << ": gap or overlap";
          EXPECT_LT(b, e);
          EXPECT_LE(e, sizes[g]);
          next[g] = e;
          tile_weight[t] += e - b;
        });
  }
  for (std::size_t g = 0; g < sizes.size(); ++g)
    EXPECT_EQ(next[g], sizes[g]) << "group " << g << " not fully covered";
  return tile_weight;
}

std::vector<nnz_t> random_weights(nnz_t groups, nnz_t max_w, Rng& rng,
                                  double empty_fraction = 0.2) {
  std::vector<nnz_t> w(groups);
  for (auto& x : w)
    x = rng.next_real() < empty_fraction ? 0 : 1 + rng.next_below(max_w);
  return w;
}

TEST(Partition, GroupsCoverAndBalance) {
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const nnz_t groups = 1 + rng.next_below(200);
    const auto w = random_weights(groups, 50, rng);
    const auto ptr = prefix_from_weights(w);
    const nnz_t total = ptr.back();
    const int max_tiles = 1 + static_cast<int>(rng.next_below(16));

    const TilePlan plan = tile_groups(ptr, max_tiles);
    EXPECT_FALSE(plan.splits_groups);
    EXPECT_LE(plan.tiles(), max_tiles);
    const auto loads = check_cover(plan, w);

    // Whole groups only: every bound sits at a group start.
    for (const TileBound& b : plan.bounds) EXPECT_EQ(b.offset, 0u);
    if (total > 0) {
      const nnz_t target =
          (total + static_cast<nnz_t>(max_tiles) - 1) / max_tiles;
      const nnz_t max_group = *std::max_element(w.begin(), w.end());
      for (nnz_t load : loads) EXPECT_LE(load, target + max_group);
    }
  }
}

TEST(Partition, GroupsSplitCoverAndExactBalance) {
  Rng rng(102);
  for (int trial = 0; trial < 50; ++trial) {
    const nnz_t groups = 1 + rng.next_below(200);
    const auto w = random_weights(groups, 1000, rng);
    const auto ptr = prefix_from_weights(w);
    const nnz_t total = ptr.back();
    const int tiles = 1 + static_cast<int>(rng.next_below(16));

    const TilePlan plan = tile_groups_split(ptr, tiles);
    EXPECT_TRUE(plan.splits_groups);
    EXPECT_EQ(plan.tiles(), tiles);
    const auto loads = check_cover(plan, w);

    // Cuts land anywhere in weight space, so balance is exact: tile loads
    // differ by at most one weight unit.
    const auto [lo, hi] = std::minmax_element(loads.begin(), loads.end());
    EXPECT_LE(*hi - *lo, 1u) << "total=" << total << " tiles=" << tiles;
  }
}

TEST(Partition, ItemsSplitCoverAndBalance) {
  Rng rng(103);
  for (int trial = 0; trial < 50; ++trial) {
    const nnz_t groups = 1 + rng.next_below(40);
    // Random group → item-count map, then random per-item weights.
    std::vector<nnz_t> items_per_group(groups);
    for (auto& n : items_per_group) n = rng.next_below(8);
    const auto group_ptr = prefix_from_weights(items_per_group);
    const nnz_t items = group_ptr.back();
    std::vector<nnz_t> item_w(items);
    for (auto& x : item_w) x = 1 + rng.next_below(100);
    const int tiles = 1 + static_cast<int>(rng.next_below(8));

    const TilePlan plan = tile_items_split(item_w, group_ptr, tiles);
    EXPECT_TRUE(plan.splits_groups);
    EXPECT_LE(plan.tiles(), tiles);
    // Offsets are item indices: cover in item space, weigh tiles manually.
    check_cover(plan, items_per_group);

    const nnz_t total =
        std::accumulate(item_w.begin(), item_w.end(), nnz_t{0});
    if (total > 0) {
      const nnz_t target = (total + static_cast<nnz_t>(tiles) - 1) / tiles;
      const nnz_t max_item = *std::max_element(item_w.begin(), item_w.end());
      std::vector<nnz_t> loads(static_cast<std::size_t>(plan.tiles()), 0);
      for (int t = 0; t < plan.tiles(); ++t)
        for_each_group_range(
            plan, t, [&](nnz_t g) { return items_per_group[g]; },
            [&](nnz_t g, nnz_t b, nnz_t e) {
              for (nnz_t i = b; i < e; ++i)
                loads[t] += item_w[group_ptr[g] + i];
            });
      for (nnz_t load : loads) EXPECT_LE(load, target + max_item);
    }
  }
}

TEST(Partition, UniformCoversAndBalances) {
  for (nnz_t n : {nnz_t{0}, nnz_t{1}, nnz_t{7}, nnz_t{1000}}) {
    for (int tiles : {1, 3, 8, 17}) {
      const TilePlan plan = tile_uniform(n, tiles);
      const auto loads = check_cover(plan, {n});
      nnz_t covered = 0;
      for (nnz_t load : loads) covered += load;
      EXPECT_EQ(covered, n);
      if (n > 0) {
        const auto [lo, hi] = std::minmax_element(loads.begin(), loads.end());
        EXPECT_LE(*hi - *lo, 1u);
      }
    }
  }
}

TEST(Partition, DegenerateCases) {
  // No groups at all: a single empty tile, iteration visits nothing.
  const std::vector<nnz_t> empty_ptr{0};
  for (const TilePlan& plan :
       {tile_groups(empty_ptr, 4), tile_groups_split(empty_ptr, 4)}) {
    EXPECT_GE(plan.tiles(), 1);
    check_cover(plan, {});
  }

  // All-zero weights: everything collapses into tiles that visit nothing.
  const std::vector<nnz_t> zeros{0, 0, 0, 0};
  check_cover(tile_groups(prefix_from_weights(zeros), 3), zeros);

  // One giant group: owner-computes cannot split it (one tile does all the
  // work); the splitting builder spreads it evenly.
  const std::vector<nnz_t> giant{100000};
  const auto gptr = prefix_from_weights(giant);
  const auto owner_loads = check_cover(tile_groups(gptr, 8), giant);
  EXPECT_EQ(owner_loads.size(), 1u);
  const auto split_loads = check_cover(tile_groups_split(gptr, 8), giant);
  EXPECT_EQ(split_loads.size(), 8u);
  for (nnz_t load : split_loads) EXPECT_EQ(load, 12500u);

  // More tiles than weight: plans must stay canonical and covering.
  const std::vector<nnz_t> tiny{1, 1};
  check_cover(tile_groups(prefix_from_weights(tiny), 16), tiny);
  check_cover(tile_groups_split(prefix_from_weights(tiny), 16), tiny);

  // Nonsensical tile counts clamp to 1.
  EXPECT_GE(tile_groups(gptr, 0).tiles(), 1);
  EXPECT_GE(tile_groups_split(gptr, -3).tiles(), 1);
}

TEST(Schedule, HeuristicCascade) {
  // A shape that passes every privatization gate at 4 threads.
  WorkShape skewed;
  skewed.total = 100000;
  skewed.max_unit = 60000;  // skew = 2.4
  skewed.units = 5000;
  skewed.out_rows = 5000;
  skewed.rank = 16;

  const Decision d = choose_schedule(skewed, 4);
  EXPECT_EQ(d.schedule, Schedule::kPrivatized);
  EXPECT_STREQ(d.reason, "skewed");
  EXPECT_EQ(d.tiles, 4);
  EXPECT_EQ(d.partial_bytes, privatized_partial_bytes(4, 5000, 16));
  EXPECT_GT(d.skew, 1.0);

  // Single thread: never privatize.
  EXPECT_EQ(choose_schedule(skewed, 1).schedule, Schedule::kOwner);
  EXPECT_STREQ(choose_schedule(skewed, 1).reason, "single-thread");

  // Below the work gate.
  WorkShape small = skewed;
  small.total = kMinPrivatizeWork - 1;
  small.max_unit = small.total;
  EXPECT_STREQ(choose_schedule(small, 4).reason, "small-work");

  // Balanced work: heaviest unit fits one thread's fair share.
  WorkShape balanced = skewed;
  balanced.max_unit = balanced.total / 8;
  EXPECT_STREQ(choose_schedule(balanced, 4).reason, "balanced");

  // Partial slabs over the cap.
  WorkShape wide = skewed;
  wide.out_rows = 1 << 21;
  wide.rank = 64;  // 4 threads × 2M rows × 64 × 8B = 4 GiB > cap
  EXPECT_STREQ(choose_schedule(wide, 4).reason, "partials-too-large");

  // Combine pass would dominate the kernel.
  WorkShape thin = skewed;
  thin.out_rows = static_cast<index_t>(thin.total);  // total < threads × rows
  EXPECT_STREQ(choose_schedule(thin, 4).reason, "reduction-dominates");

  // No shared writes beats even a forced privatized request.
  WorkShape scatter = skewed;
  scatter.shared_writes = false;
  const Decision ds =
      choose_schedule(scatter, 4, ScheduleMode::kPrivatized);
  EXPECT_EQ(ds.schedule, Schedule::kOwner);
  EXPECT_STREQ(ds.reason, "no-shared-writes");

  // Forced modes override the cascade both ways.
  EXPECT_STREQ(choose_schedule(balanced, 4, ScheduleMode::kPrivatized).reason,
               "forced-privatized");
  EXPECT_STREQ(choose_schedule(skewed, 4, ScheduleMode::kOwner).reason,
               "forced-owner");
}

TEST(Schedule, OwnerTileCount) {
  EXPECT_EQ(owner_tile_count(1000, 4), 4 * kOwnerTilesPerThread);
  EXPECT_EQ(owner_tile_count(5, 4), 5);   // capped by groups
  EXPECT_EQ(owner_tile_count(0, 4), 1);   // never zero tiles
  EXPECT_EQ(owner_tile_count(1000, 1), kOwnerTilesPerThread);
}

}  // namespace
}  // namespace mdcp::sched
