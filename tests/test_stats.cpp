#include <gtest/gtest.h>

#include <array>

#include "tensor/coo_tensor.hpp"
#include "tensor/generator.hpp"
#include "tensor/stats.hpp"

namespace mdcp {
namespace {

CooTensor make_example() {
  // The 4-nonzero 3x4x2 tensor used throughout the unit tests.
  CooTensor t(shape_t{3, 4, 2});
  t.push_back(std::array<index_t, 3>{0, 1, 0}, 1.0);
  t.push_back(std::array<index_t, 3>{2, 3, 1}, 2.0);
  t.push_back(std::array<index_t, 3>{1, 0, 0}, -3.0);
  t.push_back(std::array<index_t, 3>{2, 1, 1}, 0.5);
  return t;
}

TEST(Stats, BasicFields) {
  const auto s = compute_stats(make_example());
  EXPECT_EQ(s.nnz, 4u);
  EXPECT_DOUBLE_EQ(s.density, 4.0 / 24.0);
  EXPECT_EQ(s.distinct_per_mode, (std::vector<index_t>{3, 3, 2}));
  EXPECT_DOUBLE_EQ(s.avg_slice_nnz[2], 2.0);
}

TEST(Stats, ToStringMentionsKeyNumbers) {
  const auto s = compute_stats(make_example()).to_string();
  EXPECT_NE(s.find("nnz=4"), std::string::npos);
  EXPECT_NE(s.find("3x4x2"), std::string::npos);
}

TEST(Stats, DistinctProjectionSingleMode) {
  const auto t = make_example();
  EXPECT_EQ(distinct_projection_count(t, 0b001), 3u);
  EXPECT_EQ(distinct_projection_count(t, 0b010), 3u);
  EXPECT_EQ(distinct_projection_count(t, 0b100), 2u);
}

TEST(Stats, DistinctProjectionPairs) {
  const auto t = make_example();
  // Tuples: (0,1,0) (2,3,1) (1,0,0) (2,1,1)
  EXPECT_EQ(distinct_projection_count(t, 0b011), 4u);  // (0,1)(2,3)(1,0)(2,1)
  EXPECT_EQ(distinct_projection_count(t, 0b101), 3u);  // (2,3,1),(2,1,1) share (2,.,1)
  EXPECT_EQ(distinct_projection_count(t, 0b110), 4u);
  EXPECT_EQ(distinct_projection_count(t, 0b111), 4u);
}

TEST(Stats, DistinctProjectionCollapses) {
  CooTensor t(shape_t{2, 2, 2});
  t.push_back(std::array<index_t, 3>{0, 0, 0}, 1.0);
  t.push_back(std::array<index_t, 3>{0, 0, 1}, 1.0);
  t.push_back(std::array<index_t, 3>{0, 1, 0}, 1.0);
  EXPECT_EQ(distinct_projection_count(t, 0b001), 1u);
  EXPECT_EQ(distinct_projection_count(t, 0b011), 2u);
  EXPECT_EQ(distinct_projection_count(t, 0b111), 3u);
}

TEST(Stats, DistinctProjectionEmptySet) {
  const auto t = make_example();
  EXPECT_EQ(distinct_projection_count(t, 0), 1u);
}

TEST(Stats, PrefixFiberCountsHandExample) {
  CooTensor t(shape_t{2, 2, 2});
  t.push_back(std::array<index_t, 3>{0, 0, 0}, 1.0);
  t.push_back(std::array<index_t, 3>{0, 0, 1}, 1.0);
  t.push_back(std::array<index_t, 3>{0, 1, 0}, 1.0);
  t.push_back(std::array<index_t, 3>{1, 1, 1}, 1.0);
  const std::array<mode_t, 3> order{0, 1, 2};
  const auto fibers = prefix_fiber_counts(t, order);
  EXPECT_EQ(fibers, (std::vector<nnz_t>{2, 3, 4}));
}

TEST(Stats, PrefixFiberCountsLastLevelIsNnz) {
  const auto t = generate_uniform(shape_t{40, 40, 40, 40}, 2000, 9);
  std::array<mode_t, 4> order{2, 0, 3, 1};
  const auto fibers = prefix_fiber_counts(t, order);
  EXPECT_EQ(fibers.back(), t.nnz());
  // Fiber counts are non-decreasing with depth.
  for (std::size_t l = 1; l < fibers.size(); ++l)
    EXPECT_LE(fibers[l - 1], fibers[l]);
}

TEST(Stats, PrefixFiberMatchesDistinctProjections) {
  const auto t = generate_zipf(shape_t{60, 60, 60}, 3000, 1.2, 13);
  const std::array<mode_t, 3> order{1, 2, 0};
  const auto fibers = prefix_fiber_counts(t, order);
  EXPECT_EQ(fibers[0], distinct_projection_count(t, 0b010));
  EXPECT_EQ(fibers[1], distinct_projection_count(t, 0b110));
  EXPECT_EQ(fibers[2], distinct_projection_count(t, 0b111));
}

}  // namespace
}  // namespace mdcp
