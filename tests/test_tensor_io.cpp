#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "tensor/coo_tensor.hpp"
#include "tensor/tensor_io.hpp"
#include "util/error.hpp"

namespace mdcp {
namespace {

TEST(TensorIo, ReadsBasicTns) {
  std::istringstream in("1 2 3 4.5\n2 1 1 -1\n");
  const CooTensor t = read_tns(in);
  EXPECT_EQ(t.order(), 3);
  EXPECT_EQ(t.nnz(), 2u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 2u);
  EXPECT_EQ(t.dim(2), 3u);
  EXPECT_EQ(t.index(0, 0), 0u);
  EXPECT_EQ(t.index(2, 0), 2u);
  EXPECT_DOUBLE_EQ(t.value(0), 4.5);
  EXPECT_DOUBLE_EQ(t.value(1), -1.0);
}

TEST(TensorIo, SkipsCommentsAndBlankLines) {
  std::istringstream in("# header\n\n  # indented comment\n1 1 2\n");
  const CooTensor t = read_tns(in);
  EXPECT_EQ(t.nnz(), 1u);
  EXPECT_DOUBLE_EQ(t.value(0), 2.0);
}

TEST(TensorIo, ShapeHintValidated) {
  std::istringstream in("1 1 1\n");
  const CooTensor t = read_tns(in, shape_t{5, 7});
  EXPECT_EQ(t.dim(0), 5u);
  EXPECT_EQ(t.dim(1), 7u);
}

TEST(TensorIo, ShapeHintArityMismatchThrows) {
  std::istringstream in("1 1 1\n");
  EXPECT_THROW(read_tns(in, shape_t{5, 7, 2}), error);
}

TEST(TensorIo, InconsistentArityThrows) {
  std::istringstream in("1 1 1\n1 1 1 1\n");
  EXPECT_THROW(read_tns(in), error);
}

TEST(TensorIo, EmptyStreamThrows) {
  std::istringstream in("# nothing here\n");
  EXPECT_THROW(read_tns(in), error);
}

TEST(TensorIo, ZeroIndexThrows) {
  std::istringstream in("0 1 1\n");
  EXPECT_THROW(read_tns(in), error);
}

TEST(TensorIo, RoundTripPreservesTensor) {
  CooTensor t(shape_t{3, 4, 2});
  t.push_back(std::array<index_t, 3>{0, 3, 1}, 1.25);
  t.push_back(std::array<index_t, 3>{2, 0, 0}, -7.5);
  std::ostringstream out;
  write_tns(out, t);
  std::istringstream in(out.str());
  const CooTensor back = read_tns(in, t.shape());
  EXPECT_EQ(t, back);
}

TEST(TensorIo, RoundTripHighPrecisionValues) {
  CooTensor t(shape_t{2, 2});
  t.push_back(std::array<index_t, 2>{0, 0}, 0.1234567890123456789);
  std::ostringstream out;
  write_tns(out, t);
  std::istringstream in(out.str());
  const CooTensor back = read_tns(in, t.shape());
  EXPECT_DOUBLE_EQ(back.value(0), t.value(0));
}

TEST(TensorIo, FileRoundTrip) {
  CooTensor t(shape_t{4, 4});
  t.push_back(std::array<index_t, 2>{1, 2}, 3.0);
  const std::string path = ::testing::TempDir() + "/mdcp_io_test.tns";
  write_tns_file(path, t);
  const CooTensor back = read_tns_file(path, t.shape());
  EXPECT_EQ(t, back);
}

TEST(TensorIo, MissingFileThrows) {
  EXPECT_THROW(read_tns_file("/nonexistent/path/x.tns"), error);
}

}  // namespace
}  // namespace mdcp
