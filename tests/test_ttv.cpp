#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "mttkrp/engine.hpp"
#include "tensor/generator.hpp"
#include "tensor/ttv.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace mdcp {
namespace {

using mdcp::testing::random_factors;

CooTensor hand_tensor() {
  CooTensor t(shape_t{2, 3, 2});
  t.push_back(std::array<index_t, 3>{0, 0, 0}, 1.0);
  t.push_back(std::array<index_t, 3>{0, 2, 1}, 2.0);
  t.push_back(std::array<index_t, 3>{1, 0, 0}, 3.0);
  t.push_back(std::array<index_t, 3>{1, 0, 1}, 4.0);
  return t;
}

TEST(Ttv, HandExample) {
  const auto t = hand_tensor();
  const std::vector<real_t> v{10, 20, 30};  // contract mode 1
  const auto y = ttv(t, 1, v);
  EXPECT_EQ(y.dim(1), 1u);
  // Surviving tuples: (0,·,0)=1*10, (0,·,1)=2*30, (1,·,0)=3*10, (1,·,1)=4*10.
  ASSERT_EQ(y.nnz(), 4u);
  real_t total = 0;
  for (nnz_t i = 0; i < y.nnz(); ++i) total += y.value(i);
  EXPECT_DOUBLE_EQ(total, 10 + 60 + 30 + 40);
}

TEST(Ttv, CollapsesDuplicates) {
  // Contracting mode 2 merges (1,0,0) and (1,0,1) into one tuple.
  const auto t = hand_tensor();
  const std::vector<real_t> v{1, 1};
  const auto y = ttv(t, 2, v);
  EXPECT_EQ(y.nnz(), 3u);
  // Find the (1,0,·) tuple: value must be 3+4.
  bool found = false;
  for (nnz_t i = 0; i < y.nnz(); ++i) {
    if (y.index(0, i) == 1 && y.index(1, i) == 0) {
      EXPECT_DOUBLE_EQ(y.value(i), 7.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Ttv, OrderIrrelevance) {
  // X ×₁ u ×₂ v == X ×₂ v ×₁ u (fully contracted scalar).
  const auto t = generate_uniform(shape_t{10, 12}, 60, 5);
  Rng rng(6);
  std::vector<real_t> u(10), v(12);
  for (auto& x : u) x = rng.next_real();
  for (auto& x : v) x = rng.next_real();
  const auto a = ttv(ttv(t, 0, u), 1, v);
  const auto b = ttv(ttv(t, 1, v), 0, u);
  ASSERT_EQ(a.nnz(), 1u);
  ASSERT_EQ(b.nnz(), 1u);
  EXPECT_NEAR(a.value(0), b.value(0), 1e-12);
}

TEST(Ttv, VectorLengthMismatchThrows) {
  const auto t = hand_tensor();
  const std::vector<real_t> v{1, 2};
  EXPECT_THROW(ttv(t, 1, v), error);
}

TEST(Ttm, MatchesColumnwiseTtv) {
  const auto t = generate_zipf(shape_t{15, 20, 25}, 300, 1.1, 7);
  Rng rng(8);
  const Matrix u = Matrix::random_uniform(20, 4, rng);
  const auto z = ttm(t, 1, u);
  EXPECT_EQ(z.modes, (std::vector<mode_t>{0, 2}));

  for (index_t r = 0; r < 4; ++r) {
    std::vector<real_t> col(20);
    for (index_t i = 0; i < 20; ++i) col[i] = u(i, r);
    const auto y = ttv(t, 1, col);
    // Match each TTV tuple against the semi-sparse tuple set.
    ASSERT_EQ(y.nnz(), z.tuples());
    for (nnz_t i = 0; i < y.nnz(); ++i) {
      // Both are sorted by the kept modes (0 then 2), same order.
      EXPECT_EQ(y.index(0, i), z.idx[0][i]);
      EXPECT_EQ(y.index(2, i), z.idx[1][i]);
      EXPECT_NEAR(y.value(i), semi_sparse_value(z, i, r), 1e-12);
    }
  }
}

TEST(Ttm, AgreesWithMttkrpWhenFullyContracted) {
  // Chaining TTMs over all modes but one, then summing per surviving index,
  // must equal the MTTKRP column sums. Checked through the reference kernel
  // on a small case for one column.
  const auto t = generate_uniform(shape_t{8, 9, 10}, 100, 9);
  const auto factors = random_factors(t, 1, 10);
  Matrix want;
  mttkrp_reference(t, factors, 0, want);

  std::vector<real_t> v1(9), v2(10);
  for (index_t i = 0; i < 9; ++i) v1[i] = factors[1](i, 0);
  for (index_t i = 0; i < 10; ++i) v2[i] = factors[2](i, 0);
  const auto y = ttv(ttv(t, 2, v2), 1, v1);
  Matrix got(8, 1, 0);
  for (nnz_t i = 0; i < y.nnz(); ++i) got(y.index(0, i), 0) += y.value(i);
  EXPECT_LT(Matrix::max_abs_diff(got, want), 1e-10);
}

TEST(Ttm, EmptyTensor) {
  CooTensor t(shape_t{3, 3});
  const Matrix u(3, 2);
  const auto z = ttm(t, 0, u);
  EXPECT_EQ(z.tuples(), 0u);
}

}  // namespace
}  // namespace mdcp
