#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/span_util.hpp"
#include "util/types.hpp"
#include "util/workspace.hpp"

namespace mdcp {
namespace {

TEST(Types, AllModesMask) {
  EXPECT_EQ(all_modes(0), 0u);
  EXPECT_EQ(all_modes(1), 1u);
  EXPECT_EQ(all_modes(3), 0b111u);
  EXPECT_EQ(mode_count(all_modes(7)), 7);
}

TEST(Types, ModeIn) {
  const mode_set_t s = 0b1010;
  EXPECT_FALSE(mode_in(s, 0));
  EXPECT_TRUE(mode_in(s, 1));
  EXPECT_FALSE(mode_in(s, 2));
  EXPECT_TRUE(mode_in(s, 3));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(Rng, RealInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const real_t x = rng.next_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - 1000);
    EXPECT_LT(c, n / 10 + 1000);
  }
}

TEST(Rng, NormalMomentsReasonable) {
  Rng rng(13);
  double sum = 0, sumsq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.next_normal());
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Zipf, SamplesWithinUniverse) {
  Rng rng(17);
  ZipfSampler z(100, 1.2);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(rng), 100u);
}

TEST(Zipf, SkewFavorsSmallRanks) {
  Rng rng(19);
  ZipfSampler z(1000, 1.5);
  int low = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) low += z.sample(rng) < 10;
  // With exponent 1.5, the first 10 ranks carry well over a third of mass.
  EXPECT_GT(low, n / 3);
}

TEST(Zipf, ZeroExponentIsUniform) {
  Rng rng(23);
  ZipfSampler z(50, 0.0);
  std::vector<int> counts(50, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (int c : counts) {
    EXPECT_GT(c, n / 50 / 2);
    EXPECT_LT(c, n / 50 * 2);
  }
}

TEST(Zipf, RejectsEmptyUniverse) { EXPECT_THROW(ZipfSampler(0, 1.0), error); }

TEST(SplitMix, IsDeterministicAndMixes) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(Parallel, ChunkRangeCoversAll) {
  for (nnz_t n : {0ULL, 1ULL, 7ULL, 100ULL, 101ULL}) {
    for (int parts : {1, 2, 3, 7, 16}) {
      nnz_t total = 0;
      nnz_t prev_end = 0;
      for (int p = 0; p < parts; ++p) {
        const auto r = chunk_range(n, parts, p);
        EXPECT_EQ(r.begin, prev_end);
        EXPECT_LE(r.begin, r.end);
        total += r.end - r.begin;
        prev_end = r.end;
      }
      EXPECT_EQ(total, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(Parallel, ChunkSizesBalanced) {
  const auto a = chunk_range(10, 3, 0);
  const auto b = chunk_range(10, 3, 1);
  const auto c = chunk_range(10, 3, 2);
  EXPECT_EQ(a.end - a.begin, 4u);
  EXPECT_EQ(b.end - b.begin, 3u);
  EXPECT_EQ(c.end - c.begin, 3u);
}

TEST(Parallel, ParallelForVisitsEachOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(1000, [&](nnz_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, SetNumThreadsReflected) {
  set_num_threads(2);
  EXPECT_EQ(num_threads(), 2);
  set_num_threads(1);
  EXPECT_EQ(num_threads(), 1);
}

TEST(Parallel, DynamicGrainHonored) {
  // Regression: parallel_for_dynamic used to hardcode schedule(dynamic, 64)
  // and silently ignore its `grain` argument. OpenMP dynamic scheduling
  // hands out contiguous chunks of exactly `grain` iterations (aligned to
  // multiples of grain, last chunk short), so every aligned block must be
  // executed by a single thread.
  set_num_threads(4);
  constexpr nnz_t n = 1000;
  constexpr nnz_t grain = 128;  // > the old hardcoded 64
  std::vector<int> owner(n, -1);
  parallel_for_dynamic(
      n, [&](nnz_t i) { owner[i] = thread_id(); }, grain);
  set_num_threads(1);
  for (nnz_t b = 0; b < n; b += grain) {
    const nnz_t end = std::min(b + grain, n);
    for (nnz_t i = b; i < end; ++i) {
      ASSERT_GE(owner[i], 0) << "iteration " << i << " never ran";
      EXPECT_EQ(owner[i], owner[b])
          << "grain-" << grain << " block at " << b << " split across threads";
    }
  }
}

TEST(Parallel, ChunkedCoversAllOnceWithDisjointRanges) {
  set_num_threads(3);
  constexpr nnz_t n = 100;
  std::vector<int> hits(n, 0);
  parallel_for_chunked(n, [&](int tid, Range r) {
    EXPECT_GE(tid, 0);
    EXPECT_LE(r.begin, r.end);
    // Ranges are disjoint per thread, so unsynchronized writes are safe.
    for (nnz_t i = r.begin; i < r.end; ++i) ++hits[i];
  });
  set_num_threads(1);
  for (nnz_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(Parallel, ThreadScopeRestoresOnExit) {
  set_num_threads(4);
  {
    ThreadScope scope(2);
    EXPECT_EQ(num_threads(), 2);
  }
  EXPECT_EQ(num_threads(), 4);
  {
    ThreadScope noop(0);  // 0 = inherit, must not disturb the setting
    EXPECT_EQ(num_threads(), 4);
  }
  EXPECT_EQ(num_threads(), 4);
  set_num_threads(1);
}

TEST(Workspace, ScratchIsAlignedAndSized) {
  Workspace ws;
  const auto s = ws.thread_scratch_bytes(100);
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.data()) %
                Workspace::kAlignment,
            0u);
  const auto d = ws.thread_scratch<double>(7);
  EXPECT_EQ(d.size(), 7u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) %
                Workspace::kAlignment,
            0u);
}

TEST(Workspace, SlabIsReusedNotReallocated) {
  Workspace ws;
  const auto big = ws.thread_scratch_bytes(4096);
  const std::size_t after_big = ws.allocated_bytes();
  // A smaller (and an equal) request must reuse the same slab.
  const auto small = ws.thread_scratch_bytes(64);
  EXPECT_EQ(small.data(), big.data());
  EXPECT_EQ(ws.allocated_bytes(), after_big);
  const auto same = ws.thread_scratch_bytes(4096);
  EXPECT_EQ(same.data(), big.data());
  EXPECT_EQ(ws.allocated_bytes(), after_big);
}

TEST(Workspace, GrowthTracksTotalsAndPeak) {
  Workspace ws;
  EXPECT_EQ(ws.allocated_bytes(), 0u);
  (void)ws.thread_scratch_bytes(128);
  const std::size_t first = ws.allocated_bytes();
  EXPECT_GE(first, 128u);
  EXPECT_EQ(ws.peak_bytes(), first);
  (void)ws.thread_scratch_bytes(100000);
  EXPECT_GE(ws.allocated_bytes(), 100000u);
  EXPECT_EQ(ws.peak_bytes(), ws.allocated_bytes());
}

TEST(Workspace, ReservePreGrowsAllSlabs) {
  Workspace ws;
  ws.reserve(4, 1024);
  EXPECT_GE(ws.allocated_bytes(), 4u * 1024u);
  // Growing an already-large-enough slab is a no-op.
  const std::size_t before = ws.allocated_bytes();
  ws.reserve(4, 512);
  EXPECT_EQ(ws.allocated_bytes(), before);
}

TEST(Workspace, ReleaseFreesAndResetPeakRebaselines) {
  Workspace ws;
  (void)ws.thread_scratch_bytes(2048);
  EXPECT_GT(ws.allocated_bytes(), 0u);
  const std::size_t peak = ws.peak_bytes();
  ws.release();
  EXPECT_EQ(ws.allocated_bytes(), 0u);
  EXPECT_EQ(ws.peak_bytes(), peak);  // the high-water mark survives release
  ws.reset_peak();
  EXPECT_EQ(ws.peak_bytes(), 0u);
}

TEST(Workspace, ZeroByteRequestIsEmpty) {
  Workspace ws;
  EXPECT_TRUE(ws.thread_scratch_bytes(0).empty());
  EXPECT_EQ(ws.allocated_bytes(), 0u);
}

TEST(KernelStats, SinceComputesDeltas) {
  KernelStats a;
  a.symbolic_seconds = 1.0;
  a.numeric_seconds = 2.0;
  a.prepare_calls = 1;
  a.compute_calls = 10;
  a.flops = 1000;
  a.peak_scratch_bytes = 4096;
  KernelStats b = a;
  b.numeric_seconds = 5.0;
  b.compute_calls = 25;
  b.flops = 3000;
  const KernelStats d = b.since(a);
  EXPECT_DOUBLE_EQ(d.symbolic_seconds, 0.0);
  EXPECT_DOUBLE_EQ(d.numeric_seconds, 3.0);
  EXPECT_EQ(d.prepare_calls, 0u);
  EXPECT_EQ(d.compute_calls, 15u);
  EXPECT_EQ(d.flops, 2000u);
  EXPECT_EQ(d.peak_scratch_bytes, 4096u);  // peaks carry over, not subtract
}

TEST(SpanUtil, ExclusiveScan) {
  const std::vector<nnz_t> in{3, 0, 2, 5};
  const auto out = exclusive_scan_with_total(std::span<const nnz_t>{in});
  const std::vector<nnz_t> expect{0, 3, 3, 5, 10};
  EXPECT_EQ(out, expect);
}

TEST(SpanUtil, IdentityPermutation) {
  const auto p = identity_permutation(4);
  const std::vector<nnz_t> expect{0, 1, 2, 3};
  EXPECT_EQ(p, expect);
}

TEST(Error, CheckMacroThrowsWithMessage) {
  try {
    MDCP_CHECK_MSG(false, "context " << 42);
    FAIL() << "expected throw";
  } catch (const error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace mdcp
