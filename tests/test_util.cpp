#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/span_util.hpp"
#include "util/types.hpp"

namespace mdcp {
namespace {

TEST(Types, AllModesMask) {
  EXPECT_EQ(all_modes(0), 0u);
  EXPECT_EQ(all_modes(1), 1u);
  EXPECT_EQ(all_modes(3), 0b111u);
  EXPECT_EQ(mode_count(all_modes(7)), 7);
}

TEST(Types, ModeIn) {
  const mode_set_t s = 0b1010;
  EXPECT_FALSE(mode_in(s, 0));
  EXPECT_TRUE(mode_in(s, 1));
  EXPECT_FALSE(mode_in(s, 2));
  EXPECT_TRUE(mode_in(s, 3));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(Rng, RealInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const real_t x = rng.next_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - 1000);
    EXPECT_LT(c, n / 10 + 1000);
  }
}

TEST(Rng, NormalMomentsReasonable) {
  Rng rng(13);
  double sum = 0, sumsq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.next_normal());
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Zipf, SamplesWithinUniverse) {
  Rng rng(17);
  ZipfSampler z(100, 1.2);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(rng), 100u);
}

TEST(Zipf, SkewFavorsSmallRanks) {
  Rng rng(19);
  ZipfSampler z(1000, 1.5);
  int low = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) low += z.sample(rng) < 10;
  // With exponent 1.5, the first 10 ranks carry well over a third of mass.
  EXPECT_GT(low, n / 3);
}

TEST(Zipf, ZeroExponentIsUniform) {
  Rng rng(23);
  ZipfSampler z(50, 0.0);
  std::vector<int> counts(50, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (int c : counts) {
    EXPECT_GT(c, n / 50 / 2);
    EXPECT_LT(c, n / 50 * 2);
  }
}

TEST(Zipf, RejectsEmptyUniverse) { EXPECT_THROW(ZipfSampler(0, 1.0), error); }

TEST(SplitMix, IsDeterministicAndMixes) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(Parallel, ChunkRangeCoversAll) {
  for (nnz_t n : {0ULL, 1ULL, 7ULL, 100ULL, 101ULL}) {
    for (int parts : {1, 2, 3, 7, 16}) {
      nnz_t total = 0;
      nnz_t prev_end = 0;
      for (int p = 0; p < parts; ++p) {
        const auto r = chunk_range(n, parts, p);
        EXPECT_EQ(r.begin, prev_end);
        EXPECT_LE(r.begin, r.end);
        total += r.end - r.begin;
        prev_end = r.end;
      }
      EXPECT_EQ(total, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(Parallel, ChunkSizesBalanced) {
  const auto a = chunk_range(10, 3, 0);
  const auto b = chunk_range(10, 3, 1);
  const auto c = chunk_range(10, 3, 2);
  EXPECT_EQ(a.end - a.begin, 4u);
  EXPECT_EQ(b.end - b.begin, 3u);
  EXPECT_EQ(c.end - c.begin, 3u);
}

TEST(Parallel, ParallelForVisitsEachOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(1000, [&](nnz_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, SetNumThreadsReflected) {
  set_num_threads(2);
  EXPECT_EQ(num_threads(), 2);
  set_num_threads(1);
  EXPECT_EQ(num_threads(), 1);
}

TEST(SpanUtil, ExclusiveScan) {
  const std::vector<nnz_t> in{3, 0, 2, 5};
  const auto out = exclusive_scan_with_total(std::span<const nnz_t>{in});
  const std::vector<nnz_t> expect{0, 3, 3, 5, 10};
  EXPECT_EQ(out, expect);
}

TEST(SpanUtil, IdentityPermutation) {
  const auto p = identity_permutation(4);
  const std::vector<nnz_t> expect{0, 1, 2, 3};
  EXPECT_EQ(p, expect);
}

TEST(Error, CheckMacroThrowsWithMessage) {
  try {
    MDCP_CHECK_MSG(false, "context " << 42);
    FAIL() << "expected throw";
  } catch (const error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace mdcp
