// bench_diff — compares two BENCH_*.json telemetry files (bench_runner
// output) and flags per-table regressions:
//
//   bench_diff BASE.json NEW.json [--threshold 0.25] [--json]
//
// Cell parsing and the comparison policy are shared with `mdcp_cli compare`
// — see tools/compare_util.hpp for the unit normalization and direction
// rules. The threshold is the noise allowance, not a target: see
// docs/benchmarking.md for the policy.
//
// Exit status: 0 all gated cells within threshold, 1 at least one
// regression, 2 structural problems (unreadable file, bench/table/row
// present in BASE but missing in NEW).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "compare_util.hpp"
#include "obs/json.hpp"

namespace {

using mdcp::obs::JsonValue;
using mdcp::obs::JsonWriter;
using mdcp::tools::Cell;
using mdcp::tools::Finding;
using mdcp::tools::classify;
using mdcp::tools::parse_cell;
using mdcp::tools::structural_finding;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: bench_diff BASE.json NEW.json [--threshold T] "
               "[--json]\n");
  std::exit(1);
}

bool load_file(const char* path, JsonValue& out) {
  std::ifstream is(path);
  if (!is.good()) {
    std::fprintf(stderr, "error: cannot read %s\n", path);
    return false;
  }
  std::stringstream ss;
  ss << is.rdbuf();
  std::string err;
  if (!mdcp::obs::json_parse(ss.str(), out, &err)) {
    std::fprintf(stderr, "error: %s: %s\n", path, err.c_str());
    return false;
  }
  return true;
}

struct TableRef {
  std::string bench;
  std::string table;
  const JsonValue* headers = nullptr;
  const JsonValue* rows = nullptr;
};

std::vector<TableRef> collect_tables(const JsonValue& doc) {
  std::vector<TableRef> out;
  const JsonValue* benches = doc.find("benches", JsonValue::Kind::kArray);
  if (benches == nullptr) return out;
  for (const JsonValue& bench : benches->items()) {
    const JsonValue* name = bench.find("name", JsonValue::Kind::kString);
    const JsonValue* tables = bench.find("tables", JsonValue::Kind::kArray);
    if (name == nullptr || tables == nullptr) continue;
    for (const JsonValue& t : tables->items()) {
      const JsonValue* tname = t.find("table", JsonValue::Kind::kString);
      if (tname == nullptr) continue;
      TableRef ref;
      ref.bench = name->as_string();
      ref.table = tname->as_string();
      ref.headers = t.find("headers", JsonValue::Kind::kArray);
      ref.rows = t.find("rows", JsonValue::Kind::kArray);
      out.push_back(ref);
    }
  }
  return out;
}

const TableRef* find_table(const std::vector<TableRef>& tables,
                           const TableRef& want) {
  for (const auto& t : tables)
    if (t.bench == want.bench && t.table == want.table) return &t;
  return nullptr;
}

/// Rows are keyed by their first cell (dataset / parameter column).
const JsonValue* find_row(const JsonValue& rows, const std::string& key) {
  for (const JsonValue& row : rows.items()) {
    if (row.is_array() && !row.items().empty() &&
        row.items()[0].as_string() == key)
      return &row;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const char* base_path = nullptr;
  const char* new_path = nullptr;
  double threshold = 0.25;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threshold") {
      if (i + 1 >= argc) usage("missing value for --threshold");
      threshold = std::atof(argv[++i]);
    } else if (a == "--json") {
      json = true;
    } else if (base_path == nullptr) {
      base_path = argv[i];
    } else if (new_path == nullptr) {
      new_path = argv[i];
    } else {
      usage(("unexpected argument: " + a).c_str());
    }
  }
  if (base_path == nullptr || new_path == nullptr)
    usage("need BASE.json and NEW.json");
  if (threshold <= 0) usage("--threshold must be positive");

  JsonValue base_doc, new_doc;
  if (!load_file(base_path, base_doc) || !load_file(new_path, new_doc))
    return 2;

  const auto base_tables = collect_tables(base_doc);
  const auto new_tables = collect_tables(new_doc);

  std::vector<Finding> findings;
  int regressions = 0, structural = 0, compared = 0;
  for (const auto& bt : base_tables) {
    const TableRef* nt = find_table(new_tables, bt);
    if (nt == nullptr || nt->rows == nullptr || bt.rows == nullptr) {
      findings.push_back(structural_finding(bt.bench + "/" + bt.table));
      ++structural;
      continue;
    }
    for (const JsonValue& brow : bt.rows->items()) {
      if (!brow.is_array() || brow.items().empty()) continue;
      const std::string key = brow.items()[0].as_string();
      const JsonValue* nrow = find_row(*nt->rows, key);
      if (nrow == nullptr) {
        findings.push_back(
            structural_finding(bt.bench + "/" + bt.table + "/" + key));
        ++structural;
        continue;
      }
      const std::size_t ncols =
          std::min(brow.items().size(), nrow->items().size());
      for (std::size_t c = 1; c < ncols; ++c) {
        const Cell bc = parse_cell(brow.items()[c].as_string());
        const Cell nc = parse_cell(nrow->items()[c].as_string());
        if (!bc.numeric || !nc.numeric || !bc.gated || !nc.gated) continue;
        if (bc.value <= 0) continue;
        ++compared;
        std::string col = "col" + std::to_string(c);
        if (bt.headers != nullptr && c < bt.headers->items().size())
          col = bt.headers->items()[c].as_string();
        Finding f = classify(bt.bench + "/" + bt.table + "/" + key + "/" + col,
                             bc.value, nc.value, threshold);
        if (std::strcmp(f.status, "ok") != 0) {
          if (std::strcmp(f.status, "regression") == 0) ++regressions;
          findings.push_back(std::move(f));
        }
      }
    }
  }

  if (json) {
    JsonWriter w;
    w.begin_object()
        .kv("schema", "mdcp-bench-diff/1")
        .kv("base", base_path)
        .kv("new", new_path)
        .kv("threshold", threshold)
        .kv("cells_compared", compared)
        .kv("regressions", regressions)
        .kv("structural", structural);
    w.key("findings").begin_array();
    for (const auto& f : findings) {
      w.begin_object().kv("where", f.where).kv("status", f.status);
      if (std::strcmp(f.status, "structural") != 0)
        w.kv("base", f.base).kv("new", f.next).kv("ratio", f.ratio);
      w.end_object();
    }
    w.end_array().end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("bench_diff: %s vs %s (threshold %.0f%%)\n", base_path,
                new_path, threshold * 100.0);
    for (const auto& f : findings) {
      if (std::strcmp(f.status, "structural") == 0) {
        std::printf("  MISSING     %s\n", f.where.c_str());
      } else {
        std::printf("  %-11s %s  %.4g -> %.4g  (%.2fx)\n",
                    std::strcmp(f.status, "regression") == 0 ? "REGRESSION"
                                                             : "improved",
                    f.where.c_str(), f.base, f.next, f.ratio);
      }
    }
    std::printf("compared %d cell(s): %d regression(s), %d structural "
                "problem(s)\n",
                compared, regressions, structural);
  }
  if (structural > 0) return 2;
  return regressions > 0 ? 1 : 0;
}
