// bench_runner — runs the experiment bench suite and aggregates every
// binary's --json tables into one self-describing telemetry file:
//
//   bench_runner --bench-dir build/bench --out BENCH_<sha>.json
//                [--sha REV] [--only b1,b2,...] [--calib-seconds S]
//
// The output carries a provenance header (build info, bench scale, machine
// roofline ceilings, perf-counter availability) plus, per bench, the wall
// time, a child-rusage summary (user/sys time, max RSS, page faults — the
// counters that exist even on PMU-less VMs), and the tables verbatim. The
// file is the input format of bench_diff; CI commits one as the regression
// baseline.
//
// Exit status: 0 when every bench ran and parsed, 1 on usage errors, 2 when
// any bench failed or emitted unparseable output.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "mdcp.hpp"

namespace {

using namespace mdcp;

// The experiment suite, in EXPERIMENTS.md order. bench_kernels is excluded:
// it is a google-benchmark harness with its own output format.
const char* const kBenches[] = {
    "bench_mttkrp",     "bench_cpals",      "bench_datasets",
    "bench_memory",     "bench_model",      "bench_symbolic",
    "bench_order_sweep", "bench_rank_sweep", "bench_threads",
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: bench_runner --bench-dir DIR --out FILE [--sha REV]\n"
               "                    [--only b1,b2,...] [--calib-seconds S]\n");
  std::exit(1);
}

struct RusageDelta {
  double user_seconds = 0;
  double system_seconds = 0;
  long max_rss_kib = 0;
  long page_faults = 0;
  bool valid = false;
};

#if defined(__unix__) || defined(__APPLE__)
rusage children_rusage() {
  rusage ru;
  std::memset(&ru, 0, sizeof(ru));
  ::getrusage(RUSAGE_CHILDREN, &ru);
  return ru;
}

double tv_seconds(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) / 1e6;
}

RusageDelta rusage_since(const rusage& begin) {
  const rusage now = children_rusage();
  RusageDelta d;
  d.user_seconds = tv_seconds(now.ru_utime) - tv_seconds(begin.ru_utime);
  d.system_seconds = tv_seconds(now.ru_stime) - tv_seconds(begin.ru_stime);
  d.max_rss_kib = now.ru_maxrss;  // high-water mark, not a delta
  d.page_faults =
      (now.ru_minflt + now.ru_majflt) - (begin.ru_minflt + begin.ru_majflt);
  d.valid = true;
  return d;
}
#endif

struct BenchResult {
  std::string name;
  double seconds = 0;
  int exit_code = -1;
  RusageDelta rusage;
  std::vector<obs::JsonValue> tables;
  std::vector<std::string> parse_errors;
};

/// Runs one bench binary with --json and parses each stdout line as a table
/// object. Returns false only if the binary could not be started.
bool run_bench(const std::string& dir, const std::string& name,
               BenchResult& out) {
  out.name = name;
  const std::string cmd = dir + "/" + name + " --json 2>/dev/null";
#if defined(__unix__) || defined(__APPLE__)
  const rusage ru_begin = children_rusage();
#endif
  WallTimer timer;
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return false;
  std::string line;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    line += buf;
    if (line.empty() || line.back() != '\n') continue;  // long line, keep
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
      line.pop_back();
    if (!line.empty()) {
      obs::JsonValue table;
      std::string err;
      if (obs::json_parse(line, table, &err) && table.is_object()) {
        out.tables.push_back(std::move(table));
      } else {
        out.parse_errors.push_back(err.empty() ? "not a JSON object" : err);
      }
    }
    line.clear();
  }
  const int status = ::pclose(pipe);
  out.seconds = timer.seconds();
#if defined(__unix__) || defined(__APPLE__)
  out.rusage = rusage_since(ru_begin);
  out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#else
  out.exit_code = status;
#endif
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bench_dir, out_path, sha = "local", only;
  double calib_seconds = 0.2;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--bench-dir") bench_dir = next();
    else if (a == "--out") out_path = next();
    else if (a == "--sha") sha = next();
    else if (a == "--only") only = next();
    else if (a == "--calib-seconds") calib_seconds = std::atof(next().c_str());
    else usage(("unknown flag: " + a).c_str());
  }
  if (bench_dir.empty()) usage("need --bench-dir");
  if (out_path.empty()) usage("need --out");

  std::vector<std::string> selected;
  if (only.empty()) {
    for (const char* b : kBenches) selected.push_back(b);
  } else {
    std::size_t pos = 0;
    while (pos <= only.size()) {
      const std::size_t comma = only.find(',', pos);
      const std::string name = only.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      if (!name.empty()) selected.push_back(name);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  // Machine context: counter availability + roofline ceilings, so a BENCH
  // file says what the hardware could do, not just what the benches did.
  obs::Perf::instance().set_enabled(true);
  const std::uint16_t avail = obs::Perf::instance().available_mask();
  const obs::RooflineCeilings ceilings = obs::calibrate_roofline(calib_seconds);

  bool failed = false;
  std::vector<BenchResult> results;
  for (const auto& name : selected) {
    BenchResult r;
    std::fprintf(stderr, "[bench_runner] %s ...\n", name.c_str());
    if (!run_bench(bench_dir, name, r)) {
      std::fprintf(stderr, "[bench_runner] %s: cannot start\n", name.c_str());
      r.exit_code = -1;
      failed = true;
    } else if (r.exit_code != 0) {
      std::fprintf(stderr, "[bench_runner] %s: exit %d\n", name.c_str(),
                   r.exit_code);
      failed = true;
    } else if (!r.parse_errors.empty()) {
      std::fprintf(stderr, "[bench_runner] %s: %zu unparseable line(s): %s\n",
                   name.c_str(), r.parse_errors.size(),
                   r.parse_errors[0].c_str());
      failed = true;
    } else {
      std::fprintf(stderr, "[bench_runner] %s: %zu table(s) in %.1fs\n",
                   name.c_str(), r.tables.size(), r.seconds);
    }
    results.push_back(std::move(r));
  }

  obs::JsonWriter w;
  w.begin_object().kv("schema", "mdcp-bench/1").kv("sha", sha);
  const auto& b = obs::BuildInfo::current();
  w.key("build").begin_object()
      .kv("compiler", b.compiler)
      .kv("build_type", b.build_type)
      .kv("flags", b.flags)
      .kv("openmp", b.openmp)
      .kv("hardware_threads", b.hardware_threads)
      .end_object();
  const char* scale_env = std::getenv("MDCP_BENCH_SCALE");
  w.kv("bench_scale", scale_env ? std::atof(scale_env) : 1.0);
  w.key("machine").begin_object();
  w.key("ceilings").begin_object()
      .kv("fma_gflops", ceilings.fma_gflops)
      .kv("triad_gbps", ceilings.triad_gbps)
      .kv("ridge_intensity", ceilings.ridge_intensity())
      .kv("threads", ceilings.threads)
      .end_object();
  w.key("perf_counters").begin_array();
  for (std::size_t i = 0; i < obs::kPerfCounterCount; ++i)
    if ((avail >> i) & 1u)
      w.value(obs::perf_counter_name(static_cast<obs::PerfCounterId>(i)));
  w.end_array().end_object();
  w.key("benches").begin_array();
  for (const auto& r : results) {
    w.begin_object()
        .kv("name", r.name)
        .kv("exit_code", r.exit_code)
        .kv("seconds", r.seconds);
    if (r.rusage.valid) {
      w.key("rusage").begin_object()
          .kv("user_seconds", r.rusage.user_seconds)
          .kv("system_seconds", r.rusage.system_seconds)
          .kv("max_rss_kib", static_cast<std::int64_t>(r.rusage.max_rss_kib))
          .kv("page_faults", static_cast<std::int64_t>(r.rusage.page_faults))
          .end_object();
    }
    w.key("tables").begin_array();
    for (const auto& t : r.tables) t.write(w);
    w.end_array().end_object();
  }
  w.end_array().end_object();

  std::ofstream os(out_path);
  if (!os.good()) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 2;
  }
  os << w.str() << '\n';
  std::fprintf(stderr, "[bench_runner] wrote %s (%zu bench(es))\n",
               out_path.c_str(), results.size());
  return failed ? 2 : 0;
}
