// Shared unit-aware comparison core for the regression-checking tools.
//
// bench_diff (BENCH_*.json tables) and `mdcp_cli compare` (JSONL run
// reports) gate on the same policy, so it lives here once: cells are parsed
// by their leading number + unit suffix and normalized to a base unit
// (us/ms/s → seconds; KiB/MiB/GiB → bytes). Time and byte cells are
// smaller-is-better and gate the exit status; ratio ("x") and bare-number
// cells are informational only — a speedup column's direction depends on
// what the table divides, so gating on it would guess. A value regresses
// when new > base * (1 + threshold).
#pragma once

#include <cmath>
#include <cstdlib>
#include <string>

namespace mdcp::tools {

struct Cell {
  double value = 0;    ///< normalized (seconds, bytes, or raw)
  bool gated = false;  ///< time/byte cell: smaller-is-better, gates exit code
  bool numeric = false;
};

/// Parses "123us", "4.5ms", "2.3s", "1.2KiB", "3x", "42" → normalized value.
inline Cell parse_cell(const std::string& s) {
  Cell c;
  const char* p = s.c_str();
  char* end = nullptr;
  const double v = std::strtod(p, &end);
  if (end == p || !std::isfinite(v)) return c;  // non-numeric cell
  c.numeric = true;
  const std::string unit(end);
  if (unit == "us") {
    c.value = v * 1e-6;
    c.gated = true;
  } else if (unit == "ms") {
    c.value = v * 1e-3;
    c.gated = true;
  } else if (unit == "s") {
    c.value = v;
    c.gated = true;
  } else if (unit == "KiB") {
    c.value = v * 1024.0;
    c.gated = true;
  } else if (unit == "MiB") {
    c.value = v * 1024.0 * 1024.0;
    c.gated = true;
  } else if (unit == "GiB") {
    c.value = v * 1024.0 * 1024.0 * 1024.0;
    c.gated = true;
  } else {
    // "x" ratios and bare numbers: informational, direction unknown.
    c.value = v;
  }
  return c;
}

/// One compared value. `where` is a slash path naming the cell
/// ("bench/table/row/col" or "summary/mttkrp_seconds_per_iter").
struct Finding {
  std::string where;
  double base = 0, next = 0, ratio = 0;
  const char* status = "ok";  ///< ok | regression | improved | structural
};

/// Smaller-is-better comparison under the symmetric threshold band:
/// "regression" when next > base·(1+T), "improved" when next < base/(1+T).
/// base must be positive (callers skip zero/negative baselines).
inline Finding classify(std::string where, double base, double next,
                        double threshold) {
  Finding f;
  f.where = std::move(where);
  f.base = base;
  f.next = next;
  f.ratio = next / base;
  if (f.ratio > 1.0 + threshold)
    f.status = "regression";
  else if (f.ratio < 1.0 / (1.0 + threshold))
    f.status = "improved";
  return f;
}

inline Finding structural_finding(std::string where) {
  Finding f;
  f.where = std::move(where);
  f.status = "structural";
  return f;
}

}  // namespace mdcp::tools
