#!/usr/bin/env python3
"""Copy a JSONL run report with its summary timings multiplied by a factor,
then exec an optional command (typically `mdcp_cli drift`) and exit with its
status. Used by the history-smoke tests and CI to fabricate a regression the
drift gate must catch:

    inject_slowdown.py <src.jsonl> <dst.jsonl> <factor> [-- cmd args...]
"""
import json
import subprocess
import sys


def main(argv):
    if len(argv) < 4:
        print(__doc__, file=sys.stderr)
        return 64
    src, dst, factor = argv[1], argv[2], float(argv[3])
    cmd = argv[5:] if len(argv) > 4 and argv[4] == "--" else []

    out = []
    with open(src) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("type") == "summary":
                for key in ("mttkrp_seconds", "total_seconds"):
                    if key in rec:
                        rec[key] *= factor
                if "mttkrp_mode_seconds" in rec:
                    rec["mttkrp_mode_seconds"] = [
                        s * factor for s in rec["mttkrp_mode_seconds"]
                    ]
            out.append(json.dumps(rec))
    with open(dst, "w") as f:
        f.write("\n".join(out) + "\n")

    if not cmd:
        return 0
    return subprocess.call(cmd)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
