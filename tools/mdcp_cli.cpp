// mdcp command-line tool.
//
//   mdcp_cli stats <tensor.tns>
//   mdcp_cli generate --kind uniform|zipf|clustered --shape I1xI2x... \
//                     --nnz N [--seed S] [--zipf-exp E] [--clusters C] --out F
//   mdcp_cli tune <tensor.tns> [--rank R] [--budget-mb M] [--probe]
//   mdcp_cli decompose <tensor.tns> [--rank R] [--engine NAME] [--iters K]
//                      [--tol T] [--seed S] [--restarts N] [--nonnegative]
//                      [--threads T] [--out-prefix P]
//
// Exit status: 0 on success, 1 on usage errors, 2 on runtime errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "mdcp.hpp"

namespace {

using namespace mdcp;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  mdcp_cli stats <tensor.tns>\n"
               "  mdcp_cli generate --kind uniform|zipf|clustered "
               "--shape I1xI2x... --nnz N\n"
               "                    [--seed S] [--zipf-exp E] [--clusters C] "
               "--out FILE\n"
               "  mdcp_cli tune <tensor.tns> [--rank R] [--budget-mb M] "
               "[--probe]\n"
               "  mdcp_cli decompose <tensor.tns> [--rank R] [--engine E] "
               "[--iters K] [--tol T]\n"
               "                     [--seed S] [--restarts N] [--algorithm als|mu] "
               "[--nonnegative] [--threads T]\n"
               "                     [--out-prefix P]\n"
               "\nengines:\n");
  for (const auto& e : EngineRegistry::instance().entries())
    std::fprintf(stderr, "  %-12s %s\n", e.name.c_str(),
                 e.description.c_str());
  std::exit(1);
}

// Minimal --flag / --key value parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        const std::string key = a.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          kv_[key] = argv[++i];
        } else {
          kv_[key] = "";  // boolean flag
        }
      } else {
        positional_.push_back(std::move(a));
      }
    }
  }

  bool has(const std::string& k) const { return kv_.count(k) > 0; }
  std::string get(const std::string& k, const std::string& def = "") const {
    const auto it = kv_.find(k);
    return it == kv_.end() ? def : it->second;
  }
  double get_num(const std::string& k, double def) const {
    const auto it = kv_.find(k);
    return it == kv_.end() ? def : std::atof(it->second.c_str());
  }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

shape_t parse_shape(const std::string& s) {
  shape_t shape;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t next = s.find('x', pos);
    const std::string tok = s.substr(pos, next == std::string::npos
                                               ? std::string::npos
                                               : next - pos);
    const long v = std::atol(tok.c_str());
    if (v <= 0) usage("bad --shape (expect e.g. 100x200x300)");
    shape.push_back(static_cast<index_t>(v));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  if (shape.empty()) usage("empty --shape");
  return shape;
}

int cmd_stats(const Args& args) {
  if (args.positional().empty()) usage("stats needs a tensor file");
  const CooTensor t = read_tns_file(args.positional()[0]);
  const auto s = compute_stats(t);
  std::printf("%s\n", s.to_string().c_str());
  for (mdcp::mode_t m = 0; m < t.order(); ++m) {
    std::printf("mode %u: size %u, used %u (%.1f%%), avg slice nnz %.1f\n", m,
                t.dim(m), s.distinct_per_mode[m],
                100.0 * s.distinct_per_mode[m] / t.dim(m),
                s.avg_slice_nnz[m]);
  }
  return 0;
}

int cmd_generate(const Args& args) {
  const std::string kind = args.get("kind", "uniform");
  const shape_t shape = parse_shape(args.get("shape"));
  const auto nnz = static_cast<nnz_t>(args.get_num("nnz", 0));
  if (nnz == 0) usage("generate needs --nnz");
  const auto seed = static_cast<std::uint64_t>(args.get_num("seed", 1));
  const std::string out = args.get("out");
  if (out.empty()) usage("generate needs --out");

  CooTensor t;
  if (kind == "uniform") {
    t = generate_uniform(shape, nnz, seed);
  } else if (kind == "zipf") {
    t = generate_zipf(shape, nnz, args.get_num("zipf-exp", 1.1), seed);
  } else if (kind == "clustered") {
    ClusteredOptions opt;
    opt.clusters = static_cast<index_t>(args.get_num("clusters", 64));
    t = generate_clustered(shape, nnz, opt, seed);
  } else {
    usage(("unknown --kind: " + kind).c_str());
  }
  write_tns_file(out, t);
  std::printf("wrote %s: %s\n", out.c_str(), t.summary().c_str());
  return 0;
}

int cmd_tune(const Args& args) {
  if (args.positional().empty()) usage("tune needs a tensor file");
  const CooTensor t = read_tns_file(args.positional()[0]);
  const auto rank = static_cast<index_t>(args.get_num("rank", 16));
  const auto budget = static_cast<std::size_t>(
      args.get_num("budget-mb", 0) * 1024.0 * 1024.0);

  const TunerReport report =
      args.has("probe") ? select_strategy_probed(t, rank, budget)
                        : select_strategy(t, rank, budget);
  std::printf("%-16s %-28s %-12s %-12s %s\n", "strategy", "tree", "pred-time",
              "memory", "fits-budget");
  for (std::size_t i = 0; i < report.ranked.size(); ++i) {
    const auto& rs = report.ranked[i];
    std::printf("%-16s %-28s %-12.4g %-12zu %s%s\n", rs.strategy.name.c_str(),
                rs.strategy.spec.to_string().c_str(),
                rs.prediction.seconds_per_iteration,
                rs.prediction.total_memory_bytes(),
                rs.fits_budget ? "yes" : "no",
                i == report.chosen ? "   <== chosen" : "");
  }
  return 0;
}

void write_factor(const std::string& path, const Matrix& f) {
  std::ofstream os(path);
  MDCP_CHECK_MSG(os.good(), "cannot write " << path);
  os.precision(17);
  for (index_t i = 0; i < f.rows(); ++i) {
    for (index_t r = 0; r < f.cols(); ++r) {
      if (r) os << ' ';
      os << f(i, r);
    }
    os << '\n';
  }
}

int cmd_decompose(const Args& args) {
  if (args.positional().empty()) usage("decompose needs a tensor file");
  const CooTensor t = read_tns_file(args.positional()[0]);
  std::printf("input: %s\n", t.summary().c_str());

  if (args.has("threads"))
    set_num_threads(static_cast<int>(args.get_num("threads", 1)));

  CpAlsOptions opt;
  opt.rank = static_cast<index_t>(args.get_num("rank", 16));
  opt.max_iterations = static_cast<int>(args.get_num("iters", 50));
  opt.tolerance = static_cast<real_t>(args.get_num("tol", 1e-5));
  opt.seed = static_cast<std::uint64_t>(args.get_num("seed", 42));
  opt.engine_name = args.get("engine", "auto");
  if (!EngineRegistry::instance().contains(opt.engine_name))
    usage(("unknown engine: " + opt.engine_name).c_str());
  opt.nonnegative = args.has("nonnegative");
  opt.memory_budget_bytes = static_cast<std::size_t>(
      args.get_num("budget-mb", 0) * 1024.0 * 1024.0);
  opt.verbose = args.has("verbose");

  const int restarts = static_cast<int>(args.get_num("restarts", 1));
  const std::string algorithm = args.get("algorithm", "als");
  CpAlsResult result;
  if (algorithm == "mu") {
    result = cp_mu(t, opt);
  } else if (algorithm == "als") {
    result = restarts > 1 ? cp_als_best_of(t, opt, restarts) : cp_als(t, opt);
  } else {
    usage(("unknown --algorithm: " + algorithm).c_str());
  }

  std::printf("engine: %s\n", result.engine_name.c_str());
  std::printf("iterations: %d (%s)\n", result.iterations,
              result.converged ? "converged" : "max-iters");
  std::printf("final fit: %.6f\n", static_cast<double>(result.final_fit()));
  std::printf("time: total %.3fs  mttkrp %.3fs  dense %.3fs  fit %.3fs\n",
              result.total_seconds, result.mttkrp_seconds,
              result.dense_seconds, result.fit_seconds);
  std::printf("kernel: symbolic %.3fs  numeric %.3fs  flops %llu  "
              "peak-scratch %zu B\n",
              result.kernel_stats.symbolic_seconds,
              result.kernel_stats.numeric_seconds,
              static_cast<unsigned long long>(result.kernel_stats.flops),
              result.kernel_stats.peak_scratch_bytes);

  const std::string prefix = args.get("out-prefix");
  if (!prefix.empty()) {
    {
      std::ofstream os(prefix + ".lambda");
      os.precision(17);
      for (real_t w : result.model.weights) os << w << '\n';
    }
    for (mdcp::mode_t m = 0; m < t.order(); ++m)
      write_factor(prefix + ".U" + std::to_string(m),
                   result.model.factors[m]);
    std::printf("wrote %s.lambda and %s.U0..U%u\n", prefix.c_str(),
                prefix.c_str(), t.order() - 1);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Args args(argc, argv, 2);
  try {
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "tune") return cmd_tune(args);
    if (cmd == "decompose") return cmd_decompose(args);
    usage(("unknown command: " + cmd).c_str());
  } catch (const mdcp::error& e) {
    std::fprintf(stderr, "mdcp error: %s\n", e.what());
    return 2;
  }
}
